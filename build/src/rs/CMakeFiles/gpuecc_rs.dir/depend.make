# Empty dependencies file for gpuecc_rs.
# This may be replaced when dependencies are built.
