
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rs/decoders.cpp" "src/rs/CMakeFiles/gpuecc_rs.dir/decoders.cpp.o" "gcc" "src/rs/CMakeFiles/gpuecc_rs.dir/decoders.cpp.o.d"
  "/root/repo/src/rs/rs_code.cpp" "src/rs/CMakeFiles/gpuecc_rs.dir/rs_code.cpp.o" "gcc" "src/rs/CMakeFiles/gpuecc_rs.dir/rs_code.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpuecc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gf256/CMakeFiles/gpuecc_gf256.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
