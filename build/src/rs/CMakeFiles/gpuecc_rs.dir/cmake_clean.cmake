file(REMOVE_RECURSE
  "CMakeFiles/gpuecc_rs.dir/decoders.cpp.o"
  "CMakeFiles/gpuecc_rs.dir/decoders.cpp.o.d"
  "CMakeFiles/gpuecc_rs.dir/rs_code.cpp.o"
  "CMakeFiles/gpuecc_rs.dir/rs_code.cpp.o.d"
  "libgpuecc_rs.a"
  "libgpuecc_rs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuecc_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
