file(REMOVE_RECURSE
  "libgpuecc_rs.a"
)
