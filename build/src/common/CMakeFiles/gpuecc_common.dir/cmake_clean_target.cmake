file(REMOVE_RECURSE
  "libgpuecc_common.a"
)
