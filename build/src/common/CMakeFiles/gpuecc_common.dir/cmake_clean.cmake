file(REMOVE_RECURSE
  "CMakeFiles/gpuecc_common.dir/cli.cpp.o"
  "CMakeFiles/gpuecc_common.dir/cli.cpp.o.d"
  "CMakeFiles/gpuecc_common.dir/rng.cpp.o"
  "CMakeFiles/gpuecc_common.dir/rng.cpp.o.d"
  "CMakeFiles/gpuecc_common.dir/stats.cpp.o"
  "CMakeFiles/gpuecc_common.dir/stats.cpp.o.d"
  "CMakeFiles/gpuecc_common.dir/table.cpp.o"
  "CMakeFiles/gpuecc_common.dir/table.cpp.o.d"
  "libgpuecc_common.a"
  "libgpuecc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuecc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
