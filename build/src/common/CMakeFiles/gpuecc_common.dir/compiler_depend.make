# Empty compiler generated dependencies file for gpuecc_common.
# This may be replaced when dependencies are built.
