file(REMOVE_RECURSE
  "libgpuecc_codes.a"
)
