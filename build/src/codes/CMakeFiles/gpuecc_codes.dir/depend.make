# Empty dependencies file for gpuecc_codes.
# This may be replaced when dependencies are built.
