file(REMOVE_RECURSE
  "CMakeFiles/gpuecc_codes.dir/code_search.cpp.o"
  "CMakeFiles/gpuecc_codes.dir/code_search.cpp.o.d"
  "CMakeFiles/gpuecc_codes.dir/crockford.cpp.o"
  "CMakeFiles/gpuecc_codes.dir/crockford.cpp.o.d"
  "CMakeFiles/gpuecc_codes.dir/hsiao.cpp.o"
  "CMakeFiles/gpuecc_codes.dir/hsiao.cpp.o.d"
  "CMakeFiles/gpuecc_codes.dir/linear_code.cpp.o"
  "CMakeFiles/gpuecc_codes.dir/linear_code.cpp.o.d"
  "CMakeFiles/gpuecc_codes.dir/sec2bec.cpp.o"
  "CMakeFiles/gpuecc_codes.dir/sec2bec.cpp.o.d"
  "libgpuecc_codes.a"
  "libgpuecc_codes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuecc_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
