
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codes/code_search.cpp" "src/codes/CMakeFiles/gpuecc_codes.dir/code_search.cpp.o" "gcc" "src/codes/CMakeFiles/gpuecc_codes.dir/code_search.cpp.o.d"
  "/root/repo/src/codes/crockford.cpp" "src/codes/CMakeFiles/gpuecc_codes.dir/crockford.cpp.o" "gcc" "src/codes/CMakeFiles/gpuecc_codes.dir/crockford.cpp.o.d"
  "/root/repo/src/codes/hsiao.cpp" "src/codes/CMakeFiles/gpuecc_codes.dir/hsiao.cpp.o" "gcc" "src/codes/CMakeFiles/gpuecc_codes.dir/hsiao.cpp.o.d"
  "/root/repo/src/codes/linear_code.cpp" "src/codes/CMakeFiles/gpuecc_codes.dir/linear_code.cpp.o" "gcc" "src/codes/CMakeFiles/gpuecc_codes.dir/linear_code.cpp.o.d"
  "/root/repo/src/codes/sec2bec.cpp" "src/codes/CMakeFiles/gpuecc_codes.dir/sec2bec.cpp.o" "gcc" "src/codes/CMakeFiles/gpuecc_codes.dir/sec2bec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpuecc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gf2/CMakeFiles/gpuecc_gf2.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
