# Empty compiler generated dependencies file for gpuecc_hwmodel.
# This may be replaced when dependencies are built.
