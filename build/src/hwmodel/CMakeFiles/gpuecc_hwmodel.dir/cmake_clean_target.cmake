file(REMOVE_RECURSE
  "libgpuecc_hwmodel.a"
)
