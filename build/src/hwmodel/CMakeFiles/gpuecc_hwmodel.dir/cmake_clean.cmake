file(REMOVE_RECURSE
  "CMakeFiles/gpuecc_hwmodel.dir/circuits.cpp.o"
  "CMakeFiles/gpuecc_hwmodel.dir/circuits.cpp.o.d"
  "CMakeFiles/gpuecc_hwmodel.dir/netlist.cpp.o"
  "CMakeFiles/gpuecc_hwmodel.dir/netlist.cpp.o.d"
  "CMakeFiles/gpuecc_hwmodel.dir/xor_network.cpp.o"
  "CMakeFiles/gpuecc_hwmodel.dir/xor_network.cpp.o.d"
  "libgpuecc_hwmodel.a"
  "libgpuecc_hwmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuecc_hwmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
