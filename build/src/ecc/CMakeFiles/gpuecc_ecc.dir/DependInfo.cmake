
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecc/binary_scheme.cpp" "src/ecc/CMakeFiles/gpuecc_ecc.dir/binary_scheme.cpp.o" "gcc" "src/ecc/CMakeFiles/gpuecc_ecc.dir/binary_scheme.cpp.o.d"
  "/root/repo/src/ecc/csc.cpp" "src/ecc/CMakeFiles/gpuecc_ecc.dir/csc.cpp.o" "gcc" "src/ecc/CMakeFiles/gpuecc_ecc.dir/csc.cpp.o.d"
  "/root/repo/src/ecc/placement.cpp" "src/ecc/CMakeFiles/gpuecc_ecc.dir/placement.cpp.o" "gcc" "src/ecc/CMakeFiles/gpuecc_ecc.dir/placement.cpp.o.d"
  "/root/repo/src/ecc/protected_memory.cpp" "src/ecc/CMakeFiles/gpuecc_ecc.dir/protected_memory.cpp.o" "gcc" "src/ecc/CMakeFiles/gpuecc_ecc.dir/protected_memory.cpp.o.d"
  "/root/repo/src/ecc/reconfigurable.cpp" "src/ecc/CMakeFiles/gpuecc_ecc.dir/reconfigurable.cpp.o" "gcc" "src/ecc/CMakeFiles/gpuecc_ecc.dir/reconfigurable.cpp.o.d"
  "/root/repo/src/ecc/registry.cpp" "src/ecc/CMakeFiles/gpuecc_ecc.dir/registry.cpp.o" "gcc" "src/ecc/CMakeFiles/gpuecc_ecc.dir/registry.cpp.o.d"
  "/root/repo/src/ecc/rs_scheme.cpp" "src/ecc/CMakeFiles/gpuecc_ecc.dir/rs_scheme.cpp.o" "gcc" "src/ecc/CMakeFiles/gpuecc_ecc.dir/rs_scheme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpuecc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/codes/CMakeFiles/gpuecc_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/interleave/CMakeFiles/gpuecc_interleave.dir/DependInfo.cmake"
  "/root/repo/build/src/rs/CMakeFiles/gpuecc_rs.dir/DependInfo.cmake"
  "/root/repo/build/src/gf2/CMakeFiles/gpuecc_gf2.dir/DependInfo.cmake"
  "/root/repo/build/src/gf256/CMakeFiles/gpuecc_gf256.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
