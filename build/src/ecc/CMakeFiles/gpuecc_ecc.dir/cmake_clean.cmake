file(REMOVE_RECURSE
  "CMakeFiles/gpuecc_ecc.dir/binary_scheme.cpp.o"
  "CMakeFiles/gpuecc_ecc.dir/binary_scheme.cpp.o.d"
  "CMakeFiles/gpuecc_ecc.dir/csc.cpp.o"
  "CMakeFiles/gpuecc_ecc.dir/csc.cpp.o.d"
  "CMakeFiles/gpuecc_ecc.dir/placement.cpp.o"
  "CMakeFiles/gpuecc_ecc.dir/placement.cpp.o.d"
  "CMakeFiles/gpuecc_ecc.dir/protected_memory.cpp.o"
  "CMakeFiles/gpuecc_ecc.dir/protected_memory.cpp.o.d"
  "CMakeFiles/gpuecc_ecc.dir/reconfigurable.cpp.o"
  "CMakeFiles/gpuecc_ecc.dir/reconfigurable.cpp.o.d"
  "CMakeFiles/gpuecc_ecc.dir/registry.cpp.o"
  "CMakeFiles/gpuecc_ecc.dir/registry.cpp.o.d"
  "CMakeFiles/gpuecc_ecc.dir/rs_scheme.cpp.o"
  "CMakeFiles/gpuecc_ecc.dir/rs_scheme.cpp.o.d"
  "libgpuecc_ecc.a"
  "libgpuecc_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuecc_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
