file(REMOVE_RECURSE
  "libgpuecc_ecc.a"
)
