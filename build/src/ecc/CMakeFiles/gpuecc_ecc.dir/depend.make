# Empty dependencies file for gpuecc_ecc.
# This may be replaced when dependencies are built.
