file(REMOVE_RECURSE
  "libgpuecc_beam.a"
)
