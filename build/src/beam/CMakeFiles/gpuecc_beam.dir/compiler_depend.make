# Empty compiler generated dependencies file for gpuecc_beam.
# This may be replaced when dependencies are built.
