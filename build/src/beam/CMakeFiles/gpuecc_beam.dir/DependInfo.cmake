
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/beam/campaign.cpp" "src/beam/CMakeFiles/gpuecc_beam.dir/campaign.cpp.o" "gcc" "src/beam/CMakeFiles/gpuecc_beam.dir/campaign.cpp.o.d"
  "/root/repo/src/beam/classify.cpp" "src/beam/CMakeFiles/gpuecc_beam.dir/classify.cpp.o" "gcc" "src/beam/CMakeFiles/gpuecc_beam.dir/classify.cpp.o.d"
  "/root/repo/src/beam/damage.cpp" "src/beam/CMakeFiles/gpuecc_beam.dir/damage.cpp.o" "gcc" "src/beam/CMakeFiles/gpuecc_beam.dir/damage.cpp.o.d"
  "/root/repo/src/beam/events.cpp" "src/beam/CMakeFiles/gpuecc_beam.dir/events.cpp.o" "gcc" "src/beam/CMakeFiles/gpuecc_beam.dir/events.cpp.o.d"
  "/root/repo/src/beam/microbenchmark.cpp" "src/beam/CMakeFiles/gpuecc_beam.dir/microbenchmark.cpp.o" "gcc" "src/beam/CMakeFiles/gpuecc_beam.dir/microbenchmark.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpuecc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hbm2/CMakeFiles/gpuecc_hbm2.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
