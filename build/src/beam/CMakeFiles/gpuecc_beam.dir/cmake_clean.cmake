file(REMOVE_RECURSE
  "CMakeFiles/gpuecc_beam.dir/campaign.cpp.o"
  "CMakeFiles/gpuecc_beam.dir/campaign.cpp.o.d"
  "CMakeFiles/gpuecc_beam.dir/classify.cpp.o"
  "CMakeFiles/gpuecc_beam.dir/classify.cpp.o.d"
  "CMakeFiles/gpuecc_beam.dir/damage.cpp.o"
  "CMakeFiles/gpuecc_beam.dir/damage.cpp.o.d"
  "CMakeFiles/gpuecc_beam.dir/events.cpp.o"
  "CMakeFiles/gpuecc_beam.dir/events.cpp.o.d"
  "CMakeFiles/gpuecc_beam.dir/microbenchmark.cpp.o"
  "CMakeFiles/gpuecc_beam.dir/microbenchmark.cpp.o.d"
  "libgpuecc_beam.a"
  "libgpuecc_beam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuecc_beam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
