# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("gf2")
subdirs("gf256")
subdirs("codes")
subdirs("interleave")
subdirs("rs")
subdirs("ecc")
subdirs("faultsim")
subdirs("hbm2")
subdirs("beam")
subdirs("hwmodel")
subdirs("reliability")
