file(REMOVE_RECURSE
  "libgpuecc_gf2.a"
)
