file(REMOVE_RECURSE
  "CMakeFiles/gpuecc_gf2.dir/matrix.cpp.o"
  "CMakeFiles/gpuecc_gf2.dir/matrix.cpp.o.d"
  "libgpuecc_gf2.a"
  "libgpuecc_gf2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuecc_gf2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
