# Empty dependencies file for gpuecc_gf2.
# This may be replaced when dependencies are built.
