file(REMOVE_RECURSE
  "CMakeFiles/gpuecc_gf256.dir/gf256.cpp.o"
  "CMakeFiles/gpuecc_gf256.dir/gf256.cpp.o.d"
  "libgpuecc_gf256.a"
  "libgpuecc_gf256.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuecc_gf256.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
