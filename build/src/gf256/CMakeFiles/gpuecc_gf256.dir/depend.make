# Empty dependencies file for gpuecc_gf256.
# This may be replaced when dependencies are built.
