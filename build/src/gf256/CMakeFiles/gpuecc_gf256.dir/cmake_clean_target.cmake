file(REMOVE_RECURSE
  "libgpuecc_gf256.a"
)
