
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faultsim/evaluator.cpp" "src/faultsim/CMakeFiles/gpuecc_faultsim.dir/evaluator.cpp.o" "gcc" "src/faultsim/CMakeFiles/gpuecc_faultsim.dir/evaluator.cpp.o.d"
  "/root/repo/src/faultsim/patterns.cpp" "src/faultsim/CMakeFiles/gpuecc_faultsim.dir/patterns.cpp.o" "gcc" "src/faultsim/CMakeFiles/gpuecc_faultsim.dir/patterns.cpp.o.d"
  "/root/repo/src/faultsim/permanent.cpp" "src/faultsim/CMakeFiles/gpuecc_faultsim.dir/permanent.cpp.o" "gcc" "src/faultsim/CMakeFiles/gpuecc_faultsim.dir/permanent.cpp.o.d"
  "/root/repo/src/faultsim/weighted.cpp" "src/faultsim/CMakeFiles/gpuecc_faultsim.dir/weighted.cpp.o" "gcc" "src/faultsim/CMakeFiles/gpuecc_faultsim.dir/weighted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpuecc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/gpuecc_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/interleave/CMakeFiles/gpuecc_interleave.dir/DependInfo.cmake"
  "/root/repo/build/src/codes/CMakeFiles/gpuecc_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/gf2/CMakeFiles/gpuecc_gf2.dir/DependInfo.cmake"
  "/root/repo/build/src/rs/CMakeFiles/gpuecc_rs.dir/DependInfo.cmake"
  "/root/repo/build/src/gf256/CMakeFiles/gpuecc_gf256.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
