file(REMOVE_RECURSE
  "libgpuecc_faultsim.a"
)
