file(REMOVE_RECURSE
  "CMakeFiles/gpuecc_faultsim.dir/evaluator.cpp.o"
  "CMakeFiles/gpuecc_faultsim.dir/evaluator.cpp.o.d"
  "CMakeFiles/gpuecc_faultsim.dir/patterns.cpp.o"
  "CMakeFiles/gpuecc_faultsim.dir/patterns.cpp.o.d"
  "CMakeFiles/gpuecc_faultsim.dir/permanent.cpp.o"
  "CMakeFiles/gpuecc_faultsim.dir/permanent.cpp.o.d"
  "CMakeFiles/gpuecc_faultsim.dir/weighted.cpp.o"
  "CMakeFiles/gpuecc_faultsim.dir/weighted.cpp.o.d"
  "libgpuecc_faultsim.a"
  "libgpuecc_faultsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuecc_faultsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
