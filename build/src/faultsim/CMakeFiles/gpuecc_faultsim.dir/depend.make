# Empty dependencies file for gpuecc_faultsim.
# This may be replaced when dependencies are built.
