# CMake generated Testfile for 
# Source directory: /root/repo/src/interleave
# Build directory: /root/repo/build/src/interleave
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
