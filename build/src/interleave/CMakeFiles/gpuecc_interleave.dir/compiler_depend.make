# Empty compiler generated dependencies file for gpuecc_interleave.
# This may be replaced when dependencies are built.
