file(REMOVE_RECURSE
  "CMakeFiles/gpuecc_interleave.dir/swizzle.cpp.o"
  "CMakeFiles/gpuecc_interleave.dir/swizzle.cpp.o.d"
  "libgpuecc_interleave.a"
  "libgpuecc_interleave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuecc_interleave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
