file(REMOVE_RECURSE
  "libgpuecc_interleave.a"
)
