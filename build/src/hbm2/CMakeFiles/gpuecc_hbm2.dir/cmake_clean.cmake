file(REMOVE_RECURSE
  "CMakeFiles/gpuecc_hbm2.dir/device.cpp.o"
  "CMakeFiles/gpuecc_hbm2.dir/device.cpp.o.d"
  "CMakeFiles/gpuecc_hbm2.dir/geometry.cpp.o"
  "CMakeFiles/gpuecc_hbm2.dir/geometry.cpp.o.d"
  "CMakeFiles/gpuecc_hbm2.dir/retention.cpp.o"
  "CMakeFiles/gpuecc_hbm2.dir/retention.cpp.o.d"
  "libgpuecc_hbm2.a"
  "libgpuecc_hbm2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuecc_hbm2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
