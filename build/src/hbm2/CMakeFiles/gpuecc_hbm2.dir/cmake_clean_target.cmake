file(REMOVE_RECURSE
  "libgpuecc_hbm2.a"
)
