# Empty compiler generated dependencies file for gpuecc_hbm2.
# This may be replaced when dependencies are built.
