# Empty dependencies file for gpuecc_reliability.
# This may be replaced when dependencies are built.
