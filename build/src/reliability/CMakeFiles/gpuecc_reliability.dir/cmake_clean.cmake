file(REMOVE_RECURSE
  "CMakeFiles/gpuecc_reliability.dir/fit.cpp.o"
  "CMakeFiles/gpuecc_reliability.dir/fit.cpp.o.d"
  "CMakeFiles/gpuecc_reliability.dir/history.cpp.o"
  "CMakeFiles/gpuecc_reliability.dir/history.cpp.o.d"
  "CMakeFiles/gpuecc_reliability.dir/system.cpp.o"
  "CMakeFiles/gpuecc_reliability.dir/system.cpp.o.d"
  "libgpuecc_reliability.a"
  "libgpuecc_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuecc_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
