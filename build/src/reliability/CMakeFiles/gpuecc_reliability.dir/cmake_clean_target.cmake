file(REMOVE_RECURSE
  "libgpuecc_reliability.a"
)
