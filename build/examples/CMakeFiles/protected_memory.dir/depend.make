# Empty dependencies file for protected_memory.
# This may be replaced when dependencies are built.
