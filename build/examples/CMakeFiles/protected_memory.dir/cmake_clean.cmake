file(REMOVE_RECURSE
  "CMakeFiles/protected_memory.dir/protected_memory.cpp.o"
  "CMakeFiles/protected_memory.dir/protected_memory.cpp.o.d"
  "protected_memory"
  "protected_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protected_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
