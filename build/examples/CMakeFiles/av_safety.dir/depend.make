# Empty dependencies file for av_safety.
# This may be replaced when dependencies are built.
