file(REMOVE_RECURSE
  "CMakeFiles/av_safety.dir/av_safety.cpp.o"
  "CMakeFiles/av_safety.dir/av_safety.cpp.o.d"
  "av_safety"
  "av_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
