# Empty compiler generated dependencies file for export_rtl.
# This may be replaced when dependencies are built.
