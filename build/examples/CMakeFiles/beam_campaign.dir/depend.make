# Empty dependencies file for beam_campaign.
# This may be replaced when dependencies are built.
