file(REMOVE_RECURSE
  "CMakeFiles/test_swizzle.dir/test_swizzle.cpp.o"
  "CMakeFiles/test_swizzle.dir/test_swizzle.cpp.o.d"
  "test_swizzle"
  "test_swizzle.pdb"
  "test_swizzle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swizzle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
