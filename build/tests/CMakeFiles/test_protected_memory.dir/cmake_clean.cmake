file(REMOVE_RECURSE
  "CMakeFiles/test_protected_memory.dir/test_protected_memory.cpp.o"
  "CMakeFiles/test_protected_memory.dir/test_protected_memory.cpp.o.d"
  "test_protected_memory"
  "test_protected_memory.pdb"
  "test_protected_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protected_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
