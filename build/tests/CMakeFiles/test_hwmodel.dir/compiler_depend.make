# Empty compiler generated dependencies file for test_hwmodel.
# This may be replaced when dependencies are built.
