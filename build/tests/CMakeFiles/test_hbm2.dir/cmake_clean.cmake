file(REMOVE_RECURSE
  "CMakeFiles/test_hbm2.dir/test_hbm2.cpp.o"
  "CMakeFiles/test_hbm2.dir/test_hbm2.cpp.o.d"
  "test_hbm2"
  "test_hbm2.pdb"
  "test_hbm2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hbm2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
