# Empty compiler generated dependencies file for test_hbm2.
# This may be replaced when dependencies are built.
