# Empty dependencies file for test_reconfigurable.
# This may be replaced when dependencies are built.
