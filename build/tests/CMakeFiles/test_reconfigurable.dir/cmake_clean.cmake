file(REMOVE_RECURSE
  "CMakeFiles/test_reconfigurable.dir/test_reconfigurable.cpp.o"
  "CMakeFiles/test_reconfigurable.dir/test_reconfigurable.cpp.o.d"
  "test_reconfigurable"
  "test_reconfigurable.pdb"
  "test_reconfigurable[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reconfigurable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
