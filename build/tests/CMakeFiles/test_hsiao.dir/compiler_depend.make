# Empty compiler generated dependencies file for test_hsiao.
# This may be replaced when dependencies are built.
