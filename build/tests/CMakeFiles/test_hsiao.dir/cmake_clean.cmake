file(REMOVE_RECURSE
  "CMakeFiles/test_hsiao.dir/test_hsiao.cpp.o"
  "CMakeFiles/test_hsiao.dir/test_hsiao.cpp.o.d"
  "test_hsiao"
  "test_hsiao.pdb"
  "test_hsiao[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hsiao.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
