# Empty dependencies file for test_linear_code.
# This may be replaced when dependencies are built.
