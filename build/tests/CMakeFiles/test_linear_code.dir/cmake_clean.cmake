file(REMOVE_RECURSE
  "CMakeFiles/test_linear_code.dir/test_linear_code.cpp.o"
  "CMakeFiles/test_linear_code.dir/test_linear_code.cpp.o.d"
  "test_linear_code"
  "test_linear_code.pdb"
  "test_linear_code[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linear_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
