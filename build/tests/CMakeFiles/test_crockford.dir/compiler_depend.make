# Empty compiler generated dependencies file for test_crockford.
# This may be replaced when dependencies are built.
