file(REMOVE_RECURSE
  "CMakeFiles/test_crockford.dir/test_crockford.cpp.o"
  "CMakeFiles/test_crockford.dir/test_crockford.cpp.o.d"
  "test_crockford"
  "test_crockford.pdb"
  "test_crockford[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crockford.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
