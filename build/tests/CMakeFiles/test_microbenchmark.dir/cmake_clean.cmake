file(REMOVE_RECURSE
  "CMakeFiles/test_microbenchmark.dir/test_microbenchmark.cpp.o"
  "CMakeFiles/test_microbenchmark.dir/test_microbenchmark.cpp.o.d"
  "test_microbenchmark"
  "test_microbenchmark.pdb"
  "test_microbenchmark[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_microbenchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
