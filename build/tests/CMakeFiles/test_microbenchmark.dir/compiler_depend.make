# Empty compiler generated dependencies file for test_microbenchmark.
# This may be replaced when dependencies are built.
