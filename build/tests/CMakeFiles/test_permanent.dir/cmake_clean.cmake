file(REMOVE_RECURSE
  "CMakeFiles/test_permanent.dir/test_permanent.cpp.o"
  "CMakeFiles/test_permanent.dir/test_permanent.cpp.o.d"
  "test_permanent"
  "test_permanent.pdb"
  "test_permanent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_permanent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
