# Empty compiler generated dependencies file for test_permanent.
# This may be replaced when dependencies are built.
