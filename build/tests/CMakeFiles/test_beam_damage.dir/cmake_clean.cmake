file(REMOVE_RECURSE
  "CMakeFiles/test_beam_damage.dir/test_beam_damage.cpp.o"
  "CMakeFiles/test_beam_damage.dir/test_beam_damage.cpp.o.d"
  "test_beam_damage"
  "test_beam_damage.pdb"
  "test_beam_damage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_beam_damage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
