# Empty compiler generated dependencies file for test_beam_damage.
# This may be replaced when dependencies are built.
