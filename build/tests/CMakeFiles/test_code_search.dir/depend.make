# Empty dependencies file for test_code_search.
# This may be replaced when dependencies are built.
