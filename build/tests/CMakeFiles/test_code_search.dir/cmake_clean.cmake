file(REMOVE_RECURSE
  "CMakeFiles/test_code_search.dir/test_code_search.cpp.o"
  "CMakeFiles/test_code_search.dir/test_code_search.cpp.o.d"
  "test_code_search"
  "test_code_search.pdb"
  "test_code_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_code_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
