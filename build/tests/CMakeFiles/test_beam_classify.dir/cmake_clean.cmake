file(REMOVE_RECURSE
  "CMakeFiles/test_beam_classify.dir/test_beam_classify.cpp.o"
  "CMakeFiles/test_beam_classify.dir/test_beam_classify.cpp.o.d"
  "test_beam_classify"
  "test_beam_classify.pdb"
  "test_beam_classify[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_beam_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
