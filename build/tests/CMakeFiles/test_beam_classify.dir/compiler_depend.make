# Empty compiler generated dependencies file for test_beam_classify.
# This may be replaced when dependencies are built.
