file(REMOVE_RECURSE
  "CMakeFiles/test_beam_events.dir/test_beam_events.cpp.o"
  "CMakeFiles/test_beam_events.dir/test_beam_events.cpp.o.d"
  "test_beam_events"
  "test_beam_events.pdb"
  "test_beam_events[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_beam_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
