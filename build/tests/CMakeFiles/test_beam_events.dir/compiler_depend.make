# Empty compiler generated dependencies file for test_beam_events.
# This may be replaced when dependencies are built.
