# Empty dependencies file for test_sec2bec.
# This may be replaced when dependencies are built.
