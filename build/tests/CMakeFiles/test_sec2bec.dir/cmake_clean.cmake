file(REMOVE_RECURSE
  "CMakeFiles/test_sec2bec.dir/test_sec2bec.cpp.o"
  "CMakeFiles/test_sec2bec.dir/test_sec2bec.cpp.o.d"
  "test_sec2bec"
  "test_sec2bec.pdb"
  "test_sec2bec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sec2bec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
