file(REMOVE_RECURSE
  "CMakeFiles/test_erasure.dir/test_erasure.cpp.o"
  "CMakeFiles/test_erasure.dir/test_erasure.cpp.o.d"
  "test_erasure"
  "test_erasure.pdb"
  "test_erasure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_erasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
