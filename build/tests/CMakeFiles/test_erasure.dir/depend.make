# Empty dependencies file for test_erasure.
# This may be replaced when dependencies are built.
