
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3.cpp" "bench/CMakeFiles/bench_fig3.dir/bench_fig3.cpp.o" "gcc" "bench/CMakeFiles/bench_fig3.dir/bench_fig3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/beam/CMakeFiles/gpuecc_beam.dir/DependInfo.cmake"
  "/root/repo/build/src/hbm2/CMakeFiles/gpuecc_hbm2.dir/DependInfo.cmake"
  "/root/repo/build/src/hwmodel/CMakeFiles/gpuecc_hwmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/gpuecc_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/faultsim/CMakeFiles/gpuecc_faultsim.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/gpuecc_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/codes/CMakeFiles/gpuecc_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/gf2/CMakeFiles/gpuecc_gf2.dir/DependInfo.cmake"
  "/root/repo/build/src/interleave/CMakeFiles/gpuecc_interleave.dir/DependInfo.cmake"
  "/root/repo/build/src/rs/CMakeFiles/gpuecc_rs.dir/DependInfo.cmake"
  "/root/repo/build/src/gf256/CMakeFiles/gpuecc_gf256.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpuecc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
