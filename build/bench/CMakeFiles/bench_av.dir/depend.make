# Empty dependencies file for bench_av.
# This may be replaced when dependencies are built.
