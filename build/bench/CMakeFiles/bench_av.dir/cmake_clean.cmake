file(REMOVE_RECURSE
  "CMakeFiles/bench_av.dir/bench_av.cpp.o"
  "CMakeFiles/bench_av.dir/bench_av.cpp.o.d"
  "bench_av"
  "bench_av.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_av.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
