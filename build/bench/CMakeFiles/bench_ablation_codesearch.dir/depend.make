# Empty dependencies file for bench_ablation_codesearch.
# This may be replaced when dependencies are built.
