file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_codesearch.dir/bench_ablation_codesearch.cpp.o"
  "CMakeFiles/bench_ablation_codesearch.dir/bench_ablation_codesearch.cpp.o.d"
  "bench_ablation_codesearch"
  "bench_ablation_codesearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_codesearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
