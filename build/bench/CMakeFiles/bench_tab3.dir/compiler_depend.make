# Empty compiler generated dependencies file for bench_tab3.
# This may be replaced when dependencies are built.
