file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3.dir/bench_tab3.cpp.o"
  "CMakeFiles/bench_tab3.dir/bench_tab3.cpp.o.d"
  "bench_tab3"
  "bench_tab3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
