file(REMOVE_RECURSE
  "CMakeFiles/bench_permanent.dir/bench_permanent.cpp.o"
  "CMakeFiles/bench_permanent.dir/bench_permanent.cpp.o.d"
  "bench_permanent"
  "bench_permanent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_permanent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
