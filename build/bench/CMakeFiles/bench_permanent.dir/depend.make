# Empty dependencies file for bench_permanent.
# This may be replaced when dependencies are built.
