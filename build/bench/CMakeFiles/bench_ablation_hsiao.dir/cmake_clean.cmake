file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hsiao.dir/bench_ablation_hsiao.cpp.o"
  "CMakeFiles/bench_ablation_hsiao.dir/bench_ablation_hsiao.cpp.o.d"
  "bench_ablation_hsiao"
  "bench_ablation_hsiao.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hsiao.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
