# Empty compiler generated dependencies file for bench_ablation_hsiao.
# This may be replaced when dependencies are built.
