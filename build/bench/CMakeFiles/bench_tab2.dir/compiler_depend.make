# Empty compiler generated dependencies file for bench_tab2.
# This may be replaced when dependencies are built.
