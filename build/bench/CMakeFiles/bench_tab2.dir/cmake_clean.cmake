file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2.dir/bench_tab2.cpp.o"
  "CMakeFiles/bench_tab2.dir/bench_tab2.cpp.o.d"
  "bench_tab2"
  "bench_tab2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
