file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1.dir/bench_tab1.cpp.o"
  "CMakeFiles/bench_tab1.dir/bench_tab1.cpp.o.d"
  "bench_tab1"
  "bench_tab1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
