# Empty compiler generated dependencies file for bench_tab1.
# This may be replaced when dependencies are built.
