# Empty dependencies file for bench_ablation_stride.
# This may be replaced when dependencies are built.
