/**
 * @file
 * fleet_journal: replay a fleet campaign's event journal.
 *
 * Reads the NDJSON file a campaign wrote under --journal, validates
 * it end to end (schema version on every line, consecutive sequence
 * numbers — any gap is lost events, reported as an error), then
 * prints a post-mortem: unit-settlement counts by disposition,
 * per-host activity with dispatch→result latencies, and a latency
 * histogram. --timeline additionally prints every event as one
 * readable line, in order.
 *
 * Exit codes: 0 on a valid journal, 1 on a file or validation error —
 * so CI can treat a gapped or version-skewed journal as a failure.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "fleet/journal.hpp"
#include "sim/report.hpp"

using namespace gpuecc;

int
main(int argc, char** argv)
{
    Cli cli;
    cli.addFlag("journal", "",
                "journal NDJSON file written by a campaign's "
                "--journal flag (required)");
    cli.addFlag("timeline", "false",
                "also print every event as one line, in order");
    cli.parse(argc, argv,
              "Validate and summarize a fleet campaign event "
              "journal.");

    const std::string path = cli.getString("journal");
    if (path.empty())
        fatal("--journal is required");

    Result<std::string> text = sim::loadTextFile(path);
    if (!text.ok())
        fatal(path + ": " + text.status().toString());

    Result<std::vector<sim::fleet::JournalEvent>> events =
        sim::fleet::parseJournal(text.value());
    if (!events.ok())
        fatal(path + ": " + events.status().toString());

    if (cli.getBool("timeline")) {
        std::fputs(
            sim::fleet::formatJournalTimeline(events.value()).c_str(),
            stdout);
        std::fputs("\n", stdout);
    }
    const sim::fleet::JournalSummary summary =
        sim::fleet::summarizeJournal(events.value());
    std::fputs(sim::fleet::formatJournalSummary(summary).c_str(),
               stdout);
    return 0;
}
