/**
 * @file
 * fleet_agent: remote worker for a --fleet-listen campaign service.
 *
 * Start one per host (or several per host — each is a
 * single-threaded worker process) and point them at a running
 * service:
 *
 *   conf_micro --fleet-listen '*:7077' --fleet-secret s3cret ...
 *   fleet_agent --connect lab-server:7077 --secret s3cret
 *
 * The agent authenticates with an HMAC challenge-response (mutually —
 * it refuses a listener that cannot prove it holds the secret too),
 * rebuilds the campaign plan from the config line, refuses a plan
 * whose fingerprint doesn't match, then evaluates work units with
 * heartbeats until the service drains it. Connection loss triggers
 * exponential-backoff reconnects; a wrong secret exits immediately
 * (code 2). SIGTERM/SIGINT stop the agent cleanly between rounds.
 */

#include <string>

#include "common/cli.hpp"
#include "common/interrupt.hpp"
#include "common/log.hpp"
#include "net/agent.hpp"
#include "net/socket.hpp"

using namespace gpuecc;

int
main(int argc, char** argv)
{
    Cli cli;
    cli.addFlag("connect", "127.0.0.1:7077",
                "host:port of the fleet campaign service");
    cli.addFlag("secret", "",
                "shared secret (falls back to $GPUECC_FLEET_SECRET; "
                "must match the service's --fleet-secret)");
    cli.addFlag("name", "",
                "agent name reported in the service's worker records "
                "(default: agent-<pid>)");
    cli.addFlag("heartbeat-interval", "2",
                "seconds between heartbeats while evaluating (keep "
                "well under the service's --fleet-heartbeat-timeout)");
    cli.addFlag("io-timeout", "30",
                "seconds of wire silence before the service is "
                "presumed dead and the agent reconnects");
    cli.addFlag("backoff-initial", "0.5",
                "first reconnect delay in seconds (doubles per "
                "failure up to --backoff-max; resets after each "
                "successful handshake)");
    cli.addFlag("backoff-max", "30", "reconnect delay ceiling");
    cli.addFlag("max-reconnects", "10",
                "consecutive failed connect/serve rounds before "
                "giving up (-1 = retry forever)");
    cli.parse(argc, argv,
              "Remote worker agent for a gpuecc fleet campaign "
              "service (--fleet-listen).");

    Result<net::SocketAddress> address =
        net::parseSocketAddress(cli.getString("connect"));
    if (!address.ok())
        fatal("--connect: " + address.status().toString());

    net::FleetAgentOptions options;
    options.host = address.value().host;
    options.port = address.value().port;
    options.secret = cli.getString("secret");
    if (options.secret.empty()) {
        if (const char* env = std::getenv("GPUECC_FLEET_SECRET"))
            options.secret = env;
    }
    options.name = cli.getString("name");
    options.heartbeat_interval_s = cli.getDouble("heartbeat-interval");
    options.io_timeout_s = cli.getDouble("io-timeout");
    options.backoff_initial_s = cli.getDouble("backoff-initial");
    options.backoff_max_s = cli.getDouble("backoff-max");
    options.max_reconnects =
        static_cast<int>(cli.getInt("max-reconnects"));
    if (options.heartbeat_interval_s <= 0)
        fatal("--heartbeat-interval must be positive");
    if (options.io_timeout_s <= 0)
        fatal("--io-timeout must be positive");
    if (options.backoff_initial_s <= 0 ||
        options.backoff_max_s < options.backoff_initial_s)
        fatal("--backoff-initial/--backoff-max must be positive and "
              "ordered");

    installInterruptHandlers();
    return net::runFleetAgent(options);
}
