/**
 * @file
 * compare_runs: diff the manifests and throughput of two reports.
 *
 * Loads two JSON artifacts this repo emits (campaign reports,
 * BENCH_throughput.json), prints any run-manifest differences (build
 * type, compiler, hardware, backend — the usual reasons two numbers
 * aren't comparable), then compares every throughput metric found in
 * both documents. A drop beyond --threshold percent is a regression:
 * each is flagged and the exit code is 2, so CI can annotate without
 * hard-failing (|| true) or gate (plain invocation) as it chooses.
 *
 * Metrics and manifest keys present on only one side are vintage,
 * not breakage: a baseline that predates decode_batch_mops /
 * sample_mops / simd_isa is noted and those entries skipped, so any
 * historical BENCH artifact stays diffable against today's.
 *
 * --scaling-floor additionally gates the candidate's strong-scaling
 * sweeps (bench_throughput's campaign_scaling and fleet_scaling
 * sections): parallel efficiency below the floor at any point with
 * 2..hardware_threads workers exits 2. With a floor set the baseline
 * becomes optional —
 * the gate judges the candidate alone — and sweeps marked
 * "valid": false (1-hardware-thread hosts) are skipped, not failed.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "sim/json.hpp"
#include "sim/report.hpp"

using namespace gpuecc;

namespace {

/** Keys whose numeric values mean "higher is better" throughput. */
const char* const kThroughputKeys[] = {
    "trials_per_second", "encode_mops",  "decode_clean_mops",
    "decode_1bit_mops",  "speedup",      "campaign_speedup",
    "decode_speedup_vs_reference",
    // Per-(scheme, backend) keys from bench_throughput's "backends"
    // blocks — how an RS SIMD decode regression on one backend is
    // caught even when the other backend's numbers hold.
    "decode_mops", "decode_batch_mops",
    // sampleErrorMask front-end throughput per pattern.
    "sample_mops",
};

bool
isThroughputKey(const std::string& key)
{
    for (const char* k : kThroughputKeys) {
        if (key == k)
            return true;
    }
    return false;
}

struct Metric
{
    std::string path;
    double value;
};

/** Stable label for one array element (scheme/threads if present). */
std::string
elementLabel(const sim::JsonValue& element, std::size_t index)
{
    if (element.isObject()) {
        if (const sim::JsonValue* scheme = element.find("scheme")) {
            if (scheme->isString())
                return scheme->asString().value();
        }
        if (const sim::JsonValue* backend = element.find("backend")) {
            if (backend->isString())
                return backend->asString().value();
        }
        if (const sim::JsonValue* threads = element.find("threads")) {
            if (threads->isNumber()) {
                return "threads=" +
                       std::to_string(static_cast<long long>(
                           threads->asDouble().valueOr(0.0)));
            }
        }
        if (const sim::JsonValue* pattern = element.find("pattern")) {
            if (pattern->isString())
                return pattern->asString().value();
        }
    }
    return std::to_string(index);
}

void
collectMetrics(const sim::JsonValue& value, const std::string& path,
               std::vector<Metric>& out)
{
    if (value.isObject()) {
        for (const auto& [key, member] : value.members()) {
            const std::string child =
                path.empty() ? key : path + "." + key;
            if (member.isNumber() && isThroughputKey(key)) {
                out.push_back(
                    {child, member.asDouble().valueOr(0.0)});
            } else {
                collectMetrics(member, child, out);
            }
        }
    } else if (value.isArray()) {
        std::size_t i = 0;
        for (const sim::JsonValue& element : value.elements()) {
            collectMetrics(element,
                           path + "[" + elementLabel(element, i) +
                               "]",
                           out);
            ++i;
        }
    }
}

const Metric*
findMetric(const std::vector<Metric>& metrics,
           const std::string& path)
{
    for (const Metric& m : metrics) {
        if (m.path == path)
            return &m;
    }
    return nullptr;
}

/** Flatten a manifest subtree to "dotted.key = scalar text" pairs. */
void
flattenScalars(const sim::JsonValue& value, const std::string& path,
               std::vector<std::pair<std::string, std::string>>& out)
{
    if (value.isObject()) {
        for (const auto& [key, member] : value.members()) {
            flattenScalars(member,
                           path.empty() ? key : path + "." + key,
                           out);
        }
    } else if (value.isArray()) {
        std::size_t i = 0;
        for (const sim::JsonValue& element : value.elements())
            flattenScalars(element,
                           path + "[" + std::to_string(i++) + "]",
                           out);
    } else if (value.isString()) {
        out.emplace_back(path, value.asString().value());
    } else if (value.isNumber()) {
        out.emplace_back(path,
                         std::to_string(
                             value.asDouble().valueOr(0.0)));
    } else if (value.isBool()) {
        out.emplace_back(path,
                         value.asBool().valueOr(false) ? "true"
                                                       : "false");
    }
}

std::string
lookupFlat(
    const std::vector<std::pair<std::string, std::string>>& flat,
    const std::string& key)
{
    for (const auto& [k, v] : flat) {
        if (k == key)
            return v;
    }
    return "<absent>";
}

/**
 * Flatten a manifest, excluding the "hosts" array: per-host unit
 * splits are scheduling, not provenance — two correct fleet runs of
 * the same spec legitimately divide the units differently, so diffing
 * them scalar-by-scalar would cry wolf on every rerun. The section
 * gets its own tolerant comparison below.
 */
void
flattenManifest(const sim::JsonValue& manifest,
                std::vector<std::pair<std::string, std::string>>& out)
{
    if (!manifest.isObject()) {
        flattenScalars(manifest, "", out);
        return;
    }
    for (const auto& [key, member] : manifest.members()) {
        if (key == "hosts")
            continue;
        flattenScalars(member, key, out);
    }
}

/** Sum one numeric field over a manifest "hosts" array. */
double
sumHostField(const sim::JsonValue& hosts, const char* field)
{
    double total = 0.0;
    for (const sim::JsonValue& host : hosts.elements()) {
        if (const sim::JsonValue* v = host.find(field))
            total += v->asDouble().valueOr(0.0);
    }
    return total;
}

/**
 * Compare the manifest "hosts" sections with older-baseline
 * tolerance: a baseline that predates the section (or an in-process
 * run, which omits it) compares clean. When both sides carry it, the
 * per-host split is scheduling noise, so only the fleet-wide sums —
 * host count, units, shards, trials — are diffed, informationally.
 */
void
compareHostsSections(const sim::JsonValue* base_manifest,
                     const sim::JsonValue* cand_manifest)
{
    const sim::JsonValue* base_hosts =
        base_manifest != nullptr ? base_manifest->find("hosts")
                                 : nullptr;
    const sim::JsonValue* cand_hosts =
        cand_manifest != nullptr ? cand_manifest->find("hosts")
                                 : nullptr;
    if (cand_hosts == nullptr && base_hosts == nullptr)
        return; // neither run was a fleet campaign
    if (cand_hosts == nullptr) {
        std::printf("manifest hosts: baseline has %zu host(s), "
                    "candidate ran in-process (informational)\n",
                    base_hosts->elements().size());
        return;
    }
    if (base_hosts == nullptr) {
        std::printf("manifest hosts: candidate has %zu host(s); "
                    "baseline predates the section or ran "
                    "in-process (skipped)\n",
                    cand_hosts->elements().size());
        return;
    }
    const char* const sums[] = {"units", "shards", "trials"};
    bool differs =
        base_hosts->elements().size() != cand_hosts->elements().size();
    for (const char* field : sums) {
        if (sumHostField(*base_hosts, field) !=
            sumHostField(*cand_hosts, field))
            differs = true;
    }
    if (!differs) {
        std::printf("manifest hosts: %zu host(s), fleet-wide sums "
                    "match\n",
                    cand_hosts->elements().size());
        return;
    }
    std::printf("manifest hosts: %zu -> %zu host(s)\n",
                base_hosts->elements().size(),
                cand_hosts->elements().size());
    for (const char* field : sums) {
        const double b = sumHostField(*base_hosts, field);
        const double c = sumHostField(*cand_hosts, field);
        if (b != c) {
            std::printf("manifest hosts.%-22s %.0f -> %.0f "
                        "(fleet-wide sum)\n",
                        field, b, c);
        }
    }
}

sim::JsonValue
loadReport(const std::string& path)
{
    Result<std::string> text = sim::loadTextFile(path);
    if (!text.ok())
        fatal(text.status().toString());
    Result<sim::JsonValue> doc = sim::parseJson(text.value());
    if (!doc.ok())
        fatal(path + ": " + doc.status().toString());
    return std::move(doc).value();
}

/**
 * Gate one strong-scaling section of the candidate: every sweep
 * point with 2 <= threads/workers <= hardware_threads must reach the
 * efficiency floor. Points beyond the core count only measure
 * oversubscription and are exempt. Returns the number of violations;
 * a section that is missing (older artifacts predate fleet_scaling),
 * marked "valid": false, or captured on a 1-hardware-thread host is
 * reported and skipped (0 violations) — a host that cannot show
 * parallelism must not fail for lacking it.
 */
int
gateScalingSection(const sim::JsonValue& cand, const char* section,
                   const char* unit_key, double floor)
{
    const sim::JsonValue* scaling = cand.find(section);
    if (scaling == nullptr || !scaling->isObject()) {
        std::printf("scaling gate: no %s object in candidate; "
                    "skipping\n",
                    section);
        return 0;
    }
    const sim::JsonValue* hw = scaling->find("hardware_threads");
    const long long hardware_threads =
        hw != nullptr
            ? static_cast<long long>(hw->asDouble().valueOr(0.0))
            : 0;
    const sim::JsonValue* valid = scaling->find("valid");
    if (valid != nullptr && !valid->asBool().valueOr(true)) {
        std::printf("scaling gate: %s marked invalid "
                    "(%lld hardware thread(s)); skipping\n",
                    section, hardware_threads);
        return 0;
    }
    if (hardware_threads <= 1) {
        std::printf("scaling gate: host has %lld hardware thread(s); "
                    "skipping %s\n",
                    hardware_threads, section);
        return 0;
    }
    const sim::JsonValue* points = scaling->find("points");
    if (points == nullptr || !points->isArray()) {
        std::printf("scaling gate: %s has no points array; "
                    "skipping\n",
                    section);
        return 0;
    }

    std::printf("scaling gate: %s efficiency floor %.2f up to %lld "
                "hardware thread(s)\n",
                section, floor, hardware_threads);
    int violations = 0;
    int gated = 0;
    for (const sim::JsonValue& point : points->elements()) {
        const sim::JsonValue* units = point.find(unit_key);
        const sim::JsonValue* efficiency = point.find("efficiency");
        if (units == nullptr || efficiency == nullptr)
            continue;
        const long long t = static_cast<long long>(
            units->asDouble().valueOr(0.0));
        const double e = efficiency->asDouble().valueOr(0.0);
        if (t < 2 || t > hardware_threads)
            continue;
        ++gated;
        const bool below = e < floor;
        std::printf("scaling %s=%-3lld efficiency %.3f%s\n",
                    unit_key, t, e, below ? "  BELOW FLOOR" : "");
        if (below)
            ++violations;
    }
    if (gated == 0)
        std::printf("scaling gate: no %s point inside [2, %lld]; "
                    "nothing gated\n",
                    section, hardware_threads);
    return violations;
}

/** Gate both scaling sections: in-process threads and fleet workers. */
int
gateScalingFloor(const sim::JsonValue& cand, double floor)
{
    return gateScalingSection(cand, "campaign_scaling", "threads",
                              floor) +
        gateScalingSection(cand, "fleet_scaling", "workers", floor);
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli;
    cli.addFlag("baseline", "", "baseline report JSON (required)");
    cli.addFlag("candidate", "", "candidate report JSON (required)");
    cli.addFlag("threshold", "10",
                "regression threshold in percent throughput drop");
    cli.addFlag("scaling-floor", "",
                "minimum parallel efficiency the candidate's "
                "strong-scaling sweep must reach at 2..hardware "
                "threads (empty = off; skipped when the sweep is "
                "marked invalid or the host has one hardware thread)");
    cli.parse(argc, argv,
              "Diff two report manifests and flag throughput "
              "regressions.");

    const std::string base_path = cli.getString("baseline");
    const std::string cand_path = cli.getString("candidate");
    const std::string floor_text = cli.getString("scaling-floor");
    if (cand_path.empty())
        fatal("--candidate is required");
    // With a scaling floor the baseline becomes optional: the gate
    // judges the candidate's own sweep, no comparison needed.
    if (base_path.empty() && floor_text.empty())
        fatal("--baseline and --candidate are both required");
    const double threshold = cli.getDouble("threshold");

    const sim::JsonValue cand = loadReport(cand_path);
    if (base_path.empty()) {
        const int violations =
            gateScalingFloor(cand, cli.getDouble("scaling-floor"));
        std::printf("\n%d scaling violation(s)\n", violations);
        return violations > 0 ? 2 : 0;
    }
    const sim::JsonValue base = loadReport(base_path);

    // Manifest diff: the provenance facts that explain (or forbid)
    // a throughput comparison.
    std::vector<std::pair<std::string, std::string>> base_manifest;
    std::vector<std::pair<std::string, std::string>> cand_manifest;
    const sim::JsonValue* base_manifest_doc = base.find("manifest");
    const sim::JsonValue* cand_manifest_doc = cand.find("manifest");
    if (base_manifest_doc != nullptr)
        flattenManifest(*base_manifest_doc, base_manifest);
    if (cand_manifest_doc != nullptr)
        flattenManifest(*cand_manifest_doc, cand_manifest);
    if (base_manifest.empty() && cand_manifest.empty()) {
        std::printf("note: neither report carries a manifest "
                    "(pre-telemetry artifact)\n");
    } else {
        bool any_diff = false;
        for (const auto& [key, base_value] : base_manifest) {
            const std::string cand_value =
                lookupFlat(cand_manifest, key);
            if (cand_value != base_value) {
                std::printf("manifest %-28s %s -> %s\n", key.c_str(),
                            base_value.c_str(), cand_value.c_str());
                any_diff = true;
            }
        }
        // Keys only the candidate carries are age, not provenance:
        // older artifacts simply predate them (simd_isa,
        // fleet_workers, ...). Note them so the reader knows the
        // baseline's vintage, but don't count them as a mismatch.
        for (const auto& [key, cand_value] : cand_manifest) {
            if (lookupFlat(base_manifest, key) == "<absent>") {
                std::printf("manifest %-28s %s (baseline predates "
                            "key; skipped)\n",
                            key.c_str(), cand_value.c_str());
            }
        }
        if (!any_diff)
            std::printf("manifests match\n");
        compareHostsSections(base_manifest_doc, cand_manifest_doc);
    }

    std::vector<Metric> base_metrics;
    std::vector<Metric> cand_metrics;
    collectMetrics(base, "", base_metrics);
    collectMetrics(cand, "", cand_metrics);
    if (base_metrics.empty())
        fatal(base_path + ": no throughput metrics found");

    std::printf("\n%-52s %12s %12s %8s\n", "metric", "baseline",
                "candidate", "delta");
    int regressions = 0;
    int compared = 0;
    int baseline_only = 0;
    for (const Metric& b : base_metrics) {
        const Metric* c = findMetric(cand_metrics, b.path);
        if (c == nullptr) {
            std::printf("%-52s %12.4g %12s %8s\n", b.path.c_str(),
                        b.value, "missing", "-");
            ++baseline_only;
            continue;
        }
        ++compared;
        const double delta_pct =
            b.value != 0.0 ? (c->value - b.value) / b.value * 100.0
                           : 0.0;
        const bool regressed = delta_pct < -threshold;
        std::printf("%-52s %12.4g %12.4g %+7.1f%%%s\n",
                    b.path.c_str(), b.value, c->value, delta_pct,
                    regressed ? "  REGRESSION" : "");
        if (regressed)
            ++regressions;
    }
    // Metrics only the candidate carries (decode_batch_mops,
    // sample_mops, ... on a baseline that predates them) have no
    // reference value — note them so additions are visible, but they
    // can neither regress nor fail the diff.
    int candidate_only = 0;
    for (const Metric& c : cand_metrics) {
        if (findMetric(base_metrics, c.path) == nullptr) {
            std::printf("%-52s %12s %12.4g %8s\n", c.path.c_str(),
                        "(predates)", c.value, "-");
            ++candidate_only;
        }
    }
    if (baseline_only > 0 || candidate_only > 0) {
        std::printf("note: %d metric(s) only in baseline, %d only in "
                    "candidate (older artifact vintage; skipped)\n",
                    baseline_only, candidate_only);
    }
    int scaling_violations = 0;
    if (!floor_text.empty()) {
        std::printf("\n");
        scaling_violations =
            gateScalingFloor(cand, cli.getDouble("scaling-floor"));
    }

    std::printf("\n%d metric(s) compared, %d regression(s) beyond "
                "%.1f%%, %d scaling violation(s)\n",
                compared, regressions, threshold,
                scaling_violations);
    // Disjoint metric sets mean the baseline predates (or postdates)
    // the current key set entirely — there is nothing to gate, which
    // is a note, not an error: old BENCH artifacts must stay
    // diffable.
    if (compared == 0)
        std::printf("note: no metric present in both reports; "
                    "nothing gated\n");
    return regressions > 0 || scaling_violations > 0 ? 2 : 0;
}
