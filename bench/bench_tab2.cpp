/**
 * @file
 * Table 2: SDC risk of every ECC organization against each of the
 * seven Table 1 error patterns. Bit/pin/byte/2-bit/3-bit columns are
 * exhaustive (exact); beat and whole-entry columns are Monte Carlo
 * with the sample count settable via --samples (the paper used
 * 1e7/1e9; the default here keeps the run short - raise it to
 * tighten the confidence intervals printed at the end).
 */

#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "ecc/registry.hpp"
#include "faultsim/evaluator.hpp"

using namespace gpuecc;

namespace {

std::string
cell(const OutcomeCounts& c)
{
    if (c.sdc == 0) {
        // Match the paper's notation: always-corrected patterns are
        // "C", always-detected-or-corrected are "D".
        return c.due == 0 ? "C" : "D";
    }
    return formatPercent(c.sdcRate(), 4);
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli;
    cli.addFlag("samples", "200000",
                "Monte Carlo samples for beat/entry patterns");
    cli.addFlag("refs", "false",
                "also evaluate the DSC / SSC-TSD reference decoders");
    cli.parse(argc, argv, "Regenerate Table 2 (per-pattern SDC risk).");
    const auto samples =
        static_cast<std::uint64_t>(cli.getInt("samples"));

    std::printf("SDC probability per error pattern "
                "(C = always corrected, D = always detected):\n\n");

    std::vector<std::string> headers{"scheme"};
    for (const PatternInfo& info : patternTable())
        headers.push_back(info.label);
    TextTable table(headers);

    auto schemes = paperSchemes();
    if (cli.getBool("refs")) {
        for (auto& ref : referenceSchemes())
            schemes.push_back(ref);
    }

    std::vector<std::pair<std::string, Interval>> entry_cis;
    for (const auto& scheme : schemes) {
        Evaluator ev(*scheme);
        std::vector<std::string> row{scheme->name()};
        for (const PatternInfo& info : patternTable()) {
            const OutcomeCounts counts =
                ev.evaluate(info.pattern, samples);
            row.push_back(cell(counts));
            if (info.pattern == ErrorPattern::wholeEntry)
                entry_cis.emplace_back(scheme->id(),
                                       counts.sdcInterval());
        }
        table.addRow(std::move(row));
    }
    table.print();

    std::printf("\n95%% Wilson intervals on the whole-entry SDC "
                "column (%llu samples each):\n",
                static_cast<unsigned long long>(samples));
    for (const auto& [id, ci] : entry_cis) {
        std::printf("  %-12s [%s, %s]\n", id.c_str(),
                    formatPercent(ci.lo, 4).c_str(),
                    formatPercent(ci.hi, 4).c_str());
    }
    std::printf("\n* SSC-DSD+ is the only scheme lacking pin error "
                "correction (pin column shows D, not C).\n");
    return 0;
}
