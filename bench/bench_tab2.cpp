/**
 * @file
 * Table 2: SDC risk of every ECC organization against each of the
 * seven Table 1 error patterns. Bit/pin/byte/2-bit/3-bit columns are
 * exhaustive (exact); beat and whole-entry columns are Monte Carlo
 * with the sample count settable via --samples (the paper used
 * 1e7/1e9; the default here keeps the run short - raise it to
 * tighten the confidence intervals printed at the end, and add
 * --threads to spread the campaign over cores without changing a
 * single count).
 */

#include <cstdio>

#include "common/table.hpp"
#include "ecc/registry.hpp"
#include "sim/campaign.hpp"
#include "sim/cli.hpp"

using namespace gpuecc;

namespace {

std::string
cell(const OutcomeCounts& c)
{
    if (c.sdc == 0) {
        // Match the paper's notation: always-corrected patterns are
        // "C", always-detected-or-corrected are "D".
        return c.due == 0 ? "C" : "D";
    }
    return formatPercent(c.sdcRate(), 4);
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli;
    sim::addCampaignFlags(cli);
    cli.addFlag("refs", "false",
                "also evaluate the DSC / SSC-TSD reference decoders");
    cli.parse(argc, argv, "Regenerate Table 2 (per-pattern SDC risk).");

    sim::CampaignSpec spec = sim::campaignSpecFromCli(cli);
    for (const auto& scheme : paperSchemes())
        spec.scheme_ids.push_back(scheme->id());
    if (cli.getBool("refs")) {
        for (const auto& ref : referenceSchemes())
            spec.scheme_ids.push_back(ref->id());
    }
    const sim::CampaignResult result = sim::CampaignRunner(spec).run();
    if (result.interrupted)
        return sim::finalizeCampaign(result, cli);

    std::printf("SDC probability per error pattern "
                "(C = always corrected, D = always detected):\n\n");

    std::vector<std::string> headers{"scheme"};
    for (const PatternInfo& info : patternTable())
        headers.push_back(info.label);
    TextTable table(headers);

    for (const std::string& id : spec.scheme_ids) {
        if (!result.hasScheme(id))
            continue;
        std::vector<std::string> row{makeScheme(id)->name()};
        for (const PatternInfo& info : patternTable())
            row.push_back(cell(result.counts(id, info.pattern)));
        table.addRow(std::move(row));
    }
    table.print();

    std::printf("\n95%% Wilson intervals on the whole-entry SDC "
                "column (%llu samples each):\n",
                static_cast<unsigned long long>(spec.samples));
    for (const std::string& id : spec.scheme_ids) {
        if (!result.hasScheme(id))
            continue;
        const Interval ci =
            result.counts(id, ErrorPattern::wholeEntry).sdcInterval();
        std::printf("  %-12s [%s, %s]\n", id.c_str(),
                    formatPercent(ci.lo, 4).c_str(),
                    formatPercent(ci.hi, 4).c_str());
    }
    std::printf("\n* SSC-DSD+ is the only scheme lacking pin error "
                "correction (pin column shows D, not C).\n");
    std::printf("\ncampaign: %llu trials in %.2f s (%.3g trials/s, "
                "%d threads)\n",
                static_cast<unsigned long long>(result.totalTrials()),
                result.seconds, result.trialsPerSecond(),
                result.spec.threads);
    return sim::finalizeCampaign(result, cli);
}
