/**
 * @file
 * Figure 5: multi-bit error severity in bits per word, for
 * byte-aligned and non-byte-aligned errors, against the
 * random-corruption expectation (binomial with p = 1/2 conditioned
 * on >= 2 bits) and the ~15% full-inversion anomaly.
 */

#include <cmath>
#include <cstdio>

#include "beam/campaign.hpp"
#include "beam/classify.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace gpuecc;
using namespace gpuecc::beam;

namespace {

/** Binomial(n, 1/2) pmf conditioned on k >= 2. */
double
conditionedBinomial(int n, int k)
{
    double log_comb = 0.0;
    for (int i = 0; i < k; ++i)
        log_comb += std::log(static_cast<double>(n - i) / (i + 1));
    const double p = std::exp(log_comb - n * std::log(2.0));
    const double p0 = std::exp(-n * std::log(2.0));
    const double p1 = n * std::exp(-n * std::log(2.0));
    return p / (1.0 - p0 - p1);
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli;
    cli.addFlag("runs", "800", "beam runs to simulate");
    cli.addFlag("seed", "0xF165", "random seed");
    cli.parse(argc, argv, "Regenerate Figure 5 (error severity).");

    CampaignConfig cfg;
    cfg.runs = static_cast<int>(cli.getInt("runs"));
    cfg.seed = static_cast<std::uint64_t>(cli.getInt("seed"));
    Campaign campaign(cfg);
    campaign.runInBeam();
    const ClassificationResult result = classifyLog(campaign.log());

    // -- (a) byte-aligned: bits per word over 2..8 -------------------
    std::printf("== Figure 5a: byte-aligned severity ==\n");
    const auto ba = severityHistogram(result, true);
    double total = 0;
    for (int k = 2; k <= 8; ++k)
        total += static_cast<double>(ba[k]);
    TextTable ta({"bits/word", "measured", "random expectation"});
    for (int k = 2; k <= 8; ++k) {
        ta.addRow({std::to_string(k),
                   formatPercent(ba[k] / std::max(total, 1.0), 1),
                   formatPercent(conditionedBinomial(8, k), 1)});
    }
    ta.print();
    std::printf("full-byte (8-bit) inversions: %s of byte-aligned "
                "words (paper: ~15%% anomaly above the random "
                "expectation)\n\n",
                formatPercent(ba[8] / std::max(total, 1.0), 1).c_str());

    // -- (b) non-aligned: bits per word over 2..64, bucketed ---------
    std::printf("== Figure 5b: non-byte-aligned severity ==\n");
    const auto na = severityHistogram(result, false);
    double ntotal = 0;
    for (int k = 2; k <= 64; ++k)
        ntotal += static_cast<double>(na[k]);
    TextTable tb({"bits/word", "measured", "random expectation"});
    const std::pair<int, int> buckets[] = {{2, 8},   {9, 16},  {17, 24},
                                           {25, 32}, {33, 40}, {41, 48},
                                           {49, 56}, {57, 63}, {64, 64}};
    for (const auto& [lo, hi] : buckets) {
        double measured = 0, expected = 0;
        for (int k = lo; k <= hi; ++k) {
            measured += static_cast<double>(na[k]);
            expected += conditionedBinomial(64, k);
        }
        tb.addRow({std::to_string(lo) + "-" + std::to_string(hi),
                   formatPercent(measured / std::max(ntotal, 1.0), 1),
                   formatPercent(expected, 1)});
    }
    tb.print();
    std::printf("full-word (64-bit) inversions: %s of non-aligned "
                "words (the data-dependent anomaly)\n",
                formatPercent(na[64] / std::max(ntotal, 1.0), 1)
                    .c_str());
    std::printf("\n(The paper chooses the harder uniform-random "
                "model for ECC evaluation; so does bench_tab2.)\n");
    return 0;
}
