/**
 * @file
 * Figure 4: measured soft error patterns.
 *
 * (a) breadth/severity class breakdown (SBSE/SBME/MBSE/MBME);
 * (b) MBME breadth histogram in exponentially-growing bins;
 * (c) byte-aligned vs non-byte-aligned multi-bit split with
 *     words-per-entry stacks.
 */

#include <cstdio>

#include "beam/campaign.hpp"
#include "beam/classify.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

using namespace gpuecc;
using namespace gpuecc::beam;

int
main(int argc, char** argv)
{
    Cli cli;
    cli.addFlag("runs", "600", "beam runs to simulate");
    cli.addFlag("seed", "0xF164", "random seed");
    cli.parse(argc, argv, "Regenerate Figure 4 (soft error patterns).");

    CampaignConfig cfg;
    cfg.runs = static_cast<int>(cli.getInt("runs"));
    cfg.seed = static_cast<std::uint64_t>(cli.getInt("seed"));
    Campaign campaign(cfg);
    campaign.runInBeam();
    const ClassificationResult result = classifyLog(campaign.log());
    const double n = static_cast<double>(result.numEvents());
    std::printf("%llu soft-error events after filtering %zu damaged "
                "entries\n\n",
                static_cast<unsigned long long>(result.numEvents()),
                result.damaged_entries.size());

    std::printf("== Figure 4a: error breadth and severity classes ==\n");
    TextTable classes({"class", "events", "measured", "paper"});
    const std::tuple<SoftErrorEvent::Class, const char*, const char*>
        kinds[] = {
            {SoftErrorEvent::Class::sbse, "SBSE", "65% +- 2.3%"},
            {SoftErrorEvent::Class::sbme, "SBME", "~3.5%"},
            {SoftErrorEvent::Class::mbse, "MBSE", "~3.5%"},
            {SoftErrorEvent::Class::mbme, "MBME", "28% +- 2.1%"},
        };
    for (const auto& [cls, label, paper] : kinds) {
        const auto it = result.class_counts.find(cls);
        const std::uint64_t c =
            it == result.class_counts.end() ? 0 : it->second;
        classes.addRow({label, std::to_string(c),
                        formatPercent(c / n, 1), paper});
    }
    classes.print();

    std::printf("\n== Figure 4b: MBME breadth histogram ==\n");
    const auto breadths = mbmeBreadths(result);
    std::uint64_t max_breadth = 1;
    for (std::uint64_t b : breadths)
        max_breadth = std::max(max_breadth, b);
    ExponentialHistogram hist(max_breadth);
    for (std::uint64_t b : breadths)
        hist.add(b);
    TextTable bhist({"entries affected", "MBME events"});
    for (int b = 0; b < hist.numBins(); ++b) {
        bhist.addRow({std::to_string(hist.binLo(b)) + "-" +
                          std::to_string(hist.binHi(b)),
                      std::to_string(hist.count(b))});
    }
    bhist.print();
    std::printf("broadest error: %llu entries (paper: 5,359)\n",
                static_cast<unsigned long long>(max_breadth));

    std::printf("\n== Figure 4c: multi-bit severity classes ==\n");
    int multi = 0, aligned = 0;
    for (const auto& ev : result.events) {
        multi += ev.multi_bit;
        aligned += ev.byte_aligned;
    }
    std::printf("byte-aligned:     %s of multi-bit (paper 74.6%% "
                "+- 3.8%%)\n",
                formatPercent(static_cast<double>(aligned) /
                                  std::max(multi, 1), 1).c_str());
    std::printf("non-byte-aligned: %s (paper 25.4%%)\n\n",
                formatPercent(static_cast<double>(multi - aligned) /
                                  std::max(multi, 1), 1).c_str());

    TextTable words({"words/entry", "byte-aligned entries",
                     "non-aligned entries"});
    const auto wa = wordsPerEntryHistogram(result, true);
    const auto wn = wordsPerEntryHistogram(result, false);
    for (int w = 1; w <= 4; ++w) {
        words.addRow({std::to_string(w), std::to_string(wa[w]),
                      std::to_string(wn[w])});
    }
    words.print();
    std::printf("(paper: byte-aligned errors mostly 1 word, "
                "occasionally 2; non-aligned mostly all 4)\n");
    return 0;
}
