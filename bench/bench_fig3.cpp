/**
 * @file
 * Figure 3: the intermittent-error (displacement damage) experiments.
 *
 * (a) weak-cell counts while modulating the DRAM refresh rate, with
 *     the normal-CDF model overlaid ("X" predictions);
 * (b) the normally-distributed weak-cell retention-time fit;
 * (c) the accumulation of weak cells with cumulative fluence plus a
 *     linear regression (the paper reports R^2 = 0.97).
 */

#include <cstdio>

#include "beam/campaign.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

using namespace gpuecc;
using namespace gpuecc::beam;

int
main(int argc, char** argv)
{
    Cli cli;
    cli.addFlag("runs", "250", "beam runs for the accumulation curve");
    cli.addFlag("seed", "0xF163", "random seed");
    cli.parse(argc, argv,
              "Regenerate Figure 3 (intermittent error experiments).");

    CampaignConfig cfg;
    cfg.runs = static_cast<int>(cli.getInt("runs"));
    cfg.seed = static_cast<std::uint64_t>(cli.getInt("seed"));
    Campaign campaign(cfg);

    // -- (c) accumulation with cumulative exposure -------------------
    campaign.runInBeam();
    std::printf("== Figure 3c: weak-cell accumulation vs fluence ==\n");
    const auto& acc = campaign.accumulation();
    std::vector<double> xs, ys;
    TextTable curve({"fluence (n/cm^2)", "weak cells (16 ms)"});
    const std::size_t stride = std::max<std::size_t>(1, acc.size() / 12);
    for (std::size_t i = 0; i < acc.size(); i += stride) {
        curve.addRow({formatScientific(acc[i].fluence_n_cm2, 2),
                      std::to_string(acc[i].visible_weak_cells)});
    }
    curve.print();
    for (const AccumulationSample& s : acc) {
        xs.push_back(s.fluence_n_cm2);
        ys.push_back(static_cast<double>(s.visible_weak_cells));
    }
    const LineFit lin = linearRegression(xs, ys);
    std::printf("linear regression: %.2e cells per n/cm^2, "
                "R^2 = %.3f (paper: 0.97)\n\n",
                lin.slope, lin.r2);

    // -- (a) refresh sweep on a heavily damaged GPU ------------------
    campaign.soak(1e11);
    std::printf("== Figure 3a: weak cells vs refresh period ==\n");
    const std::vector<double> periods{8, 16, 24, 32, 40, 48};
    const auto sweep = campaign.refreshSweep(periods);
    std::vector<double> px, py;
    for (const auto& [p, c] : sweep) {
        px.push_back(p);
        py.push_back(static_cast<double>(c));
    }
    // -- (b) fit first so the (a) table can show predictions --------
    const NormalCdfFit fit = fitNormalCdf(px, py);
    TextTable sweep_table({"refresh (ms)", "measured weak cells",
                           "model prediction (X)"});
    for (std::size_t i = 0; i < px.size(); ++i) {
        const double pred =
            fit.n * normalCdf((px[i] - fit.mu) / fit.sigma);
        sweep_table.addRow({formatFixed(px[i], 0),
                            formatFixed(py[i], 0),
                            formatFixed(pred, 0)});
    }
    sweep_table.print();
    std::printf("(paper: 294 at 8 ms, ~1000 at 16 ms, 2656 at 48 ms)\n");

    std::printf("\n== Figure 3b: normal retention-time fit ==\n");
    std::printf("n = %.0f cells, mu = %.2f ms, sigma = %.2f ms "
                "(model inputs: pool %llu, mu %.1f, sigma %.1f)\n",
                fit.n, fit.mu, fit.sigma,
                static_cast<unsigned long long>(
                    cfg.damage.leaky_pool),
                cfg.damage.retention_mu_ms,
                cfg.damage.retention_sigma_ms);

    // -- annealing side-experiment (Section 4) -----------------------
    std::printf("\n== Annealing (Section 4, Error Annealing) ==\n");
    const auto pre8 = campaign.visibleWeakCells(8.0);
    const auto pre48 = campaign.visibleWeakCells(48.0);
    campaign.annealOutsideBeam(3.5);
    const auto post8 = campaign.visibleWeakCells(8.0);
    const auto post48 = campaign.visibleWeakCells(48.0);
    std::printf("3.5 h outside the beam: @8ms %llu -> %llu "
                "(-%.1f%%; paper -26%%), @48ms %llu -> %llu "
                "(-%.1f%%; paper -2.5%%)\n",
                static_cast<unsigned long long>(pre8),
                static_cast<unsigned long long>(post8),
                100.0 * (pre8 - post8) / std::max<double>(pre8, 1),
                static_cast<unsigned long long>(pre48),
                static_cast<unsigned long long>(post48),
                100.0 * (pre48 - post48) / std::max<double>(pre48, 1));
    return 0;
}
