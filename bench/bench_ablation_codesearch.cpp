/**
 * @file
 * Ablation: reproducing the paper's genetic-algorithm design step
 * for the SEC-2bEC code.
 *
 * Runs the randomized code search at several budgets and compares
 * the resulting non-aligned 2-bit miscorrection risk against the
 * published Equation 3 matrix, demonstrating that the published
 * code sits at the quality level the search converges to.
 */

#include <cstdio>

#include "codes/code_search.hpp"
#include "codes/linear_code.hpp"
#include "codes/sec2bec.hpp"
#include "common/table.hpp"

using namespace gpuecc;

int
main()
{
    const Code72 paper(sec2becPaperMatrix(), Code72::adjacentPairs());
    std::printf("published Eq. 3 matrix: %.2f%% of non-aligned 2-bit "
                "errors alias to an aligned-pair syndrome\n\n",
                100.0 * paper.nonAligned2bMiscorrectionRate());

    TextTable table({"search budget", "seed", "miscorrection",
                     "vs paper code"});
    for (const int budget : {1000, 5000, 20000, 60000}) {
        for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
            Rng rng(seed);
            const CodeSearchResult r = searchSec2bEcCode(rng, budget);
            char rel[32];
            std::snprintf(rel, sizeof(rel), "%+.1f%%",
                          100.0 * (r.miscorrection_rate -
                                   paper.nonAligned2bMiscorrectionRate()));
            table.addRow({std::to_string(budget),
                          std::to_string(seed),
                          formatPercent(r.miscorrection_rate, 2), rel});
        }
    }
    table.print();

    std::printf("\nEvery searched code is SEC-DED with unique "
                "aligned-pair syndromes by construction;\nthe search "
                "only optimizes the miscorrection tail that TrioECC's "
                "sanity check then suppresses.\n");

    // The DAEC comparison behind the paper's "~20% reduction" claim:
    // correcting all 71 adjacent pairs (Dutta & Touba style) exposes
    // roughly twice as many alias targets as the 36 aligned pairs.
    std::printf("\n== vs SEC-DED-DAEC (corrects all adjacent pairs) "
                "==\n");
    TextTable daec({"code", "correctable pairs", "miscorrection"});
    double daec_rate = 0.0;
    {
        Rng rng(1);
        const CodeSearchResult r = searchDaecCode(rng, 30000);
        daec_rate = r.miscorrection_rate;
        daec.addRow({"searched DAEC", "71",
                     formatPercent(r.miscorrection_rate, 2)});
    }
    daec.addRow({"paper Eq. 3 (aligned only)", "36",
                 formatPercent(paper.nonAligned2bMiscorrectionRate(),
                               2)});
    daec.print();
    std::printf("\naligned-only reduces the non-correctable 2-bit "
                "miscorrection risk by %.0f%% relative to our\n"
                "searched DAEC (structurally, 36 alias targets vs 71; "
                "the paper quotes ~20%%, consistent with\ncomparing "
                "against the stronger published Dutta-Touba "
                "construction rather than a hill-climbed\nDAEC). "
                "Either way the interleave maps byte errors onto "
                "exactly the aligned symbols, so\nnothing is lost by "
                "not correcting the other adjacent pairs.\n",
                100.0 * (1.0 - paper.nonAligned2bMiscorrectionRate() /
                                   daec_rate));
    return 0;
}
