/**
 * @file
 * Ablation: reproducing the paper's genetic-algorithm design step
 * for the SEC-2bEC code.
 *
 * Runs the randomized code search at several budgets and compares
 * the resulting non-aligned 2-bit miscorrection risk against the
 * published Equation 3 matrix, demonstrating that the published
 * code sits at the quality level the search converges to. The
 * budget x seed grid cells are independent, so they run on the
 * shared thread pool; each cell seeds its own Rng, keeping the
 * table identical for any --threads value.
 */

#include <cstdio>
#include <vector>

#include "codes/code_search.hpp"
#include "codes/linear_code.hpp"
#include "codes/sec2bec.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "sim/report.hpp"

using namespace gpuecc;

int
main(int argc, char** argv)
{
    Cli cli;
    cli.addFlag("seeds", "3", "search seeds per budget");
    cli.addFlag("threads", "1",
                "worker threads for the search grid (0 = one per "
                "hardware thread)");
    cli.addFlag("json", "", "write results to this JSON file");
    cli.parse(argc, argv,
              "Ablation: randomized SEC-2bEC code search vs the "
              "published Eq. 3 matrix.");
    const auto num_seeds = static_cast<std::uint64_t>(
        cli.getInt("seeds"));
    const auto threads = static_cast<int>(cli.getInt("threads"));

    const Code72 paper(sec2becPaperMatrix(), Code72::adjacentPairs());
    const double paper_rate = paper.nonAligned2bMiscorrectionRate();
    std::printf("published Eq. 3 matrix: %.2f%% of non-aligned 2-bit "
                "errors alias to an aligned-pair syndrome\n\n",
                100.0 * paper_rate);

    const std::vector<int> budgets = {1000, 5000, 20000, 60000};
    struct GridCell
    {
        int budget;
        std::uint64_t seed;
        double rate;
    };
    std::vector<GridCell> grid;
    for (const int budget : budgets) {
        for (std::uint64_t seed = 1; seed <= num_seeds; ++seed)
            grid.push_back({budget, seed, 0.0});
    }
    ThreadPool(threads).parallelFor(grid.size(), [&](std::uint64_t i) {
        Rng rng(grid[i].seed);
        grid[i].rate =
            searchSec2bEcCode(rng, grid[i].budget).miscorrection_rate;
    });

    sim::JsonWriter json;
    json.beginObject();
    json.kv("paper_miscorrection", paper_rate);
    json.key("search").beginArray();
    TextTable table({"search budget", "seed", "miscorrection",
                     "vs paper code"});
    for (const GridCell& cell : grid) {
        char rel[32];
        std::snprintf(rel, sizeof(rel), "%+.1f%%",
                      100.0 * (cell.rate - paper_rate));
        table.addRow({std::to_string(cell.budget),
                      std::to_string(cell.seed),
                      formatPercent(cell.rate, 2), rel});
        json.beginObject();
        json.kv("budget", cell.budget);
        json.kv("seed", cell.seed);
        json.kv("miscorrection", cell.rate);
        json.endObject();
    }
    json.endArray();
    table.print();

    std::printf("\nEvery searched code is SEC-DED with unique "
                "aligned-pair syndromes by construction;\nthe search "
                "only optimizes the miscorrection tail that TrioECC's "
                "sanity check then suppresses.\n");

    // The DAEC comparison behind the paper's "~20% reduction" claim:
    // correcting all 71 adjacent pairs (Dutta & Touba style) exposes
    // roughly twice as many alias targets as the 36 aligned pairs.
    std::printf("\n== vs SEC-DED-DAEC (corrects all adjacent pairs) "
                "==\n");
    TextTable daec({"code", "correctable pairs", "miscorrection"});
    double daec_rate = 0.0;
    {
        Rng rng(1);
        const CodeSearchResult r = searchDaecCode(rng, 30000);
        daec_rate = r.miscorrection_rate;
        daec.addRow({"searched DAEC", "71",
                     formatPercent(r.miscorrection_rate, 2)});
    }
    daec.addRow({"paper Eq. 3 (aligned only)", "36",
                 formatPercent(paper_rate, 2)});
    daec.print();
    std::printf("\naligned-only reduces the non-correctable 2-bit "
                "miscorrection risk by %.0f%% relative to our\n"
                "searched DAEC (structurally, 36 alias targets vs 71; "
                "the paper quotes ~20%%, consistent with\ncomparing "
                "against the stronger published Dutta-Touba "
                "construction rather than a hill-climbed\nDAEC). "
                "Either way the interleave maps byte errors onto "
                "exactly the aligned symbols, so\nnothing is lost by "
                "not correcting the other adjacent pairs.\n",
                100.0 * (1.0 - paper_rate / daec_rate));

    json.kv("daec_miscorrection", daec_rate);
    json.endObject();
    const std::string path = cli.getString("json");
    if (!path.empty())
        sim::writeTextFile(path, json.str());
    return 0;
}
