/**
 * @file
 * Ablation: sensitivity of SEC-DED byte-error SDC to the Hsiao
 * column arrangement.
 *
 * The SEC-DED guarantees do not depend on which minimum-odd-weight
 * column protects which data bit, but the byte-error SDC rate of the
 * non-interleaved baseline does - the paper's exact Hsiao-1970
 * "version 1" assignment is not printed, so this library ships a
 * deterministic arrangement calibrated to the ~23% byte-error SDC
 * the paper reports. This bench quantifies the spread across
 * arrangements (and shows that DuetECC/TrioECC are insensitive to
 * it, since interleaving turns byte errors into even-weight
 * per-codeword errors regardless of the column order).
 */

#include <cstdio>

#include "codes/hsiao.hpp"
#include "codes/linear_code.hpp"
#include "common/bitops.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "ecc/binary_scheme.hpp"
#include "faultsim/evaluator.hpp"
#include "sim/report.hpp"

using namespace gpuecc;

namespace {

/** Exhaustive codeword-level byte-error SDC rate of plain SEC-DED. */
double
byteSdcRate(const Code72& code)
{
    const std::uint64_t data = 0xDEADBEEF12345678ull;
    const Bits72 golden = code.encode(data);
    long sdc = 0, total = 0;
    for (int byte = 0; byte < 9; ++byte) {
        for (unsigned m = 1; m < 256; ++m) {
            if (popcount64(m) < 2)
                continue;
            Bits72 received = golden;
            for (int t = 0; t < 8; ++t) {
                if ((m >> t) & 1)
                    received.flip(8 * byte + t);
            }
            ++total;
            const CodewordDecode d =
                code.decode(received, Code72::Mode::secDed);
            if (d.status == CodewordDecode::Status::due)
                continue;
            if (code.extractData(received ^ d.correction) != data)
                ++sdc;
        }
    }
    return static_cast<double>(sdc) / total;
}

Gf2Matrix
shuffledDataColumns(const Gf2Matrix& h, Rng& rng)
{
    std::vector<int> order(64);
    for (int i = 0; i < 64; ++i)
        order[i] = i;
    for (int i = 63; i > 0; --i) {
        const int j = static_cast<int>(rng.nextBounded(i + 1));
        std::swap(order[i], order[j]);
    }
    Gf2Matrix out(8, 72);
    for (int c = 0; c < 64; ++c) {
        for (int r = 0; r < 8; ++r)
            out.set(r, c, h.get(r, order[c]));
    }
    for (int r = 0; r < 8; ++r)
        out.set(r, 64 + r, 1);
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli;
    cli.addFlag("arrangements", "25",
                "random Hsiao column arrangements to sample");
    cli.addFlag("seed", "0xAB1A71", "shuffle seed");
    cli.addFlag("threads", "1",
                "worker threads for the interleaved-scheme check "
                "(0 = one per hardware thread)");
    cli.addFlag("json", "", "write results to this JSON file");
    cli.parse(argc, argv,
              "Ablation: SEC-DED byte-error SDC sensitivity to the "
              "Hsiao column arrangement.");
    const int arrangements =
        static_cast<int>(cli.getInt("arrangements"));
    const auto seed = static_cast<std::uint64_t>(cli.getInt("seed"));
    const auto threads = static_cast<int>(cli.getInt("threads"));

    std::printf("byte-error SDC of non-interleaved SEC-DED by Hsiao "
                "column arrangement\n(exhaustive over all multi-bit "
                "byte errors):\n\n");

    const double calibrated = byteSdcRate(Code72(hsiao7264Matrix()));
    const double lex = byteSdcRate(Code72(hsiao7264LexMatrix()));
    TextTable table({"arrangement", "byte-error SDC"});
    table.addRow({"calibrated (library default)",
                  formatPercent(calibrated, 2)});
    table.addRow({"lexicographic", formatPercent(lex, 2)});

    Rng rng(seed);
    OnlineStats stats;
    double lo = 1.0, hi = 0.0;
    const Gf2Matrix base = hsiao7264LexMatrix();
    for (int trial = 0; trial < arrangements; ++trial) {
        const double r =
            byteSdcRate(Code72(shuffledDataColumns(base, rng)));
        stats.add(r);
        lo = std::min(lo, r);
        hi = std::max(hi, r);
    }
    table.addRow({"random arrangements (mean of " +
                      std::to_string(arrangements) + ")",
                  formatPercent(stats.mean(), 2)});
    table.addRow({"random arrangements (min..max)",
                  formatPercent(lo, 2) + " .. " + formatPercent(hi, 2)});
    table.print();

    sim::JsonWriter json;
    json.beginObject();
    json.kv("arrangements", static_cast<std::uint64_t>(arrangements));
    json.kv("seed", seed);
    json.kv("calibrated_byte_sdc", calibrated);
    json.kv("lexicographic_byte_sdc", lex);
    json.kv("random_mean_byte_sdc", stats.mean());
    json.kv("random_min_byte_sdc", lo);
    json.kv("random_max_byte_sdc", hi);

    std::printf("\npaper anchor: SEC-DED fails to correct or detect "
                "23-29%% of byte and beat errors\n(~23%% implied for "
                "bytes by the 5.4%% weighted SDC).\n\n");

    // Interleaved schemes are insensitive to the arrangement.
    json.key("duet").beginArray();
    for (const char* label : {"calibrated", "lexicographic"}) {
        const bool use_lex = std::string(label) == "lexicographic";
        auto code = std::make_shared<const Code72>(
            use_lex ? hsiao7264LexMatrix() : hsiao7264Matrix(),
            Code72::stride4Pairs());
        const BinaryEntryScheme duet(
            code, {"duet", "DuetECC", true, Code72::Mode::secDed,
                   true});
        Evaluator ev(duet, 0x5EED, threads);
        const OutcomeCounts byte =
            ev.evaluate(ErrorPattern::oneByte, 0);
        std::printf("DuetECC byte-error SDC with %s Hsiao: %s "
                    "(exhaustive)\n",
                    label, formatPercent(byte.sdcRate(), 4).c_str());
        json.beginObject();
        json.kv("arrangement", std::string(label));
        json.kv("byte_sdc", byte.sdcRate());
        json.endObject();
    }
    json.endArray().endObject();
    const std::string path = cli.getString("json");
    if (!path.empty())
        sim::writeTextFile(path, json.str());
    return 0;
}
