/**
 * @file
 * google-benchmark microbenchmarks of the software codecs: encode
 * and decode throughput per 32B entry for every organization, plus
 * the fault-injection evaluator's inner loop. These support the
 * paper's implicit claim that all the proposed decoders remain
 * simple single-pass operations.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "ecc/registry.hpp"
#include "faultsim/patterns.hpp"

namespace {

using namespace gpuecc;

void
BM_Encode(benchmark::State& state, const std::string& id)
{
    const auto scheme = makeScheme(id);
    Rng rng(1);
    EntryData data{rng.next64(), rng.next64(), rng.next64(),
                   rng.next64()};
    for (auto _ : state) {
        benchmark::DoNotOptimize(scheme->encode(data));
        data[0] += 1; // defeat caching
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 32);
}

void
BM_DecodeClean(benchmark::State& state, const std::string& id)
{
    const auto scheme = makeScheme(id);
    Rng rng(2);
    const EntryData data{rng.next64(), rng.next64(), rng.next64(),
                         rng.next64()};
    const Bits288 entry = scheme->encode(data);
    for (auto _ : state)
        benchmark::DoNotOptimize(scheme->decode(entry));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 32);
}

void
BM_DecodeSingleBit(benchmark::State& state, const std::string& id)
{
    const auto scheme = makeScheme(id);
    Rng rng(3);
    const EntryData data{rng.next64(), rng.next64(), rng.next64(),
                         rng.next64()};
    Bits288 entry = scheme->encode(data);
    int bit = 0;
    for (auto _ : state) {
        entry.flip(bit);
        benchmark::DoNotOptimize(scheme->decode(entry));
        entry.flip(bit);
        bit = (bit + 1) % 288;
    }
}

void
BM_SampleEntryPattern(benchmark::State& state)
{
    Rng rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sampleErrorMask(ErrorPattern::wholeEntry, rng));
    }
}

} // namespace

int
main(int argc, char** argv)
{
    for (const char* id :
         {"ni-secded", "duet", "trio", "i-ssc", "ssc-dsd+"}) {
        benchmark::RegisterBenchmark(
            (std::string("encode/") + id).c_str(),
            [id](benchmark::State& s) { BM_Encode(s, id); });
        benchmark::RegisterBenchmark(
            (std::string("decode_clean/") + id).c_str(),
            [id](benchmark::State& s) { BM_DecodeClean(s, id); });
        benchmark::RegisterBenchmark(
            (std::string("decode_1bit/") + id).c_str(),
            [id](benchmark::State& s) { BM_DecodeSingleBit(s, id); });
    }
    benchmark::RegisterBenchmark("sample_entry_pattern",
                                 BM_SampleEntryPattern);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
