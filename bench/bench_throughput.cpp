/**
 * @file
 * Self-timed throughput benchmarks: encode and decode rates per 32B
 * entry for every organization (supporting the paper's implicit claim
 * that all proposed decoders remain simple single-pass operations),
 * per-pattern error-mask sampling rates (the scalar front-end ahead
 * of the batched decoders), plus two campaign-engine scaling sweeps —
 * the same fault-injection campaign run at 1, 2, 4, ... worker
 * threads and again at 1, 2, 4, ... forked worker processes
 * (--fleet-workers), each with a bit-identity check against the
 * single-threaded run and the wall-clock/speedup recorded in
 * BENCH_throughput.json.
 *
 * Every codec is measured under both backends (the compiled
 * table-lookup path and the matrix/bit-by-bit reference), and one
 * campaign is run under each backend with a cell-by-cell bit-identity
 * check — the bench-level form of the differential harness guarantee.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/codec_mode.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "ecc/registry.hpp"
#include "faultsim/patterns.hpp"
#include "gf256/gf256_vec.hpp"
#include "obs/trace.hpp"
#include "sim/campaign.hpp"
#include "sim/report.hpp"

using namespace gpuecc;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

struct CodecRates
{
    double encode_mops;
    double decode_clean_mops;
    double decode_1bit_mops;
    double decode_batch_mops;
};

CodecRates
codecRates(const std::string& id, std::uint64_t iters,
           CodecBackend backend)
{
    setCodecBackend(backend);
    const auto scheme = makeScheme(id);
    Rng rng(1);
    CodecRates r{};

    EntryData data{rng.next64(), rng.next64(), rng.next64(),
                   rng.next64()};
    auto start = std::chrono::steady_clock::now();
    Bits288 sink;
    for (std::uint64_t i = 0; i < iters; ++i) {
        sink = sink ^ scheme->encode(data);
        data[0] += 1; // defeat caching
    }
    r.encode_mops = iters / secondsSince(start) / 1e6;

    const Bits288 entry = scheme->encode(data);
    std::uint64_t guard = sink.popcount();
    start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i)
        guard += scheme->decode(entry).data[0];
    r.decode_clean_mops = iters / secondsSince(start) / 1e6;

    Bits288 flipped = entry;
    int bit = 0;
    start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        flipped.flip(bit);
        guard += scheme->decode(flipped).data[0];
        flipped.flip(bit);
        bit = (bit + 1) % 288;
    }
    r.decode_1bit_mops = iters / secondsSince(start) / 1e6;

    // Batched entry point on a campaign-like mix: mostly-clean
    // entries with a rotating single-bit error in every fourth slot,
    // so the SoA fast path's bulk syndrome pass AND its suspect
    // fallback are both on the clock.
    constexpr std::size_t kBatch = 512;
    std::vector<Bits288> received(kBatch, entry);
    for (std::size_t i = 0; i < kBatch; i += 4)
        received[i].flip(static_cast<int>((i * 7) % 288));
    std::vector<EntryDecode> out(kBatch);
    std::uint64_t done = 0;
    start = std::chrono::steady_clock::now();
    while (done < iters) {
        scheme->decodeBatch(received.data(), out.data(), kBatch);
        guard += out[done % kBatch].data[0];
        done += kBatch;
    }
    r.decode_batch_mops = done / secondsSince(start) / 1e6;

    if (guard == 0x5EED5EED) // never true; defeats dead-code removal
        std::printf("guard\n");
    setCodecBackend(CodecBackend::compiled);
    return r;
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli;
    cli.addFlag("iters", "200000", "iterations per codec measurement");
    cli.addFlag("samples", "200000",
                "campaign samples per sampled pattern");
    cli.addFlag("threads", "8",
                "max worker threads for the scaling sweep "
                "(0 = one per hardware thread)");
    cli.addFlag("affinity", "false",
                "pin sweep workers to hardware threads (placement "
                "hint; tallies are identical either way)");
    cli.addFlag("seed", "0x5EED", "campaign seed");
    cli.addFlag("json", "BENCH_throughput.json",
                "output JSON path (empty to skip)");
    cli.addFlag("trace", "",
                "write a Chrome trace-event JSON of the measurement "
                "phases to this file");
    cli.parse(argc, argv,
              "Codec throughput and campaign-engine scaling.");

    const std::string trace_path = cli.getString("trace");
    if (!trace_path.empty())
        obs::startTrace(trace_path);

    const auto iters = static_cast<std::uint64_t>(cli.getInt("iters"));
    const int max_threads = ThreadPool::resolveThreadCount(
        static_cast<int>(cli.getInt("threads")));

    sim::JsonWriter json;
    json.beginObject();
    json.kv("iters", iters);

    // The gf256 vector ISA the RS fast path dispatched to on this
    // host — throughput numbers are not comparable across ISAs, so
    // the artifact records it (also echoed in the manifest).
    const std::string simd_isa = gf256::isaName(gf256::bestIsa());
    json.kv("simd_isa", simd_isa);
    std::printf("gf256 vector ISA: %s\n", simd_isa.c_str());

    const char* ids[] = {"ni-secded", "duet",      "trio",
                         "i-ssc",     "i-ssc-csc", "ssc-dsd+",
                         "dsc",       "ssc-tsd"};
    TextTable codecs({"scheme", "encode M/s", "decode clean M/s",
                      "decode 1bit M/s", "decode batch M/s",
                      "ref decode M/s", "decode speedup"});
    json.key("codecs").beginArray();
    for (const char* id : ids) {
        obs::TraceSpan span(std::string("codec-rates:") + id,
                            "bench");
        const CodecRates r =
            codecRates(id, iters, CodecBackend::compiled);
        const CodecRates ref =
            codecRates(id, iters, CodecBackend::reference);
        const double speedup = ref.decode_clean_mops > 0.0
                                   ? r.decode_clean_mops /
                                         ref.decode_clean_mops
                                   : 0.0;
        codecs.addRow({id, formatFixed(r.encode_mops, 2),
                       formatFixed(r.decode_clean_mops, 2),
                       formatFixed(r.decode_1bit_mops, 2),
                       formatFixed(r.decode_batch_mops, 2),
                       formatFixed(ref.decode_clean_mops, 2),
                       formatFixed(speedup, 2) + "x"});
        json.beginObject();
        json.kv("scheme", std::string(id));
        json.kv("encode_mops", r.encode_mops);
        json.kv("decode_clean_mops", r.decode_clean_mops);
        json.kv("decode_1bit_mops", r.decode_1bit_mops);
        json.kv("reference_encode_mops", ref.encode_mops);
        json.kv("reference_decode_clean_mops", ref.decode_clean_mops);
        json.kv("reference_decode_1bit_mops", ref.decode_1bit_mops);
        json.kv("decode_speedup_vs_reference", speedup);
        // Per-backend block with the batched entry point: the shape
        // tools/compare_runs walks (elementLabel "backend"), so an RS
        // decode_mops or decode_batch_mops drop on either backend is
        // flagged per (scheme, backend) cell.
        json.key("backends").beginArray();
        for (const auto* side : {&r, &ref}) {
            json.beginObject();
            json.kv("backend", std::string(side == &r ? "compiled"
                                                      : "reference"));
            json.kv("encode_mops", side->encode_mops);
            json.kv("decode_mops", side->decode_clean_mops);
            json.kv("decode_batch_mops", side->decode_batch_mops);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
    std::printf("== Codec throughput (millions of 32B entries/s) ==\n");
    codecs.print();

    // Error-mask sampling: sampleErrorMask is the scalar front-end
    // that feeds the batched decoders, and the pin/byte/beat/entry
    // shapes redraw until the mask classifies as requested — so the
    // rejection rate (and the rate per pattern) is a tracked number
    // before anyone optimizes the loop.
    TextTable sampling({"pattern", "sample M/s"});
    json.key("mask_sampling").beginArray();
    {
        Rng mask_rng(0xA5);
        Bits288 mask_sink;
        for (ErrorPattern p : allErrorPatterns()) {
            const std::string& label = patternInfo(p).label;
            obs::TraceSpan span("mask-sampling:" + label, "bench");
            const auto start = std::chrono::steady_clock::now();
            for (std::uint64_t i = 0; i < iters; ++i)
                mask_sink = mask_sink ^ sampleErrorMask(p, mask_rng);
            const double mops = iters / secondsSince(start) / 1e6;
            sampling.addRow({label, formatFixed(mops, 2)});
            json.beginObject();
            json.kv("pattern", label);
            json.kv("sample_mops", mops);
            json.endObject();
        }
        if (mask_sink.popcount() == 0x5EED) // defeats dead-code removal
            std::printf("guard\n");
    }
    json.endArray();
    std::printf(
        "\n== Error-mask sampling (millions of masks/s) ==\n");
    sampling.print();

    // Campaign-engine strong scaling: the same spec at every thread
    // count from 1 to the sweep maximum (all integers up to 8, then
    // powers of two plus the max). Counts must be bit-identical at
    // every width; speedup is relative to the single-threaded run and
    // efficiency is speedup / threads — the number the CI scaling
    // gate (compare_runs --scaling-floor) enforces.
    sim::CampaignSpec spec;
    spec.scheme_ids = {"duet", "trio"};
    spec.patterns = {ErrorPattern::oneBeat, ErrorPattern::wholeEntry};
    spec.samples = static_cast<std::uint64_t>(cli.getInt("samples"));
    spec.seed = static_cast<std::uint64_t>(cli.getInt("seed"));
    spec.affinity = cli.getBool("affinity");

    const int hardware_threads = ThreadPool::hardwareThreads();
    // A 1-hardware-thread host cannot demonstrate parallel speedup:
    // every multi-threaded point just timeslices one core. Mark the
    // section invalid so nobody (human or gate) mistakes the flat
    // curve for an engine regression.
    const bool scaling_valid = hardware_threads > 1;
    if (!scaling_valid) {
        std::printf(
            "\n*** WARNING ********************************************\n"
            "*** This host has ONE hardware thread: the scaling    ***\n"
            "*** sweep below measures timeslicing, not parallelism.***\n"
            "*** The scaling section is marked \"valid\": false and  ***\n"
            "*** must not be committed as a performance baseline.  ***\n"
            "********************************************************\n");
    }

    std::vector<int> sweep;
    if (max_threads <= 8) {
        for (int t = 1; t <= max_threads; ++t)
            sweep.push_back(t);
    } else {
        for (int t = 1; t <= max_threads; t *= 2)
            sweep.push_back(t);
        if (sweep.back() != max_threads)
            sweep.push_back(max_threads);
    }

    std::printf("\n== Campaign engine strong scaling (%llu samples x "
                "%zu schemes x %zu patterns) ==\n",
                static_cast<unsigned long long>(spec.samples),
                spec.scheme_ids.size(), spec.patterns.size());
    TextTable scaling({"threads", "seconds", "trials/s", "speedup",
                       "efficiency", "bit-identical"});
    json.kv("campaign_samples", spec.samples);
    json.key("campaign_scaling").beginObject();
    json.kv("hardware_threads", hardware_threads);
    json.kv("valid", scaling_valid);
    json.kv("max_threads", max_threads);

    double base_seconds = 0.0;
    std::vector<sim::CampaignCell> reference;
    bool all_identical = true;
    bool affinity_applied = false;
    json.key("points").beginArray();
    for (int t : sweep) {
        spec.threads = t;
        obs::TraceSpan span("scaling:" + std::to_string(t) +
                                "-threads",
                            "bench");
        const sim::CampaignResult result =
            sim::CampaignRunner(spec).run();
        if (t == 1) {
            base_seconds = result.seconds;
            reference = result.cells;
        }
        affinity_applied = result.pool.affinity;
        bool identical = result.cells.size() == reference.size();
        for (std::size_t i = 0; identical && i < reference.size();
             ++i) {
            const OutcomeCounts& a = reference[i].counts;
            const OutcomeCounts& b = result.cells[i].counts;
            identical = a.trials == b.trials && a.dce == b.dce &&
                a.due == b.due && a.sdc == b.sdc;
        }
        all_identical = all_identical && identical;
        const double speedup =
            result.seconds > 0.0 ? base_seconds / result.seconds : 0.0;
        const double efficiency = speedup / t;
        scaling.addRow({std::to_string(t),
                        formatFixed(result.seconds, 3),
                        formatScientific(result.trialsPerSecond()),
                        formatFixed(speedup, 2) + "x",
                        formatFixed(efficiency, 2),
                        identical ? "yes" : "NO"});
        json.beginObject();
        json.kv("threads", t);
        json.kv("seconds", result.seconds);
        json.kv("trials_per_second", result.trialsPerSecond());
        json.kv("speedup", speedup);
        json.kv("efficiency", efficiency);
        json.kv("bit_identical", identical);
        json.endObject();
    }
    json.endArray();
    json.kv("affinity", affinity_applied);
    json.endObject();
    json.kv("all_thread_counts_bit_identical", all_identical);
    json.kv("hardware_threads", hardware_threads);
    scaling.print();
    std::printf("(host has %d hardware thread(s); speedup saturates "
                "there%s)\n",
                hardware_threads,
                scaling_valid ? "" : " — sweep marked invalid");
    if (!all_identical) {
        std::printf("ERROR: thread counts disagreed — determinism "
                    "violation\n");
        return 1;
    }

    // Fleet strong scaling: the same campaign dispatched as work
    // units to forked single-threaded worker processes over pipes.
    // Speedup is relative to the single-threaded in-process run
    // above, so the curve prices in the dispatch overhead (fork,
    // pipe round-trips, JSON wire format); every worker count must
    // tally bit-identically to the in-process reference. The gate
    // (compare_runs --scaling-floor) enforces efficiency inside
    // [2, hardware_threads] and skips sweeps marked invalid.
    std::printf("\n== Fleet strong scaling (forked worker "
                "processes) ==\n");
    TextTable fleet_table({"workers", "seconds", "trials/s",
                           "speedup", "efficiency", "bit-identical"});
    json.key("fleet_scaling").beginObject();
    json.kv("hardware_threads", hardware_threads);
    json.kv("valid", scaling_valid);
    json.kv("max_workers", max_threads);
    bool fleet_identical = true;
    double efficiency_sum = 0.0;
    int efficiency_points = 0;
    json.key("points").beginArray();
    for (int w : sweep) {
        spec.threads = 1;
        spec.fleet_workers = w;
        obs::TraceSpan span("fleet-scaling:" + std::to_string(w) +
                                "-workers",
                            "bench");
        const sim::CampaignResult result =
            sim::CampaignRunner(spec).run();
        bool identical = result.cells.size() == reference.size();
        for (std::size_t i = 0; identical && i < reference.size();
             ++i) {
            const OutcomeCounts& a = reference[i].counts;
            const OutcomeCounts& b = result.cells[i].counts;
            identical = a.trials == b.trials && a.dce == b.dce &&
                a.due == b.due && a.sdc == b.sdc;
        }
        fleet_identical = fleet_identical && identical;
        const double speedup =
            result.seconds > 0.0 ? base_seconds / result.seconds
                                 : 0.0;
        const double efficiency = speedup / w;
        if (w >= 2 && w <= hardware_threads) {
            efficiency_sum += efficiency;
            ++efficiency_points;
        }
        fleet_table.addRow({std::to_string(w),
                            formatFixed(result.seconds, 3),
                            formatScientific(
                                result.trialsPerSecond()),
                            formatFixed(speedup, 2) + "x",
                            formatFixed(efficiency, 2),
                            identical ? "yes" : "NO"});
        json.beginObject();
        json.kv("workers", w);
        json.kv("seconds", result.seconds);
        json.kv("trials_per_second", result.trialsPerSecond());
        json.kv("speedup", speedup);
        json.kv("efficiency", efficiency);
        json.kv("bit_identical", identical);
        json.endObject();
    }
    json.endArray();
    // The single number the ≥0.7 deliverable tracks: mean efficiency
    // over the gated range (0 when the host cannot show parallelism).
    json.kv("aggregate_efficiency",
            efficiency_points > 0 ? efficiency_sum / efficiency_points
                                  : 0.0);
    json.endObject();
    spec.fleet_workers = 0; // the equivalence runs stay in-process
    fleet_table.print();
    if (!scaling_valid)
        std::printf("(1-hardware-thread host: fleet sweep measures "
                    "timeslicing + dispatch overhead; marked "
                    "invalid)\n");
    if (!fleet_identical) {
        std::printf("ERROR: fleet tallies diverged from the "
                    "in-process run — determinism violation\n");
        return 1;
    }

    // Backend equivalence: the same campaign under the compiled and
    // the reference codec must tally identically, cell by cell.
    spec.threads = max_threads;
    sim::CampaignResult compiled_run, reference_run;
    {
        obs::TraceSpan span("backend-equivalence", "bench");
        setCodecBackend(CodecBackend::compiled);
        compiled_run = sim::CampaignRunner(spec).run();
        setCodecBackend(CodecBackend::reference);
        reference_run = sim::CampaignRunner(spec).run();
        setCodecBackend(CodecBackend::compiled);
    }

    bool backends_identical =
        compiled_run.cells.size() == reference_run.cells.size();
    for (std::size_t i = 0;
         backends_identical && i < compiled_run.cells.size(); ++i) {
        const OutcomeCounts& a = compiled_run.cells[i].counts;
        const OutcomeCounts& b = reference_run.cells[i].counts;
        backends_identical = a.trials == b.trials && a.dce == b.dce &&
            a.due == b.due && a.sdc == b.sdc;
    }
    const double campaign_speedup = compiled_run.seconds > 0.0
        ? reference_run.seconds / compiled_run.seconds
        : 0.0;
    std::printf("\n== Codec backend equivalence ==\n"
                "compiled %.3fs vs reference %.3fs (%.2fx), "
                "cells bit-identical: %s\n",
                compiled_run.seconds, reference_run.seconds,
                campaign_speedup, backends_identical ? "yes" : "NO");
    json.key("codec_equivalence").beginObject();
    json.kv("compiled_seconds", compiled_run.seconds);
    json.kv("reference_seconds", reference_run.seconds);
    json.kv("campaign_speedup", campaign_speedup);
    json.kv("bit_identical", backends_identical);
    json.endObject();

    // Provenance + where the time went (for tools/compare_runs). The
    // timing section describes the compiled backend-equivalence run —
    // the last full campaign this bench executed.
    json.key("manifest");
    sim::writeRunManifest(json,
                          sim::campaignRunManifest(compiled_run));
    json.key("timing");
    sim::writeCampaignTiming(json, compiled_run);
    json.endObject();
    if (!backends_identical) {
        std::printf("ERROR: compiled and reference codecs disagreed\n");
        return 1;
    }

    const std::string path = cli.getString("json");
    if (!path.empty()) {
        sim::writeTextFile(path, json.str());
        std::printf("wrote %s\n", path.c_str());
    }
    if (obs::traceEnabled()) {
        if (Status s = obs::stopTraceAndWrite(); !s.ok()) {
            warn("bench_throughput: trace write failed: " +
                 s.toString());
            return 1;
        }
        std::printf("wrote %s\n", trace_path.c_str());
    }
    return 0;
}
