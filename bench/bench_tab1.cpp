/**
 * @file
 * Table 1: soft error pattern probabilities.
 *
 * Classifies every reconstructed beam event into the paper's seven
 * shapes (priority to less-difficult patterns) using the severest
 * affected entry, and prints the measured distribution next to the
 * paper's published Table 1. The published numbers are what
 * bench_tab2/bench_fig8 use as evaluation weights, so any residual
 * difference here (the paper does not fully specify its
 * normalization) does not propagate into the ECC results.
 */

#include <cstdio>

#include "beam/campaign.hpp"
#include "beam/classify.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "faultsim/patterns.hpp"

using namespace gpuecc;
using namespace gpuecc::beam;

int
main(int argc, char** argv)
{
    Cli cli;
    cli.addFlag("runs", "800", "beam runs to simulate");
    cli.addFlag("seed", "0x7AB1", "random seed");
    cli.parse(argc, argv,
              "Regenerate Table 1 (soft error pattern probabilities).");

    CampaignConfig cfg;
    cfg.runs = static_cast<int>(cli.getInt("runs"));
    cfg.seed = static_cast<std::uint64_t>(cli.getInt("seed"));
    Campaign campaign(cfg);
    campaign.runInBeam();
    const ClassificationResult result = classifyLog(campaign.log());
    const auto shapes = shapeDistribution(result);
    const double n = static_cast<double>(result.numEvents());
    std::printf("classified %llu events\n\n",
                static_cast<unsigned long long>(result.numEvents()));

    TextTable table({"Severity", "Bits", "measured", "paper Table 1"});
    const std::pair<ErrorShape, ErrorPattern> rows[] = {
        {ErrorShape::oneBit, ErrorPattern::oneBit},
        {ErrorShape::onePin, ErrorPattern::onePin},
        {ErrorShape::oneByte, ErrorPattern::oneByte},
        {ErrorShape::twoBits, ErrorPattern::twoBits},
        {ErrorShape::threeBits, ErrorPattern::threeBits},
        {ErrorShape::oneBeat, ErrorPattern::oneBeat},
        {ErrorShape::wholeEntry, ErrorPattern::wholeEntry},
    };
    for (const auto& [shape, pattern] : rows) {
        const auto it = shapes.find(shape);
        const std::uint64_t c = it == shapes.end() ? 0 : it->second;
        const PatternInfo& info = patternInfo(pattern);
        table.addRow({info.label, info.bits_range,
                      formatPercent(c / n, 2),
                      formatPercent(info.probability, 2)});
    }
    table.print();
    return 0;
}
