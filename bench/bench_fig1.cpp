/**
 * @file
 * Figure 1: historical neutron-beam DRAM soft-error rates and chip
 * capacities across process generations, their exponential
 * regressions, the flat non-bitcell band, and our (simulated) HBM2
 * measurement overlaid.
 */

#include <cmath>
#include <cstdio>

#include "beam/campaign.hpp"
#include "beam/classify.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "reliability/history.hpp"

using namespace gpuecc;
using namespace gpuecc::reliability;

int
main(int argc, char** argv)
{
    Cli cli;
    cli.addFlag("runs", "200", "beam runs for the HBM2 measurement");
    cli.parse(argc, argv,
              "Regenerate Figure 1 (historical DRAM SER trends).");

    std::printf("== Figure 1: historical trends ==\n\n");
    TextTable hist({"year", "SER (FIT/chip)", "capacity (Mb)"});
    const auto& ser = historicalDramSer();
    const auto& cap = historicalDramCapacity();
    for (std::size_t i = 0; i < std::max(ser.size(), cap.size()); ++i) {
        hist.addRow(
            {i < ser.size() ? formatFixed(ser[i].year, 0) : "",
             i < ser.size() ? formatFixed(ser[i].value, 0) : "",
             i < cap.size() ? formatFixed(cap[i].value, 0) : ""});
    }
    hist.print();

    const LineFit fser = regressSer();
    const LineFit fcap = regressCapacity();
    std::printf("\nexponential regressions (dotted lines):\n");
    std::printf("  SER(year)      = %.0f * exp(%+.3f * (year-2000)),"
                "  R^2 = %.3f  (halves every %.1f years)\n",
                fser.intercept, fser.slope, fser.r2,
                std::log(0.5) / fser.slope);
    std::printf("  capacity(year) = %.0f * exp(%+.3f * (year-2000)),"
                "  R^2 = %.3f  (doubles every %.1f years)\n",
                fcap.intercept, fcap.slope, fcap.r2,
                std::log(2.0) / fcap.slope);
    std::printf("  => per-chip SER decline outpaces capacity growth: "
                "%s\n",
                -fser.slope > fcap.slope ? "yes (as in the paper)"
                                         : "no");

    const auto [lo, hi] = nonBitcellBand();
    std::printf("\nnon-bitcell upset band (Borucki et al.): "
                "[%.0f, %.0f] FIT/chip\n",
                lo, hi);

    // Our HBM2 point from a simulated campaign.
    beam::CampaignConfig cfg;
    cfg.runs = static_cast<int>(cli.getInt("runs"));
    beam::Campaign campaign(cfg);
    campaign.runInBeam();
    const auto result = beam::classifyLog(campaign.log());
    const double rate = result.numEvents() / campaign.timeSeconds();
    int multi = 0;
    for (const auto& ev : result.events)
        multi += ev.multi_bit;
    const double mb_frac =
        result.numEvents()
            ? static_cast<double>(multi) / result.numEvents()
            : 0.0;
    const auto [all_fit, mb_fit] = hbm2PointFit(
        rate, mb_frac, cfg.beam.acceleration(), cfg.stacks);
    std::printf("\nmeasured HBM2 point (green circle / triangle):\n");
    std::printf("  all events:       %.0f FIT/stack  (%.3f ev/s in "
                "beam, %llu events)\n",
                all_fit, rate,
                static_cast<unsigned long long>(result.numEvents()));
    std::printf("  multi-bit events: %.0f FIT/stack  (%.1f%% of "
                "events)\n",
                mb_fit, 100.0 * mb_frac);
    return 0;
}
