/**
 * @file
 * Section 5, "Effect of DRAM Utilization": sweeping the
 * microbenchmark's DRAM access rate shows that the rate of
 * broad-and-severe logic errors (MBSE+MBME) is proportional to the
 * number of memory accesses, while narrow array errors (SBSE+SBME)
 * are proportional to exposure time - the paper's evidence that the
 * multi-bit errors originate in DRAM logic structures rather than
 * direct cell strikes.
 */

#include <cstdio>

#include "beam/campaign.hpp"
#include "beam/classify.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace gpuecc;
using namespace gpuecc::beam;

int
main(int argc, char** argv)
{
    Cli cli;
    cli.addFlag("runs", "400", "beam runs per utilization point");
    cli.addFlag("seed", "0x0712", "random seed");
    cli.parse(argc, argv,
              "Regenerate the Section 5 DRAM-utilization sweep.");

    TextTable table({"utilization", "SB events/hour", "MB events/hour",
                     "MB fraction"});
    double mb_rate_full = 0.0;

    for (const double util : {0.25, 0.5, 0.75, 1.0}) {
        CampaignConfig cfg;
        cfg.runs = static_cast<int>(cli.getInt("runs"));
        cfg.seed = static_cast<std::uint64_t>(cli.getInt("seed"));
        cfg.micro.utilization = util;
        Campaign campaign(cfg);
        campaign.runInBeam();
        const ClassificationResult result =
            classifyLog(campaign.log());
        const double hours = campaign.timeSeconds() / 3600.0;
        std::uint64_t sb = 0, mb = 0;
        for (const auto& ev : result.events)
            (ev.multi_bit ? mb : sb) += 1;
        const double mb_rate = mb / hours;
        if (util == 1.0)
            mb_rate_full = mb_rate;
        table.addRow({formatFixed(util, 2),
                      formatFixed(sb / hours, 1),
                      formatFixed(mb_rate, 1),
                      formatPercent(
                          static_cast<double>(mb) / (sb + mb), 1)});
    }
    table.print();
    (void)mb_rate_full;

    std::printf("\npaper finding: MB (logic) error rate is "
                "proportional to memory accesses, while SB (array)\n"
                "error rate is proportional to exposure time - the "
                "SB column should stay flat while the MB\ncolumn "
                "scales ~linearly with utilization.\n");
    return 0;
}
