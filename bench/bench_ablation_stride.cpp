/**
 * @file
 * Ablation: why the Eq. 1 interleave uses stride 73.
 *
 * The paper's swizzle places logical bit (73 * i) mod 288 at physical
 * position i. Sweeping every stride coprime with 288 shows which
 * strides deliver the two properties the schemes rely on:
 *
 *  - byte spreading: every physical byte deposits exactly 2 bits in
 *    each codeword, in a consistent pairing (so one swizzled H
 *    matrix can correct any byte error as a 2-bit symbol);
 *  - pin spreading ("checkerboard"): every pin deposits exactly one
 *    bit per codeword (preserving single-pin correction).
 */

#include <cstdio>
#include <numeric>
#include <set>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/report.hpp"

namespace {

constexpr int kEntryBits = 288;
constexpr int kBeatBits = 72;

struct StrideProperties
{
    bool pin_ok;       //!< 1 bit per codeword from every pin
    bool byte_ok;      //!< 2 bits per codeword from every byte
    bool pairing_ok;   //!< byte-induced pairs identical across bytes
    int pair_stride;   //!< intra-codeword distance of the pairs (-1)
};

StrideProperties
analyze(int stride)
{
    StrideProperties p{true, true, true, -1};

    // Pin property.
    for (int pin = 0; pin < kBeatBits && p.pin_ok; ++pin) {
        std::set<int> cws;
        for (int beat = 0; beat < 4; ++beat) {
            const int logical =
                (stride * (kBeatBits * beat + pin)) % kEntryBits;
            cws.insert(logical / kBeatBits);
        }
        p.pin_ok = cws.size() == 4;
    }

    // Byte property + pairing consistency.
    std::set<std::pair<int, int>> pairing;
    for (int byte = 0; byte < 36 && p.byte_ok; ++byte) {
        std::vector<std::vector<int>> hits(4);
        for (int t = 0; t < 8; ++t) {
            const int logical = (stride * (8 * byte + t)) % kEntryBits;
            hits[logical / kBeatBits].push_back(logical % kBeatBits);
        }
        for (int cw = 0; cw < 4; ++cw) {
            if (hits[cw].size() != 2) {
                p.byte_ok = false;
                break;
            }
            const int a = std::min(hits[cw][0], hits[cw][1]);
            const int b = std::max(hits[cw][0], hits[cw][1]);
            pairing.insert({a, b});
            if (p.pair_stride < 0)
                p.pair_stride = b - a;
            else if (p.pair_stride != b - a)
                p.pairing_ok = false;
        }
    }
    // A usable pairing must tile the codeword: 36 disjoint pairs.
    if (p.byte_ok) {
        std::set<int> covered;
        for (const auto& [a, b] : pairing) {
            covered.insert(a);
            covered.insert(b);
        }
        p.pairing_ok =
            p.pairing_ok && pairing.size() == 36 && covered.size() == 72;
    }
    return p;
}

} // namespace

int
main(int argc, char** argv)
{
    gpuecc::Cli cli;
    cli.addFlag("json", "", "write results to this JSON file");
    cli.parse(argc, argv,
              "Ablation: sweep of interleave strides coprime with "
              "288 (why Eq. 1 uses 73).");

    int coprime = 0, pin_only = 0, byte_only = 0, both = 0;
    std::vector<int> winners;
    for (int stride = 1; stride < kEntryBits; ++stride) {
        if (std::gcd(stride, kEntryBits) != 1)
            continue;
        ++coprime;
        const StrideProperties p = analyze(stride);
        if (p.pin_ok)
            ++pin_only;
        if (p.byte_ok && p.pairing_ok)
            ++byte_only;
        if (p.pin_ok && p.byte_ok && p.pairing_ok) {
            ++both;
            winners.push_back(stride);
        }
    }

    std::printf("strides coprime with 288:              %d\n", coprime);
    std::printf("  with the pin (checkerboard) property: %d\n",
                pin_only);
    std::printf("  with the byte->2b-symbol property:    %d\n",
                byte_only);
    std::printf("  with both:                            %d\n\n", both);

    gpuecc::TextTable table({"stride", "pair stride", "notes"});
    for (int s : winners) {
        const StrideProperties p = analyze(s);
        table.addRow({std::to_string(s),
                      std::to_string(p.pair_stride),
                      s == 73 ? "<- the paper's Eq. 1" : ""});
    }
    table.print();

    std::printf("\nEvery coprime stride preserves pin correction, "
                "but exactly two deliver the byte->symbol\nproperty: "
                "73 and 217 = 73^-1 mod 288 (the deswizzle stride of "
                "Eq. 2) - the paper's choice is\nunique up to "
                "inversion. Stride 1 (no interleave) keeps whole "
                "bytes inside one codeword.\n");

    const std::string path = cli.getString("json");
    if (!path.empty()) {
        gpuecc::sim::JsonWriter json;
        json.beginObject();
        json.kv("coprime_strides", coprime);
        json.kv("pin_property", pin_only);
        json.kv("byte_property", byte_only);
        json.kv("both_properties", both);
        json.key("winners").beginArray();
        for (int s : winners)
            json.value(s);
        json.endArray().endObject();
        gpuecc::sim::writeTextFile(path, json.str());
    }
    return 0;
}
