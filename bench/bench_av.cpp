/**
 * @file
 * Section 7.3's autonomous-vehicle analysis: per-vehicle SDC FIT
 * against the ISO 26262 ASIL-D budget and fleet-level daily event
 * counts for the US driving population.
 */

#include <cstdio>

#include "common/log.hpp"
#include "common/table.hpp"
#include "ecc/registry.hpp"
#include "faultsim/weighted.hpp"
#include "reliability/system.hpp"
#include "sim/campaign.hpp"
#include "sim/cli.hpp"

using namespace gpuecc;

int
main(int argc, char** argv)
{
    Cli cli;
    sim::addCampaignFlags(cli);
    cli.parse(argc, argv,
              "Regenerate the Section 7.3 autonomous-vehicle "
              "analysis.");

    sim::CampaignSpec spec = sim::campaignSpecFromCli(cli);
    spec.scheme_ids = {"ni-secded", "duet", "trio", "ssc-dsd+"};
    const sim::CampaignResult result = sim::CampaignRunner(spec).run();
    if (result.interrupted)
        return sim::finalizeCampaign(result, cli);
    for (const std::string& id : spec.scheme_ids) {
        if (!result.hasScheme(id))
            fatal("scheme " + id + " produced no results; this "
                  "analysis needs every scheme");
    }

    const reliability::AvModel av;
    std::printf("per-vehicle GPU: %.0f GB HBM2 at %.2f FIT/Gb = "
                "%.0f raw FIT; ASIL-D SDC budget %.0f FIT\n",
                av.gb_per_vehicle, av.fit_per_gbit, av.vehicleRawFit(),
                av.iso26262_sdc_fit_limit);
    std::printf("fleet: 225.8M drivers x 51 min/day = %.2e "
                "GPU-hours/day\n\n",
                av.fleet_hours_per_day);

    TextTable table({"scheme", "SDC FIT", "ASIL-D?", "fleet SDC",
                     "fleet DUE/day"});
    for (const std::string& id : spec.scheme_ids) {
        const auto scheme = makeScheme(id);
        const WeightedOutcome w =
            weightedOutcome(result.perPattern(id));
        const double sdc_per_day = av.fleetSdcPerDay(w);
        char sdc_text[48];
        if (sdc_per_day >= 1.0) {
            std::snprintf(sdc_text, sizeof(sdc_text), "%.0f / day",
                          sdc_per_day);
        } else if (sdc_per_day > 0.0) {
            std::snprintf(sdc_text, sizeof(sdc_text),
                          "1 every %.0f days", 1.0 / sdc_per_day);
        } else {
            std::snprintf(sdc_text, sizeof(sdc_text), "~0");
        }
        table.addRow({scheme->name(),
                      formatFixed(av.vehicleSdcFit(w), 3),
                      av.satisfiesIso26262(w) ? "yes" : "NO",
                      sdc_text,
                      formatFixed(av.fleetDuePerDay(w), 0)});
    }
    table.print();
    std::printf("\npaper anchors: SEC-DED 216 SDC FIT (41 SDC/day "
                "fleet-wide); TrioECC 0.29 FIT (1 per 115 days);\n"
                "DuetECC 0.045 FIT (1 per 18 days... note the paper "
                "swaps these two rates in prose); ~148 DuetECC\n"
                "vehicles/day need DUE recovery vs ~25 for "
                "TrioECC/SSC-DSD+.\n");
    return sim::finalizeCampaign(result, cli);
}
