/**
 * @file
 * Figure 8: the correction / detection / SDC probabilities of each
 * scheme for a random single soft-error event, weighting the
 * per-pattern outcomes by the Table 1 probabilities. Also prints the
 * derived headline claims (SDC improvements over SEC-DED and the
 * uncorrectable-error reduction of TrioECC).
 */

#include <cstdio>

#include "common/log.hpp"
#include "common/table.hpp"
#include "ecc/registry.hpp"
#include "faultsim/weighted.hpp"
#include "sim/campaign.hpp"
#include "sim/cli.hpp"

using namespace gpuecc;

int
main(int argc, char** argv)
{
    Cli cli;
    sim::addCampaignFlags(cli);
    cli.parse(argc, argv,
              "Regenerate Figure 8 (event-weighted outcomes).");

    sim::CampaignSpec spec = sim::campaignSpecFromCli(cli);
    for (const auto& scheme : paperSchemes())
        spec.scheme_ids.push_back(scheme->id());
    const sim::CampaignResult result = sim::CampaignRunner(spec).run();
    if (result.interrupted)
        return sim::finalizeCampaign(result, cli);
    for (const std::string& id : spec.scheme_ids) {
        if (!result.hasScheme(id))
            fatal("scheme " + id + " produced no results; this "
                  "figure needs every scheme");
    }

    TextTable table({"scheme", "correct", "detect", "SDC",
                     "SDC vs SEC-DED"});
    std::map<std::string, WeightedOutcome> outcomes;
    for (const std::string& id : spec.scheme_ids)
        outcomes[id] = weightedOutcome(result.perPattern(id));
    const double base_sdc = outcomes.at("ni-secded").sdc;
    for (const auto& scheme : paperSchemes()) {
        const WeightedOutcome& w = outcomes.at(scheme->id());
        char improvement[32];
        if (w.sdc > 0)
            std::snprintf(improvement, sizeof(improvement), "%.0fx",
                          base_sdc / w.sdc);
        else
            std::snprintf(improvement, sizeof(improvement), ">1e6x");
        table.addRow({scheme->name(), formatPercent(w.correct, 2),
                      formatPercent(w.detect, 2),
                      formatPercent(w.sdc, 5),
                      scheme->id() == "ni-secded" ? "-" : improvement});
    }
    table.print();

    const WeightedOutcome& base = outcomes.at("ni-secded");
    const WeightedOutcome& il = outcomes.at("i-secded");
    const WeightedOutcome& duet = outcomes.at("duet");
    const WeightedOutcome& trio = outcomes.at("trio");
    std::printf("\nheadline claims:\n");
    std::printf("  SEC-DED baseline:        %.1f%% correct / %.1f%% "
                "detect / %.2f%% SDC (paper: 74 / 20 / 5.4)\n",
                100 * base.correct, 100 * base.detect, 100 * base.sdc);
    std::printf("  interleaving:            +%.1f%% correction, "
                "SDC / %.0f (paper: +6.6%%, /247)\n",
                100 * (il.correct - base.correct), base.sdc / il.sdc);
    std::printf("  DuetECC further:         SDC / %.0f over "
                "interleaving (paper: /19)\n",
                il.sdc / duet.sdc);
    std::printf("  TrioECC:                 %.1f%% correct, %.4f%% "
                "SDC (paper: 97%%, 0.0085%%)\n",
                100 * trio.correct, 100 * trio.sdc);
    std::printf("  uncorrectable reduction: %.2fx for TrioECC vs "
                "SEC-DED (paper: 7.87x)\n",
                (base.detect + base.sdc) / (trio.detect + trio.sdc));
    return sim::finalizeCampaign(result, cli);
}
