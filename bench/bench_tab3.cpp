/**
 * @file
 * Table 3: hardware overheads of every encoder and decoder, from the
 * gate-level netlists the hwmodel library synthesizes. Area is in
 * technology-independent AND2 equivalents; delay is calibrated so
 * the baseline SEC-DED encoder's performant point lands at the
 * paper's 0.09 ns. "Perf." is the minimum-depth synthesis, "Eff."
 * the area-optimized (CSE) synthesis.
 */

#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "hwmodel/circuits.hpp"
#include "sim/report.hpp"

using namespace gpuecc;
using namespace gpuecc::hw;

int
main(int argc, char** argv)
{
    Cli cli;
    cli.addFlag("json", "", "write the table to this JSON file");
    cli.parse(argc, argv, "Regenerate Table 3 (hardware overheads).");

    const auto rows = table3Reports();

    // Baselines for the relative ("+%") columns.
    double enc_base_area = 0.0, enc_base_delay = 0.0;
    double dec_base_area = 0.0, dec_base_delay = 0.0;
    for (const SynthesisReport& r : rows) {
        if (r.circuit == "Enc SEC-DED (baseline)" &&
            r.design_point == "Eff.") {
            enc_base_area = r.area_and2;
        }
        if (r.circuit == "Enc SEC-DED (baseline)" &&
            r.design_point == "Perf.") {
            enc_base_delay = r.delay_ns;
        }
        if (r.circuit == "Dec SEC-DED (baseline)" &&
            r.design_point == "Eff.") {
            dec_base_area = r.area_and2;
        }
        if (r.circuit == "Dec SEC-DED (baseline)" &&
            r.design_point == "Perf.") {
            dec_base_delay = r.delay_ns;
        }
    }

    TextTable table({"circuit", "point", "area (AND2)", "area +%",
                     "delay (ns)", "delay +%"});
    for (const SynthesisReport& r : rows) {
        const bool encoder = r.circuit.rfind("Enc", 0) == 0;
        const double base_area = encoder ? enc_base_area
                                         : dec_base_area;
        const double base_delay = encoder ? enc_base_delay
                                          : dec_base_delay;
        table.addRow(
            {r.circuit, r.design_point, formatFixed(r.area_and2, 0),
             formatFixed(100.0 * (r.area_and2 / base_area - 1.0), 1) +
                 "%",
             formatFixed(r.delay_ns, 3),
             formatFixed(100.0 * (r.delay_ns / base_delay - 1.0), 1) +
                 "%"});
    }
    table.print();

    std::printf("\npaper anchors: SEC-DED encoder 1176 AND2 / 0.09 "
                "ns; decoder 2467 AND2 / 0.20 ns;\nDuet/Trio "
                "decoders +10.8%%..+98%%; SSC-DSD+ decoder 2-4x "
                "area and 60-95%% slower.\n");
    std::printf("(Interleaving is wires-only; Duet/Trio reuse the "
                "SEC-DED / SEC-2bEC encoders.)\n");

    const std::string path = cli.getString("json");
    if (!path.empty()) {
        sim::JsonWriter json;
        json.beginObject();
        json.key("rows").beginArray();
        for (const SynthesisReport& r : rows) {
            json.beginObject();
            json.kv("circuit", r.circuit);
            json.kv("design_point", r.design_point);
            json.kv("area_and2", r.area_and2);
            json.kv("delay_ns", r.delay_ns);
            json.endObject();
        }
        json.endArray().endObject();
        sim::writeTextFile(path, json.str());
    }
    return 0;
}
