/**
 * @file
 * Graceful degradation under permanent faults (Section 2.5).
 *
 * The paper preserves single-pin correction in every proposed binary
 * organization so GPUs can degrade gracefully when a TSV/microbump
 * fails in the field, and notes that byte correction carries over to
 * permanent local-wordline failures. This bench quantifies both: the
 * permanent fault alone, and the fault plus a fresh single-bit soft
 * error on the same entry.
 */

#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "ecc/registry.hpp"
#include "faultsim/permanent.hpp"
#include "sim/report.hpp"

using namespace gpuecc;

namespace {

std::string
cell(const DegradationCounts& c)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%4.1f/%4.1f/%4.1f",
                  100.0 * c.dceRate(), 100.0 * c.dueRate(),
                  100.0 * c.sdcRate());
    return buf;
}

void
jsonRow(sim::JsonWriter& w, const std::string& id,
        const std::string& experiment, const DegradationCounts& c)
{
    w.beginObject();
    w.kv("scheme", id);
    w.kv("experiment", experiment);
    w.kv("trials", c.trials);
    w.kv("dce_rate", c.dceRate());
    w.kv("due_rate", c.dueRate());
    w.kv("sdc_rate", c.sdcRate());
    w.endObject();
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli;
    cli.addFlag("trials", "5000", "random trials per cell");
    cli.addFlag("seed", "0xDE62ADE", "random seed");
    cli.addFlag("threads", "1",
                "worker threads (0 = one per hardware thread)");
    cli.addFlag("json", "", "write results to this JSON file");
    cli.parse(argc, argv,
              "Graceful degradation under permanent pin/wordline "
              "faults (DCE/DUE/SDC %).");
    const auto trials =
        static_cast<std::uint64_t>(cli.getInt("trials"));
    const auto seed = static_cast<std::uint64_t>(cli.getInt("seed"));
    const auto threads = static_cast<int>(cli.getInt("threads"));

    sim::JsonWriter json;
    json.beginObject();
    json.kv("trials", trials);
    json.kv("seed", seed);
    json.key("rows").beginArray();

    TextTable table({"scheme", "stuck pin", "pin + 1bit soft",
                     "stuck byte", "byte + 1bit soft"});
    for (const auto& scheme : paperSchemes()) {
        DegradationEvaluator ev(*scheme, seed, threads);
        const DegradationCounts pin =
            ev.faultAlone(PermanentFaultKind::stuckPin, trials);
        const DegradationCounts pin_soft = ev.faultPlusSoftError(
            PermanentFaultKind::stuckPin, ErrorPattern::oneBit, trials);
        const DegradationCounts byte =
            ev.faultAlone(PermanentFaultKind::stuckByte, trials);
        const DegradationCounts byte_soft = ev.faultPlusSoftError(
            PermanentFaultKind::stuckByte, ErrorPattern::oneBit,
            trials);
        table.addRow({scheme->name(), cell(pin), cell(pin_soft),
                      cell(byte), cell(byte_soft)});
        jsonRow(json, scheme->id(), "stuck_pin", pin);
        jsonRow(json, scheme->id(), "stuck_pin_plus_bit", pin_soft);
        jsonRow(json, scheme->id(), "stuck_byte", byte);
        jsonRow(json, scheme->id(), "stuck_byte_plus_bit", byte_soft);
    }
    table.print();
    std::printf("\ncells are corrected/detected/silent percentages. "
                "Paper context: every scheme except\nSSC-DSD+ "
                "corrects a stuck pin (graceful degradation); "
                "TrioECC additionally corrects\npermanent wordline "
                "(stuck byte) failures outright.\n");

    std::printf("\n== Diagnosed-pin erasure mode (library extension) "
                "==\n");
    TextTable erasure({"scheme", "stuck pin (erasure)",
                       "pin + 1bit soft (erasure)"});
    for (const char* id : {"ni-secded", "duet", "trio", "i-ssc",
                           "ssc-dsd+"}) {
        const auto scheme = makeScheme(id);
        DegradationEvaluator ev(*scheme, seed, threads);
        const DegradationCounts alone =
            ev.pinErasureMode(false, ErrorPattern::oneBit, trials);
        const DegradationCounts with_soft =
            ev.pinErasureMode(true, ErrorPattern::oneBit, trials);
        erasure.addRow({scheme->name(), cell(alone),
                        cell(with_soft)});
        jsonRow(json, id, "erasure_stuck_pin", alone);
        jsonRow(json, id, "erasure_stuck_pin_plus_bit", with_soft);
    }
    erasure.print();
    std::printf("\nonce the failed pin is diagnosed, the binary "
                "schemes regain full single-bit correction\n(d = 4: "
                "erasure + 1 error per codeword) and even SSC-DSD+ "
                "tolerates the pin - though its\nfour-symbol fill "
                "spends all residual detection, so an extra error "
                "can slip through.\n");

    json.endArray().endObject();
    const std::string path = cli.getString("json");
    if (!path.empty())
        sim::writeTextFile(path, json.str());
    return 0;
}
