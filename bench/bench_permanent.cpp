/**
 * @file
 * Graceful degradation under permanent faults (Section 2.5).
 *
 * The paper preserves single-pin correction in every proposed binary
 * organization so GPUs can degrade gracefully when a TSV/microbump
 * fails in the field, and notes that byte correction carries over to
 * permanent local-wordline failures. This bench quantifies both: the
 * permanent fault alone, and the fault plus a fresh single-bit soft
 * error on the same entry.
 */

#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "ecc/registry.hpp"
#include "faultsim/permanent.hpp"

using namespace gpuecc;

namespace {

std::string
cell(const DegradationCounts& c)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%4.1f/%4.1f/%4.1f",
                  100.0 * c.dceRate(), 100.0 * c.dueRate(),
                  100.0 * c.sdcRate());
    return buf;
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli;
    cli.addFlag("trials", "5000", "random trials per cell");
    cli.parse(argc, argv,
              "Graceful degradation under permanent pin/wordline "
              "faults (DCE/DUE/SDC %).");
    const auto trials =
        static_cast<std::uint64_t>(cli.getInt("trials"));

    TextTable table({"scheme", "stuck pin", "pin + 1bit soft",
                     "stuck byte", "byte + 1bit soft"});
    for (const auto& scheme : paperSchemes()) {
        DegradationEvaluator ev(*scheme);
        table.addRow(
            {scheme->name(),
             cell(ev.faultAlone(PermanentFaultKind::stuckPin, trials)),
             cell(ev.faultPlusSoftError(PermanentFaultKind::stuckPin,
                                        ErrorPattern::oneBit, trials)),
             cell(ev.faultAlone(PermanentFaultKind::stuckByte,
                                trials)),
             cell(ev.faultPlusSoftError(PermanentFaultKind::stuckByte,
                                        ErrorPattern::oneBit,
                                        trials))});
    }
    table.print();
    std::printf("\ncells are corrected/detected/silent percentages. "
                "Paper context: every scheme except\nSSC-DSD+ "
                "corrects a stuck pin (graceful degradation); "
                "TrioECC additionally corrects\npermanent wordline "
                "(stuck byte) failures outright.\n");

    std::printf("\n== Diagnosed-pin erasure mode (library extension) "
                "==\n");
    TextTable erasure({"scheme", "stuck pin (erasure)",
                       "pin + 1bit soft (erasure)"});
    for (const char* id : {"ni-secded", "duet", "trio", "i-ssc",
                           "ssc-dsd+"}) {
        const auto scheme = makeScheme(id);
        DegradationEvaluator ev(*scheme);
        erasure.addRow(
            {scheme->name(),
             cell(ev.pinErasureMode(false, ErrorPattern::oneBit,
                                    trials)),
             cell(ev.pinErasureMode(true, ErrorPattern::oneBit,
                                    trials))});
    }
    erasure.print();
    std::printf("\nonce the failed pin is diagnosed, the binary "
                "schemes regain full single-bit correction\n(d = 4: "
                "erasure + 1 error per codeword) and even SSC-DSD+ "
                "tolerates the pin - though its\nfour-symbol fill "
                "spends all residual detection, so an extra error "
                "can slip through.\n");
    return 0;
}
