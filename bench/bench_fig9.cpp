/**
 * @file
 * Figure 9: exascale system-level failure rates of DuetECC/TrioECC -
 * mean-time-to-interrupt (DUE) and mean-time-to-failure (SDC) as a
 * function of machine size, using the 12.51 FIT/Gb raw rate and
 * A100-class GPUs. SEC-DED and SSC-DSD+ are included for reference
 * (the paper omits them from the plot as off-scale).
 */

#include <cmath>
#include <cstdio>

#include "common/log.hpp"
#include "common/table.hpp"
#include "ecc/registry.hpp"
#include "faultsim/weighted.hpp"
#include "reliability/system.hpp"
#include "sim/campaign.hpp"
#include "sim/cli.hpp"

using namespace gpuecc;

int
main(int argc, char** argv)
{
    Cli cli;
    sim::addCampaignFlags(cli);
    cli.addFlag("tflops-per-gpu", "19.5",
                "peak FP64 tensor TFLOP/s per GPU (A100)");
    cli.addFlag("gb-per-gpu", "40", "HBM2 GB per GPU");
    cli.parse(argc, argv,
              "Regenerate Figure 9 (exascale MTTI and MTTF).");

    reliability::HpcSystemModel hpc;
    hpc.tflops_per_gpu = cli.getDouble("tflops-per-gpu");
    hpc.gb_per_gpu = cli.getDouble("gb-per-gpu");

    sim::CampaignSpec spec = sim::campaignSpecFromCli(cli);
    spec.scheme_ids = {"ni-secded", "duet", "trio", "ssc-dsd+"};
    const sim::CampaignResult result = sim::CampaignRunner(spec).run();
    if (result.interrupted)
        return sim::finalizeCampaign(result, cli);
    for (const std::string& id : spec.scheme_ids) {
        if (!result.hasScheme(id))
            fatal("scheme " + id + " produced no results; this "
                  "figure needs every scheme");
    }

    std::map<std::string, WeightedOutcome> outcomes;
    for (const std::string& id : spec.scheme_ids)
        outcomes[id] = weightedOutcome(result.perPattern(id));

    const double scales[] = {0.5, 1.0, 1.5, 2.0};

    std::printf("system model: %.1f TFLOP/s and %.0f GB HBM2 per "
                "GPU, %.2f FIT/Gb raw\n\n",
                hpc.tflops_per_gpu, hpc.gb_per_gpu, hpc.fit_per_gbit);

    std::printf("== Figure 9a: MTTI (DUE interrupts), hours ==\n");
    TextTable mtti({"exaflops", "GPUs", "DuetECC", "TrioECC",
                    "SEC-DED", "SSC-DSD+"});
    for (double ef : scales) {
        mtti.addRow({formatFixed(ef, 1),
                     formatFixed(hpc.gpusFor(ef), 0),
                     formatFixed(hpc.mttiHours(ef, outcomes["duet"]), 2),
                     formatFixed(hpc.mttiHours(ef, outcomes["trio"]), 2),
                     formatFixed(
                         hpc.mttiHours(ef, outcomes["ni-secded"]), 2),
                     formatFixed(
                         hpc.mttiHours(ef, outcomes["ssc-dsd+"]), 2)});
    }
    mtti.print();
    std::printf("(paper: DuetECC DUEs every 1.6-6.3 h, TrioECC every "
                "9.4-37.6 h across its scale axis;\n ratio Trio/Duet "
                "~5.9x - our GPUs-per-exaflop assumption shifts "
                "absolutes, not ratios)\n\n");

    std::printf("== Figure 9b: MTTF (SDC failures), hours ==\n");
    TextTable mttf({"exaflops", "DuetECC", "TrioECC", "SEC-DED",
                    "SSC-DSD+"});
    for (double ef : scales) {
        auto fmt = [&](const char* id) {
            const double h = hpc.mttfHours(ef, outcomes[id]);
            return std::isinf(h) ? std::string("inf")
                                 : formatFixed(h, 1);
        };
        mttf.addRow({formatFixed(ef, 1), fmt("duet"), fmt("trio"),
                     fmt("ni-secded"), fmt("ssc-dsd+")});
    }
    mttf.print();
    std::printf("(paper: SEC-DED SDC every 22.5 h at 0.5 EF; TrioECC "
                "MTTF 5.7-22.6 months; DuetECC in years;\n SSC-DSD+ "
                "in hundreds of years)\n");
    return sim::finalizeCampaign(result, cli);
}
