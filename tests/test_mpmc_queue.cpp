/** @file Tests for the bounded lock-free MPMC queue. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/mpmc_queue.hpp"

namespace gpuecc {
namespace {

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(MpmcQueue<int>(1).capacity(), 1u);
    EXPECT_EQ(MpmcQueue<int>(2).capacity(), 2u);
    EXPECT_EQ(MpmcQueue<int>(3).capacity(), 4u);
    EXPECT_EQ(MpmcQueue<int>(4).capacity(), 4u);
    EXPECT_EQ(MpmcQueue<int>(5).capacity(), 8u);
    EXPECT_EQ(MpmcQueue<int>(1000).capacity(), 1024u);
}

TEST(MpmcQueue, FifoSingleThreaded)
{
    MpmcQueue<int> q(8);
    int out = -1;
    EXPECT_FALSE(q.tryPop(out));
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(q.tryPush(i));
    EXPECT_FALSE(q.tryPush(99)) << "queue should be full";
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(q.tryPop(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_FALSE(q.tryPop(out));
}

TEST(MpmcQueue, WrapsAroundManyLaps)
{
    MpmcQueue<int> q(4);
    int out = -1;
    for (int lap = 0; lap < 100; ++lap) {
        for (int i = 0; i < 3; ++i)
            ASSERT_TRUE(q.tryPush(lap * 3 + i));
        for (int i = 0; i < 3; ++i) {
            ASSERT_TRUE(q.tryPop(out));
            EXPECT_EQ(out, lap * 3 + i);
        }
    }
}

TEST(MpmcQueue, SizeApproxTracksSingleThreadedDepth)
{
    MpmcQueue<int> q(16);
    EXPECT_EQ(q.sizeApprox(), 0u);
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(q.tryPush(i));
    EXPECT_EQ(q.sizeApprox(), 10u);
    int out;
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(q.tryPop(out));
    EXPECT_EQ(q.sizeApprox(), 6u);
}

TEST(MpmcQueue, MoveOnlyElements)
{
    MpmcQueue<std::unique_ptr<int>> q(4);
    ASSERT_TRUE(q.tryPush(std::make_unique<int>(42)));
    std::unique_ptr<int> out;
    ASSERT_TRUE(q.tryPop(out));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, 42);
}

TEST(MpmcQueue, SpscPreservesOrder)
{
    constexpr std::uint64_t kItems = 100000;
    MpmcQueue<std::uint64_t> q(64);
    std::thread producer([&] {
        for (std::uint64_t i = 0; i < kItems; ++i) {
            while (!q.tryPush(i))
                std::this_thread::yield();
        }
    });
    std::uint64_t expected = 0;
    while (expected < kItems) {
        std::uint64_t v;
        if (!q.tryPop(v)) {
            std::this_thread::yield();
            continue;
        }
        ASSERT_EQ(v, expected);
        ++expected;
    }
    producer.join();
    std::uint64_t v;
    EXPECT_FALSE(q.tryPop(v));
}

/**
 * MPMC property test: P producers push disjoint increasing ranges, C
 * consumers drain concurrently. Every element must arrive exactly
 * once, and because the ring is FIFO, each consumer's view of any one
 * producer's elements must be increasing (a subsequence of an
 * increasing sequence). Also the TSan stress target: the CI
 * GPUECC_TSAN job runs this suite to race-check the sequence-stamp
 * protocol.
 */
TEST(MpmcQueue, MpmcEveryElementExactlyOnceAndPerProducerOrdered)
{
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr std::uint64_t kPerProducer = 20000;
    constexpr std::uint64_t kTotal = kProducers * kPerProducer;
    MpmcQueue<std::uint64_t> q(128);

    std::atomic<std::uint64_t> popped{0};
    std::vector<std::uint8_t> seen(kTotal, 0);
    std::mutex seen_mutex;
    bool per_producer_ordered = true;

    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back([&q, p] {
            for (std::uint64_t i = 0; i < kPerProducer; ++i) {
                const std::uint64_t v = p * kPerProducer + i;
                while (!q.tryPush(v))
                    std::this_thread::yield();
            }
        });
    }
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
            // Last value this consumer saw from each producer.
            std::vector<std::int64_t> last(kProducers, -1);
            std::vector<std::uint64_t> got;
            got.reserve(kTotal / kConsumers + 64);
            while (popped.load(std::memory_order_relaxed) < kTotal) {
                std::uint64_t v;
                if (!q.tryPop(v)) {
                    std::this_thread::yield();
                    continue;
                }
                popped.fetch_add(1, std::memory_order_relaxed);
                got.push_back(v);
                const int p = static_cast<int>(v / kPerProducer);
                const auto idx =
                    static_cast<std::int64_t>(v % kPerProducer);
                if (idx <= last[p]) {
                    std::lock_guard<std::mutex> lock(seen_mutex);
                    per_producer_ordered = false;
                }
                last[p] = idx;
            }
            std::lock_guard<std::mutex> lock(seen_mutex);
            for (std::uint64_t v : got)
                ++seen[v];
        });
    }
    for (std::thread& t : threads)
        t.join();

    EXPECT_EQ(popped.load(), kTotal);
    EXPECT_TRUE(per_producer_ordered);
    for (std::uint64_t v = 0; v < kTotal; ++v)
        ASSERT_EQ(seen[v], 1) << "element " << v;
    std::uint64_t leftover;
    EXPECT_FALSE(q.tryPop(leftover));
}

/** Consumers double as producers (the liaison requeue pattern). */
TEST(MpmcQueue, ConsumersCanRequeue)
{
    constexpr std::uint64_t kItems = 20000;
    MpmcQueue<std::uint64_t> q(kItems);
    for (std::uint64_t i = 0; i < kItems; ++i)
        ASSERT_TRUE(q.tryPush(i));

    // Each element is requeued once before it counts as done, so
    // every consumer pushes and pops concurrently with the others.
    std::atomic<std::uint64_t> done{0};
    std::vector<std::uint8_t> requeued(kItems, 0);
    std::mutex state_mutex;
    std::vector<std::thread> threads;
    for (int c = 0; c < 4; ++c) {
        threads.emplace_back([&] {
            while (done.load(std::memory_order_relaxed) < kItems) {
                std::uint64_t v;
                if (!q.tryPop(v)) {
                    std::this_thread::yield();
                    continue;
                }
                bool finish;
                {
                    std::lock_guard<std::mutex> lock(state_mutex);
                    finish = requeued[v] != 0;
                    requeued[v] = 1;
                }
                if (finish) {
                    done.fetch_add(1, std::memory_order_relaxed);
                } else {
                    // Queue capacity covers all live elements, so a
                    // requeue can never fail.
                    ASSERT_TRUE(q.tryPush(v));
                }
            }
        });
    }
    for (std::thread& t : threads)
        t.join();
    EXPECT_EQ(done.load(), kItems);
}

} // namespace
} // namespace gpuecc
