/** @file Scheme-parameterized tests over all ECC organizations. */

#include <string>

#include <gtest/gtest.h>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "ecc/registry.hpp"
#include "interleave/swizzle.hpp"

namespace gpuecc {
namespace {

EntryData
randomData(Rng& rng)
{
    return {rng.next64(), rng.next64(), rng.next64(), rng.next64()};
}

class AllSchemes : public ::testing::TestWithParam<std::string>
{
  protected:
    AllSchemes() : scheme_(makeScheme(GetParam())) {}
    std::shared_ptr<EntryScheme> scheme_;
};

TEST_P(AllSchemes, EncodeDecodeRoundTrip)
{
    Rng rng(1);
    for (int trial = 0; trial < 50; ++trial) {
        const EntryData data = randomData(rng);
        const EntryDecode d = scheme_->decode(scheme_->encode(data));
        EXPECT_EQ(d.status, EntryDecode::Status::clean);
        EXPECT_EQ(d.data, data);
    }
}

TEST_P(AllSchemes, EverySingleBitErrorCorrected)
{
    Rng rng(2);
    const EntryData data = randomData(rng);
    const Bits288 golden = scheme_->encode(data);
    for (int i = 0; i < 288; ++i) {
        Bits288 received = golden;
        received.flip(i);
        const EntryDecode d = scheme_->decode(received);
        ASSERT_EQ(d.status, EntryDecode::Status::corrected)
            << scheme_->id() << " bit " << i;
        EXPECT_EQ(d.data, data) << scheme_->id() << " bit " << i;
    }
}

TEST_P(AllSchemes, FullByteInversionNeverSilent)
{
    // A whole-byte flip must be corrected or detected by every
    // interleaved/symbol organization (Table 2 byte column: "C"/"D").
    if (scheme_->id() == "ni-secded" || scheme_->id() == "ni-sec2bec")
        GTEST_SKIP() << "non-interleaved baselines have byte SDC";
    Rng rng(3);
    const EntryData data = randomData(rng);
    const Bits288 golden = scheme_->encode(data);
    for (int byte = 0; byte < 36; ++byte) {
        Bits288 received = golden;
        for (int t = 0; t < 8; ++t)
            received.flip(8 * byte + t);
        const EntryDecode d = scheme_->decode(received);
        if (d.status == EntryDecode::Status::due)
            continue;
        ASSERT_EQ(d.status, EntryDecode::Status::corrected);
        EXPECT_EQ(d.data, data) << scheme_->id() << " byte " << byte;
    }
}

TEST_P(AllSchemes, AllByteErrorsNeverSilent)
{
    // Exhaustive over all 36 x 247 multi-bit byte errors: no paper
    // organization suffers byte-error SDC except the non-interleaved
    // baselines.
    const std::string id = scheme_->id();
    if (id == "ni-secded" || id == "ni-sec2bec")
        GTEST_SKIP() << "non-interleaved baselines have byte SDC";
    Rng rng(4);
    const EntryData data = randomData(rng);
    const Bits288 golden = scheme_->encode(data);
    for (int byte = 0; byte < 36; ++byte) {
        for (unsigned m = 1; m < 256; ++m) {
            if (popcount64(m) < 2)
                continue;
            Bits288 received = golden;
            for (int t = 0; t < 8; ++t) {
                if ((m >> t) & 1)
                    received.flip(8 * byte + t);
            }
            const EntryDecode d = scheme_->decode(received);
            if (d.status == EntryDecode::Status::due)
                continue;
            ASSERT_EQ(d.data, data)
                << id << " byte " << byte << " mask " << m;
        }
    }
}

TEST_P(AllSchemes, PinErrorBehaviourMatchesClaim)
{
    // Full 4-bit pin failures: corrected by every scheme that claims
    // pin correction, detected (never silent) by the rest.
    Rng rng(5);
    const EntryData data = randomData(rng);
    const Bits288 golden = scheme_->encode(data);
    for (int pin = 0; pin < 72; ++pin) {
        Bits288 received = golden;
        for (int beat = 0; beat < 4; ++beat)
            received.flip(layout::physicalIndex(beat, pin));
        const EntryDecode d = scheme_->decode(received);
        if (scheme_->correctsPinErrors()) {
            ASSERT_EQ(d.status, EntryDecode::Status::corrected)
                << scheme_->id() << " pin " << pin;
            EXPECT_EQ(d.data, data);
        } else if (d.status != EntryDecode::Status::due) {
            EXPECT_EQ(d.data, data) << scheme_->id() << " pin " << pin;
        }
    }
}

TEST_P(AllSchemes, OutcomeIndependentOfData)
{
    // Linearity property: the decode outcome for a fixed error mask
    // must not depend on the stored data.
    Rng rng(6);
    for (int trial = 0; trial < 30; ++trial) {
        Bits288 mask;
        const int nbits = 1 + static_cast<int>(rng.nextBounded(12));
        for (int i = 0; i < nbits; ++i)
            mask.set(static_cast<int>(rng.nextBounded(288)), 1);

        const EntryData d1 = randomData(rng);
        const EntryData d2 = randomData(rng);
        const EntryDecode r1 = scheme_->decode(scheme_->encode(d1) ^ mask);
        const EntryDecode r2 = scheme_->decode(scheme_->encode(d2) ^ mask);
        ASSERT_EQ(r1.status, r2.status) << scheme_->id();
        if (r1.status != EntryDecode::Status::due) {
            // Identical residual corruption relative to the data.
            EXPECT_EQ((r1.data[0] ^ d1[0]), (r2.data[0] ^ d2[0]));
            EXPECT_EQ((r1.data[3] ^ d1[3]), (r2.data[3] ^ d2[3]));
        }
    }
}

TEST_P(AllSchemes, EncoderIsLinear)
{
    Rng rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        const EntryData a = randomData(rng);
        const EntryData b = randomData(rng);
        EntryData sum;
        for (int w = 0; w < 4; ++w)
            sum[w] = a[w] ^ b[w];
        EXPECT_EQ(scheme_->encode(a) ^ scheme_->encode(b),
                  scheme_->encode(sum));
    }
}

TEST_P(AllSchemes, NamesAreStable)
{
    EXPECT_EQ(scheme_->id(), GetParam());
    EXPECT_FALSE(scheme_->name().empty());
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AllSchemes,
    ::testing::Values("ni-secded", "i-secded", "duet", "ni-sec2bec",
                      "i-sec2bec", "trio", "i-ssc", "i-ssc-csc",
                      "ssc-dsd+", "dsc", "ssc-tsd"),
    [](const auto& info) {
        std::string name = info.param;
        for (char& c : name) {
            if (c == '-' || c == '+')
                c = '_';
        }
        return name;
    });

TEST(Registry, PaperSchemesOrderedAsTable2)
{
    const auto schemes = paperSchemes();
    ASSERT_EQ(schemes.size(), 9u);
    EXPECT_EQ(schemes.front()->id(), "ni-secded");
    EXPECT_EQ(schemes[2]->id(), "duet");
    EXPECT_EQ(schemes[5]->id(), "trio");
    EXPECT_EQ(schemes.back()->id(), "ssc-dsd+");
}

TEST(Registry, ReferenceSchemes)
{
    const auto refs = referenceSchemes();
    ASSERT_EQ(refs.size(), 2u);
    EXPECT_EQ(refs[0]->id(), "dsc");
    EXPECT_EQ(refs[1]->id(), "ssc-tsd");
}

TEST(SchemeBehaviour, TrioCorrectsAllFullByteErrors)
{
    // The headline TrioECC property: perfect byte correction.
    const auto trio = makeScheme("trio");
    Rng rng(8);
    const EntryData data = randomData(rng);
    const Bits288 golden = trio->encode(data);
    for (int byte = 0; byte < 36; ++byte) {
        for (unsigned m = 1; m < 256; ++m) {
            if (popcount64(m) < 2)
                continue;
            Bits288 received = golden;
            for (int t = 0; t < 8; ++t) {
                if ((m >> t) & 1)
                    received.flip(8 * byte + t);
            }
            const EntryDecode d = trio->decode(received);
            ASSERT_EQ(d.status, EntryDecode::Status::corrected)
                << "byte " << byte << " mask " << m;
            ASSERT_EQ(d.data, data);
        }
    }
}

TEST(SchemeBehaviour, DuetDetectsAllFullByteErrors)
{
    // DuetECC: all byte errors with >4 bits are detected, smaller
    // ones are opportunistically corrected (half-byte correction).
    const auto duet = makeScheme("duet");
    Rng rng(9);
    const EntryData data = randomData(rng);
    const Bits288 golden = duet->encode(data);
    for (int byte = 0; byte < 36; ++byte) {
        Bits288 received = golden;
        for (int t = 0; t < 8; ++t)
            received.flip(8 * byte + t);
        EXPECT_EQ(duet->decode(received).status,
                  EntryDecode::Status::due);
    }
}

TEST(SchemeBehaviour, SscDsdPlusDetectsPinErrors)
{
    const auto dsd = makeScheme("ssc-dsd+");
    Rng rng(10);
    const EntryData data = randomData(rng);
    const Bits288 golden = dsd->encode(data);
    for (int pin = 0; pin < 72; ++pin) {
        Bits288 received = golden;
        for (int beat = 0; beat < 4; ++beat)
            received.flip(layout::physicalIndex(beat, pin));
        EXPECT_EQ(dsd->decode(received).status,
                  EntryDecode::Status::due)
            << "pin " << pin;
    }
}

} // namespace
} // namespace gpuecc
