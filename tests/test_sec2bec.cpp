/** @file Tests for the paper's SEC-2bEC code (Equation 3). */

#include <set>

#include <gtest/gtest.h>

#include "codes/linear_code.hpp"
#include "codes/sec2bec.hpp"
#include "common/bitops.hpp"
#include "common/rng.hpp"

namespace gpuecc {
namespace {

TEST(Sec2bEcMatrix, PrintedMatrixIsSystematic)
{
    const Gf2Matrix h = sec2becPaperMatrix();
    for (int r = 0; r < 8; ++r) {
        for (int c = 64; c < 72; ++c)
            EXPECT_EQ(h.get(r, c), c - 64 == r ? 1 : 0);
    }
}

TEST(Sec2bEcMatrix, AllColumnsOddWeightDistinct)
{
    const Gf2Matrix h = sec2becPaperMatrix();
    std::set<unsigned> cols;
    for (int c = 0; c < 72; ++c) {
        unsigned v = 0;
        for (int r = 0; r < 8; ++r)
            v |= static_cast<unsigned>(h.get(r, c)) << r;
        EXPECT_EQ(popcount64(v) % 2, 1) << "column " << c;
        EXPECT_TRUE(cols.insert(v).second) << "duplicate column " << c;
    }
}

TEST(Sec2bEcMatrix, PaperCodePropertiesAdjacentPairs)
{
    const Code72 code(sec2becPaperMatrix(), Code72::adjacentPairs());
    EXPECT_TRUE(code.isSec());
    EXPECT_TRUE(code.isDed());
    EXPECT_TRUE(code.isAligned2bEc());
}

TEST(Sec2bEcMatrix, PrintedMatrixIsNotStride4Decodable)
{
    // The paper prints the matrix for non-interleaved (bit-adjacent)
    // use; without the swizzle the stride-4 pairs collide.
    const Code72 code(sec2becPaperMatrix(), Code72::stride4Pairs());
    EXPECT_FALSE(code.isAligned2bEc());
}

TEST(Sec2bEcMatrix, InterleavedMatrixIsStride4Decodable)
{
    const Code72 code(sec2becInterleavedMatrix(),
                      Code72::stride4Pairs());
    EXPECT_TRUE(code.isSec());
    EXPECT_TRUE(code.isDed());
    EXPECT_TRUE(code.isAligned2bEc());
}

TEST(Sec2bEcMatrix, InterleavePermutationIsBijective)
{
    const auto perm = sec2becInterleavePermutation();
    std::set<int> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), 72u);
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), 71);
}

TEST(Sec2bEcMatrix, MiscorrectionRateNearTwentyPercent)
{
    // The paper's genetic algorithm reduced the non-neighbouring 2b
    // miscorrection risk by ~20%; the printed code's collision rate
    // sits near 22% of non-aligned 2-bit errors.
    const Code72 code(sec2becPaperMatrix(), Code72::adjacentPairs());
    EXPECT_NEAR(code.nonAligned2bMiscorrectionRate(), 0.219, 0.01);
}

TEST(Sec2bEcDecode, CorrectsAllAlignedPairsIn2bEcMode)
{
    const Code72 code(sec2becPaperMatrix(), Code72::adjacentPairs());
    Rng rng(1);
    const std::uint64_t data = rng.next64();
    const Bits72 golden = code.encode(data);
    for (const auto& [a, b] : code.pairs()) {
        for (unsigned m = 1; m < 4; ++m) {
            Bits72 received = golden;
            if (m & 1)
                received.flip(a);
            if (m & 2)
                received.flip(b);
            const CodewordDecode d =
                code.decode(received, Code72::Mode::sec2bEc);
            ASSERT_EQ(d.status, CodewordDecode::Status::corrected);
            EXPECT_EQ(code.extractData(received ^ d.correction), data);
        }
    }
}

TEST(Sec2bEcDecode, FallsBackToSecDedBehaviour)
{
    // In secDed mode the same code must detect (not correct) every
    // aligned 2-bit error.
    const Code72 code(sec2becPaperMatrix(), Code72::adjacentPairs());
    const Bits72 golden = code.encode(0x1234567890ABCDEFull);
    for (const auto& [a, b] : code.pairs()) {
        Bits72 received = golden;
        received.flip(a);
        received.flip(b);
        const CodewordDecode d =
            code.decode(received, Code72::Mode::secDed);
        EXPECT_EQ(d.status, CodewordDecode::Status::due);
    }
}

TEST(Sec2bEcDecode, SingleBitCorrectionBothModes)
{
    const Code72 code(sec2becPaperMatrix(), Code72::adjacentPairs());
    const std::uint64_t data = 0xA5A5A5A5A5A5A5A5ull;
    const Bits72 golden = code.encode(data);
    for (int i = 0; i < 72; ++i) {
        for (Code72::Mode mode :
             {Code72::Mode::secDed, Code72::Mode::sec2bEc}) {
            Bits72 received = golden;
            received.flip(i);
            const CodewordDecode d = code.decode(received, mode);
            ASSERT_EQ(d.status, CodewordDecode::Status::corrected);
            EXPECT_EQ(code.extractData(received ^ d.correction), data);
        }
    }
}

} // namespace
} // namespace gpuecc
