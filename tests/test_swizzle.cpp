/** @file Tests for the Eq. 1/2 interleave and entry geometry. */

#include <array>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "interleave/swizzle.hpp"

namespace gpuecc {
namespace {

TEST(Layout, GeometryConstants)
{
    EXPECT_EQ(layout::entry_bits, 288);
    EXPECT_EQ(layout::physicalIndex(1, 0), 72);
    EXPECT_EQ(layout::physicalIndex(3, 71), 287);
    EXPECT_EQ(layout::beatOf(100), 1);
    EXPECT_EQ(layout::pinOf(100), 28);
    EXPECT_EQ(layout::byteOf(100), 12);
}

TEST(EntryLayout, NonInterleavedIsIdentity)
{
    const EntryLayout layout(EntryLayout::Kind::nonInterleaved);
    for (int cw = 0; cw < 4; ++cw) {
        for (int bit = 0; bit < 72; ++bit)
            EXPECT_EQ(layout.physicalFor(cw, bit), 72 * cw + bit);
    }
}

TEST(EntryLayout, InterleavedMatchesEquationOne)
{
    // Eq. 1: I_bits[i] = NI_bits[(73 * i) mod 288].
    const EntryLayout layout(EntryLayout::Kind::interleaved);
    for (int i = 0; i < 288; ++i) {
        const auto [cw, bit] = layout.logicalFor(i);
        EXPECT_EQ(72 * cw + bit, (73 * i) % 288);
    }
}

class LayoutKinds
    : public ::testing::TestWithParam<EntryLayout::Kind>
{
};

TEST_P(LayoutKinds, PermutationIsBijective)
{
    const EntryLayout layout(GetParam());
    std::set<int> phys;
    for (int cw = 0; cw < 4; ++cw) {
        for (int bit = 0; bit < 72; ++bit)
            phys.insert(layout.physicalFor(cw, bit));
    }
    EXPECT_EQ(phys.size(), 288u);
}

TEST_P(LayoutKinds, AssembleDisassembleRoundTrip)
{
    const EntryLayout layout(GetParam());
    Rng rng(9);
    for (int trial = 0; trial < 50; ++trial) {
        std::array<Bits72, 4> cws;
        for (auto& cw : cws) {
            cw.setWord(0, rng.next64());
            cw.setWord(1, rng.next64());
        }
        EXPECT_EQ(layout.disassemble(layout.assemble(cws)), cws);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, LayoutKinds,
    ::testing::Values(EntryLayout::Kind::nonInterleaved,
                      EntryLayout::Kind::interleaved));

/**
 * The central geometric theorem behind TrioECC: every physical byte
 * error deposits exactly 2 bits, stride-4 apart, in each codeword.
 */
TEST(InterleaveGeometry, ByteErrorsBecomeStride4Symbols)
{
    const EntryLayout layout(EntryLayout::Kind::interleaved);
    for (int byte = 0; byte < 36; ++byte) {
        std::array<std::vector<int>, 4> hits;
        for (int t = 0; t < 8; ++t) {
            const auto [cw, bit] = layout.logicalFor(8 * byte + t);
            hits[cw].push_back(bit);
        }
        for (int cw = 0; cw < 4; ++cw) {
            ASSERT_EQ(hits[cw].size(), 2u) << "byte " << byte;
            const int a = std::min(hits[cw][0], hits[cw][1]);
            const int b = std::max(hits[cw][0], hits[cw][1]);
            EXPECT_EQ(b - a, 4) << "byte " << byte << " cw " << cw;
            EXPECT_EQ(a / 8, b / 8);
        }
    }
}

/**
 * The checkerboard rotation: a pin error contributes exactly one bit
 * to each codeword, preserving single-pin correction.
 */
TEST(InterleaveGeometry, PinErrorsSpreadOneBitPerCodeword)
{
    const EntryLayout layout(EntryLayout::Kind::interleaved);
    for (int pin = 0; pin < 72; ++pin) {
        std::set<int> cws;
        for (int beat = 0; beat < 4; ++beat) {
            const auto [cw, bit] =
                layout.logicalFor(layout::physicalIndex(beat, pin));
            cws.insert(cw);
        }
        EXPECT_EQ(cws.size(), 4u) << "pin " << pin;
    }
}

TEST(InterleaveGeometry, InducedPairingIdenticalAcrossCodewords)
{
    // Every codeword sees the same 36 stride-4 symbol pairs, so one
    // swizzled H matrix serves all four decoders.
    const EntryLayout layout(EntryLayout::Kind::interleaved);
    std::array<std::set<std::pair<int, int>>, 4> pairs;
    for (int byte = 0; byte < 36; ++byte) {
        std::array<std::vector<int>, 4> hits;
        for (int t = 0; t < 8; ++t) {
            const auto [cw, bit] = layout.logicalFor(8 * byte + t);
            hits[cw].push_back(bit);
        }
        for (int cw = 0; cw < 4; ++cw) {
            pairs[cw].insert({std::min(hits[cw][0], hits[cw][1]),
                              std::max(hits[cw][0], hits[cw][1])});
        }
    }
    for (int cw = 1; cw < 4; ++cw)
        EXPECT_EQ(pairs[cw], pairs[0]);
    EXPECT_EQ(pairs[0].size(), 36u);
}

TEST(InterleaveGeometry, StrideChoiceIsEssentiallyUnique)
{
    // Among all strides coprime with 288, only 73 and its modular
    // inverse 217 (Eq. 2's deswizzle) turn every byte into one
    // stride-4 symbol per codeword; 73 * 217 = 1 (mod 288).
    EXPECT_EQ((73 * 217) % 288, 1);

    auto byte_property = [](int stride) {
        for (int byte = 0; byte < 36; ++byte) {
            std::array<int, 4> hits{};
            for (int t = 0; t < 8; ++t) {
                const int logical = (stride * (8 * byte + t)) % 288;
                ++hits[logical / 72];
            }
            for (int cw = 0; cw < 4; ++cw) {
                if (hits[cw] != 2)
                    return false;
            }
        }
        return true;
    };
    EXPECT_TRUE(byte_property(73));
    EXPECT_TRUE(byte_property(217));
    EXPECT_FALSE(byte_property(1));
    EXPECT_FALSE(byte_property(145)); // also 1 mod 72, still fails
    EXPECT_FALSE(byte_property(5));
}

} // namespace
} // namespace gpuecc
