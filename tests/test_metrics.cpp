/**
 * @file
 * Telemetry-layer tests: metrics registry semantics (bucket
 * boundaries, shard-merge determinism — also under the chaos
 * harness), manifest JSON round-trips with exact 64-bit counters,
 * trace-file structure, progress formatting, thread-pool telemetry,
 * and checkpoint manifest embedding.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "sim/campaign.hpp"
#include "sim/chaos.hpp"
#include "sim/checkpoint.hpp"
#include "sim/json.hpp"
#include "sim/report.hpp"

using namespace gpuecc;

namespace {

std::string
tempPath(const std::string& name)
{
    return ::testing::TempDir() + name;
}

} // namespace

TEST(Metrics, HistogramBucketBoundariesAreInclusiveUpper)
{
    obs::MetricsRegistry& reg = obs::metrics();
    reg.resetValues();
    const obs::MetricId h =
        reg.histogram("test.bounds", {10, 100, 1000});

    // Bucket i holds v <= bounds[i] (and > bounds[i-1]); the last
    // bucket overflows.
    for (const std::uint64_t v : {0ull, 10ull})
        reg.observe(h, v);
    for (const std::uint64_t v : {11ull, 100ull})
        reg.observe(h, v);
    reg.observe(h, 1000);
    for (const std::uint64_t v : {1001ull, 123456789ull})
        reg.observe(h, v);
    reg.flushThisThread();

    const obs::MetricsSnapshot snap = reg.snapshot();
    const obs::HistogramValue* hv = snap.findHistogram("test.bounds");
    ASSERT_NE(hv, nullptr);
    ASSERT_EQ(hv->bounds.size(), 3u);
    ASSERT_EQ(hv->counts.size(), 4u);
    EXPECT_EQ(hv->counts[0], 2u);
    EXPECT_EQ(hv->counts[1], 2u);
    EXPECT_EQ(hv->counts[2], 1u);
    EXPECT_EQ(hv->counts[3], 2u);
    EXPECT_EQ(hv->total(), 7u);
}

TEST(Metrics, CounterRegistrationIsIdempotent)
{
    obs::MetricsRegistry& reg = obs::metrics();
    EXPECT_EQ(reg.counter("test.same"), reg.counter("test.same"));
    EXPECT_EQ(reg.histogram("test.same_h", {1, 2}),
              reg.histogram("test.same_h", {1, 2}));
}

TEST(Metrics, SinceIsolatesOneRunsActivity)
{
    obs::MetricsRegistry& reg = obs::metrics();
    reg.resetValues();
    const obs::MetricId c = reg.counter("test.delta");
    reg.add(c, 7);
    reg.flushThisThread();
    const obs::MetricsSnapshot baseline = reg.snapshot();

    reg.add(c, 5);
    reg.flushThisThread();
    const obs::MetricsSnapshot now = reg.snapshot();
    const obs::MetricsSnapshot delta = now.since(baseline);

    EXPECT_EQ(now.findCounter("test.delta")->value, 12u);
    EXPECT_EQ(delta.findCounter("test.delta")->value, 5u);
}

TEST(Metrics, ShardMergeIsDeterministicAcrossThreadCounts)
{
    obs::MetricsRegistry& reg = obs::metrics();
    const obs::MetricId c = reg.counter("test.merge_counter");
    const obs::MetricId g = reg.gauge("test.merge_gauge");
    const obs::MetricId h = reg.histogram("test.merge_hist", {50});

    // The same work distributed over 1, 2, and 5 threads must merge
    // to identical totals: per-counter addition and per-bucket
    // addition are associative and commutative, and gauges merge by
    // max.
    std::vector<obs::MetricsSnapshot> runs;
    for (const int threads : {1, 2, 5}) {
        reg.resetValues();
        {
            ThreadPool pool(threads);
            pool.parallelFor(100, [&](std::uint64_t i) {
                reg.add(c, i);
                // A gauge records the last value set per thread and
                // merges by max across threads, so only one task
                // sets it — the merged value is deterministic.
                if (i == 99)
                    reg.setGauge(g, 99);
                reg.observe(h, i);
            });
        }
        // Pool workers merged at thread exit; the caller-thread
        // worker merges here.
        reg.flushThisThread();
        runs.push_back(reg.snapshot());
    }
    for (const obs::MetricsSnapshot& snap : runs) {
        EXPECT_EQ(snap.findCounter("test.merge_counter")->value,
                  4950u);
        EXPECT_EQ(snap.findGauge("test.merge_gauge")->value, 99);
        EXPECT_EQ(snap.findHistogram("test.merge_hist")->counts[0],
                  51u);
        EXPECT_EQ(snap.findHistogram("test.merge_hist")->counts[1],
                  49u);
    }
}

TEST(Metrics, CampaignCountersMatchResultUnderChaos)
{
    // A chaos-injected retry must not disturb the merged counters:
    // the campaign.* deltas agree with the result at every thread
    // count even when a task fails once and is re-run.
    sim::ChaosSpec chaos;
    chaos.task_fault = 0;
    chaos.task_fault_count = 1;

    std::vector<std::uint64_t> trial_counts;
    for (const int threads : {1, 4}) {
        sim::setChaosSpec(chaos);
        sim::CampaignSpec spec;
        spec.scheme_ids = {"duet"};
        spec.patterns = {ErrorPattern::oneBit, ErrorPattern::oneBeat};
        spec.samples = 4000;
        spec.threads = threads;
        const sim::CampaignResult r = sim::CampaignRunner(spec).run();
        sim::clearChaosSpec();

        const obs::CounterValue* shards =
            r.metrics.findCounter("campaign.shards_completed");
        const obs::CounterValue* trials =
            r.metrics.findCounter("campaign.trials");
        const obs::CounterValue* retries =
            r.metrics.findCounter("campaign.shard_retries");
        ASSERT_NE(shards, nullptr);
        ASSERT_NE(trials, nullptr);
        ASSERT_NE(retries, nullptr);
        EXPECT_EQ(shards->value, r.shards);
        EXPECT_EQ(trials->value, r.totalTrials());
        EXPECT_EQ(retries->value, 1u);
        const obs::HistogramValue* micros =
            r.metrics.findHistogram("campaign.shard_micros");
        ASSERT_NE(micros, nullptr);
        EXPECT_EQ(micros->total(), r.shards);
        trial_counts.push_back(trials->value);
    }
    EXPECT_EQ(trial_counts[0], trial_counts[1]);
}

TEST(Metrics, CampaignResultCarriesTimingAndPoolTelemetry)
{
    sim::CampaignSpec spec;
    spec.scheme_ids = {"duet", "trio"};
    spec.patterns = {ErrorPattern::oneBit};
    spec.samples = 2000;
    spec.threads = 2;
    const sim::CampaignResult r = sim::CampaignRunner(spec).run();

    EXPECT_EQ(r.pool.threads, 2);
    EXPECT_EQ(r.pool.tasks_executed, r.shards);
    EXPECT_GT(r.pool.wall_seconds, 0.0);
    EXPECT_GE(r.pool.utilization(), 0.0);
    EXPECT_LE(r.pool.utilization(), 1.0);
    EXPECT_GE(r.cpu_seconds, 0.0);

    ASSERT_EQ(r.scheme_timings.size(), 2u);
    std::uint64_t trials = 0;
    for (const obs::SchemeTiming& t : r.scheme_timings) {
        EXPECT_GT(t.shards, 0u);
        trials += t.trials;
    }
    EXPECT_EQ(trials, r.totalTrials());
}

TEST(Manifest, JsonRoundTripPreservesExact64BitValues)
{
    obs::RunManifest m;
    m.tool = "test_metrics";
    m.build = obs::buildInfo();
    m.threads = 8;
    m.codec_backend = "compiled";
    m.chaos = "task_fault=3";
    // Full-range values: the JSON layer must not route these through
    // a double.
    m.samples = 18446744073709551615ull;
    m.seed = 9007199254740993ull; // 2^53 + 1: breaks IEEE doubles
    m.chunk = 65536;
    m.schemes = {"duet", "trio"};
    m.traced = true;

    sim::JsonWriter w;
    sim::writeRunManifest(w, m);
    const auto doc = sim::parseJson(w.str());
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    const sim::JsonValue& root = doc.value();

    EXPECT_EQ(root.find("tool")->asString().value(), "test_metrics");
    EXPECT_EQ(root.find("samples")->asUint64().value(),
              18446744073709551615ull);
    EXPECT_EQ(root.find("seed")->asUint64().value(),
              9007199254740993ull);
    EXPECT_EQ(root.find("chunk")->asUint64().value(), 65536u);
    EXPECT_EQ(root.find("threads")->asUint64().value(), 8u);
    EXPECT_EQ(root.find("codec_backend")->asString().value(),
              "compiled");
    EXPECT_EQ(root.find("chaos")->asString().value(), "task_fault=3");
    ASSERT_NE(root.find("schemes"), nullptr);
    ASSERT_EQ(root.find("schemes")->elements().size(), 2u);
    EXPECT_EQ(root.find("schemes")->elements()[1].asString().value(),
              "trio");
    EXPECT_TRUE(root.find("traced")->asBool().value());
    EXPECT_GT(root.find("hardware_threads")->asUint64().value(), 0u);
}

TEST(Manifest, CampaignJsonTimingCountersAreExact)
{
    sim::CampaignSpec spec;
    spec.scheme_ids = {"duet"};
    spec.patterns = {ErrorPattern::oneBit};
    spec.samples = 1000;
    const sim::CampaignResult r = sim::CampaignRunner(spec).run();

    const auto doc = sim::parseJson(sim::campaignJson(r));
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    const sim::JsonValue* timing = doc.value().find("timing");
    ASSERT_NE(timing, nullptr);
    const sim::JsonValue* counters = timing->find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->find("campaign.shards_completed")
                  ->asUint64()
                  .value(),
              r.shards);
    EXPECT_EQ(counters->find("campaign.trials")->asUint64().value(),
              r.totalTrials());
    const sim::JsonValue* manifest = doc.value().find("manifest");
    ASSERT_NE(manifest, nullptr);
    EXPECT_EQ(manifest->find("seed")->asUint64().value(),
              r.spec.seed);
}

TEST(Trace, FileIsValidJsonWithSpansAndTrackNames)
{
    const std::string path = tempPath("gpuecc_trace_test.json");
    std::remove(path.c_str());

    obs::startTrace(path);
    ASSERT_TRUE(obs::traceEnabled());
    {
        obs::TraceSpan outer("outer", "test");
        obs::TraceSpan inner("inner", "test");
        inner.arg("detail", std::string("abc"));
        inner.arg("count", std::uint64_t{42});
        EXPECT_TRUE(outer.active());
    }
    obs::setTrackName(1000, "scheme duet");
    obs::emitSpan("synthetic", "scheme", obs::traceNowUs(), 5, "",
                  1000);
    ASSERT_TRUE(obs::stopTraceAndWrite().ok());
    EXPECT_FALSE(obs::traceEnabled());

    const auto text = sim::loadTextFile(path);
    ASSERT_TRUE(text.ok());
    const auto doc = sim::parseJson(text.value());
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    const sim::JsonValue* events = doc.value().find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    bool saw_outer = false, saw_inner_args = false, saw_track = false;
    for (const sim::JsonValue& e : events->elements()) {
        const sim::JsonValue* name = e.find("name");
        if (name == nullptr)
            continue;
        const std::string n = name->asString().value();
        if (n == "outer") {
            saw_outer = true;
            EXPECT_EQ(e.find("ph")->asString().value(), "X");
            EXPECT_TRUE(e.find("dur")->asUint64().ok());
        }
        if (n == "inner" && e.find("args") != nullptr) {
            saw_inner_args =
                e.find("args")->find("count")->asUint64().value() ==
                42u;
        }
        if (n == "thread_name" && e.find("args") != nullptr &&
            e.find("args")->find("name") != nullptr) {
            saw_track |= e.find("args")
                             ->find("name")
                             ->asString()
                             .value() == "scheme duet";
        }
    }
    EXPECT_TRUE(saw_outer);
    EXPECT_TRUE(saw_inner_args);
    EXPECT_TRUE(saw_track);
    std::remove(path.c_str());
}

TEST(Trace, SpansAreNoOpsWhenDisabled)
{
    ASSERT_FALSE(obs::traceEnabled());
    obs::TraceSpan span("ignored", "test");
    EXPECT_FALSE(span.active());
    obs::emitSpan("ignored", "test", 0, 1);
}

TEST(Trace, CampaignWithTraceIsBitIdenticalToWithout)
{
    sim::CampaignSpec spec;
    spec.scheme_ids = {"duet"};
    spec.patterns = {ErrorPattern::oneBit, ErrorPattern::oneBeat};
    spec.samples = 3000;
    spec.threads = 2;
    const sim::CampaignResult plain = sim::CampaignRunner(spec).run();
    const std::string csv_plain = sim::campaignCsv(plain);

    const std::string path = tempPath("gpuecc_trace_campaign.json");
    obs::startTrace(path);
    const sim::CampaignResult traced =
        sim::CampaignRunner(spec).run();
    ASSERT_TRUE(obs::stopTraceAndWrite().ok());

    // Telemetry must never perturb determinism: identical tallies,
    // byte-identical CSV.
    ASSERT_EQ(plain.cells.size(), traced.cells.size());
    for (std::size_t i = 0; i < plain.cells.size(); ++i) {
        EXPECT_EQ(plain.cells[i].counts.sdc,
                  traced.cells[i].counts.sdc);
        EXPECT_EQ(plain.cells[i].counts.trials,
                  traced.cells[i].counts.trials);
    }
    EXPECT_EQ(csv_plain, sim::campaignCsv(traced));

    // And the trace actually holds campaign + shard spans.
    const auto doc =
        sim::parseJson(sim::loadTextFile(path).value());
    ASSERT_TRUE(doc.ok());
    bool saw_campaign = false, saw_shard = false;
    for (const sim::JsonValue& e :
         doc.value().find("traceEvents")->elements()) {
        const sim::JsonValue* cat = e.find("cat");
        if (cat == nullptr)
            continue;
        const std::string c = cat->asString().value();
        saw_campaign |= c == "campaign";
        saw_shard |= c == "shard";
    }
    EXPECT_TRUE(saw_campaign);
    EXPECT_TRUE(saw_shard);
    std::remove(path.c_str());
}

TEST(Progress, FormatLineShowsCountsRateAndEta)
{
    obs::ProgressSample s;
    s.totals = {40, 4};
    s.shards_done = 10;
    s.trials_done = 250000;
    s.schemes_done = 1;
    s.trials_per_second = 8.6e6;
    s.eta_seconds = 12.0;
    const std::string line = obs::formatProgressLine(s);
    EXPECT_NE(line.find("25.0%"), std::string::npos);
    EXPECT_NE(line.find("10/40"), std::string::npos);
    EXPECT_NE(line.find("1/4"), std::string::npos);
    EXPECT_NE(line.find("8.60M trials/s"), std::string::npos);
    EXPECT_NE(line.find("eta 12s"), std::string::npos);

    s.eta_seconds = -1.0;
    EXPECT_NE(obs::formatProgressLine(s).find("eta --"),
              std::string::npos);

    // The percent is shard-based (enumerable patterns make per-shard
    // trial counts unknowable up front) and never exceeds 100%.
    s.shards_done = 40;
    s.trials_done = 99999999;
    EXPECT_NE(obs::formatProgressLine(s).find("100.0%"),
              std::string::npos);
}

TEST(Progress, OffModeIsInertAndSafe)
{
    obs::ProgressReporter reporter(obs::ProgressMode::off,
                                   {10, 2});
    EXPECT_FALSE(reporter.enabled());
    reporter.shardDone(100);
    reporter.schemeDone();
    reporter.stop(); // idempotent
}

TEST(PoolTelemetry, StatsCountTasksAndWallTime)
{
    ThreadPool pool(3);
    std::atomic<std::uint64_t> sum{0};
    pool.parallelFor(200, [&](std::uint64_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
    });
    const ThreadPool::Stats stats = pool.stats();
    EXPECT_EQ(stats.tasks_executed, 200u);
    EXPECT_GT(stats.wall_seconds, 0.0);
    EXPECT_GE(stats.busy_seconds, 0.0);
    EXPECT_EQ(sum.load(), 19900u);
}

TEST(PoolTelemetry, UtilizationIsClamped)
{
    obs::PoolTelemetry t;
    t.threads = 2;
    t.wall_seconds = 1.0;
    t.busy_seconds = 5.0; // over-report: must clamp, not exceed 1
    EXPECT_EQ(t.utilization(), 1.0);
    EXPECT_EQ(t.idleFraction(), 0.0);
    t.busy_seconds = 1.0;
    EXPECT_NEAR(t.utilization(), 0.5, 1e-12);
}

TEST(CheckpointManifest, RoundTripsAndToleratesLegacyFiles)
{
    const std::string path = tempPath("gpuecc_ck_manifest.json");
    std::remove(path.c_str());

    sim::CampaignCheckpoint ck;
    ck.fingerprint = "v1;test";
    ck.manifest = {{"threads", "4"}, {"codec_backend", "compiled"}};
    sim::CheckpointEntry e;
    e.task = 0;
    e.counts.trials = 10;
    e.counts.dce = 10;
    ck.done.push_back(e);
    ASSERT_TRUE(sim::saveCheckpoint(path, ck).ok());

    const auto loaded = sim::loadCheckpoint(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    ASSERT_EQ(loaded.value().manifest.size(), 2u);
    EXPECT_EQ(loaded.value().manifest[0].first, "threads");
    EXPECT_EQ(loaded.value().manifest[0].second, "4");

    // A pre-telemetry checkpoint (no manifest key) still loads.
    ASSERT_TRUE(
        sim::saveTextFile(
            path, "{\"version\":1,\"fingerprint\":\"v1;test\","
                  "\"tasks\":[[0,10,10,0,0,false]]}")
            .ok());
    const auto legacy = sim::loadCheckpoint(path);
    ASSERT_TRUE(legacy.ok()) << legacy.status().toString();
    EXPECT_TRUE(legacy.value().manifest.empty());
    EXPECT_EQ(legacy.value().done.size(), 1u);
    std::remove(path.c_str());
}

TEST(CheckpointManifest, CampaignWritesManifestIntoCheckpoint)
{
    const std::string path = tempPath("gpuecc_ck_campaign.json");
    std::remove(path.c_str());

    sim::CampaignSpec spec;
    spec.scheme_ids = {"duet"};
    spec.patterns = {ErrorPattern::oneBit};
    spec.samples = 1000;
    spec.checkpoint_path = path;
    spec.checkpoint_interval_s = 0.0;
    sim::CampaignRunner(spec).run();

    const auto loaded = sim::loadCheckpoint(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    bool saw_backend = false;
    for (const auto& [key, value] : loaded.value().manifest)
        saw_backend |= key == "codec_backend" && !value.empty();
    EXPECT_TRUE(saw_backend);
    std::remove(path.c_str());
}
