/** @file Tests for the reconfigurable DuetECC/TrioECC decoder. */

#include <gtest/gtest.h>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "ecc/reconfigurable.hpp"

namespace gpuecc {
namespace {

TEST(Reconfigurable, EncodeIsPolicyIndependent)
{
    ReconfigurableDuetTrio codec(ReconfigurableDuetTrio::Policy::duet);
    Rng rng(1);
    for (int trial = 0; trial < 20; ++trial) {
        const EntryData data{rng.next64(), rng.next64(), rng.next64(),
                             rng.next64()};
        const Bits288 as_duet = codec.encode(data);
        codec.setPolicy(ReconfigurableDuetTrio::Policy::trio);
        EXPECT_EQ(codec.encode(data), as_duet);
        codec.setPolicy(ReconfigurableDuetTrio::Policy::duet);
    }
}

TEST(Reconfigurable, PolicySwitchesByteErrorHandling)
{
    // The correction/SDC trade-off in one codec: a full byte error
    // is a DUE under the Duet policy and corrected under Trio.
    ReconfigurableDuetTrio codec(ReconfigurableDuetTrio::Policy::duet);
    Rng rng(2);
    const EntryData data{rng.next64(), rng.next64(), rng.next64(),
                         rng.next64()};
    Bits288 received = codec.encode(data);
    for (int t = 0; t < 8; ++t)
        received.flip(8 * 11 + t);

    EXPECT_EQ(codec.decode(received).status,
              EntryDecode::Status::due);

    codec.setPolicy(ReconfigurableDuetTrio::Policy::trio);
    const EntryDecode trio = codec.decode(received);
    ASSERT_EQ(trio.status, EntryDecode::Status::corrected);
    EXPECT_EQ(trio.data, data);
}

TEST(Reconfigurable, BothPoliciesCorrectSingleBitsAndPins)
{
    for (const auto policy : {ReconfigurableDuetTrio::Policy::duet,
                              ReconfigurableDuetTrio::Policy::trio}) {
        ReconfigurableDuetTrio codec(policy);
        Rng rng(3);
        const EntryData data{rng.next64(), rng.next64(), rng.next64(),
                             rng.next64()};
        const Bits288 golden = codec.encode(data);
        for (int i = 0; i < 288; i += 7) {
            Bits288 received = golden;
            received.flip(i);
            const EntryDecode d = codec.decode(received);
            ASSERT_EQ(d.status, EntryDecode::Status::corrected);
            EXPECT_EQ(d.data, data);
        }
        for (int pin = 0; pin < 72; pin += 5) {
            Bits288 received = golden;
            for (int beat = 0; beat < 4; ++beat)
                received.flip(72 * beat + pin);
            const EntryDecode d = codec.decode(received);
            ASSERT_EQ(d.status, EntryDecode::Status::corrected);
            EXPECT_EQ(d.data, data);
        }
    }
}

TEST(Reconfigurable, NameTracksPolicy)
{
    ReconfigurableDuetTrio codec(ReconfigurableDuetTrio::Policy::trio);
    EXPECT_NE(codec.name().find("Trio"), std::string::npos);
    codec.setPolicy(ReconfigurableDuetTrio::Policy::duet);
    EXPECT_NE(codec.name().find("Duet"), std::string::npos);
    EXPECT_TRUE(codec.correctsPinErrors());
}

} // namespace
} // namespace gpuecc
