/** @file Unit tests for GF(2) matrix algebra. */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gf2/matrix.hpp"

namespace gpuecc {
namespace {

Gf2Matrix
randomMatrix(int rows, int cols, Rng& rng)
{
    Gf2Matrix m(rows, cols);
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c)
            m.set(r, c, static_cast<int>(rng.nextBounded(2)));
    }
    return m;
}

TEST(Gf2Matrix, IdentityProperties)
{
    const Gf2Matrix id = Gf2Matrix::identity(8);
    EXPECT_EQ(id.rank(), 8);
    EXPECT_EQ(id.multiply(id), id);
    EXPECT_EQ(*id.inverse(), id);
}

TEST(Gf2Matrix, SetGetRoundTrip)
{
    Gf2Matrix m(3, 100);
    m.set(1, 99, 1);
    m.set(2, 0, 1);
    EXPECT_EQ(m.get(1, 99), 1);
    EXPECT_EQ(m.get(2, 0), 1);
    EXPECT_EQ(m.get(0, 50), 0);
    m.set(1, 99, 0);
    EXPECT_EQ(m.get(1, 99), 0);
}

TEST(Gf2Matrix, RowOperations)
{
    Gf2Matrix m(2, 4);
    m.set(0, 0, 1);
    m.set(0, 2, 1);
    m.set(1, 1, 1);
    m.addRowInto(0, 1);
    EXPECT_EQ(m.get(1, 0), 1);
    EXPECT_EQ(m.get(1, 1), 1);
    EXPECT_EQ(m.get(1, 2), 1);
    m.swapRows(0, 1);
    EXPECT_EQ(m.get(0, 1), 1);
    EXPECT_EQ(m.get(1, 1), 0);
}

TEST(Gf2Matrix, RankOfSingularMatrix)
{
    Gf2Matrix m(3, 3);
    m.set(0, 0, 1);
    m.set(1, 1, 1);
    m.addRowInto(0, 2);
    m.addRowInto(1, 2); // row 2 = row 0 + row 1
    EXPECT_EQ(m.rank(), 2);
    EXPECT_FALSE(m.inverse().has_value());
}

TEST(Gf2Matrix, InverseRoundTrip)
{
    Rng rng(3);
    for (int trial = 0; trial < 20; ++trial) {
        Gf2Matrix m = randomMatrix(8, 8, rng);
        const auto inv = m.inverse();
        if (!inv.has_value()) {
            EXPECT_LT(m.rank(), 8);
            continue;
        }
        EXPECT_EQ(m.multiply(*inv), Gf2Matrix::identity(8));
        EXPECT_EQ(inv->multiply(m), Gf2Matrix::identity(8));
    }
}

TEST(Gf2Matrix, MultiplyVectorMatchesMultiply)
{
    Rng rng(4);
    const Gf2Matrix m = randomMatrix(8, 72, rng);
    // Build a random 72-bit vector as a 72x1 matrix and packed words.
    Gf2Matrix v(72, 1);
    std::vector<std::uint64_t> packed(2, 0);
    for (int i = 0; i < 72; ++i) {
        const int bit = static_cast<int>(rng.nextBounded(2));
        v.set(i, 0, bit);
        if (bit)
            packed[i / 64] |= std::uint64_t{1} << (i % 64);
    }
    const Gf2Matrix prod = m.multiply(v);
    const auto fast = m.multiplyVector(packed);
    for (int r = 0; r < 8; ++r)
        EXPECT_EQ(prod.get(r, 0), static_cast<int>((fast[0] >> r) & 1));
}

TEST(Gf2Matrix, SelectColumns)
{
    Rng rng(5);
    const Gf2Matrix m = randomMatrix(4, 10, rng);
    const Gf2Matrix sel = m.selectColumns({9, 0, 5});
    EXPECT_EQ(sel.cols(), 3);
    for (int r = 0; r < 4; ++r) {
        EXPECT_EQ(sel.get(r, 0), m.get(r, 9));
        EXPECT_EQ(sel.get(r, 1), m.get(r, 0));
        EXPECT_EQ(sel.get(r, 2), m.get(r, 5));
    }
}

TEST(Gf2Matrix, TransposeInvolution)
{
    Rng rng(6);
    const Gf2Matrix m = randomMatrix(5, 9, rng);
    EXPECT_EQ(m.transposed().transposed(), m);
    EXPECT_EQ(m.transposed().rank(), m.rank());
}

TEST(Gf2Matrix, ColumnAccessors)
{
    Gf2Matrix m(8, 3);
    m.set(0, 1, 1);
    m.set(7, 1, 1);
    EXPECT_EQ(m.columnWord(1), 0x81u);
    EXPECT_EQ(m.columnWord(0), 0u);
}

TEST(Gf2Matrix, MultiplyAssociativity)
{
    Rng rng(7);
    const Gf2Matrix a = randomMatrix(4, 6, rng);
    const Gf2Matrix b = randomMatrix(6, 5, rng);
    const Gf2Matrix c = randomMatrix(5, 3, rng);
    EXPECT_EQ(a.multiply(b).multiply(c), a.multiply(b.multiply(c)));
}

} // namespace
} // namespace gpuecc
