/** @file Unit tests for Crockford Base32 decoding. */

#include <gtest/gtest.h>

#include "codes/crockford.hpp"
#include "codes/sec2bec.hpp"
#include "common/rng.hpp"

namespace gpuecc {
namespace {

std::uint64_t
bitsToU64(const std::vector<int>& bits)
{
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < bits.size() && i < 64; ++i)
        v |= static_cast<std::uint64_t>(bits[i]) << i;
    return v;
}

TEST(Crockford, KnownValues)
{
    EXPECT_EQ(bitsToU64(crockfordDecode("0", 8)), 0u);
    EXPECT_EQ(bitsToU64(crockfordDecode("1", 8)), 1u);
    EXPECT_EQ(bitsToU64(crockfordDecode("10", 8)), 32u);
    EXPECT_EQ(bitsToU64(crockfordDecode("Z", 8)), 31u);
    // "16J" = 1*1024 + 6*32 + 18 = 1234.
    EXPECT_EQ(bitsToU64(crockfordDecode("16J", 16)), 1234u);
}

TEST(Crockford, DecodeAliases)
{
    // I and L decode as 1, O as 0; lowercase accepted.
    EXPECT_EQ(bitsToU64(crockfordDecode("I", 8)), 1u);
    EXPECT_EQ(bitsToU64(crockfordDecode("L", 8)), 1u);
    EXPECT_EQ(bitsToU64(crockfordDecode("O", 8)), 0u);
    EXPECT_EQ(bitsToU64(crockfordDecode("o", 8)), 0u);
    EXPECT_EQ(bitsToU64(crockfordDecode("z", 8)), 31u);
}

TEST(Crockford, HyphensIgnored)
{
    EXPECT_EQ(bitsToU64(crockfordDecode("1-6-J", 16)), 1234u);
}

TEST(Crockford, EncodeDecodeRoundTrip)
{
    Rng rng(1);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<int> bits(72);
        for (int& b : bits)
            b = static_cast<int>(rng.nextBounded(2));
        const std::string text = crockfordEncode(bits);
        EXPECT_EQ(crockfordDecode(text, 72), bits);
    }
}

TEST(Crockford, PaperRowsRoundTrip)
{
    // The embedded Eq. 3 strings survive a decode/encode round trip.
    for (const std::string& row : sec2becPaperRows()) {
        const std::vector<int> bits = crockfordDecode(row, 75);
        EXPECT_EQ(crockfordEncode(bits), row);
    }
}

TEST(Crockford, PaperRowsFitIn72Bits)
{
    for (const std::string& row : sec2becPaperRows()) {
        const std::vector<int> bits = crockfordDecode(row, 72);
        EXPECT_EQ(bits.size(), 72u);
    }
}

} // namespace
} // namespace gpuecc
