/** @file Tests for structural Verilog export. */

#include <algorithm>

#include <gtest/gtest.h>

#include "codes/hsiao.hpp"
#include "ecc/registry.hpp"
#include "hwmodel/circuits.hpp"
#include "hwmodel/netlist.hpp"

namespace gpuecc {
namespace hw {
namespace {

TEST(Verilog, SmallCircuitText)
{
    Netlist nl;
    const int a = nl.input("a");
    const int b = nl.input("b");
    nl.output("y", nl.gate(GateKind::xor2, a, b));
    nl.output("z", nl.notOf(a));
    const std::string v = nl.toVerilog("tiny");

    EXPECT_NE(v.find("module tiny ("), std::string::npos);
    EXPECT_NE(v.find("input wire a,"), std::string::npos);
    EXPECT_NE(v.find("output wire y,"), std::string::npos);
    EXPECT_NE(v.find("a ^ b"), std::string::npos);
    EXPECT_NE(v.find("~a"), std::string::npos);
    EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, ConstantsAndMux)
{
    Netlist nl;
    const int s = nl.input("s");
    const int a = nl.input("a");
    nl.output("m", nl.gate(GateKind::mux2, s, a, nl.constant(true)));
    const std::string v = nl.toVerilog("muxy");
    EXPECT_NE(v.find("s ? 1'b1 : a"), std::string::npos);
}

TEST(Verilog, DuplicatePortNamesFallBackToPositional)
{
    Netlist nl;
    const int a = nl.input("x");
    const int b = nl.input("x"); // duplicate
    nl.output("y", nl.gate(GateKind::and2, a, b));
    const std::string v = nl.toVerilog("dup");
    EXPECT_NE(v.find("input wire in0,"), std::string::npos);
    EXPECT_NE(v.find("input wire in1,"), std::string::npos);
}

TEST(Verilog, EncoderAndDecoderExport)
{
    // The paper-facing deliverables: SEC-DED/SEC-2bEC encoders and
    // the Duet/Trio decoders export as pure-gate structural Verilog.
    const auto trio_scheme = makeScheme("ni-sec2bec");
    const Netlist enc = buildEntryEncoder(*trio_scheme, true);
    const std::string enc_v = enc.toVerilog("sec2bec_encoder");
    EXPECT_NE(enc_v.find("module sec2bec_encoder"), std::string::npos);
    // 256 data inputs and 32 check outputs.
    EXPECT_NE(enc_v.find("input wire d255,"), std::string::npos);
    EXPECT_EQ(enc.inputCount(), 256);
    EXPECT_EQ(enc.outputCount(), 32);

    const Code72 code(hsiao7264Matrix(), Code72::stride4Pairs());
    const Netlist dec = buildBinaryDecoder(code, false, true, true,
                                           true);
    const std::string dec_v = dec.toVerilog("duet_decoder");
    EXPECT_NE(dec_v.find("module duet_decoder"), std::string::npos);
    EXPECT_NE(dec_v.find("output wire due"), std::string::npos);
    // The file should hold one assign per gate plus the outputs.
    const auto assigns =
        std::count(dec_v.begin(), dec_v.end(), '=');
    EXPECT_GT(assigns, dec.gateCount());
}

TEST(Verilog, BlackBoxCircuitsAreRejected)
{
    // SSC decoders contain dlog ROM blocks; export must refuse
    // rather than emit unsynthesizable placeholders.
    const Netlist ssc = buildSscDecoder(false, true);
    EXPECT_DEATH(
        { (void)ssc.toVerilog("ssc"); }, "black-box");
}

} // namespace
} // namespace hw
} // namespace gpuecc
