/** @file Tests for erasure (diagnosed-pin) decoding. */

#include <algorithm>

#include <gtest/gtest.h>

#include "codes/hsiao.hpp"
#include "common/rng.hpp"
#include "ecc/reconfigurable.hpp"
#include "ecc/registry.hpp"
#include "faultsim/permanent.hpp"
#include "gf256/gf256.hpp"
#include "interleave/swizzle.hpp"
#include "rs/decoders.hpp"

namespace gpuecc {
namespace {

TEST(RsErasure, FillsAllErasurePatterns)
{
    const RsCode code(18, 16);
    Rng rng(1);
    std::vector<std::uint8_t> data(16);
    for (auto& v : data)
        v = static_cast<std::uint8_t>(rng.nextBounded(256));
    const auto cw = code.encode(data);

    for (int pos = 0; pos < 18; ++pos) {
        for (int e = 0; e < 256; e += 11) {
            auto corrupted = cw;
            corrupted[pos] =
                gf256::add(corrupted[pos], static_cast<std::uint8_t>(e));
            const RsDecode d =
                decodeWithErasures(code, corrupted, {pos});
            ASSERT_NE(d.status, RsDecode::Status::due);
            EXPECT_EQ(d.word, cw) << "pos " << pos << " e " << e;
        }
    }
}

TEST(RsErasure, ResidualSyndromeDetectsExtraError)
{
    // r = 2 with one erasure keeps one syndrome of detection: an
    // additional error elsewhere must raise a DUE, never corrupt.
    const RsCode code(18, 16);
    Rng rng(2);
    std::vector<std::uint8_t> data(16, 0x5A);
    const auto cw = code.encode(data);
    int dues = 0;
    for (int trial = 0; trial < 3000; ++trial) {
        const int erased = static_cast<int>(rng.nextBounded(18));
        int other = 0;
        do {
            other = static_cast<int>(rng.nextBounded(18));
        } while (other == erased);
        auto corrupted = cw;
        corrupted[erased] = gf256::add(
            corrupted[erased],
            static_cast<std::uint8_t>(rng.nextBounded(256)));
        corrupted[other] = gf256::add(
            corrupted[other],
            static_cast<std::uint8_t>(1 + rng.nextBounded(255)));
        const RsDecode d =
            decodeWithErasures(code, corrupted, {erased});
        ASSERT_EQ(d.status, RsDecode::Status::due);
        ++dues;
    }
    EXPECT_EQ(dues, 3000);
}

TEST(RsErasure, FourErasuresFillACompletelyLostPin)
{
    const RsCode code(36, 32);
    Rng rng(3);
    std::vector<std::uint8_t> data(32);
    for (auto& v : data)
        v = static_cast<std::uint8_t>(rng.nextBounded(256));
    const auto cw = code.encode(data);
    for (int trial = 0; trial < 500; ++trial) {
        std::vector<int> erasures;
        while (erasures.size() < 4) {
            const int p = static_cast<int>(rng.nextBounded(36));
            if (std::find(erasures.begin(), erasures.end(), p) ==
                erasures.end()) {
                erasures.push_back(p);
            }
        }
        auto corrupted = cw;
        for (int p : erasures) {
            corrupted[p] = gf256::add(
                corrupted[p],
                static_cast<std::uint8_t>(rng.nextBounded(256)));
        }
        const RsDecode d = decodeWithErasures(code, corrupted, erasures);
        ASSERT_NE(d.status, RsDecode::Status::due);
        EXPECT_EQ(d.word, cw);
    }
}

TEST(BinaryErasure, ErasurePlusOneErrorAlwaysResolved)
{
    // d = 4: one erasure plus one error is within the inner code's
    // guarantee - exhaustive over erased position x error position.
    const Code72 code(hsiao7264Matrix());
    const std::uint64_t data = 0x123456789ABCDEF0ull;
    const Bits72 golden = code.encode(data);
    for (int erased = 0; erased < 72; erased += 5) {
        for (int flip_erased = 0; flip_erased < 2; ++flip_erased) {
            for (int err = 0; err < 72; ++err) {
                if (err == erased)
                    continue;
                Bits72 received = golden;
                if (flip_erased)
                    received.flip(erased);
                received.flip(err);
                const CodewordDecode d =
                    code.decodeWithErasure(received, erased);
                ASSERT_EQ(d.status, CodewordDecode::Status::corrected)
                    << erased << "," << err;
                EXPECT_EQ(code.extractData(received ^ d.correction),
                          data);
            }
        }
    }
}

TEST(BinaryErasure, CheckBitErasureResolvedExhaustively)
{
    // The erased position may be a *check* bit (64..71): the
    // two-interpretation resolution must work there too, including
    // when the extra error also lands in the check byte.
    const Code72 code(hsiao7264Matrix());
    const std::uint64_t data = 0xD00DFEED0C0FFEE0ull;
    const Bits72 golden = code.encode(data);
    for (int erased = 64; erased < 72; ++erased) {
        for (int flip_erased = 0; flip_erased < 2; ++flip_erased) {
            for (int err = 0; err < 72; ++err) {
                if (err == erased)
                    continue;
                Bits72 received = golden;
                if (flip_erased)
                    received.flip(erased);
                received.flip(err);
                const CodewordDecode d =
                    code.decodeWithErasure(received, erased);
                ASSERT_EQ(d.status, CodewordDecode::Status::corrected)
                    << erased << "," << err;
                EXPECT_EQ(code.extractData(received ^ d.correction),
                          data);
            }
        }
    }
}

TEST(BinaryErasure, CheckBitErasureAloneIsCleanOrFilled)
{
    // No extra error: an untouched check-bit erasure is clean, a
    // flipped one is corrected back without touching the data.
    const Code72 code(hsiao7264Matrix());
    const Bits72 golden = code.encode(0xBEEF);
    for (int erased = 64; erased < 72; ++erased) {
        EXPECT_EQ(code.decodeWithErasure(golden, erased).status,
                  CodewordDecode::Status::clean);
        Bits72 flipped = golden;
        flipped.flip(erased);
        const CodewordDecode d = code.decodeWithErasure(flipped, erased);
        ASSERT_EQ(d.status, CodewordDecode::Status::corrected);
        EXPECT_EQ(code.extractData(flipped ^ d.correction),
                  std::uint64_t{0xBEEF});
    }
}

TEST(BinaryErasure, ErasurePlusDoubleErrorNeverClean)
{
    // Beyond the guarantee (erasure + two errors) the decoder may
    // miscorrect or raise a DUE, but it must never report clean: with
    // d = 4 no two extra flips can restore a valid codeword under
    // either interpretation of the erased bit.
    const Code72 code(hsiao7264Matrix());
    const Bits72 golden = code.encode(0xCAFEF00Dull);
    for (int erased = 0; erased < 72; erased += 7) {
        for (int a = 0; a < 72; ++a) {
            if (a == erased)
                continue;
            for (int b = a + 1; b < 72; ++b) {
                if (b == erased)
                    continue;
                Bits72 received = golden;
                received.flip(a);
                received.flip(b);
                const CodewordDecode d =
                    code.decodeWithErasure(received, erased);
                ASSERT_NE(d.status, CodewordDecode::Status::clean)
                    << erased << "," << a << "," << b;
            }
        }
    }
}

TEST(BinaryErasure, CleanWordWithErasureIsClean)
{
    const Code72 code(hsiao7264Matrix());
    const Bits72 golden = code.encode(42);
    const CodewordDecode d = code.decodeWithErasure(golden, 10);
    EXPECT_EQ(d.status, CodewordDecode::Status::clean);
}

class PinErasureSchemes : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PinErasureSchemes, StuckPinFullyAbsorbedInErasureMode)
{
    const auto scheme = makeScheme(GetParam());
    Rng rng(4);
    for (int trial = 0; trial < 100; ++trial) {
        const EntryData data{rng.next64(), rng.next64(), rng.next64(),
                             rng.next64()};
        const Bits288 stored = scheme->encode(data);
        const int pin = static_cast<int>(rng.nextBounded(72));
        const PermanentFault fault{PermanentFaultKind::stuckPin, pin,
                                   static_cast<int>(rng.nextBounded(2))};
        const Bits288 received = stored ^ fault.maskFor(stored);
        const EntryDecode d =
            scheme->decodeWithPinErasure(received, pin);
        ASSERT_NE(d.status, EntryDecode::Status::due) << GetParam();
        EXPECT_EQ(d.data, data) << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, PinErasureSchemes,
    ::testing::Values("ni-secded", "duet", "trio", "i-ssc",
                      "ssc-dsd+"),
    [](const auto& info) {
        std::string name = info.param;
        for (char& c : name) {
            if (c == '-' || c == '+')
                c = '_';
        }
        return name;
    });

TEST(PinErasure, BinarySchemesRegainSingleBitCorrectionWhenDegraded)
{
    // The payoff of erasure mode: a stuck pin AND a fresh single-bit
    // soft error are both corrected (plain degraded decode turns
    // these into DUEs; see test_permanent).
    for (const char* id : {"duet", "trio"}) {
        const auto scheme = makeScheme(id);
        Rng rng(5);
        const EntryData data{rng.next64(), rng.next64(), rng.next64(),
                             rng.next64()};
        const Bits288 stored = scheme->encode(data);
        const int pin = 17;
        const PermanentFault fault{PermanentFaultKind::stuckPin, pin,
                                   0};
        for (int bit = 0; bit < 288; bit += 3) {
            if (layout::pinOf(bit) == pin)
                continue;
            Bits288 received = stored ^ fault.maskFor(stored);
            received.flip(bit);
            const EntryDecode d =
                scheme->decodeWithPinErasure(received, pin);
            ASSERT_NE(d.status, EntryDecode::Status::due)
                << id << " bit " << bit;
            EXPECT_EQ(d.data, data) << id << " bit " << bit;
        }
    }
}

TEST(PinErasure, CheckPinErasureWithExtraFlipCorrected)
{
    // Pins 64..71 carry the check byte in beat-major layouts; erasure
    // mode must absorb a stuck check pin plus one fresh soft error
    // just as it does for data pins.
    for (const char* id : {"ni-secded", "duet", "trio"}) {
        const auto scheme = makeScheme(id);
        Rng rng(9);
        const EntryData data{rng.next64(), rng.next64(), rng.next64(),
                             rng.next64()};
        const Bits288 stored = scheme->encode(data);
        for (int pin = 64; pin < 72; ++pin) {
            const PermanentFault fault{PermanentFaultKind::stuckPin,
                                       pin, 1};
            for (int bit = 0; bit < 288; bit += 5) {
                if (layout::pinOf(bit) == pin)
                    continue;
                Bits288 received = stored ^ fault.maskFor(stored);
                received.flip(bit);
                const EntryDecode d =
                    scheme->decodeWithPinErasure(received, pin);
                ASSERT_NE(d.status, EntryDecode::Status::due)
                    << id << " pin " << pin << " bit " << bit;
                EXPECT_EQ(d.data, data)
                    << id << " pin " << pin << " bit " << bit;
            }
        }
    }
}

TEST(PinErasure, SscDsdPlusRegainsPinToleranceViaErasures)
{
    // The normal SSC-DSD+ decoder cannot handle pin failures; the
    // erasure-mode decoder fills all four crossed symbols.
    const auto dsd = makeScheme("ssc-dsd+");
    Rng rng(6);
    const EntryData data{rng.next64(), rng.next64(), rng.next64(),
                         rng.next64()};
    const Bits288 stored = dsd->encode(data);
    for (int pin = 0; pin < 72; ++pin) {
        const PermanentFault fault{PermanentFaultKind::stuckPin, pin,
                                   1};
        const Bits288 received = stored ^ fault.maskFor(stored);
        EXPECT_EQ(dsd->decode(received).status ==
                          EntryDecode::Status::due ||
                      dsd->decode(received).data == data,
                  true);
        const EntryDecode d = dsd->decodeWithPinErasure(received, pin);
        ASSERT_NE(d.status, EntryDecode::Status::due) << "pin " << pin;
        EXPECT_EQ(d.data, data) << "pin " << pin;
    }
}

TEST(PinErasure, DefaultImplementationFallsBackToNormalDecode)
{
    // Schemes without an override just decode normally.
    const ReconfigurableDuetTrio codec;
    Rng rng(7);
    const EntryData data{rng.next64(), rng.next64(), rng.next64(),
                         rng.next64()};
    Bits288 received = codec.encode(data);
    received.flip(5);
    const EntryDecode d = codec.decodeWithPinErasure(received, 60);
    EXPECT_EQ(d.status, EntryDecode::Status::corrected);
    EXPECT_EQ(d.data, data);
}

TEST(PinErasure, DsdPlusErasureModeHasNoResidualMargin)
{
    // Four erasures consume all four check symbols: an additional
    // soft error during degraded operation can corrupt silently -
    // the cost of regaining pin tolerance without pin-aware layout.
    const auto dsd = makeScheme("ssc-dsd+");
    Rng rng(8);
    const EntryData data{1, 2, 3, 4};
    const Bits288 stored = dsd->encode(data);
    const int pin = 3;
    const PermanentFault fault{PermanentFaultKind::stuckPin, pin, 1};
    int silent = 0, trials = 0;
    for (int bit = 0; bit < 288; ++bit) {
        if (layout::pinOf(bit) == pin)
            continue;
        Bits288 received = stored ^ fault.maskFor(stored);
        received.flip(bit);
        const EntryDecode d = dsd->decodeWithPinErasure(received, pin);
        ++trials;
        if (d.status != EntryDecode::Status::due && d.data != data)
            ++silent;
    }
    // Essentially every extra bit error corrupts the fill.
    EXPECT_GT(silent, trials / 2);
}

} // namespace
} // namespace gpuecc
