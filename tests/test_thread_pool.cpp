/** @file Tests for the work-stealing thread pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace gpuecc {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    for (int threads : {1, 2, 8}) {
        for (std::uint64_t n : {0ull, 1ull, 7ull, 1000ull}) {
            ThreadPool pool(threads);
            std::vector<std::atomic<int>> hits(n);
            pool.parallelFor(n, [&](std::uint64_t i) {
                hits[i].fetch_add(1, std::memory_order_relaxed);
            });
            for (std::uint64_t i = 0; i < n; ++i)
                EXPECT_EQ(hits[i].load(), 1)
                    << "threads=" << threads << " n=" << n
                    << " i=" << i;
        }
    }
}

TEST(ThreadPool, ReusableAcrossLoops)
{
    ThreadPool pool(4);
    for (int round = 0; round < 20; ++round) {
        std::atomic<std::uint64_t> sum{0};
        pool.parallelFor(100, [&](std::uint64_t i) {
            sum.fetch_add(i, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), 4950u);
    }
}

TEST(ThreadPool, ThreadCountResolution)
{
    EXPECT_EQ(ThreadPool(1).threadCount(), 1);
    EXPECT_EQ(ThreadPool(5).threadCount(), 5);
    EXPECT_EQ(ThreadPool(0).threadCount(),
              ThreadPool::hardwareThreads());
    EXPECT_GE(ThreadPool::hardwareThreads(), 1);
}

TEST(ThreadPool, PropagatesFirstException)
{
    for (int threads : {1, 4}) {
        ThreadPool pool(threads);
        std::atomic<std::uint64_t> executed{0};
        EXPECT_THROW(
            pool.parallelFor(64,
                             [&](std::uint64_t i) {
                                 executed.fetch_add(1);
                                 if (i == 13)
                                     throw std::runtime_error("boom");
                             }),
            std::runtime_error);
        // The loop drains before rethrowing, so the pool stays usable.
        std::atomic<std::uint64_t> sum{0};
        pool.parallelFor(10, [&](std::uint64_t i) {
            sum.fetch_add(i);
        });
        EXPECT_EQ(sum.load(), 45u);
    }
}

TEST(ThreadPool, OversubscriptionIsDeterministic)
{
    // More workers than hardware threads: coverage and mergeable
    // results must be unaffected — short campaigns on small hosts
    // and the CI runners both land here.
    const int threads = 4 * ThreadPool::hardwareThreads();
    for (int round = 0; round < 5; ++round) {
        ThreadPool pool(threads);
        std::vector<std::atomic<int>> hits(1000);
        std::atomic<std::uint64_t> sum{0};
        pool.parallelFor(hits.size(), [&](std::uint64_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
            sum.fetch_add(i, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i].load(), 1) << "i=" << i;
        EXPECT_EQ(sum.load(), 499500u);
    }
}

TEST(ThreadPool, CurrentWorkerIdsAreDenseAndStable)
{
    // Outside any loop the calling thread is worker 0.
    EXPECT_EQ(ThreadPool::currentWorker(), 0);
    ThreadPool pool(4);
    std::vector<std::atomic<int>> seen(pool.threadCount());
    // Spawned workers park in their first task until the caller has
    // run one; without this, a loaded host can let them steal the
    // caller's whole queue shard before it pops once, and the
    // worker-0-participated assertion below would race.
    std::atomic<bool> caller_ran{false};
    pool.parallelFor(256, [&](std::uint64_t) {
        const int w = ThreadPool::currentWorker();
        ASSERT_GE(w, 0);
        ASSERT_LT(w, pool.threadCount());
        if (w == 0)
            caller_ran.store(true, std::memory_order_release);
        else
            while (!caller_ran.load(std::memory_order_acquire))
                std::this_thread::yield();
        seen[w].fetch_add(1, std::memory_order_relaxed);
    });
    int total = 0;
    for (auto& s : seen)
        total += s.load();
    EXPECT_EQ(total, 256);
    // The calling thread participated as worker 0.
    EXPECT_GT(seen[0].load(), 0);
}

TEST(ThreadPool, WorkerArenaSlotsAreIsolatedAndMergeable)
{
    ThreadPool pool(4);
    WorkerArena<std::uint64_t> sums(pool);
    EXPECT_EQ(sums.size(), pool.threadCount());
    pool.parallelFor(1000, [&](std::uint64_t i) {
        sums.local() += i; // unsynchronized by design
    });
    std::uint64_t total = 0;
    for (int w = 0; w < sums.size(); ++w)
        total += sums.at(w);
    EXPECT_EQ(total, 499500u);
}

TEST(ThreadPool, PerWorkerBusySecondsSumToBusy)
{
    ThreadPool pool(3);
    pool.parallelFor(300, [&](std::uint64_t) {
        volatile int spin = 0;
        for (int i = 0; i < 1000; ++i)
            spin = spin + i;
    });
    const ThreadPool::Stats stats = pool.stats();
    ASSERT_EQ(stats.worker_busy_seconds.size(), 3u);
    double sum = 0.0;
    for (double s : stats.worker_busy_seconds) {
        EXPECT_GE(s, 0.0);
        sum += s;
    }
    EXPECT_NEAR(sum, stats.busy_seconds, 1e-9);
}

TEST(ThreadPool, AffinityRequestNeverChangesResults)
{
    // Pinning is a placement hint: whether or not the platform
    // honours it, the pool must report a coherent flag and produce
    // identical results.
    ThreadPool unpinned(2, false);
    EXPECT_FALSE(unpinned.affinityApplied());
    ThreadPool pinned(2, true);
    std::atomic<std::uint64_t> sum{0};
    pinned.parallelFor(100, [&](std::uint64_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 4950u);
    // On Linux the pin either took or was recorded as not applied;
    // either way later pools are unaffected.
    std::atomic<std::uint64_t> sum2{0};
    ThreadPool after(2, false);
    after.parallelFor(100, [&](std::uint64_t i) {
        sum2.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum2.load(), 4950u);
}

} // namespace
} // namespace gpuecc
