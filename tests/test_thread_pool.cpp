/** @file Tests for the work-stealing thread pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"

namespace gpuecc {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    for (int threads : {1, 2, 8}) {
        for (std::uint64_t n : {0ull, 1ull, 7ull, 1000ull}) {
            ThreadPool pool(threads);
            std::vector<std::atomic<int>> hits(n);
            pool.parallelFor(n, [&](std::uint64_t i) {
                hits[i].fetch_add(1, std::memory_order_relaxed);
            });
            for (std::uint64_t i = 0; i < n; ++i)
                EXPECT_EQ(hits[i].load(), 1)
                    << "threads=" << threads << " n=" << n
                    << " i=" << i;
        }
    }
}

TEST(ThreadPool, ReusableAcrossLoops)
{
    ThreadPool pool(4);
    for (int round = 0; round < 20; ++round) {
        std::atomic<std::uint64_t> sum{0};
        pool.parallelFor(100, [&](std::uint64_t i) {
            sum.fetch_add(i, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), 4950u);
    }
}

TEST(ThreadPool, ThreadCountResolution)
{
    EXPECT_EQ(ThreadPool(1).threadCount(), 1);
    EXPECT_EQ(ThreadPool(5).threadCount(), 5);
    EXPECT_EQ(ThreadPool(0).threadCount(),
              ThreadPool::hardwareThreads());
    EXPECT_GE(ThreadPool::hardwareThreads(), 1);
}

TEST(ThreadPool, PropagatesFirstException)
{
    for (int threads : {1, 4}) {
        ThreadPool pool(threads);
        std::atomic<std::uint64_t> executed{0};
        EXPECT_THROW(
            pool.parallelFor(64,
                             [&](std::uint64_t i) {
                                 executed.fetch_add(1);
                                 if (i == 13)
                                     throw std::runtime_error("boom");
                             }),
            std::runtime_error);
        // The loop drains before rethrowing, so the pool stays usable.
        std::atomic<std::uint64_t> sum{0};
        pool.parallelFor(10, [&](std::uint64_t i) {
            sum.fetch_add(i);
        });
        EXPECT_EQ(sum.load(), 45u);
    }
}

} // namespace
} // namespace gpuecc
