/**
 * @file
 * Differential tests for the batched shard kernel.
 *
 * evaluateShard (per-sample scalar dispatch) is the oracle;
 * evaluateShardBatched must produce bit-identical tallies for every
 * scheme in the registry, every pattern class, every block-aligned
 * chunk size, every thread count, and both codec backends — the
 * equivalence the execution-core refactor's determinism guarantee
 * rests on. Also covers the effectiveShardChunk planning helper and
 * the cache-line alignment of the arena types.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/codec_mode.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "ecc/registry.hpp"
#include "faultsim/shard.hpp"
#include "sim/campaign.hpp"

namespace gpuecc {
namespace {

constexpr std::uint64_t kSeed = 0xB47C4ED;

bool
sameCounts(const OutcomeCounts& a, const OutcomeCounts& b)
{
    return a.trials == b.trials && a.dce == b.dce && a.due == b.due &&
           a.sdc == b.sdc && a.exhaustive == b.exhaustive;
}

/** Merged tallies of one (scheme, pattern) run through a kernel. */
OutcomeCounts
runShards(const EntryScheme& scheme, const GoldenEntry& golden,
          ErrorPattern pattern, std::uint64_t samples,
          std::uint64_t chunk, bool batched)
{
    OutcomeCounts total;
    ShardBatchArena arena;
    for (const Shard& shard : planShards(pattern, samples, chunk)) {
        total.merge(batched
                        ? evaluateShardBatched(scheme, golden, kSeed,
                                               shard, arena)
                        : evaluateShard(scheme, golden, kSeed, shard));
    }
    return total;
}

TEST(ShardBatch, MatchesScalarForEverySchemeAndPattern)
{
    // Every registry scheme, every Table 1 pattern, both kernels.
    // Sampled budget is kept modest (the enumerable patterns dominate
    // the runtime anyway); equality must be exact, not statistical.
    const std::uint64_t samples = 4096;
    for (const std::string& id : schemeIds()) {
        const auto scheme = makeScheme(id);
        const GoldenEntry golden = makeGolden(*scheme, kSeed);
        for (ErrorPattern p : allErrorPatterns()) {
            const OutcomeCounts scalar = runShards(
                *scheme, golden, p, samples, kShardSamples, false);
            const OutcomeCounts batched = runShards(
                *scheme, golden, p, samples, kShardSamples, true);
            EXPECT_TRUE(sameCounts(scalar, batched))
                << "scheme=" << id
                << " pattern=" << patternInfo(p).label;
        }
    }
}

TEST(ShardBatch, InvariantToChunkSize)
{
    // Draws are keyed per stream block, so any block-aligned chunk
    // must merge to the same tallies — including chunks that are not
    // multiples of the batch size and a chunk that leaves a partial
    // final block (samples not a block multiple).
    const std::uint64_t samples = 10000;
    // One binary scheme and both RS organizations: the RS decodeBatch
    // tiles internally at 256 entries, so the non-multiple chunks
    // also exercise partial SoA tiles.
    for (const char* id : {"duet", "i-ssc", "ssc-dsd+"}) {
        const auto scheme = makeScheme(id);
        const GoldenEntry golden = makeGolden(*scheme, kSeed);
        for (ErrorPattern p :
             {ErrorPattern::oneBeat, ErrorPattern::wholeEntry}) {
            const OutcomeCounts oracle = runShards(
                *scheme, golden, p, samples, kShardSamples, false);
            for (std::uint64_t chunk : {1024ull, 3000ull, 4096ull,
                                        65536ull}) {
                const OutcomeCounts batched =
                    runShards(*scheme, golden, p, samples, chunk, true);
                EXPECT_TRUE(sameCounts(oracle, batched))
                    << "scheme=" << id
                    << " pattern=" << patternInfo(p).label
                    << " chunk=" << chunk;
            }
        }
    }
}

TEST(ShardBatch, MatchesScalarUnderBothBackends)
{
    const std::uint64_t samples = 4096;
    // The compiled binary codec plus every RS organization: the
    // campaign-equivalence matrix the SIMD RS path must hold.
    for (const char* id :
         {"trio", "i-ssc", "i-ssc-csc", "ssc-dsd+", "dsc", "ssc-tsd"}) {
        const auto scheme = makeScheme(id);
        const GoldenEntry golden = makeGolden(*scheme, kSeed);
        for (CodecBackend backend :
             {CodecBackend::compiled, CodecBackend::reference}) {
            setCodecBackend(backend);
            for (ErrorPattern p :
                 {ErrorPattern::oneBit, ErrorPattern::wholeEntry}) {
                const OutcomeCounts scalar = runShards(
                    *scheme, golden, p, samples, kShardSamples, false);
                const OutcomeCounts batched = runShards(
                    *scheme, golden, p, samples, kShardSamples, true);
                EXPECT_TRUE(sameCounts(scalar, batched))
                    << "scheme=" << id << " backend="
                    << (backend == CodecBackend::compiled ? "compiled"
                                                          : "reference")
                    << " pattern=" << patternInfo(p).label;
            }
        }
        setCodecBackend(CodecBackend::compiled);
    }
}

TEST(ShardBatch, DecodeBatchMatchesElementwiseDecode)
{
    // The batch decode entry point itself, on a mixed batch: clean
    // entries, correctable single bits, and multi-bit patterns that
    // exercise the DUE and CSC paths.
    for (const std::string& id : schemeIds()) {
        const auto scheme = makeScheme(id);
        const GoldenEntry golden = makeGolden(*scheme, kSeed);
        Rng rng(kSeed);
        std::vector<Bits288> received;
        for (int i = 0; i < 300; ++i) {
            Bits288 entry = golden.entry;
            const int flips = static_cast<int>(rng.nextBounded(4));
            for (int f = 0; f < flips; ++f)
                entry.flip(static_cast<int>(rng.nextBounded(288)));
            received.push_back(entry);
        }
        std::vector<EntryDecode> batch(received.size());
        scheme->decodeBatch(received.data(), batch.data(),
                            received.size());
        for (std::size_t i = 0; i < received.size(); ++i) {
            const EntryDecode one = scheme->decode(received[i]);
            EXPECT_EQ(static_cast<int>(batch[i].status),
                      static_cast<int>(one.status))
                << "scheme=" << id << " entry=" << i;
            if (one.status != EntryDecode::Status::due) {
                EXPECT_EQ(batch[i].data, one.data)
                    << "scheme=" << id << " entry=" << i;
            }
        }
    }
}

TEST(ShardBatch, EvaluatorThreadCountInvariance)
{
    // The full engine path (Evaluator -> batched kernel -> per-worker
    // arenas -> merge) at several thread counts, including
    // oversubscription beyond the host's core count.
    for (const char* id : {"duet", "ssc-dsd+", "i-ssc"}) {
        const auto rs_scheme = makeScheme(id);
        Evaluator rs_one(*rs_scheme, kSeed, 1);
        const OutcomeCounts rs_oracle =
            rs_one.evaluate(ErrorPattern::wholeEntry, 20000);
        for (int threads : {2, 3, 8}) {
            Evaluator many(*rs_scheme, kSeed, threads);
            const OutcomeCounts counts =
                many.evaluate(ErrorPattern::wholeEntry, 20000);
            EXPECT_TRUE(sameCounts(rs_oracle, counts))
                << "scheme=" << id << " threads=" << threads;
        }
    }
    const auto scheme = makeScheme("duet");
    Evaluator one(*scheme, kSeed, 1);
    // Enumerable pattern: the exhaustive flag must survive the
    // per-worker accumulator merge even when a worker stays idle.
    const OutcomeCounts exhaustive_one =
        one.evaluate(ErrorPattern::oneBit, 0);
    Evaluator wide(*scheme, kSeed, 16);
    const OutcomeCounts exhaustive_many =
        wide.evaluate(ErrorPattern::oneBit, 0);
    EXPECT_TRUE(exhaustive_one.exhaustive);
    EXPECT_TRUE(sameCounts(exhaustive_one, exhaustive_many));
}

TEST(ShardBatch, EffectiveChunkFeedsEveryWorker)
{
    // samples >= workers * block: at least `workers` shards.
    for (int workers : {1, 2, 4, 7, 16}) {
        const std::vector<std::uint64_t> budgets = {
            static_cast<std::uint64_t>(workers) * kStreamBlockSamples,
            200000, 1 << 20};
        for (std::uint64_t samples : budgets) {
            const std::uint64_t chunk = effectiveShardChunk(
                samples, kShardSamples, workers);
            EXPECT_EQ(chunk % kStreamBlockSamples, 0u)
                << "workers=" << workers << " samples=" << samples;
            const auto shards = planShards(ErrorPattern::wholeEntry,
                                           samples, chunk);
            EXPECT_GE(shards.size(),
                      static_cast<std::size_t>(workers))
                << "workers=" << workers << " samples=" << samples;
        }
    }
    // Below one block per worker there is nothing useful to split;
    // the requested chunk stands.
    EXPECT_EQ(effectiveShardChunk(512, kShardSamples, 4),
              kShardSamples);
    // The clamp never grows the chunk.
    EXPECT_EQ(effectiveShardChunk(1u << 20, 1024, 4), 1024u);
}

TEST(ShardBatch, ArenaTypesAreCacheLineAligned)
{
    static_assert(alignof(CacheAligned<OutcomeCounts>) ==
                      kCacheLineBytes,
                  "per-worker tally slots must be line-aligned");
    static_assert(sizeof(CacheAligned<OutcomeCounts>) %
                          kCacheLineBytes ==
                      0,
                  "per-worker tally slots must pad to whole lines");
    static_assert(alignof(ShardBatchArena) >= kCacheLineBytes,
                  "batch arena must start on a cache line");
    // Runtime check that WorkerArena actually hands out slots on
    // distinct cache lines.
    ThreadPool pool(4);
    WorkerArena<OutcomeCounts> tallies(pool);
    for (int w = 1; w < tallies.size(); ++w) {
        const auto prev = reinterpret_cast<std::uintptr_t>(
            &tallies.at(w - 1));
        const auto cur =
            reinterpret_cast<std::uintptr_t>(&tallies.at(w));
        EXPECT_EQ(prev % kCacheLineBytes, 0u);
        EXPECT_GE(cur - prev, kCacheLineBytes);
    }
}

TEST(ShardBatch, CampaignMatchesLegacyScalarMerge)
{
    // End-to-end: the campaign runner (batched kernel, worker
    // arenas, effective-chunk planning) against a by-hand scalar
    // merge of the same plan.
    sim::CampaignSpec spec;
    spec.scheme_ids = {"duet", "ni-secded"};
    spec.patterns = {ErrorPattern::oneBit, ErrorPattern::wholeEntry};
    spec.samples = 30000;
    spec.seed = kSeed;
    spec.threads = 4;
    const sim::CampaignResult result =
        sim::CampaignRunner(spec).run();
    for (const std::string& id : spec.scheme_ids) {
        const auto scheme = makeScheme(id);
        const GoldenEntry golden = makeGolden(*scheme, kSeed);
        for (ErrorPattern p : spec.patterns) {
            const OutcomeCounts oracle =
                runShards(*scheme, golden, p, spec.samples,
                          spec.chunk, false);
            EXPECT_TRUE(sameCounts(oracle, result.counts(id, p)))
                << "scheme=" << id
                << " pattern=" << patternInfo(p).label;
        }
    }
}

} // namespace
} // namespace gpuecc
