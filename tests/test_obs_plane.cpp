/**
 * @file
 * Tests for the fleet observability plane: Prometheus text
 * exposition, the fsync'd NDJSON event journal (writer and reader),
 * the live HTTP endpoint's hardening against hostile bytes, and the
 * end-to-end invariants — a campaign observed via --obs-listen and
 * --journal must produce tallies and CSV bit-identical to a blind
 * run, host-labelled metrics that sum to the fleet totals, and a
 * journal that replays to the same settlement counts the dispatcher
 * reported.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/subprocess.hpp"
#include "fleet/dispatch.hpp"
#include "fleet/journal.hpp"
#include "fleet/protocol.hpp"
#include "net/agent.hpp"
#include "net/obs_http.hpp"
#include "net/service.hpp"
#include "net/socket.hpp"
#include "obs/exposition.hpp"
#include "obs/journal.hpp"
#include "sim/campaign.hpp"
#include "sim/chaos.hpp"
#include "sim/report.hpp"

namespace gpuecc {
namespace {

std::string
tempPath(const std::string& name)
{
    return ::testing::TempDir() + name;
}

bool
netTestsSupported()
{
    return net::socketsSupported() && subprocessSupported();
}

// ---- Prometheus exposition ---------------------------------------------

TEST(Exposition, NamesArePrefixedAndSanitized)
{
    EXPECT_EQ(obs::prometheusName("fleet.units_settled"),
              "gpuecc_fleet_units_settled");
    EXPECT_EQ(obs::prometheusName("a-b c.d"), "gpuecc_a_b_c_d");
}

TEST(Exposition, LabelValuesAreEscaped)
{
    EXPECT_EQ(obs::prometheusLabelValue("plain"), "plain");
    EXPECT_EQ(obs::prometheusLabelValue("a\"b\\c\nd"),
              "a\\\"b\\\\c\\nd");
}

TEST(Exposition, HostSeriesGroupIntoLabelledFamilies)
{
    const std::string text = obs::renderPrometheusText({
        {"fleet.units_total", 8},
        {"fleet.host.alpha.units", 5},
        {"fleet.host.beta.units", 3},
        {"fleet.host.alpha.trials", 1000},
    });
    // Plain counter with TYPE header.
    EXPECT_NE(text.find("# TYPE gpuecc_fleet_units_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("gpuecc_fleet_units_total 8"),
              std::string::npos);
    // Host series become one family per suffix with a host label.
    EXPECT_NE(text.find("# TYPE gpuecc_fleet_host_units counter"),
              std::string::npos);
    EXPECT_NE(
        text.find("gpuecc_fleet_host_units{host=\"alpha\"} 5"),
        std::string::npos);
    EXPECT_NE(text.find("gpuecc_fleet_host_units{host=\"beta\"} 3"),
              std::string::npos);
    EXPECT_NE(
        text.find("gpuecc_fleet_host_trials{host=\"alpha\"} 1000"),
        std::string::npos);
    // One TYPE header per family, not per sample.
    const std::string family = "# TYPE gpuecc_fleet_host_units";
    EXPECT_EQ(text.find(family), text.rfind(family));
}

// ---- Event journal: writer -> reader round trip ------------------------

TEST(Journal, WriterReaderRoundTrip)
{
    const std::string path = tempPath("obs_journal_roundtrip.ndjson");
    {
        auto journal = obs::EventJournal::open(path);
        ASSERT_TRUE(journal.ok()) << journal.status().toString();
        obs::EventJournal& j = *journal.value();
        j.append("start", {}, {{"units", 4}, {"pending", 4}});
        j.append("connect", {{"host", "alpha"}}, {{"remote", 1}});
        j.append("dispatch", {{"host", "alpha"}}, {{"unit", 0}});
        j.append("result", {{"host", "alpha"}},
                 {{"unit", 0}, {"shards", 4}, {"trials", 100}});
        j.append("drain", {}, {{"settled", 4}, {"interrupted", 0}});
        EXPECT_EQ(j.eventsWritten(), 5u);
    }

    auto text = sim::loadTextFile(path);
    ASSERT_TRUE(text.ok()) << text.status().toString();
    auto events = sim::fleet::parseJournal(text.value());
    ASSERT_TRUE(events.ok()) << events.status().toString();
    ASSERT_EQ(events.value().size(), 5u);
    const auto& e = events.value();
    EXPECT_EQ(e[0].seq, 1u);
    EXPECT_EQ(e[0].event, "start");
    EXPECT_EQ(e[0].num("units"), 4u);
    EXPECT_EQ(e[1].str("host"), "alpha");
    EXPECT_EQ(e[1].num("remote"), 1u);
    EXPECT_EQ(e[3].num("trials"), 100u);
    EXPECT_EQ(e[4].seq, 5u);
    // Timestamps are relative to journal open and monotonic.
    for (std::size_t i = 1; i < e.size(); ++i)
        EXPECT_GE(e[i].ts_us, e[i - 1].ts_us);
    std::remove(path.c_str());
}

TEST(Journal, OpenFailureIsStructuredNotFatal)
{
    auto journal =
        obs::EventJournal::open("/nonexistent-dir/journal.ndjson");
    EXPECT_FALSE(journal.ok());
}

TEST(JournalReader, RejectsVersionSkew)
{
    const auto parsed = sim::fleet::parseJournal(
        "{\"v\":2,\"seq\":1,\"ts_us\":0,\"event\":\"start\"}\n");
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), ErrorCode::failedPrecondition);
}

TEST(JournalReader, RejectsSequenceGap)
{
    const auto parsed = sim::fleet::parseJournal(
        "{\"v\":1,\"seq\":1,\"ts_us\":0,\"event\":\"start\"}\n"
        "{\"v\":1,\"seq\":3,\"ts_us\":5,\"event\":\"drain\"}\n");
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), ErrorCode::dataLoss);
}

TEST(JournalReader, RejectsMalformedLines)
{
    EXPECT_FALSE(sim::fleet::parseJournal("[1,2,3]\n").ok());
    EXPECT_FALSE(sim::fleet::parseJournal("not json\n").ok());
    // Missing "event".
    EXPECT_FALSE(
        sim::fleet::parseJournal("{\"v\":1,\"seq\":1,\"ts_us\":0}\n")
            .ok());
}

TEST(JournalReader, SummarizesDispositionsAndLatency)
{
    const std::string text =
        "{\"v\":1,\"seq\":1,\"ts_us\":0,\"event\":\"start\","
        "\"units\":3,\"pending\":3,\"resumed\":0}\n"
        "{\"v\":1,\"seq\":2,\"ts_us\":10,\"event\":\"connect\","
        "\"host\":\"alpha\",\"remote\":1}\n"
        "{\"v\":1,\"seq\":3,\"ts_us\":20,\"event\":\"dispatch\","
        "\"host\":\"alpha\",\"unit\":0}\n"
        "{\"v\":1,\"seq\":4,\"ts_us\":1520,\"event\":\"result\","
        "\"host\":\"alpha\",\"unit\":0,\"shards\":4,\"trials\":100}\n"
        "{\"v\":1,\"seq\":5,\"ts_us\":1600,\"event\":\"duplicate\","
        "\"unit\":0}\n"
        "{\"v\":1,\"seq\":6,\"ts_us\":1700,\"event\":\"requeue\","
        "\"unit\":1,\"attempts\":2}\n"
        "{\"v\":1,\"seq\":7,\"ts_us\":1800,\"event\":\"poison\","
        "\"unit\":1,\"attempts\":3}\n"
        "{\"v\":1,\"seq\":8,\"ts_us\":1900,\"event\":\"skip\","
        "\"unit\":2}\n"
        "{\"v\":1,\"seq\":9,\"ts_us\":2000,\"event\":\"drain\","
        "\"settled\":3,\"interrupted\":0}\n";
    auto events = sim::fleet::parseJournal(text);
    ASSERT_TRUE(events.ok()) << events.status().toString();
    const sim::fleet::JournalSummary summary =
        sim::fleet::summarizeJournal(events.value());

    EXPECT_EQ(summary.events, 9u);
    EXPECT_EQ(summary.units_total, 3u);
    EXPECT_EQ(summary.results, 1u);
    EXPECT_EQ(summary.poisoned, 1u);
    EXPECT_EQ(summary.skipped, 1u);
    EXPECT_EQ(summary.unitsSettled(), 3u);
    EXPECT_EQ(summary.duplicates, 1u);
    EXPECT_EQ(summary.requeues, 1u);
    EXPECT_EQ(summary.connects, 1u);
    EXPECT_TRUE(summary.drained);
    EXPECT_FALSE(summary.interrupted);

    ASSERT_EQ(summary.hosts.size(), 1u);
    EXPECT_EQ(summary.hosts[0].host, "alpha");
    EXPECT_EQ(summary.hosts[0].dispatches, 1u);
    EXPECT_EQ(summary.hosts[0].results, 1u);
    EXPECT_EQ(summary.hosts[0].latency_count, 1u);
    EXPECT_EQ(summary.hosts[0].latency_max_us, 1500u);
    // 1500 µs lands in the <= 10 ms bucket (bounds 1ms, 10ms, ...).
    ASSERT_GE(summary.latency_buckets.size(), 2u);
    EXPECT_EQ(summary.latency_buckets[1], 1u);

    const std::string timeline =
        sim::fleet::formatJournalTimeline(events.value());
    EXPECT_NE(timeline.find("#1 start"), std::string::npos);
    EXPECT_NE(timeline.find("host=alpha"), std::string::npos);
    const std::string report =
        sim::fleet::formatJournalSummary(summary);
    EXPECT_NE(report.find("3 total"), std::string::npos);
    EXPECT_NE(report.find("alpha"), std::string::npos);
    EXPECT_NE(report.find("drain: clean"), std::string::npos);
}

// ---- Fleet campaigns under observation ---------------------------------

sim::CampaignSpec
smallSpec()
{
    sim::CampaignSpec spec;
    spec.scheme_ids = {"ni-secded", "duet"};
    spec.patterns = {ErrorPattern::oneBit, ErrorPattern::oneBeat};
    spec.samples = 20000;
    spec.seed = 0xF1EE7;
    spec.threads = 1;
    return spec;
}

void
expectCellsIdentical(const sim::CampaignResult& a,
                     const sim::CampaignResult& b)
{
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        EXPECT_EQ(a.cells[i].scheme_id, b.cells[i].scheme_id);
        EXPECT_EQ(a.cells[i].pattern, b.cells[i].pattern);
        const OutcomeCounts& x = a.cells[i].counts;
        const OutcomeCounts& y = b.cells[i].counts;
        EXPECT_EQ(x.trials, y.trials) << "cell " << i;
        EXPECT_EQ(x.dce, y.dce) << "cell " << i;
        EXPECT_EQ(x.due, y.due) << "cell " << i;
        EXPECT_EQ(x.sdc, y.sdc) << "cell " << i;
    }
}

/** Sum of the fleet.host.<label>.units counters in a snapshot. */
std::uint64_t
hostUnitsTotal(const obs::MetricsSnapshot& metrics)
{
    std::uint64_t total = 0;
    for (const obs::CounterValue& c : metrics.counters) {
        if (c.name.rfind("fleet.host.", 0) == 0 &&
            c.name.size() > 6 &&
            c.name.compare(c.name.size() - 6, 6, ".units") == 0)
            total += c.value;
    }
    return total;
}

TEST(ObsPlane, PipeFleetJournalReplaysToDispatcherCounts)
{
    if (!subprocessSupported())
        GTEST_SKIP() << "fork/pipe unavailable";
    const sim::CampaignResult reference =
        sim::CampaignRunner(smallSpec()).run();

    sim::CampaignSpec spec = smallSpec();
    spec.fleet_workers = 2;
    const std::string journal_path =
        tempPath("obs_pipe_journal.ndjson");
    spec.journal_path = journal_path;
    const sim::CampaignResult fleet =
        sim::CampaignRunner(spec).run();

    EXPECT_TRUE(fleet.errors.empty());
    expectCellsIdentical(reference, fleet);
    // The journal must never leak into the deterministic artifacts.
    EXPECT_EQ(sim::campaignCsv(reference), sim::campaignCsv(fleet));

    // Host-labelled metrics: per-host unit counters sum to the total.
    EXPECT_GT(fleet.fleet.units, 0u);
    EXPECT_EQ(hostUnitsTotal(fleet.metrics), fleet.fleet.units);

    // The journal replays to the dispatcher's own settlement counts.
    auto text = sim::loadTextFile(journal_path);
    ASSERT_TRUE(text.ok()) << text.status().toString();
    auto events = sim::fleet::parseJournal(text.value());
    ASSERT_TRUE(events.ok()) << events.status().toString();
    const sim::fleet::JournalSummary summary =
        sim::fleet::summarizeJournal(events.value());
    EXPECT_EQ(summary.units_total, fleet.fleet.units);
    EXPECT_EQ(summary.unitsSettled(), fleet.fleet.units);
    EXPECT_TRUE(summary.drained);
    EXPECT_FALSE(summary.interrupted);
    // Both pipe workers appear as hosts with dispatch latencies.
    std::uint64_t host_results = 0;
    for (const sim::fleet::JournalHostSummary& h : summary.hosts) {
        EXPECT_EQ(h.host.rfind("local-", 0), 0u) << h.host;
        host_results += h.results;
    }
    EXPECT_EQ(host_results, summary.results);
    std::remove(journal_path.c_str());
}

TEST(ObsPlane, DuplicateResultsDoNotDoubleCountHostMetrics)
{
    // Drive the dispatcher directly: absorb one telemetry line, then
    // deliver the same result twice. The host's credit and shipped
    // counters must ride the settled-exactly-once gate — the replay
    // is discarded and counted, never double-merged.
    sim::CampaignSpec spec = smallSpec();
    spec.fleet_workers = 1;
    const std::string journal_path =
        tempPath("obs_dup_journal.ndjson");
    spec.journal_path = journal_path;
    auto created = sim::fleet::FleetDispatch::create(spec);
    ASSERT_TRUE(created.ok()) << created.status().toString();
    sim::fleet::FleetDispatch& dispatch = *created.value();
    dispatch.start();
    dispatch.registerHost(0, "alpha", true);

    std::uint64_t u = 0;
    ASSERT_TRUE(dispatch.tryClaim(u));
    dispatch.noteUnitDispatched(u, 0);

    sim::fleet::WorkerMessage telemetry;
    telemetry.kind = sim::fleet::WorkerMessage::Kind::telemetry;
    telemetry.worker = 0;
    telemetry.unit = u;
    telemetry.now_us = 500;
    telemetry.counters = {{"campaign.trials", 100}};
    dispatch.absorbTelemetry(telemetry);

    sim::fleet::WorkerMessage result;
    result.kind = sim::fleet::WorkerMessage::Kind::result;
    result.worker = 0;
    result.unit = u;
    result.busy_us = 1000;
    const auto now = sim::fleet::FleetDispatch::Clock::now();
    EXPECT_TRUE(dispatch.completeUnit(u, result, now, now));
    // The replayed delivery must be discarded and counted.
    EXPECT_FALSE(dispatch.completeUnit(u, result, now, now));

    const sim::fleet::DispatchStatus status = dispatch.status();
    EXPECT_EQ(status.duplicates, 1u);
    ASSERT_EQ(status.hosts.size(), 1u);
    EXPECT_EQ(status.hosts[0].units, 1u); // credited exactly once

    dispatch.finishInProcess();
    const sim::CampaignResult r = dispatch.finalize(1, {});
    EXPECT_EQ(r.fleet.duplicate_results, 1u);
    // The shipped counter delta surfaces once under the host label.
    std::uint64_t alpha_trials_metric = 0;
    std::uint64_t alpha_units = 0;
    for (const obs::CounterValue& c : r.metrics.counters) {
        if (c.name == "fleet.host.alpha.campaign.trials")
            alpha_trials_metric = c.value;
        if (c.name == "fleet.host.alpha.units")
            alpha_units = c.value;
    }
    EXPECT_EQ(alpha_trials_metric, 100u);
    EXPECT_EQ(alpha_units, 1u);

    // The journal saw the duplicate and still replays to the
    // dispatcher's settlement counts.
    auto text = sim::loadTextFile(journal_path);
    ASSERT_TRUE(text.ok()) << text.status().toString();
    auto events = sim::fleet::parseJournal(text.value());
    ASSERT_TRUE(events.ok()) << events.status().toString();
    const sim::fleet::JournalSummary summary =
        sim::fleet::summarizeJournal(events.value());
    EXPECT_EQ(summary.duplicates, 1u);
    EXPECT_GE(summary.unitsSettled(), 1u);
    std::remove(journal_path.c_str());
}

#if defined(__unix__) || defined(__APPLE__)

/** One blocking HTTP GET; returns the raw response (or ""). */
std::string
httpGet(int port, const std::string& request)
{
    auto fd = net::connectTcp({"127.0.0.1", port});
    if (!fd.ok())
        return "";
    int sock = fd.value();
    if (!writeAllFd(sock, request, 2000).ok()) {
        closeFd(sock);
        return "";
    }
    std::string response;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::read(sock, buf, sizeof buf);
        if (n <= 0)
            break;
        response.append(buf, static_cast<std::size_t>(n));
    }
    closeFd(sock);
    return response;
}

std::string
httpGetPath(int port, const std::string& path)
{
    return httpGet(port, "GET " + path +
                             " HTTP/1.1\r\nHost: test\r\n"
                             "Connection: close\r\n\r\n");
}

/**
 * Fork a fleet agent aimed at the local service (same discipline as
 * test_net: before run(), while the process is single-threaded).
 */
ChildProcess
forkAgent(int port, const std::string& secret,
          const std::string& name, std::vector<int>& inherited)
{
    net::FleetAgentOptions options;
    options.port = port;
    options.secret = secret;
    options.name = name;
    options.heartbeat_interval_s = 0.2;
    options.io_timeout_s = 20.0;
    options.backoff_initial_s = 0.1;
    options.backoff_max_s = 0.5;
    options.max_reconnects = 50;
    auto spawned = spawnChild(
        [options](int, int) { return net::runFleetAgent(options); },
        inherited);
    EXPECT_TRUE(spawned.ok()) << spawned.status().toString();
    if (!spawned.ok())
        return {};
    inherited.push_back(spawned.value().to_child);
    inherited.push_back(spawned.value().from_child);
    return spawned.value();
}

TEST(ObsPlane, ServiceCampaignServesLiveEndpointsAndStaysIdentical)
{
    if (!netTestsSupported())
        GTEST_SKIP() << "sockets/fork unavailable";
    const sim::CampaignResult reference =
        sim::CampaignRunner(smallSpec()).run();

    sim::CampaignSpec spec = smallSpec();
    spec.fleet_listen = "127.0.0.1:0";
    spec.fleet_secret = "test-secret";
    spec.fleet_grace_s = 60.0;
    spec.obs_listen = "127.0.0.1:0";
    const std::string journal_path =
        tempPath("obs_service_journal.ndjson");
    spec.journal_path = journal_path;

    auto service = net::FleetService::create(spec);
    ASSERT_TRUE(service.ok()) << service.status().toString();
    const int obs_port = service.value()->obsPort();
    ASSERT_GT(obs_port, 0);

    std::vector<int> inherited;
    ChildProcess alpha = forkAgent(service.value()->port(),
                                   spec.fleet_secret, "alpha",
                                   inherited);
    ChildProcess beta = forkAgent(service.value()->port(),
                                  spec.fleet_secret, "beta",
                                  inherited);

    // Scrape both endpoints (and poke the error paths) from a second
    // thread for the whole campaign: the run must neither block nor
    // change results under observation.
    std::atomic<bool> done{false};
    std::string last_metrics;
    std::string last_status;
    std::thread scraper([&] {
        while (!done.load()) {
            const std::string metrics =
                httpGetPath(obs_port, "/metrics");
            if (metrics.find("200 OK") != std::string::npos)
                last_metrics = metrics;
            const std::string status =
                httpGetPath(obs_port, "/status");
            if (status.find("200 OK") != std::string::npos)
                last_status = status;
            httpGetPath(obs_port, "/nope");
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
    });

    const auto result = service.value()->run();
    done.store(true);
    scraper.join();
    ASSERT_TRUE(result.ok()) << result.status().toString();
    waitForExit(alpha.pid);
    waitForExit(beta.pid);
    const sim::CampaignResult& r = result.value();

    EXPECT_TRUE(r.errors.empty());
    expectCellsIdentical(reference, r);
    EXPECT_EQ(sim::campaignCsv(reference), sim::campaignCsv(r));

    // One more scrape after the drain still answers (the endpoint
    // stops only at finalize); check the final document's shape.
    EXPECT_NE(last_metrics.find("gpuecc_fleet_units_total"),
              std::string::npos);
    EXPECT_NE(last_status.find("\"units\""), std::string::npos);
    EXPECT_NE(last_status.find("\"hosts\""), std::string::npos);

    // Host-labelled metrics from remote agents sum to the total.
    EXPECT_EQ(hostUnitsTotal(r.metrics), r.fleet.units);

    // The journal replays to the dispatcher's settlement counts with
    // both agents present as hosts.
    auto text = sim::loadTextFile(journal_path);
    ASSERT_TRUE(text.ok()) << text.status().toString();
    auto events = sim::fleet::parseJournal(text.value());
    ASSERT_TRUE(events.ok()) << events.status().toString();
    const sim::fleet::JournalSummary summary =
        sim::fleet::summarizeJournal(events.value());
    EXPECT_EQ(summary.unitsSettled(), r.fleet.units);
    EXPECT_GE(summary.connects, 2u);
    EXPECT_TRUE(summary.drained);
    bool saw_alpha = false;
    bool saw_beta = false;
    for (const sim::fleet::JournalHostSummary& h : summary.hosts) {
        saw_alpha = saw_alpha || h.host == "alpha";
        saw_beta = saw_beta || h.host == "beta";
    }
    EXPECT_TRUE(saw_alpha);
    EXPECT_TRUE(saw_beta);
    std::remove(journal_path.c_str());
}

TEST(ObsHttp, EndpointSurvivesHostileBytes)
{
    if (!netTestsSupported())
        GTEST_SKIP() << "sockets unavailable";
    auto server_result =
        net::ObsHttpServer::create({"127.0.0.1", 0});
    ASSERT_TRUE(server_result.ok())
        << server_result.status().toString();
    net::ObsHttpServer& server = *server_result.value();
    server.serve([](const std::string& path) {
        net::ObsResponse out;
        if (path == "/ok") {
            out.found = true;
            out.body = "fine\n";
        }
        return out;
    });
    const int port = server.port();

    // Garbage, truncation, oversize, early hangup, wrong method —
    // none may wedge the server or crash; a clean GET still works
    // after each one.
    const std::string attacks[] = {
        std::string("\x01\x02\x7f garbage\r\n\r\n"),
        "GE", // truncated, then EOF
        "GET /" + std::string(20000, 'a') + " HTTP/1.1\r\n\r\n",
        "", // connect then immediate hangup
        "POST /ok HTTP/1.1\r\n\r\n",
        "GET\r\n\r\n",
    };
    for (const std::string& attack : attacks) {
        httpGet(port, attack); // must return (close or 400), not hang
        const std::string ok = httpGetPath(port, "/ok");
        EXPECT_NE(ok.find("200 OK"), std::string::npos)
            << "endpoint wedged after attack";
        EXPECT_NE(ok.find("fine"), std::string::npos);
    }
    const std::string missing = httpGetPath(port, "/missing");
    EXPECT_NE(missing.find("404"), std::string::npos);
    server.stop();
}

#endif // __unix__ || __APPLE__

} // namespace
} // namespace gpuecc
