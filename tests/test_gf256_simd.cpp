/**
 * @file
 * Exhaustive equivalence proofs for the vectorized GF(2^8) kernels.
 *
 * Every ISA variant the host supports (scalar always; SSSE3/AVX2 on
 * x86 when the CPU has them; NEON on aarch64) is driven over the full
 * 256 x 256 operand square for multiply and divide, the full 256-entry
 * domain for inversion and arbitrary LUTs, every awkward tail length
 * around the 16/32-byte vector widths, and misaligned buffers — all
 * diffed byte-for-byte against the scalar log/exp tables that the rest
 * of the repo treats as ground truth. Field-algebra property tests
 * (associativity, distributivity, x * x^-1 = 1) guard the tables
 * themselves.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "gf256/gf256.hpp"
#include "gf256/gf256_vec.hpp"

namespace gpuecc {
namespace gf256 {
namespace {

/** The tail lengths that stress every vector-width boundary. */
const std::vector<std::size_t> kLengths = {
    0, 1, 5, 15, 16, 17, 31, 32, 33, 63, 64, 100, 255, 256, 257};

std::vector<std::uint8_t>
randomBuf(Rng& rng, std::size_t n)
{
    std::vector<std::uint8_t> buf(n);
    for (std::size_t i = 0; i < n; ++i)
        buf[i] = static_cast<std::uint8_t>(rng.nextBounded(256));
    return buf;
}

class Gf256Simd : public ::testing::TestWithParam<VecIsa>
{
};

TEST_P(Gf256Simd, ExhaustiveMultiplySquare)
{
    const VecIsa isa = GetParam();
    // One buffer holding every operand value; every constant c.
    std::uint8_t src[256];
    for (int x = 0; x < 256; ++x)
        src[x] = static_cast<std::uint8_t>(x);
    for (int c = 0; c < 256; ++c) {
        const MulTables t = mulTables(static_cast<std::uint8_t>(c));
        std::uint8_t dst[256];
        mulConstBuf(isa, t, src, dst, 256);
        for (int x = 0; x < 256; ++x) {
            ASSERT_EQ(dst[x], mul(static_cast<std::uint8_t>(c),
                                  static_cast<std::uint8_t>(x)))
                << "isa=" << isaName(isa) << " c=" << c << " x=" << x;
        }
    }
}

TEST_P(Gf256Simd, ExhaustiveMultiplyAccumulateSquare)
{
    const VecIsa isa = GetParam();
    std::uint8_t src[256];
    for (int x = 0; x < 256; ++x)
        src[x] = static_cast<std::uint8_t>(x);
    for (int c = 0; c < 256; ++c) {
        const MulTables t = mulTables(static_cast<std::uint8_t>(c));
        std::uint8_t acc[256];
        for (int x = 0; x < 256; ++x)
            acc[x] = static_cast<std::uint8_t>(x * 7 + c); // arbitrary
        mulConstXorAccBuf(isa, t, src, acc, 256);
        for (int x = 0; x < 256; ++x) {
            const std::uint8_t expect = static_cast<std::uint8_t>(
                static_cast<std::uint8_t>(x * 7 + c)
                ^ mul(static_cast<std::uint8_t>(c),
                      static_cast<std::uint8_t>(x)));
            ASSERT_EQ(acc[x], expect)
                << "isa=" << isaName(isa) << " c=" << c << " x=" << x;
        }
    }
}

TEST_P(Gf256Simd, ExhaustiveDivideSquare)
{
    const VecIsa isa = GetParam();
    std::uint8_t src[256];
    for (int x = 0; x < 256; ++x)
        src[x] = static_cast<std::uint8_t>(x);
    for (int c = 1; c < 256; ++c) {
        std::uint8_t dst[256];
        divConstBuf(isa, static_cast<std::uint8_t>(c), src, dst, 256);
        ASSERT_EQ(dst[0], 0) << "0 / c must be 0";
        for (int x = 1; x < 256; ++x) {
            ASSERT_EQ(dst[x], div(static_cast<std::uint8_t>(x),
                                  static_cast<std::uint8_t>(c)))
                << "isa=" << isaName(isa) << " c=" << c << " x=" << x;
        }
    }
}

TEST_P(Gf256Simd, ExhaustiveInverse)
{
    const VecIsa isa = GetParam();
    std::uint8_t src[256];
    for (int x = 0; x < 256; ++x)
        src[x] = static_cast<std::uint8_t>(x);
    std::uint8_t dst[256];
    invBuf(isa, src, dst, 256);
    ASSERT_EQ(dst[0], 0) << "bulk convention: inv(0) = 0";
    for (int x = 1; x < 256; ++x) {
        ASSERT_EQ(dst[x], inv(static_cast<std::uint8_t>(x)))
            << "isa=" << isaName(isa) << " x=" << x;
        ASSERT_EQ(mul(dst[x], static_cast<std::uint8_t>(x)), 1)
            << "x * x^-1 must be 1; x=" << x;
    }
}

TEST_P(Gf256Simd, ArbitraryLut256MatchesTable)
{
    const VecIsa isa = GetParam();
    Rng rng(0x107256ull);
    std::uint8_t table[256];
    for (int i = 0; i < 256; ++i)
        table[i] = static_cast<std::uint8_t>(rng.nextBounded(256));
    std::uint8_t src[256];
    for (int x = 0; x < 256; ++x)
        src[x] = static_cast<std::uint8_t>(x);
    std::uint8_t dst[256];
    lut256Buf(isa, table, src, dst, 256);
    for (int x = 0; x < 256; ++x) {
        ASSERT_EQ(dst[x], table[x])
            << "isa=" << isaName(isa) << " x=" << x;
    }
    // Shuffled inputs too, so lane routing (not just identity
    // indices) is exercised.
    const auto shuffled = randomBuf(rng, 256);
    std::uint8_t got[256], want[256];
    lut256Buf(isa, table, shuffled.data(), got, 256);
    lut256Buf(VecIsa::scalar, table, shuffled.data(), want, 256);
    for (int x = 0; x < 256; ++x)
        ASSERT_EQ(got[x], want[x]) << "isa=" << isaName(isa);
}

TEST_P(Gf256Simd, TailLengthsMatchScalar)
{
    const VecIsa isa = GetParam();
    Rng rng(0x7A11ull);
    const MulTables t = mulTables(0x53);
    for (std::size_t n : kLengths) {
        const auto src = randomBuf(rng, n);
        std::vector<std::uint8_t> got(n, 0xAA);
        std::vector<std::uint8_t> want(n, 0xAA);
        mulConstBuf(isa, t, src.data(), got.data(), n);
        mulConstBuf(VecIsa::scalar, t, src.data(), want.data(), n);
        ASSERT_EQ(got, want) << "isa=" << isaName(isa) << " n=" << n;

        auto acc_got = randomBuf(rng, n);
        auto acc_want = acc_got;
        mulConstXorAccBuf(isa, t, src.data(), acc_got.data(), n);
        mulConstXorAccBuf(VecIsa::scalar, t, src.data(),
                          acc_want.data(), n);
        ASSERT_EQ(acc_got, acc_want)
            << "isa=" << isaName(isa) << " n=" << n;

        std::vector<std::uint8_t> inv_got(n), inv_want(n);
        invBuf(isa, src.data(), inv_got.data(), n);
        invBuf(VecIsa::scalar, src.data(), inv_want.data(), n);
        ASSERT_EQ(inv_got, inv_want)
            << "isa=" << isaName(isa) << " n=" << n;
    }
}

TEST_P(Gf256Simd, MisalignedBuffersMatchScalar)
{
    const VecIsa isa = GetParam();
    Rng rng(0x0DDA11ull);
    const MulTables t = mulTables(0xC7);
    for (int offset = 0; offset < 4; ++offset) {
        std::vector<std::uint8_t> raw_src = randomBuf(rng, 300);
        std::vector<std::uint8_t> raw_got(300, 0);
        std::vector<std::uint8_t> raw_want(300, 0);
        const std::size_t n = 256;
        mulConstBuf(isa, t, raw_src.data() + offset,
                    raw_got.data() + offset, n);
        mulConstBuf(VecIsa::scalar, t, raw_src.data() + offset,
                    raw_want.data() + offset, n);
        ASSERT_EQ(raw_got, raw_want)
            << "isa=" << isaName(isa) << " offset=" << offset;
    }
}

TEST_P(Gf256Simd, InPlaceAliasedOperandsMatchScalar)
{
    const VecIsa isa = GetParam();
    Rng rng(0xA11A5ull);
    const MulTables t = mulTables(0x1D);
    auto buf_got = randomBuf(rng, 257);
    auto buf_want = buf_got;
    mulConstBuf(isa, t, buf_got.data(), buf_got.data(),
                buf_got.size());
    mulConstBuf(VecIsa::scalar, t, buf_want.data(), buf_want.data(),
                buf_want.size());
    ASSERT_EQ(buf_got, buf_want);
}

INSTANTIATE_TEST_SUITE_P(
    HostIsas, Gf256Simd, ::testing::ValuesIn(supportedIsas()),
    [](const auto& info) { return isaName(info.param); });

TEST(Gf256SimdDispatch, ScalarAlwaysSupportedAndListedFirst)
{
    const auto isas = supportedIsas();
    ASSERT_FALSE(isas.empty());
    EXPECT_EQ(isas.front(), VecIsa::scalar);
    EXPECT_TRUE(isaSupported(VecIsa::scalar));
    // Whatever bestIsa() picked must actually run here.
    EXPECT_TRUE(isaSupported(bestIsa()));
}

TEST(Gf256SimdDispatch, MulTabMatchesScalarTablesExhaustively)
{
    for (int c = 0; c < 256; ++c) {
        const MulTables t = mulTables(static_cast<std::uint8_t>(c));
        for (int x = 0; x < 256; ++x) {
            ASSERT_EQ(mulTab(t, static_cast<std::uint8_t>(x)),
                      mul(static_cast<std::uint8_t>(c),
                          static_cast<std::uint8_t>(x)))
                << "c=" << c << " x=" << x;
        }
    }
}

TEST(Gf256Properties, MultiplicationAssociativeAndDistributive)
{
    Rng rng(0xA550Cull);
    for (int trial = 0; trial < 50000; ++trial) {
        const auto a = static_cast<std::uint8_t>(rng.nextBounded(256));
        const auto b = static_cast<std::uint8_t>(rng.nextBounded(256));
        const auto c = static_cast<std::uint8_t>(rng.nextBounded(256));
        ASSERT_EQ(mul(mul(a, b), c), mul(a, mul(b, c)));
        ASSERT_EQ(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
        ASSERT_EQ(mul(a, b), mul(b, a));
    }
}

TEST(Gf256Properties, EveryNonzeroElementHasUniqueInverse)
{
    bool seen[256] = {};
    for (int x = 1; x < 256; ++x) {
        const std::uint8_t ix = inv(static_cast<std::uint8_t>(x));
        ASSERT_EQ(mul(static_cast<std::uint8_t>(x), ix), 1);
        ASSERT_FALSE(seen[ix]) << "inverse map must be a bijection";
        seen[ix] = true;
    }
}

} // namespace
} // namespace gf256
} // namespace gpuecc
