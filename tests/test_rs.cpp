/** @file Tests for Reed-Solomon codes and decoders. */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gf256/gf256.hpp"
#include "rs/decoders.hpp"
#include "rs/rs_code.hpp"

namespace gpuecc {
namespace {

std::vector<std::uint8_t>
randomData(int k, Rng& rng)
{
    std::vector<std::uint8_t> d(k);
    for (auto& v : d)
        v = static_cast<std::uint8_t>(rng.nextBounded(256));
    return d;
}

class RsCodeShapes : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(RsCodeShapes, EncodeYieldsZeroSyndromes)
{
    const auto [n, k] = GetParam();
    const RsCode code(n, k);
    Rng rng(n * 1000 + k);
    for (int trial = 0; trial < 50; ++trial) {
        const auto cw = code.encode(randomData(k, rng));
        EXPECT_TRUE(code.isCodeword(cw));
        for (std::uint8_t s : code.syndromes(cw))
            EXPECT_EQ(s, 0);
    }
}

TEST_P(RsCodeShapes, SystematicDataPlacement)
{
    const auto [n, k] = GetParam();
    const RsCode code(n, k);
    Rng rng(n * 7 + k);
    const auto data = randomData(k, rng);
    const auto cw = code.encode(data);
    for (int i = 0; i < k; ++i)
        EXPECT_EQ(cw[n - k + i], data[i]);
}

TEST_P(RsCodeShapes, SingleSymbolErrorSyndromeStructure)
{
    // S_j = e * alpha^(j*p) for a single error of magnitude e at p.
    const auto [n, k] = GetParam();
    const RsCode code(n, k);
    Rng rng(n * 13 + k);
    const auto cw = code.encode(randomData(k, rng));
    for (int trial = 0; trial < 30; ++trial) {
        const int p = static_cast<int>(rng.nextBounded(n));
        const auto e =
            static_cast<std::uint8_t>(1 + rng.nextBounded(255));
        auto corrupted = cw;
        corrupted[p] = gf256::add(corrupted[p], e);
        const auto s = code.syndromes(corrupted);
        for (int j = 0; j < code.r(); ++j) {
            EXPECT_EQ(s[j], gf256::mul(e, gf256::alphaPow(j * p)));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, RsCodeShapes,
                         ::testing::Values(std::pair{18, 16},
                                           std::pair{36, 32},
                                           std::pair{10, 6}));

TEST(SscOneShot, CorrectsEverySingleSymbolError)
{
    const RsCode code(18, 16);
    Rng rng(1);
    const auto cw = code.encode(randomData(16, rng));
    for (int p = 0; p < 18; ++p) {
        for (int e = 1; e < 256; ++e) {
            auto corrupted = cw;
            corrupted[p] =
                gf256::add(corrupted[p], static_cast<std::uint8_t>(e));
            const RsDecode d = decodeSscOneShot(code, corrupted);
            ASSERT_EQ(d.status, RsDecode::Status::corrected)
                << "p=" << p << " e=" << e;
            EXPECT_EQ(d.word, cw);
            ASSERT_EQ(d.error_positions.size(), 1u);
            EXPECT_EQ(d.error_positions[0], p);
        }
    }
}

TEST(SscOneShot, CleanWordPassesThrough)
{
    const RsCode code(18, 16);
    Rng rng(2);
    const auto cw = code.encode(randomData(16, rng));
    const RsDecode d = decodeSscOneShot(code, cw);
    EXPECT_EQ(d.status, RsDecode::Status::clean);
    EXPECT_EQ(d.word, cw);
}

TEST(SscOneShot, DoubleSymbolErrorsNeverCorrupt)
{
    // d = 3 gives no guaranteed double detection, but a decode that
    // "corrects" a double error must never return the original
    // codeword silently; we check DUE-or-changed-word semantics.
    const RsCode code(18, 16);
    Rng rng(3);
    const auto cw = code.encode(randomData(16, rng));
    int due = 0, miscorrect = 0;
    const int trials = 5000;
    for (int trial = 0; trial < trials; ++trial) {
        auto corrupted = cw;
        const int p1 = static_cast<int>(rng.nextBounded(18));
        int p2 = 0;
        do {
            p2 = static_cast<int>(rng.nextBounded(18));
        } while (p2 == p1);
        corrupted[p1] = gf256::add(
            corrupted[p1],
            static_cast<std::uint8_t>(1 + rng.nextBounded(255)));
        corrupted[p2] = gf256::add(
            corrupted[p2],
            static_cast<std::uint8_t>(1 + rng.nextBounded(255)));
        const RsDecode d = decodeSscOneShot(code, corrupted);
        ASSERT_NE(d.status, RsDecode::Status::clean);
        if (d.status == RsDecode::Status::due)
            ++due;
        else if (d.word != cw)
            ++miscorrect;
    }
    EXPECT_EQ(due + miscorrect, trials);
    EXPECT_GT(due, 0);
}

TEST(SscDsdPlus, CorrectsEverySingleSymbolError)
{
    const RsCode code(36, 32);
    Rng rng(4);
    const auto cw = code.encode(randomData(32, rng));
    for (int p = 0; p < 36; ++p) {
        for (int e = 1; e < 256; e += 7) { // stride to keep it fast
            auto corrupted = cw;
            corrupted[p] =
                gf256::add(corrupted[p], static_cast<std::uint8_t>(e));
            const RsDecode d = decodeSscDsdPlus(code, corrupted);
            ASSERT_EQ(d.status, RsDecode::Status::corrected)
                << "p=" << p << " e=" << e;
            EXPECT_EQ(d.word, cw);
        }
    }
}

TEST(SscDsdPlus, DetectsAllSampledDoubleErrors)
{
    // d = 5 with t = 1 bounded-distance decoding: guaranteed DSD.
    const RsCode code(36, 32);
    Rng rng(5);
    const auto cw = code.encode(randomData(32, rng));
    for (int trial = 0; trial < 20000; ++trial) {
        auto corrupted = cw;
        const int p1 = static_cast<int>(rng.nextBounded(36));
        int p2 = 0;
        do {
            p2 = static_cast<int>(rng.nextBounded(36));
        } while (p2 == p1);
        corrupted[p1] = gf256::add(
            corrupted[p1],
            static_cast<std::uint8_t>(1 + rng.nextBounded(255)));
        corrupted[p2] = gf256::add(
            corrupted[p2],
            static_cast<std::uint8_t>(1 + rng.nextBounded(255)));
        ASSERT_EQ(decodeSscDsdPlus(code, corrupted).status,
                  RsDecode::Status::due);
    }
}

TEST(SscDsdPlus, DetectsAllSampledTripleErrors)
{
    // The "almost TSD" property: at this code length the three-pair
    // agreement decoder detects sampled triple-symbol errors.
    const RsCode code(36, 32);
    Rng rng(6);
    const auto cw = code.encode(randomData(32, rng));
    for (int trial = 0; trial < 20000; ++trial) {
        auto corrupted = cw;
        int p[3];
        p[0] = static_cast<int>(rng.nextBounded(36));
        do {
            p[1] = static_cast<int>(rng.nextBounded(36));
        } while (p[1] == p[0]);
        do {
            p[2] = static_cast<int>(rng.nextBounded(36));
        } while (p[2] == p[0] || p[2] == p[1]);
        for (int i = 0; i < 3; ++i) {
            corrupted[p[i]] = gf256::add(
                corrupted[p[i]],
                static_cast<std::uint8_t>(1 + rng.nextBounded(255)));
        }
        ASSERT_EQ(decodeSscDsdPlus(code, corrupted).status,
                  RsDecode::Status::due);
    }
}

TEST(Dsc, CorrectsEverySampledDoubleError)
{
    const RsCode code(36, 32);
    Rng rng(7);
    const auto cw = code.encode(randomData(32, rng));
    for (int trial = 0; trial < 5000; ++trial) {
        auto corrupted = cw;
        const int p1 = static_cast<int>(rng.nextBounded(36));
        int p2 = 0;
        do {
            p2 = static_cast<int>(rng.nextBounded(36));
        } while (p2 == p1);
        corrupted[p1] = gf256::add(
            corrupted[p1],
            static_cast<std::uint8_t>(1 + rng.nextBounded(255)));
        corrupted[p2] = gf256::add(
            corrupted[p2],
            static_cast<std::uint8_t>(1 + rng.nextBounded(255)));
        const RsDecode d = decodeDsc(code, corrupted);
        ASSERT_EQ(d.status, RsDecode::Status::corrected);
        EXPECT_EQ(d.word, cw);
        EXPECT_EQ(d.error_positions.size(), 2u);
    }
}

TEST(Dsc, CorrectsSingleErrorsToo)
{
    const RsCode code(36, 32);
    Rng rng(8);
    const auto cw = code.encode(randomData(32, rng));
    for (int p = 0; p < 36; ++p) {
        auto corrupted = cw;
        corrupted[p] = gf256::add(corrupted[p], 0x5A);
        const RsDecode d = decodeDsc(code, corrupted);
        ASSERT_EQ(d.status, RsDecode::Status::corrected);
        EXPECT_EQ(d.word, cw);
    }
}

TEST(Dsc, TripleErrorsNeverSilentlyAccepted)
{
    const RsCode code(36, 32);
    Rng rng(9);
    const auto cw = code.encode(randomData(32, rng));
    for (int trial = 0; trial < 3000; ++trial) {
        auto corrupted = cw;
        int p[3];
        p[0] = static_cast<int>(rng.nextBounded(36));
        do {
            p[1] = static_cast<int>(rng.nextBounded(36));
        } while (p[1] == p[0]);
        do {
            p[2] = static_cast<int>(rng.nextBounded(36));
        } while (p[2] == p[0] || p[2] == p[1]);
        for (int i = 0; i < 3; ++i) {
            corrupted[p[i]] = gf256::add(
                corrupted[p[i]],
                static_cast<std::uint8_t>(1 + rng.nextBounded(255)));
        }
        const RsDecode d = decodeDsc(code, corrupted);
        // A d=5 code with t=2 decoding may miscorrect 3 errors, but
        // must never return the original codeword as "corrected" or
        // report clean.
        ASSERT_NE(d.status, RsDecode::Status::clean);
        if (d.status == RsDecode::Status::corrected) {
            EXPECT_NE(d.word, cw);
        }
    }
}

} // namespace
} // namespace gpuecc
