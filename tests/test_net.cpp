/**
 * @file
 * Tests for the multi-host fleet service stack: socket address
 * parsing, HMAC handshake primitives, chaos-aware wire writes, and
 * full loopback campaigns served by forked agent processes — including
 * the failure drills (killed agent, silent agent, wrong secret,
 * garbled wire, graceful drain) that must all converge to tallies
 * bit-identical with an in-process run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/interrupt.hpp"
#include "common/subprocess.hpp"
#include "fleet/protocol.hpp"
#include "net/agent.hpp"
#include "net/auth.hpp"
#include "net/service.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "sim/campaign.hpp"
#include "sim/chaos.hpp"

namespace gpuecc {
namespace {

bool
netTestsSupported()
{
    return net::socketsSupported() && subprocessSupported();
}

std::string
toHexString(const std::array<std::uint8_t, 32>& digest)
{
    static const char* kDigits = "0123456789abcdef";
    std::string out;
    for (std::uint8_t b : digest) {
        out.push_back(kDigits[b >> 4]);
        out.push_back(kDigits[b & 0xF]);
    }
    return out;
}

// ---- Address parsing ---------------------------------------------------

TEST(SocketAddress, ParsesHostPortForms)
{
    auto a = net::parseSocketAddress("127.0.0.1:7077");
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a.value().host, "127.0.0.1");
    EXPECT_EQ(a.value().port, 7077);

    auto any = net::parseSocketAddress("*:7077");
    ASSERT_TRUE(any.ok());
    EXPECT_TRUE(any.value().host.empty());
    EXPECT_EQ(any.value().port, 7077);

    auto ephemeral = net::parseSocketAddress(":0");
    ASSERT_TRUE(ephemeral.ok());
    EXPECT_TRUE(ephemeral.value().host.empty());
    EXPECT_EQ(ephemeral.value().port, 0);
}

TEST(SocketAddress, RejectsMalformedText)
{
    EXPECT_FALSE(net::parseSocketAddress("").ok());
    EXPECT_FALSE(net::parseSocketAddress("noport").ok());
    EXPECT_FALSE(net::parseSocketAddress("host:").ok());
    EXPECT_FALSE(net::parseSocketAddress("host:abc").ok());
    EXPECT_FALSE(net::parseSocketAddress("host:-1").ok());
    EXPECT_FALSE(net::parseSocketAddress("host:65536").ok());
}

// ---- Authentication primitives -----------------------------------------

TEST(Auth, Sha256MatchesFips180KnownAnswers)
{
    EXPECT_EQ(toHexString(net::sha256("")),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(toHexString(net::sha256("abc")),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
    EXPECT_EQ(toHexString(net::sha256(
                  "abcdbcdecdefdefgefghfghighijhijk"
                  "ijkljklmklmnlmnomnopnopq")),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Auth, HmacSha256MatchesRfc4231KnownAnswers)
{
    // RFC 4231 test case 1.
    EXPECT_EQ(net::hmacSha256Hex(std::string(20, '\x0b'), "Hi There"),
              "b0344c61d8db38535ca8afceaf0bf12b"
              "881dc200c9833da726e9376c2e32cff7");
    // RFC 4231 test case 2 (key shorter than the block size).
    EXPECT_EQ(net::hmacSha256Hex("Jefe",
                                 "what do ya want for nothing?"),
              "5bdcc146bf60754e6a042426089575c7"
              "5a003f089d2739839dec58b964ec3843");
    // RFC 4231 test case 6 (key longer than the block size).
    EXPECT_EQ(net::hmacSha256Hex(
                  std::string(131, '\xaa'),
                  "Test Using Larger Than Block-Size Key - "
                  "Hash Key First"),
              "60e431591ee0b67f0d8a26aacbf5b77f"
              "8e0bc6213728c5140546040f0ee37f54");
}

TEST(Auth, ConstantTimeEqualsComparesContent)
{
    EXPECT_TRUE(net::constantTimeEquals("", ""));
    EXPECT_TRUE(net::constantTimeEquals("abcd", "abcd"));
    EXPECT_FALSE(net::constantTimeEquals("abcd", "abce"));
    EXPECT_FALSE(net::constantTimeEquals("abcd", "abc"));
    EXPECT_FALSE(net::constantTimeEquals("", "x"));
}

TEST(Auth, NonceIsFreshHex)
{
    const std::string a = net::makeNonceHex();
    const std::string b = net::makeNonceHex();
    EXPECT_EQ(a.size(), 64u); // 32 bytes, hex-encoded
    EXPECT_NE(a, b);
    for (char c : a) {
        EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
            << "non-hex nonce char " << c;
    }
}

TEST(Auth, MacsAreDomainAndInputSeparated)
{
    const std::string nonce = net::makeNonceHex();
    const std::string agent = net::agentMac("s3cret", nonce, "alpha");
    // Same secret and nonce, different role: never interchangeable.
    EXPECT_NE(agent, net::serverMac("s3cret", nonce));
    // Every input matters.
    EXPECT_NE(agent, net::agentMac("other", nonce, "alpha"));
    EXPECT_NE(agent, net::agentMac("s3cret", nonce, "beta"));
    EXPECT_NE(agent,
              net::agentMac("s3cret", net::makeNonceHex(), "alpha"));
    // And the proof is deterministic for the holder of the secret.
    EXPECT_EQ(agent, net::agentMac("s3cret", nonce, "alpha"));
}

// ---- Chaos-aware wire writes -------------------------------------------

#if defined(__unix__) || defined(__APPLE__)

/** Send lines through a pipe under one chaos spec; return raw bytes. */
std::string
wireBytesUnderChaos(const sim::ChaosSpec& chaos,
                    const std::vector<std::string>& lines)
{
    int fds[2] = {-1, -1};
    EXPECT_EQ(::pipe(fds), 0);
    sim::setChaosSpec(chaos);
    for (const std::string& line : lines) {
        const Status sent = net::sendWireLine(fds[1], line, 1000);
        EXPECT_TRUE(sent.ok()) << sent.toString();
    }
    sim::clearChaosSpec();
    closeFd(fds[1]);
    std::string received;
    char buf[256];
    for (;;) {
        const ssize_t n = ::read(fds[0], buf, sizeof buf);
        if (n <= 0)
            break;
        received.append(buf, static_cast<std::size_t>(n));
    }
    closeFd(fds[0]);
    return received;
}

TEST(Wire, DropFaultSwallowsOneLineSilently)
{
    if (!netTestsSupported())
        GTEST_SKIP() << "sockets/fork unavailable";
    sim::ChaosSpec chaos;
    chaos.net_drop = 0;
    EXPECT_EQ(wireBytesUnderChaos(chaos, {"first\n", "second\n"}),
              "second\n");
}

TEST(Wire, DuplicateFaultSendsOneLineTwice)
{
    if (!netTestsSupported())
        GTEST_SKIP() << "sockets/fork unavailable";
    sim::ChaosSpec chaos;
    chaos.net_dup = 1;
    EXPECT_EQ(wireBytesUnderChaos(chaos, {"first\n", "second\n"}),
              "first\nsecond\nsecond\n");
}

TEST(Wire, TruncateFaultBreaksFramingMidLine)
{
    if (!netTestsSupported())
        GTEST_SKIP() << "sockets/fork unavailable";
    sim::ChaosSpec chaos;
    chaos.net_trunc = 0;
    // "abcdef" loses its second half and its terminator, so the next
    // line's bytes glue onto the stump — exactly the framing break a
    // mid-write peer death produces.
    EXPECT_EQ(wireBytesUnderChaos(chaos, {"abcdef\n", "tail\n"}),
              "abctail\n");
}

TEST(Wire, GarbleFaultCorruptsPayloadButKeepsFraming)
{
    if (!netTestsSupported())
        GTEST_SKIP() << "sockets/fork unavailable";
    sim::ChaosSpec chaos;
    chaos.net_garble = 0;
    const std::string got =
        wireBytesUnderChaos(chaos, {"payload\n", "clean\n"});
    ASSERT_EQ(got.size(), std::string("payload\nclean\n").size());
    EXPECT_EQ(got.substr(got.size() - 6), "clean\n");
    EXPECT_EQ(got[7], '\n'); // framing intact...
    EXPECT_NE(got.substr(0, 7), "payload"); // ...payload corrupted
}

TEST(Wire, OversizedLineIsDataLossAndPoisonsTheStream)
{
    if (!netTestsSupported())
        GTEST_SKIP() << "sockets/fork unavailable";
    int fds[2] = {-1, -1};
    ASSERT_EQ(::pipe(fds), 0);
    const std::string oversized(200, 'a');
    ASSERT_TRUE(writeAllFd(fds[1], oversized + "\nok\n").ok());
    closeFd(fds[1]);

    LineReader reader(fds[0], 64);
    const auto first = reader.readLine();
    ASSERT_FALSE(first.ok());
    EXPECT_EQ(first.status().code(), ErrorCode::dataLoss);
    // Framing is unrecoverable past an oversized line: the stream
    // stays poisoned even though a well-formed line follows.
    EXPECT_FALSE(reader.readLine().ok());
    closeFd(fds[0]);
}

#endif // __unix__ || __APPLE__

// ---- Protocol negative / fuzz coverage ---------------------------------

TEST(NetProtocol, ChaosSpecParsesNetworkAndFleetUnitKeys)
{
    const auto parsed = sim::parseChaosSpec(
        "net_drop=1,net_dup=2,net_trunc=3,net_garble=4,net_delay=5,"
        "net_delay_ms=7,fleet_exit_unit=9,fleet_exit_unit_count=-1,"
        "fleet_stall_unit=11,fleet_stall_worker=0,fleet_stall_after=2");
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    const sim::ChaosSpec& c = parsed.value();
    EXPECT_EQ(c.net_drop, 1);
    EXPECT_EQ(c.net_dup, 2);
    EXPECT_EQ(c.net_trunc, 3);
    EXPECT_EQ(c.net_garble, 4);
    EXPECT_EQ(c.net_delay, 5);
    EXPECT_EQ(c.net_delay_ms, 7);
    EXPECT_EQ(c.fleet_exit_unit, 9);
    EXPECT_EQ(c.fleet_exit_unit_count, -1);
    EXPECT_EQ(c.fleet_stall_unit, 11);
    EXPECT_EQ(c.fleet_stall_worker, 0);
    EXPECT_EQ(c.fleet_stall_after, 2);
}

TEST(NetProtocol, HandshakeLinesRoundTrip)
{
    const std::string nonce = net::makeNonceHex();
    const auto challenge = sim::fleet::decodeChallengeLine(
        sim::fleet::encodeChallengeLine(nonce));
    ASSERT_TRUE(challenge.ok());
    EXPECT_EQ(challenge.value(), nonce);

    const auto auth = sim::fleet::decodeAuthLine(
        sim::fleet::encodeAuthLine("alpha", "00ff"));
    ASSERT_TRUE(auth.ok());
    EXPECT_EQ(auth.value().agent, "alpha");
    EXPECT_EQ(auth.value().mac, "00ff");

    const auto welcome = sim::fleet::decodeWelcomeLine(
        sim::fleet::encodeWelcomeLine(7, "ab12"));
    ASSERT_TRUE(welcome.ok());
    EXPECT_EQ(welcome.value().worker, 7);
    EXPECT_EQ(welcome.value().mac, "ab12");
}

TEST(NetProtocol, AuthErrorLineIsTerminalForTheAgent)
{
    const auto rejected = sim::fleet::decodeWelcomeLine(
        sim::fleet::encodeAuthErrorLine("authentication failed"));
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(),
              ErrorCode::failedPrecondition);
}

TEST(NetProtocol, TruncatedLinesNeverDecode)
{
    sim::fleet::WorkerMessage msg;
    msg.kind = sim::fleet::WorkerMessage::Kind::result;
    msg.unit = 3;
    msg.worker = 1;
    sim::CheckpointEntry entry;
    entry.task = 12;
    entry.counts.trials = 100;
    msg.checkpoint.done.push_back(entry);
    const std::string line = sim::fleet::encodeResultLine(msg);
    // Every cut that loses payload bytes (not just the newline) must
    // decode to a structured error, not a crash or a partial message.
    for (std::size_t cut = 0; cut + 1 < line.size(); ++cut) {
        EXPECT_FALSE(
            sim::fleet::decodeWorkerLine(line.substr(0, cut)).ok())
            << "cut at " << cut;
    }
}

TEST(NetProtocol, DecodersSurviveDeterministicGarbage)
{
    std::uint64_t state = 0x9E3779B97F4A7C15ull;
    const auto next = [&state]() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    for (int round = 0; round < 500; ++round) {
        std::string line;
        const std::size_t len = next() % 120;
        for (std::size_t i = 0; i < len; ++i)
            line.push_back(static_cast<char>(next() & 0xFF));
        // None of these may crash; structured failure (or, for pure
        // luck, success) are both acceptable outcomes.
        (void)sim::fleet::decodeConfigLine(line);
        (void)sim::fleet::decodeUnitLine(line);
        (void)sim::fleet::decodeWorkerLine(line);
        (void)sim::fleet::decodeServerLine(line);
        (void)sim::fleet::decodeChallengeLine(line);
        (void)sim::fleet::decodeAuthLine(line);
        (void)sim::fleet::decodeWelcomeLine(line);
    }
}

// ---- Loopback service campaigns ----------------------------------------

sim::CampaignSpec
smallSpec()
{
    sim::CampaignSpec spec;
    spec.scheme_ids = {"ni-secded", "duet"};
    spec.patterns = {ErrorPattern::oneBit, ErrorPattern::oneBeat};
    spec.samples = 20000;
    spec.seed = 0xF1EE7;
    spec.threads = 1;
    return spec;
}

sim::CampaignSpec
serviceSpec(double heartbeat_timeout_s = 10.0)
{
    sim::CampaignSpec spec = smallSpec();
    spec.fleet_listen = "127.0.0.1:0"; // ephemeral port
    spec.fleet_secret = "test-secret";
    spec.fleet_heartbeat_timeout_s = heartbeat_timeout_s;
    spec.fleet_grace_s = 60.0; // agents always arrive well within this
    return spec;
}

void
expectCellsIdentical(const sim::CampaignResult& a,
                     const sim::CampaignResult& b)
{
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        EXPECT_EQ(a.cells[i].scheme_id, b.cells[i].scheme_id);
        EXPECT_EQ(a.cells[i].pattern, b.cells[i].pattern);
        const OutcomeCounts& x = a.cells[i].counts;
        const OutcomeCounts& y = b.cells[i].counts;
        EXPECT_EQ(x.trials, y.trials) << "cell " << i;
        EXPECT_EQ(x.dce, y.dce) << "cell " << i;
        EXPECT_EQ(x.due, y.due) << "cell " << i;
        EXPECT_EQ(x.sdc, y.sdc) << "cell " << i;
    }
}

/**
 * Fork a fleet agent process aimed at the local service. Must run
 * before service->run() (the process is still single-threaded; the
 * connect waits in the listener backlog). Sibling pipe fds accumulate
 * in @p inherited so later children do not hold them open.
 */
ChildProcess
forkAgent(int port, const std::string& secret, const std::string& name,
          std::vector<int>& inherited)
{
    net::FleetAgentOptions options;
    options.port = port;
    options.secret = secret;
    options.name = name;
    options.heartbeat_interval_s = 0.2;
    options.io_timeout_s = 20.0;
    options.backoff_initial_s = 0.1;
    options.backoff_max_s = 0.5;
    options.max_reconnects = 50;
    auto spawned = spawnChild(
        [options](int, int) { return net::runFleetAgent(options); },
        inherited);
    EXPECT_TRUE(spawned.ok()) << spawned.status().toString();
    if (!spawned.ok())
        return {};
    inherited.push_back(spawned.value().to_child);
    inherited.push_back(spawned.value().from_child);
    return spawned.value();
}

int
reapAgent(ChildProcess& agent)
{
    const Result<int> code = waitForExit(agent.pid);
    return code.ok() ? code.value() : -1;
}

TEST(FleetService, LoopbackAgentsProduceBitIdenticalTallies)
{
    if (!netTestsSupported())
        GTEST_SKIP() << "sockets/fork unavailable";
    const sim::CampaignResult reference =
        sim::CampaignRunner(smallSpec()).run();

    const sim::CampaignSpec spec = serviceSpec();
    auto service = net::FleetService::create(spec);
    ASSERT_TRUE(service.ok()) << service.status().toString();
    std::vector<int> inherited;
    ChildProcess alpha = forkAgent(service.value()->port(),
                                   spec.fleet_secret, "alpha",
                                   inherited);
    ChildProcess beta = forkAgent(service.value()->port(),
                                  spec.fleet_secret, "beta",
                                  inherited);

    const auto result = service.value()->run();
    ASSERT_TRUE(result.ok()) << result.status().toString();
    EXPECT_EQ(reapAgent(alpha), 0);
    EXPECT_EQ(reapAgent(beta), 0);

    const sim::CampaignResult& r = result.value();
    EXPECT_EQ(r.fleet.workers, 2);
    EXPECT_EQ(r.fleet.agents_connected, 2u);
    EXPECT_EQ(r.fleet.auth_failures, 0u);
    ASSERT_EQ(r.fleet.worker_records.size(), 2u);
    for (const obs::FleetWorkerRecord& record : r.fleet.worker_records) {
        EXPECT_TRUE(record.remote);
        EXPECT_FALSE(record.lost);
        EXPECT_TRUE(record.agent == "alpha" || record.agent == "beta");
    }
    EXPECT_TRUE(r.errors.empty());
    expectCellsIdentical(reference, r);
}

TEST(FleetService, KilledAgentUnitIsRequeuedBitIdentically)
{
    if (!netTestsSupported())
        GTEST_SKIP() << "sockets/fork unavailable";
    const sim::CampaignResult reference =
        sim::CampaignRunner(smallSpec()).run();

    const sim::CampaignSpec spec = serviceSpec();
    auto service = net::FleetService::create(spec);
    ASSERT_TRUE(service.ok()) << service.status().toString();

    // Whichever agent is assigned worker index 1 self-kills when it
    // starts its second unit (the spec is inherited across fork).
    sim::ChaosSpec chaos;
    chaos.fleet_exit_worker = 1;
    chaos.fleet_exit_after = 1;
    sim::setChaosSpec(chaos);
    std::vector<int> inherited;
    ChildProcess alpha = forkAgent(service.value()->port(),
                                   spec.fleet_secret, "alpha",
                                   inherited);
    ChildProcess beta = forkAgent(service.value()->port(),
                                  spec.fleet_secret, "beta",
                                  inherited);
    sim::clearChaosSpec(); // the parent needs no faults armed

    const auto result = service.value()->run();
    ASSERT_TRUE(result.ok()) << result.status().toString();
    std::vector<int> exits = {reapAgent(alpha), reapAgent(beta)};
    std::sort(exits.begin(), exits.end());
    EXPECT_EQ(exits[0], 0);
    EXPECT_EQ(exits[1], sim::kChaosFleetExitCode);

    const sim::CampaignResult& r = result.value();
    EXPECT_EQ(r.fleet.workers_lost, 1u);
    EXPECT_GE(r.fleet.requeues, 1u);
    EXPECT_TRUE(r.errors.empty());
    expectCellsIdentical(reference, r);
}

TEST(FleetService, SilentAgentTripsHeartbeatExpiryAndIsRetired)
{
    if (!netTestsSupported())
        GTEST_SKIP() << "sockets/fork unavailable";
    const sim::CampaignResult reference =
        sim::CampaignRunner(smallSpec()).run();

    // A tight liveness budget so the drill stays fast.
    const sim::CampaignSpec spec = serviceSpec(1.0);
    auto service = net::FleetService::create(spec);
    ASSERT_TRUE(service.ok()) << service.status().toString();

    // The agent holding worker index 1 hangs on its first unit with
    // its heartbeats silenced — the silent-host scenario.
    sim::ChaosSpec chaos;
    chaos.fleet_stall_worker = 1;
    chaos.fleet_stall_after = 0;
    sim::setChaosSpec(chaos);
    std::vector<int> inherited;
    ChildProcess alpha = forkAgent(service.value()->port(),
                                   spec.fleet_secret, "alpha",
                                   inherited);
    ChildProcess beta = forkAgent(service.value()->port(),
                                  spec.fleet_secret, "beta",
                                  inherited);
    sim::clearChaosSpec();

    const auto result = service.value()->run();
    ASSERT_TRUE(result.ok()) << result.status().toString();
    // The stalled process hangs forever by design; reap both with a
    // kill (harmless for the one that already exited cleanly).
    killChild(alpha.pid);
    killChild(beta.pid);
    reapAgent(alpha);
    reapAgent(beta);

    const sim::CampaignResult& r = result.value();
    EXPECT_GE(r.fleet.heartbeat_expiries, 1u);
    EXPECT_GE(r.fleet.requeues, 1u);
    EXPECT_EQ(r.fleet.workers_lost, 1u);
    EXPECT_TRUE(r.errors.empty());
    expectCellsIdentical(reference, r);
}

TEST(FleetService, WrongSecretIsRejectedAndCounted)
{
    if (!netTestsSupported())
        GTEST_SKIP() << "sockets/fork unavailable";
    const sim::CampaignResult reference =
        sim::CampaignRunner(smallSpec()).run();

    const sim::CampaignSpec spec = serviceSpec();
    auto service = net::FleetService::create(spec);
    ASSERT_TRUE(service.ok()) << service.status().toString();
    std::vector<int> inherited;
    ChildProcess intruder = forkAgent(service.value()->port(),
                                      "wrong-secret", "intruder",
                                      inherited);
    ChildProcess honest = forkAgent(service.value()->port(),
                                    spec.fleet_secret, "honest",
                                    inherited);

    const auto result = service.value()->run();
    ASSERT_TRUE(result.ok()) << result.status().toString();
    EXPECT_EQ(reapAgent(intruder), net::kAgentAuthExit);
    EXPECT_EQ(reapAgent(honest), 0);

    const sim::CampaignResult& r = result.value();
    EXPECT_EQ(r.fleet.auth_failures, 1u);
    EXPECT_EQ(r.fleet.agents_connected, 1u);
    ASSERT_EQ(r.fleet.worker_records.size(), 1u);
    EXPECT_EQ(r.fleet.worker_records[0].agent, "honest");
    EXPECT_TRUE(r.errors.empty());
    expectCellsIdentical(reference, r);
}

TEST(FleetService, GarbledUnitLineTriggersBackoffReconnect)
{
    if (!netTestsSupported())
        GTEST_SKIP() << "sockets/fork unavailable";
    const sim::CampaignResult reference =
        sim::CampaignRunner(smallSpec()).run();

    const sim::CampaignSpec spec = serviceSpec();
    auto service = net::FleetService::create(spec);
    ASSERT_TRUE(service.ok()) << service.status().toString();
    std::vector<int> inherited;
    ChildProcess agent = forkAgent(service.value()->port(),
                                   spec.fleet_secret, "solo",
                                   inherited);

    // Armed after the fork, so only the parent's wire is faulted:
    // its lines run challenge(0), welcome(1), config(2), first
    // unit(3) — the garbled unit makes the agent drop the session and
    // reconnect with backoff while the server requeues the unit.
    sim::ChaosSpec chaos;
    chaos.net_garble = 3;
    sim::setChaosSpec(chaos);
    const auto result = service.value()->run();
    sim::clearChaosSpec();
    ASSERT_TRUE(result.ok()) << result.status().toString();
    EXPECT_EQ(reapAgent(agent), 0);

    const sim::CampaignResult& r = result.value();
    EXPECT_EQ(r.fleet.agents_connected, 2u); // same agent, twice
    EXPECT_GE(r.fleet.requeues, 1u);
    EXPECT_GE(r.fleet.workers_lost, 1u);
    ASSERT_EQ(r.fleet.worker_records.size(), 2u);
    EXPECT_TRUE(r.fleet.worker_records[0].lost);
    EXPECT_FALSE(r.fleet.worker_records[1].lost);
    EXPECT_TRUE(r.errors.empty());
    expectCellsIdentical(reference, r);
}

TEST(FleetService, ServerRestartResumesFromCheckpointBitIdentically)
{
    if (!netTestsSupported())
        GTEST_SKIP() << "sockets/fork unavailable";
    const sim::CampaignResult reference =
        sim::CampaignRunner(smallSpec()).run();

    const std::string checkpoint =
        ::testing::TempDir() + "net_server_restart.ckpt";
    std::remove(checkpoint.c_str());

    // Server #1 checkpoints after every settlement and dies to a
    // simulated SIGTERM mid-campaign (the chaos kill-point fires in
    // the parent after 10 merged shard tasks).
    sim::CampaignSpec spec = serviceSpec();
    spec.checkpoint_path = checkpoint;
    spec.checkpoint_interval_s = 0;
    auto first = net::FleetService::create(spec);
    ASSERT_TRUE(first.ok()) << first.status().toString();
    std::vector<int> inherited;
    ChildProcess alpha = forkAgent(first.value()->port(),
                                   spec.fleet_secret, "alpha",
                                   inherited);
    sim::ChaosSpec chaos;
    chaos.kill_after = 10;
    sim::setChaosSpec(chaos);
    const auto interrupted = first.value()->run();
    sim::clearChaosSpec();
    clearInterrupt(); // the simulated SIGTERM latches until cleared
    ASSERT_TRUE(interrupted.ok()) << interrupted.status().toString();
    EXPECT_TRUE(interrupted.value().interrupted);
    EXPECT_EQ(reapAgent(alpha), 0); // drained, not hung up on

    // Server #2: the same campaign on a fresh ephemeral port resumes
    // from the checkpoint sidecar; a fresh agent finishes the rest.
    // The merged tallies must be bit-identical to an uninterrupted
    // in-process run.
    sim::CampaignSpec resume_spec = serviceSpec();
    resume_spec.checkpoint_path = checkpoint;
    resume_spec.resume = true;
    auto second = net::FleetService::create(resume_spec);
    ASSERT_TRUE(second.ok()) << second.status().toString();
    ChildProcess beta = forkAgent(second.value()->port(),
                                  resume_spec.fleet_secret, "beta",
                                  inherited);
    const auto result = second.value()->run();
    ASSERT_TRUE(result.ok()) << result.status().toString();
    EXPECT_EQ(reapAgent(beta), 0);

    const sim::CampaignResult& r = result.value();
    EXPECT_FALSE(r.interrupted);
    EXPECT_GT(r.resumed_shards, 0u);
    EXPECT_TRUE(r.errors.empty());
    expectCellsIdentical(reference, r);
    std::remove(checkpoint.c_str());
}

TEST(FleetService, InterruptDrainsAgentsGracefully)
{
    if (!netTestsSupported())
        GTEST_SKIP() << "sockets/fork unavailable";
    const sim::CampaignSpec spec = serviceSpec();
    auto service = net::FleetService::create(spec);
    ASSERT_TRUE(service.ok()) << service.status().toString();
    std::vector<int> inherited;
    ChildProcess agent = forkAgent(service.value()->port(),
                                   spec.fleet_secret, "drained",
                                   inherited);

    // Armed after the fork: only the parent counts merged tasks, so
    // the simulated SIGTERM fires in the service mid-campaign. The
    // agent must still exit 0 — it received a shutdown line, not a
    // hangup.
    sim::ChaosSpec chaos;
    chaos.kill_after = 10;
    sim::setChaosSpec(chaos);
    const auto result = service.value()->run();
    sim::clearChaosSpec();
    clearInterrupt(); // the simulated SIGTERM latches until cleared
    ASSERT_TRUE(result.ok()) << result.status().toString();
    EXPECT_EQ(reapAgent(agent), 0);
    EXPECT_TRUE(result.value().interrupted);
}

} // namespace
} // namespace gpuecc
