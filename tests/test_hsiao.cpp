/** @file Tests for the (72, 64) Hsiao SEC-DED construction. */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "codes/hsiao.hpp"
#include "codes/linear_code.hpp"
#include "common/bitops.hpp"

namespace gpuecc {
namespace {

std::vector<unsigned>
columnsOf(const Gf2Matrix& h)
{
    std::vector<unsigned> cols(h.cols());
    for (int c = 0; c < h.cols(); ++c) {
        unsigned v = 0;
        for (int r = 0; r < h.rows(); ++r)
            v |= static_cast<unsigned>(h.get(r, c)) << r;
        cols[c] = v;
    }
    return cols;
}

class HsiaoMatrixTest
    : public ::testing::TestWithParam<Gf2Matrix (*)()>
{
};

TEST_P(HsiaoMatrixTest, Shape)
{
    const Gf2Matrix h = GetParam()();
    EXPECT_EQ(h.rows(), 8);
    EXPECT_EQ(h.cols(), 72);
    EXPECT_EQ(h.rank(), 8);
}

TEST_P(HsiaoMatrixTest, MinimumOddWeightColumns)
{
    const auto cols = columnsOf(GetParam()());
    std::map<int, int> weight_histogram;
    for (unsigned c : cols)
        ++weight_histogram[popcount64(c)];
    // All 56 weight-3 columns, 8 weight-5, 8 weight-1 checks.
    EXPECT_EQ(weight_histogram[1], 8);
    EXPECT_EQ(weight_histogram[3], 56);
    EXPECT_EQ(weight_histogram[5], 8);
}

TEST_P(HsiaoMatrixTest, ColumnsDistinctAndNonzero)
{
    const auto cols = columnsOf(GetParam()());
    const std::set<unsigned> unique(cols.begin(), cols.end());
    EXPECT_EQ(unique.size(), 72u);
    EXPECT_EQ(unique.count(0), 0u);
}

TEST_P(HsiaoMatrixTest, ChecksAtEnd)
{
    const Gf2Matrix h = GetParam()();
    for (int r = 0; r < 8; ++r) {
        for (int c = 64; c < 72; ++c)
            EXPECT_EQ(h.get(r, c), c - 64 == r ? 1 : 0);
    }
}

TEST_P(HsiaoMatrixTest, IsSecDedAsCode)
{
    const Code72 code(GetParam()());
    EXPECT_TRUE(code.isSec());
    EXPECT_TRUE(code.isDed());
}

INSTANTIATE_TEST_SUITE_P(Arrangements, HsiaoMatrixTest,
                         ::testing::Values(&hsiao7264Matrix,
                                           &hsiao7264LexMatrix));

TEST(HsiaoArrangement, SameMultisetDifferentOrder)
{
    const auto a = columnsOf(hsiao7264Matrix());
    const auto b = columnsOf(hsiao7264LexMatrix());
    EXPECT_NE(a, b);
    EXPECT_EQ(std::multiset<unsigned>(a.begin(), a.end()),
              std::multiset<unsigned>(b.begin(), b.end()));
}

/**
 * The calibrated arrangement must keep the byte-error SDC rate of
 * non-interleaved SEC-DED near the paper's reported ~23% (the
 * lexicographic arrangement sits near 32%).
 */
TEST(HsiaoArrangement, CalibratedByteSdcNearPaper)
{
    const Code72 code(hsiao7264Matrix());
    // Exhaustive byte-error sweep at the codeword level.
    long sdc = 0, total = 0;
    const std::uint64_t data = 0xDEADBEEF12345678ull;
    const Bits72 golden = code.encode(data);
    for (int byte = 0; byte < 9; ++byte) {
        for (unsigned m = 1; m < 256; ++m) {
            if (popcount64(m) < 2)
                continue;
            Bits72 received = golden;
            for (int t = 0; t < 8; ++t) {
                if ((m >> t) & 1)
                    received.flip(8 * byte + t);
            }
            const CodewordDecode d =
                code.decode(received, Code72::Mode::secDed);
            ++total;
            if (d.status == CodewordDecode::Status::due)
                continue;
            const Bits72 fixed = received ^ d.correction;
            if (code.extractData(fixed) != data)
                ++sdc;
        }
    }
    const double rate = static_cast<double>(sdc) / total;
    EXPECT_NEAR(rate, 0.23, 0.01);
}

} // namespace
} // namespace gpuecc
