/** @file Unit tests for statistics utilities. */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace gpuecc {
namespace {

TEST(OnlineStatsTest, KnownValues)
{
    OnlineStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(OnlineStatsTest, EmptyAndSingle)
{
    OnlineStats s;
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    s.add(3.0);
    EXPECT_EQ(s.mean(), 3.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(WilsonTest, ZeroTrials)
{
    const Interval iv = wilsonInterval(0, 0);
    EXPECT_EQ(iv.lo, 0.0);
    EXPECT_EQ(iv.hi, 1.0);
}

TEST(WilsonTest, ContainsTrueProportion)
{
    const Interval iv = wilsonInterval(50, 100);
    EXPECT_LT(iv.lo, 0.5);
    EXPECT_GT(iv.hi, 0.5);
    EXPECT_NEAR(iv.lo, 0.404, 0.005);
    EXPECT_NEAR(iv.hi, 0.596, 0.005);
}

TEST(WilsonTest, ZeroSuccessesHasPositiveUpperBound)
{
    const Interval iv = wilsonInterval(0, 1000);
    EXPECT_EQ(iv.lo, 0.0);
    EXPECT_GT(iv.hi, 0.0);
    EXPECT_LT(iv.hi, 0.01);
}

TEST(NormalTest, CdfKnownPoints)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.0), 0.8413, 1e-3);
    EXPECT_NEAR(normalCdf(-1.0), 0.1587, 1e-3);
    EXPECT_NEAR(normalCdf(3.0), 0.99865, 1e-4);
}

TEST(NormalTest, PdfSymmetric)
{
    EXPECT_NEAR(normalPdf(0.0), 0.3989, 1e-3);
    EXPECT_DOUBLE_EQ(normalPdf(1.5), normalPdf(-1.5));
}

TEST(RegressionTest, PerfectLine)
{
    const std::vector<double> x{1, 2, 3, 4, 5};
    const std::vector<double> y{3, 5, 7, 9, 11};
    const LineFit f = linearRegression(x, y);
    EXPECT_NEAR(f.intercept, 1.0, 1e-10);
    EXPECT_NEAR(f.slope, 2.0, 1e-10);
    EXPECT_NEAR(f.r2, 1.0, 1e-10);
}

TEST(RegressionTest, NoisyLineR2BelowOne)
{
    Rng rng(1);
    std::vector<double> x, y;
    for (int i = 0; i < 100; ++i) {
        x.push_back(i);
        y.push_back(2.0 * i + 5.0 + rng.nextGaussian() * 3.0);
    }
    const LineFit f = linearRegression(x, y);
    EXPECT_NEAR(f.slope, 2.0, 0.05);
    EXPECT_GT(f.r2, 0.97);
    EXPECT_LT(f.r2, 1.0);
}

TEST(RegressionTest, ExponentialRecoversParameters)
{
    std::vector<double> x, y;
    for (int i = 0; i <= 10; ++i) {
        x.push_back(i);
        y.push_back(100.0 * std::exp(-0.3 * i));
    }
    const LineFit f = exponentialRegression(x, y);
    EXPECT_NEAR(f.intercept, 100.0, 1e-6); // A
    EXPECT_NEAR(f.slope, -0.3, 1e-9);      // b
    EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(NelderMeadTest, MinimizesQuadraticBowl)
{
    auto f = [](const std::vector<double>& p) {
        const double dx = p[0] - 3.0;
        const double dy = p[1] + 2.0;
        return dx * dx + 4.0 * dy * dy;
    };
    const auto best = nelderMead(f, {0.0, 0.0}, 0.5, 3000);
    EXPECT_NEAR(best[0], 3.0, 1e-4);
    EXPECT_NEAR(best[1], -2.0, 1e-4);
}

TEST(FitNormalCdfTest, RecoversPaperLikeRetentionModel)
{
    // Synthesize the Figure 3a curve: 2700 cells, mu 19 ms, sigma 9 ms.
    std::vector<double> x, y;
    for (double r : {8.0, 16.0, 24.0, 32.0, 40.0, 48.0}) {
        x.push_back(r);
        y.push_back(2700.0 * normalCdf((r - 19.0) / 9.0));
    }
    const NormalCdfFit fit = fitNormalCdf(x, y);
    EXPECT_NEAR(fit.n, 2700.0, 30.0);
    EXPECT_NEAR(fit.mu, 19.0, 0.3);
    EXPECT_NEAR(fit.sigma, 9.0, 0.3);
    EXPECT_LT(fit.rss, 1.0);
}

TEST(ExponentialHistogramTest, BinEdgesAndCounts)
{
    ExponentialHistogram h(5359);
    EXPECT_EQ(h.binLo(0), 1u);
    EXPECT_EQ(h.binHi(0), 1u);
    EXPECT_EQ(h.binLo(3), 8u);
    EXPECT_EQ(h.binHi(3), 15u);
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(5359);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.total(), 4u);
    // 5359 falls in the last bin ([4096, 8191]).
    EXPECT_EQ(h.count(h.numBins() - 1), 1u);
}

} // namespace
} // namespace gpuecc
