/** @file Tests for permanent-fault (graceful degradation) modeling. */

#include <gtest/gtest.h>

#include "ecc/registry.hpp"
#include "faultsim/permanent.hpp"

namespace gpuecc {
namespace {

TEST(PermanentFaultTest, MaskSemantics)
{
    Bits288 stored;
    stored.set(0, 1);  // pin 0, beat 0
    stored.set(72, 1); // pin 0, beat 1

    // Pin 0 stuck at 1: only the beats storing 0 become erroneous.
    const PermanentFault stuck1{PermanentFaultKind::stuckPin, 0, 1};
    const Bits288 m1 = stuck1.maskFor(stored);
    EXPECT_EQ(m1.popcount(), 2); // beats 2 and 3
    EXPECT_EQ(m1.get(144), 1);
    EXPECT_EQ(m1.get(216), 1);

    // Pin 0 stuck at 0: the beats storing 1 become erroneous.
    const PermanentFault stuck0{PermanentFaultKind::stuckPin, 0, 0};
    const Bits288 m0 = stuck0.maskFor(stored);
    EXPECT_EQ(m0.popcount(), 2);
    EXPECT_EQ(m0.get(0), 1);
    EXPECT_EQ(m0.get(72), 1);

    const PermanentFault byte{PermanentFaultKind::stuckByte, 5, 1};
    EXPECT_EQ(byte.regionMask().popcount(), 8);
    EXPECT_EQ(byte.maskFor(Bits288{}).popcount(), 8);
}

TEST(PermanentFaultTest, PinCorrectingSchemesAbsorbStuckPins)
{
    // "Single-pin correction is therefore desirable, as it allows a
    // GPU to gracefully degrade in the field."
    for (const char* id : {"ni-secded", "duet", "trio", "i-ssc"}) {
        const auto scheme = makeScheme(id);
        DegradationEvaluator ev(*scheme);
        const DegradationCounts counts =
            ev.faultAlone(PermanentFaultKind::stuckPin, 2000);
        EXPECT_EQ(counts.sdcRate(), 0.0) << id;
        EXPECT_EQ(counts.dueRate(), 0.0) << id;
    }
}

TEST(PermanentFaultTest, SscDsdPlusCannotDegradeGracefully)
{
    // The one scheme without pin correction: a stuck pin makes the
    // entry a permanent DUE (never an SDC) for most stored data.
    const auto dsd = makeScheme("ssc-dsd+");
    DegradationEvaluator ev(*dsd);
    const DegradationCounts counts =
        ev.faultAlone(PermanentFaultKind::stuckPin, 2000);
    EXPECT_EQ(counts.sdcRate(), 0.0);
    // With random data a stuck pin corrupts 0 bits 1/16 of the time
    // and 1 bit 1/4 of the time (both handled), leaving ~69% of
    // trials as multi-symbol DUEs - a crash-prone degraded state.
    EXPECT_GT(counts.dueRate(), 0.6);
}

TEST(PermanentFaultTest, TrioCorrectsPermanentWordlineFailures)
{
    // "Byte detection and correction are important for permanent
    // local wordline failures."
    const auto trio = makeScheme("trio");
    DegradationEvaluator ev(*trio);
    const DegradationCounts counts =
        ev.faultAlone(PermanentFaultKind::stuckByte, 2000);
    EXPECT_EQ(counts.sdcRate(), 0.0);
    EXPECT_EQ(counts.dueRate(), 0.0);
    EXPECT_GT(counts.dceRate(), 0.99);
}

TEST(PermanentFaultTest, DuetDetectsPermanentWordlineFailures)
{
    const auto duet = makeScheme("duet");
    DegradationEvaluator ev(*duet);
    const DegradationCounts counts =
        ev.faultAlone(PermanentFaultKind::stuckByte, 2000);
    EXPECT_EQ(counts.sdcRate(), 0.0);
    // Roughly half the random byte patterns have <= 4 erroneous bits
    // landing one-per-codeword (half-byte correction); the rest DUE.
    EXPECT_GT(counts.dueRate(), 0.2);
    EXPECT_GT(counts.dceRate(), 0.2);
}

TEST(PermanentFaultTest, DegradedPinNeverTurnsSoftErrorsIntoSdcDuet)
{
    // The graceful-degradation scenario that matters: with a pin
    // already stuck, a new single-bit soft error must never escape
    // silently under the detection-oriented DuetECC (two bits in one
    // codeword always give an even, uncorrectable syndrome).
    const auto duet = makeScheme("duet");
    DegradationEvaluator ev(*duet);
    const DegradationCounts counts = ev.faultPlusSoftError(
        PermanentFaultKind::stuckPin, ErrorPattern::oneBit, 2000);
    EXPECT_EQ(counts.sdcRate(), 0.0);
    // Some combinations exceed correction, so DUEs appear; the
    // system degrades loudly rather than corrupting.
    EXPECT_GT(counts.dueRate(), 0.0);
    EXPECT_GT(counts.dceRate(), 0.0);
}

TEST(PermanentFaultTest, DegradedPinUnderTrioHasSmallMiscorrectionTail)
{
    // Trio's aggressive 2b-symbol correction can miscorrect a stuck
    // pin bit plus a soft bit landing in the same codeword when no
    // sibling codeword corrects (the CSC needs two correctors); the
    // tail is small - the correction/SDC trade-off in degraded mode.
    const auto trio = makeScheme("trio");
    DegradationEvaluator ev(*trio);
    const DegradationCounts counts = ev.faultPlusSoftError(
        PermanentFaultKind::stuckPin, ErrorPattern::oneBit, 4000);
    EXPECT_LT(counts.sdcRate(), 0.05);
    EXPECT_GT(counts.dueRate(), 0.5);
}

TEST(PermanentFaultTest, StuckBytePlusBitMostlySafeUnderTrio)
{
    const auto trio = makeScheme("trio");
    DegradationEvaluator ev(*trio);
    const DegradationCounts counts = ev.faultPlusSoftError(
        PermanentFaultKind::stuckByte, ErrorPattern::oneBit, 4000);
    EXPECT_LT(counts.sdcRate(), 0.02);
    // Nearly every combination is flagged rather than silent.
    EXPECT_GT(counts.dueRate() + counts.dceRate(), 0.98);
}

} // namespace
} // namespace gpuecc
