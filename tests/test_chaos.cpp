/** @file Tests for the chaos harness and campaign failure paths. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/interrupt.hpp"
#include "common/status.hpp"
#include "sim/campaign.hpp"
#include "sim/chaos.hpp"

namespace gpuecc {
namespace {

/** Every test leaves the process-global harness disarmed. */
class ChaosTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        sim::clearChaosSpec();
        clearInterrupt();
    }
    void TearDown() override
    {
        sim::clearChaosSpec();
        clearInterrupt();
    }
};

sim::CampaignSpec
smallSpec()
{
    sim::CampaignSpec spec;
    spec.scheme_ids = {"duet", "trio"};
    spec.patterns = {ErrorPattern::oneBit, ErrorPattern::oneBeat};
    spec.samples = 20000;
    spec.chunk = 1024; // many shard tasks
    spec.threads = 2;
    return spec;
}

void
expectSameCells(const sim::CampaignResult& a,
                const sim::CampaignResult& b)
{
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        EXPECT_EQ(a.cells[i].scheme_id, b.cells[i].scheme_id);
        EXPECT_EQ(a.cells[i].pattern, b.cells[i].pattern);
        EXPECT_EQ(a.cells[i].counts.trials, b.cells[i].counts.trials);
        EXPECT_EQ(a.cells[i].counts.dce, b.cells[i].counts.dce);
        EXPECT_EQ(a.cells[i].counts.due, b.cells[i].counts.due);
        EXPECT_EQ(a.cells[i].counts.sdc, b.cells[i].counts.sdc);
    }
}

TEST_F(ChaosTest, ParseFullSpec)
{
    const auto r = sim::parseChaosSpec(
        "task_fault=7,task_fault_count=2,kill_after=40,ckpt_fail=1");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().task_fault, 7);
    EXPECT_EQ(r.value().task_fault_count, 2);
    EXPECT_EQ(r.value().kill_after, 40);
    EXPECT_EQ(r.value().ckpt_fail, 1);
}

TEST_F(ChaosTest, ParseEmptyAndPartialSpecs)
{
    const auto empty = sim::parseChaosSpec("");
    ASSERT_TRUE(empty.ok());
    EXPECT_EQ(empty.value().task_fault, -1);
    EXPECT_EQ(empty.value().kill_after, -1);
    EXPECT_EQ(empty.value().ckpt_fail, 0);

    const auto partial = sim::parseChaosSpec("kill_after=3");
    ASSERT_TRUE(partial.ok());
    EXPECT_EQ(partial.value().kill_after, 3);
    EXPECT_EQ(partial.value().task_fault, -1);
}

TEST_F(ChaosTest, ParseRejectsBadSpecs)
{
    for (const char* bad :
         {"bogus_key=1", "task_fault", "task_fault=xyz",
          "kill_after=", "task_fault=1,oops=2"}) {
        const auto r = sim::parseChaosSpec(bad);
        ASSERT_FALSE(r.ok()) << bad;
        EXPECT_EQ(r.status().code(), ErrorCode::invalidArgument) << bad;
    }
}

TEST_F(ChaosTest, HooksAreInertWhenDisarmed)
{
    EXPECT_FALSE(sim::chaosActive());
    EXPECT_NO_THROW(sim::chaosOnTaskAttempt(0));
    sim::chaosOnTaskDone(1000000);
    EXPECT_FALSE(interruptRequested());
    EXPECT_TRUE(sim::chaosOnCheckpointWrite().ok());
}

TEST_F(ChaosTest, TransientTaskFaultIsRetriedInvisibly)
{
    const sim::CampaignSpec spec = smallSpec();
    const sim::CampaignResult base = sim::CampaignRunner(spec).run();

    sim::ChaosSpec chaos;
    chaos.task_fault = 5;
    chaos.task_fault_count = 1; // first attempt throws, retry succeeds
    sim::setChaosSpec(chaos);
    const sim::CampaignResult r = sim::CampaignRunner(spec).run();

    EXPECT_TRUE(r.errors.empty());
    EXPECT_FALSE(r.interrupted);
    expectSameCells(base, r);
}

TEST_F(ChaosTest, PersistentTaskFaultDropsOnlyThatScheme)
{
    const sim::CampaignSpec spec = smallSpec();

    sim::ChaosSpec chaos;
    chaos.task_fault = 0; // first task belongs to the first scheme
    chaos.task_fault_count = 2; // the retry fails too
    sim::setChaosSpec(chaos);
    const sim::CampaignResult r = sim::CampaignRunner(spec).run();

    EXPECT_FALSE(r.hasScheme("duet"));
    EXPECT_TRUE(r.hasScheme("trio"));
    ASSERT_EQ(r.errors.size(), 1u);
    EXPECT_EQ(r.errors[0].scheme_id, "duet");
    EXPECT_NE(r.errors[0].message.find("unavailable"),
              std::string::npos);

    // The surviving scheme's tallies are untouched by the turbulence.
    sim::clearChaosSpec();
    const sim::CampaignResult base = sim::CampaignRunner(spec).run();
    for (ErrorPattern p : spec.patterns) {
        EXPECT_EQ(r.counts("trio", p).sdc, base.counts("trio", p).sdc);
        EXPECT_EQ(r.counts("trio", p).trials,
                  base.counts("trio", p).trials);
    }
}

TEST_F(ChaosTest, CheckpointWriteFailureDegradesGracefully)
{
    const std::string path =
        ::testing::TempDir() + "gpuecc_chaos_ckpt_fail.json";
    std::remove(path.c_str());

    sim::CampaignSpec spec = smallSpec();
    spec.checkpoint_path = path;
    spec.checkpoint_interval_s = 0; // flush after every task

    sim::ChaosSpec chaos;
    chaos.ckpt_fail = 1000000; // every write fails
    sim::setChaosSpec(chaos);
    const sim::CampaignResult r = sim::CampaignRunner(spec).run();

    // The campaign completes with correct tallies despite never being
    // able to persist progress.
    EXPECT_FALSE(r.interrupted);
    EXPECT_TRUE(r.errors.empty());
    sim::clearChaosSpec();
    const sim::CampaignResult base = sim::CampaignRunner(spec).run();
    expectSameCells(base, r);
    std::remove(path.c_str());
}

TEST_F(ChaosTest, KillPointInterruptsCleanly)
{
    const std::string path =
        ::testing::TempDir() + "gpuecc_chaos_kill.json";
    std::remove(path.c_str());

    sim::CampaignSpec spec = smallSpec();
    spec.checkpoint_path = path;
    spec.checkpoint_interval_s = 0;

    sim::ChaosSpec chaos;
    chaos.kill_after = 3;
    sim::setChaosSpec(chaos);
    const sim::CampaignResult r = sim::CampaignRunner(spec).run();

    EXPECT_TRUE(r.interrupted);
    EXPECT_GT(r.shards, 3u); // it stopped before the end

    // The final flush left a loadable checkpoint behind.
    FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
    std::remove(path.c_str());
}

TEST_F(ChaosTest, RequestInterruptStopsACampaignWithoutCheckpoint)
{
    // An interrupt with no checkpoint path still stops cleanly; the
    // result is just marked partial.
    sim::CampaignSpec spec = smallSpec();
    requestInterrupt();
    const sim::CampaignResult r = sim::CampaignRunner(spec).run();
    EXPECT_TRUE(r.interrupted);
}

} // namespace
} // namespace gpuecc
