/** @file Tests for the gate-level hardware model. */

#include <gtest/gtest.h>

#include "codes/hsiao.hpp"
#include "codes/sec2bec.hpp"
#include "common/rng.hpp"
#include "ecc/registry.hpp"
#include "hwmodel/circuits.hpp"
#include "hwmodel/netlist.hpp"
#include "hwmodel/xor_network.hpp"

namespace gpuecc {
namespace hw {
namespace {

TEST(Netlist, SmallGateAreaAndDelay)
{
    Netlist nl;
    const int a = nl.input("a");
    const int b = nl.input("b");
    const int x = nl.gate(GateKind::xor2, a, b);
    nl.output("x", x);
    EXPECT_EQ(nl.gateCount(), 1);
    EXPECT_DOUBLE_EQ(nl.areaAnd2(), 2.25);
    EXPECT_DOUBLE_EQ(nl.delayUnits(), 1.4);
}

TEST(Netlist, StructuralHashingDeduplicates)
{
    Netlist nl;
    const int a = nl.input("a");
    const int b = nl.input("b");
    const int g1 = nl.gate(GateKind::and2, a, b);
    const int g2 = nl.gate(GateKind::and2, b, a); // commuted
    EXPECT_EQ(g1, g2);
    EXPECT_EQ(nl.gateCount(), 1);
    const int g3 = nl.gate(GateKind::or2, a, b);
    EXPECT_NE(g3, g1);
}

TEST(Netlist, TreesAreLogDepth)
{
    Netlist nl;
    std::vector<int> ins;
    for (int i = 0; i < 32; ++i)
        ins.push_back(nl.input("i"));
    nl.output("x", nl.xorTree(ins));
    EXPECT_EQ(nl.gateCount(), 31);
    EXPECT_DOUBLE_EQ(nl.delayUnits(), 5 * 1.4); // ceil(log2 32) levels
}

TEST(Netlist, EvaluateBasicGates)
{
    Netlist nl;
    const int a = nl.input("a");
    const int b = nl.input("b");
    nl.output("and", nl.gate(GateKind::and2, a, b));
    nl.output("xor", nl.gate(GateKind::xor2, a, b));
    nl.output("not", nl.notOf(a));
    nl.output("mux", nl.gate(GateKind::mux2, a, b, nl.constant(true)));
    const auto v = nl.evaluate({true, false});
    EXPECT_EQ(v, (std::vector<bool>{false, true, false, true}));
}

TEST(XorNetwork, SharedAndUnsharedComputeSameFunctions)
{
    Rng rng(1);
    // Random 8-output XOR system over 24 inputs.
    std::vector<std::vector<int>> term_indices(8);
    for (auto& t : term_indices) {
        for (int i = 0; i < 24; ++i) {
            if (rng.nextBool(0.5))
                t.push_back(i);
        }
    }
    auto build = [&](bool share) {
        auto nl = std::make_unique<Netlist>();
        std::vector<int> ins;
        for (int i = 0; i < 24; ++i)
            ins.push_back(nl->input("i"));
        std::vector<std::vector<int>> terms;
        for (const auto& t : term_indices) {
            std::vector<int> nodes;
            for (int i : t)
                nodes.push_back(ins[i]);
            terms.push_back(nodes);
        }
        for (int out : synthesizeXorNetwork(*nl, terms, share))
            nl->output("o", out);
        return nl;
    };
    const auto flat = build(false);
    const auto shared = build(true);
    EXPECT_LE(shared->gateCount(), flat->gateCount());

    for (int trial = 0; trial < 100; ++trial) {
        std::vector<bool> in(24);
        for (int i = 0; i < 24; ++i)
            in[i] = rng.nextBool(0.5);
        EXPECT_EQ(flat->evaluate(in), shared->evaluate(in));
    }
}

TEST(Circuits, EncoderCircuitMatchesSoftwareEncoder)
{
    Rng rng(2);
    for (const char* id : {"ni-secded", "i-secded", "ni-sec2bec",
                           "i-ssc", "ssc-dsd+"}) {
        const auto scheme = makeScheme(id);
        for (bool share : {false, true}) {
            const Netlist nl = buildEntryEncoder(*scheme, share);
            const auto probed = probeEncoderTerms(*scheme);
            ASSERT_EQ(static_cast<std::size_t>(nl.outputCount()),
                      probed.size());
            for (int trial = 0; trial < 10; ++trial) {
                EntryData data{rng.next64(), rng.next64(), rng.next64(),
                               rng.next64()};
                const Bits288 encoded = scheme->encode(data);
                std::vector<bool> in(256);
                for (int i = 0; i < 256; ++i)
                    in[i] = (data[i / 64] >> (i % 64)) & 1;
                const auto out = nl.evaluate(in);
                for (std::size_t k = 0; k < probed.size(); ++k) {
                    ASSERT_EQ(out[k],
                              encoded.get(probed[k].first) == 1)
                        << id << " output " << k;
                }
            }
        }
    }
}

TEST(Circuits, BinaryDecoderCircuitMatchesSoftwareDecoder)
{
    // Gate-level DuetECC and TrioECC decoders against the library
    // decode path, over random few-bit error masks.
    struct Case
    {
        const char* id;
        bool sec2bec;
        bool csc;
    };
    for (const Case c : {Case{"i-secded", false, false},
                         Case{"duet", false, true},
                         Case{"trio", true, true}}) {
        const auto scheme = makeScheme(c.id);
        const Code72 code(
            c.sec2bec ? sec2becInterleavedMatrix() : hsiao7264Matrix(),
            Code72::stride4Pairs());
        const Netlist nl =
            buildBinaryDecoder(code, c.sec2bec, true, c.csc, true);
        Rng rng(3);
        for (int trial = 0; trial < 200; ++trial) {
            EntryData data{rng.next64(), rng.next64(), rng.next64(),
                           rng.next64()};
            Bits288 received = scheme->encode(data);
            const int nbits = static_cast<int>(rng.nextBounded(5));
            for (int i = 0; i < nbits; ++i)
                received.flip(static_cast<int>(rng.nextBounded(288)));

            const EntryDecode sw = scheme->decode(received);

            std::vector<bool> in(288);
            for (int i = 0; i < 288; ++i)
                in[i] = received.get(i);
            const auto out = nl.evaluate(in);
            // Outputs: 64 data bits per codeword in order, then due.
            const bool hw_due = out[nl.outputCount() - 1];
            ASSERT_EQ(hw_due,
                      sw.status == EntryDecode::Status::due)
                << c.id << " trial " << trial;
            if (!hw_due) {
                for (int w = 0; w < 4; ++w) {
                    for (int j = 0; j < 64; ++j) {
                        ASSERT_EQ(out[w * 64 + j],
                                  ((sw.data[w] >> j) & 1) == 1)
                            << c.id << " word " << w << " bit " << j;
                    }
                }
            }
        }
    }
}

TEST(Circuits, Table3ShapeMatchesPaper)
{
    const auto rows = table3Reports();
    ASSERT_FALSE(rows.empty());

    auto find = [&rows](const std::string& name,
                        const std::string& point) -> const
        SynthesisReport& {
        for (const auto& r : rows) {
            if (r.circuit == name && r.design_point == point)
                return r;
        }
        ADD_FAILURE() << "missing row " << name << " " << point;
        static SynthesisReport dummy{};
        return dummy;
    };

    const auto& enc_base = find("Enc SEC-DED (baseline)", "Perf.");
    const auto& dec_base = find("Dec SEC-DED (baseline)", "Eff.");
    // Calibration anchor: baseline encoder at ~0.09 ns and roughly
    // the paper's 1176-AND2 scale.
    EXPECT_NEAR(enc_base.delay_ns, 0.09, 0.01);
    EXPECT_GT(enc_base.area_and2, 800);
    EXPECT_LT(enc_base.area_and2, 2500);
    EXPECT_GT(dec_base.area_and2, 1500);
    EXPECT_LT(dec_base.area_and2, 5000);

    // Ordering claims from the paper: Duet/Trio are modest additions;
    // the symbol decoders are larger; SSC-DSD+ is the largest and
    // slowest decoder.
    const auto& duet = find("Dec DuetECC", "Eff.");
    const auto& trio = find("Dec TrioECC", "Eff.");
    const auto& ssc = find("Dec I:SSC", "Eff.");
    const auto& dsd = find("Dec SSC-DSD+", "Eff.");
    EXPECT_GT(duet.area_and2, dec_base.area_and2);
    EXPECT_GT(trio.area_and2, duet.area_and2);
    EXPECT_GT(dsd.area_and2, trio.area_and2);
    EXPECT_GT(dsd.area_and2, ssc.area_and2);
    EXPECT_GT(dsd.delay_ns, dec_base.delay_ns);

    // Interleaving itself is wires-only: same cost as the baseline.
    const auto& i_secded = find("Dec I:SEC-DED", "Perf.");
    const auto& base_perf = find("Dec SEC-DED (baseline)", "Perf.");
    EXPECT_NEAR(i_secded.area_and2, base_perf.area_and2,
                base_perf.area_and2 * 0.02);

    // Perf. points are never slower than Eff. points.
    for (const char* name :
         {"Dec SEC-DED (baseline)", "Dec DuetECC", "Dec TrioECC",
          "Dec I:SSC", "Dec SSC-DSD+"}) {
        EXPECT_LE(find(name, "Perf.").delay_ns,
                  find(name, "Eff.").delay_ns + 1e-9)
            << name;
        EXPECT_GE(find(name, "Perf.").area_and2,
                  find(name, "Eff.").area_and2 * 0.95)
            << name;
    }
}

TEST(Circuits, LutCostHeuristicAndSimulation)
{
    Netlist nl;
    std::vector<int> ins;
    for (int i = 0; i < 8; ++i)
        ins.push_back(nl.input("i" + std::to_string(i)));
    const auto rom = nl.lut(ins, 8, "square",
                            [](std::uint64_t v) { return (v * v) & 0xFF; });
    ASSERT_EQ(rom.size(), 8u);
    for (int b = 0; b < 8; ++b)
        nl.output("r" + std::to_string(b), rom[b]);
    EXPECT_DOUBLE_EQ(nl.areaAnd2(), 8 * 256 / 4.0);
    EXPECT_DOUBLE_EQ(nl.delayUnits(), 4.0 + 4.0);

    // The attached evaluator makes the ROM simulatable.
    std::vector<bool> in(8, false);
    in[0] = in[2] = true; // value 5 -> 25
    const auto out = nl.evaluate(in);
    unsigned v = 0;
    for (int b = 0; b < 8; ++b)
        v |= static_cast<unsigned>(out[b]) << b;
    EXPECT_EQ(v, 25u);
}

namespace {

/** Drive a decoder netlist with a received entry; returns
 *  (due, decoded data). Output convention: data bits then due. */
std::pair<bool, EntryData>
runDecoder(const Netlist& nl, const Bits288& received)
{
    std::vector<bool> in(288);
    for (int i = 0; i < 288; ++i)
        in[i] = received.get(i);
    const auto out = nl.evaluate(in);
    EntryData data{};
    for (int i = 0; i < 256; ++i) {
        if (out[i])
            data[i / 64] |= std::uint64_t{1} << (i % 64);
    }
    return {out[nl.outputCount() - 1], data};
}

} // namespace

TEST(Circuits, SscDecoderCircuitMatchesSoftwareDecoder)
{
    // The one-shot Reed-Solomon decoder netlist (dlog ROMs + EAC
    // subtractors + one-hot correction) against decodeSscOneShot
    // through the I:SSC scheme, over random few-symbol errors.
    const auto scheme = makeScheme("i-ssc");
    const Netlist nl = buildSscDecoder(false, true);
    Rng rng(11);
    for (int trial = 0; trial < 300; ++trial) {
        EntryData data{rng.next64(), rng.next64(), rng.next64(),
                       rng.next64()};
        Bits288 received = scheme->encode(data);
        const int nbits = static_cast<int>(rng.nextBounded(4));
        for (int i = 0; i < nbits; ++i)
            received.flip(static_cast<int>(rng.nextBounded(288)));

        const EntryDecode sw = scheme->decode(received);
        const auto [hw_due, hw_data] = runDecoder(nl, received);
        ASSERT_EQ(hw_due, sw.status == EntryDecode::Status::due)
            << "trial " << trial;
        if (!hw_due)
            ASSERT_EQ(hw_data, sw.data) << "trial " << trial;
    }
}

TEST(Circuits, SscDecoderCircuitCorrectsWholeBytes)
{
    const auto scheme = makeScheme("i-ssc");
    const Netlist nl = buildSscDecoder(false, true);
    Rng rng(12);
    const EntryData data{rng.next64(), rng.next64(), rng.next64(),
                         rng.next64()};
    const Bits288 golden = scheme->encode(data);
    for (int byte = 0; byte < 36; ++byte) {
        Bits288 received = golden;
        for (int t = 0; t < 8; ++t)
            received.flip(8 * byte + t);
        const auto [hw_due, hw_data] = runDecoder(nl, received);
        ASSERT_FALSE(hw_due) << "byte " << byte;
        ASSERT_EQ(hw_data, data) << "byte " << byte;
    }
}

TEST(Circuits, DsdPlusDecoderCircuitMatchesSoftwareDecoder)
{
    const auto scheme = makeScheme("ssc-dsd+");
    const Netlist nl = buildDsdPlusDecoder(true);
    Rng rng(13);
    for (int trial = 0; trial < 300; ++trial) {
        EntryData data{rng.next64(), rng.next64(), rng.next64(),
                       rng.next64()};
        Bits288 received = scheme->encode(data);
        const int nbits = static_cast<int>(rng.nextBounded(4));
        for (int i = 0; i < nbits; ++i)
            received.flip(static_cast<int>(rng.nextBounded(288)));

        const EntryDecode sw = scheme->decode(received);
        const auto [hw_due, hw_data] = runDecoder(nl, received);
        ASSERT_EQ(hw_due, sw.status == EntryDecode::Status::due)
            << "trial " << trial;
        if (!hw_due)
            ASSERT_EQ(hw_data, sw.data) << "trial " << trial;
    }
}

} // namespace
} // namespace hw
} // namespace gpuecc
