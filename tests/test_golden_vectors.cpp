/**
 * @file
 * Golden decode vectors for every registered scheme.
 *
 * Each row of the fixture is one (data, injected physical bits,
 * expected outcome) triple, generated from the library's behavior at
 * the time the compiled codec was introduced and committed verbatim.
 * The suite decodes each vector under BOTH codec backends, so any
 * future change to a parity-check matrix, layout permutation, or
 * decode policy that silently alters an outcome fails here — the
 * per-scheme expectations are frozen, not recomputed.
 *
 * Regenerate (after an *intentional* behavior change) by re-running
 * the decode loop below and updating the rows; the fixture includes
 * miscorrection rows (e.g. ni-secded {3,17,33}) whose expected data
 * differs from the encoded data on purpose.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/codec_mode.hpp"
#include "ecc/registry.hpp"
#include "ecc/rs_scheme.hpp"

namespace gpuecc {
namespace {

using Status = EntryDecode::Status;

/** The data word every fixture entry protects. */
constexpr EntryData kData = {0x0123456789ABCDEFull,
                             0xFEDCBA9876543210ull,
                             0xA5A5A5A5A5A5A5A5ull,
                             0x0F0F0F0F00FF00FFull};

struct GoldenVector
{
    const char* scheme_id;
    std::vector<int> flipped_bits; //!< physical positions, 0..287
    Status status;
    EntryData data; //!< expected decode; ignored when status == due
};

const std::vector<GoldenVector>&
goldenVectors()
{
    static const std::vector<GoldenVector> vectors = {
    {"ni-secded", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-secded", {5}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-secded", {71}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-secded", {287}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-secded", {10, 200}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-secded", {64, 65}, Status::due, {}},
    {"ni-secded", {24, 25, 26, 27, 28, 29, 30, 31}, Status::due, {}},
    {"ni-secded", {7, 79, 151, 223}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-secded", {0, 97, 195, 286}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-secded", {3, 17, 33}, Status::corrected,
     {0x0123456589A9DDE7ull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-secded", {12, 23, 41, 58, 66}, Status::due, {}},
    {"i-secded", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-secded", {5}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-secded", {71}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-secded", {287}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-secded", {10, 200}, Status::due, {}},
    {"i-secded", {64, 65}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-secded", {24, 25, 26, 27, 28, 29, 30, 31}, Status::due, {}},
    {"i-secded", {7, 79, 151, 223}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-secded", {0, 97, 195, 286}, Status::due, {}},
    {"i-secded", {3, 17, 33}, Status::due, {}},
    {"i-secded", {12, 23, 41, 58, 66}, Status::due, {}},
    {"duet", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"duet", {5}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"duet", {71}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"duet", {287}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"duet", {10, 200}, Status::due, {}},
    {"duet", {64, 65}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"duet", {24, 25, 26, 27, 28, 29, 30, 31}, Status::due, {}},
    {"duet", {7, 79, 151, 223}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"duet", {0, 97, 195, 286}, Status::due, {}},
    {"duet", {3, 17, 33}, Status::due, {}},
    {"duet", {12, 23, 41, 58, 66}, Status::due, {}},
    {"ni-sec2bec", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-sec2bec", {5}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-sec2bec", {71}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-sec2bec", {287}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-sec2bec", {10, 200}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-sec2bec", {64, 65}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-sec2bec", {24, 25, 26, 27, 28, 29, 30, 31}, Status::due, {}},
    {"ni-sec2bec", {7, 79, 151, 223}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-sec2bec", {0, 97, 195, 286}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-sec2bec", {3, 17, 33}, Status::corrected,
     {0x0123456189A9CDE7ull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-sec2bec", {12, 23, 41, 58, 66}, Status::corrected,
     {0x07234767892BDDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-sec2bec", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-sec2bec", {5}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-sec2bec", {71}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-sec2bec", {287}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-sec2bec", {10, 200}, Status::due, {}},
    {"i-sec2bec", {64, 65}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-sec2bec", {24, 25, 26, 27, 28, 29, 30, 31}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-sec2bec", {7, 79, 151, 223}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-sec2bec", {0, 97, 195, 286}, Status::due, {}},
    {"i-sec2bec", {3, 17, 33}, Status::due, {}},
    {"i-sec2bec", {12, 23, 41, 58, 66}, Status::due, {}},
    {"trio", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"trio", {5}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"trio", {71}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"trio", {287}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"trio", {10, 200}, Status::due, {}},
    {"trio", {64, 65}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"trio", {24, 25, 26, 27, 28, 29, 30, 31}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"trio", {7, 79, 151, 223}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"trio", {0, 97, 195, 286}, Status::due, {}},
    {"trio", {3, 17, 33}, Status::due, {}},
    {"trio", {12, 23, 41, 58, 66}, Status::due, {}},
    {"i-ssc", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc", {5}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc", {71}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc", {287}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc", {10, 200}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc", {64, 65}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc", {24, 25, 26, 27, 28, 29, 30, 31}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc", {7, 79, 151, 223}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc", {0, 97, 195, 286}, Status::due, {}},
    {"i-ssc", {3, 17, 33}, Status::corrected,
     {0x0123456789A9CDE5ull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc", {12, 23, 41, 58, 66}, Status::due, {}},
    {"i-ssc-csc", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc-csc", {5}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc-csc", {71}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc-csc", {287}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc-csc", {10, 200}, Status::due, {}},
    {"i-ssc-csc", {64, 65}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc-csc", {24, 25, 26, 27, 28, 29, 30, 31}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc-csc", {7, 79, 151, 223}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc-csc", {0, 97, 195, 286}, Status::due, {}},
    {"i-ssc-csc", {3, 17, 33}, Status::corrected,
     {0x0123456789A9CDE5ull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc-csc", {12, 23, 41, 58, 66}, Status::due, {}},
    {"ssc-dsd+", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-dsd+", {5}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-dsd+", {71}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-dsd+", {287}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-dsd+", {10, 200}, Status::due, {}},
    {"ssc-dsd+", {64, 65}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-dsd+", {24, 25, 26, 27, 28, 29, 30, 31}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-dsd+", {7, 79, 151, 223}, Status::due, {}},
    {"ssc-dsd+", {0, 97, 195, 286}, Status::due, {}},
    {"ssc-dsd+", {3, 17, 33}, Status::due, {}},
    {"ssc-dsd+", {12, 23, 41, 58, 66}, Status::due, {}},
    {"dsc", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"dsc", {5}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"dsc", {71}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"dsc", {287}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"dsc", {10, 200}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"dsc", {64, 65}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"dsc", {24, 25, 26, 27, 28, 29, 30, 31}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"dsc", {7, 79, 151, 223}, Status::due, {}},
    {"dsc", {0, 97, 195, 286}, Status::due, {}},
    {"dsc", {3, 17, 33}, Status::due, {}},
    {"dsc", {12, 23, 41, 58, 66}, Status::due, {}},
    {"ssc-tsd", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-tsd", {5}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-tsd", {71}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-tsd", {287}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-tsd", {10, 200}, Status::due, {}},
    {"ssc-tsd", {64, 65}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-tsd", {24, 25, 26, 27, 28, 29, 30, 31}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-tsd", {7, 79, 151, 223}, Status::due, {}},
    {"ssc-tsd", {0, 97, 195, 286}, Status::due, {}},
    {"ssc-tsd", {3, 17, 33}, Status::due, {}},
    {"ssc-tsd", {12, 23, 41, 58, 66}, Status::due, {}},
    };
    return vectors;
}

/**
 * Symbol-level golden vectors for the Reed-Solomon schemes: one
 * (symbol, magnitude) injection list per row, applied through each
 * organization's physical layout, with the decode outcome frozen at
 * the time the batched SIMD RS path was introduced. The rows pin the
 * outcomes across *both* codec backends and every runtime-dispatched
 * gf256 ISA (AVX2 vs SSSE3 vs NEON vs scalar must all reproduce them
 * bit-identically — the dispatch layer may never change results).
 * The final row of each scheme block is a deliberate miscorrection
 * (a low-weight codeword difference plus one extra symbol error):
 * the frozen *wrong* data is part of the contract.
 */
struct RsSymbolVector
{
    const char* scheme_id;
    std::vector<std::pair<int, std::uint8_t>> symbol_errors;
    Status status;
    EntryData data; //!< expected decode; ignored when status == due
};

const std::vector<RsSymbolVector>&
rsSymbolVectors()
{
    static const std::vector<RsSymbolVector> vectors = {
    {"i-ssc", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc", {{0, 0x01}}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc", {{7, 0x53}}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc", {{35, 0xFF}}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc", {{3, 0xAA}, {20, 0x11}}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc", {{1, 0x07}, {18, 0x80}}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc", {{5, 0x01}, {6, 0x02}, {30, 0x80}}, Status::due, {}},
    {"i-ssc", {{2, 0xFF}, {19, 0xFF}, {27, 0x0F}, {33, 0xF0}}, Status::due, {}},
    {"i-ssc", {{0, 0x6E}, {1, 0x52}, {5, 0x3C}, {12, 0x5A}}, Status::corrected,
     {0x01234567B5ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc-csc", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc-csc", {{0, 0x01}}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc-csc", {{7, 0x53}}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc-csc", {{35, 0xFF}}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc-csc", {{3, 0xAA}, {20, 0x11}}, Status::due, {}},
    {"i-ssc-csc", {{1, 0x07}, {18, 0x80}}, Status::due, {}},
    {"i-ssc-csc", {{5, 0x01}, {6, 0x02}, {30, 0x80}}, Status::due, {}},
    {"i-ssc-csc", {{2, 0xFF}, {19, 0xFF}, {27, 0x0F}, {33, 0xF0}}, Status::due, {}},
    {"i-ssc-csc", {{0, 0x6E}, {1, 0x52}, {5, 0x3C}, {12, 0x5A}}, Status::corrected,
     {0x01234567B5ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-dsd+", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-dsd+", {{0, 0x01}}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-dsd+", {{7, 0x53}}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-dsd+", {{35, 0xFF}}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-dsd+", {{3, 0xAA}, {20, 0x11}}, Status::due, {}},
    {"ssc-dsd+", {{1, 0x07}, {18, 0x80}}, Status::due, {}},
    {"ssc-dsd+", {{5, 0x01}, {6, 0x02}, {30, 0x80}}, Status::due, {}},
    {"ssc-dsd+", {{2, 0xFF}, {19, 0xFF}, {27, 0x0F}, {33, 0xF0}}, Status::due, {}},
    {"ssc-dsd+", {{0, 0xC7}, {1, 0x91}, {2, 0x47}, {3, 0x2D}, {9, 0x3C}, {25, 0x5A}}, Status::corrected,
     {0x0123796789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"dsc", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"dsc", {{0, 0x01}}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"dsc", {{7, 0x53}}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"dsc", {{35, 0xFF}}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"dsc", {{3, 0xAA}, {20, 0x11}}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"dsc", {{1, 0x07}, {18, 0x80}}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"dsc", {{5, 0x01}, {6, 0x02}, {30, 0x80}}, Status::due, {}},
    {"dsc", {{2, 0xFF}, {19, 0xFF}, {27, 0x0F}, {33, 0xF0}}, Status::due, {}},
    {"dsc", {{0, 0xC7}, {1, 0x91}, {2, 0x47}, {3, 0x2D}, {9, 0x3C}, {25, 0x5A}}, Status::corrected,
     {0x0123796789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-tsd", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-tsd", {{0, 0x01}}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-tsd", {{7, 0x53}}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-tsd", {{35, 0xFF}}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-tsd", {{3, 0xAA}, {20, 0x11}}, Status::due, {}},
    {"ssc-tsd", {{1, 0x07}, {18, 0x80}}, Status::due, {}},
    {"ssc-tsd", {{5, 0x01}, {6, 0x02}, {30, 0x80}}, Status::due, {}},
    {"ssc-tsd", {{2, 0xFF}, {19, 0xFF}, {27, 0x0F}, {33, 0xF0}}, Status::due, {}},
    {"ssc-tsd", {{0, 0xC7}, {1, 0x91}, {2, 0x47}, {3, 0x2D}, {9, 0x3C}, {25, 0x5A}}, Status::corrected,
     {0x0123796789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    };
    return vectors;
}

/** Apply one symbol-level injection through the physical layout. */
Bits288
applySymbolErrors(const std::string& id, const Bits288& golden,
                  const std::vector<std::pair<int, std::uint8_t>>& inj)
{
    const bool interleaved = id.rfind("i-ssc", 0) == 0;
    Bits288 r = golden;
    for (const auto& [sym, mag] : inj) {
        if (interleaved) {
            const int cw = sym / 18;
            const int pos = sym % 18;
            for (int t = 0; t < 8; ++t) {
                if ((mag >> t) & 1) {
                    const int p =
                        InterleavedSscScheme::physicalBit(cw, pos, t);
                    r.set(p, !r.get(p));
                }
            }
        } else {
            const int base = 8 * Rs3632Scheme::physicalByteOf(sym);
            for (int t = 0; t < 8; ++t) {
                if ((mag >> t) & 1)
                    r.set(base + t, !r.get(base + t));
            }
        }
    }
    return r;
}

class GoldenVectors
    : public ::testing::TestWithParam<CodecBackend>
{
  protected:
    GoldenVectors() : saved_(codecBackend())
    {
        setCodecBackend(GetParam());
    }
    ~GoldenVectors() override { setCodecBackend(saved_); }

  private:
    CodecBackend saved_;
};

TEST_P(GoldenVectors, AllVectorsDecodeAsCommitted)
{
    std::string current_id;
    std::shared_ptr<EntryScheme> scheme;
    Bits288 golden;
    std::size_t covered = 0;
    for (const GoldenVector& v : goldenVectors()) {
        if (v.scheme_id != current_id) {
            current_id = v.scheme_id;
            scheme = makeScheme(current_id);
            golden = scheme->encode(kData);
            ++covered;
        }
        Bits288 received = golden;
        for (int pos : v.flipped_bits)
            received.set(pos, !received.get(pos));
        const EntryDecode d = scheme->decode(received);
        SCOPED_TRACE(std::string(v.scheme_id) + " flips=" +
                     std::to_string(v.flipped_bits.size()));
        EXPECT_EQ(d.status, v.status);
        if (v.status != Status::due) {
            EXPECT_EQ(d.data, v.data);
        }
    }
    // One block per registered scheme; catches fixture truncation.
    EXPECT_EQ(covered, schemeIds().size());
}

TEST_P(GoldenVectors, RsSymbolVectorsDecodeAsCommitted)
{
    std::string current_id;
    std::shared_ptr<EntryScheme> scheme;
    Bits288 golden;
    std::size_t covered = 0;
    for (const RsSymbolVector& v : rsSymbolVectors()) {
        if (v.scheme_id != current_id) {
            current_id = v.scheme_id;
            scheme = makeScheme(current_id);
            golden = scheme->encode(kData);
            ++covered;
        }
        const Bits288 received =
            applySymbolErrors(current_id, golden, v.symbol_errors);
        const EntryDecode d = scheme->decode(received);
        SCOPED_TRACE(std::string(v.scheme_id) + " symbols=" +
                     std::to_string(v.symbol_errors.size()));
        EXPECT_EQ(d.status, v.status);
        if (v.status != Status::due) {
            EXPECT_EQ(d.data, v.data);
        }
    }
    // One block per RS organization; catches fixture truncation.
    EXPECT_EQ(covered, 5u);
}

TEST_P(GoldenVectors, RsSymbolVectorsBatchDecodeAsCommitted)
{
    // Every row of one scheme block through a single decodeBatch
    // call: the SoA tile path — under whichever gf256 ISA the host
    // dispatched — must land on the same frozen outcomes as the
    // element-wise decode above. Rows are replicated to overflow one
    // 256-entry tile so the partial-tile path is pinned too.
    std::string current_id;
    std::shared_ptr<EntryScheme> scheme;
    Bits288 golden;
    std::vector<const RsSymbolVector*> block;
    const auto checkBlock = [&]() {
        if (block.empty())
            return;
        constexpr std::size_t kReplicas = 40; // 9 rows -> 360 entries
        std::vector<Bits288> received;
        for (std::size_t rep = 0; rep < kReplicas; ++rep)
            for (const RsSymbolVector* v : block)
                received.push_back(applySymbolErrors(
                    current_id, golden, v->symbol_errors));
        std::vector<EntryDecode> out(received.size());
        scheme->decodeBatch(received.data(), out.data(),
                            received.size());
        for (std::size_t i = 0; i < received.size(); ++i) {
            const RsSymbolVector& v = *block[i % block.size()];
            SCOPED_TRACE(std::string(current_id) + " entry=" +
                         std::to_string(i));
            EXPECT_EQ(out[i].status, v.status);
            if (v.status != Status::due) {
                EXPECT_EQ(out[i].data, v.data);
            }
        }
    };
    for (const RsSymbolVector& v : rsSymbolVectors()) {
        if (v.scheme_id != current_id) {
            checkBlock();
            block.clear();
            current_id = v.scheme_id;
            scheme = makeScheme(current_id);
            golden = scheme->encode(kData);
        }
        block.push_back(&v);
    }
    checkBlock();
}

INSTANTIATE_TEST_SUITE_P(Backends, GoldenVectors,
                         ::testing::Values(CodecBackend::compiled,
                                           CodecBackend::reference),
                         [](const auto& info) {
                             return info.param ==
                                            CodecBackend::compiled
                                        ? "compiled"
                                        : "reference";
                         });

} // namespace
} // namespace gpuecc
