/**
 * @file
 * Golden decode vectors for every registered scheme.
 *
 * Each row of the fixture is one (data, injected physical bits,
 * expected outcome) triple, generated from the library's behavior at
 * the time the compiled codec was introduced and committed verbatim.
 * The suite decodes each vector under BOTH codec backends, so any
 * future change to a parity-check matrix, layout permutation, or
 * decode policy that silently alters an outcome fails here — the
 * per-scheme expectations are frozen, not recomputed.
 *
 * Regenerate (after an *intentional* behavior change) by re-running
 * the decode loop below and updating the rows; the fixture includes
 * miscorrection rows (e.g. ni-secded {3,17,33}) whose expected data
 * differs from the encoded data on purpose.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/codec_mode.hpp"
#include "ecc/registry.hpp"

namespace gpuecc {
namespace {

using Status = EntryDecode::Status;

/** The data word every fixture entry protects. */
constexpr EntryData kData = {0x0123456789ABCDEFull,
                             0xFEDCBA9876543210ull,
                             0xA5A5A5A5A5A5A5A5ull,
                             0x0F0F0F0F00FF00FFull};

struct GoldenVector
{
    const char* scheme_id;
    std::vector<int> flipped_bits; //!< physical positions, 0..287
    Status status;
    EntryData data; //!< expected decode; ignored when status == due
};

const std::vector<GoldenVector>&
goldenVectors()
{
    static const std::vector<GoldenVector> vectors = {
    {"ni-secded", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-secded", {5}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-secded", {71}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-secded", {287}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-secded", {10, 200}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-secded", {64, 65}, Status::due, {}},
    {"ni-secded", {24, 25, 26, 27, 28, 29, 30, 31}, Status::due, {}},
    {"ni-secded", {7, 79, 151, 223}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-secded", {0, 97, 195, 286}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-secded", {3, 17, 33}, Status::corrected,
     {0x0123456589A9DDE7ull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-secded", {12, 23, 41, 58, 66}, Status::due, {}},
    {"i-secded", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-secded", {5}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-secded", {71}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-secded", {287}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-secded", {10, 200}, Status::due, {}},
    {"i-secded", {64, 65}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-secded", {24, 25, 26, 27, 28, 29, 30, 31}, Status::due, {}},
    {"i-secded", {7, 79, 151, 223}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-secded", {0, 97, 195, 286}, Status::due, {}},
    {"i-secded", {3, 17, 33}, Status::due, {}},
    {"i-secded", {12, 23, 41, 58, 66}, Status::due, {}},
    {"duet", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"duet", {5}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"duet", {71}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"duet", {287}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"duet", {10, 200}, Status::due, {}},
    {"duet", {64, 65}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"duet", {24, 25, 26, 27, 28, 29, 30, 31}, Status::due, {}},
    {"duet", {7, 79, 151, 223}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"duet", {0, 97, 195, 286}, Status::due, {}},
    {"duet", {3, 17, 33}, Status::due, {}},
    {"duet", {12, 23, 41, 58, 66}, Status::due, {}},
    {"ni-sec2bec", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-sec2bec", {5}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-sec2bec", {71}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-sec2bec", {287}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-sec2bec", {10, 200}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-sec2bec", {64, 65}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-sec2bec", {24, 25, 26, 27, 28, 29, 30, 31}, Status::due, {}},
    {"ni-sec2bec", {7, 79, 151, 223}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-sec2bec", {0, 97, 195, 286}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-sec2bec", {3, 17, 33}, Status::corrected,
     {0x0123456189A9CDE7ull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ni-sec2bec", {12, 23, 41, 58, 66}, Status::corrected,
     {0x07234767892BDDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-sec2bec", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-sec2bec", {5}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-sec2bec", {71}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-sec2bec", {287}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-sec2bec", {10, 200}, Status::due, {}},
    {"i-sec2bec", {64, 65}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-sec2bec", {24, 25, 26, 27, 28, 29, 30, 31}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-sec2bec", {7, 79, 151, 223}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-sec2bec", {0, 97, 195, 286}, Status::due, {}},
    {"i-sec2bec", {3, 17, 33}, Status::due, {}},
    {"i-sec2bec", {12, 23, 41, 58, 66}, Status::due, {}},
    {"trio", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"trio", {5}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"trio", {71}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"trio", {287}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"trio", {10, 200}, Status::due, {}},
    {"trio", {64, 65}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"trio", {24, 25, 26, 27, 28, 29, 30, 31}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"trio", {7, 79, 151, 223}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"trio", {0, 97, 195, 286}, Status::due, {}},
    {"trio", {3, 17, 33}, Status::due, {}},
    {"trio", {12, 23, 41, 58, 66}, Status::due, {}},
    {"i-ssc", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc", {5}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc", {71}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc", {287}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc", {10, 200}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc", {64, 65}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc", {24, 25, 26, 27, 28, 29, 30, 31}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc", {7, 79, 151, 223}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc", {0, 97, 195, 286}, Status::due, {}},
    {"i-ssc", {3, 17, 33}, Status::corrected,
     {0x0123456789A9CDE5ull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc", {12, 23, 41, 58, 66}, Status::due, {}},
    {"i-ssc-csc", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc-csc", {5}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc-csc", {71}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc-csc", {287}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc-csc", {10, 200}, Status::due, {}},
    {"i-ssc-csc", {64, 65}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc-csc", {24, 25, 26, 27, 28, 29, 30, 31}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc-csc", {7, 79, 151, 223}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc-csc", {0, 97, 195, 286}, Status::due, {}},
    {"i-ssc-csc", {3, 17, 33}, Status::corrected,
     {0x0123456789A9CDE5ull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"i-ssc-csc", {12, 23, 41, 58, 66}, Status::due, {}},
    {"ssc-dsd+", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-dsd+", {5}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-dsd+", {71}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-dsd+", {287}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-dsd+", {10, 200}, Status::due, {}},
    {"ssc-dsd+", {64, 65}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-dsd+", {24, 25, 26, 27, 28, 29, 30, 31}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-dsd+", {7, 79, 151, 223}, Status::due, {}},
    {"ssc-dsd+", {0, 97, 195, 286}, Status::due, {}},
    {"ssc-dsd+", {3, 17, 33}, Status::due, {}},
    {"ssc-dsd+", {12, 23, 41, 58, 66}, Status::due, {}},
    {"dsc", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"dsc", {5}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"dsc", {71}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"dsc", {287}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"dsc", {10, 200}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"dsc", {64, 65}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"dsc", {24, 25, 26, 27, 28, 29, 30, 31}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"dsc", {7, 79, 151, 223}, Status::due, {}},
    {"dsc", {0, 97, 195, 286}, Status::due, {}},
    {"dsc", {3, 17, 33}, Status::due, {}},
    {"dsc", {12, 23, 41, 58, 66}, Status::due, {}},
    {"ssc-tsd", {}, Status::clean,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-tsd", {5}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-tsd", {71}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-tsd", {287}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-tsd", {10, 200}, Status::due, {}},
    {"ssc-tsd", {64, 65}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-tsd", {24, 25, 26, 27, 28, 29, 30, 31}, Status::corrected,
     {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull, 0xA5A5A5A5A5A5A5A5ull, 0x0F0F0F0F00FF00FFull}},
    {"ssc-tsd", {7, 79, 151, 223}, Status::due, {}},
    {"ssc-tsd", {0, 97, 195, 286}, Status::due, {}},
    {"ssc-tsd", {3, 17, 33}, Status::due, {}},
    {"ssc-tsd", {12, 23, 41, 58, 66}, Status::due, {}},
    };
    return vectors;
}

class GoldenVectors
    : public ::testing::TestWithParam<CodecBackend>
{
  protected:
    GoldenVectors() : saved_(codecBackend())
    {
        setCodecBackend(GetParam());
    }
    ~GoldenVectors() override { setCodecBackend(saved_); }

  private:
    CodecBackend saved_;
};

TEST_P(GoldenVectors, AllVectorsDecodeAsCommitted)
{
    std::string current_id;
    std::shared_ptr<EntryScheme> scheme;
    Bits288 golden;
    std::size_t covered = 0;
    for (const GoldenVector& v : goldenVectors()) {
        if (v.scheme_id != current_id) {
            current_id = v.scheme_id;
            scheme = makeScheme(current_id);
            golden = scheme->encode(kData);
            ++covered;
        }
        Bits288 received = golden;
        for (int pos : v.flipped_bits)
            received.set(pos, !received.get(pos));
        const EntryDecode d = scheme->decode(received);
        SCOPED_TRACE(std::string(v.scheme_id) + " flips=" +
                     std::to_string(v.flipped_bits.size()));
        EXPECT_EQ(d.status, v.status);
        if (v.status != Status::due) {
            EXPECT_EQ(d.data, v.data);
        }
    }
    // One block per registered scheme; catches fixture truncation.
    EXPECT_EQ(covered, schemeIds().size());
}

INSTANTIATE_TEST_SUITE_P(Backends, GoldenVectors,
                         ::testing::Values(CodecBackend::compiled,
                                           CodecBackend::reference),
                         [](const auto& info) {
                             return info.param ==
                                            CodecBackend::compiled
                                        ? "compiled"
                                        : "reference";
                         });

} // namespace
} // namespace gpuecc
