/** @file Tests for the correction sanity check. */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ecc/csc.hpp"
#include "ecc/registry.hpp"
#include "interleave/swizzle.hpp"

namespace gpuecc {
namespace {

TEST(CscPredicate, EmptyAndSingleBitPass)
{
    Bits288 none;
    EXPECT_TRUE(correctionSanityCheckPasses(none));
    Bits288 one;
    one.set(100, 1);
    EXPECT_TRUE(correctionSanityCheckPasses(one));
}

TEST(CscPredicate, SameBytePasses)
{
    Bits288 mask;
    mask.set(40, 1);
    mask.set(41, 1);
    mask.set(47, 1); // all in byte 5
    EXPECT_TRUE(correctionSanityCheckPasses(mask));
}

TEST(CscPredicate, SamePinPasses)
{
    Bits288 mask;
    for (int beat = 0; beat < 4; ++beat)
        mask.set(layout::physicalIndex(beat, 13), 1);
    EXPECT_TRUE(correctionSanityCheckPasses(mask));
}

TEST(CscPredicate, ScatteredFails)
{
    Bits288 mask;
    mask.set(0, 1);
    mask.set(100, 1); // different byte, different pin
    EXPECT_FALSE(correctionSanityCheckPasses(mask));
}

TEST(CscPredicate, SameByteDifferentBeatFails)
{
    // Bits in the same byte *position* of different beats share
    // neither a physical byte nor a pin.
    Bits288 mask;
    mask.set(0, 1);
    mask.set(72, 1); // same pin 0! adjust: pin 0 beat 0 and beat 1
    // 0 and 72 share pin 0, so this passes the pin rule.
    EXPECT_TRUE(correctionSanityCheckPasses(mask));
    mask.set(73, 1); // pin 1, beat 1: now neither rule holds
    EXPECT_FALSE(correctionSanityCheckPasses(mask));
}

/**
 * End-to-end CSC semantics through DuetECC: a 2-bit error hitting two
 * different codewords triggers two corrections in scattered physical
 * positions, which the CSC must convert into a DUE (plain I:SEC-DED
 * would silently miscorrect... actually would correct both bits; the
 * CSC trades that opportunistic correction for detection).
 */
TEST(CscSemantics, DuetRaisesDueOnScatteredTwoBit)
{
    const auto duet = makeScheme("duet");
    const auto issd = makeScheme("i-secded");
    Rng rng(1);
    const EntryData data{rng.next64(), rng.next64(), rng.next64(),
                         rng.next64()};
    const Bits288 golden_duet = duet->encode(data);
    const Bits288 golden_issd = issd->encode(data);

    // Physical bits 0 and 9: different codewords under the
    // interleave, different bytes, different pins.
    Bits288 mask;
    mask.set(0, 1);
    mask.set(9, 1);

    const EntryDecode d1 = duet->decode(golden_duet ^ mask);
    EXPECT_EQ(d1.status, EntryDecode::Status::due);

    const EntryDecode d2 = issd->decode(golden_issd ^ mask);
    EXPECT_EQ(d2.status, EntryDecode::Status::corrected);
    EXPECT_EQ(d2.data, data);
}

TEST(CscSemantics, DuetStillCorrectsPinErrors)
{
    // Pin errors produce four corrections that share a pin: the CSC
    // must allow them (the paper preserves single-pin correction).
    const auto duet = makeScheme("duet");
    Rng rng(2);
    const EntryData data{rng.next64(), rng.next64(), rng.next64(),
                         rng.next64()};
    const Bits288 golden = duet->encode(data);
    for (int pin = 0; pin < 72; ++pin) {
        Bits288 received = golden;
        for (int beat = 0; beat < 4; ++beat)
            received.flip(layout::physicalIndex(beat, pin));
        const EntryDecode d = duet->decode(received);
        ASSERT_EQ(d.status, EntryDecode::Status::corrected);
        EXPECT_EQ(d.data, data);
    }
}

TEST(CscSemantics, DuetHalfByteCorrection)
{
    // Up to 4 bits of one byte landing in distinct codewords stay
    // correctable under DuetECC ("half-byte error correction").
    const auto duet = makeScheme("duet");
    Rng rng(3);
    const EntryData data{rng.next64(), rng.next64(), rng.next64(),
                         rng.next64()};
    const Bits288 golden = duet->encode(data);
    const EntryLayout layout(EntryLayout::Kind::interleaved);
    for (int byte = 0; byte < 36; ++byte) {
        // Pick one bit of the byte per codeword: offsets 0..3 hit
        // codewords in some order; any 4-subset with distinct
        // codewords works. Offsets 0, 1, 2, 3 do.
        Bits288 received = golden;
        for (int t = 0; t < 4; ++t)
            received.flip(8 * byte + t);
        const EntryDecode d = duet->decode(received);
        ASSERT_EQ(d.status, EntryDecode::Status::corrected)
            << "byte " << byte;
        EXPECT_EQ(d.data, data);
    }
}

TEST(CscSemantics, TrioCscBlocksBeatMiscorrections)
{
    // Statistical check: random beat errors under I:SEC-2bEC (no CSC)
    // produce some SDC, while TrioECC (with CSC) turns nearly all of
    // them into DUEs.
    const auto trio = makeScheme("trio");
    const auto isec = makeScheme("i-sec2bec");
    Rng rng(4);
    const EntryData data{1, 2, 3, 4};
    const Bits288 tg = trio->encode(data);
    const Bits288 ig = isec->encode(data);
    int trio_sdc = 0, isec_sdc = 0;
    for (int trial = 0; trial < 4000; ++trial) {
        Bits288 mask;
        const int beat = static_cast<int>(rng.nextBounded(4));
        for (int t = 0; t < 72; ++t) {
            if (rng.nextBool(0.5))
                mask.set(72 * beat + t, 1);
        }
        if (mask.none())
            continue;
        const EntryDecode dt = trio->decode(tg ^ mask);
        if (dt.status != EntryDecode::Status::due && dt.data != data)
            ++trio_sdc;
        const EntryDecode di = isec->decode(ig ^ mask);
        if (di.status != EntryDecode::Status::due && di.data != data)
            ++isec_sdc;
    }
    EXPECT_GT(isec_sdc, 20);
    EXPECT_LT(trio_sdc, isec_sdc / 10);
}

} // namespace
} // namespace gpuecc
