/** @file Field-axiom and table tests for GF(2^8). */

#include <set>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gf256/gf256.hpp"

namespace gpuecc {
namespace gf256 {
namespace {

TEST(Gf256, AdditionIsXor)
{
    EXPECT_EQ(add(0x53, 0xCA), 0x99);
    EXPECT_EQ(add(0xFF, 0xFF), 0);
}

TEST(Gf256, MultiplicativeIdentityAndZero)
{
    for (int a = 0; a < 256; ++a) {
        EXPECT_EQ(mul(static_cast<std::uint8_t>(a), 1), a);
        EXPECT_EQ(mul(static_cast<std::uint8_t>(a), 0), 0);
    }
}

TEST(Gf256, AlphaIsPrimitive)
{
    // x (= 0x02) must generate all 255 nonzero elements.
    std::set<int> seen;
    std::uint8_t x = 1;
    for (int i = 0; i < 255; ++i) {
        seen.insert(x);
        x = mul(x, 2);
    }
    EXPECT_EQ(seen.size(), 255u);
    EXPECT_EQ(x, 1); // order exactly 255
}

TEST(Gf256, MulMatchesCarrylessReference)
{
    // Reference: schoolbook carry-less multiply then reduce by 0x163.
    auto ref = [](std::uint8_t a, std::uint8_t b) {
        unsigned acc = 0;
        for (int i = 0; i < 8; ++i) {
            if ((b >> i) & 1)
                acc ^= static_cast<unsigned>(a) << i;
        }
        for (int bit = 15; bit >= 8; --bit) {
            if ((acc >> bit) & 1)
                acc ^= primitivePoly << (bit - 8);
        }
        return static_cast<std::uint8_t>(acc);
    };
    Rng rng(1);
    for (int trial = 0; trial < 2000; ++trial) {
        const auto a = static_cast<std::uint8_t>(rng.nextBounded(256));
        const auto b = static_cast<std::uint8_t>(rng.nextBounded(256));
        ASSERT_EQ(mul(a, b), ref(a, b)) << int(a) << "*" << int(b);
    }
}

TEST(Gf256, InverseProperty)
{
    for (int a = 1; a < 256; ++a) {
        const auto ua = static_cast<std::uint8_t>(a);
        EXPECT_EQ(mul(ua, inv(ua)), 1) << a;
    }
}

TEST(Gf256, DivisionConsistent)
{
    Rng rng(2);
    for (int trial = 0; trial < 1000; ++trial) {
        const auto a = static_cast<std::uint8_t>(rng.nextBounded(256));
        const auto b =
            static_cast<std::uint8_t>(1 + rng.nextBounded(255));
        EXPECT_EQ(mul(div(a, b), b), a);
    }
}

TEST(Gf256, DlogAlphaPowInverse)
{
    for (int e = 0; e < 255; ++e)
        EXPECT_EQ(dlog(alphaPow(e)), e);
    for (int a = 1; a < 256; ++a)
        EXPECT_EQ(alphaPow(dlog(static_cast<std::uint8_t>(a))), a);
}

TEST(Gf256, AlphaPowNegativeExponents)
{
    EXPECT_EQ(alphaPow(-1), inv(alphaPow(1)));
    EXPECT_EQ(alphaPow(-255), 1);
    EXPECT_EQ(alphaPow(255), 1);
    EXPECT_EQ(alphaPow(256), alphaPow(1));
}

TEST(Gf256, Distributivity)
{
    Rng rng(3);
    for (int trial = 0; trial < 1000; ++trial) {
        const auto a = static_cast<std::uint8_t>(rng.nextBounded(256));
        const auto b = static_cast<std::uint8_t>(rng.nextBounded(256));
        const auto c = static_cast<std::uint8_t>(rng.nextBounded(256));
        EXPECT_EQ(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
    }
}

TEST(Gf256, PolyEvalHorner)
{
    // p(x) = 3 + 5x + x^2 at x = 2: 3 ^ (5*2) ^ (2*2) = 3 ^ 10 ^ 4.
    const std::vector<std::uint8_t> p{3, 5, 1};
    EXPECT_EQ(polyEval(p, 2), add(add(3, mul(5, 2)), mul(2, 2)));
    EXPECT_EQ(polyEval(p, 0), 3);
    EXPECT_EQ(polyEval({}, 7), 0);
}

TEST(Gf256, ConstantMulMatrixMatchesMul)
{
    Rng rng(4);
    for (int trial = 0; trial < 200; ++trial) {
        const auto c = static_cast<std::uint8_t>(rng.nextBounded(256));
        const auto x = static_cast<std::uint8_t>(rng.nextBounded(256));
        const auto cols = constantMulMatrix(c);
        std::uint8_t acc = 0;
        for (int b = 0; b < 8; ++b) {
            if ((x >> b) & 1)
                acc ^= cols[b];
        }
        EXPECT_EQ(acc, mul(c, x));
    }
}

} // namespace
} // namespace gf256
} // namespace gpuecc
