/** @file Tests for the beam-log post-processing pipeline. */

#include <gtest/gtest.h>

#include "beam/campaign.hpp"
#include "beam/classify.hpp"

namespace gpuecc {
namespace beam {
namespace {

hbm2::EntryMask
maskOf(std::initializer_list<int> bits)
{
    hbm2::EntryMask m;
    for (int b : bits)
        m.set(b, 1);
    return m;
}

LogRecord
rec(int run, int phase, int pass, double t, std::uint64_t entry,
    const hbm2::EntryMask& mask)
{
    return {run, phase, pass, t, entry, mask};
}

TEST(DataClassifier, ShapesAndPriority)
{
    EXPECT_EQ(classifyDataMask(maskOf({5})), ErrorShape::oneBit);
    // Same lane across words: pin wins over everything.
    EXPECT_EQ(classifyDataMask(maskOf({3, 67})), ErrorShape::onePin);
    EXPECT_EQ(classifyDataMask(maskOf({3, 67, 131, 195})),
              ErrorShape::onePin);
    // One aligned byte of one word.
    EXPECT_EQ(classifyDataMask(maskOf({8, 9, 15})),
              ErrorShape::oneByte);
    // Two scattered bits.
    EXPECT_EQ(classifyDataMask(maskOf({0, 9})), ErrorShape::twoBits);
    EXPECT_EQ(classifyDataMask(maskOf({0, 9, 130})),
              ErrorShape::threeBits);
    // Four bits within one word: a beat.
    EXPECT_EQ(classifyDataMask(maskOf({0, 9, 20, 40})),
              ErrorShape::oneBeat);
    // Bits in several words: whole entry.
    EXPECT_EQ(classifyDataMask(maskOf({0, 9, 70, 200})),
              ErrorShape::wholeEntry);
}

TEST(DataClassifier, Labels)
{
    EXPECT_EQ(errorShapeLabel(ErrorShape::oneBit), "1 Bit");
    EXPECT_EQ(errorShapeLabel(ErrorShape::wholeEntry), "1 Entry");
}

TEST(ClassifyLog, DamagedEntriesFilteredOut)
{
    // Entry 42 errs in two write phases (a weak cell); entry 7 errs
    // once (a soft error).
    std::vector<LogRecord> log;
    log.push_back(rec(0, 0, 3, 1.0, 42, maskOf({1})));
    log.push_back(rec(0, 1, 2, 2.0, 42, maskOf({1})));
    log.push_back(rec(0, 2, 5, 3.0, 7, maskOf({9})));

    const ClassificationResult result = classifyLog(log);
    EXPECT_EQ(result.damaged_entries.count(42), 1u);
    ASSERT_EQ(result.numEvents(), 1u);
    EXPECT_EQ(result.events[0].entries[0].first, 7u);
    EXPECT_EQ(result.events[0].cls, SoftErrorEvent::Class::sbse);
}

TEST(ClassifyLog, PersistentSoftErrorIsOneEvent)
{
    // A soft error persists across read passes within a phase; only
    // the first observation defines the event.
    std::vector<LogRecord> log;
    for (int pass = 4; pass < 10; ++pass)
        log.push_back(rec(0, 2, pass, 10.0 + pass, 99, maskOf({3})));
    const ClassificationResult result = classifyLog(log);
    ASSERT_EQ(result.numEvents(), 1u);
    EXPECT_EQ(result.events[0].read_pass, 4);
    EXPECT_TRUE(result.damaged_entries.empty());
}

TEST(ClassifyLog, EntriesFirstSeenTogetherFormOneEvent)
{
    std::vector<LogRecord> log;
    log.push_back(rec(0, 1, 6, 5.0, 100, maskOf({8, 9, 10})));
    log.push_back(rec(0, 1, 6, 5.0, 101, maskOf({8, 12})));
    log.push_back(rec(0, 1, 8, 6.0, 500, maskOf({0}))); // later event
    const ClassificationResult result = classifyLog(log);
    ASSERT_EQ(result.numEvents(), 2u);
    EXPECT_EQ(result.events[0].entries.size(), 2u);
    EXPECT_EQ(result.events[0].cls, SoftErrorEvent::Class::mbme);
    EXPECT_TRUE(result.events[0].multi_bit);
    EXPECT_TRUE(result.events[0].byte_aligned);
    EXPECT_EQ(result.events[1].cls, SoftErrorEvent::Class::sbse);
}

TEST(ClassifyLog, SeverestEntryDeterminesShape)
{
    std::vector<LogRecord> log;
    log.push_back(rec(0, 0, 1, 1.0, 10, maskOf({2})));
    log.push_back(rec(0, 0, 1, 1.0, 11, maskOf({5, 80, 140, 200})));
    const ClassificationResult result = classifyLog(log);
    ASSERT_EQ(result.numEvents(), 1u);
    EXPECT_EQ(result.events[0].shape, ErrorShape::wholeEntry);
}

TEST(ClassifyLog, SummariesFromSyntheticEvents)
{
    std::vector<LogRecord> log;
    // MBME byte-aligned with breadth 3 (bits 2-3 of byte 1, word 0).
    for (int i = 0; i < 3; ++i)
        log.push_back(rec(0, 0, 0, 1.0, 10 + i, maskOf({10, 11})));
    // MBSE non-aligned (two words; word 0 spans two bytes).
    log.push_back(rec(0, 0, 2, 2.0, 50, maskOf({0, 9, 64, 65})));
    const ClassificationResult result = classifyLog(log);
    ASSERT_EQ(result.numEvents(), 2u);

    const auto breadths = mbmeBreadths(result);
    ASSERT_EQ(breadths.size(), 1u);
    EXPECT_EQ(breadths[0], 3u);

    const auto aligned_sev = severityHistogram(result, true);
    EXPECT_EQ(aligned_sev[2], 3u); // three words with 2-bit errors

    const auto words = wordsPerEntryHistogram(result, false);
    EXPECT_EQ(words[2], 1u); // the non-aligned entry hit 2 words

    const auto shapes = shapeDistribution(result);
    EXPECT_EQ(shapes.at(ErrorShape::oneByte), 1u);
}

TEST(ClassifyLog, EndToEndCampaignMatchesPaperMix)
{
    CampaignConfig cfg;
    cfg.runs = 250;
    cfg.seed = 0xCAFE;
    Campaign campaign(cfg);
    campaign.runInBeam();
    const ClassificationResult result = classifyLog(campaign.log());
    ASSERT_GT(result.numEvents(), 200u);

    const double n = static_cast<double>(result.numEvents());
    auto frac = [&](SoftErrorEvent::Class c) {
        const auto it = result.class_counts.find(c);
        return it == result.class_counts.end() ? 0.0 : it->second / n;
    };
    // Figure 4a: 65 / 3.5 / 3.5 / 28 (+- statistical error).
    EXPECT_NEAR(frac(SoftErrorEvent::Class::sbse), 0.65, 0.06);
    EXPECT_NEAR(frac(SoftErrorEvent::Class::mbme), 0.28, 0.06);

    int multi = 0, aligned = 0;
    for (const auto& ev : result.events) {
        multi += ev.multi_bit;
        aligned += ev.byte_aligned;
    }
    // ~31.5% multi-bit, ~74.6% of those byte-aligned.
    EXPECT_NEAR(multi / n, 0.315, 0.06);
    EXPECT_NEAR(static_cast<double>(aligned) / multi, 0.746, 0.09);
}

} // namespace
} // namespace beam
} // namespace gpuecc
