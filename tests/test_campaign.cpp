/** @file Tests for the deterministic campaign engine. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>

#include "ecc/registry.hpp"
#include "faultsim/shard.hpp"
#include "faultsim/weighted.hpp"
#include "sim/campaign.hpp"
#include "sim/report.hpp"

namespace gpuecc {
namespace {

TEST(ShardPlan, CoversEnumerableOuterSpaceExactly)
{
    for (ErrorPattern p :
         {ErrorPattern::oneBit, ErrorPattern::onePin,
          ErrorPattern::oneByte, ErrorPattern::twoBits,
          ErrorPattern::threeBits}) {
        const auto shards = planShards(p, 12345);
        ASSERT_FALSE(shards.empty());
        std::uint64_t expect_begin = 0;
        for (const Shard& s : shards) {
            EXPECT_EQ(s.pattern, p);
            EXPECT_EQ(s.begin, expect_begin);
            EXPECT_GT(s.end, s.begin);
            expect_begin = s.end;
        }
        EXPECT_EQ(expect_begin, enumerationOuterSize(p));
    }
}

TEST(ShardPlan, CoversSampleRangeExactly)
{
    for (std::uint64_t samples : {1ull, 1000ull, 65536ull, 200001ull}) {
        const auto shards =
            planShards(ErrorPattern::oneBeat, samples, 65536);
        std::uint64_t covered = 0, expect_begin = 0;
        for (const Shard& s : shards) {
            EXPECT_EQ(s.begin, expect_begin);
            expect_begin = s.end;
            covered += s.end - s.begin;
        }
        EXPECT_EQ(covered, samples);
    }
    EXPECT_TRUE(planShards(ErrorPattern::wholeEntry, 0).empty());
}

TEST(ShardPlan, IndependentOfNothingButInputs)
{
    const auto a = planShards(ErrorPattern::wholeEntry, 100000, 4096);
    const auto b = planShards(ErrorPattern::wholeEntry, 100000, 4096);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].begin, b[i].begin);
        EXPECT_EQ(a[i].end, b[i].end);
        EXPECT_EQ(a[i].stream, b[i].stream);
    }
}

TEST(ShardPlan, SampledStreamsUniqueAcrossPatterns)
{
    // Stream ids only drive sampled shards (enumerable shards never
    // draw random masks); those must be unique across the whole plan.
    std::set<std::uint64_t> streams;
    std::size_t total = 0;
    for (ErrorPattern p :
         {ErrorPattern::oneBeat, ErrorPattern::wholeEntry}) {
        for (const Shard& s : planShards(p, 500000, 4096)) {
            streams.insert(s.stream);
            ++total;
        }
    }
    EXPECT_EQ(streams.size(), total);
}

TEST(OutcomeCountsMerge, AssociativeAndCommutative)
{
    const auto trio = makeScheme("trio");
    const GoldenEntry golden = makeGolden(*trio, 0x5EED);
    const auto shards = planShards(ErrorPattern::oneBeat, 30000, 4096);
    ASSERT_GE(shards.size(), 3u);
    std::vector<OutcomeCounts> parts;
    for (const Shard& s : shards)
        parts.push_back(evaluateShard(*trio, golden, 0x5EED, s));

    OutcomeCounts fwd;
    for (const OutcomeCounts& p : parts)
        fwd.merge(p);
    OutcomeCounts rev;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it)
        rev.merge(*it);
    OutcomeCounts grouped, left, right;
    for (std::size_t i = 0; i < parts.size(); ++i)
        (i % 2 ? left : right).merge(parts[i]);
    grouped.merge(left).merge(right);

    for (const OutcomeCounts& m : {fwd, rev, grouped}) {
        EXPECT_EQ(m.trials, 30000u);
        EXPECT_EQ(m.trials, fwd.trials);
        EXPECT_EQ(m.dce, fwd.dce);
        EXPECT_EQ(m.due, fwd.due);
        EXPECT_EQ(m.sdc, fwd.sdc);
        EXPECT_FALSE(m.exhaustive);
    }
}

TEST(OutcomeCountsMerge, ExhaustiveOnlyWhenAllShardsAre)
{
    OutcomeCounts ex;
    ex.trials = 10;
    ex.exhaustive = true;
    OutcomeCounts sampled;
    sampled.trials = 10;

    OutcomeCounts acc;
    acc.merge(ex);
    EXPECT_TRUE(acc.exhaustive);
    acc.merge(sampled);
    EXPECT_FALSE(acc.exhaustive);
}

TEST(OutcomeCountsMergeDeathTest, PanicsOnCounterOverflow)
{
    OutcomeCounts a, b;
    a.trials = UINT64_MAX - 5;
    b.trials = 10;
    EXPECT_DEATH(a.merge(b), "overflow");
}

TEST(Campaign, BitIdenticalAcrossThreadCounts)
{
    sim::CampaignSpec spec;
    spec.scheme_ids = {"duet", "trio"};
    spec.samples = 20000;
    spec.chunk = 1024; // many shards, so work actually interleaves
    spec.threads = 1;
    const sim::CampaignResult base = sim::CampaignRunner(spec).run();

    for (int threads : {2, 8}) {
        spec.threads = threads;
        const sim::CampaignResult r = sim::CampaignRunner(spec).run();
        ASSERT_EQ(r.cells.size(), base.cells.size());
        for (std::size_t i = 0; i < base.cells.size(); ++i) {
            const OutcomeCounts& a = base.cells[i].counts;
            const OutcomeCounts& b = r.cells[i].counts;
            EXPECT_EQ(b.trials, a.trials) << "threads=" << threads;
            EXPECT_EQ(b.dce, a.dce) << "threads=" << threads;
            EXPECT_EQ(b.due, a.due) << "threads=" << threads;
            EXPECT_EQ(b.sdc, a.sdc) << "threads=" << threads;
            EXPECT_EQ(b.exhaustive, a.exhaustive);
        }
    }
}

TEST(Campaign, BitIdenticalAcrossChunkSizes)
{
    // Draws are keyed to fixed stream blocks, not to shards, so the
    // tallies must not depend on how the sample range is cut up.
    sim::CampaignSpec spec;
    spec.scheme_ids = {"duet", "i-ssc"};
    spec.samples = 20000;
    spec.chunk = 1024;
    spec.threads = 2;
    const sim::CampaignResult base = sim::CampaignRunner(spec).run();

    for (std::uint64_t chunk : {100ull, 4096ull, 1ull << 16}) {
        spec.chunk = chunk; // 100 exercises the round-up-to-block path
        const sim::CampaignResult r = sim::CampaignRunner(spec).run();
        ASSERT_EQ(r.cells.size(), base.cells.size());
        for (std::size_t i = 0; i < base.cells.size(); ++i) {
            const OutcomeCounts& a = base.cells[i].counts;
            const OutcomeCounts& b = r.cells[i].counts;
            EXPECT_EQ(b.trials, a.trials) << "chunk=" << chunk;
            EXPECT_EQ(b.dce, a.dce) << "chunk=" << chunk;
            EXPECT_EQ(b.due, a.due) << "chunk=" << chunk;
            EXPECT_EQ(b.sdc, a.sdc) << "chunk=" << chunk;
        }
    }
}

TEST(Campaign, MatchesSequentialEvaluator)
{
    const auto duet = makeScheme("duet");
    Evaluator ev(*duet, 0x5EED);

    sim::CampaignSpec spec;
    spec.scheme_ids = {"duet"};
    spec.samples = 30000;
    spec.threads = 2;
    const sim::CampaignResult r = sim::CampaignRunner(spec).run();

    for (ErrorPattern p : allErrorPatterns()) {
        const OutcomeCounts direct = ev.evaluate(p, spec.samples);
        const OutcomeCounts& campaign = r.counts("duet", p);
        EXPECT_EQ(campaign.trials, direct.trials);
        EXPECT_EQ(campaign.dce, direct.dce);
        EXPECT_EQ(campaign.due, direct.due);
        EXPECT_EQ(campaign.sdc, direct.sdc);
        EXPECT_EQ(campaign.exhaustive, direct.exhaustive);
    }
}

TEST(Campaign, WeightedOutcomeProbabilitiesSumToOne)
{
    sim::CampaignSpec spec;
    spec.scheme_ids = {"ni-secded", "trio", "ssc-dsd+"};
    spec.samples = 5000;
    const sim::CampaignResult r = sim::CampaignRunner(spec).run();
    for (const std::string& id : spec.scheme_ids) {
        const WeightedOutcome w = weightedOutcome(r.perPattern(id));
        EXPECT_NEAR(w.correct + w.detect + w.sdc, 1.0, 1e-9) << id;
    }
}

TEST(Campaign, EmptyPatternListMeansAllSeven)
{
    sim::CampaignSpec spec;
    spec.scheme_ids = {"ni-secded"};
    spec.samples = 100;
    const sim::CampaignResult r = sim::CampaignRunner(spec).run();
    EXPECT_EQ(r.cells.size(), allErrorPatterns().size());
    EXPECT_GT(r.shards, 0u);
    EXPECT_GT(r.totalTrials(), 0u);
}

TEST(CampaignReport, CsvAndJsonContainEveryCell)
{
    sim::CampaignSpec spec;
    spec.scheme_ids = {"duet"};
    spec.patterns = {ErrorPattern::oneBit, ErrorPattern::oneBeat};
    spec.samples = 1000;
    const sim::CampaignResult r = sim::CampaignRunner(spec).run();

    const std::string csv = sim::campaignCsv(r);
    EXPECT_EQ(csv.rfind("# manifest ", 0), 0u);
    EXPECT_NE(csv.find("scheme,pattern,trials"), std::string::npos);
    EXPECT_NE(csv.find("duet"), std::string::npos);
    // manifest comment + header + one line per cell (trailing
    // newline).
    const auto lines =
        std::count(csv.begin(), csv.end(), '\n');
    EXPECT_EQ(lines, 2 + static_cast<long>(r.cells.size()));
    // The comment names only plan identity — never the thread count,
    // so CSVs diff clean across thread counts and resumes.
    const std::string comment = csv.substr(0, csv.find('\n'));
    EXPECT_EQ(comment.find("threads"), std::string::npos);
    EXPECT_NE(comment.find("seed="), std::string::npos);

    const std::string json = sim::campaignJson(r);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"cells\""), std::string::npos);
    EXPECT_NE(json.find("\"duet\""), std::string::npos);
    EXPECT_NE(json.find("\"trials_per_second\""), std::string::npos);
    EXPECT_NE(json.find("\"manifest\""), std::string::npos);
    EXPECT_NE(json.find("\"timing\""), std::string::npos);
    EXPECT_NE(json.find("\"build_type\""), std::string::npos);
    EXPECT_NE(json.find("\"utilization\""), std::string::npos);
}

TEST(Campaign, UnknownSchemeIsSkippedAndRecorded)
{
    sim::CampaignSpec spec;
    spec.scheme_ids = {"duet", "no-such-code", "trio"};
    spec.patterns = {ErrorPattern::oneBit};
    spec.samples = 100;
    const auto r = sim::CampaignRunner(spec).tryRun();
    ASSERT_TRUE(r.ok()) << r.status().toString();

    EXPECT_TRUE(r.value().hasScheme("duet"));
    EXPECT_TRUE(r.value().hasScheme("trio"));
    EXPECT_FALSE(r.value().hasScheme("no-such-code"));
    ASSERT_EQ(r.value().errors.size(), 1u);
    EXPECT_EQ(r.value().errors[0].scheme_id, "no-such-code");
    EXPECT_NE(r.value().errors[0].message.find("not_found"),
              std::string::npos);
    // The recorded degradation shows up in the JSON artifact.
    EXPECT_NE(sim::campaignJson(r.value()).find("no-such-code"),
              std::string::npos);
}

TEST(Campaign, AllSchemesUnknownIsAnError)
{
    sim::CampaignSpec spec;
    spec.scheme_ids = {"nope", "also-nope"};
    spec.patterns = {ErrorPattern::oneBit};
    spec.samples = 100;
    const auto r = sim::CampaignRunner(spec).tryRun();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::notFound);
}

TEST(Campaign, RegistryLookupIsStructured)
{
    const auto good = findScheme("trio");
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value()->id(), "trio");

    const auto bad = findScheme("definitely-not-a-scheme");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::notFound);
    // The message lists the known ids so the user can self-correct.
    EXPECT_NE(bad.status().message().find("trio"), std::string::npos);
}

TEST(CampaignReport, SaveTextFileReportsUnwritablePaths)
{
    const Status s = sim::saveTextFile(
        "/nonexistent_dir_gpuecc_xyz/out.json", "{}");
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::ioError);
    EXPECT_NE(s.message().find("out.json"), std::string::npos);
}

TEST(CampaignReport, LoadTextFileRoundTripsAndReportsMissing)
{
    const std::string path =
        ::testing::TempDir() + "gpuecc_textfile_roundtrip.txt";
    const std::string content = "line one\nline two\n";
    ASSERT_TRUE(sim::saveTextFile(path, content).ok());
    const auto loaded = sim::loadTextFile(path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value(), content);
    std::remove(path.c_str());

    const auto missing = sim::loadTextFile(path);
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), ErrorCode::notFound);
}

TEST(OutcomeCountsTest, SelfConsistencyAndOverflowChecks)
{
    OutcomeCounts c;
    c.trials = 100;
    c.dce = 90;
    c.due = 8;
    c.sdc = 2;
    EXPECT_TRUE(c.selfConsistent());
    c.sdc = 3; // counts no longer sum to trials
    EXPECT_FALSE(c.selfConsistent());
    c.sdc = 2;

    OutcomeCounts near_max;
    near_max.trials = UINT64_MAX - 50;
    near_max.dce = UINT64_MAX - 50;
    EXPECT_TRUE(near_max.fitsWithoutOverflow(c) ==
                (c.trials <= 50));
    OutcomeCounts small;
    small.trials = 50;
    small.dce = 50;
    EXPECT_TRUE(near_max.fitsWithoutOverflow(small));
}

TEST(CampaignReport, JsonWriterEscapesAndNests)
{
    sim::JsonWriter w;
    w.beginObject();
    w.kv("text", std::string("a\"b\\c\n"));
    w.key("arr").beginArray().value(1).value(2.5).value(true)
        .endArray();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"text\":\"a\\\"b\\\\c\\n\",\"arr\":[1,2.5,true]}");
}

} // namespace
} // namespace gpuecc
