/** @file Tests for displacement-damage accumulation and annealing. */

#include <gtest/gtest.h>

#include "beam/damage.hpp"
#include "common/stats.hpp"
#include "hbm2/geometry.hpp"

namespace gpuecc {
namespace beam {
namespace {

hbm2::Device
smallDevice()
{
    return hbm2::Device(hbm2::Geometry(1));
}

TEST(Damage, NoExposureNoDamage)
{
    DamageConfig cfg;
    DamageModel model(cfg, Rng(1));
    auto dev = smallDevice();
    EXPECT_EQ(model.expose(dev, 0.0), 0u);
    EXPECT_EQ(dev.numWeakCells(), 0u);
    EXPECT_EQ(model.remainingPool(), cfg.leaky_pool);
}

TEST(Damage, LinearAccumulationAtLowFluence)
{
    // In the small-exposure regime conversions are ~linear in
    // fluence (the paper's Figure 3c, R^2 = 0.97).
    DamageConfig cfg;
    DamageModel model(cfg, Rng(2));
    auto dev = smallDevice();
    const double step = 5e8; // expected ~80 cells per step
    std::vector<double> counts;
    for (int i = 0; i < 4; ++i) {
        model.expose(dev, step);
        counts.push_back(static_cast<double>(dev.numWeakCells()));
    }
    // Roughly equal increments.
    const double first = counts[0];
    for (int i = 1; i < 4; ++i) {
        const double inc = counts[i] - counts[i - 1];
        EXPECT_NEAR(inc, first, first * 0.5) << "step " << i;
    }
}

TEST(Damage, PoolExhaustionAsymptote)
{
    DamageConfig cfg;
    cfg.leaky_pool = 500;
    DamageModel model(cfg, Rng(3));
    auto dev = smallDevice();
    model.expose(dev, 1e12); // overwhelming fluence
    EXPECT_EQ(dev.numWeakCells(), 500u);
    EXPECT_EQ(model.remainingPool(), 0u);
    // Further exposure converts nothing.
    EXPECT_EQ(model.expose(dev, 1e12), 0u);
}

TEST(Damage, RetentionTimesFollowConfiguredDistribution)
{
    DamageConfig cfg;
    DamageModel model(cfg, Rng(4));
    auto dev = smallDevice();
    model.expose(dev, 1e12);
    OnlineStats stats;
    int one_to_zero = 0;
    for (const hbm2::WeakCell& cell : dev.weakCells()) {
        stats.add(cell.retention_ms);
        one_to_zero += cell.one_to_zero;
    }
    EXPECT_NEAR(stats.mean(), cfg.retention_mu_ms, 1.0);
    EXPECT_NEAR(stats.stddev(), cfg.retention_sigma_ms, 1.0);
    // 99.8% of intermittent errors leak 1 -> 0.
    EXPECT_NEAR(one_to_zero / static_cast<double>(dev.numWeakCells()),
                cfg.p_one_to_zero, 0.01);
}

TEST(Damage, AnnealingShiftsRetentionUp)
{
    DamageConfig cfg;
    DamageModel model(cfg, Rng(5));
    auto dev = smallDevice();
    model.expose(dev, 1e12);

    auto visible = [&dev](double period) {
        std::uint64_t n = 0;
        for (const auto& cell : dev.weakCells())
            n += cell.retention_ms < period;
        return n;
    };
    const auto pre8 = visible(8.0);
    const auto pre48 = visible(48.0);
    model.anneal(dev, 3.5);
    const auto post8 = visible(8.0);
    const auto post48 = visible(48.0);

    // The paper: a large relative decline at short refresh periods
    // (26% at 8 ms) and a much smaller one at 48 ms (2.5%).
    const double drop8 = 1.0 - static_cast<double>(post8) / pre8;
    const double drop48 = 1.0 - static_cast<double>(post48) / pre48;
    EXPECT_GT(drop8, 0.15);
    EXPECT_LT(drop48, 0.05);
    EXPECT_GT(drop8, drop48 * 3);
}

} // namespace
} // namespace beam
} // namespace gpuecc
