/** @file Tests for the SEC-2bEC code search (GA reproduction). */

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "codes/code_search.hpp"
#include "codes/linear_code.hpp"
#include "codes/sec2bec.hpp"

namespace gpuecc {
namespace {

TEST(CodeSearch, ProducesValidSec2bEcCode)
{
    Rng rng(42);
    const CodeSearchResult result = searchSec2bEcCode(rng, 4000);
    const Code72 code(result.h, Code72::adjacentPairs());
    EXPECT_TRUE(code.isSec());
    EXPECT_TRUE(code.isDed());
    EXPECT_TRUE(code.isAligned2bEc());
}

TEST(CodeSearch, DeterministicPerSeed)
{
    Rng a(7), b(7);
    const CodeSearchResult ra = searchSec2bEcCode(a, 2000);
    const CodeSearchResult rb = searchSec2bEcCode(b, 2000);
    EXPECT_EQ(ra.h, rb.h);
    EXPECT_EQ(ra.miscorrection_rate, rb.miscorrection_rate);
}

TEST(CodeSearch, MiscorrectionCompetitiveWithPaperCode)
{
    // The search should land in the same quality regime as the
    // published matrix (~22% of non-aligned 2-bit errors aliasing).
    Rng rng(42);
    const CodeSearchResult result = searchSec2bEcCode(rng, 12000);
    const Code72 paper(sec2becPaperMatrix(), Code72::adjacentPairs());
    EXPECT_LE(result.miscorrection_rate,
              paper.nonAligned2bMiscorrectionRate() * 1.15);
}

TEST(CodeSearch, DaecSearchProducesValidDaecCode)
{
    Rng rng(11);
    const CodeSearchResult result = searchDaecCode(rng, 6000);
    // SEC-DED plus unique syndromes for all 71 adjacent pairs.
    const Code72 as_aligned(result.h, Code72::adjacentPairs());
    EXPECT_TRUE(as_aligned.isSec());
    EXPECT_TRUE(as_aligned.isDed());
    // Verify the full DAEC property directly on the columns.
    std::set<unsigned> cols, pair_syn;
    for (int c = 0; c < 72; ++c) {
        unsigned v = 0;
        for (int r = 0; r < 8; ++r)
            v |= static_cast<unsigned>(result.h.get(r, c)) << r;
        cols.insert(v);
    }
    std::vector<unsigned> col_vec(cols.begin(), cols.end());
    for (int a = 0; a + 1 < 72; ++a) {
        unsigned va = 0, vb = 0;
        for (int r = 0; r < 8; ++r) {
            va |= static_cast<unsigned>(result.h.get(r, a)) << r;
            vb |= static_cast<unsigned>(result.h.get(r, a + 1)) << r;
        }
        const unsigned s = va ^ vb;
        EXPECT_NE(s, 0u);
        EXPECT_EQ(cols.count(s), 0u);
        EXPECT_TRUE(pair_syn.insert(s).second) << "pair " << a;
    }
}

TEST(CodeSearch, AlignedOnlyBeatsDaecOnMiscorrection)
{
    // The paper's claim: restricting correction to aligned pairs
    // cuts the non-correctable 2-bit aliasing risk by ~20%.
    Rng ra(5), rd(5);
    const CodeSearchResult aligned = searchSec2bEcCode(ra, 15000);
    const CodeSearchResult daec = searchDaecCode(rd, 15000);
    EXPECT_LT(aligned.miscorrection_rate, daec.miscorrection_rate);
    const double reduction =
        1.0 - aligned.miscorrection_rate / daec.miscorrection_rate;
    EXPECT_GT(reduction, 0.10);
    EXPECT_LT(reduction, 0.60);
}

TEST(CodeSearch, LongerSearchDoesNotRegress)
{
    Rng short_rng(3), long_rng(3);
    const auto coarse = searchSec2bEcCode(short_rng, 1000);
    const auto fine = searchSec2bEcCode(long_rng, 8000);
    EXPECT_LE(fine.miscorrection_rate, coarse.miscorrection_rate);
    EXPECT_GT(fine.evaluations, coarse.evaluations);
}

} // namespace
} // namespace gpuecc
