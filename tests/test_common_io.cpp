/** @file Tests for the table renderer and CLI parser. */

#include <algorithm>

#include <gtest/gtest.h>

#include "common/cli.hpp"
#include "common/table.hpp"

namespace gpuecc {
namespace {

TEST(TextTableTest, RendersAlignedColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "23"});
    const std::string out = t.render();
    // Header, rule, two rows.
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    // Both value cells start at the same column.
    const auto lines_start = out.find("x");
    const auto header_value = out.find("value");
    ASSERT_NE(lines_start, std::string::npos);
    ASSERT_NE(header_value, std::string::npos);
}

TEST(TextTableTest, Formatters)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatPercent(0.054, 1), "5.4%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
    EXPECT_EQ(formatScientific(0.00012345, 2), "1.23e-04");
}

TEST(CliTest, DefaultsAndOverrides)
{
    Cli cli;
    cli.addFlag("samples", "1000", "sample count");
    cli.addFlag("rate", "2.5", "a rate");
    cli.addFlag("verbose", "false", "chatty output");
    cli.addFlag("name", "abc", "a string");

    const char* argv[] = {"prog", "--samples", "42", "--rate=7.25",
                          "--verbose"};
    cli.parse(5, const_cast<char**>(argv), "test");

    EXPECT_EQ(cli.getInt("samples"), 42);
    EXPECT_DOUBLE_EQ(cli.getDouble("rate"), 7.25);
    EXPECT_TRUE(cli.getBool("verbose"));
    EXPECT_EQ(cli.getString("name"), "abc"); // default preserved
}

TEST(CliTest, HexIntegers)
{
    Cli cli;
    cli.addFlag("seed", "0x10", "seed");
    const char* argv[] = {"prog"};
    cli.parse(1, const_cast<char**>(argv), "test");
    EXPECT_EQ(cli.getInt("seed"), 16);
}

} // namespace
} // namespace gpuecc
