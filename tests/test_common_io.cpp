/** @file Tests for the table renderer and CLI parser. */

#include <algorithm>

#include <gtest/gtest.h>

#include "common/cli.hpp"
#include "common/table.hpp"

namespace gpuecc {
namespace {

TEST(TextTableTest, RendersAlignedColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "23"});
    const std::string out = t.render();
    // Header, rule, two rows.
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    // Both value cells start at the same column.
    const auto lines_start = out.find("x");
    const auto header_value = out.find("value");
    ASSERT_NE(lines_start, std::string::npos);
    ASSERT_NE(header_value, std::string::npos);
}

TEST(TextTableTest, Formatters)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatPercent(0.054, 1), "5.4%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
    EXPECT_EQ(formatScientific(0.00012345, 2), "1.23e-04");
}

TEST(CliTest, DefaultsAndOverrides)
{
    Cli cli;
    cli.addFlag("samples", "1000", "sample count");
    cli.addFlag("rate", "2.5", "a rate");
    cli.addFlag("verbose", "false", "chatty output");
    cli.addFlag("name", "abc", "a string");

    const char* argv[] = {"prog", "--samples", "42", "--rate=7.25",
                          "--verbose"};
    cli.parse(5, const_cast<char**>(argv), "test");

    EXPECT_EQ(cli.getInt("samples"), 42);
    EXPECT_DOUBLE_EQ(cli.getDouble("rate"), 7.25);
    EXPECT_TRUE(cli.getBool("verbose"));
    EXPECT_EQ(cli.getString("name"), "abc"); // default preserved
}

TEST(CliTest, HexIntegers)
{
    Cli cli;
    cli.addFlag("seed", "0x10", "seed");
    const char* argv[] = {"prog"};
    cli.parse(1, const_cast<char**>(argv), "test");
    EXPECT_EQ(cli.getInt("seed"), 16);
}

TEST(CliTest, TryParseRejectsUnknownFlag)
{
    Cli cli;
    cli.addFlag("samples", "1000", "sample count");
    const char* argv[] = {"prog", "--smaples", "42"};
    const Status s = cli.tryParse(3, const_cast<char**>(argv));
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::invalidArgument);
    EXPECT_NE(s.message().find("smaples"), std::string::npos);
}

TEST(CliTest, TryParseRejectsPositionalArguments)
{
    Cli cli;
    cli.addFlag("samples", "1000", "sample count");
    const char* argv[] = {"prog", "stray"};
    const Status s = cli.tryParse(2, const_cast<char**>(argv));
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::invalidArgument);
    EXPECT_NE(s.message().find("stray"), std::string::npos);
}

TEST(CliTest, TryParseReportsHelpWithoutExiting)
{
    Cli cli;
    cli.addFlag("samples", "1000", "sample count");
    const char* argv[] = {"prog", "--help"};
    EXPECT_TRUE(cli.tryParse(2, const_cast<char**>(argv)).ok());
    EXPECT_TRUE(cli.helpRequested());
    EXPECT_NE(cli.usageText("desc").find("--samples"),
              std::string::npos);
}

TEST(CliTest, TryGetRejectsMalformedNumbers)
{
    Cli cli;
    cli.addFlag("samples", "1000", "sample count");
    cli.addFlag("rate", "2.5", "a rate");
    const char* argv[] = {"prog", "--samples", "12abc",
                          "--rate", "fast"};
    ASSERT_TRUE(cli.tryParse(5, const_cast<char**>(argv)).ok());

    const auto n = cli.tryGetInt("samples");
    ASSERT_FALSE(n.ok());
    EXPECT_EQ(n.status().code(), ErrorCode::invalidArgument);
    const auto d = cli.tryGetDouble("rate");
    ASSERT_FALSE(d.ok());
    EXPECT_EQ(d.status().code(), ErrorCode::invalidArgument);

    // Well-formed values still come through the same accessors.
    const char* ok_argv[] = {"prog", "--samples=42", "--rate=0.5"};
    Cli ok_cli;
    ok_cli.addFlag("samples", "1000", "sample count");
    ok_cli.addFlag("rate", "2.5", "a rate");
    ASSERT_TRUE(ok_cli.tryParse(3, const_cast<char**>(ok_argv)).ok());
    EXPECT_EQ(ok_cli.tryGetInt("samples").value(), 42);
    EXPECT_DOUBLE_EQ(ok_cli.tryGetDouble("rate").value(), 0.5);
}

TEST(CliDeathTest, ParseExitsWithUsageCodeOnUnknownFlag)
{
    Cli cli;
    cli.addFlag("samples", "1000", "sample count");
    const char* argv[] = {"prog", "--bogus"};
    EXPECT_EXIT(cli.parse(2, const_cast<char**>(argv), "test"),
                ::testing::ExitedWithCode(kUsageExitCode),
                "unknown flag");
}

TEST(CliDeathTest, GetIntDiesOnMalformedValue)
{
    Cli cli;
    cli.addFlag("samples", "1000", "sample count");
    const char* argv[] = {"prog", "--samples", "1e5"};
    cli.parse(3, const_cast<char**>(argv), "test");
    EXPECT_DEATH(cli.getInt("samples"), "samples");
}

} // namespace
} // namespace gpuecc
