/** @file Tests for FIT math and system-level models (Section 7.3). */

#include <cmath>

#include <gtest/gtest.h>

#include "reliability/fit.hpp"
#include "reliability/history.hpp"
#include "reliability/system.hpp"

namespace gpuecc {
namespace reliability {
namespace {

/** Fig. 8 outcome fractions as the paper quotes them. */
WeightedOutcome
paperOutcome(const char* scheme)
{
    if (std::string(scheme) == "secded")
        return {0.74, 0.202, 0.054};
    if (std::string(scheme) == "duet")
        return {0.807, 0.193, 1.3e-5};
    if (std::string(scheme) == "trio")
        return {0.97, 0.0326, 8.5e-5};
    return {0.9654, 0.0346, 2e-8}; // ssc-dsd+
}

TEST(Fit, RawMemoryFit)
{
    // A100: 40GB = 320 Gb at 12.51 FIT/Gb.
    EXPECT_NEAR(rawMemoryFit(12.51, 320.0), 4003.2, 0.1);
}

TEST(Fit, MttfOfZeroFitIsInfinite)
{
    EXPECT_TRUE(std::isinf(mttfHours(0.0)));
    EXPECT_DOUBLE_EQ(mttfHours(1e9), 1.0);
}

TEST(Av, SecDedSdcFitMatchesPaper216)
{
    // "A SEC-DED protected A100 GPU suffers from 216 FIT of HBM2 SDC".
    const AvModel av;
    EXPECT_NEAR(av.vehicleSdcFit(paperOutcome("secded")), 216.0, 3.0);
    EXPECT_FALSE(av.satisfiesIso26262(paperOutcome("secded")));
}

TEST(Av, DuetAndTrioSatisfyIso26262)
{
    // "TrioECC reduces this to 0.29 FIT, and DuetECC to 0.045 FIT".
    const AvModel av;
    EXPECT_NEAR(av.vehicleSdcFit(paperOutcome("trio")), 0.34, 0.1);
    EXPECT_NEAR(av.vehicleSdcFit(paperOutcome("duet")), 0.052, 0.02);
    EXPECT_TRUE(av.satisfiesIso26262(paperOutcome("trio")));
    EXPECT_TRUE(av.satisfiesIso26262(paperOutcome("duet")));
}

TEST(Av, FleetEventArithmetic)
{
    // 225.8M drivers x 51 min/day = 1.92e8 hours/day.
    const AvModel av;
    EXPECT_NEAR(av.fleet_hours_per_day, 1.92e8, 0.01e8);
    // SEC-DED: "an expected 41 SDC events on the road each day".
    EXPECT_NEAR(av.fleetSdcPerDay(paperOutcome("secded")), 41.0, 2.0);
}

TEST(Hpc, GpuCountScalesLinearly)
{
    const HpcSystemModel hpc;
    EXPECT_NEAR(hpc.gpusFor(0.5), 0.5e6 / 19.5, 1.0);
    EXPECT_NEAR(hpc.gpusFor(2.0) / hpc.gpusFor(0.5), 4.0, 1e-9);
}

TEST(Hpc, MttiRatioBetweenDuetAndTrio)
{
    // Figure 9a: TrioECC's MTTI is ~5.9x DuetECC's (the DUE-rate
    // ratio), independent of machine scale.
    const HpcSystemModel hpc;
    const double ratio = hpc.mttiHours(1.0, paperOutcome("trio")) /
                         hpc.mttiHours(1.0, paperOutcome("duet"));
    EXPECT_NEAR(ratio, 0.193 / 0.0326, 0.1);
}

TEST(Hpc, MttfOrderingAcrossSchemes)
{
    const HpcSystemModel hpc;
    const double secded = hpc.mttfHours(1.0, paperOutcome("secded"));
    const double trio = hpc.mttfHours(1.0, paperOutcome("trio"));
    const double duet = hpc.mttfHours(1.0, paperOutcome("duet"));
    EXPECT_LT(secded, trio);
    EXPECT_LT(trio, duet);
}

TEST(Hpc, Figure9RatioAnchorsHold)
{
    // The paper's absolute Figure 9 values imply ~8x more raw machine
    // FIT than 19.5 TFLOP/s / 40GB / 12.51 FIT/Gb GPUs provide (its
    // GPUs-per-exaflop assumption is not stated), but its *ratios*
    // are exact consequences of the outcome fractions:
    // MTTF(SEC-DED) / MTTI(Duet) = detect(Duet) / sdc(SEC-DED), which
    // makes 22.5 h SEC-DED SDC correspond to the quoted 6.3 h Duet
    // DUE at the same scale.
    const HpcSystemModel hpc;
    const double mttf_secded =
        hpc.mttfHours(0.5, paperOutcome("secded"));
    const double mtti_duet = hpc.mttiHours(0.5, paperOutcome("duet"));
    EXPECT_NEAR(mttf_secded / mtti_duet, 22.5 / 6.3, 0.2);
    // Absolute values with our physical defaults land within an
    // order of magnitude of the paper's plot.
    EXPECT_GT(mttf_secded, 20.0);
    EXPECT_LT(mttf_secded, 250.0);
}

TEST(Hpc, MttiShrinksWithScale)
{
    const HpcSystemModel hpc;
    const auto o = paperOutcome("duet");
    EXPECT_NEAR(hpc.mttiHours(0.5, o) / hpc.mttiHours(2.0, o), 4.0,
                1e-9);
}

TEST(History, RegressionsReproduceFigure1Trends)
{
    const LineFit ser = regressSer();
    const LineFit cap = regressCapacity();
    EXPECT_LT(ser.slope, 0.0); // falling error rate
    EXPECT_GT(cap.slope, 0.0); // rising capacity
    EXPECT_GT(ser.r2, 0.98);
    EXPECT_GT(cap.r2, 0.95);
    // The per-chip SER decline outpaces the capacity increase.
    EXPECT_GT(-ser.slope, 0.0);
}

TEST(History, Hbm2PointWithinNonBitcellBand)
{
    // Our simulated HBM2 event rate lands inside / near the flat
    // non-bitcell band of Figure 1 when reduced to FIT per stack.
    const auto [all_fit, mb_fit] =
        hbm2PointFit(0.224, 0.315, 2.52e8, 8);
    const auto [lo, hi] = nonBitcellBand();
    EXPECT_GT(all_fit, lo);
    EXPECT_LT(all_fit, hi);
    EXPECT_GT(mb_fit, lo);
    EXPECT_LT(mb_fit, hi);
    EXPECT_LT(mb_fit, all_fit);
}

} // namespace
} // namespace reliability
} // namespace gpuecc
