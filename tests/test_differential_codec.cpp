/**
 * @file
 * Differential harness: compiled codec vs matrix reference.
 *
 * The compiled fast path (byte parity tables + syndrome->correction
 * tables) must be observationally identical to the original
 * matrix/bit-by-bit reference it was lowered from. This harness
 * cross-checks the two backends bit-for-bit: at the Code72 level over
 * every codeword-local error, and at the entry level for every
 * registered scheme over all 1- and 2-bit flips, every aligned byte
 * pattern, and seeded random sparse patterns — then once more at the
 * campaign level, where a whole sampled campaign must produce
 * identical outcome tallies under either backend.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "codes/hsiao.hpp"
#include "codes/linear_code.hpp"
#include "codes/sec2bec.hpp"
#include "common/codec_mode.hpp"
#include "common/rng.hpp"
#include "ecc/reconfigurable.hpp"
#include "ecc/registry.hpp"
#include "sim/campaign.hpp"

namespace gpuecc {
namespace {

/** Restores the codec backend a test body switches around. */
class BackendGuard
{
  public:
    BackendGuard() : saved_(codecBackend()) {}
    ~BackendGuard() { setCodecBackend(saved_); }

  private:
    CodecBackend saved_;
};

/** Decode `received` under both backends and require identical results. */
void
expectBackendsAgree(const EntryScheme& scheme, const Bits288& received)
{
    setCodecBackend(CodecBackend::compiled);
    const EntryDecode fast = scheme.decode(received);
    setCodecBackend(CodecBackend::reference);
    const EntryDecode ref = scheme.decode(received);
    setCodecBackend(CodecBackend::compiled);

    ASSERT_EQ(fast.status, ref.status);
    if (fast.status != EntryDecode::Status::due)
        ASSERT_EQ(fast.data, ref.data);
}

class DifferentialCodec : public ::testing::TestWithParam<std::string>
{
  protected:
    DifferentialCodec() : scheme_(makeScheme(GetParam()))
    {
        Rng rng(0xD1FFull);
        data_ = {rng.next64(), rng.next64(), rng.next64(), rng.next64()};
        setCodecBackend(CodecBackend::compiled);
        golden_ = scheme_->encode(data_);
    }

    Bits288 flipped(std::initializer_list<int> positions) const
    {
        Bits288 r = golden_;
        for (int p : positions)
            r.set(p, !r.get(p));
        return r;
    }

    BackendGuard guard_;
    std::shared_ptr<EntryScheme> scheme_;
    EntryData data_;
    Bits288 golden_;
};

TEST_P(DifferentialCodec, EncodeIdenticalAcrossBackends)
{
    Rng rng(0xE2C0ull);
    for (int trial = 0; trial < 64; ++trial) {
        const EntryData d = {rng.next64(), rng.next64(), rng.next64(),
                             rng.next64()};
        setCodecBackend(CodecBackend::compiled);
        const Bits288 fast = scheme_->encode(d);
        setCodecBackend(CodecBackend::reference);
        const Bits288 ref = scheme_->encode(d);
        setCodecBackend(CodecBackend::compiled);
        ASSERT_EQ(fast, ref);
    }
}

TEST_P(DifferentialCodec, CleanEntryDecodesIdentically)
{
    expectBackendsAgree(*scheme_, golden_);
}

TEST_P(DifferentialCodec, AllSingleBitFlips)
{
    for (int a = 0; a < 288; ++a)
        expectBackendsAgree(*scheme_, flipped({a}));
}

TEST_P(DifferentialCodec, AllDoubleBitFlips)
{
    for (int a = 0; a < 288; ++a) {
        for (int b = a + 1; b < 288; ++b)
            expectBackendsAgree(*scheme_, flipped({a, b}));
    }
}

TEST_P(DifferentialCodec, AllAlignedBytePatterns)
{
    // Every value of every aligned byte: the compiled codec's native
    // lookup granularity, so any table row defect surfaces here.
    for (int byte = 0; byte < 36; ++byte) {
        for (int v = 1; v < 256; ++v) {
            Bits288 r = golden_;
            for (int t = 0; t < 8; ++t) {
                if ((v >> t) & 1) {
                    const int pos = 8 * byte + t;
                    r.set(pos, !r.get(pos));
                }
            }
            expectBackendsAgree(*scheme_, r);
        }
    }
}

TEST_P(DifferentialCodec, RandomSparsePatterns)
{
    Rng rng(0xFA57ull);
    for (int trial = 0; trial < 4000; ++trial) {
        Bits288 r = golden_;
        const int weight = 3 + static_cast<int>(rng.nextBounded(4));
        for (int f = 0; f < weight; ++f) {
            const int pos = static_cast<int>(rng.nextBounded(288));
            r.set(pos, !r.get(pos));
        }
        expectBackendsAgree(*scheme_, r);
    }
}

TEST_P(DifferentialCodec, PinErasureDecodeIdentical)
{
    // Erasure decode under both backends, for every pin, with the
    // erased pin flipped across all beats plus one extra random flip.
    Rng rng(0xE7A5ull);
    for (int pin = 0; pin < 72; ++pin) {
        Bits288 r = golden_;
        for (int beat = 0; beat < 4; ++beat) {
            if (rng.nextBool(0.5)) {
                const int pos = 72 * beat + pin;
                r.set(pos, !r.get(pos));
            }
        }
        const int extra = static_cast<int>(rng.nextBounded(288));
        r.set(extra, !r.get(extra));

        setCodecBackend(CodecBackend::compiled);
        const EntryDecode fast = scheme_->decodeWithPinErasure(r, pin);
        setCodecBackend(CodecBackend::reference);
        const EntryDecode ref = scheme_->decodeWithPinErasure(r, pin);
        setCodecBackend(CodecBackend::compiled);

        ASSERT_EQ(fast.status, ref.status);
        if (fast.status != EntryDecode::Status::due)
            ASSERT_EQ(fast.data, ref.data);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, DifferentialCodec,
    ::testing::Values("ni-secded", "i-secded", "duet", "ni-sec2bec",
                      "i-sec2bec", "trio", "i-ssc", "i-ssc-csc",
                      "ssc-dsd+", "dsc", "ssc-tsd"),
    [](const auto& info) {
        std::string name = info.param;
        for (char& c : name) {
            if (c == '-' || c == '+')
                c = '_';
        }
        return name;
    });

TEST(DifferentialReconfigurable, BothPoliciesAgreeAcrossBackends)
{
    BackendGuard guard;
    ReconfigurableDuetTrio scheme;
    Rng rng(0x12EC0ull);
    const EntryData d = {rng.next64(), rng.next64(), rng.next64(),
                         rng.next64()};
    setCodecBackend(CodecBackend::compiled);
    const Bits288 golden = scheme.encode(d);

    for (ReconfigurableDuetTrio::Policy policy :
         {ReconfigurableDuetTrio::Policy::duet,
          ReconfigurableDuetTrio::Policy::trio}) {
        scheme.setPolicy(policy);
        for (int a = 0; a < 288; ++a) {
            Bits288 r = golden;
            r.set(a, !r.get(a));
            const int b = static_cast<int>(rng.nextBounded(288));
            r.set(b, !r.get(b));
            expectBackendsAgree(scheme, r);
        }
    }
}

/** Code72-level differential over both paper codes and both modes. */
class DifferentialCode72 : public ::testing::Test
{
  protected:
    std::vector<Code72> codes() const
    {
        std::vector<Code72> out;
        out.emplace_back(hsiao7264Matrix());
        out.emplace_back(sec2becPaperMatrix());
        out.emplace_back(sec2becInterleavedMatrix(),
                         Code72::stride4Pairs());
        return out;
    }
};

TEST_F(DifferentialCode72, EncodeAndSyndromeIdentical)
{
    Rng rng(0xC0DEull);
    for (const Code72& code : codes()) {
        for (int trial = 0; trial < 256; ++trial) {
            const std::uint64_t data = rng.next64();
            ASSERT_EQ(code.encodeCompiled(data),
                      code.encodeReference(data));
        }
        Bits72 w = code.encode(rng.next64());
        for (int a = 0; a < 72; ++a) {
            for (int b = 0; b < 72; ++b) {
                Bits72 r = w;
                r.set(a, !r.get(a));
                r.set(b, r.get(b) ^ 1);
                ASSERT_EQ(code.syndromeCompiled(r),
                          code.syndromeReference(r));
            }
        }
    }
}

TEST_F(DifferentialCode72, DecodeIdenticalForAllDoubleFlips)
{
    for (const Code72& code : codes()) {
        const Bits72 w = code.encode(0x0123456789ABCDEFull);
        for (Code72::Mode mode :
             {Code72::Mode::secDed, Code72::Mode::sec2bEc}) {
            for (int a = 0; a < 72; ++a) {
                for (int b = a; b < 72; ++b) {
                    Bits72 r = w;
                    r.set(a, !r.get(a));
                    if (b != a)
                        r.set(b, !r.get(b));
                    const CodewordDecode fast =
                        code.decodeCompiled(r, mode);
                    const CodewordDecode ref =
                        code.decodeReference(r, mode);
                    ASSERT_EQ(fast.status, ref.status);
                    ASSERT_EQ(fast.correction, ref.correction);
                }
            }
        }
    }
}

TEST_F(DifferentialCode72, ErasureDecodeIdentical)
{
    for (const Code72& code : codes()) {
        const Bits72 w = code.encode(0xFEDCBA9876543210ull);
        for (int erased = 0; erased < 72; ++erased) {
            for (int a = 0; a < 72; ++a) {
                for (int b = a; b < 72; ++b) {
                    Bits72 r = w;
                    r.set(a, !r.get(a));
                    if (b != a)
                        r.set(b, !r.get(b));
                    const CodewordDecode fast =
                        code.decodeWithErasureCompiled(r, erased);
                    const CodewordDecode ref =
                        code.decodeWithErasureReference(r, erased);
                    ASSERT_EQ(fast.status, ref.status);
                    ASSERT_EQ(fast.correction, ref.correction);
                }
            }
        }
    }
}

TEST(DifferentialCampaign, TalliesIdenticalAcrossBackends)
{
    BackendGuard guard;
    sim::CampaignSpec spec;
    spec.scheme_ids = {"ni-secded", "duet", "trio", "i-ssc", "ssc-dsd+"};
    spec.samples = 20000;
    spec.seed = 0xD1FFC0DEull;
    spec.threads = 2;
    spec.chunk = 4096;

    setCodecBackend(CodecBackend::compiled);
    const sim::CampaignResult fast = sim::CampaignRunner(spec).run();
    setCodecBackend(CodecBackend::reference);
    const sim::CampaignResult ref = sim::CampaignRunner(spec).run();
    setCodecBackend(CodecBackend::compiled);

    EXPECT_EQ(fast.codec_backend, "compiled");
    EXPECT_EQ(ref.codec_backend, "reference");
    ASSERT_EQ(fast.cells.size(), ref.cells.size());
    for (std::size_t i = 0; i < fast.cells.size(); ++i) {
        const sim::CampaignCell& a = fast.cells[i];
        const sim::CampaignCell& b = ref.cells[i];
        ASSERT_EQ(a.scheme_id, b.scheme_id);
        ASSERT_EQ(a.pattern, b.pattern);
        EXPECT_EQ(a.counts.trials, b.counts.trials);
        EXPECT_EQ(a.counts.dce, b.counts.dce);
        EXPECT_EQ(a.counts.due, b.counts.due);
        EXPECT_EQ(a.counts.sdc, b.counts.sdc);
    }
}

} // namespace
} // namespace gpuecc
