/**
 * @file
 * Differential harness: compiled codec vs matrix reference.
 *
 * The compiled fast path (byte parity tables + syndrome->correction
 * tables) must be observationally identical to the original
 * matrix/bit-by-bit reference it was lowered from. This harness
 * cross-checks the two backends bit-for-bit: at the Code72 level over
 * every codeword-local error, and at the entry level for every
 * registered scheme over all 1- and 2-bit flips, every aligned byte
 * pattern, and seeded random sparse patterns — then once more at the
 * campaign level, where a whole sampled campaign must produce
 * identical outcome tallies under either backend.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <cstdlib>
#include <cstring>

#include "codes/hsiao.hpp"
#include "codes/linear_code.hpp"
#include "codes/sec2bec.hpp"
#include "common/codec_mode.hpp"
#include "common/rng.hpp"
#include "ecc/reconfigurable.hpp"
#include "ecc/registry.hpp"
#include "ecc/rs_scheme.hpp"
#include "sim/campaign.hpp"

namespace gpuecc {
namespace {

/** Restores the codec backend a test body switches around. */
class BackendGuard
{
  public:
    BackendGuard() : saved_(codecBackend()) {}
    ~BackendGuard() { setCodecBackend(saved_); }

  private:
    CodecBackend saved_;
};

/** Decode `received` under both backends and require identical results. */
void
expectBackendsAgree(const EntryScheme& scheme, const Bits288& received)
{
    setCodecBackend(CodecBackend::compiled);
    const EntryDecode fast = scheme.decode(received);
    setCodecBackend(CodecBackend::reference);
    const EntryDecode ref = scheme.decode(received);
    setCodecBackend(CodecBackend::compiled);

    ASSERT_EQ(fast.status, ref.status);
    if (fast.status != EntryDecode::Status::due)
        ASSERT_EQ(fast.data, ref.data);
}

class DifferentialCodec : public ::testing::TestWithParam<std::string>
{
  protected:
    DifferentialCodec() : scheme_(makeScheme(GetParam()))
    {
        Rng rng(0xD1FFull);
        data_ = {rng.next64(), rng.next64(), rng.next64(), rng.next64()};
        setCodecBackend(CodecBackend::compiled);
        golden_ = scheme_->encode(data_);
    }

    Bits288 flipped(std::initializer_list<int> positions) const
    {
        Bits288 r = golden_;
        for (int p : positions)
            r.set(p, !r.get(p));
        return r;
    }

    BackendGuard guard_;
    std::shared_ptr<EntryScheme> scheme_;
    EntryData data_;
    Bits288 golden_;
};

TEST_P(DifferentialCodec, EncodeIdenticalAcrossBackends)
{
    Rng rng(0xE2C0ull);
    for (int trial = 0; trial < 64; ++trial) {
        const EntryData d = {rng.next64(), rng.next64(), rng.next64(),
                             rng.next64()};
        setCodecBackend(CodecBackend::compiled);
        const Bits288 fast = scheme_->encode(d);
        setCodecBackend(CodecBackend::reference);
        const Bits288 ref = scheme_->encode(d);
        setCodecBackend(CodecBackend::compiled);
        ASSERT_EQ(fast, ref);
    }
}

TEST_P(DifferentialCodec, CleanEntryDecodesIdentically)
{
    expectBackendsAgree(*scheme_, golden_);
}

TEST_P(DifferentialCodec, AllSingleBitFlips)
{
    for (int a = 0; a < 288; ++a)
        expectBackendsAgree(*scheme_, flipped({a}));
}

TEST_P(DifferentialCodec, AllDoubleBitFlips)
{
    for (int a = 0; a < 288; ++a) {
        for (int b = a + 1; b < 288; ++b)
            expectBackendsAgree(*scheme_, flipped({a, b}));
    }
}

TEST_P(DifferentialCodec, AllAlignedBytePatterns)
{
    // Every value of every aligned byte: the compiled codec's native
    // lookup granularity, so any table row defect surfaces here.
    for (int byte = 0; byte < 36; ++byte) {
        for (int v = 1; v < 256; ++v) {
            Bits288 r = golden_;
            for (int t = 0; t < 8; ++t) {
                if ((v >> t) & 1) {
                    const int pos = 8 * byte + t;
                    r.set(pos, !r.get(pos));
                }
            }
            expectBackendsAgree(*scheme_, r);
        }
    }
}

TEST_P(DifferentialCodec, RandomSparsePatterns)
{
    Rng rng(0xFA57ull);
    for (int trial = 0; trial < 4000; ++trial) {
        Bits288 r = golden_;
        const int weight = 3 + static_cast<int>(rng.nextBounded(4));
        for (int f = 0; f < weight; ++f) {
            const int pos = static_cast<int>(rng.nextBounded(288));
            r.set(pos, !r.get(pos));
        }
        expectBackendsAgree(*scheme_, r);
    }
}

TEST_P(DifferentialCodec, PinErasureDecodeIdentical)
{
    // Erasure decode under both backends, for every pin, with the
    // erased pin flipped across all beats plus one extra random flip.
    Rng rng(0xE7A5ull);
    for (int pin = 0; pin < 72; ++pin) {
        Bits288 r = golden_;
        for (int beat = 0; beat < 4; ++beat) {
            if (rng.nextBool(0.5)) {
                const int pos = 72 * beat + pin;
                r.set(pos, !r.get(pos));
            }
        }
        const int extra = static_cast<int>(rng.nextBounded(288));
        r.set(extra, !r.get(extra));

        setCodecBackend(CodecBackend::compiled);
        const EntryDecode fast = scheme_->decodeWithPinErasure(r, pin);
        setCodecBackend(CodecBackend::reference);
        const EntryDecode ref = scheme_->decodeWithPinErasure(r, pin);
        setCodecBackend(CodecBackend::compiled);

        ASSERT_EQ(fast.status, ref.status);
        if (fast.status != EntryDecode::Status::due)
            ASSERT_EQ(fast.data, ref.data);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, DifferentialCodec,
    ::testing::Values("ni-secded", "i-secded", "duet", "ni-sec2bec",
                      "i-sec2bec", "trio", "i-ssc", "i-ssc-csc",
                      "ssc-dsd+", "dsc", "ssc-tsd"),
    [](const auto& info) {
        std::string name = info.param;
        for (char& c : name) {
            if (c == '-' || c == '+')
                c = '_';
        }
        return name;
    });

// ---------------------------------------------------------------------
// RS fuzz tier: the SIMD/SoA Reed-Solomon fast path vs the scalar
// oracle, at symbol granularity.
//
// The binary-level sweeps above treat every scheme uniformly; this
// tier speaks the RS schemes' native error domain. Errors are
// injected per *symbol* (a physical byte for the (36,32) schemes, a
// 4-pin x 2-beat nibble-column pair for the interleaved (18,16)
// schemes) and every decode is triple-checked: fast single-entry,
// fast batched (through decodeBatch, which runs the SoA/SIMD
// kernels), and the reference oracle. Agreement covers the outcome
// class, the corrected data, and — critically — *miscorrection
// identity*: when a 2/3-symbol pattern aliases into some decoder's
// correctable footprint, both paths must fabricate the exact same
// wrong answer, or campaign SDC tallies would diverge between
// backends.
//
// The 2-symbol value sweep is exhaustive in positions and uses a
// fixed 8-value magnitude subset per position pair (630 x 64), plus
// a full 255 x 255 magnitude sweep at three representative pairs.
// Set GPUECC_RS_EXHAUSTIVE=1 to run the full 630 x 255 x 255 sweep
// (~41M decodes per scheme; minutes-to-hours, not tier-1).
// ---------------------------------------------------------------------

/** Magnitude subset for the exhaustive-position 2-symbol sweep. */
const std::uint8_t kPairMagnitudes[] = {0x01, 0x02, 0x10, 0x53,
                                        0x80, 0xAA, 0xC3, 0xFF};

class RsDifferential : public ::testing::TestWithParam<std::string>
{
  protected:
    RsDifferential() : scheme_(makeScheme(GetParam()))
    {
        interleaved_ = GetParam().rfind("i-ssc", 0) == 0;
        Rng rng(0x55C0DEull);
        data_ = {rng.next64(), rng.next64(), rng.next64(), rng.next64()};
        setCodecBackend(CodecBackend::compiled);
        golden_ = scheme_->encode(data_);
    }

    /** Both organizations carry 36 code symbols per entry. */
    static constexpr int kNumSymbols = 36;

    /** XOR `mag` into code symbol `sym` through the physical layout. */
    void
    xorSymbol(Bits288& r, int sym, std::uint8_t mag) const
    {
        if (interleaved_) {
            const int cw = sym / 18;
            const int pos = sym % 18;
            for (int t = 0; t < 8; ++t) {
                if ((mag >> t) & 1) {
                    const int p =
                        InterleavedSscScheme::physicalBit(cw, pos, t);
                    r.set(p, !r.get(p));
                }
            }
        } else {
            const int base = 8 * Rs3632Scheme::physicalByteOf(sym);
            for (int t = 0; t < 8; ++t) {
                if ((mag >> t) & 1)
                    r.set(base + t, !r.get(base + t));
            }
        }
    }

    /** Fast single, fast batched, and reference must fully agree. */
    void
    check(const Bits288& r) const
    {
        setCodecBackend(CodecBackend::compiled);
        const EntryDecode fast = scheme_->decode(r);
        EntryDecode batched{};
        scheme_->decodeBatch(&r, &batched, 1);
        setCodecBackend(CodecBackend::reference);
        const EntryDecode ref = scheme_->decode(r);
        setCodecBackend(CodecBackend::compiled);

        ASSERT_EQ(fast.status, ref.status);
        ASSERT_EQ(batched.status, ref.status);
        if (ref.status != EntryDecode::Status::due) {
            ASSERT_EQ(fast.data, ref.data);
            ASSERT_EQ(batched.data, ref.data);
        }
    }

    BackendGuard guard_;
    std::shared_ptr<EntryScheme> scheme_;
    EntryData data_;
    Bits288 golden_;
    bool interleaved_;
};

TEST_P(RsDifferential, AllSingleSymbolErrorsExhaustive)
{
    for (int sym = 0; sym < kNumSymbols; ++sym) {
        for (int mag = 1; mag < 256; ++mag) {
            Bits288 r = golden_;
            xorSymbol(r, sym, static_cast<std::uint8_t>(mag));
            check(r);
            if (HasFatalFailure())
                FAIL() << "sym=" << sym << " mag=" << mag;
        }
    }
}

TEST_P(RsDifferential, AllDoubleSymbolErrorPositions)
{
    const bool exhaustive = [] {
        const char* env = std::getenv("GPUECC_RS_EXHAUSTIVE");
        return env != nullptr && *env != '\0'
               && std::strcmp(env, "0") != 0;
    }();
    for (int a = 0; a < kNumSymbols; ++a) {
        for (int b = a + 1; b < kNumSymbols; ++b) {
            if (exhaustive) {
                for (int m1 = 1; m1 < 256; ++m1) {
                    for (int m2 = 1; m2 < 256; ++m2) {
                        Bits288 r = golden_;
                        xorSymbol(r, a, static_cast<std::uint8_t>(m1));
                        xorSymbol(r, b, static_cast<std::uint8_t>(m2));
                        check(r);
                        if (HasFatalFailure())
                            FAIL() << "a=" << a << " b=" << b
                                   << " m1=" << m1 << " m2=" << m2;
                    }
                }
                continue;
            }
            for (std::uint8_t m1 : kPairMagnitudes) {
                for (std::uint8_t m2 : kPairMagnitudes) {
                    Bits288 r = golden_;
                    xorSymbol(r, a, m1);
                    xorSymbol(r, b, m2);
                    check(r);
                    if (HasFatalFailure())
                        FAIL() << "a=" << a << " b=" << b
                               << " m1=" << int(m1) << " m2=" << int(m2);
                }
            }
        }
    }
}

TEST_P(RsDifferential, FullMagnitudeSweepAtRepresentativePairs)
{
    // Check+check, check+data, and data+data symbol pairs, every
    // (m1, m2) in [1, 255]^2 — the full alias surface at fixed
    // geometry.
    const int pairs[3][2] = {{0, 1}, {1, 7}, {10, 29}};
    for (const auto& pair : pairs) {
        for (int m1 = 1; m1 < 256; ++m1) {
            for (int m2 = 1; m2 < 256; ++m2) {
                Bits288 r = golden_;
                xorSymbol(r, pair[0], static_cast<std::uint8_t>(m1));
                xorSymbol(r, pair[1], static_cast<std::uint8_t>(m2));
                check(r);
                if (HasFatalFailure())
                    FAIL() << "pair=(" << pair[0] << "," << pair[1]
                           << ") m1=" << m1 << " m2=" << m2;
            }
        }
    }
}

TEST_P(RsDifferential, RandomSparseSymbolFloods)
{
    // >= 3-symbol patterns: beyond every decoder's correction radius,
    // where only detection vs miscorrection identity is at stake.
    Rng rng(0xF100Dull);
    for (int trial = 0; trial < 4000; ++trial) {
        Bits288 r = golden_;
        const int weight = 3 + static_cast<int>(rng.nextBounded(4));
        for (int f = 0; f < weight; ++f) {
            const int sym = static_cast<int>(rng.nextBounded(kNumSymbols));
            const auto mag = static_cast<std::uint8_t>(
                1 + rng.nextBounded(255));
            xorSymbol(r, sym, mag);
        }
        check(r);
        if (HasFatalFailure())
            FAIL() << "trial=" << trial;
    }
}

TEST_P(RsDifferential, RandomDataPatternsDecodeIdentically)
{
    // The fast encode + clean decode loop over random payloads: the
    // SoA gather must reproduce every byte of every payload.
    Rng rng(0xDA7A5ull);
    for (int trial = 0; trial < 256; ++trial) {
        const EntryData d = {rng.next64(), rng.next64(), rng.next64(),
                             rng.next64()};
        setCodecBackend(CodecBackend::compiled);
        const Bits288 w = scheme_->encode(d);
        check(w);
        if (HasFatalFailure())
            FAIL() << "trial=" << trial;
        setCodecBackend(CodecBackend::compiled);
        const EntryDecode round = scheme_->decode(w);
        ASSERT_EQ(round.status, EntryDecode::Status::clean);
        ASSERT_EQ(round.data, d);
    }
}

TEST_P(RsDifferential, PinErasureDecodeFuzz)
{
    // Heavier erasure fuzz than the generic tier: every pin, random
    // per-beat damage on the pin plus up to two extra symbol errors.
    Rng rng(0xE7A5E2ull);
    for (int pin = 0; pin < 72; ++pin) {
        for (int trial = 0; trial < 8; ++trial) {
            Bits288 r = golden_;
            for (int beat = 0; beat < 4; ++beat) {
                if (rng.nextBool(0.6)) {
                    const int pos = 72 * beat + pin;
                    r.set(pos, !r.get(pos));
                }
            }
            const int extras = static_cast<int>(rng.nextBounded(3));
            for (int f = 0; f < extras; ++f) {
                xorSymbol(r,
                          static_cast<int>(rng.nextBounded(kNumSymbols)),
                          static_cast<std::uint8_t>(
                              1 + rng.nextBounded(255)));
            }

            setCodecBackend(CodecBackend::compiled);
            const EntryDecode fast = scheme_->decodeWithPinErasure(r, pin);
            setCodecBackend(CodecBackend::reference);
            const EntryDecode ref = scheme_->decodeWithPinErasure(r, pin);
            setCodecBackend(CodecBackend::compiled);

            ASSERT_EQ(fast.status, ref.status)
                << "pin=" << pin << " trial=" << trial;
            if (fast.status != EntryDecode::Status::due)
                ASSERT_EQ(fast.data, ref.data) << "pin=" << pin;
        }
    }
}

TEST_P(RsDifferential, BatchedDecodeMatchesReferenceElementwise)
{
    // One big heterogeneous batch — clean entries, single-symbol
    // errors, and random floods interleaved — pushed through
    // decodeBatch in one call, so the SoA transpose, the bulk
    // early-out, and the suspect path are exercised against each
    // other across tile boundaries (the batch exceeds one 256-entry
    // tile).
    Rng rng(0xBA7C4ull);
    std::vector<Bits288> batch;
    for (int sym = 0; sym < kNumSymbols; ++sym) {
        for (std::uint8_t mag : kPairMagnitudes) {
            Bits288 r = golden_;
            xorSymbol(r, sym, mag);
            batch.push_back(r);
            batch.push_back(golden_); // interleave clean entries
        }
    }
    for (int trial = 0; trial < 128; ++trial) {
        Bits288 r = golden_;
        const int weight = 2 + static_cast<int>(rng.nextBounded(4));
        for (int f = 0; f < weight; ++f) {
            xorSymbol(r, static_cast<int>(rng.nextBounded(kNumSymbols)),
                      static_cast<std::uint8_t>(1 + rng.nextBounded(255)));
        }
        batch.push_back(r);
    }

    std::vector<EntryDecode> out(batch.size());
    setCodecBackend(CodecBackend::compiled);
    scheme_->decodeBatch(batch.data(), out.data(), batch.size());
    setCodecBackend(CodecBackend::reference);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const EntryDecode ref = scheme_->decode(batch[i]);
        ASSERT_EQ(out[i].status, ref.status) << "entry " << i;
        if (ref.status != EntryDecode::Status::due)
            ASSERT_EQ(out[i].data, ref.data) << "entry " << i;
    }
    setCodecBackend(CodecBackend::compiled);
}

INSTANTIATE_TEST_SUITE_P(
    RsSchemes, RsDifferential,
    ::testing::Values("i-ssc", "i-ssc-csc", "ssc-dsd+", "dsc",
                      "ssc-tsd"),
    [](const auto& info) {
        std::string name = info.param;
        for (char& c : name) {
            if (c == '-' || c == '+')
                c = '_';
        }
        return name;
    });

TEST(DifferentialReconfigurable, BothPoliciesAgreeAcrossBackends)
{
    BackendGuard guard;
    ReconfigurableDuetTrio scheme;
    Rng rng(0x12EC0ull);
    const EntryData d = {rng.next64(), rng.next64(), rng.next64(),
                         rng.next64()};
    setCodecBackend(CodecBackend::compiled);
    const Bits288 golden = scheme.encode(d);

    for (ReconfigurableDuetTrio::Policy policy :
         {ReconfigurableDuetTrio::Policy::duet,
          ReconfigurableDuetTrio::Policy::trio}) {
        scheme.setPolicy(policy);
        for (int a = 0; a < 288; ++a) {
            Bits288 r = golden;
            r.set(a, !r.get(a));
            const int b = static_cast<int>(rng.nextBounded(288));
            r.set(b, !r.get(b));
            expectBackendsAgree(scheme, r);
        }
    }
}

/** Code72-level differential over both paper codes and both modes. */
class DifferentialCode72 : public ::testing::Test
{
  protected:
    std::vector<Code72> codes() const
    {
        std::vector<Code72> out;
        out.emplace_back(hsiao7264Matrix());
        out.emplace_back(sec2becPaperMatrix());
        out.emplace_back(sec2becInterleavedMatrix(),
                         Code72::stride4Pairs());
        return out;
    }
};

TEST_F(DifferentialCode72, EncodeAndSyndromeIdentical)
{
    Rng rng(0xC0DEull);
    for (const Code72& code : codes()) {
        for (int trial = 0; trial < 256; ++trial) {
            const std::uint64_t data = rng.next64();
            ASSERT_EQ(code.encodeCompiled(data),
                      code.encodeReference(data));
        }
        Bits72 w = code.encode(rng.next64());
        for (int a = 0; a < 72; ++a) {
            for (int b = 0; b < 72; ++b) {
                Bits72 r = w;
                r.set(a, !r.get(a));
                r.set(b, r.get(b) ^ 1);
                ASSERT_EQ(code.syndromeCompiled(r),
                          code.syndromeReference(r));
            }
        }
    }
}

TEST_F(DifferentialCode72, DecodeIdenticalForAllDoubleFlips)
{
    for (const Code72& code : codes()) {
        const Bits72 w = code.encode(0x0123456789ABCDEFull);
        for (Code72::Mode mode :
             {Code72::Mode::secDed, Code72::Mode::sec2bEc}) {
            for (int a = 0; a < 72; ++a) {
                for (int b = a; b < 72; ++b) {
                    Bits72 r = w;
                    r.set(a, !r.get(a));
                    if (b != a)
                        r.set(b, !r.get(b));
                    const CodewordDecode fast =
                        code.decodeCompiled(r, mode);
                    const CodewordDecode ref =
                        code.decodeReference(r, mode);
                    ASSERT_EQ(fast.status, ref.status);
                    ASSERT_EQ(fast.correction, ref.correction);
                }
            }
        }
    }
}

TEST_F(DifferentialCode72, ErasureDecodeIdentical)
{
    for (const Code72& code : codes()) {
        const Bits72 w = code.encode(0xFEDCBA9876543210ull);
        for (int erased = 0; erased < 72; ++erased) {
            for (int a = 0; a < 72; ++a) {
                for (int b = a; b < 72; ++b) {
                    Bits72 r = w;
                    r.set(a, !r.get(a));
                    if (b != a)
                        r.set(b, !r.get(b));
                    const CodewordDecode fast =
                        code.decodeWithErasureCompiled(r, erased);
                    const CodewordDecode ref =
                        code.decodeWithErasureReference(r, erased);
                    ASSERT_EQ(fast.status, ref.status);
                    ASSERT_EQ(fast.correction, ref.correction);
                }
            }
        }
    }
}

TEST(DifferentialCampaign, TalliesIdenticalAcrossBackends)
{
    BackendGuard guard;
    sim::CampaignSpec spec;
    spec.scheme_ids = {"ni-secded", "duet", "trio", "i-ssc", "ssc-dsd+"};
    spec.samples = 20000;
    spec.seed = 0xD1FFC0DEull;
    spec.threads = 2;
    spec.chunk = 4096;

    setCodecBackend(CodecBackend::compiled);
    const sim::CampaignResult fast = sim::CampaignRunner(spec).run();
    setCodecBackend(CodecBackend::reference);
    const sim::CampaignResult ref = sim::CampaignRunner(spec).run();
    setCodecBackend(CodecBackend::compiled);

    EXPECT_EQ(fast.codec_backend, "compiled");
    EXPECT_EQ(ref.codec_backend, "reference");
    ASSERT_EQ(fast.cells.size(), ref.cells.size());
    for (std::size_t i = 0; i < fast.cells.size(); ++i) {
        const sim::CampaignCell& a = fast.cells[i];
        const sim::CampaignCell& b = ref.cells[i];
        ASSERT_EQ(a.scheme_id, b.scheme_id);
        ASSERT_EQ(a.pattern, b.pattern);
        EXPECT_EQ(a.counts.trials, b.counts.trials);
        EXPECT_EQ(a.counts.dce, b.counts.dce);
        EXPECT_EQ(a.counts.due, b.counts.due);
        EXPECT_EQ(a.counts.sdc, b.counts.sdc);
    }
}

} // namespace
} // namespace gpuecc
