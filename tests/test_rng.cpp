/** @file Unit and statistical tests for the RNG. */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace gpuecc {
namespace {

TEST(Rng, DeterministicPerSeed)
{
    Rng a(123), b(123), c(124);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
    bool differs = false;
    Rng a2(123);
    for (int i = 0; i < 100; ++i)
        differs = differs || (a2.next64() != c.next64());
    EXPECT_TRUE(differs);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(5);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedCoversSmallRange)
{
    Rng rng(6);
    std::array<int, 5> seen{};
    for (int i = 0; i < 1000; ++i)
        ++seen[rng.nextBounded(5)];
    for (int count : seen)
        EXPECT_GT(count, 100); // uniform: expect ~200 each
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(7);
    OnlineStats stats;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.nextDouble();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        stats.add(u);
    }
    EXPECT_NEAR(stats.mean(), 0.5, 0.01);
    EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(8);
    OnlineStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.nextGaussian());
    EXPECT_NEAR(stats.mean(), 0.0, 0.02);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(9);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.015);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(10);
    OnlineStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.nextExponential(2.0));
    EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

class PoissonMeanProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(PoissonMeanProperty, MeanAndVarianceMatch)
{
    const double mean = GetParam();
    Rng rng(static_cast<std::uint64_t>(mean * 1000) + 11);
    OnlineStats stats;
    for (int i = 0; i < 30000; ++i)
        stats.add(static_cast<double>(rng.nextPoisson(mean)));
    EXPECT_NEAR(stats.mean(), mean, std::max(0.05, mean * 0.03));
    EXPECT_NEAR(stats.variance(), mean, std::max(0.1, mean * 0.06));
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonMeanProperty,
                         ::testing::Values(0.1, 0.5, 2.0, 10.0, 50.0,
                                           200.0));

TEST(Rng, PoissonZeroMean)
{
    Rng rng(12);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextPoisson(0.0), 0u);
}

TEST(Rng, BinomialEdgeCases)
{
    Rng rng(14);
    EXPECT_EQ(rng.nextBinomial(0, 0.5), 0u);
    EXPECT_EQ(rng.nextBinomial(100, 0.0), 0u);
    EXPECT_EQ(rng.nextBinomial(100, 1.0), 100u);
    // p extremely close to 1 must still exhaust n (the displacement
    // damage pool-exhaustion case).
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.nextBinomial(500, 1.0 - 1e-18), 500u);
}

class BinomialMoments
    : public ::testing::TestWithParam<std::pair<std::uint64_t, double>>
{
};

TEST_P(BinomialMoments, MeanMatches)
{
    const auto [n, p] = GetParam();
    Rng rng(15);
    OnlineStats stats;
    for (int i = 0; i < 20000; ++i)
        stats.add(static_cast<double>(rng.nextBinomial(n, p)));
    const double mean = static_cast<double>(n) * p;
    EXPECT_NEAR(stats.mean(), mean, std::max(0.05, mean * 0.03));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BinomialMoments,
    ::testing::Values(std::pair<std::uint64_t, double>{20, 0.3},
                      std::pair<std::uint64_t, double>{500, 0.01},
                      std::pair<std::uint64_t, double>{2700, 0.4},
                      std::pair<std::uint64_t, double>{2700, 0.97}));

TEST(Rng, SplitStreamsDiffer)
{
    Rng parent(13);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.next64() == child.next64();
    EXPECT_LT(same, 3);
}

TEST(Rng, ForStreamIsDeterministic)
{
    Rng a = Rng::forStream(42, 7);
    Rng b = Rng::forStream(42, 7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, ForStreamSeparatesStreams)
{
    // Adjacent stream ids (the campaign's shard indices) must give
    // unrelated sequences, as must the same stream id under another
    // seed.
    Rng base = Rng::forStream(42, 7);
    Rng next_stream = Rng::forStream(42, 8);
    Rng other_seed = Rng::forStream(43, 7);
    int same_stream = 0, same_seed = 0;
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t v = base.next64();
        same_stream += v == next_stream.next64();
        same_seed += v == other_seed.next64();
    }
    EXPECT_LT(same_stream, 3);
    EXPECT_LT(same_seed, 3);
}

TEST(Rng, ForStreamZeroStreamDiffersFromPlainSeed)
{
    // Stream derivation perturbs the state even for stream 0, so
    // campaign shard 0 does not replay the golden-entry draw.
    Rng plain(42);
    Rng stream0 = Rng::forStream(42, 0);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += plain.next64() == stream0.next64();
    EXPECT_LT(same, 3);
}

TEST(Rng, ForStreamSequencesIndependentOfInterleaving)
{
    // A stream's sequence is a pure function of (seed, stream):
    // drawing several streams round-robin must reproduce exactly what
    // each stream yields when drawn alone. This is what lets campaign
    // workers consume streams in any order.
    constexpr int kStreams = 8;
    constexpr int kDraws = 256;
    std::vector<std::vector<std::uint64_t>> alone(kStreams);
    for (int s = 0; s < kStreams; ++s) {
        Rng r = Rng::forStream(0x5EED, s);
        for (int i = 0; i < kDraws; ++i)
            alone[s].push_back(r.next64());
    }
    std::vector<Rng> live;
    for (int s = 0; s < kStreams; ++s)
        live.push_back(Rng::forStream(0x5EED, s));
    for (int i = 0; i < kDraws; ++i) {
        for (int s = 0; s < kStreams; ++s)
            ASSERT_EQ(live[s].next64(), alone[s][i]);
    }
}

TEST(Rng, BlockKeyedDrawsInvariantToPartition)
{
    // The shard engine keys draws to fixed 1024-sample stream blocks,
    // so sample i sees forStream(seed, i / kBlock) regardless of how
    // the sample range is cut into shards. Model that here: partition
    // [0, total) into chunks of several (block-multiple) sizes and
    // require the flat draw sequence to be identical.
    static constexpr std::uint64_t kBlock = 1024;
    static constexpr std::uint64_t kTotal = 8 * kBlock + 512;
    auto draw_all = [](std::uint64_t chunk) {
        std::vector<std::uint64_t> out;
        for (std::uint64_t begin = 0; begin < kTotal; begin += chunk) {
            const std::uint64_t end = std::min(kTotal, begin + chunk);
            for (std::uint64_t b = begin; b < end; b += kBlock) {
                Rng rng = Rng::forStream(0x5EED, b / kBlock);
                const std::uint64_t stop = std::min(end, b + kBlock);
                for (std::uint64_t i = b; i < stop; ++i)
                    out.push_back(rng.next64());
            }
        }
        return out;
    };
    const auto reference = draw_all(kTotal);
    for (std::uint64_t chunk : {kBlock, 2 * kBlock, 4 * kBlock})
        ASSERT_EQ(draw_all(chunk), reference);
}

TEST(Rng, ForStreamStatisticallyUniform)
{
    // Pool the first draw of many consecutive streams — the exact
    // pattern the campaign engine relies on for unbiased shards.
    OnlineStats stats;
    for (std::uint64_t stream = 0; stream < 20000; ++stream) {
        Rng r = Rng::forStream(0x5EED, stream);
        stats.add(r.nextDouble());
    }
    EXPECT_NEAR(stats.mean(), 0.5, 0.01);
    EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

} // namespace
} // namespace gpuecc
