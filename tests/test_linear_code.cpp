/** @file Tests for the Code72 linear block code engine. */

#include <set>

#include <gtest/gtest.h>

#include "codes/hsiao.hpp"
#include "codes/linear_code.hpp"
#include "common/rng.hpp"

namespace gpuecc {
namespace {

class Code72Test : public ::testing::Test
{
  protected:
    Code72Test() : code_(hsiao7264Matrix()) {}
    Code72 code_;
};

TEST_F(Code72Test, EncodeProducesValidCodeword)
{
    Rng rng(1);
    for (int trial = 0; trial < 100; ++trial) {
        const std::uint64_t data = rng.next64();
        const Bits72 cw = code_.encode(data);
        EXPECT_EQ(code_.syndrome(cw), 0);
        EXPECT_EQ(code_.extractData(cw), data);
    }
}

TEST_F(Code72Test, EncodeIsLinear)
{
    Rng rng(2);
    for (int trial = 0; trial < 100; ++trial) {
        const std::uint64_t a = rng.next64();
        const std::uint64_t b = rng.next64();
        EXPECT_EQ(code_.encode(a) ^ code_.encode(b),
                  code_.encode(a ^ b));
    }
}

TEST_F(Code72Test, CleanDecode)
{
    const Bits72 cw = code_.encode(42);
    const CodewordDecode d = code_.decode(cw, Code72::Mode::secDed);
    EXPECT_EQ(d.status, CodewordDecode::Status::clean);
    EXPECT_TRUE(d.correction.none());
}

/** Every single-bit error must be corrected (exhaustive sweep). */
class SingleBitSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(SingleBitSweep, Corrected)
{
    const Code72 code(hsiao7264Matrix());
    const std::uint64_t data = 0xFEDCBA9876543210ull;
    Bits72 received = code.encode(data);
    received.flip(GetParam());
    const CodewordDecode d = code.decode(received, Code72::Mode::secDed);
    ASSERT_EQ(d.status, CodewordDecode::Status::corrected);
    Bits72 expected_fix;
    expected_fix.set(GetParam(), 1);
    EXPECT_EQ(d.correction, expected_fix);
    EXPECT_EQ(code.extractData(received ^ d.correction), data);
}

INSTANTIATE_TEST_SUITE_P(AllPositions, SingleBitSweep,
                         ::testing::Range(0, 72));

TEST_F(Code72Test, AllDoubleBitErrorsDetected)
{
    // SEC-DED guarantee: exhaustive over all C(72,2) double errors.
    const Bits72 golden = code_.encode(0x0123456789ABCDEFull);
    for (int a = 0; a < 72; ++a) {
        for (int b = a + 1; b < 72; ++b) {
            Bits72 received = golden;
            received.flip(a);
            received.flip(b);
            const CodewordDecode d =
                code_.decode(received, Code72::Mode::secDed);
            ASSERT_EQ(d.status, CodewordDecode::Status::due)
                << "bits " << a << "," << b;
        }
    }
}

TEST_F(Code72Test, SyndromeDependsOnlyOnErrorMask)
{
    Rng rng(3);
    Bits72 mask;
    mask.flip(7);
    mask.flip(44);
    const std::uint8_t s0 = code_.syndrome(code_.encode(0) ^ mask);
    for (int trial = 0; trial < 50; ++trial) {
        const Bits72 cw = code_.encode(rng.next64());
        EXPECT_EQ(code_.syndrome(cw ^ mask), s0);
    }
}

TEST(Code72Pairs, AdjacentPairsTileAllBits)
{
    const auto pairs = Code72::adjacentPairs();
    ASSERT_EQ(pairs.size(), 36u);
    std::set<int> covered;
    for (const auto& [a, b] : pairs) {
        EXPECT_EQ(b, a + 1);
        covered.insert(a);
        covered.insert(b);
    }
    EXPECT_EQ(covered.size(), 72u);
}

TEST(Code72Pairs, Stride4PairsTileAllBits)
{
    const auto pairs = Code72::stride4Pairs();
    ASSERT_EQ(pairs.size(), 36u);
    std::set<int> covered;
    for (const auto& [a, b] : pairs) {
        EXPECT_EQ(b, a + 4);
        EXPECT_EQ(a / 8, b / 8); // within one 8-bit group
        covered.insert(a);
        covered.insert(b);
    }
    EXPECT_EQ(covered.size(), 72u);
}

TEST(Code72Properties, HsiaoPropertyQueries)
{
    const Code72 code(hsiao7264Matrix());
    EXPECT_TRUE(code.isSec());
    EXPECT_TRUE(code.isDed());
    // Hsiao was not designed for aligned-2b correction and (as a
    // property of this arrangement) its pair syndromes collide.
    const double rate = code.nonAligned2bMiscorrectionRate();
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
}

TEST(Code72Properties, ColumnSyndromeMatchesMatrix)
{
    const Code72 code(hsiao7264Matrix());
    const Gf2Matrix& h = code.parityCheck();
    for (int c = 0; c < 72; ++c) {
        unsigned expected = 0;
        for (int r = 0; r < 8; ++r)
            expected |= static_cast<unsigned>(h.get(r, c)) << r;
        EXPECT_EQ(code.columnSyndrome(c), expected);
    }
}

} // namespace
} // namespace gpuecc
