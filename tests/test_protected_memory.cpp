/** @file Tests for data-bit placement and ProtectedMemory. */

#include <set>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ecc/placement.hpp"
#include "ecc/protected_memory.hpp"
#include "ecc/registry.hpp"

namespace gpuecc {
namespace {

class PlacementTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PlacementTest, EverySchemeIsSystematic)
{
    const auto scheme = makeScheme(GetParam());
    const auto placement = dataBitPlacement(*scheme);
    std::set<int> positions(placement.begin(), placement.end());
    EXPECT_EQ(positions.size(), 256u); // injective
}

TEST_P(PlacementTest, FlippingPlacedBitFlipsThatDataBit)
{
    const auto scheme = makeScheme(GetParam());
    const auto placement = dataBitPlacement(*scheme);
    Rng rng(1);
    const EntryData data{rng.next64(), rng.next64(), rng.next64(),
                         rng.next64()};
    const Bits288 golden = scheme->encode(data);
    for (int i = 0; i < 256; i += 17) {
        Bits288 received = golden;
        received.flip(placement[i]);
        const EntryDecode d = scheme->decode(received);
        ASSERT_EQ(d.status, EntryDecode::Status::corrected);
        EXPECT_EQ(d.data, data);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, PlacementTest,
    ::testing::Values("ni-secded", "i-secded", "duet", "trio", "i-ssc",
                      "ssc-dsd+"),
    [](const auto& info) {
        std::string name = info.param;
        for (char& c : name) {
            if (c == '-' || c == '+')
                c = '_';
        }
        return name;
    });

TEST(ProtectedMemoryTest, WriteReadRoundTrip)
{
    ProtectedMemory mem(makeScheme("trio"), 1024);
    Rng rng(2);
    for (std::uint64_t i = 0; i < 50; ++i) {
        const EntryData data{rng.next64(), rng.next64(), rng.next64(),
                             rng.next64()};
        mem.write(i, data);
        const auto r = mem.read(i);
        EXPECT_EQ(r.status, EntryDecode::Status::clean);
        EXPECT_EQ(r.data, data);
        EXPECT_FALSE(r.silent_corruption);
    }
    EXPECT_EQ(mem.stats().writes, 50u);
    EXPECT_EQ(mem.stats().reads, 50u);
    EXPECT_EQ(mem.stats().sdcs, 0u);
}

TEST(ProtectedMemoryTest, UnwrittenReadsAsZero)
{
    ProtectedMemory mem(makeScheme("duet"), 16);
    const auto r = mem.read(7);
    EXPECT_EQ(r.status, EntryDecode::Status::clean);
    EXPECT_EQ(r.data, EntryData{});
}

TEST(ProtectedMemoryTest, ScrubOnReadRepairsStoredBits)
{
    ProtectedMemory mem(makeScheme("trio"), 16, true);
    const EntryData data{1, 2, 3, 4};
    mem.write(3, data);

    Bits288 flip;
    flip.set(100, 1);
    mem.injectPhysical(3, flip);

    // First read corrects and scrubs.
    const auto r1 = mem.read(3);
    EXPECT_EQ(r1.status, EntryDecode::Status::corrected);
    EXPECT_EQ(r1.data, data);
    EXPECT_EQ(mem.stats().scrub_fixes, 1u);

    // Second read sees repaired memory.
    const auto r2 = mem.read(3);
    EXPECT_EQ(r2.status, EntryDecode::Status::clean);
}

TEST(ProtectedMemoryTest, WithoutScrubErrorsAccumulate)
{
    ProtectedMemory mem(makeScheme("trio"), 16, false);
    mem.write(0, EntryData{9, 9, 9, 9});
    Bits288 flip;
    flip.set(5, 1);
    mem.injectPhysical(0, flip);
    EXPECT_EQ(mem.read(0).status, EntryDecode::Status::corrected);
    EXPECT_EQ(mem.read(0).status, EntryDecode::Status::corrected);

    // A patrol scrub repairs it.
    EXPECT_EQ(mem.scrub(), 1u);
    EXPECT_EQ(mem.read(0).status, EntryDecode::Status::clean);
}

TEST(ProtectedMemoryTest, ByteErrorOutcomesDifferByScheme)
{
    // A mat failure observed as data byte 3 in the beam replays as
    // physical byte 3: detected under DuetECC, corrected under Trio.
    Bits<256> data_mask;
    for (int t = 0; t < 8; ++t)
        data_mask.set(8 * 3 + t, 1);

    ProtectedMemory duet(makeScheme("duet"), 8);
    duet.write(0, EntryData{5, 6, 7, 8});
    duet.injectStructural(0, data_mask);
    EXPECT_EQ(duet.read(0).status, EntryDecode::Status::due);
    EXPECT_EQ(duet.stats().dues, 1u);

    ProtectedMemory trio(makeScheme("trio"), 8);
    trio.write(0, EntryData{5, 6, 7, 8});
    trio.injectStructural(0, data_mask);
    const auto r = trio.read(0);
    EXPECT_EQ(r.status, EntryDecode::Status::corrected);
    EXPECT_EQ(r.data, (EntryData{5, 6, 7, 8}));
}

TEST(ProtectedMemoryTest, TargetedLogicalCorruptionIsCorrected)
{
    // injectData targets the cells holding specific logical bits;
    // isolated flips are correctable regardless of placement.
    ProtectedMemory mem(makeScheme("trio"), 8);
    const EntryData data{11, 22, 33, 44};
    mem.write(0, data);
    Bits<256> one;
    one.set(200, 1);
    mem.injectData(0, one);
    const auto r = mem.read(0);
    EXPECT_EQ(r.status, EntryDecode::Status::corrected);
    EXPECT_EQ(r.data, data);
}

TEST(ProtectedMemoryTest, SilentCorruptionIsCounted)
{
    // Force an SDC: under plain NI:SEC-DED, a crafted byte error can
    // be miscorrected; the simulator's golden copy exposes it.
    ProtectedMemory mem(makeScheme("ni-secded"), 8, false);
    mem.write(0, EntryData{0xAA, 0xBB, 0xCC, 0xDD});
    Rng rng(4);
    bool saw_sdc = false;
    for (int trial = 0; trial < 2000 && !saw_sdc; ++trial) {
        Bits288 mask;
        const int byte = static_cast<int>(rng.nextBounded(36));
        for (int t = 0; t < 8; ++t) {
            if (rng.nextBool(0.5))
                mask.set(8 * byte + t, 1);
        }
        if (mask.popcount() < 2)
            continue;
        mem.injectPhysical(0, mask);
        const auto r = mem.read(0);
        saw_sdc = r.silent_corruption;
        mem.write(0, EntryData{0xAA, 0xBB, 0xCC, 0xDD}); // reset
    }
    EXPECT_TRUE(saw_sdc);
    EXPECT_GT(mem.stats().sdcs, 0u);
}

} // namespace
} // namespace gpuecc
