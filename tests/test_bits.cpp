/** @file Unit and property tests for the fixed-width bit vector. */

#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/rng.hpp"

namespace gpuecc {
namespace {

TEST(Bits, DefaultIsZero)
{
    Bits<72> b;
    EXPECT_TRUE(b.none());
    EXPECT_EQ(b.popcount(), 0);
    EXPECT_EQ(b.lowestSetBit(), -1);
}

TEST(Bits, SetGetFlip)
{
    Bits<72> b;
    b.set(0, 1);
    b.set(71, 1);
    EXPECT_EQ(b.get(0), 1);
    EXPECT_EQ(b.get(71), 1);
    EXPECT_EQ(b.get(35), 0);
    EXPECT_EQ(b.popcount(), 2);
    b.flip(71);
    EXPECT_EQ(b.get(71), 0);
    b.set(0, 0);
    EXPECT_TRUE(b.none());
}

TEST(Bits, WordBoundary)
{
    Bits<72> b;
    b.set(63, 1);
    b.set(64, 1);
    EXPECT_EQ(b.word(0), 0x8000000000000000ull);
    EXPECT_EQ(b.word(1), 1u);
}

TEST(Bits, SetWordMasksTrailingBits)
{
    Bits<72> b;
    b.setWord(1, ~std::uint64_t{0});
    // Only 8 bits live in the last word of a 72-bit vector.
    EXPECT_EQ(b.word(1), 0xFFu);
    EXPECT_EQ(b.popcount(), 8);
}

TEST(Bits, XorAndOr)
{
    Bits<72> a(0b1100);
    Bits<72> b(0b1010);
    EXPECT_EQ((a ^ b).word(0), 0b0110u);
    EXPECT_EQ((a & b).word(0), 0b1000u);
    EXPECT_EQ((a | b).word(0), 0b1110u);
}

TEST(Bits, AndParityMatchesManualDot)
{
    Rng rng(7);
    for (int trial = 0; trial < 200; ++trial) {
        Bits<72> a, b;
        a.setWord(0, rng.next64());
        a.setWord(1, rng.next64());
        b.setWord(0, rng.next64());
        b.setWord(1, rng.next64());
        int dot = 0;
        for (int i = 0; i < 72; ++i)
            dot ^= a.get(i) & b.get(i);
        EXPECT_EQ(a.andParity(b), dot);
    }
}

TEST(Bits, ForEachSetBitAscending)
{
    Bits<288> b;
    b.set(3, 1);
    b.set(64, 1);
    b.set(287, 1);
    std::vector<int> seen;
    b.forEachSetBit([&](int i) { seen.push_back(i); });
    EXPECT_EQ(seen, (std::vector<int>{3, 64, 287}));
}

TEST(Bits, LowestSetBit)
{
    Bits<288> b;
    b.set(200, 1);
    EXPECT_EQ(b.lowestSetBit(), 200);
    b.set(5, 1);
    EXPECT_EQ(b.lowestSetBit(), 5);
}

TEST(Bits, ExtractInsertRoundTrip)
{
    Bits<288> b;
    b.insert(60, 16, 0xBEEF);
    EXPECT_EQ(b.extract(60, 16), 0xBEEFu);
    EXPECT_EQ(b.popcount(), popcount64(0xBEEF));
    // Neighbours untouched.
    EXPECT_EQ(b.get(59), 0);
    EXPECT_EQ(b.get(76), 0);
}

TEST(Bits, EqualityAndToString)
{
    Bits<8> a(0xA5);
    Bits<8> b(0xA5);
    Bits<8> c(0xA4);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(a.toString(), "10100101");
}

/** Property sweep over bit positions: flip twice is identity. */
class BitsFlipProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(BitsFlipProperty, DoubleFlipIsIdentity)
{
    const int pos = GetParam();
    Bits<288> b;
    b.setWord(0, 0xDEADBEEFCAFEF00Dull);
    const Bits<288> before = b;
    b.flip(pos);
    EXPECT_NE(b, before);
    b.flip(pos);
    EXPECT_EQ(b, before);
}

INSTANTIATE_TEST_SUITE_P(Positions, BitsFlipProperty,
                         ::testing::Values(0, 1, 63, 64, 127, 128, 200,
                                           255, 256, 287));

} // namespace
} // namespace gpuecc
