/** @file Tests for the Table 1 error-pattern model. */

#include <set>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "faultsim/patterns.hpp"
#include "interleave/swizzle.hpp"

namespace gpuecc {
namespace {

TEST(PatternTable, ProbabilitiesMatchTable1)
{
    const auto& table = patternTable();
    double total = 0.0;
    for (const PatternInfo& info : table)
        total += info.probability;
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(patternInfo(ErrorPattern::oneBit).probability,
                     0.7398);
    EXPECT_DOUBLE_EQ(patternInfo(ErrorPattern::oneByte).probability,
                     0.2256);
    EXPECT_DOUBLE_EQ(patternInfo(ErrorPattern::wholeEntry).probability,
                     0.0223);
    EXPECT_EQ(patternInfo(ErrorPattern::onePin).bits_range, "2-4");
}

TEST(Classifier, SingleBit)
{
    Bits288 m;
    m.set(17, 1);
    EXPECT_EQ(classifyErrorMask(m), ErrorPattern::oneBit);
}

TEST(Classifier, PinBeatsByteInPriority)
{
    // Two bits on one pin across beats: same pin, different bytes.
    Bits288 m;
    m.set(layout::physicalIndex(0, 5), 1);
    m.set(layout::physicalIndex(2, 5), 1);
    EXPECT_EQ(classifyErrorMask(m), ErrorPattern::onePin);
}

TEST(Classifier, ByteBeatsTwoBits)
{
    Bits288 m;
    m.set(16, 1);
    m.set(23, 1); // both in byte 2
    EXPECT_EQ(classifyErrorMask(m), ErrorPattern::oneByte);
}

TEST(Classifier, TwoAndThreeBits)
{
    Bits288 two;
    two.set(0, 1);
    two.set(100, 1);
    EXPECT_EQ(classifyErrorMask(two), ErrorPattern::twoBits);

    Bits288 three = two;
    three.set(200, 1);
    EXPECT_EQ(classifyErrorMask(three), ErrorPattern::threeBits);
}

TEST(Classifier, BeatAndEntry)
{
    Bits288 beat;
    beat.set(72 + 1, 1);
    beat.set(72 + 20, 1);
    beat.set(72 + 40, 1);
    beat.set(72 + 60, 1);
    EXPECT_EQ(classifyErrorMask(beat), ErrorPattern::oneBeat);

    Bits288 entry = beat;
    entry.set(200, 1); // beat 2
    EXPECT_EQ(classifyErrorMask(entry), ErrorPattern::wholeEntry);
}

TEST(Enumeration, CountsMatchCombinatorics)
{
    auto count = [](ErrorPattern p) {
        return forEachErrorMask(p, [](const Bits288&) {});
    };
    EXPECT_EQ(count(ErrorPattern::oneBit), 288u);
    // 72 pins x (2^4 - 1 - 4) multi-bit masks.
    EXPECT_EQ(count(ErrorPattern::onePin), 72u * 11u);
    // 36 bytes x (2^8 - 1 - 8) multi-bit masks.
    EXPECT_EQ(count(ErrorPattern::oneByte), 36u * 247u);
    // C(288,2) minus same-byte pairs (36*C(8,2)) minus same-pin
    // pairs (72*C(4,2)).
    EXPECT_EQ(count(ErrorPattern::twoBits),
              288u * 287u / 2 - 36u * 28u - 72u * 6u);
}

TEST(Enumeration, EnumeratedMasksClassifyCorrectly)
{
    for (ErrorPattern p :
         {ErrorPattern::oneBit, ErrorPattern::onePin,
          ErrorPattern::oneByte, ErrorPattern::twoBits}) {
        forEachErrorMask(p, [p](const Bits288& mask) {
            ASSERT_EQ(classifyErrorMask(mask), p);
        });
    }
}

TEST(Enumeration, EnumerableQuery)
{
    EXPECT_TRUE(patternIsEnumerable(ErrorPattern::oneBit));
    EXPECT_TRUE(patternIsEnumerable(ErrorPattern::threeBits));
    EXPECT_FALSE(patternIsEnumerable(ErrorPattern::oneBeat));
    EXPECT_FALSE(patternIsEnumerable(ErrorPattern::wholeEntry));
}

class SamplerProperty : public ::testing::TestWithParam<ErrorPattern>
{
};

TEST_P(SamplerProperty, SamplesClassifyAsRequested)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 99);
    for (int trial = 0; trial < 500; ++trial) {
        const Bits288 mask = sampleErrorMask(GetParam(), rng);
        ASSERT_FALSE(mask.none());
        ASSERT_EQ(classifyErrorMask(mask), GetParam());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, SamplerProperty,
    ::testing::Values(ErrorPattern::oneBit, ErrorPattern::onePin,
                      ErrorPattern::oneByte, ErrorPattern::twoBits,
                      ErrorPattern::threeBits, ErrorPattern::oneBeat,
                      ErrorPattern::wholeEntry));

TEST(Sampler, ByteSeveritiesSpanRange)
{
    // Conditioned random byte corruption produces 2..8 bits.
    Rng rng(1);
    std::set<int> seen;
    for (int trial = 0; trial < 2000; ++trial)
        seen.insert(sampleErrorMask(ErrorPattern::oneByte, rng)
                        .popcount());
    EXPECT_EQ(*seen.begin(), 2);
    EXPECT_EQ(*seen.rbegin(), 8);
}

} // namespace
} // namespace gpuecc
