/** @file Tests for HBM2 geometry, retention, and the device sim. */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "hbm2/device.hpp"
#include "hbm2/geometry.hpp"
#include "hbm2/retention.hpp"

namespace gpuecc {
namespace hbm2 {
namespace {

TEST(Geometry, CapacityOfDefaultGpu)
{
    const Geometry g;
    EXPECT_EQ(g.capacityBytes(), 32ull * 1024 * 1024 * 1024);
    EXPECT_EQ(g.numEntries(), (32ull << 30) / 32);
    EXPECT_NEAR(g.capacityGbit(), 256.0, 1e-9);
}

TEST(Geometry, HierarchyArithmetic)
{
    // 512 rows x 64 cols = 32K entries per subarray = 1MB.
    EXPECT_EQ(entries_per_subarray, 512u * 64u);
    EXPECT_EQ(entries_per_subarray * entry_bytes, 1ull << 20);
    // Channel = 512MB, stack = 4GB.
    EXPECT_EQ(entries_per_channel * entry_bytes, 512ull << 20);
    EXPECT_EQ(entries_per_stack * entry_bytes, 4ull << 30);
}

class ComposeDecompose : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ComposeDecompose, RoundTrip)
{
    const Geometry g;
    const EntryAddress a = g.decompose(GetParam());
    EXPECT_EQ(g.compose(a), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Indices, ComposeDecompose,
    ::testing::Values(0ull, 1ull, 63ull, 64ull, 32767ull, 32768ull,
                      (32ull << 30) / 32 - 1));

TEST(Geometry, DecomposeFieldsInRange)
{
    const Geometry g;
    Rng rng(1);
    for (int trial = 0; trial < 1000; ++trial) {
        const EntryAddress a =
            g.decompose(rng.nextBounded(g.numEntries()));
        EXPECT_LT(a.stack, 8);
        EXPECT_LT(a.channel, channels_per_stack);
        EXPECT_LT(a.bank, banks_per_channel);
        EXPECT_LT(a.subarray, subarrays_per_bank);
        EXPECT_LT(a.row, rows_per_subarray);
        EXPECT_LT(a.column, columns_per_row);
    }
}

TEST(Retention, VisibleFractionMonotonic)
{
    const RetentionModel m(19.0, 9.0);
    EXPECT_LT(m.visibleFraction(8.0), m.visibleFraction(16.0));
    EXPECT_LT(m.visibleFraction(16.0), m.visibleFraction(48.0));
    EXPECT_NEAR(m.visibleFraction(19.0), 0.5, 1e-9);
}

TEST(Retention, PaperCalibration)
{
    // mu 19 ms / sigma 9 ms reproduce the paper's weak-cell counts:
    // ~294 of 2700 at 8 ms, ~1000 at 16 ms, ~2656 at 48 ms.
    const RetentionModel m(19.0, 9.0);
    EXPECT_NEAR(2700 * m.visibleFraction(8.0), 300, 40);
    EXPECT_NEAR(2700 * m.visibleFraction(16.0), 1000, 60);
    EXPECT_NEAR(2700 * m.visibleFraction(48.0), 2690, 25);
}

TEST(Retention, CellFailsSemantics)
{
    WeakCell cell{0, 0, 10.0, true};
    EXPECT_TRUE(RetentionModel::cellFails(cell, 16.0, 1));
    EXPECT_FALSE(RetentionModel::cellFails(cell, 16.0, 0));
    EXPECT_FALSE(RetentionModel::cellFails(cell, 8.0, 1));
    cell.one_to_zero = false;
    EXPECT_TRUE(RetentionModel::cellFails(cell, 16.0, 0));
    EXPECT_FALSE(RetentionModel::cellFails(cell, 16.0, 1));
}

TEST(Retention, SamplesArePositiveAndNearMu)
{
    const RetentionModel m(19.0, 9.0);
    Rng rng(2);
    OnlineStats stats;
    for (int i = 0; i < 20000; ++i) {
        const double r = m.sampleRetention(rng);
        ASSERT_GT(r, 0.0);
        stats.add(r);
    }
    EXPECT_NEAR(stats.mean(), 19.0, 0.7); // slight truncation bias up
}

TEST(Device, ExpectedWordPatterns)
{
    EXPECT_EQ(Device::expectedWord(DataPattern::zeros, false, 5, 2), 0u);
    EXPECT_EQ(Device::expectedWord(DataPattern::zeros, true, 5, 2),
              ~std::uint64_t{0});
    EXPECT_EQ(Device::expectedWord(DataPattern::checkerboard, false, 0, 0),
              0x5555555555555555ull);
    EXPECT_EQ(Device::expectedWord(DataPattern::checkerboard, false, 0, 1),
              0xAAAAAAAAAAAAAAAAull);
    // AN code: word index * (2^32 - 1).
    EXPECT_EQ(Device::expectedWord(DataPattern::anEncoded, false, 2, 1),
              9ull * 0xFFFFFFFFull);
}

TEST(Device, OverlayPersistsUntilWrite)
{
    const Geometry g(1);
    Device dev(g);
    dev.writeAll(DataPattern::zeros, false);
    EntryMask mask;
    mask.set(7, 1);
    dev.injectFlips(1234, mask);

    auto mm = dev.scanMismatches();
    ASSERT_EQ(mm.size(), 1u);
    EXPECT_EQ(mm[0].entry, 1234u);
    EXPECT_EQ(mm[0].mask, mask);

    // Still visible on a second scan (soft errors persist).
    EXPECT_EQ(dev.scanMismatches().size(), 1u);

    // Cleared by the next write phase.
    dev.writeAll(DataPattern::zeros, true);
    EXPECT_TRUE(dev.scanMismatches().empty());
}

TEST(Device, WeakCellVisibilityDependsOnDataAndRefresh)
{
    const Geometry g(1);
    Device dev(g, 16.0);
    dev.addWeakCell({50, 3, 10.0, true}); // 1 -> 0, retention 10 ms

    // All-zeros pattern stores 0: no error from a 1->0 leak.
    dev.writeAll(DataPattern::zeros, false);
    EXPECT_TRUE(dev.scanMismatches().empty());

    // Inverse pattern stores 1: the weak cell shows up.
    dev.writeAll(DataPattern::zeros, true);
    auto mm = dev.scanMismatches();
    ASSERT_EQ(mm.size(), 1u);
    EXPECT_EQ(mm[0].entry, 50u);
    EXPECT_EQ(mm[0].mask.get(3), 1);

    // Faster refresh outruns the leak.
    dev.setRefreshPeriod(8.0);
    EXPECT_TRUE(dev.scanMismatches().empty());
}

TEST(Device, StoredBitMatchesPattern)
{
    const Geometry g(1);
    Device dev(g);
    dev.writeAll(DataPattern::checkerboard, false);
    // Word 0 = 0x5555...: bit 0 set, bit 1 clear.
    EXPECT_EQ(dev.storedBit(0, 0), 1);
    EXPECT_EQ(dev.storedBit(0, 1), 0);
    // Word 1 = 0xAAAA...: bit 64 clear, bit 65 set.
    EXPECT_EQ(dev.storedBit(0, 64), 0);
    EXPECT_EQ(dev.storedBit(0, 65), 1);
}

TEST(Device, InjectTwiceCancels)
{
    const Geometry g(1);
    Device dev(g);
    dev.writeAll(DataPattern::ones, false);
    EntryMask mask;
    mask.set(100, 1);
    dev.injectFlips(9, mask);
    dev.injectFlips(9, mask); // XOR semantics: flips back
    EXPECT_TRUE(dev.scanMismatches().empty());
}

} // namespace
} // namespace hbm2
} // namespace gpuecc
