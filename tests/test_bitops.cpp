/** @file Unit tests for common/bitops. */

#include <gtest/gtest.h>

#include "common/bitops.hpp"

namespace gpuecc {
namespace {

TEST(Bitops, PopcountBasics)
{
    EXPECT_EQ(popcount64(0), 0);
    EXPECT_EQ(popcount64(1), 1);
    EXPECT_EQ(popcount64(0xFF), 8);
    EXPECT_EQ(popcount64(~std::uint64_t{0}), 64);
    EXPECT_EQ(popcount64(0x8000000000000001ull), 2);
}

TEST(Bitops, ParityBasics)
{
    EXPECT_EQ(parity64(0), 0);
    EXPECT_EQ(parity64(1), 1);
    EXPECT_EQ(parity64(0b11), 0);
    EXPECT_EQ(parity64(0b111), 1);
    EXPECT_EQ(parity64(~std::uint64_t{0}), 0);
}

TEST(Bitops, GetBit)
{
    const std::uint64_t v = 0xA5;
    EXPECT_EQ(getBit64(v, 0), 1);
    EXPECT_EQ(getBit64(v, 1), 0);
    EXPECT_EQ(getBit64(v, 2), 1);
    EXPECT_EQ(getBit64(v, 7), 1);
    EXPECT_EQ(getBit64(v, 8), 0);
}

TEST(Bitops, Bit64)
{
    EXPECT_EQ(bit64(0), 1u);
    EXPECT_EQ(bit64(5), 32u);
    EXPECT_EQ(bit64(63), 0x8000000000000000ull);
}

TEST(Bitops, LowMask)
{
    EXPECT_EQ(lowMask64(0), 0u);
    EXPECT_EQ(lowMask64(1), 1u);
    EXPECT_EQ(lowMask64(8), 0xFFu);
    EXPECT_EQ(lowMask64(64), ~std::uint64_t{0});
}

class ParityXorProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(ParityXorProperty, ParityIsXorHomomorphic)
{
    // parity(a ^ b) == parity(a) ^ parity(b) for structured values.
    const int shift = GetParam();
    const std::uint64_t a = 0x123456789ABCDEF0ull << shift;
    const std::uint64_t b = 0x0FEDCBA987654321ull >> shift;
    EXPECT_EQ(parity64(a ^ b), parity64(a) ^ parity64(b));
}

INSTANTIATE_TEST_SUITE_P(Shifts, ParityXorProperty,
                         ::testing::Range(0, 32));

} // namespace
} // namespace gpuecc
