/** @file Tests for the fleet dispatcher and its wire protocol. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/interrupt.hpp"
#include "fleet/protocol.hpp"
#include "sim/campaign.hpp"
#include "sim/chaos.hpp"

namespace gpuecc {
namespace {

using sim::fleet::FleetConfig;
using sim::fleet::WorkerMessage;
using sim::fleet::WorkUnit;

std::string
tempPath(const std::string& name)
{
    return ::testing::TempDir() + name;
}

void
expectCellsIdentical(const sim::CampaignResult& a,
                     const sim::CampaignResult& b)
{
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        EXPECT_EQ(a.cells[i].scheme_id, b.cells[i].scheme_id);
        EXPECT_EQ(a.cells[i].pattern, b.cells[i].pattern);
        const OutcomeCounts& x = a.cells[i].counts;
        const OutcomeCounts& y = b.cells[i].counts;
        EXPECT_EQ(x.trials, y.trials) << "cell " << i;
        EXPECT_EQ(x.dce, y.dce) << "cell " << i;
        EXPECT_EQ(x.due, y.due) << "cell " << i;
        EXPECT_EQ(x.sdc, y.sdc) << "cell " << i;
        EXPECT_EQ(x.exhaustive, y.exhaustive) << "cell " << i;
    }
}

sim::CampaignSpec
smallSpec()
{
    sim::CampaignSpec spec;
    spec.scheme_ids = {"ni-secded", "duet"};
    spec.patterns = {ErrorPattern::oneBit, ErrorPattern::oneBeat};
    spec.samples = 20000;
    spec.seed = 0xF1EE7;
    spec.threads = 1;
    return spec;
}

TEST(FleetProtocol, ConfigLineRoundTrips)
{
    FleetConfig cfg;
    cfg.worker = 3;
    cfg.scheme_ids = {"duet", "trio"};
    cfg.patterns = {ErrorPattern::oneBit, ErrorPattern::wholeEntry};
    cfg.samples = 123456;
    cfg.seed = 0x5EED;
    cfg.chunk = 4096;
    cfg.fingerprint = "schemes=duet,trio;...";
    cfg.codec_backend = "compiled";

    const std::string line = sim::fleet::encodeConfigLine(cfg);
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');
    const auto decoded = sim::fleet::decodeConfigLine(line);
    ASSERT_TRUE(decoded.ok()) << decoded.status().toString();
    const FleetConfig& d = decoded.value();
    EXPECT_EQ(d.worker, cfg.worker);
    EXPECT_EQ(d.scheme_ids, cfg.scheme_ids);
    ASSERT_EQ(d.patterns.size(), cfg.patterns.size());
    EXPECT_EQ(d.patterns[0], cfg.patterns[0]);
    EXPECT_EQ(d.patterns[1], cfg.patterns[1]);
    EXPECT_EQ(d.samples, cfg.samples);
    EXPECT_EQ(d.seed, cfg.seed);
    EXPECT_EQ(d.chunk, cfg.chunk);
    EXPECT_EQ(d.fingerprint, cfg.fingerprint);
    EXPECT_EQ(d.codec_backend, cfg.codec_backend);
}

TEST(FleetProtocol, UnitLineRoundTripsWithoutParentBookkeeping)
{
    WorkUnit unit;
    unit.unit = 7;
    unit.cell = 5; // parent-side only; must not travel
    unit.first_task = 40;
    unit.task_count = 4;

    const auto decoded =
        sim::fleet::decodeUnitLine(sim::fleet::encodeUnitLine(unit));
    ASSERT_TRUE(decoded.ok()) << decoded.status().toString();
    EXPECT_EQ(decoded.value().unit, 7u);
    EXPECT_EQ(decoded.value().first_task, 40u);
    EXPECT_EQ(decoded.value().task_count, 4u);
    EXPECT_EQ(decoded.value().cell, 0u);
}

TEST(FleetProtocol, ResultLineCarriesCheckpointTallies)
{
    WorkerMessage msg;
    msg.kind = WorkerMessage::Kind::result;
    msg.unit = 11;
    msg.worker = 2;
    msg.busy_us = 123456;
    msg.checkpoint.fingerprint = "fp";
    sim::CheckpointEntry sampled;
    sampled.task = 40;
    sampled.counts.trials = 100;
    sampled.counts.dce = 90;
    sampled.counts.due = 7;
    sampled.counts.sdc = 3;
    msg.checkpoint.done.push_back(sampled);
    sim::CheckpointEntry exhaustive;
    exhaustive.task = 41;
    exhaustive.counts.trials = 288;
    exhaustive.counts.dce = 288;
    exhaustive.counts.exhaustive = true;
    msg.checkpoint.done.push_back(exhaustive);

    const auto decoded = sim::fleet::decodeWorkerLine(
        sim::fleet::encodeResultLine(msg));
    ASSERT_TRUE(decoded.ok()) << decoded.status().toString();
    const WorkerMessage& d = decoded.value();
    EXPECT_EQ(d.kind, WorkerMessage::Kind::result);
    EXPECT_EQ(d.unit, 11u);
    EXPECT_EQ(d.worker, 2);
    EXPECT_EQ(d.busy_us, 123456u);
    EXPECT_EQ(d.checkpoint.fingerprint, "fp");
    ASSERT_EQ(d.checkpoint.done.size(), 2u);
    EXPECT_EQ(d.checkpoint.done[0].task, 40u);
    EXPECT_EQ(d.checkpoint.done[0].counts.trials, 100u);
    EXPECT_EQ(d.checkpoint.done[0].counts.sdc, 3u);
    EXPECT_TRUE(d.checkpoint.done[1].counts.exhaustive);
}

TEST(FleetProtocol, ErrorLinesRoundTrip)
{
    const auto unit_err = sim::fleet::decodeWorkerLine(
        sim::fleet::encodeUnitErrorLine(9, 1, "cell failed twice"));
    ASSERT_TRUE(unit_err.ok());
    EXPECT_EQ(unit_err.value().kind, WorkerMessage::Kind::unit_error);
    EXPECT_EQ(unit_err.value().unit, 9u);
    EXPECT_EQ(unit_err.value().worker, 1);
    EXPECT_EQ(unit_err.value().message, "cell failed twice");

    const auto worker_err = sim::fleet::decodeWorkerLine(
        sim::fleet::encodeWorkerErrorLine(4, "fingerprint mismatch"));
    ASSERT_TRUE(worker_err.ok());
    EXPECT_EQ(worker_err.value().kind,
              WorkerMessage::Kind::worker_error);
    EXPECT_EQ(worker_err.value().worker, 4);
    EXPECT_EQ(worker_err.value().message, "fingerprint mismatch");
}

TEST(FleetProtocol, GarbageLinesAreStructuredErrors)
{
    EXPECT_FALSE(sim::fleet::decodeConfigLine("not json\n").ok());
    EXPECT_FALSE(sim::fleet::decodeConfigLine("{}\n").ok());
    EXPECT_FALSE(sim::fleet::decodeUnitLine("[1,2]\n").ok());
    EXPECT_FALSE(sim::fleet::decodeWorkerLine("{\"type\":\"bogus\"}\n")
                     .ok());
}

TEST(Fleet, TalliesBitIdenticalToInProcess)
{
    sim::CampaignSpec spec = smallSpec();
    const sim::CampaignResult in_process =
        sim::CampaignRunner(spec).run();
    ASSERT_EQ(in_process.fleet.workers, 0);

    spec.fleet_workers = 2;
    const sim::CampaignResult fleet =
        sim::CampaignRunner(spec).run();
    EXPECT_EQ(fleet.fleet.workers, 2);
    EXPECT_GT(fleet.fleet.units, 0u);
    EXPECT_EQ(fleet.fleet.worker_records.size(), 2u);
    EXPECT_EQ(fleet.fleet.workers_lost, 0);
    EXPECT_TRUE(fleet.errors.empty());
    expectCellsIdentical(in_process, fleet);
}

TEST(Fleet, KilledWorkerUnitIsRequeuedBitIdentically)
{
    sim::CampaignSpec spec = smallSpec();
    const sim::CampaignResult reference =
        sim::CampaignRunner(spec).run();

    // Worker 1 self-kills when it starts its second unit; its
    // in-flight unit must be re-queued and finished by worker 0.
    sim::ChaosSpec chaos;
    chaos.fleet_exit_worker = 1;
    chaos.fleet_exit_after = 1;
    sim::setChaosSpec(chaos);
    spec.fleet_workers = 2;
    const sim::CampaignResult fleet =
        sim::CampaignRunner(spec).run();
    sim::clearChaosSpec();

    EXPECT_EQ(fleet.fleet.workers_lost, 1);
    EXPECT_GE(fleet.fleet.requeues, 1u);
    ASSERT_EQ(fleet.fleet.worker_records.size(), 2u);
    EXPECT_TRUE(fleet.fleet.worker_records[1].lost);
    EXPECT_FALSE(fleet.fleet.worker_records[0].lost);
    EXPECT_TRUE(fleet.errors.empty());
    expectCellsIdentical(reference, fleet);
}

TEST(Fleet, AllWorkersLostFallsBackToParent)
{
    sim::CampaignSpec spec = smallSpec();
    const sim::CampaignResult reference =
        sim::CampaignRunner(spec).run();

    sim::ChaosSpec chaos;
    chaos.fleet_exit_worker = 0;
    chaos.fleet_exit_after = 0; // dies on its very first unit
    sim::setChaosSpec(chaos);
    spec.fleet_workers = 1;
    const sim::CampaignResult fleet =
        sim::CampaignRunner(spec).run();
    sim::clearChaosSpec();

    EXPECT_EQ(fleet.fleet.workers_lost, 1);
    EXPECT_GT(fleet.fleet.parent_fallback_shards, 0u);
    EXPECT_TRUE(fleet.errors.empty());
    expectCellsIdentical(reference, fleet);
}

TEST(Fleet, PoisonUnitIsRetiredAtTheRequeueCap)
{
    sim::CampaignSpec spec = smallSpec();
    const sim::CampaignResult reference =
        sim::CampaignRunner(spec).run();

    // Unit 0 kills every worker it lands on; after
    // fleet_max_unit_attempts hosts die, the dispatcher must retire
    // it as poisoned (dropping its scheme) instead of feeding it the
    // whole fleet.
    sim::ChaosSpec chaos;
    chaos.fleet_exit_unit = 0;
    chaos.fleet_exit_unit_count = -1;
    sim::setChaosSpec(chaos);
    spec.fleet_workers = 4;
    spec.fleet_max_unit_attempts = 3;
    const sim::CampaignResult fleet =
        sim::CampaignRunner(spec).run();
    sim::clearChaosSpec();

    EXPECT_EQ(fleet.fleet.units_poisoned, 1u);
    EXPECT_EQ(fleet.fleet.workers_lost, 3u);
    ASSERT_FALSE(fleet.errors.empty());
    // Unit 0 belongs to the first scheme of the plan; that scheme is
    // dropped and reported, the survivor stays bit-identical.
    EXPECT_EQ(fleet.errors[0].scheme_id, "ni-secded");
    EXPECT_FALSE(fleet.hasScheme("ni-secded"));
    ASSERT_TRUE(fleet.hasScheme("duet"));
    for (const ErrorPattern pattern :
         {ErrorPattern::oneBit, ErrorPattern::oneBeat}) {
        const OutcomeCounts& want = reference.counts("duet", pattern);
        const OutcomeCounts& got = fleet.counts("duet", pattern);
        EXPECT_EQ(want.trials, got.trials);
        EXPECT_EQ(want.dce, got.dce);
        EXPECT_EQ(want.due, got.due);
        EXPECT_EQ(want.sdc, got.sdc);
    }
}

TEST(Fleet, HungWorkerTripsTheUnitDeadline)
{
    sim::CampaignSpec spec = smallSpec();
    const sim::CampaignResult reference =
        sim::CampaignRunner(spec).run();

    // Worker 0 hangs on its first unit without dying; only the
    // --fleet-worker-timeout round-trip deadline can catch it.
    sim::ChaosSpec chaos;
    chaos.fleet_stall_worker = 0;
    chaos.fleet_stall_after = 0;
    sim::setChaosSpec(chaos);
    spec.fleet_workers = 2;
    spec.fleet_worker_timeout_s = 1.0;
    const sim::CampaignResult fleet =
        sim::CampaignRunner(spec).run();
    sim::clearChaosSpec();

    EXPECT_GE(fleet.fleet.worker_timeouts, 1u);
    EXPECT_GE(fleet.fleet.requeues, 1u);
    EXPECT_EQ(fleet.fleet.workers_lost, 1u);
    ASSERT_EQ(fleet.fleet.worker_records.size(), 2u);
    EXPECT_TRUE(fleet.fleet.worker_records[0].lost);
    EXPECT_TRUE(fleet.errors.empty());
    expectCellsIdentical(reference, fleet);
}

TEST(Fleet, ResumesFromInterruptedFleetCheckpoint)
{
    const std::string path = tempPath("gpuecc_fleet_resume_ck.json");
    std::remove(path.c_str());

    sim::CampaignSpec spec = smallSpec();
    const sim::CampaignResult reference =
        sim::CampaignRunner(spec).run();

    // Interrupt a checkpointed fleet run partway through...
    sim::ChaosSpec chaos;
    chaos.kill_after = 30;
    sim::setChaosSpec(chaos);
    spec.fleet_workers = 2;
    spec.checkpoint_path = path;
    spec.checkpoint_interval_s = 0;
    const sim::CampaignResult interrupted =
        sim::CampaignRunner(spec).run();
    sim::clearChaosSpec();
    clearInterrupt(); // the simulated SIGTERM latches until cleared
    ASSERT_TRUE(interrupted.interrupted);

    // ...then resume it in fleet mode and demand bit-identity.
    spec.resume = true;
    const sim::CampaignResult resumed =
        sim::CampaignRunner(spec).run();
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_GT(resumed.resumed_shards, 0u);
    expectCellsIdentical(reference, resumed);
    std::remove(path.c_str());
}

} // namespace
} // namespace gpuecc
