/** @file Tests for the JSON parser and checkpoint/resume machinery. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/interrupt.hpp"
#include "common/status.hpp"
#include "sim/campaign.hpp"
#include "sim/chaos.hpp"
#include "sim/checkpoint.hpp"
#include "sim/json.hpp"
#include "sim/report.hpp"

namespace gpuecc {
namespace {

std::string
tempPath(const std::string& name)
{
    return ::testing::TempDir() + name;
}

// ---------------------------------------------------------------- JSON

TEST(JsonParser, ScalarsAndContainers)
{
    const auto doc = sim::parseJson(
        "{\"a\": 1, \"b\": [true, false, null], \"c\": \"x\","
        " \"d\": -2.5}");
    ASSERT_TRUE(doc.ok());
    const sim::JsonValue& v = doc.value();
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.find("a")->asUint64().value(), 1u);
    ASSERT_TRUE(v.find("b")->isArray());
    ASSERT_EQ(v.find("b")->elements().size(), 3u);
    EXPECT_TRUE(v.find("b")->elements()[0].asBool().value());
    EXPECT_FALSE(v.find("b")->elements()[1].asBool().value());
    EXPECT_TRUE(v.find("b")->elements()[2].isNull());
    EXPECT_EQ(v.find("c")->asString().value(), "x");
    EXPECT_DOUBLE_EQ(v.find("d")->asDouble().value(), -2.5);
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_FALSE(v.get("missing").ok());
}

TEST(JsonParser, Uint64RoundTripsExactly)
{
    // 2^64 - 1 is not representable in a double; the raw-token design
    // must keep every digit.
    const auto doc = sim::parseJson("{\"n\": 18446744073709551615}");
    ASSERT_TRUE(doc.ok());
    const auto n = doc.value().find("n")->asUint64();
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), UINT64_MAX);
}

TEST(JsonParser, Uint64RejectsOutOfRangeAndNonIntegral)
{
    // One past 2^64 - 1: the checkpoint loader's width check.
    const auto over = sim::parseJson("18446744073709551616");
    ASSERT_TRUE(over.ok());
    EXPECT_FALSE(over.value().asUint64().ok());

    const auto neg = sim::parseJson("-1");
    ASSERT_TRUE(neg.ok());
    EXPECT_FALSE(neg.value().asUint64().ok());

    const auto frac = sim::parseJson("1.5");
    ASSERT_TRUE(frac.ok());
    EXPECT_FALSE(frac.value().asUint64().ok());
    EXPECT_TRUE(frac.value().asDouble().ok());
}

TEST(JsonParser, StringEscapes)
{
    const auto doc =
        sim::parseJson("\"a\\\"b\\\\c\\n\\t\\u0041\\uD83D\\uDE00\"");
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc.value().asString().value(),
              std::string("a\"b\\c\n\tA\xF0\x9F\x98\x80"));
}

TEST(JsonParser, WriterOutputRoundTrips)
{
    sim::JsonWriter w;
    w.beginObject();
    w.kv("text", std::string("quote\" slash\\ nl\n"));
    w.key("nums").beginArray().value(std::uint64_t{1234567890123456789ull})
        .value(2.5).endArray();
    w.endObject();
    const auto doc = sim::parseJson(w.str());
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc.value().find("text")->asString().value(),
              "quote\" slash\\ nl\n");
    EXPECT_EQ(doc.value().find("nums")->elements()[0].asUint64().value(),
              1234567890123456789ull);
}

TEST(JsonParser, StructuredErrors)
{
    for (const char* bad :
         {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated",
          "\"bad \\q escape\"", "{\"a\":1} trailing", "- 1"}) {
        const auto doc = sim::parseJson(bad);
        ASSERT_FALSE(doc.ok()) << '"' << bad << '"';
        EXPECT_EQ(doc.status().code(), ErrorCode::dataLoss) << bad;
    }
}

TEST(JsonParser, DepthLimitIsDataLossNotStackOverflow)
{
    std::string deep;
    for (int i = 0; i < 2000; ++i)
        deep += '[';
    const auto doc = sim::parseJson(deep);
    ASSERT_FALSE(doc.ok());
    EXPECT_EQ(doc.status().code(), ErrorCode::dataLoss);
}

// --------------------------------------------------------- fingerprint

TEST(CheckpointFingerprint, SensitiveToEveryPlanInput)
{
    const std::vector<std::string> ids{"duet", "trio"};
    const std::vector<ErrorPattern> pats{ErrorPattern::oneBit};
    const std::string base = sim::campaignFingerprint(
        ids, pats, 1000, 0x5EED, 64, "compiled", 12);

    EXPECT_EQ(base, sim::campaignFingerprint(ids, pats, 1000, 0x5EED,
                                             64, "compiled", 12));
    EXPECT_NE(base, sim::campaignFingerprint({"duet"}, pats, 1000,
                                             0x5EED, 64, "compiled", 12));
    EXPECT_NE(base,
              sim::campaignFingerprint(
                  ids, {ErrorPattern::onePin}, 1000, 0x5EED, 64,
                  "compiled", 12));
    EXPECT_NE(base, sim::campaignFingerprint(ids, pats, 1001, 0x5EED,
                                             64, "compiled", 12));
    EXPECT_NE(base, sim::campaignFingerprint(ids, pats, 1000, 0x5EEE,
                                             64, "compiled", 12));
    EXPECT_NE(base, sim::campaignFingerprint(ids, pats, 1000, 0x5EED,
                                             128, "compiled", 12));
    EXPECT_NE(base, sim::campaignFingerprint(ids, pats, 1000, 0x5EED,
                                             64, "reference", 12));
    EXPECT_NE(base, sim::campaignFingerprint(ids, pats, 1000, 0x5EED,
                                             64, "compiled", 13));
}

// --------------------------------------------------------- save / load

sim::CampaignCheckpoint
sampleCheckpoint()
{
    sim::CampaignCheckpoint ck;
    ck.fingerprint = "v1;test";
    for (std::uint64_t i : {0ull, 3ull, 7ull}) {
        sim::CheckpointEntry e;
        e.task = i;
        e.counts.trials = 100 + i;
        e.counts.dce = 90;
        e.counts.due = 8;
        e.counts.sdc = 2 + i;
        e.counts.exhaustive = (i == 0);
        ck.done.push_back(e);
    }
    return ck;
}

TEST(Checkpoint, SaveLoadRoundTrip)
{
    const std::string path = tempPath("gpuecc_ck_roundtrip.json");
    std::remove(path.c_str());

    const sim::CampaignCheckpoint ck = sampleCheckpoint();
    ASSERT_TRUE(sim::saveCheckpoint(path, ck).ok());

    const auto loaded = sim::loadCheckpoint(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_EQ(loaded.value().fingerprint, ck.fingerprint);
    ASSERT_EQ(loaded.value().done.size(), ck.done.size());
    for (std::size_t i = 0; i < ck.done.size(); ++i) {
        EXPECT_EQ(loaded.value().done[i].task, ck.done[i].task);
        EXPECT_EQ(loaded.value().done[i].counts.trials,
                  ck.done[i].counts.trials);
        EXPECT_EQ(loaded.value().done[i].counts.dce,
                  ck.done[i].counts.dce);
        EXPECT_EQ(loaded.value().done[i].counts.due,
                  ck.done[i].counts.due);
        EXPECT_EQ(loaded.value().done[i].counts.sdc,
                  ck.done[i].counts.sdc);
        EXPECT_EQ(loaded.value().done[i].counts.exhaustive,
                  ck.done[i].counts.exhaustive);
    }
    std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileIsNotFound)
{
    const auto r =
        sim::loadCheckpoint(tempPath("gpuecc_ck_never_written.json"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::notFound);
}

TEST(Checkpoint, CorruptFilesAreDataLoss)
{
    const std::string path = tempPath("gpuecc_ck_corrupt.json");
    const struct
    {
        const char* label;
        std::string text;
    } cases[] = {
        {"malformed", "{\"version\": 1,"},
        {"wrong version",
         "{\"version\": 2, \"fingerprint\": \"f\", \"tasks\": []}"},
        {"missing fingerprint", "{\"version\": 1, \"tasks\": []}"},
        {"tuple too short",
         "{\"version\": 1, \"fingerprint\": \"f\","
         " \"tasks\": [[0, 10, 5, 5]]}"},
        {"counter overflows 64 bits",
         "{\"version\": 1, \"fingerprint\": \"f\","
         " \"tasks\": [[0, 18446744073709551616, 0, 0, 0, false]]}"},
        {"counts do not sum",
         "{\"version\": 1, \"fingerprint\": \"f\","
         " \"tasks\": [[0, 10, 5, 5, 5, false]]}"},
        {"duplicate task index",
         "{\"version\": 1, \"fingerprint\": \"f\","
         " \"tasks\": [[0, 1, 1, 0, 0, false],"
         " [0, 1, 1, 0, 0, false]]}"},
    };
    for (const auto& c : cases) {
        ASSERT_TRUE(sim::saveTextFile(path, c.text).ok());
        const auto r = sim::loadCheckpoint(path);
        ASSERT_FALSE(r.ok()) << c.label;
        EXPECT_EQ(r.status().code(), ErrorCode::dataLoss) << c.label;
    }
    std::remove(path.c_str());
}

TEST(Checkpoint, FailedWriteLeavesPriorFileIntact)
{
    const std::string path = tempPath("gpuecc_ck_atomic.json");
    std::remove(path.c_str());

    sim::CampaignCheckpoint ck = sampleCheckpoint();
    ASSERT_TRUE(sim::saveCheckpoint(path, ck).ok());

    // Arm the chaos hook so the next write fails; the first
    // checkpoint must survive unmodified.
    sim::ChaosSpec chaos;
    chaos.ckpt_fail = 1;
    sim::setChaosSpec(chaos);
    ck.done[0].counts.sdc += 1;
    ck.done[0].counts.dce -= 1;
    const Status failed = sim::saveCheckpoint(path, ck);
    sim::clearChaosSpec();
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.code(), ErrorCode::ioError);

    const auto loaded = sim::loadCheckpoint(path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value().done[0].counts.sdc,
              sampleCheckpoint().done[0].counts.sdc);
    std::remove(path.c_str());
}

// ------------------------------------------------------------- resume

class ResumeTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        sim::clearChaosSpec();
        clearInterrupt();
    }
    void TearDown() override
    {
        sim::clearChaosSpec();
        clearInterrupt();
    }
};

TEST_F(ResumeTest, KilledThenResumedRunIsBitIdentical)
{
    // The acceptance scenario: interrupt a checkpointed campaign at a
    // kill-point, resume it (on a different thread count), and demand
    // tallies bit-identical to a run that was never interrupted.
    for (int resume_threads : {1, 4}) {
        const std::string path = tempPath(
            "gpuecc_ck_resume_" + std::to_string(resume_threads) +
            ".json");
        std::remove(path.c_str());

        sim::CampaignSpec spec;
        spec.scheme_ids = {"duet", "trio"};
        spec.samples = 30000;
        spec.chunk = 1024;
        spec.threads = 2;
        const sim::CampaignResult base =
            sim::CampaignRunner(spec).run();

        sim::ChaosSpec chaos;
        chaos.kill_after = 4;
        sim::setChaosSpec(chaos);
        spec.checkpoint_path = path;
        spec.checkpoint_interval_s = 0;
        const sim::CampaignResult killed =
            sim::CampaignRunner(spec).run();
        ASSERT_TRUE(killed.interrupted);

        sim::clearChaosSpec();
        clearInterrupt();
        spec.resume = true;
        spec.threads = resume_threads;
        const sim::CampaignResult resumed =
            sim::CampaignRunner(spec).run();
        EXPECT_FALSE(resumed.interrupted);
        EXPECT_GT(resumed.resumed_shards, 0u);
        EXPECT_LT(resumed.resumed_shards, resumed.shards);

        ASSERT_EQ(resumed.cells.size(), base.cells.size());
        for (std::size_t i = 0; i < base.cells.size(); ++i) {
            const OutcomeCounts& a = base.cells[i].counts;
            const OutcomeCounts& b = resumed.cells[i].counts;
            EXPECT_EQ(b.trials, a.trials);
            EXPECT_EQ(b.dce, a.dce);
            EXPECT_EQ(b.due, a.due);
            EXPECT_EQ(b.sdc, a.sdc);
            EXPECT_EQ(b.exhaustive, a.exhaustive);
        }
        // The CSV artifact has no timing column, so the whole report
        // must be byte-identical.
        EXPECT_EQ(sim::campaignCsv(resumed), sim::campaignCsv(base));
        std::remove(path.c_str());
    }
}

TEST_F(ResumeTest, ResumeOfCompleteCheckpointRecomputesNothing)
{
    const std::string path = tempPath("gpuecc_ck_complete.json");
    std::remove(path.c_str());

    sim::CampaignSpec spec;
    spec.scheme_ids = {"duet"};
    spec.patterns = {ErrorPattern::oneBeat};
    spec.samples = 10000;
    spec.chunk = 1024;
    spec.checkpoint_path = path;
    spec.checkpoint_interval_s = 0;
    const sim::CampaignResult first = sim::CampaignRunner(spec).run();

    spec.resume = true;
    const sim::CampaignResult again = sim::CampaignRunner(spec).run();
    EXPECT_EQ(again.resumed_shards, again.shards);
    EXPECT_EQ(sim::campaignCsv(again), sim::campaignCsv(first));
    std::remove(path.c_str());
}

TEST_F(ResumeTest, ResumeWithMissingCheckpointStartsFresh)
{
    const std::string path = tempPath("gpuecc_ck_missing.json");
    std::remove(path.c_str());

    sim::CampaignSpec spec;
    spec.scheme_ids = {"duet"};
    spec.patterns = {ErrorPattern::oneBit};
    spec.samples = 1000;
    spec.checkpoint_path = path;
    spec.resume = true;
    const auto r = sim::CampaignRunner(spec).tryRun();
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(r.value().resumed_shards, 0u);
    std::remove(path.c_str());
}

TEST_F(ResumeTest, FingerprintMismatchIsFailedPrecondition)
{
    const std::string path = tempPath("gpuecc_ck_mismatch.json");
    std::remove(path.c_str());

    sim::CampaignSpec spec;
    spec.scheme_ids = {"duet"};
    spec.patterns = {ErrorPattern::oneBeat};
    spec.samples = 10000;
    spec.chunk = 1024;
    spec.checkpoint_path = path;
    ASSERT_TRUE(sim::CampaignRunner(spec).tryRun().ok());

    // Same file, different campaign: the seed changed.
    spec.resume = true;
    spec.seed += 1;
    const auto r = sim::CampaignRunner(spec).tryRun();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::failedPrecondition);
    std::remove(path.c_str());
}

TEST_F(ResumeTest, CorruptCheckpointIsAStructuredError)
{
    const std::string path = tempPath("gpuecc_ck_garbage.json");
    ASSERT_TRUE(sim::saveTextFile(path, "not json at all").ok());

    sim::CampaignSpec spec;
    spec.scheme_ids = {"duet"};
    spec.patterns = {ErrorPattern::oneBit};
    spec.samples = 1000;
    spec.checkpoint_path = path;
    spec.resume = true;
    const auto r = sim::CampaignRunner(spec).tryRun();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::dataLoss);
    std::remove(path.c_str());
}

} // namespace
} // namespace gpuecc
