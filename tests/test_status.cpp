/** @file Tests for the structured Status / Result error types. */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/status.hpp"

namespace gpuecc {
namespace {

TEST(StatusTest, DefaultIsOk)
{
    const Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::ok);
    EXPECT_EQ(s.message(), "");
    EXPECT_EQ(s.toString(), "ok");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage)
{
    const struct
    {
        Status status;
        ErrorCode code;
        const char* name;
    } cases[] = {
        {Status::invalidArgument("a"), ErrorCode::invalidArgument,
         "invalid_argument"},
        {Status::notFound("b"), ErrorCode::notFound, "not_found"},
        {Status::ioError("c"), ErrorCode::ioError, "io_error"},
        {Status::dataLoss("d"), ErrorCode::dataLoss, "data_loss"},
        {Status::failedPrecondition("e"),
         ErrorCode::failedPrecondition, "failed_precondition"},
        {Status::unavailable("f"), ErrorCode::unavailable,
         "unavailable"},
        {Status::internalError("g"), ErrorCode::internal, "internal"},
    };
    for (const auto& c : cases) {
        EXPECT_FALSE(c.status.ok());
        EXPECT_EQ(c.status.code(), c.code);
        EXPECT_EQ(errorCodeName(c.status.code()), std::string(c.name));
        // toString is "code: message".
        EXPECT_EQ(c.status.toString(),
                  std::string(c.name) + ": " + c.status.message());
    }
}

TEST(StatusDeathTest, ErrorStatusRejectsOkCode)
{
    EXPECT_DEATH(Status(ErrorCode::ok, "nope"), "non-ok code");
}

TEST(ResultTest, HoldsValue)
{
    const Result<int> r = 42;
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.status().ok());
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(r.valueOr(7), 42);
}

TEST(ResultTest, HoldsError)
{
    const Result<int> r = Status::notFound("missing");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::notFound);
    EXPECT_EQ(r.valueOr(7), 7);
}

TEST(ResultTest, MovesValueOut)
{
    Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
    ASSERT_TRUE(r.ok());
    const std::unique_ptr<int> moved = std::move(r).value();
    EXPECT_EQ(*moved, 5);
}

TEST(ResultTest, ConvertingConstruction)
{
    // A Result<base pointer> accepts a derived pointer, the same way
    // the registry returns a concrete scheme as Result<EntryScheme>.
    struct Base
    {
        virtual ~Base() = default;
    };
    struct Derived : Base
    {
    };
    const Result<std::shared_ptr<Base>> r =
        std::make_shared<Derived>();
    EXPECT_TRUE(r.ok());
    // And a string literal converts into a Result<std::string>.
    const Result<std::string> s = "text";
    EXPECT_EQ(s.value(), "text");
}

TEST(ResultDeathTest, ValueOnErrorPanics)
{
    const Result<int> r = Status::ioError("disk on fire");
    EXPECT_DEATH(r.value(), "disk on fire");
}

} // namespace
} // namespace gpuecc
