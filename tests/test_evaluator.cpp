/** @file Tests for the Monte Carlo / exhaustive ECC evaluator. */

#include <gtest/gtest.h>

#include "ecc/registry.hpp"
#include "faultsim/evaluator.hpp"
#include "faultsim/weighted.hpp"

namespace gpuecc {
namespace {

TEST(Evaluator, SingleBitAlwaysCorrectedByEveryScheme)
{
    for (const auto& scheme : paperSchemes()) {
        Evaluator ev(*scheme);
        const OutcomeCounts counts =
            ev.evaluate(ErrorPattern::oneBit, 0);
        EXPECT_TRUE(counts.exhaustive);
        EXPECT_EQ(counts.trials, 288u);
        EXPECT_EQ(counts.dce, 288u) << scheme->id();
        EXPECT_EQ(counts.sdc, 0u);
        EXPECT_EQ(counts.due, 0u);
    }
}

TEST(Evaluator, ExhaustiveFlagOnlyForEnumerablePatterns)
{
    const auto duet = makeScheme("duet");
    Evaluator ev(*duet);
    EXPECT_TRUE(ev.evaluate(ErrorPattern::oneByte, 0).exhaustive);
    const OutcomeCounts beat = ev.evaluate(ErrorPattern::oneBeat, 500);
    EXPECT_FALSE(beat.exhaustive);
    EXPECT_EQ(beat.trials, 500u);
}

TEST(Evaluator, SecDedByteSdcMatchesCalibration)
{
    // The calibrated Hsiao arrangement gives ~23% byte-error SDC for
    // the non-interleaved baseline (exact, exhaustive).
    const auto base = makeScheme("ni-secded");
    Evaluator ev(*base);
    const OutcomeCounts counts = ev.evaluate(ErrorPattern::oneByte, 0);
    EXPECT_NEAR(counts.sdcRate(), 0.23, 0.01);
}

TEST(Evaluator, InterleavedSchemesHaveZeroByteSdc)
{
    for (const char* id : {"i-secded", "duet", "i-sec2bec", "trio",
                           "i-ssc", "i-ssc-csc", "ssc-dsd+"}) {
        const auto scheme = makeScheme(id);
        Evaluator ev(*scheme);
        const OutcomeCounts counts =
            ev.evaluate(ErrorPattern::oneByte, 0);
        EXPECT_EQ(counts.sdc, 0u) << id;
    }
}

TEST(Evaluator, TrioCorrectsAllByteAndPinErrors)
{
    const auto trio = makeScheme("trio");
    Evaluator ev(*trio);
    EXPECT_EQ(ev.evaluate(ErrorPattern::oneByte, 0).dceRate(), 1.0);
    EXPECT_EQ(ev.evaluate(ErrorPattern::onePin, 0).dceRate(), 1.0);
}

TEST(Evaluator, DuetDetectsOrCorrectsAllTwoBitErrors)
{
    const auto duet = makeScheme("duet");
    Evaluator ev(*duet);
    const OutcomeCounts counts = ev.evaluate(ErrorPattern::twoBits, 0);
    EXPECT_EQ(counts.sdc, 0u);
    // Scattered 2-bit errors across codewords become DUEs under the
    // CSC; same-codeword doubles are DUEs by DED.
    EXPECT_GT(counts.due, 0u);
}

TEST(Evaluator, SscDsdPlusDetectsAllPinAndSmallErrors)
{
    // Table 2 prose: SSC-DSD+ maintains 100% detection of 3-bit and
    // pin errors at this codeword size.
    const auto dsd = makeScheme("ssc-dsd+");
    Evaluator ev(*dsd);
    EXPECT_EQ(ev.evaluate(ErrorPattern::onePin, 0).sdc, 0u);
    EXPECT_EQ(ev.evaluate(ErrorPattern::twoBits, 0).sdc, 0u);
}

TEST(Evaluator, DeterministicPerSeed)
{
    const auto trio = makeScheme("trio");
    Evaluator a(*trio, 99), b(*trio, 99);
    const OutcomeCounts ca = a.evaluate(ErrorPattern::wholeEntry, 2000);
    const OutcomeCounts cb = b.evaluate(ErrorPattern::wholeEntry, 2000);
    EXPECT_EQ(ca.dce, cb.dce);
    EXPECT_EQ(ca.due, cb.due);
    EXPECT_EQ(ca.sdc, cb.sdc);
}

TEST(Evaluator, CountsPartitionTrials)
{
    const auto scheme = makeScheme("ni-secded");
    Evaluator ev(*scheme);
    for (ErrorPattern p :
         {ErrorPattern::oneByte, ErrorPattern::oneBeat}) {
        const OutcomeCounts c = ev.evaluate(p, 1000);
        EXPECT_EQ(c.dce + c.due + c.sdc, c.trials);
    }
}

TEST(WeightedOutcomeTest, WeightsByTable1)
{
    // Construct synthetic per-pattern outcomes: 100% DCE except byte
    // errors at 100% SDC; the weighted SDC must equal the Table 1
    // byte probability.
    std::map<ErrorPattern, OutcomeCounts> per_pattern;
    for (ErrorPattern p : allErrorPatterns()) {
        OutcomeCounts c;
        c.trials = 100;
        if (p == ErrorPattern::oneByte)
            c.sdc = 100;
        else
            c.dce = 100;
        per_pattern[p] = c;
    }
    const WeightedOutcome w = weightedOutcome(per_pattern);
    EXPECT_NEAR(w.sdc, 0.2256, 1e-12);
    EXPECT_NEAR(w.correct, 1.0 - 0.2256, 1e-12);
    EXPECT_NEAR(w.detect, 0.0, 1e-12);
}

TEST(WeightedOutcomeTest, SdcIntervalDegenerateWhenExhaustive)
{
    OutcomeCounts c;
    c.trials = 1000;
    c.sdc = 10;
    c.dce = 990;
    c.exhaustive = true;
    const Interval iv = c.sdcInterval();
    EXPECT_DOUBLE_EQ(iv.lo, iv.hi);
    c.exhaustive = false;
    const Interval iv2 = c.sdcInterval();
    EXPECT_LT(iv2.lo, 0.01);
    EXPECT_GT(iv2.hi, 0.01);
}

} // namespace
} // namespace gpuecc
