/**
 * @file End-to-end integration tests asserting the paper's headline
 * claims (with tolerances appropriate to the sample counts used).
 *
 * The claims are grouped into three test cases so the (expensive)
 * full-registry evaluation runs once per group under ctest's
 * process-per-test execution.
 */

#include <map>
#include <string>

#include <gtest/gtest.h>

#include "ecc/registry.hpp"
#include "faultsim/evaluator.hpp"
#include "faultsim/weighted.hpp"
#include "reliability/system.hpp"

namespace gpuecc {
namespace {

struct Evaluated
{
    std::map<std::string, WeightedOutcome> weighted;
    std::map<std::string, std::map<ErrorPattern, OutcomeCounts>> raw;
};

Evaluated
evaluateAllSchemes(std::uint64_t samples)
{
    Evaluated out;
    for (const auto& scheme : paperSchemes()) {
        Evaluator ev(*scheme, 0xC1A11);
        auto all = ev.evaluateAll(samples);
        out.weighted[scheme->id()] = weightedOutcome(all);
        out.raw[scheme->id()] = std::move(all);
    }
    return out;
}

TEST(PaperClaims, Figure8WeightedOutcomes)
{
    const Evaluated e = evaluateAllSchemes(60000);
    const WeightedOutcome& base = e.weighted.at("ni-secded");
    const WeightedOutcome& il = e.weighted.at("i-secded");
    const WeightedOutcome& duet = e.weighted.at("duet");
    const WeightedOutcome& ni2b = e.weighted.at("ni-sec2bec");
    const WeightedOutcome& trio = e.weighted.at("trio");
    const WeightedOutcome& ssc = e.weighted.at("i-ssc");
    const WeightedOutcome& ssc_csc = e.weighted.at("i-ssc-csc");
    const WeightedOutcome& dsd = e.weighted.at("ssc-dsd+");

    // "The SEC-DED baseline corrects 74% of events, detecting
    // another 20%, leaving a 5.4% SDC probability."
    EXPECT_NEAR(base.correct, 0.74, 0.02);
    EXPECT_NEAR(base.detect, 0.20, 0.02);
    EXPECT_NEAR(base.sdc, 0.054, 0.007);

    // "Interleaving is able to correct 6.6% more events ... while
    // decreasing the SDC risk by 247x."
    EXPECT_NEAR(il.correct - base.correct, 0.066, 0.01);
    EXPECT_GT(base.sdc / il.sdc, 100.0);
    EXPECT_LT(base.sdc / il.sdc, 700.0);

    // "DuetECC decreases the SDC risk by over three orders of
    // magnitude" (to ~0.0013%).
    EXPECT_LT(duet.sdc, 3e-5);
    EXPECT_GT(base.sdc / duet.sdc, 1000.0);

    // "The SEC-2bEC code represents a resilience regression if it is
    // employed alone" (~9.3% SDC).
    EXPECT_NEAR(ni2b.sdc, 0.093, 0.01);
    EXPECT_GT(ni2b.sdc, base.sdc);

    // "TrioECC offers a 97% correction probability with only
    // 0.0085% SDC risk."
    EXPECT_NEAR(trio.correct, 0.97, 0.01);
    EXPECT_LT(trio.sdc, 2e-4);

    // The abstract's headline: 7.87x fewer uncorrectable errors.
    EXPECT_NEAR((base.detect + base.sdc) / (trio.detect + trio.sdc),
                7.87, 0.5);

    // SSC-DSD+ has by far the lowest SDC risk (~5 orders below
    // SEC-DED).
    for (const auto& [id, w] : e.weighted) {
        if (id != "ssc-dsd+")
            EXPECT_LE(dsd.sdc, w.sdc) << id;
    }
    EXPECT_LT(dsd.sdc, 1e-5);

    // The correction/SDC trade-off between Duet and Trio.
    EXPECT_GT(trio.correct, duet.correct + 0.1);
    EXPECT_LT(duet.sdc, trio.sdc);

    // "The interleaved SSC codes offer correction capabilities that
    // rival those of TrioECC, but with higher SDC risk."
    EXPECT_NEAR(ssc.correct, trio.correct, 0.01);
    EXPECT_GT(ssc.sdc, trio.sdc);
    EXPECT_GT(ssc.sdc, ssc_csc.sdc);
}

TEST(PaperClaims, ByteErrorsNeverEscapeProposedSchemes)
{
    for (const char* id : {"duet", "trio", "i-ssc-csc", "ssc-dsd+"}) {
        const auto scheme = makeScheme(id);
        Evaluator ev(*scheme, 0xC1A11);
        const OutcomeCounts byte =
            ev.evaluate(ErrorPattern::oneByte, 0);
        EXPECT_TRUE(byte.exhaustive);
        EXPECT_EQ(byte.sdc, 0u) << id;
        if (std::string(id) == "trio")
            EXPECT_EQ(byte.dceRate(), 1.0); // perfect byte correction
    }
}

TEST(PaperClaims, SystemLevelProjectionsFollowFigure9)
{
    const Evaluated e = evaluateAllSchemes(60000);
    const reliability::HpcSystemModel hpc;
    const double duet_mtti =
        hpc.mttiHours(1.0, e.weighted.at("duet"));
    const double trio_mtti =
        hpc.mttiHours(1.0, e.weighted.at("trio"));
    // TrioECC interrupts ~5.9x less often than DuetECC.
    EXPECT_NEAR(trio_mtti / duet_mtti, 5.9, 0.7);
    // DuetECC's SDC period at scale is in years.
    EXPECT_GT(hpc.mttfHours(1.0, e.weighted.at("duet")),
              365.0 * 24.0);

    const reliability::AvModel av;
    EXPECT_FALSE(av.satisfiesIso26262(e.weighted.at("ni-secded")));
    EXPECT_TRUE(av.satisfiesIso26262(e.weighted.at("duet")));
    EXPECT_TRUE(av.satisfiesIso26262(e.weighted.at("trio")));
    EXPECT_NEAR(av.vehicleSdcFit(e.weighted.at("ni-secded")), 216.0,
                25.0);
}

} // namespace
} // namespace gpuecc
