/** @file Tests for the DRAM-utilization dependence (Section 5). */

#include <map>

#include <gtest/gtest.h>

#include "beam/campaign.hpp"
#include "beam/classify.hpp"
#include "beam/events.hpp"

namespace gpuecc {
namespace beam {
namespace {

TEST(Utilization, RateScaleEndpoints)
{
    EventGenerator gen(EventConfig{}, hbm2::Geometry(1), Rng(1));
    EXPECT_DOUBLE_EQ(gen.rateScale(1.0), 1.0);
    // At zero utilization only the array classes remain.
    const EventConfig cfg;
    EXPECT_NEAR(gen.rateScale(0.0), cfg.p_sbse + cfg.p_sbme, 1e-12);
    EXPECT_LT(gen.rateScale(0.5), 1.0);
    EXPECT_GT(gen.rateScale(0.5), gen.rateScale(0.0));
}

TEST(Utilization, ZeroUtilizationProducesOnlyArrayErrors)
{
    EventGenerator gen(EventConfig{}, hbm2::Geometry(1), Rng(2));
    for (int trial = 0; trial < 2000; ++trial) {
        const SoftErrorEvent ev = gen.sample(0.0);
        ASSERT_TRUE(ev.cls == SoftErrorEvent::Class::sbse ||
                    ev.cls == SoftErrorEvent::Class::sbme);
    }
}

TEST(Utilization, FullUtilizationKeepsPaperMix)
{
    EventGenerator gen(EventConfig{}, hbm2::Geometry(1), Rng(3));
    std::map<SoftErrorEvent::Class, int> counts;
    const int trials = 20000;
    for (int trial = 0; trial < trials; ++trial)
        ++counts[gen.sample(1.0).cls];
    EXPECT_NEAR(counts[SoftErrorEvent::Class::sbse] /
                    static_cast<double>(trials),
                0.65, 0.02);
    EXPECT_NEAR(counts[SoftErrorEvent::Class::mbme] /
                    static_cast<double>(trials),
                0.28, 0.02);
}

TEST(Utilization, LogicErrorRateScalesWithAccesses)
{
    // The paper's finding: MB (logic) events scale with utilization;
    // SB (array) events do not. Compare campaign event rates at 25%
    // and 100% utilization.
    auto rates = [](double util) {
        CampaignConfig cfg;
        cfg.runs = 220;
        cfg.seed = 0x0712;
        cfg.micro.utilization = util;
        Campaign campaign(cfg);
        campaign.runInBeam();
        const ClassificationResult result =
            classifyLog(campaign.log());
        double sb = 0, mb = 0;
        for (const auto& ev : result.events)
            (ev.multi_bit ? mb : sb) += 1;
        const double hours = campaign.timeSeconds() / 3600.0;
        return std::pair{sb / hours, mb / hours};
    };
    const auto [sb_low, mb_low] = rates(0.25);
    const auto [sb_full, mb_full] = rates(1.0);

    // Array rate roughly flat (Poisson noise allows ~25%).
    EXPECT_NEAR(sb_low / sb_full, 1.0, 0.3);
    // Logic rate roughly 4x between 25% and 100% utilization.
    EXPECT_NEAR(mb_full / mb_low, 4.0, 1.5);
}

} // namespace
} // namespace beam
} // namespace gpuecc
