/** @file Tests for the soft-error event generator. */

#include <map>

#include <gtest/gtest.h>

#include "beam/events.hpp"

namespace gpuecc {
namespace beam {
namespace {

class EventGeneratorTest : public ::testing::Test
{
  protected:
    EventGeneratorTest()
        : geometry_(hbm2::default_stacks),
          gen_(EventConfig{}, geometry_, Rng(1))
    {
    }

    hbm2::Geometry geometry_;
    EventGenerator gen_;
};

TEST_F(EventGeneratorTest, EventsNonEmptyAndInRange)
{
    for (int trial = 0; trial < 2000; ++trial) {
        const SoftErrorEvent ev = gen_.sample();
        ASSERT_FALSE(ev.flips.empty());
        for (const auto& [entry, mask] : ev.flips) {
            ASSERT_LT(entry, geometry_.numEntries());
            ASSERT_FALSE(mask.none());
        }
    }
}

TEST_F(EventGeneratorTest, ClassMixMatchesFigure4a)
{
    std::map<SoftErrorEvent::Class, int> counts;
    const int trials = 20000;
    for (int trial = 0; trial < trials; ++trial)
        ++counts[gen_.sample().cls];
    EXPECT_NEAR(counts[SoftErrorEvent::Class::sbse] /
                    static_cast<double>(trials),
                0.65, 0.02);
    EXPECT_NEAR(counts[SoftErrorEvent::Class::mbme] /
                    static_cast<double>(trials),
                0.28, 0.02);
    EXPECT_NEAR(counts[SoftErrorEvent::Class::sbme] /
                    static_cast<double>(trials),
                0.035, 0.01);
}

TEST_F(EventGeneratorTest, SingleBitClassesAreSingleBit)
{
    for (int trial = 0; trial < 5000; ++trial) {
        const SoftErrorEvent ev = gen_.sample();
        if (ev.cls == SoftErrorEvent::Class::sbse) {
            ASSERT_EQ(ev.flips.size(), 1u);
            ASSERT_EQ(ev.flips[0].second.popcount(), 1);
        } else if (ev.cls == SoftErrorEvent::Class::sbme) {
            ASSERT_GT(ev.flips.size(), 1u);
            for (const auto& [entry, mask] : ev.flips)
                ASSERT_EQ(mask.popcount(), 1);
        }
    }
}

TEST_F(EventGeneratorTest, ByteAlignedEventsStayInOneBytePerWord)
{
    int checked = 0;
    for (int trial = 0; trial < 20000 && checked < 1000; ++trial) {
        const SoftErrorEvent ev = gen_.sample();
        if (!ev.byte_aligned)
            continue;
        ++checked;
        for (const auto& [entry, mask] : ev.flips) {
            for (int w = 0; w < 4; ++w) {
                int byte_of_word = -1;
                for (int t = 0; t < 64; ++t) {
                    if (!mask.get(64 * w + t))
                        continue;
                    const int byte = (64 * w + t) / 8;
                    if (byte_of_word < 0)
                        byte_of_word = byte;
                    ASSERT_EQ(byte, byte_of_word);
                }
            }
        }
    }
    EXPECT_GE(checked, 1000);
}

TEST_F(EventGeneratorTest, BreadthBoundedByConfiguredMax)
{
    std::uint64_t max_breadth = 0;
    for (int trial = 0; trial < 30000; ++trial) {
        const SoftErrorEvent ev = gen_.sample();
        max_breadth = std::max<std::uint64_t>(max_breadth,
                                              ev.flips.size());
    }
    EXPECT_LE(max_breadth, EventConfig{}.breadth_max);
    // The long tail should actually be exercised.
    EXPECT_GT(max_breadth, 100u);
}

TEST_F(EventGeneratorTest, MultiEntryEventsShareSubarray)
{
    // Structural correlation: all flips of one event live in the same
    // bank/subarray (bitline or wordline locality).
    for (int trial = 0; trial < 3000; ++trial) {
        const SoftErrorEvent ev = gen_.sample();
        if (ev.flips.size() < 2)
            continue;
        const auto a0 = geometry_.decompose(ev.flips[0].first);
        for (const auto& [entry, mask] : ev.flips) {
            const auto a = geometry_.decompose(entry);
            ASSERT_EQ(a.stack, a0.stack);
            ASSERT_EQ(a.channel, a0.channel);
            ASSERT_EQ(a.bank, a0.bank);
            ASSERT_EQ(a.subarray, a0.subarray);
        }
    }
}

TEST_F(EventGeneratorTest, EventRateFromFitMatchesPaperScale)
{
    // 12.51 FIT/Gb on a 32GB GPU accelerated 2.52e8x lands at a
    // mean-time-to-event of a few seconds (the paper: "the
    // mean-time-to-event in the beam is in seconds").
    const BeamConfig beam;
    const double rate =
        EventGenerator::eventsPerBeamSecond(beam, geometry_);
    EXPECT_GT(rate, 0.05);
    EXPECT_LT(rate, 2.0);
    EXPECT_NEAR(beam.acceleration(), 2.52e8, 0.01e8);
}

TEST_F(EventGeneratorTest, ApplyInjectsIntoDevice)
{
    hbm2::Device dev(geometry_);
    dev.writeAll(hbm2::DataPattern::zeros, false);
    SoftErrorEvent ev;
    ev.cls = SoftErrorEvent::Class::sbse;
    hbm2::EntryMask mask;
    mask.set(11, 1);
    ev.flips.emplace_back(777, mask);
    EventGenerator::apply(ev, dev);
    const auto mm = dev.scanMismatches();
    ASSERT_EQ(mm.size(), 1u);
    EXPECT_EQ(mm[0].entry, 777u);
}

} // namespace
} // namespace beam
} // namespace gpuecc
