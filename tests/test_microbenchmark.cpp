/** @file Tests for the simulated DRAM microbenchmark and campaign. */

#include <gtest/gtest.h>

#include <chrono>

#include "beam/campaign.hpp"
#include "beam/microbenchmark.hpp"
#include "ecc/registry.hpp"
#include "faultsim/shard.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"

namespace gpuecc {
namespace beam {
namespace {

TEST(Microbenchmark, NoFaultsNoLog)
{
    hbm2::Device dev((hbm2::Geometry(1)));
    EventGenerator events(EventConfig{}, hbm2::Geometry(1), Rng(1));
    Microbenchmark mb((MicrobenchConfig()));
    Rng rng(2);
    double t = 0.0;
    const auto log = mb.run(dev, events, 0.0, t, 0, rng);
    EXPECT_TRUE(log.empty());
    // Clock advanced by (1 write + 20 reads) x 10 phases x pass time.
    EXPECT_NEAR(t, 10 * 21 * MicrobenchConfig{}.pass_seconds, 1e-9);
}

TEST(Microbenchmark, WeakCellLoggedInAlternatePhases)
{
    hbm2::Device dev(hbm2::Geometry(1), 16.0);
    dev.addWeakCell({123, 5, 4.0, true});
    EventGenerator events(EventConfig{}, hbm2::Geometry(1), Rng(3));
    MicrobenchConfig cfg;
    cfg.pattern = hbm2::DataPattern::zeros;
    cfg.write_phases = 4;
    cfg.reads_per_write = 3;
    Microbenchmark mb(cfg);
    Rng rng(4);
    double t = 0.0;
    const auto log = mb.run(dev, events, 0.0, t, 0, rng);

    // Zeros pattern: the 1->0 weak cell only errs in inverted phases
    // (1 and 3), on every read pass.
    ASSERT_EQ(log.size(), 2u * 3u);
    for (const LogRecord& r : log) {
        EXPECT_EQ(r.entry, 123u);
        EXPECT_EQ(r.write_phase % 2, 1);
        EXPECT_EQ(r.mask.get(5), 1);
    }
}

TEST(Microbenchmark, EventsAppearInLog)
{
    hbm2::Device dev((hbm2::Geometry(1)));
    EventGenerator events(EventConfig{}, hbm2::Geometry(1), Rng(5));
    Microbenchmark mb((MicrobenchConfig()));
    Rng rng(6);
    double t = 0.0;
    // Huge event rate: every pass injects somethng.
    const auto log = mb.run(dev, events, 1000.0, t, 7, rng);
    EXPECT_FALSE(log.empty());
    for (const LogRecord& r : log)
        EXPECT_EQ(r.run, 7);
}

TEST(Campaign, AccumulationCurveIsMonotonic)
{
    CampaignConfig cfg;
    cfg.runs = 40;
    Campaign campaign(cfg);
    campaign.runInBeam();
    const auto& acc = campaign.accumulation();
    ASSERT_EQ(acc.size(), 40u);
    for (std::size_t i = 1; i < acc.size(); ++i) {
        EXPECT_GT(acc[i].fluence_n_cm2, acc[i - 1].fluence_n_cm2);
        EXPECT_GE(acc[i].visible_weak_cells,
                  acc[i - 1].visible_weak_cells);
    }
}

TEST(Campaign, SoakDrivesRefreshSweepToPaperValues)
{
    CampaignConfig cfg;
    cfg.runs = 0;
    Campaign campaign(cfg);
    campaign.soak(1e11); // exhaust the leaky pool
    const auto sweep = campaign.refreshSweep({8.0, 16.0, 48.0});
    ASSERT_EQ(sweep.size(), 3u);
    // Figure 3a: ~294 at 8 ms, ~1000 at 16 ms, ~2656 at 48 ms. (The
    // positive-truncated retention distribution expects ~257 at 8 ms
    // for the same mu/sigma; binomial noise adds ~+-35.)
    EXPECT_NEAR(static_cast<double>(sweep[0].second), 260, 60);
    EXPECT_NEAR(static_cast<double>(sweep[1].second), 1000, 110);
    EXPECT_NEAR(static_cast<double>(sweep[2].second), 2690, 40);
}

TEST(Campaign, FluenceAccounting)
{
    CampaignConfig cfg;
    cfg.runs = 5;
    Campaign campaign(cfg);
    campaign.runInBeam();
    const double run_seconds =
        cfg.micro.pass_seconds *
        cfg.micro.write_phases * (1 + cfg.micro.reads_per_write);
    EXPECT_NEAR(campaign.fluence(),
                5 * cfg.beam.flux_n_cm2_s * run_seconds, 1e-3);
}

/**
 * The telemetry added per shard (a disabled trace span, two counter
 * bumps, one histogram observation, one progress update) must cost
 * under 2% of one shard kernel invocation — the campaign hot path
 * stays measurement-grade with telemetry compiled in.
 */
TEST(Telemetry, ShardInstrumentationOverheadBelowTwoPercent)
{
    const auto scheme = makeScheme("duet");
    const GoldenEntry golden = makeGolden(*scheme, 0x5EED);
    const auto shards =
        planShards(ErrorPattern::oneBeat, 1 << 16, 1 << 16);
    ASSERT_FALSE(shards.empty());

    const auto kernel_start = std::chrono::steady_clock::now();
    const OutcomeCounts counts =
        evaluateShard(*scheme, golden, 0x5EED, shards[0]);
    const double kernel_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - kernel_start)
            .count();
    ASSERT_GT(counts.trials, 0u);

    obs::MetricsRegistry& reg = obs::metrics();
    const obs::MetricId shards_done =
        reg.counter("overhead_test.shards");
    const obs::MetricId trials = reg.counter("overhead_test.trials");
    const obs::MetricId micros =
        reg.histogram("overhead_test.micros", {100, 1000, 10000});
    obs::ProgressReporter progress(obs::ProgressMode::off, {});
    ASSERT_FALSE(obs::traceEnabled());

    constexpr int kReps = 20000;
    const auto bundle_start = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) {
        obs::TraceSpan span("shard", "shard"); // disabled: no-op
        reg.add(shards_done);
        reg.add(trials, counts.trials);
        reg.observe(micros, 1234);
        progress.shardDone(counts.trials);
    }
    const double per_shard_bundle =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - bundle_start)
            .count() /
        kReps;
    reg.flushThisThread();

    EXPECT_LT(per_shard_bundle, 0.02 * kernel_seconds)
        << "telemetry bundle " << per_shard_bundle * 1e9
        << " ns vs shard kernel " << kernel_seconds * 1e6 << " us";
}

} // namespace
} // namespace beam
} // namespace gpuecc
