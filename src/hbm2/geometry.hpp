/**
 * @file
 * The physical hierarchy of HBM2 GPU memory (Section 2.4 of the
 * paper).
 *
 * A 32GB compute-class GPU carries eight HBM2 stacks. Each stack has
 * eight 512MB channels; each channel 16 banks; each bank 32
 * subarrays with their own row buffers; each subarray 32 data mats
 * of 512 x 512 bitcells. A row activation moves 2KB into the row
 * buffer and reads fetch one 32B column (one "memory entry") at a
 * time; each mat contributes an 8-bit slice, so byte j of a 32B
 * entry comes from its own mat - the structural source of the
 * byte-aligned multi-bit errors the paper observes.
 */

#ifndef GPUECC_HBM2_GEOMETRY_HPP
#define GPUECC_HBM2_GEOMETRY_HPP

#include <cstdint>
#include <string>

namespace gpuecc {
namespace hbm2 {

/** Geometry constants (per the paper and JESD235). */
constexpr int entry_bytes = 32;           //!< minimum access granularity
constexpr int columns_per_row = 64;       //!< 2KB row / 32B entries
constexpr int rows_per_subarray = 512;    //!< mat height
constexpr int mats_per_subarray = 32;     //!< 8b slice each
constexpr int subarrays_per_bank = 32;
constexpr int banks_per_channel = 16;
constexpr int channels_per_stack = 8;     //!< 512MB each
constexpr int default_stacks = 8;         //!< 32GB GPU

constexpr std::uint64_t entries_per_subarray =
    static_cast<std::uint64_t>(rows_per_subarray) * columns_per_row;
constexpr std::uint64_t entries_per_bank =
    entries_per_subarray * subarrays_per_bank;
constexpr std::uint64_t entries_per_channel =
    entries_per_bank * banks_per_channel;
constexpr std::uint64_t entries_per_stack =
    entries_per_channel * channels_per_stack;

/** Decomposed physical address of one 32B entry. */
struct EntryAddress
{
    int stack;
    int channel;
    int bank;
    int subarray;
    int row;
    int column;

    friend bool operator==(const EntryAddress&,
                           const EntryAddress&) = default;
};

/** Geometry of one GPU's DRAM (entry addressing + capacity). */
class Geometry
{
  public:
    /** @param stacks number of HBM2 stacks (default 8 = 32GB) */
    explicit Geometry(int stacks = default_stacks);

    int stacks() const { return stacks_; }

    /** Total 32B entries on the GPU. */
    std::uint64_t numEntries() const;

    /** Total capacity in bytes. */
    std::uint64_t capacityBytes() const;

    /** Total capacity in gigabits (for FIT/Gb math). */
    double capacityGbit() const;

    /** Linear entry index -> physical decomposition. */
    EntryAddress decompose(std::uint64_t entry_index) const;

    /** Physical decomposition -> linear entry index. */
    std::uint64_t compose(const EntryAddress& addr) const;

    /**
     * The mat feeding byte `byte_in_entry` (0..31) of an entry; with
     * a direct byte-to-mat mapping this is simply the byte index.
     */
    static int matOfByte(int byte_in_entry) { return byte_in_entry; }

    /** Render an address for diagnostics. */
    static std::string toString(const EntryAddress& addr);

  private:
    int stacks_;
};

} // namespace hbm2
} // namespace gpuecc

#endif // GPUECC_HBM2_GEOMETRY_HPP
