#include "hbm2/geometry.hpp"

#include <sstream>

#include "common/log.hpp"

namespace gpuecc {
namespace hbm2 {

Geometry::Geometry(int stacks)
    : stacks_(stacks)
{
    require(stacks > 0 && stacks <= 16,
            "Geometry: stack count out of range");
}

std::uint64_t
Geometry::numEntries() const
{
    return entries_per_stack * static_cast<std::uint64_t>(stacks_);
}

std::uint64_t
Geometry::capacityBytes() const
{
    return numEntries() * entry_bytes;
}

double
Geometry::capacityGbit() const
{
    return static_cast<double>(capacityBytes()) * 8.0 /
           (1024.0 * 1024.0 * 1024.0);
}

EntryAddress
Geometry::decompose(std::uint64_t entry_index) const
{
    require(entry_index < numEntries(),
            "Geometry::decompose: entry index out of range");
    EntryAddress a{};
    a.column = static_cast<int>(entry_index % columns_per_row);
    entry_index /= columns_per_row;
    a.row = static_cast<int>(entry_index % rows_per_subarray);
    entry_index /= rows_per_subarray;
    a.subarray = static_cast<int>(entry_index % subarrays_per_bank);
    entry_index /= subarrays_per_bank;
    a.bank = static_cast<int>(entry_index % banks_per_channel);
    entry_index /= banks_per_channel;
    a.channel = static_cast<int>(entry_index % channels_per_stack);
    entry_index /= channels_per_stack;
    a.stack = static_cast<int>(entry_index);
    return a;
}

std::uint64_t
Geometry::compose(const EntryAddress& a) const
{
    require(a.stack >= 0 && a.stack < stacks_ && a.channel >= 0 &&
                a.channel < channels_per_stack && a.bank >= 0 &&
                a.bank < banks_per_channel && a.subarray >= 0 &&
                a.subarray < subarrays_per_bank && a.row >= 0 &&
                a.row < rows_per_subarray && a.column >= 0 &&
                a.column < columns_per_row,
            "Geometry::compose: field out of range");
    std::uint64_t idx = a.stack;
    idx = idx * channels_per_stack + a.channel;
    idx = idx * banks_per_channel + a.bank;
    idx = idx * subarrays_per_bank + a.subarray;
    idx = idx * rows_per_subarray + a.row;
    idx = idx * columns_per_row + a.column;
    return idx;
}

std::string
Geometry::toString(const EntryAddress& a)
{
    std::ostringstream out;
    out << "stack " << a.stack << " ch " << a.channel << " bank "
        << a.bank << " sa " << a.subarray << " row " << a.row << " col "
        << a.column;
    return out.str();
}

} // namespace hbm2
} // namespace gpuecc
