#include "hbm2/retention.hpp"

#include "common/log.hpp"
#include "common/stats.hpp"

namespace gpuecc {
namespace hbm2 {

RetentionModel::RetentionModel(double mu_ms, double sigma_ms,
                               double p_one_to_zero)
    : mu_(mu_ms), sigma_(sigma_ms), p_one_to_zero_(p_one_to_zero)
{
    require(sigma_ms > 0.0, "RetentionModel: sigma must be positive");
    require(p_one_to_zero >= 0.0 && p_one_to_zero <= 1.0,
            "RetentionModel: direction probability out of range");
}

double
RetentionModel::sampleRetention(Rng& rng) const
{
    double r = 0.0;
    do {
        r = mu_ + sigma_ * rng.nextGaussian();
    } while (r <= 0.0);
    return r;
}

bool
RetentionModel::sampleOneToZero(Rng& rng) const
{
    return rng.nextBool(p_one_to_zero_);
}

double
RetentionModel::visibleFraction(double refresh_ms) const
{
    return normalCdf((refresh_ms - mu_) / sigma_);
}

bool
RetentionModel::cellFails(const WeakCell& cell, double refresh_ms,
                          int stored_bit)
{
    if (cell.retention_ms >= refresh_ms)
        return false;
    // A 1 -> 0 leak only corrupts a stored 1 (and vice versa).
    return cell.one_to_zero ? stored_bit == 1 : stored_bit == 0;
}

} // namespace hbm2
} // namespace gpuecc
