/**
 * @file
 * A functional HBM2 device simulator.
 *
 * The beam-testing microbenchmark streams through all of GPU DRAM, so
 * the simulator cannot store 32GB of state. Instead it represents
 * memory as (known data pattern) + (sparse fault overlay): writes set
 * the pattern, soft-error events flip bits in a sparse overlay that
 * persists until the next write, and displacement-damaged weak cells
 * produce repeated unidirectional errors whenever their retention
 * time is below the active refresh period. Reads therefore reduce to
 * scanning the sparse fault state - exactly the information the real
 * microbenchmark's mismatch log captures.
 */

#ifndef GPUECC_HBM2_DEVICE_HPP
#define GPUECC_HBM2_DEVICE_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bits.hpp"
#include "hbm2/geometry.hpp"
#include "hbm2/retention.hpp"

namespace gpuecc {
namespace hbm2 {

/** The microbenchmark data patterns from the paper's methodology. */
enum class DataPattern
{
    zeros,        //!< all 0s
    ones,         //!< all 1s
    checkerboard, //!< pseudo-checkerboard 0x5555.../0xAAAA...
    anEncoded     //!< word index * (2^32 - 1) per 8B word (AN code)
};

/** Per-entry data-bit error mask (32B = 256 bits). */
using EntryMask = Bits<256>;

/** One observed read mismatch. */
struct Mismatch
{
    std::uint64_t entry;
    EntryMask mask; //!< observed XOR expected
};

/** Pattern + sparse-fault functional model of GPU DRAM. */
class Device
{
  public:
    /**
     * @param geometry   DRAM geometry (capacity)
     * @param refresh_ms refresh period (HBM2 default 16 ms)
     */
    explicit Device(const Geometry& geometry, double refresh_ms = 16.0);

    const Geometry& geometry() const { return geometry_; }

    /** Active refresh period in milliseconds. */
    double refreshPeriod() const { return refresh_ms_; }

    /** Change the refresh period (the paper's modified GPU BIOS). */
    void setRefreshPeriod(double ms);

    /**
     * Write the pattern (or its bitwise inverse) to every entry.
     * Clears the soft-error overlay; weak cells persist.
     */
    void writeAll(DataPattern pattern, bool inverted);

    /** The pattern currently stored. */
    DataPattern pattern() const { return pattern_; }

    /** Whether the stored pattern is inverted. */
    bool inverted() const { return inverted_; }

    /** Expected stored value of word `word` (0..3) of an entry. */
    static std::uint64_t expectedWord(DataPattern pattern, bool inverted,
                                      std::uint64_t entry, int word);

    /** Register a displacement-damaged cell. */
    void addWeakCell(const WeakCell& cell);

    /** Number of registered weak cells. */
    std::size_t numWeakCells() const { return weak_cells_.size(); }

    /** Mutable access for annealing adjustments. */
    std::vector<WeakCell>& weakCells() { return weak_cells_; }
    const std::vector<WeakCell>& weakCells() const { return weak_cells_; }

    /** XOR a soft-error flip mask into an entry (persists until the
     *  next writeAll). */
    void injectFlips(std::uint64_t entry, const EntryMask& mask);

    /**
     * Scan the whole device and report every entry whose contents
     * differ from the stored pattern (soft-error overlay plus
     * currently-failing weak cells).
     */
    std::vector<Mismatch> scanMismatches() const;

    /** Stored bit (before faults) at (entry, bit). */
    int storedBit(std::uint64_t entry, int bit) const;

  private:
    Geometry geometry_;
    double refresh_ms_;
    DataPattern pattern_ = DataPattern::zeros;
    bool inverted_ = false;
    std::unordered_map<std::uint64_t, EntryMask> overlay_;
    std::vector<WeakCell> weak_cells_;
};

} // namespace hbm2
} // namespace gpuecc

#endif // GPUECC_HBM2_DEVICE_HPP
