#include "hbm2/device.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace gpuecc {
namespace hbm2 {

Device::Device(const Geometry& geometry, double refresh_ms)
    : geometry_(geometry), refresh_ms_(refresh_ms)
{
    require(refresh_ms > 0.0, "Device: refresh period must be positive");
}

void
Device::setRefreshPeriod(double ms)
{
    require(ms > 0.0, "Device: refresh period must be positive");
    refresh_ms_ = ms;
}

void
Device::writeAll(DataPattern pattern, bool inverted)
{
    pattern_ = pattern;
    inverted_ = inverted;
    overlay_.clear();
}

std::uint64_t
Device::expectedWord(DataPattern pattern, bool inverted,
                     std::uint64_t entry, int word)
{
    std::uint64_t v = 0;
    switch (pattern) {
      case DataPattern::zeros:
        v = 0;
        break;
      case DataPattern::ones:
        v = ~std::uint64_t{0};
        break;
      case DataPattern::checkerboard:
        v = (word & 1) ? 0xAAAAAAAAAAAAAAAAull : 0x5555555555555555ull;
        break;
      case DataPattern::anEncoded:
        // AN code: word's virtual index times A = 2^32 - 1.
        v = (entry * 4 + static_cast<std::uint64_t>(word)) *
            0xFFFFFFFFull;
        break;
    }
    return inverted ? ~v : v;
}

int
Device::storedBit(std::uint64_t entry, int bit) const
{
    const std::uint64_t w =
        expectedWord(pattern_, inverted_, entry, bit / 64);
    return static_cast<int>((w >> (bit % 64)) & 1u);
}

void
Device::addWeakCell(const WeakCell& cell)
{
    require(cell.entry_index < geometry_.numEntries() && cell.bit >= 0 &&
                cell.bit < 256,
            "Device::addWeakCell: cell out of range");
    weak_cells_.push_back(cell);
}

void
Device::injectFlips(std::uint64_t entry, const EntryMask& mask)
{
    require(entry < geometry_.numEntries(),
            "Device::injectFlips: entry out of range");
    if (mask.none())
        return;
    overlay_[entry] ^= mask;
}

std::vector<Mismatch>
Device::scanMismatches() const
{
    // Start from the soft-error overlay.
    std::unordered_map<std::uint64_t, EntryMask> observed = overlay_;

    // Add currently-failing weak cells: the observed value is the
    // leaked-to level, a mismatch only when the stored bit differs.
    for (const WeakCell& cell : weak_cells_) {
        const int stored = storedBit(cell.entry_index, cell.bit);
        if (RetentionModel::cellFails(cell, refresh_ms_, stored))
            observed[cell.entry_index].flip(cell.bit);
    }

    std::vector<Mismatch> out;
    out.reserve(observed.size());
    for (const auto& [entry, mask] : observed) {
        if (!mask.none())
            out.push_back({entry, mask});
    }
    std::sort(out.begin(), out.end(),
              [](const Mismatch& a, const Mismatch& b) {
                  return a.entry < b.entry;
              });
    return out;
}

} // namespace hbm2
} // namespace gpuecc
