/**
 * @file
 * Weak-cell retention modeling (Section 4 of the paper).
 *
 * Displacement damage raises the leakage of a DRAM cell's access
 * transistor, collapsing its retention time by orders of magnitude.
 * The paper finds the retention times of damaged ("weak") cells to be
 * well described by a normal distribution: the number of weak cells
 * visible at refresh period R is n_total * Phi((R - mu) / sigma)
 * (Figure 3b). A weak cell manifests as a repeated, unidirectional
 * (overwhelmingly 1 -> 0) single-bit error whenever its retention
 * time is below the refresh period and the stored bit is in the
 * leaky direction.
 */

#ifndef GPUECC_HBM2_RETENTION_HPP
#define GPUECC_HBM2_RETENTION_HPP

#include <cstdint>

#include "common/rng.hpp"

namespace gpuecc {
namespace hbm2 {

/** One displacement-damaged DRAM cell. */
struct WeakCell
{
    std::uint64_t entry_index; //!< entry holding the cell
    int bit;                   //!< bit 0..255 within the 32B entry
    double retention_ms;       //!< collapsed retention time
    bool one_to_zero;          //!< leak direction (true for 1 -> 0)
};

/** Normally-distributed weak-cell retention times. */
class RetentionModel
{
  public:
    /**
     * @param mu_ms    mean retention of damaged cells (paper fit ~19ms)
     * @param sigma_ms std deviation (~9ms)
     * @param p_one_to_zero fraction of cells leaking 1 -> 0 (99.8%)
     */
    RetentionModel(double mu_ms, double sigma_ms,
                   double p_one_to_zero = 0.998);

    double mu() const { return mu_; }
    double sigma() const { return sigma_; }

    /** Sample a retention time (truncated positive). */
    double sampleRetention(Rng& rng) const;

    /** Sample a leak direction. */
    bool sampleOneToZero(Rng& rng) const;

    /** Expected fraction of weak cells visible at a refresh period. */
    double visibleFraction(double refresh_ms) const;

    /**
     * Whether a weak cell produces an error.
     *
     * @param cell       the damaged cell
     * @param refresh_ms active refresh period
     * @param stored_bit the logical bit currently stored
     */
    static bool cellFails(const WeakCell& cell, double refresh_ms,
                          int stored_bit);

    /**
     * Anneal: damaged transistors partially recover over time,
     * shifting the retention distribution upward (Section 4 "Error
     * Annealing"). Applies the shift to mu for future samples; the
     * caller shifts existing cells.
     */
    void shiftMu(double delta_ms) { mu_ += delta_ms; }

  private:
    double mu_;
    double sigma_;
    double p_one_to_zero_;
};

} // namespace hbm2
} // namespace gpuecc

#endif // GPUECC_HBM2_RETENTION_HPP
