/**
 * @file
 * Monte Carlo / exhaustive ECC evaluation (the engine behind the
 * paper's Table 2 and Figure 8).
 *
 * For each (scheme, error pattern) pair the evaluator injects error
 * masks into an encoded entry, decodes, and classifies the outcome as
 * detected-and-corrected (DCE), detected-yet-uncorrectable (DUE), or
 * silent data corruption (SDC - any decode whose returned data
 * differs from the golden data without a DUE flag, covering both
 * miscorrections and undetected errors). Bit, pin, byte, 2-bit and
 * 3-bit patterns are evaluated exhaustively; beat and whole-entry
 * patterns are sampled, mirroring the paper's methodology.
 *
 * Evaluator is a thin client of the deterministic shard kernel
 * (faultsim/shard.hpp) that the sim-layer CampaignRunner also runs:
 * the same seed gives bit-identical tallies for any thread count.
 */

#ifndef GPUECC_FAULTSIM_EVALUATOR_HPP
#define GPUECC_FAULTSIM_EVALUATOR_HPP

#include <cstdint>
#include <map>

#include "common/stats.hpp"
#include "ecc/scheme.hpp"
#include "faultsim/patterns.hpp"

namespace gpuecc {

/** Outcome tallies for one (scheme, pattern) evaluation. */
struct OutcomeCounts
{
    std::uint64_t trials = 0;
    std::uint64_t dce = 0;  //!< corrected, data matches golden
    std::uint64_t due = 0;  //!< flagged uncorrectable
    std::uint64_t sdc = 0;  //!< wrong data without a flag
    /** True when every possible mask was visited (exact rates). */
    bool exhaustive = false;

    /**
     * Fold another shard's tallies into this one. Merging is
     * commutative and associative, so shards may complete in any
     * order; panics if any counter would overflow.
     */
    OutcomeCounts& merge(const OutcomeCounts& other);

    /**
     * Whether merging `other` would keep every counter inside 64
     * bits. merge() panics when this is false; resume-path callers
     * check it first and surface a structured error instead.
     */
    bool fitsWithoutOverflow(const OutcomeCounts& other) const;

    /**
     * Whether the class tallies sum to the trial count — the
     * invariant every freshly evaluated shard satisfies, used to
     * reject torn or corrupt checkpoint entries.
     */
    bool selfConsistent() const;

    double dceRate() const
    {
        return trials ? static_cast<double>(dce) / trials : 0.0;
    }
    double dueRate() const
    {
        return trials ? static_cast<double>(due) / trials : 0.0;
    }
    double sdcRate() const
    {
        return trials ? static_cast<double>(sdc) / trials : 0.0;
    }
    /** 95% Wilson interval on the SDC rate (degenerate if exhaustive). */
    Interval sdcInterval() const
    {
        return exhaustive ? Interval{sdcRate(), sdcRate()}
                          : wilsonInterval(sdc, trials);
    }
};

/** Evaluation engine bound to one scheme. */
class Evaluator
{
  public:
    /**
     * @param scheme  the organization under test
     * @param seed    RNG seed; results are deterministic per seed and
     *                identical for every thread count
     * @param threads shard workers (1 = run inline, 0 = all cores)
     */
    explicit Evaluator(const EntryScheme& scheme,
                       std::uint64_t seed = 0x5EED, int threads = 1);

    /**
     * Evaluate one pattern.
     *
     * @param samples Monte Carlo sample count for non-enumerable
     *                patterns (beat / whole entry); enumerable
     *                patterns ignore it and run exhaustively
     */
    OutcomeCounts evaluate(ErrorPattern pattern, std::uint64_t samples);

    /** Evaluate all seven Table 1 patterns. */
    std::map<ErrorPattern, OutcomeCounts>
    evaluateAll(std::uint64_t samples);

  private:
    const EntryScheme& scheme_;
    std::uint64_t seed_;
    int threads_;
};

} // namespace gpuecc

#endif // GPUECC_FAULTSIM_EVALUATOR_HPP
