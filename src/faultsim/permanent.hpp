/**
 * @file
 * Permanent-fault (graceful degradation) evaluation.
 *
 * Section 2.5 of the paper motivates keeping single-pin correction:
 * HBM2 pins (TSV + microbump + interposer wire) develop permanent
 * failures in the field, and a code that corrects them lets a GPU
 * degrade gracefully instead of crashing. Field studies also report
 * permanent non-pin faults with soft-error-like patterns (e.g. local
 * wordline failures, which look like stuck bytes), for which the
 * paper notes its byte detection/correction carries over.
 *
 * This module models stuck-at faults and evaluates each organization
 * in the degraded state - both with the permanent fault alone and
 * with an additional soft error striking the already-degraded entry
 * (the scenario that decides whether degradation is graceful).
 */

#ifndef GPUECC_FAULTSIM_PERMANENT_HPP
#define GPUECC_FAULTSIM_PERMANENT_HPP

#include <cstdint>

#include "common/rng.hpp"
#include "ecc/scheme.hpp"
#include "faultsim/evaluator.hpp"
#include "faultsim/patterns.hpp"

namespace gpuecc {

/** Kinds of permanent faults considered. */
enum class PermanentFaultKind
{
    stuckPin, //!< one pin stuck at a level (TSV/microbump failure)
    stuckByte //!< one aligned byte stuck (local wordline failure)
};

/** One stuck-at fault: the region's bits are forced to a level. */
struct PermanentFault
{
    PermanentFaultKind kind;
    int index; //!< pin index [0,72) or byte index [0,36)
    int level; //!< stuck-at value, 0 or 1

    /**
     * The error mask this fault imposes on an encoded entry: bits of
     * the region whose stored value differs from the stuck level.
     */
    Bits288 maskFor(const Bits288& stored) const;

    /** All physical bits of the stuck region. */
    Bits288 regionMask() const;
};

/**
 * Outcome tallies of a degraded-operation experiment. Degraded runs
 * are always sampled, so the shared tally type's `exhaustive` flag
 * simply stays false.
 */
using DegradationCounts = OutcomeCounts;

/** Degraded-operation evaluator for one scheme. */
class DegradationEvaluator
{
  public:
    /**
     * @param threads shard workers (1 = run inline, 0 = all cores);
     *                results are identical for every thread count
     */
    DegradationEvaluator(const EntryScheme& scheme,
                         std::uint64_t seed = 0xDE62ADE,
                         int threads = 1);

    /**
     * The permanent fault alone: random data, random fault instance
     * (index and level) per trial.
     */
    DegradationCounts faultAlone(PermanentFaultKind kind,
                                 std::uint64_t trials);

    /**
     * The permanent fault plus one soft error of the given pattern
     * striking the same entry (drawn to not overlap the fault's
     * region, as overlapping strikes change nothing stuck bits).
     */
    DegradationCounts faultPlusSoftError(PermanentFaultKind kind,
                                         ErrorPattern soft,
                                         std::uint64_t trials);

    /**
     * Stuck pin handled in diagnosed-erasure mode
     * (EntryScheme::decodeWithPinErasure), optionally with an
     * additional soft error.
     */
    DegradationCounts pinErasureMode(bool add_soft, ErrorPattern soft,
                                     std::uint64_t trials);

  private:
    DegradationCounts run(PermanentFaultKind kind, bool add_soft,
                          ErrorPattern soft, std::uint64_t trials,
                          bool erasure_mode = false);
    DegradationCounts runChunk(PermanentFaultKind kind, bool add_soft,
                               ErrorPattern soft, bool erasure_mode,
                               std::uint64_t count, Rng rng) const;

    const EntryScheme& scheme_;
    std::uint64_t seed_;
    int threads_;
};

} // namespace gpuecc

#endif // GPUECC_FAULTSIM_PERMANENT_HPP
