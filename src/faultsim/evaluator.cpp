#include "faultsim/evaluator.hpp"

namespace gpuecc {

Evaluator::Evaluator(const EntryScheme& scheme, std::uint64_t seed)
    : scheme_(scheme), rng_(seed)
{
    // Linearity of every considered code makes outcome classification
    // independent of the protected data (verified by property tests),
    // so one random golden entry per evaluator suffices.
    golden_data_ = {rng_.next64(), rng_.next64(), rng_.next64(),
                    rng_.next64()};
    golden_entry_ = scheme_.encode(golden_data_);
}

OutcomeCounts
Evaluator::runOne(ErrorPattern pattern, std::uint64_t samples)
{
    OutcomeCounts counts;
    auto inject = [&](const Bits288& mask) {
        const Bits288 received = golden_entry_ ^ mask;
        const EntryDecode result = scheme_.decode(received);
        ++counts.trials;
        if (result.status == EntryDecode::Status::due) {
            ++counts.due;
        } else if (result.data == golden_data_) {
            ++counts.dce;
        } else {
            ++counts.sdc;
        }
    };

    if (patternIsEnumerable(pattern)) {
        counts.exhaustive = true;
        forEachErrorMask(pattern, inject);
    } else {
        for (std::uint64_t i = 0; i < samples; ++i)
            inject(sampleErrorMask(pattern, rng_));
    }
    return counts;
}

OutcomeCounts
Evaluator::evaluate(ErrorPattern pattern, std::uint64_t samples)
{
    return runOne(pattern, samples);
}

std::map<ErrorPattern, OutcomeCounts>
Evaluator::evaluateAll(std::uint64_t samples)
{
    std::map<ErrorPattern, OutcomeCounts> out;
    for (ErrorPattern p : allErrorPatterns())
        out[p] = runOne(p, samples);
    return out;
}

} // namespace gpuecc
