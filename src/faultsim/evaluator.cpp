#include "faultsim/evaluator.hpp"

#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "faultsim/shard.hpp"

namespace gpuecc {

bool
OutcomeCounts::fitsWithoutOverflow(const OutcomeCounts& other) const
{
    return trials <= UINT64_MAX - other.trials &&
           dce <= UINT64_MAX - other.dce &&
           due <= UINT64_MAX - other.due &&
           sdc <= UINT64_MAX - other.sdc;
}

bool
OutcomeCounts::selfConsistent() const
{
    // Checked without intermediate sums so corrupt values near
    // UINT64_MAX cannot wrap their way into looking consistent.
    return dce <= trials && due <= trials - dce &&
           sdc == trials - dce - due;
}

OutcomeCounts&
OutcomeCounts::merge(const OutcomeCounts& other)
{
    require(fitsWithoutOverflow(other),
            "OutcomeCounts::merge: counter overflow");
    // An accumulator that has seen no shard yet adopts the first
    // shard's exactness; afterwards all shards must agree.
    exhaustive = trials == 0 ? other.exhaustive
                             : (exhaustive && other.exhaustive);
    trials += other.trials;
    dce += other.dce;
    due += other.due;
    sdc += other.sdc;
    return *this;
}

Evaluator::Evaluator(const EntryScheme& scheme, std::uint64_t seed,
                     int threads)
    : scheme_(scheme), seed_(seed),
      threads_(ThreadPool::resolveThreadCount(threads))
{
}

OutcomeCounts
Evaluator::evaluate(ErrorPattern pattern, std::uint64_t samples)
{
    const GoldenEntry golden = makeGolden(scheme_, seed_);
    const std::vector<Shard> shards = planShards(
        pattern, samples,
        effectiveShardChunk(samples, kShardSamples, threads_));
    if (threads_ == 1) {
        // Inline: one arena, one accumulator, batched kernel.
        ShardBatchArena arena;
        OutcomeCounts total;
        for (const Shard& shard : shards) {
            total.merge(evaluateShardBatched(scheme_, golden, seed_,
                                             shard, arena));
        }
        return total;
    }
    // Parallel: per-worker cache-line-aligned arenas and tallies,
    // merged once after the pool drains (order-free by construction).
    struct WorkerState
    {
        ShardBatchArena arena;
        OutcomeCounts counts;
    };
    ThreadPool pool(threads_);
    WorkerArena<WorkerState> states(pool);
    pool.parallelFor(shards.size(), [&](std::uint64_t i) {
        WorkerState& ws = states.local();
        ws.counts.merge(evaluateShardBatched(scheme_, golden, seed_,
                                             shards[i], ws.arena));
    });
    OutcomeCounts total;
    for (int w = 0; w < states.size(); ++w) {
        // A worker that never ran a shard holds an empty (and thus
        // non-exhaustive) accumulator; merging it would clear the
        // exhaustive flag of enumerable patterns.
        if (states.at(w).counts.trials > 0)
            total.merge(states.at(w).counts);
    }
    return total;
}

std::map<ErrorPattern, OutcomeCounts>
Evaluator::evaluateAll(std::uint64_t samples)
{
    std::map<ErrorPattern, OutcomeCounts> out;
    for (ErrorPattern p : allErrorPatterns())
        out[p] = evaluate(p, samples);
    return out;
}

} // namespace gpuecc
