#include "faultsim/evaluator.hpp"

#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "faultsim/shard.hpp"

namespace gpuecc {

bool
OutcomeCounts::fitsWithoutOverflow(const OutcomeCounts& other) const
{
    return trials <= UINT64_MAX - other.trials &&
           dce <= UINT64_MAX - other.dce &&
           due <= UINT64_MAX - other.due &&
           sdc <= UINT64_MAX - other.sdc;
}

bool
OutcomeCounts::selfConsistent() const
{
    // Checked without intermediate sums so corrupt values near
    // UINT64_MAX cannot wrap their way into looking consistent.
    return dce <= trials && due <= trials - dce &&
           sdc == trials - dce - due;
}

OutcomeCounts&
OutcomeCounts::merge(const OutcomeCounts& other)
{
    require(fitsWithoutOverflow(other),
            "OutcomeCounts::merge: counter overflow");
    // An accumulator that has seen no shard yet adopts the first
    // shard's exactness; afterwards all shards must agree.
    exhaustive = trials == 0 ? other.exhaustive
                             : (exhaustive && other.exhaustive);
    trials += other.trials;
    dce += other.dce;
    due += other.due;
    sdc += other.sdc;
    return *this;
}

Evaluator::Evaluator(const EntryScheme& scheme, std::uint64_t seed,
                     int threads)
    : scheme_(scheme), seed_(seed),
      threads_(ThreadPool::resolveThreadCount(threads))
{
}

OutcomeCounts
Evaluator::evaluate(ErrorPattern pattern, std::uint64_t samples)
{
    const GoldenEntry golden = makeGolden(scheme_, seed_);
    const std::vector<Shard> shards = planShards(pattern, samples);
    std::vector<OutcomeCounts> partial(shards.size());
    auto body = [&](std::uint64_t i) {
        partial[i] = evaluateShard(scheme_, golden, seed_, shards[i]);
    };
    if (threads_ == 1) {
        for (std::uint64_t i = 0; i < shards.size(); ++i)
            body(i);
    } else {
        ThreadPool(threads_).parallelFor(shards.size(), body);
    }
    OutcomeCounts total;
    for (const OutcomeCounts& p : partial)
        total.merge(p);
    return total;
}

std::map<ErrorPattern, OutcomeCounts>
Evaluator::evaluateAll(std::uint64_t samples)
{
    std::map<ErrorPattern, OutcomeCounts> out;
    for (ErrorPattern p : allErrorPatterns())
        out[p] = evaluate(p, samples);
    return out;
}

} // namespace gpuecc
