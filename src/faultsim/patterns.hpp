/**
 * @file
 * The paper's 7-class soft error pattern model (Table 1).
 *
 * Each beam-observed error is classified into one of seven physical
 * shapes, sorted by increasing ECC correction difficulty; when a mask
 * fits several shapes the easiest wins (e.g. a 2-bit error is two
 * erroneous bits NOT confined to one byte or one pin). The same
 * classifier serves the Monte Carlo evaluator and the beam-campaign
 * post-processing.
 */

#ifndef GPUECC_FAULTSIM_PATTERNS_HPP
#define GPUECC_FAULTSIM_PATTERNS_HPP

#include <array>
#include <functional>
#include <optional>
#include <string>

#include "common/bits.hpp"
#include "common/rng.hpp"

namespace gpuecc {

/** The seven error shapes of Table 1, in increasing difficulty. */
enum class ErrorPattern
{
    oneBit,
    onePin,
    oneByte,
    twoBits,
    threeBits,
    oneBeat,
    wholeEntry
};

/** Number of patterns. */
constexpr int numErrorPatterns = 7;

/** All patterns in Table 1 order. */
const std::array<ErrorPattern, numErrorPatterns>& allErrorPatterns();

/** Static description of one Table 1 row. */
struct PatternInfo
{
    ErrorPattern pattern;
    std::string label;      //!< e.g. "1 Byte"
    std::string bits_range; //!< e.g. "2-8"
    double probability;     //!< Table 1 weight
};

/** Table 1 of the paper (probabilities sum to 1). */
const std::array<PatternInfo, numErrorPatterns>& patternTable();

/** Lookup of one row. */
const PatternInfo& patternInfo(ErrorPattern p);

/**
 * Classify a nonzero physical error mask into its Table 1 shape,
 * applying the priority rule (easier shapes win).
 */
ErrorPattern classifyErrorMask(const Bits288& mask);

/**
 * Draw one random instance of a pattern.
 *
 * Bit, 2-bit and 3-bit patterns choose uniform positions subject to
 * the classification constraints; pin/byte/beat/entry patterns flip
 * each bit of their region i.i.d. with p = 1/2 and redraw until the
 * mask classifies as the requested shape (the uniform random
 * corruption model the paper adopts for evaluation).
 */
Bits288 sampleErrorMask(ErrorPattern p, Rng& rng);

/**
 * Visit every instance of an exhaustively enumerable pattern
 * (oneBit, onePin, oneByte, twoBits, threeBits). Fatal for
 * oneBeat / wholeEntry.
 *
 * @return the number of masks visited
 */
std::uint64_t forEachErrorMask(ErrorPattern p,
                               const std::function<void(const Bits288&)>& fn);

/**
 * Number of outer enumeration slots of an enumerable pattern: the
 * unit the campaign engine shards exhaustive evaluations by. Each
 * slot expands to a fixed, order-independent set of masks (one bit
 * position, one pin, one byte, or all pairs/triples anchored at one
 * first-bit position). Fatal for non-enumerable patterns.
 */
std::uint64_t enumerationOuterSize(ErrorPattern p);

/**
 * Visit the masks of outer slots [begin, end); the full enumeration
 * is recovered with begin = 0, end = enumerationOuterSize(p).
 *
 * @return the number of masks visited
 */
std::uint64_t
forEachErrorMaskInRange(ErrorPattern p, std::uint64_t begin,
                        std::uint64_t end,
                        const std::function<void(const Bits288&)>& fn);

/** Whether forEachErrorMask supports the pattern. */
bool patternIsEnumerable(ErrorPattern p);

} // namespace gpuecc

#endif // GPUECC_FAULTSIM_PATTERNS_HPP
