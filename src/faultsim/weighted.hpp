/**
 * @file
 * Table-1-weighted outcome aggregation (the paper's Figure 8).
 *
 * Given per-pattern outcome rates, compute the probability that a
 * random single soft-error event is corrected, detected, or causes
 * silent data corruption, weighting each pattern by its beam-measured
 * probability from Table 1.
 */

#ifndef GPUECC_FAULTSIM_WEIGHTED_HPP
#define GPUECC_FAULTSIM_WEIGHTED_HPP

#include <map>

#include "faultsim/evaluator.hpp"
#include "faultsim/patterns.hpp"

namespace gpuecc {

/** Event-weighted outcome probabilities for one scheme. */
struct WeightedOutcome
{
    double correct; //!< P(corrected | random event)
    double detect;  //!< P(DUE | random event)
    double sdc;     //!< P(SDC | random event)
};

/**
 * Weight per-pattern outcomes by the Table 1 probabilities.
 *
 * @param per_pattern outcome counts for all seven patterns
 */
WeightedOutcome
weightedOutcome(const std::map<ErrorPattern, OutcomeCounts>& per_pattern);

} // namespace gpuecc

#endif // GPUECC_FAULTSIM_WEIGHTED_HPP
