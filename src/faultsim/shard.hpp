/**
 * @file
 * Deterministic sharding of fault-injection work.
 *
 * A (scheme, pattern) evaluation is decomposed into fixed shards whose
 * outcome tallies are independent of execution order: enumerable
 * patterns shard their mask space by outer enumeration slot, sampled
 * patterns shard their sample range into chunks. Random draws are
 * keyed to *stream blocks* of kStreamBlockSamples samples, not to
 * shards: sample i always draws from Rng::forStream(seed,
 * stream(pattern, i / kStreamBlockSamples)), and shard boundaries are
 * required to fall on block boundaries. Merging the shard tallies
 * therefore yields bit-identical results for any thread count AND any
 * (block-aligned) chunk size — the property the campaign engine's
 * determinism guarantee rests on. The same kernel serves the
 * sequential Evaluator and the parallel CampaignRunner.
 */

#ifndef GPUECC_FAULTSIM_SHARD_HPP
#define GPUECC_FAULTSIM_SHARD_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "ecc/scheme.hpp"
#include "faultsim/evaluator.hpp"
#include "faultsim/patterns.hpp"

namespace gpuecc {

/** Samples per shard of a non-enumerable pattern. */
constexpr std::uint64_t kShardSamples = 1 << 16;

/**
 * Samples per RNG stream block. Sampled draws are keyed by block, not
 * by shard, so tallies are invariant to the shard chunk size; chunks
 * are rounded up to a multiple of this.
 */
constexpr std::uint64_t kStreamBlockSamples = 1024;

/** Outer enumeration slots per shard of an enumerable pattern. */
constexpr std::uint64_t kShardOuterSlots = 8;

/** One order-independent unit of fault-injection work. */
struct Shard
{
    ErrorPattern pattern;
    /** Outer slot range (enumerable) or sample range (sampled). */
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    /** RNG stream id of the shard's first block (sampled only). */
    std::uint64_t stream = 0;
};

/**
 * Plan the shards of one pattern evaluation.
 *
 * Enumerable patterns ignore `samples` and cover their whole mask
 * space; sampled patterns cover [0, samples). The plan depends only
 * on (pattern, samples, chunk), never on the thread count, and the
 * resulting tallies are additionally independent of `chunk` because
 * draws are keyed per stream block.
 *
 * @param chunk samples per shard for non-enumerable patterns,
 *              rounded up to a multiple of kStreamBlockSamples
 */
std::vector<Shard> planShards(ErrorPattern p, std::uint64_t samples,
                              std::uint64_t chunk = kShardSamples);

/**
 * Shrink a requested chunk so a `workers`-thread run gets at least
 * `workers` shards per sampled pattern whenever the sample budget
 * allows it (samples >= workers * kStreamBlockSamples) — short
 * campaigns would otherwise leave cores idle behind one oversized
 * shard. The result is block-aligned and never larger than the
 * requested chunk (rounded to a block multiple). Tallies are
 * unaffected: draws are keyed per stream block, so any block-aligned
 * chunk yields bit-identical merged counts. Callers that persist a
 * plan identity (checkpoints) must fingerprint the *effective* chunk.
 */
std::uint64_t effectiveShardChunk(std::uint64_t samples,
                                  std::uint64_t chunk, int workers);

/** The golden (error-free) entry all shards of a scheme inject into. */
struct GoldenEntry
{
    EntryData data;
    Bits288 entry;
};

/**
 * Derive the golden entry for a scheme from a campaign seed (the
 * same derivation the pre-refactor Evaluator used, so a given seed
 * keeps meaning the same golden data).
 */
GoldenEntry makeGolden(const EntryScheme& scheme, std::uint64_t seed);

/**
 * Evaluate one shard: inject every mask of the shard's slice into the
 * golden entry, decode, and tally outcomes. Pure — safe to call from
 * any thread as long as the scheme's decode is const-thread-safe
 * (all library schemes are).
 */
OutcomeCounts evaluateShard(const EntryScheme& scheme,
                            const GoldenEntry& golden,
                            std::uint64_t seed, const Shard& shard);

/** Entries per structure-of-arrays batch of the batched kernel. */
constexpr std::size_t kShardBatchEntries = 256;

/**
 * Reusable structure-of-arrays scratch for the batched shard kernel.
 *
 * One arena per worker, allocated once and reused across every shard
 * that worker evaluates: the three staging arrays (~30 KiB total)
 * stay resident in its private cache, and the cache-line alignment
 * keeps neighbouring workers' arenas off each other's lines when they
 * live in a WorkerArena slot. The arena carries no results — tallies
 * come back through evaluateShardBatched's return value — so reuse
 * needs no reset.
 */
struct ShardBatchArena
{
    /** Stage 1: materialized error masks. */
    alignas(kCacheLineBytes)
        std::array<Bits288, kShardBatchEntries> masks;
    /** Stage 2: golden entry with each mask injected. */
    alignas(kCacheLineBytes)
        std::array<Bits288, kShardBatchEntries> received;
    /** Stage 3: batch-decoded outcomes. */
    alignas(kCacheLineBytes)
        std::array<EntryDecode, kShardBatchEntries> decodes;
    /** Bulk-derived generators, one per stream block of the shard. */
    std::vector<Rng> block_rngs;
};

/**
 * Batched evaluation of one shard: identical tallies to
 * evaluateShard (which remains the differential oracle — see
 * tests/test_shard_batch.cpp), restructured as a
 * structure-of-arrays pipeline. Masks are materialized in draw order
 * (so the RNG consumption matches the scalar path bit-for-bit),
 * injected into the golden entry word-wise, and decoded through one
 * decodeBatch call per batch — one virtual dispatch per
 * kShardBatchEntries entries instead of one per sample, with block
 * generators derived in bulk via Rng::forStreams.
 */
OutcomeCounts evaluateShardBatched(const EntryScheme& scheme,
                                   const GoldenEntry& golden,
                                   std::uint64_t seed,
                                   const Shard& shard,
                                   ShardBatchArena& arena);

} // namespace gpuecc

#endif // GPUECC_FAULTSIM_SHARD_HPP
