/**
 * @file
 * Deterministic sharding of fault-injection work.
 *
 * A (scheme, pattern) evaluation is decomposed into fixed shards whose
 * outcome tallies are independent of execution order: enumerable
 * patterns shard their mask space by outer enumeration slot, sampled
 * patterns shard their sample range into chunks. Random draws are
 * keyed to *stream blocks* of kStreamBlockSamples samples, not to
 * shards: sample i always draws from Rng::forStream(seed,
 * stream(pattern, i / kStreamBlockSamples)), and shard boundaries are
 * required to fall on block boundaries. Merging the shard tallies
 * therefore yields bit-identical results for any thread count AND any
 * (block-aligned) chunk size — the property the campaign engine's
 * determinism guarantee rests on. The same kernel serves the
 * sequential Evaluator and the parallel CampaignRunner.
 */

#ifndef GPUECC_FAULTSIM_SHARD_HPP
#define GPUECC_FAULTSIM_SHARD_HPP

#include <cstdint>
#include <vector>

#include "ecc/scheme.hpp"
#include "faultsim/evaluator.hpp"
#include "faultsim/patterns.hpp"

namespace gpuecc {

/** Samples per shard of a non-enumerable pattern. */
constexpr std::uint64_t kShardSamples = 1 << 16;

/**
 * Samples per RNG stream block. Sampled draws are keyed by block, not
 * by shard, so tallies are invariant to the shard chunk size; chunks
 * are rounded up to a multiple of this.
 */
constexpr std::uint64_t kStreamBlockSamples = 1024;

/** Outer enumeration slots per shard of an enumerable pattern. */
constexpr std::uint64_t kShardOuterSlots = 8;

/** One order-independent unit of fault-injection work. */
struct Shard
{
    ErrorPattern pattern;
    /** Outer slot range (enumerable) or sample range (sampled). */
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    /** RNG stream id of the shard's first block (sampled only). */
    std::uint64_t stream = 0;
};

/**
 * Plan the shards of one pattern evaluation.
 *
 * Enumerable patterns ignore `samples` and cover their whole mask
 * space; sampled patterns cover [0, samples). The plan depends only
 * on (pattern, samples, chunk), never on the thread count, and the
 * resulting tallies are additionally independent of `chunk` because
 * draws are keyed per stream block.
 *
 * @param chunk samples per shard for non-enumerable patterns,
 *              rounded up to a multiple of kStreamBlockSamples
 */
std::vector<Shard> planShards(ErrorPattern p, std::uint64_t samples,
                              std::uint64_t chunk = kShardSamples);

/** The golden (error-free) entry all shards of a scheme inject into. */
struct GoldenEntry
{
    EntryData data;
    Bits288 entry;
};

/**
 * Derive the golden entry for a scheme from a campaign seed (the
 * same derivation the pre-refactor Evaluator used, so a given seed
 * keeps meaning the same golden data).
 */
GoldenEntry makeGolden(const EntryScheme& scheme, std::uint64_t seed);

/**
 * Evaluate one shard: inject every mask of the shard's slice into the
 * golden entry, decode, and tally outcomes. Pure — safe to call from
 * any thread as long as the scheme's decode is const-thread-safe
 * (all library schemes are).
 */
OutcomeCounts evaluateShard(const EntryScheme& scheme,
                            const GoldenEntry& golden,
                            std::uint64_t seed, const Shard& shard);

} // namespace gpuecc

#endif // GPUECC_FAULTSIM_SHARD_HPP
