#include "faultsim/permanent.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "interleave/swizzle.hpp"

namespace gpuecc {

Bits288
PermanentFault::maskFor(const Bits288& stored) const
{
    Bits288 mask;
    auto force = [&](int phys) {
        if (stored.get(phys) != level)
            mask.set(phys, 1);
    };
    switch (kind) {
      case PermanentFaultKind::stuckPin:
        require(index >= 0 && index < layout::num_pins,
                "PermanentFault: pin index out of range");
        for (int beat = 0; beat < layout::num_beats; ++beat)
            force(layout::physicalIndex(beat, index));
        break;
      case PermanentFaultKind::stuckByte:
        require(index >= 0 && index < layout::num_bytes,
                "PermanentFault: byte index out of range");
        for (int t = 0; t < 8; ++t)
            force(8 * index + t);
        break;
    }
    return mask;
}

Bits288
PermanentFault::regionMask() const
{
    Bits288 region;
    switch (kind) {
      case PermanentFaultKind::stuckPin:
        for (int beat = 0; beat < layout::num_beats; ++beat)
            region.set(layout::physicalIndex(beat, index), 1);
        break;
      case PermanentFaultKind::stuckByte:
        for (int t = 0; t < 8; ++t)
            region.set(8 * index + t, 1);
        break;
    }
    return region;
}

DegradationEvaluator::DegradationEvaluator(const EntryScheme& scheme,
                                           std::uint64_t seed,
                                           int threads)
    : scheme_(scheme), seed_(seed),
      threads_(ThreadPool::resolveThreadCount(threads))
{
}

DegradationCounts
DegradationEvaluator::runChunk(PermanentFaultKind kind, bool add_soft,
                               ErrorPattern soft, bool erasure_mode,
                               std::uint64_t count, Rng rng) const
{
    DegradationCounts counts;
    const int region_count = kind == PermanentFaultKind::stuckPin
        ? layout::num_pins
        : layout::num_bytes;

    for (std::uint64_t trial = 0; trial < count; ++trial) {
        const EntryData data{rng.next64(), rng.next64(), rng.next64(),
                             rng.next64()};
        const Bits288 stored = scheme_.encode(data);

        PermanentFault fault{
            kind, static_cast<int>(rng.nextBounded(region_count)),
            static_cast<int>(rng.nextBounded(2))};
        Bits288 mask = fault.maskFor(stored);

        if (add_soft) {
            // Draw a soft error that does not touch the stuck region
            // (flips inside it are absorbed by the stuck level).
            Bits288 soft_mask;
            const Bits288 region = fault.regionMask();
            for (;;) {
                soft_mask = sampleErrorMask(soft, rng);
                if ((soft_mask & region).none())
                    break;
            }
            mask ^= soft_mask;
        }

        const EntryDecode result = erasure_mode
            ? scheme_.decodeWithPinErasure(stored ^ mask, fault.index)
            : scheme_.decode(stored ^ mask);
        ++counts.trials;
        if (result.status == EntryDecode::Status::due)
            ++counts.due;
        else if (result.data == data)
            ++counts.dce;
        else
            ++counts.sdc;
    }
    return counts;
}

DegradationCounts
DegradationEvaluator::run(PermanentFaultKind kind, bool add_soft,
                          ErrorPattern soft, std::uint64_t trials,
                          bool erasure_mode)
{
    // Fixed-size chunks, one derived stream per chunk: the experiment
    // parameters key the high stream bits (with bit 63 tagging the
    // degradation family, disjoint from the soft-error campaign
    // streams), the chunk index keys the low bits, so results are
    // bit-identical for any thread count.
    constexpr std::uint64_t kChunk = 1 << 12;
    const std::uint64_t experiment = (1ull << 63) |
        (static_cast<std::uint64_t>(kind) << 40) |
        (static_cast<std::uint64_t>(add_soft) << 42) |
        (static_cast<std::uint64_t>(soft) << 43) |
        (static_cast<std::uint64_t>(erasure_mode) << 47);

    std::vector<std::pair<std::uint64_t, std::uint64_t>> chunks;
    for (std::uint64_t b = 0; b < trials; b += kChunk) {
        chunks.emplace_back(chunks.size(),
                            std::min(trials - b, kChunk));
    }

    std::vector<DegradationCounts> partial(chunks.size());
    auto body = [&](std::uint64_t i) {
        const auto& [index, count] = chunks[i];
        partial[i] =
            runChunk(kind, add_soft, soft, erasure_mode, count,
                     Rng::forStream(seed_, experiment | index));
    };
    if (threads_ == 1) {
        for (std::uint64_t i = 0; i < chunks.size(); ++i)
            body(i);
    } else {
        ThreadPool(threads_).parallelFor(chunks.size(), body);
    }

    DegradationCounts counts;
    for (const DegradationCounts& p : partial)
        counts.merge(p);
    // Degraded runs are sampled, never exhaustive.
    counts.exhaustive = false;
    return counts;
}

DegradationCounts
DegradationEvaluator::faultAlone(PermanentFaultKind kind,
                                 std::uint64_t trials)
{
    return run(kind, false, ErrorPattern::oneBit, trials);
}

DegradationCounts
DegradationEvaluator::faultPlusSoftError(PermanentFaultKind kind,
                                         ErrorPattern soft,
                                         std::uint64_t trials)
{
    return run(kind, true, soft, trials);
}

DegradationCounts
DegradationEvaluator::pinErasureMode(bool add_soft, ErrorPattern soft,
                                     std::uint64_t trials)
{
    return run(PermanentFaultKind::stuckPin, add_soft, soft, trials,
               true);
}

} // namespace gpuecc
