#include "faultsim/permanent.hpp"

#include "common/log.hpp"
#include "interleave/swizzle.hpp"

namespace gpuecc {

Bits288
PermanentFault::maskFor(const Bits288& stored) const
{
    Bits288 mask;
    auto force = [&](int phys) {
        if (stored.get(phys) != level)
            mask.set(phys, 1);
    };
    switch (kind) {
      case PermanentFaultKind::stuckPin:
        require(index >= 0 && index < layout::num_pins,
                "PermanentFault: pin index out of range");
        for (int beat = 0; beat < layout::num_beats; ++beat)
            force(layout::physicalIndex(beat, index));
        break;
      case PermanentFaultKind::stuckByte:
        require(index >= 0 && index < layout::num_bytes,
                "PermanentFault: byte index out of range");
        for (int t = 0; t < 8; ++t)
            force(8 * index + t);
        break;
    }
    return mask;
}

Bits288
PermanentFault::regionMask() const
{
    Bits288 region;
    switch (kind) {
      case PermanentFaultKind::stuckPin:
        for (int beat = 0; beat < layout::num_beats; ++beat)
            region.set(layout::physicalIndex(beat, index), 1);
        break;
      case PermanentFaultKind::stuckByte:
        for (int t = 0; t < 8; ++t)
            region.set(8 * index + t, 1);
        break;
    }
    return region;
}

DegradationEvaluator::DegradationEvaluator(const EntryScheme& scheme,
                                           std::uint64_t seed)
    : scheme_(scheme), rng_(seed)
{
}

DegradationCounts
DegradationEvaluator::run(PermanentFaultKind kind, bool add_soft,
                          ErrorPattern soft, std::uint64_t trials,
                          bool erasure_mode)
{
    DegradationCounts counts;
    const int region_count = kind == PermanentFaultKind::stuckPin
        ? layout::num_pins
        : layout::num_bytes;

    for (std::uint64_t trial = 0; trial < trials; ++trial) {
        const EntryData data{rng_.next64(), rng_.next64(),
                             rng_.next64(), rng_.next64()};
        const Bits288 stored = scheme_.encode(data);

        PermanentFault fault{
            kind, static_cast<int>(rng_.nextBounded(region_count)),
            static_cast<int>(rng_.nextBounded(2))};
        Bits288 mask = fault.maskFor(stored);

        if (add_soft) {
            // Draw a soft error that does not touch the stuck region
            // (flips inside it are absorbed by the stuck level).
            Bits288 soft_mask;
            const Bits288 region = fault.regionMask();
            for (;;) {
                soft_mask = sampleErrorMask(soft, rng_);
                if ((soft_mask & region).none())
                    break;
            }
            mask ^= soft_mask;
        }

        const EntryDecode result = erasure_mode
            ? scheme_.decodeWithPinErasure(stored ^ mask, fault.index)
            : scheme_.decode(stored ^ mask);
        ++counts.trials;
        if (result.status == EntryDecode::Status::due)
            ++counts.due;
        else if (result.data == data)
            ++counts.dce;
        else
            ++counts.sdc;
    }
    return counts;
}

DegradationCounts
DegradationEvaluator::faultAlone(PermanentFaultKind kind,
                                 std::uint64_t trials)
{
    return run(kind, false, ErrorPattern::oneBit, trials);
}

DegradationCounts
DegradationEvaluator::faultPlusSoftError(PermanentFaultKind kind,
                                         ErrorPattern soft,
                                         std::uint64_t trials)
{
    return run(kind, true, soft, trials);
}

DegradationCounts
DegradationEvaluator::pinErasureMode(bool add_soft, ErrorPattern soft,
                                     std::uint64_t trials)
{
    return run(PermanentFaultKind::stuckPin, add_soft, soft, trials,
               true);
}

} // namespace gpuecc
