#include "faultsim/shard.hpp"

#include "common/log.hpp"
#include "common/rng.hpp"

namespace gpuecc {

namespace {

/**
 * Stream id of a sampled stream block: pattern in the high half,
 * block index in the low half. Bit 63 is left clear — other
 * deterministic consumers (the degradation evaluator) tag their
 * streams there so the families never collide under one campaign
 * seed. Keying streams to fixed-size blocks rather than to shards is
 * what makes tallies independent of the shard chunk size.
 */
std::uint64_t
blockStream(ErrorPattern p, std::uint64_t block_index)
{
    require(block_index < (1ull << 32),
            "planShards: block index overflows the stream id space");
    return (static_cast<std::uint64_t>(p) << 32) | block_index;
}

} // namespace

std::vector<Shard>
planShards(ErrorPattern p, std::uint64_t samples, std::uint64_t chunk)
{
    require(chunk > 0, "planShards: chunk must be positive");
    std::vector<Shard> shards;
    if (patternIsEnumerable(p)) {
        const std::uint64_t outer = enumerationOuterSize(p);
        for (std::uint64_t b = 0; b < outer; b += kShardOuterSlots) {
            shards.push_back(
                {p, b, std::min(outer, b + kShardOuterSlots), 0});
        }
        return shards;
    }
    // Round the chunk up to a stream-block multiple so every shard
    // boundary is block-aligned (the last shard may end mid-block).
    chunk = ((chunk + kStreamBlockSamples - 1) / kStreamBlockSamples)
            * kStreamBlockSamples;
    for (std::uint64_t b = 0; b < samples; b += chunk) {
        shards.push_back({p, b, std::min(samples, b + chunk),
                          blockStream(p, b / kStreamBlockSamples)});
    }
    return shards;
}

std::uint64_t
effectiveShardChunk(std::uint64_t samples, std::uint64_t chunk,
                    int workers)
{
    require(chunk > 0, "effectiveShardChunk: chunk must be positive");
    require(workers > 0,
            "effectiveShardChunk: workers must be positive");
    chunk = ((chunk + kStreamBlockSamples - 1) / kStreamBlockSamples)
            * kStreamBlockSamples;
    if (workers <= 1)
        return chunk;
    // Largest block-aligned chunk that still yields >= workers
    // shards; zero means the budget is under one block per worker,
    // where the requested chunk stands (nothing useful to split).
    const std::uint64_t per_worker_blocks =
        samples /
        (static_cast<std::uint64_t>(workers) * kStreamBlockSamples);
    if (per_worker_blocks == 0)
        return chunk;
    return std::min(chunk, per_worker_blocks * kStreamBlockSamples);
}

GoldenEntry
makeGolden(const EntryScheme& scheme, std::uint64_t seed)
{
    // Linearity of every considered code makes outcome classification
    // independent of the protected data (verified by property tests),
    // so one random golden entry per scheme suffices.
    Rng rng(seed);
    GoldenEntry g;
    g.data = {rng.next64(), rng.next64(), rng.next64(), rng.next64()};
    g.entry = scheme.encode(g.data);
    return g;
}

OutcomeCounts
evaluateShard(const EntryScheme& scheme, const GoldenEntry& golden,
              std::uint64_t seed, const Shard& shard)
{
    OutcomeCounts counts;
    auto inject = [&](const Bits288& mask) {
        const Bits288 received = golden.entry ^ mask;
        const EntryDecode result = scheme.decode(received);
        ++counts.trials;
        if (result.status == EntryDecode::Status::due) {
            ++counts.due;
        } else if (result.data == golden.data) {
            ++counts.dce;
        } else {
            ++counts.sdc;
        }
    };

    if (patternIsEnumerable(shard.pattern)) {
        counts.exhaustive = true;
        forEachErrorMaskInRange(shard.pattern, shard.begin, shard.end,
                                inject);
    } else {
        require(shard.begin % kStreamBlockSamples == 0,
                "evaluateShard: shard must start on a stream block");
        for (std::uint64_t b = shard.begin; b < shard.end;
             b += kStreamBlockSamples) {
            Rng rng = Rng::forStream(
                seed,
                blockStream(shard.pattern, b / kStreamBlockSamples));
            const std::uint64_t stop =
                std::min(shard.end, b + kStreamBlockSamples);
            for (std::uint64_t i = b; i < stop; ++i)
                inject(sampleErrorMask(shard.pattern, rng));
        }
    }
    return counts;
}

OutcomeCounts
evaluateShardBatched(const EntryScheme& scheme,
                     const GoldenEntry& golden, std::uint64_t seed,
                     const Shard& shard, ShardBatchArena& arena)
{
    OutcomeCounts counts;
    std::size_t filled = 0;

    // Drain the staged masks through the remaining pipeline stages:
    // inject (word-wise XOR into the golden entry), one batch decode,
    // then the tally sweep. Masks are tallied in draw order, but the
    // counts are order-free anyway.
    auto flush = [&] {
        if (filled == 0)
            return;
        for (std::size_t i = 0; i < filled; ++i)
            arena.received[i] = golden.entry ^ arena.masks[i];
        scheme.decodeBatch(arena.received.data(),
                           arena.decodes.data(), filled);
        for (std::size_t i = 0; i < filled; ++i) {
            const EntryDecode& result = arena.decodes[i];
            ++counts.trials;
            if (result.status == EntryDecode::Status::due) {
                ++counts.due;
            } else if (result.data == golden.data) {
                ++counts.dce;
            } else {
                ++counts.sdc;
            }
        }
        filled = 0;
    };
    auto stage = [&](const Bits288& mask) {
        arena.masks[filled++] = mask;
        if (filled == kShardBatchEntries)
            flush();
    };

    if (patternIsEnumerable(shard.pattern)) {
        counts.exhaustive = true;
        forEachErrorMaskInRange(shard.pattern, shard.begin, shard.end,
                                stage);
    } else {
        require(shard.begin % kStreamBlockSamples == 0,
                "evaluateShardBatched: shard must start on a stream "
                "block");
        // A shard's blocks have consecutive stream ids (pattern tag
        // in the high half, block index in the low), so the whole
        // shard's generators derive in one bulk call that shares the
        // seed expansion. Each generator is then consumed in sample
        // order, exactly as the scalar path consumes its per-block
        // forStream generator.
        const std::uint64_t num_blocks =
            (shard.end - shard.begin + kStreamBlockSamples - 1) /
            kStreamBlockSamples;
        if (arena.block_rngs.size() < num_blocks)
            arena.block_rngs.resize(num_blocks);
        Rng::forStreams(seed, shard.stream, num_blocks,
                        arena.block_rngs.data());
        for (std::uint64_t blk = 0; blk < num_blocks; ++blk) {
            Rng& rng = arena.block_rngs[blk];
            const std::uint64_t b =
                shard.begin + blk * kStreamBlockSamples;
            const std::uint64_t stop =
                std::min(shard.end, b + kStreamBlockSamples);
            for (std::uint64_t i = b; i < stop; ++i)
                stage(sampleErrorMask(shard.pattern, rng));
        }
    }
    flush();
    return counts;
}

} // namespace gpuecc
