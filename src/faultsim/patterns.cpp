#include "faultsim/patterns.hpp"

#include "common/bitops.hpp"
#include "common/log.hpp"
#include "interleave/swizzle.hpp"

namespace gpuecc {

const std::array<ErrorPattern, numErrorPatterns>&
allErrorPatterns()
{
    static const std::array<ErrorPattern, numErrorPatterns> all = {
        ErrorPattern::oneBit,    ErrorPattern::onePin,
        ErrorPattern::oneByte,   ErrorPattern::twoBits,
        ErrorPattern::threeBits, ErrorPattern::oneBeat,
        ErrorPattern::wholeEntry,
    };
    return all;
}

const std::array<PatternInfo, numErrorPatterns>&
patternTable()
{
    // Table 1: Soft Error Pattern Probabilities.
    static const std::array<PatternInfo, numErrorPatterns> table = {{
        {ErrorPattern::oneBit, "1 Bit", "1", 0.7398},
        {ErrorPattern::onePin, "1 Pin", "2-4", 0.0019},
        {ErrorPattern::oneByte, "1 Byte", "2-8", 0.2256},
        {ErrorPattern::twoBits, "2 Bits", "2", 0.0011},
        {ErrorPattern::threeBits, "3 Bits", "3", 0.0003},
        {ErrorPattern::oneBeat, "1 Beat", "4-64", 0.0090},
        {ErrorPattern::wholeEntry, "1 Entry", "4-256", 0.0223},
    }};
    return table;
}

const PatternInfo&
patternInfo(ErrorPattern p)
{
    for (const PatternInfo& info : patternTable()) {
        if (info.pattern == p)
            return info;
    }
    panic("patternInfo: unknown pattern");
}

ErrorPattern
classifyErrorMask(const Bits288& mask)
{
    const int bits = mask.popcount();
    require(bits > 0, "classifyErrorMask: empty mask");
    if (bits == 1)
        return ErrorPattern::oneBit;

    bool same_pin = true;
    bool same_byte = true;
    bool same_beat = true;
    int first = -1;
    mask.forEachSetBit([&](int phys) {
        if (first < 0) {
            first = phys;
            return;
        }
        if (layout::pinOf(phys) != layout::pinOf(first))
            same_pin = false;
        if (layout::byteOf(phys) != layout::byteOf(first))
            same_byte = false;
        if (layout::beatOf(phys) != layout::beatOf(first))
            same_beat = false;
    });

    // Priority order per Table 1: easier shapes win.
    if (same_pin)
        return ErrorPattern::onePin;
    if (same_byte)
        return ErrorPattern::oneByte;
    if (bits == 2)
        return ErrorPattern::twoBits;
    if (bits == 3)
        return ErrorPattern::threeBits;
    if (same_beat)
        return ErrorPattern::oneBeat;
    return ErrorPattern::wholeEntry;
}

namespace {

/** Random corruption of a contiguous region, conditioned on shape. */
Bits288
sampleRegion(ErrorPattern target, int region_lo, int region_bits,
             Rng& rng)
{
    for (;;) {
        Bits288 mask;
        for (int i = 0; i < region_bits; ++i) {
            if (rng.nextBool(0.5))
                mask.set(region_lo + i, 1);
        }
        if (!mask.none() && classifyErrorMask(mask) == target)
            return mask;
    }
}

/** Random corruption of one pin (its 4 per-beat bits). */
Bits288
samplePin(Rng& rng)
{
    const int pin = static_cast<int>(rng.nextBounded(layout::num_pins));
    for (;;) {
        Bits288 mask;
        for (int beat = 0; beat < layout::num_beats; ++beat) {
            if (rng.nextBool(0.5))
                mask.set(layout::physicalIndex(beat, pin), 1);
        }
        if (mask.popcount() >= 2)
            return mask;
    }
}

} // namespace

Bits288
sampleErrorMask(ErrorPattern p, Rng& rng)
{
    switch (p) {
      case ErrorPattern::oneBit: {
        Bits288 mask;
        mask.set(static_cast<int>(rng.nextBounded(layout::entry_bits)), 1);
        return mask;
      }
      case ErrorPattern::onePin:
        return samplePin(rng);
      case ErrorPattern::oneByte: {
        const int byte =
            static_cast<int>(rng.nextBounded(layout::num_bytes));
        return sampleRegion(ErrorPattern::oneByte, 8 * byte, 8, rng);
      }
      case ErrorPattern::twoBits:
      case ErrorPattern::threeBits: {
        const int want = p == ErrorPattern::twoBits ? 2 : 3;
        for (;;) {
            Bits288 mask;
            while (mask.popcount() < want) {
                mask.set(static_cast<int>(
                             rng.nextBounded(layout::entry_bits)),
                         1);
            }
            if (classifyErrorMask(mask) == p)
                return mask;
        }
      }
      case ErrorPattern::oneBeat: {
        const int beat =
            static_cast<int>(rng.nextBounded(layout::num_beats));
        return sampleRegion(ErrorPattern::oneBeat,
                            layout::beat_bits * beat, layout::beat_bits,
                            rng);
      }
      case ErrorPattern::wholeEntry:
        return sampleRegion(ErrorPattern::wholeEntry, 0,
                            layout::entry_bits, rng);
    }
    panic("sampleErrorMask: unknown pattern");
}

bool
patternIsEnumerable(ErrorPattern p)
{
    return p != ErrorPattern::oneBeat && p != ErrorPattern::wholeEntry;
}

std::uint64_t
enumerationOuterSize(ErrorPattern p)
{
    switch (p) {
      case ErrorPattern::oneBit:
        return layout::entry_bits;
      case ErrorPattern::onePin:
        return layout::num_pins;
      case ErrorPattern::oneByte:
        return layout::num_bytes;
      case ErrorPattern::twoBits:
      case ErrorPattern::threeBits:
        // Sharded by the first (lowest) erroneous bit position.
        return layout::entry_bits;
      default:
        fatal("enumerationOuterSize: pattern is not enumerable");
    }
}

std::uint64_t
forEachErrorMaskInRange(ErrorPattern p, std::uint64_t begin,
                        std::uint64_t end,
                        const std::function<void(const Bits288&)>& fn)
{
    require(begin <= end && end <= enumerationOuterSize(p),
            "forEachErrorMaskInRange: bad outer slot range");
    const int lo = static_cast<int>(begin);
    const int hi = static_cast<int>(end);
    std::uint64_t count = 0;
    switch (p) {
      case ErrorPattern::oneBit: {
        for (int i = lo; i < hi; ++i) {
            Bits288 mask;
            mask.set(i, 1);
            fn(mask);
            ++count;
        }
        return count;
      }
      case ErrorPattern::onePin: {
        for (int pin = lo; pin < hi; ++pin) {
            for (unsigned m = 1; m < 16; ++m) {
                if (popcount64(m) < 2)
                    continue;
                Bits288 mask;
                for (int beat = 0; beat < layout::num_beats; ++beat) {
                    if ((m >> beat) & 1)
                        mask.set(layout::physicalIndex(beat, pin), 1);
                }
                fn(mask);
                ++count;
            }
        }
        return count;
      }
      case ErrorPattern::oneByte: {
        for (int byte = lo; byte < hi; ++byte) {
            for (unsigned m = 1; m < 256; ++m) {
                if (popcount64(m) < 2)
                    continue;
                Bits288 mask;
                for (int t = 0; t < 8; ++t) {
                    if ((m >> t) & 1)
                        mask.set(8 * byte + t, 1);
                }
                fn(mask);
                ++count;
            }
        }
        return count;
      }
      case ErrorPattern::twoBits: {
        for (int a = lo; a < hi; ++a) {
            for (int b = a + 1; b < layout::entry_bits; ++b) {
                Bits288 mask;
                mask.set(a, 1);
                mask.set(b, 1);
                if (classifyErrorMask(mask) != ErrorPattern::twoBits)
                    continue;
                fn(mask);
                ++count;
            }
        }
        return count;
      }
      case ErrorPattern::threeBits: {
        for (int a = lo; a < hi; ++a) {
            for (int b = a + 1; b < layout::entry_bits; ++b) {
                for (int c = b + 1; c < layout::entry_bits; ++c) {
                    Bits288 mask;
                    mask.set(a, 1);
                    mask.set(b, 1);
                    mask.set(c, 1);
                    if (classifyErrorMask(mask) !=
                        ErrorPattern::threeBits) {
                        continue;
                    }
                    fn(mask);
                    ++count;
                }
            }
        }
        return count;
      }
      default:
        fatal("forEachErrorMaskInRange: pattern is not enumerable");
    }
}

std::uint64_t
forEachErrorMask(ErrorPattern p,
                 const std::function<void(const Bits288&)>& fn)
{
    return forEachErrorMaskInRange(p, 0, enumerationOuterSize(p), fn);
}

} // namespace gpuecc
