#include "faultsim/weighted.hpp"

#include "common/log.hpp"

namespace gpuecc {

WeightedOutcome
weightedOutcome(const std::map<ErrorPattern, OutcomeCounts>& per_pattern)
{
    WeightedOutcome out{0.0, 0.0, 0.0};
    for (const PatternInfo& info : patternTable()) {
        const auto it = per_pattern.find(info.pattern);
        require(it != per_pattern.end(),
                "weightedOutcome: missing pattern " + info.label);
        const OutcomeCounts& counts = it->second;
        out.correct += info.probability * counts.dceRate();
        out.detect += info.probability * counts.dueRate();
        out.sdc += info.probability * counts.sdcRate();
    }
    return out;
}

} // namespace gpuecc
