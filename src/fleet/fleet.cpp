#include "fleet/fleet.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/subprocess.hpp"
#include "fleet/dispatch.hpp"
#include "fleet/pipe.hpp"

namespace gpuecc::sim::fleet {

Result<CampaignResult>
runFleetCampaign(const CampaignSpec& spec)
{
    if (!subprocessSupported()) {
        return Status::unavailable(
            "fleet mode needs fork/pipe, which this platform lacks; "
            "run without --fleet-workers");
    }

    Result<std::unique_ptr<FleetDispatch>> created =
        FleetDispatch::create(spec);
    if (!created.ok())
        return created.status();
    FleetDispatch& dispatch = *created.value();

    // ---- Fork phase -------------------------------------------------
    // Plan building ran on one thread; the workers must be forked
    // before the progress reporter or any liaison thread exists, or a
    // child could inherit a lock some other thread holds.
    ignoreSigpipe();
    const std::uint64_t pending = dispatch.initialPendingUnits();
    const int worker_count =
        pending == 0 ? 0
                     : static_cast<int>(std::min<std::uint64_t>(
                           static_cast<std::uint64_t>(
                               spec.fleet_workers),
                           pending));
    std::vector<std::unique_ptr<PipeWorker>> workers;
    std::vector<int> inherited_fds;
    for (int w = 0; w < worker_count; ++w) {
        auto worker = std::make_unique<PipeWorker>();
        spawnPipeWorker(dispatch, *worker, w, inherited_fds);
        workers.push_back(std::move(worker));
    }

    // Threads are safe from here on.
    dispatch.start();

    // The in-flight deadline covers the whole unit round-trip —
    // 0 disables it, because unit evaluation time is spec-dependent.
    const int deadline_ms =
        spec.fleet_worker_timeout_s > 0
            ? static_cast<int>(spec.fleet_worker_timeout_s * 1000.0)
            : -1;

    for (auto& worker : workers) {
        if (worker->spawned)
            worker->thread = std::thread(runPipeLiaison,
                                         std::ref(dispatch),
                                         std::ref(*worker), deadline_ms);
    }
    for (auto& worker : workers) {
        if (worker->thread.joinable())
            worker->thread.join();
    }

    // Reap surviving workers (lost ones were reaped at retirement).
    for (auto& worker : workers)
        reapPipeWorker(*worker);

    // All-workers-lost fallback: the campaign still completes, just
    // in-process. Skipped on interrupt — the user asked us to stop.
    dispatch.finishInProcess();

    std::vector<obs::FleetWorkerRecord> records;
    for (const auto& worker : workers)
        records.push_back(worker->record);
    return dispatch.finalize(worker_count, std::move(records));
}

} // namespace gpuecc::sim::fleet
