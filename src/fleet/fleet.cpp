#include "fleet/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "common/codec_mode.hpp"
#include "common/interrupt.hpp"
#include "common/log.hpp"
#include "common/mpmc_queue.hpp"
#include "common/subprocess.hpp"
#include "ecc/registry.hpp"
#include "faultsim/shard.hpp"
#include "fleet/protocol.hpp"
#include "fleet/worker.hpp"
#include "obs/trace.hpp"
#include "sim/chaos.hpp"
#include "sim/checkpoint.hpp"

namespace gpuecc::sim::fleet {

namespace {

/** One plan entry: a shard of one (scheme, pattern) cell. */
struct Task
{
    std::size_t cell;
    Shard shard;
};

/** Ids of the fleet.* metrics, registered once per process. */
struct FleetMetricIds
{
    obs::MetricId units_completed;
    obs::MetricId units_requeued;
    obs::MetricId workers_lost;
    obs::MetricId shards_completed;
    obs::MetricId trials;
    obs::MetricId checkpoint_flushes;
    obs::MetricId checkpoint_failures;
    obs::MetricId schemes_dropped;
    /** High-water queue depth (gauges merge by maximum). */
    obs::MetricId queue_depth;
};

const FleetMetricIds&
fleetMetricIds()
{
    // Register before the liaison threads exist — the same
    // register-before-spawn contract the campaign metrics follow.
    static const FleetMetricIds ids = [] {
        obs::MetricsRegistry& m = obs::metrics();
        FleetMetricIds out;
        out.units_completed = m.counter("fleet.units_completed");
        out.units_requeued = m.counter("fleet.units_requeued");
        out.workers_lost = m.counter("fleet.workers_lost");
        out.shards_completed = m.counter("fleet.shards_completed");
        out.trials = m.counter("fleet.trials");
        out.checkpoint_flushes = m.counter("fleet.checkpoint_flushes");
        out.checkpoint_failures =
            m.counter("fleet.checkpoint_failures");
        out.schemes_dropped = m.counter("fleet.schemes_dropped");
        out.queue_depth = m.gauge("fleet.queue_depth");
        return out;
    }();
    return ids;
}

/** Per-scheme aggregates; guarded by the dispatcher's state mutex. */
struct SchemeAgg
{
    std::uint64_t busy_us = 0;
    std::uint64_t trials = 0;
    std::uint64_t shards = 0;
    std::uint64_t first_us = ~std::uint64_t{0};
    std::uint64_t last_us = 0;
    std::uint64_t pending_units = 0;
};

std::uint64_t
microsSince(std::chrono::steady_clock::time_point origin,
            std::chrono::steady_clock::time_point at)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            at - origin)
            .count());
}

/** One worker process plus its parent-side liaison state. */
struct Liaison
{
    ChildProcess child;
    std::unique_ptr<LineReader> reader;
    /** Per-liaison tally accumulators, one per campaign cell —
        merged into the result after the liaison threads join, the
        same two-level merge the thread pool's worker arenas use. */
    std::vector<OutcomeCounts> cells;
    obs::FleetWorkerRecord record;
    bool spawned = false;
    std::thread thread;
};

} // namespace

Result<CampaignResult>
runFleetCampaign(const CampaignSpec& spec)
{
    if (!subprocessSupported()) {
        return Status::unavailable(
            "fleet mode needs fork/pipe, which this platform lacks; "
            "run without --fleet-workers");
    }

    const FleetMetricIds& mid = fleetMetricIds();
    obs::MetricsRegistry& reg = obs::metrics();
    reg.flushThisThread();
    const obs::MetricsSnapshot metrics_baseline = reg.snapshot();
    obs::TraceSpan campaign_span("fleet-campaign", "campaign");

    CampaignResult result;
    result.spec = spec;
    // Evaluation happens in single-threaded worker processes; the
    // parent runs no pool. Resolve threads to the truthful value so
    // reports don't claim pool parallelism that never existed.
    result.spec.threads = 1;
    result.codec_backend = codecBackendName();

    const std::vector<ErrorPattern> patterns = spec.resolvedPatterns();

    // Resolve schemes in the parent: validates ids before any fork,
    // and provides the evaluation path for the all-workers-lost
    // fallback. A scheme that fails to resolve is skipped, recorded.
    std::vector<std::string> ids;
    std::vector<std::shared_ptr<EntryScheme>> schemes;
    std::vector<GoldenEntry> goldens;
    for (const std::string& id : spec.scheme_ids) {
        obs::TraceSpan span("codec:" + id, "codec");
        Result<std::shared_ptr<EntryScheme>> scheme = findScheme(id);
        if (!scheme.ok()) {
            warn("fleet: skipping scheme " + id + ": " +
                 scheme.status().toString());
            result.errors.push_back({id, scheme.status().toString()});
            continue;
        }
        schemes.push_back(scheme.value());
        goldens.push_back(makeGolden(*schemes.back(), spec.seed));
        ids.push_back(id);
    }
    if (schemes.empty()) {
        return Status::notFound(
            "no scheme in the spec could be constructed");
    }
    for (const std::string& id : ids) {
        for (ErrorPattern p : patterns)
            result.cells.push_back({id, p, OutcomeCounts{}});
    }

    // Size shards so every worker can hold whole units: at least
    // workers * unit_shards shards per sampled pattern when the
    // sample budget allows. Tallies are chunk-invariant (draws are
    // keyed per stream block), so this only changes dispatch
    // granularity, never the merged counts.
    const std::uint64_t slots = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(spec.fleet_workers) *
            spec.fleet_unit_shards,
        std::uint64_t{1} << 20);
    const std::uint64_t effective_chunk = effectiveShardChunk(
        spec.samples, spec.chunk, static_cast<int>(slots));

    std::vector<Task> tasks;
    {
        obs::TraceSpan span("plan", "campaign");
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            for (std::size_t p = 0; p < patterns.size(); ++p) {
                const std::size_t cell = s * patterns.size() + p;
                for (const Shard& shard : planShards(
                         patterns[p], spec.samples, effective_chunk))
                    tasks.push_back({cell, shard});
            }
        }
    }
    result.shards = tasks.size();

    // The fingerprint is always needed in fleet mode — it is the
    // config line's plan-identity proof, checkpointing or not.
    const std::string fingerprint = campaignFingerprint(
        ids, patterns, spec.samples, spec.seed, effective_chunk,
        result.codec_backend, tasks.size());
    const bool checkpointing = !spec.checkpoint_path.empty();
    if (checkpointing)
        installInterruptHandlers();

    // Work units: contiguous task runs that never straddle a cell
    // boundary, so one unit failing persistently fails exactly one
    // (scheme, pattern) cell.
    std::vector<WorkUnit> units;
    for (std::uint64_t i = 0; i < tasks.size();) {
        WorkUnit u;
        u.unit = units.size();
        u.cell = tasks[i].cell;
        u.first_task = i;
        while (i < tasks.size() && tasks[i].cell == u.cell &&
               u.task_count < spec.fleet_unit_shards) {
            ++i;
            ++u.task_count;
        }
        units.push_back(u);
    }

    // Entry validation shared by resume restore and worker results:
    // both feed the same checkpoint format through the same widths.
    const auto validateEntry = [&](const CheckpointEntry& entry,
                                   const std::string& source) -> Status {
        if (entry.task >= tasks.size()) {
            return Status::dataLoss(
                source + ": task index " + std::to_string(entry.task) +
                " is outside the plan");
        }
        const Shard& shard = tasks[entry.task].shard;
        const bool enumerable = patternIsEnumerable(shard.pattern);
        if (entry.counts.exhaustive != enumerable ||
            (!enumerable &&
             entry.counts.trials != shard.end - shard.begin)) {
            return Status::dataLoss(
                source + ": task " + std::to_string(entry.task) +
                " tallies don't match its shard");
        }
        return {};
    };

    std::vector<OutcomeCounts> partial(
        checkpointing ? tasks.size() : 0);
    std::vector<char> task_done(tasks.size(), 0);
    std::vector<char> unit_done(units.size(), 0);

    std::mutex state_mutex; // collector, cell_errors, scheme aggs
    std::vector<std::uint64_t> completed_log; // for checkpoints
    std::uint64_t fresh_completed = 0;
    auto last_flush = std::chrono::steady_clock::now();
    bool warned_checkpoint_failure = false;

    // Resume at unit granularity: a unit all of whose tasks are in
    // the checkpoint is settled (merged, never dispatched); a
    // partially covered unit — possible when resuming a checkpoint an
    // in-process run wrote — is re-dispatched whole, dropping the
    // partial entries (re-evaluation is bit-identical by design).
    if (checkpointing && spec.resume) {
        obs::TraceSpan span("resume-load", "campaign");
        Result<CampaignCheckpoint> loaded =
            loadCheckpoint(spec.checkpoint_path);
        if (loaded.status().code() == ErrorCode::notFound) {
            inform("fleet: no checkpoint at " + spec.checkpoint_path +
                   "; starting fresh");
        } else if (!loaded.ok()) {
            return loaded.status();
        } else {
            const CampaignCheckpoint& ckpt = loaded.value();
            if (ckpt.fingerprint != fingerprint) {
                return Status::failedPrecondition(
                    "checkpoint " + spec.checkpoint_path +
                    " was written by a different campaign\n  theirs: " +
                    ckpt.fingerprint + "\n  ours:   " + fingerprint);
            }
            std::vector<OutcomeCounts> restored(tasks.size());
            std::vector<char> has(tasks.size(), 0);
            for (const CheckpointEntry& entry : ckpt.done) {
                if (Status s = validateEntry(
                        entry, "checkpoint " + spec.checkpoint_path);
                    !s.ok())
                    return s;
                restored[entry.task] = entry.counts;
                has[entry.task] = 1;
            }
            std::uint64_t dropped = 0;
            for (const WorkUnit& u : units) {
                bool whole = true;
                for (std::uint64_t i = u.first_task;
                     i < u.first_task + u.task_count; ++i)
                    whole = whole && has[i] != 0;
                if (!whole) {
                    for (std::uint64_t i = u.first_task;
                         i < u.first_task + u.task_count; ++i)
                        dropped += has[i] != 0;
                    continue;
                }
                unit_done[u.unit] = 1;
                for (std::uint64_t i = u.first_task;
                     i < u.first_task + u.task_count; ++i) {
                    task_done[i] = 1;
                    if (checkpointing)
                        partial[i] = restored[i];
                    completed_log.push_back(i);
                    result.cells[tasks[i].cell].counts.merge(
                        restored[i]);
                    ++result.resumed_shards;
                }
            }
            inform("fleet: resumed " +
                   std::to_string(result.resumed_shards) + " of " +
                   std::to_string(tasks.size()) + " shard tasks from " +
                   spec.checkpoint_path);
            if (dropped > 0) {
                inform("fleet: re-evaluating " +
                       std::to_string(dropped) +
                       " checkpointed tasks from partially covered "
                       "work units");
            }
        }
    }

    // Queue every pending unit. Capacity covers the whole plan, so a
    // re-queue after a worker death can never fail for space.
    MpmcQueue<std::uint64_t> queue(std::max<std::size_t>(
        units.size(), 1));
    std::uint64_t pending_units = 0;
    for (const WorkUnit& u : units) {
        if (unit_done[u.unit] != 0)
            continue;
        require(queue.tryPush(u.unit), "fleet: queue sized too small");
        ++pending_units;
    }
    std::atomic<std::uint64_t> remaining{pending_units};

    std::vector<SchemeAgg> scheme_aggs(schemes.size());
    obs::ProgressTotals totals;
    totals.schemes = schemes.size();
    for (const WorkUnit& u : units) {
        if (unit_done[u.unit] != 0)
            continue;
        scheme_aggs[u.cell / patterns.size()].pending_units += 1;
        totals.shards += u.task_count;
    }

    std::unique_ptr<std::atomic<bool>[]> cell_failed(
        new std::atomic<bool>[result.cells.size()]);
    for (std::size_t i = 0; i < result.cells.size(); ++i)
        cell_failed[i].store(false, std::memory_order_relaxed);
    std::vector<std::pair<std::size_t, std::string>> cell_errors;

    std::vector<std::pair<std::string, std::string>> ckpt_manifest;
    if (checkpointing) {
        const obs::BuildInfo build = obs::buildInfo();
        ckpt_manifest = {
            {"threads", std::to_string(result.spec.threads)},
            {"fleet_workers", std::to_string(spec.fleet_workers)},
            {"codec_backend", result.codec_backend},
            {"build_type", build.build_type},
            {"compiler", build.compiler},
            {"platform", build.platform},
            {"chaos", obs::chaosEnvText()},
        };
    }

    // Serialize completed tallies; call with state_mutex held.
    auto flushCheckpoint = [&]() -> Status {
        obs::TraceSpan span("checkpoint-flush", "checkpoint");
        CampaignCheckpoint ckpt;
        ckpt.fingerprint = fingerprint;
        ckpt.manifest = ckpt_manifest;
        std::vector<std::uint64_t> indices = completed_log;
        std::sort(indices.begin(), indices.end());
        ckpt.done.reserve(indices.size());
        for (std::uint64_t i : indices)
            ckpt.done.push_back({i, partial[i]});
        span.arg("tasks", indices.size());
        Status s = saveCheckpoint(spec.checkpoint_path, ckpt);
        reg.add(s.ok() ? mid.checkpoint_flushes
                       : mid.checkpoint_failures);
        return s;
    };
    const auto interval = std::chrono::duration<double>(
        std::max(0.0, spec.checkpoint_interval_s));

    // ---- Fork phase -------------------------------------------------
    // Everything above ran on one thread; the workers must be forked
    // before the progress reporter or any liaison thread exists, or a
    // child could inherit a lock some other thread holds.
    ignoreSigpipe();
    const int worker_count =
        pending_units == 0
            ? 0
            : static_cast<int>(std::min<std::uint64_t>(
                  static_cast<std::uint64_t>(spec.fleet_workers),
                  pending_units));
    std::vector<std::unique_ptr<Liaison>> liaisons;
    std::vector<int> inherited_fds;
    for (int w = 0; w < worker_count && pending_units > 0; ++w) {
        auto liaison = std::make_unique<Liaison>();
        liaison->record.worker = w;
        liaison->cells.resize(result.cells.size());
        Result<ChildProcess> child = spawnChild(
            [](int read_fd, int write_fd) {
                return fleetWorkerMain(read_fd, write_fd);
            },
            inherited_fds);
        if (!child.ok()) {
            warn("fleet: cannot fork worker " + std::to_string(w) +
                 ": " + child.status().toString());
            liaison->record.lost = true;
            liaisons.push_back(std::move(liaison));
            continue;
        }
        liaison->child = child.value();
        liaison->record.pid = liaison->child.pid;
        liaison->reader = std::make_unique<LineReader>(
            liaison->child.from_child);
        liaison->spawned = true;
        inherited_fds.push_back(liaison->child.to_child);
        inherited_fds.push_back(liaison->child.from_child);

        FleetConfig config;
        config.worker = w;
        config.scheme_ids = ids;
        config.patterns = patterns;
        config.samples = spec.samples;
        config.seed = spec.seed;
        config.chunk = effective_chunk;
        config.fingerprint = fingerprint;
        config.codec_backend = result.codec_backend;
        if (Status s = writeAllFd(liaison->child.to_child,
                                  encodeConfigLine(config));
            !s.ok()) {
            warn("fleet: worker " + std::to_string(w) +
                 " rejected its config: " + s.toString());
            closeFd(liaison->child.to_child);
            killChild(liaison->child.pid);
            Result<int> exit = waitForExit(liaison->child.pid);
            liaison->record.exit_code = exit.ok() ? exit.value() : -1;
            closeFd(liaison->child.from_child);
            liaison->record.lost = true;
            liaison->spawned = false;
        }
        liaisons.push_back(std::move(liaison));
    }

    const double cpu_start =
        obs::processCpuSeconds() + obs::processChildrenCpuSeconds();
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t trace_eval_start_us = obs::traceNowUs();

    // Threads are safe from here on.
    obs::ProgressReporter progress(spec.progress, totals);
    {
        std::lock_guard<std::mutex> lock(state_mutex);
        for (const SchemeAgg& agg : scheme_aggs) {
            if (agg.pending_units == 0)
                progress.schemeDone(); // fully restored
        }
    }

    std::atomic<std::uint64_t> requeues{0};
    std::atomic<std::uint64_t> workers_lost{0};

    // Retire a worker: reclaim fds, reap the process, record how it
    // went. Called by its own liaison thread only.
    const auto retireWorker = [&](Liaison& L, const std::string& why) {
        warn("fleet: losing worker " +
             std::to_string(L.record.worker) + ": " + why);
        closeFd(L.child.to_child);
        killChild(L.child.pid);
        Result<int> exit = waitForExit(L.child.pid);
        L.record.exit_code = exit.ok() ? exit.value() : -1;
        closeFd(L.child.from_child);
        L.record.lost = true;
        workers_lost.fetch_add(1, std::memory_order_relaxed);
        reg.add(mid.workers_lost);
    };

    // Account a unit that will never produce tallies (its cell
    // already failed): progress moves on, the checkpoint simply never
    // lists its tasks.
    const auto skipUnit = [&](const WorkUnit& u) {
        std::lock_guard<std::mutex> lock(state_mutex);
        SchemeAgg& agg = scheme_aggs[u.cell / patterns.size()];
        if (--agg.pending_units == 0)
            progress.schemeDone();
        remaining.fetch_sub(1, std::memory_order_acq_rel);
    };

    const auto runLiaison = [&](Liaison& L) {
        for (;;) {
            if (interruptRequested())
                break;
            if (remaining.load(std::memory_order_acquire) == 0)
                break;
            std::uint64_t u = 0;
            if (!queue.tryPop(u)) {
                // Another liaison holds the last units in flight;
                // stay subscribed in case its worker dies and the
                // units come back.
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
                continue;
            }
            reg.setGauge(mid.queue_depth,
                         static_cast<std::int64_t>(queue.sizeApprox()));
            const WorkUnit& unit = units[u];
            if (cell_failed[unit.cell].load(
                    std::memory_order_relaxed)) {
                skipUnit(unit);
                continue;
            }

            const auto dispatch_at = std::chrono::steady_clock::now();
            Status sent =
                writeAllFd(L.child.to_child, encodeUnitLine(unit));
            Result<std::string> line =
                sent.ok() ? L.reader->readLine()
                          : Result<std::string>(sent);
            if (!line.ok()) {
                // The worker died (or the pipe broke) with this unit
                // in flight: put the unit back for a survivor, retire
                // the worker, and end this liaison.
                require(queue.tryPush(u),
                        "fleet: re-queue cannot fail by construction");
                requeues.fetch_add(1, std::memory_order_relaxed);
                reg.add(mid.units_requeued);
                retireWorker(L, "unit " + std::to_string(u) +
                                    " in flight: " +
                                    line.status().toString());
                return;
            }
            Result<WorkerMessage> decoded =
                decodeWorkerLine(line.value());
            Status valid = decoded.status();
            if (valid.ok() &&
                decoded.value().kind == WorkerMessage::Kind::result) {
                const WorkerMessage& r = decoded.value();
                if (r.unit != unit.unit ||
                    r.checkpoint.fingerprint != fingerprint ||
                    r.checkpoint.done.size() != unit.task_count) {
                    valid = Status::dataLoss(
                        "worker result doesn't match the dispatched "
                        "unit");
                }
                for (const CheckpointEntry& e : r.checkpoint.done) {
                    if (!valid.ok())
                        break;
                    if (e.task < unit.first_task ||
                        e.task >= unit.first_task + unit.task_count) {
                        valid = Status::dataLoss(
                            "worker result entry outside its unit");
                        break;
                    }
                    valid = validateEntry(
                        e, "worker " +
                               std::to_string(L.record.worker) +
                               " unit " + std::to_string(u));
                }
            }
            if (!valid.ok()) {
                // Protocol corruption is indistinguishable from a
                // compromised worker: requeue and retire.
                require(queue.tryPush(u),
                        "fleet: re-queue cannot fail by construction");
                requeues.fetch_add(1, std::memory_order_relaxed);
                reg.add(mid.units_requeued);
                retireWorker(L, valid.toString());
                return;
            }

            const WorkerMessage& msg = decoded.value();
            if (msg.kind == WorkerMessage::Kind::worker_error) {
                require(queue.tryPush(u),
                        "fleet: re-queue cannot fail by construction");
                requeues.fetch_add(1, std::memory_order_relaxed);
                reg.add(mid.units_requeued);
                retireWorker(L, msg.message);
                return;
            }
            if (msg.kind == WorkerMessage::Kind::unit_error) {
                // The cell failed persistently inside the worker —
                // the same graceful degradation as in-process: the
                // scheme is dropped, the campaign continues.
                cell_failed[unit.cell].store(
                    true, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(state_mutex);
                cell_errors.emplace_back(unit.cell, msg.message);
                SchemeAgg& agg =
                    scheme_aggs[unit.cell / patterns.size()];
                if (--agg.pending_units == 0)
                    progress.schemeDone();
                remaining.fetch_sub(1, std::memory_order_acq_rel);
                continue;
            }

            // A valid result: merge into this liaison's private
            // accumulators (no lock on the tally path), log for the
            // checkpoint, update telemetry.
            const auto done_at = std::chrono::steady_clock::now();
            std::uint64_t unit_trials = 0;
            for (const CheckpointEntry& e : msg.checkpoint.done) {
                L.cells[tasks[e.task].cell].merge(e.counts);
                task_done[e.task] = 1;
                if (checkpointing)
                    partial[e.task] = e.counts;
                unit_trials += e.counts.trials;
                progress.shardDone(e.counts.trials);
            }
            reg.add(mid.units_completed);
            reg.add(mid.shards_completed, unit.task_count);
            reg.add(mid.trials, unit_trials);
            L.record.units += 1;
            L.record.shards += unit.task_count;
            L.record.trials += unit_trials;
            L.record.busy_seconds +=
                static_cast<double>(msg.busy_us) * 1e-6;

            {
                std::lock_guard<std::mutex> lock(state_mutex);
                SchemeAgg& agg =
                    scheme_aggs[unit.cell / patterns.size()];
                agg.busy_us += msg.busy_us;
                agg.trials += unit_trials;
                agg.shards += unit.task_count;
                agg.first_us = std::min(
                    agg.first_us, microsSince(start, dispatch_at));
                agg.last_us = std::max(agg.last_us,
                                       microsSince(start, done_at));
                if (--agg.pending_units == 0)
                    progress.schemeDone();
                for (std::uint64_t i = unit.first_task;
                     i < unit.first_task + unit.task_count; ++i)
                    completed_log.push_back(i);
                fresh_completed += unit.task_count;
                chaosOnTaskDone(fresh_completed);
                if (checkpointing && !interruptRequested()) {
                    const auto now = std::chrono::steady_clock::now();
                    if (now - last_flush >= interval) {
                        Status s = flushCheckpoint();
                        last_flush = std::chrono::steady_clock::now();
                        if (!s.ok() && !warned_checkpoint_failure) {
                            warn("fleet: checkpoint write failed (" +
                                 s.toString() +
                                 "); continuing without");
                            warned_checkpoint_failure = true;
                        }
                    }
                }
            }
            unit_done[u] = 1;
            remaining.fetch_sub(1, std::memory_order_acq_rel);
        }
        // Normal liaison end: closing the worker's stdin is the
        // shutdown signal; it exits 0 on the EOF.
        closeFd(L.child.to_child);
    };

    {
        obs::TraceSpan span("evaluate-fleet", "campaign");
        for (auto& liaison : liaisons) {
            if (liaison->spawned)
                liaison->thread =
                    std::thread(runLiaison, std::ref(*liaison));
        }
        for (auto& liaison : liaisons) {
            if (liaison->thread.joinable())
                liaison->thread.join();
        }
    }

    // Reap surviving workers (lost ones were reaped at retirement).
    for (auto& liaison : liaisons) {
        if (!liaison->spawned || liaison->record.lost)
            continue;
        closeFd(liaison->child.to_child);
        Result<int> exit = waitForExit(liaison->child.pid);
        liaison->record.exit_code = exit.ok() ? exit.value() : -1;
        closeFd(liaison->child.from_child);
    }

    // All-workers-lost fallback: the campaign still completes, just
    // in-process. Skipped on interrupt — the user asked us to stop.
    std::vector<OutcomeCounts> fallback_cells(result.cells.size());
    std::uint64_t fallback_shards = 0;
    if (!interruptRequested() &&
        remaining.load(std::memory_order_acquire) > 0) {
        warn("fleet: all workers lost with " +
             std::to_string(remaining.load()) +
             " units pending; finishing in-process");
        ShardBatchArena arena;
        std::uint64_t u = 0;
        while (!interruptRequested() && queue.tryPop(u)) {
            const WorkUnit& unit = units[u];
            if (cell_failed[unit.cell].load(
                    std::memory_order_relaxed)) {
                skipUnit(unit);
                continue;
            }
            const auto dispatch_at = std::chrono::steady_clock::now();
            std::uint64_t busy_us = 0;
            std::uint64_t unit_trials = 0;
            std::string failure;
            std::vector<CheckpointEntry> entries;
            for (std::uint64_t i = unit.first_task;
                 i < unit.first_task + unit.task_count; ++i) {
                const Task& t = tasks[i];
                const std::size_t scheme = t.cell / patterns.size();
                OutcomeCounts counts;
                try {
                    chaosOnTaskAttempt(i);
                    counts = evaluateShardBatched(
                        *schemes[scheme], goldens[scheme], spec.seed,
                        t.shard, arena);
                } catch (const std::exception& first) {
                    try {
                        chaosOnTaskAttempt(i);
                        counts = evaluateShardBatched(
                            *schemes[scheme], goldens[scheme],
                            spec.seed, t.shard, arena);
                    } catch (const std::exception& second) {
                        failure =
                            std::string("shard task failed twice: ") +
                            second.what();
                        break;
                    }
                }
                entries.push_back({i, counts});
                unit_trials += counts.trials;
            }
            const auto done_at = std::chrono::steady_clock::now();
            busy_us = microsSince(dispatch_at, done_at);
            if (!failure.empty()) {
                cell_failed[unit.cell].store(
                    true, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(state_mutex);
                cell_errors.emplace_back(unit.cell, failure);
                SchemeAgg& agg =
                    scheme_aggs[unit.cell / patterns.size()];
                if (--agg.pending_units == 0)
                    progress.schemeDone();
                remaining.fetch_sub(1, std::memory_order_acq_rel);
                continue;
            }
            for (const CheckpointEntry& e : entries) {
                fallback_cells[tasks[e.task].cell].merge(e.counts);
                task_done[e.task] = 1;
                if (checkpointing)
                    partial[e.task] = e.counts;
                progress.shardDone(e.counts.trials);
            }
            fallback_shards += unit.task_count;
            reg.add(mid.units_completed);
            reg.add(mid.shards_completed, unit.task_count);
            reg.add(mid.trials, unit_trials);
            {
                std::lock_guard<std::mutex> lock(state_mutex);
                SchemeAgg& agg =
                    scheme_aggs[unit.cell / patterns.size()];
                agg.busy_us += busy_us;
                agg.trials += unit_trials;
                agg.shards += unit.task_count;
                agg.first_us = std::min(
                    agg.first_us, microsSince(start, dispatch_at));
                agg.last_us = std::max(agg.last_us,
                                       microsSince(start, done_at));
                if (--agg.pending_units == 0)
                    progress.schemeDone();
                for (const CheckpointEntry& e : entries)
                    completed_log.push_back(e.task);
                fresh_completed += unit.task_count;
                chaosOnTaskDone(fresh_completed);
            }
            unit_done[u] = 1;
            remaining.fetch_sub(1, std::memory_order_acq_rel);
        }
    }

    const auto stop = std::chrono::steady_clock::now();
    result.seconds =
        std::chrono::duration<double>(stop - start).count();
    result.cpu_seconds = obs::processCpuSeconds() +
                         obs::processChildrenCpuSeconds() - cpu_start;
    progress.stop();
    result.interrupted = interruptRequested();

    // Merge the per-liaison accumulators, then the fallback ones; the
    // outcome is order-independent (commutative, associative merge).
    // Empty accumulators' default non-exhaustive flag must not dilute
    // enumerable cells, hence the trials guard.
    for (const auto& liaison : liaisons) {
        for (std::size_t c = 0; c < liaison->cells.size(); ++c) {
            if (liaison->cells[c].trials > 0)
                result.cells[c].counts.merge(liaison->cells[c]);
        }
    }
    for (std::size_t c = 0; c < fallback_cells.size(); ++c) {
        if (fallback_cells[c].trials > 0)
            result.cells[c].counts.merge(fallback_cells[c]);
    }

    // Per-scheme timings (worker-side busy time, parent-side wall
    // span), plus the synthetic per-scheme trace spans the in-process
    // runner emits.
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        const SchemeAgg& agg = scheme_aggs[s];
        obs::SchemeTiming timing;
        timing.scheme_id = ids[s];
        timing.cpu_seconds = static_cast<double>(agg.busy_us) * 1e-6;
        timing.shards = agg.shards;
        timing.trials = agg.trials;
        const bool ran = agg.first_us != ~std::uint64_t{0} &&
                         agg.last_us > agg.first_us;
        if (ran)
            timing.wall_seconds =
                static_cast<double>(agg.last_us - agg.first_us) * 1e-6;
        result.scheme_timings.push_back(timing);
        if (ran && obs::traceEnabled()) {
            const int tid = 1000 + static_cast<int>(s);
            obs::setTrackName(tid, "scheme " + ids[s]);
            obs::emitSpan(
                ids[s], "scheme", trace_eval_start_us + agg.first_us,
                agg.last_us - agg.first_us,
                "\"shards\":" + std::to_string(timing.shards) +
                    ",\"trials\":" + std::to_string(timing.trials),
                tid);
        }
    }

    // Fleet telemetry for reports and the strong-scaling bench.
    result.fleet.workers = worker_count;
    result.fleet.units = units.size();
    result.fleet.unit_shards = spec.fleet_unit_shards;
    result.fleet.queue_capacity = queue.capacity();
    result.fleet.requeues = requeues.load(std::memory_order_relaxed);
    result.fleet.workers_lost =
        workers_lost.load(std::memory_order_relaxed);
    result.fleet.parent_fallback_shards = fallback_shards;
    for (const auto& liaison : liaisons)
        result.fleet.worker_records.push_back(liaison->record);

    if (checkpointing) {
        std::lock_guard<std::mutex> lock(state_mutex);
        if (Status s = flushCheckpoint(); !s.ok()) {
            warn("fleet: final checkpoint write failed: " +
                 s.toString());
        } else if (result.interrupted) {
            inform("fleet: interrupted; " +
                   std::to_string(completed_log.size()) + " of " +
                   std::to_string(tasks.size()) +
                   " shard tasks checkpointed to " +
                   spec.checkpoint_path);
        }
    }

    // Drop failed schemes from the cells and record them — a partial
    // scheme row would read as a measured (wrong) rate.
    if (!cell_errors.empty()) {
        std::set<std::string> failed;
        for (const auto& [cell, message] : cell_errors) {
            const CampaignCell& c = result.cells[cell];
            if (failed.insert(c.scheme_id).second) {
                warn("fleet: dropping scheme " + c.scheme_id + ": " +
                     message);
                reg.add(mid.schemes_dropped);
                result.errors.push_back(
                    {c.scheme_id,
                     "unavailable: pattern " +
                         patternInfo(c.pattern).label + ": " +
                         message});
            }
        }
        std::erase_if(result.cells, [&](const CampaignCell& c) {
            return failed.count(c.scheme_id) != 0;
        });
    }

    reg.flushThisThread();
    result.metrics = reg.snapshot().since(metrics_baseline);
    return result;
}

} // namespace gpuecc::sim::fleet
