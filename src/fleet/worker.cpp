#include "fleet/worker.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/codec_mode.hpp"
#include "common/status.hpp"
#include "ecc/registry.hpp"
#include "faultsim/shard.hpp"
#include "obs/metrics.hpp"
#include "sim/chaos.hpp"
#include "sim/checkpoint.hpp"

namespace gpuecc::sim::fleet {

namespace {

/** One plan entry: a shard of one (scheme, pattern) cell. */
struct WorkerTask
{
    std::size_t scheme;
    Shard shard;
};

std::uint64_t
microsSince(std::chrono::steady_clock::time_point origin)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - origin)
            .count());
}

std::uint64_t
microsBetween(std::chrono::steady_clock::time_point origin,
              std::chrono::steady_clock::time_point at)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            at - origin)
            .count());
}

/**
 * Background heartbeat: writes a liveness line on an interval so the
 * dispatcher can tell "busy evaluating" from "dead". A chaos-stalled
 * process stops beating (chaosStalled), which is what makes the
 * silent-host scenario reproducible.
 */
class Heartbeat
{
  public:
    Heartbeat(int interval_ms, const std::function<void()>& beat)
    {
        thread_ = std::thread([this, interval_ms, beat] {
            std::unique_lock<std::mutex> lock(mutex_);
            for (;;) {
                cv_.wait_for(lock,
                             std::chrono::milliseconds(interval_ms),
                             [this] { return stop_; });
                if (stop_)
                    return;
                if (chaosStalled())
                    continue;
                lock.unlock();
                beat();
                lock.lock();
            }
        });
    }

    ~Heartbeat()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

} // namespace

ServeEnd
serveFleetUnits(const FleetConfig& cfg, LineReader& in,
                const WriteLineFn& write_line,
                const ServeOptions& opts)
{
    // Config receipt is this host's clock epoch: every timestamp it
    // ships (heartbeat now_us, telemetry spans) is "µs since now", so
    // the dispatcher can rebase them onto its own clock without the
    // two machines sharing one.
    const auto config_at = std::chrono::steady_clock::now();

    // Writes come from this thread (results) and the heartbeat
    // thread; serialize them so lines never interleave mid-frame.
    std::mutex write_mutex;
    const auto send = [&](const std::string& line) -> Status {
        std::lock_guard<std::mutex> lock(write_mutex);
        return write_line(line);
    };

    // Setup failures travel back as a worker_error line so the
    // dispatcher can log *why* instead of just seeing a hangup.
    const auto bail = [&](const std::string& message) {
        send(encodeWorkerErrorLine(cfg.worker, message));
        return ServeEnd::setup;
    };

    setCodecBackend(cfg.codec_backend == "reference"
                        ? CodecBackend::reference
                        : CodecBackend::compiled);

    // The dispatcher resolved these same ids before sending the
    // config, so a failure here is a genuine environment fault, not a
    // planning error.
    std::vector<std::shared_ptr<EntryScheme>> schemes;
    std::vector<GoldenEntry> goldens;
    for (const std::string& id : cfg.scheme_ids) {
        Result<std::shared_ptr<EntryScheme>> scheme = findScheme(id);
        if (!scheme.ok()) {
            return bail("scheme " + id + ": " +
                        scheme.status().toString());
        }
        schemes.push_back(scheme.value());
        goldens.push_back(makeGolden(*schemes.back(), cfg.seed));
    }

    // Rebuild the plan exactly as the dispatcher did (same loops, same
    // order) and prove it with the fingerprint: a unit's task indices
    // are only meaningful against an identical plan.
    std::vector<WorkerTask> tasks;
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        for (ErrorPattern p : cfg.patterns) {
            for (const Shard& shard :
                 planShards(p, cfg.samples, cfg.chunk))
                tasks.push_back({s, shard});
        }
    }
    const std::string fingerprint = campaignFingerprint(
        cfg.scheme_ids, cfg.patterns, cfg.samples, cfg.seed, cfg.chunk,
        codecBackendName(), tasks.size());
    if (fingerprint != cfg.fingerprint) {
        return bail("plan fingerprint mismatch\n  parent: " +
                    cfg.fingerprint + "\n  worker: " + fingerprint);
    }

    std::unique_ptr<Heartbeat> heartbeat;
    if (opts.heartbeats) {
        heartbeat = std::make_unique<Heartbeat>(
            opts.heartbeat_interval_ms, [&] {
                // A failed beat is not fatal here — the read loop
                // surfaces the broken stream on its next pass. The
                // beat carries this host's clock so every heartbeat
                // doubles as a clock-offset sample.
                send(encodeHeartbeatLine(cfg.worker,
                                         microsSince(config_at)));
            });
    }

    ShardBatchArena arena;
    std::uint64_t units_done = 0;

    // Telemetry shipping: the metrics this host accrues per unit are
    // shipped as deltas against this rolling baseline, so the
    // dispatcher can re-aggregate them host-labelled without ever
    // double-counting.
    obs::MetricsRegistry& reg = obs::metrics();
    reg.flushThisThread();
    obs::MetricsSnapshot metrics_baseline = reg.snapshot();

    for (;;) {
        Result<std::string> line = in.readLine(opts.read_deadline_ms);
        if (line.status().code() == ErrorCode::notFound)
            return ServeEnd::eof; // dispatcher hung up
        if (isDeadlineExpired(line.status()))
            return ServeEnd::silent; // dispatcher went quiet
        if (!line.ok())
            return ServeEnd::protocol;

        WorkUnit unit;
        if (opts.session_lines) {
            Result<ServerMessage> decoded =
                decodeServerLine(line.value());
            if (!decoded.ok()) {
                bail(decoded.status().toString());
                return ServeEnd::protocol;
            }
            if (decoded.value().kind == ServerMessage::Kind::heartbeat)
                continue; // liveness only; the read itself sufficed
            if (decoded.value().kind == ServerMessage::Kind::shutdown)
                return ServeEnd::shutdown;
            unit = decoded.value().unit;
        } else {
            Result<WorkUnit> decoded = decodeUnitLine(line.value());
            if (!decoded.ok()) {
                bail(decoded.status().toString());
                return ServeEnd::protocol;
            }
            unit = decoded.value();
        }
        if (unit.first_task + unit.task_count > tasks.size()) {
            bail("unit " + std::to_string(unit.unit) +
                 " is outside the plan");
            return ServeEnd::protocol;
        }

        // Chaos kill-point: simulates this host crashing (or hanging)
        // as the unit arrives — before any result bytes are written.
        chaosOnFleetUnitStart(cfg.worker, unit.unit, units_done);

        WorkerMessage result;
        result.unit = unit.unit;
        result.worker = cfg.worker;
        result.checkpoint.fingerprint = fingerprint;
        result.checkpoint.done.reserve(unit.task_count);
        const auto unit_start = std::chrono::steady_clock::now();
        std::string failure;
        for (std::uint64_t i = unit.first_task;
             i < unit.first_task + unit.task_count; ++i) {
            const WorkerTask& t = tasks[i];
            OutcomeCounts counts;
            try {
                chaosOnTaskAttempt(i);
                counts = evaluateShardBatched(*schemes[t.scheme],
                                              goldens[t.scheme],
                                              cfg.seed, t.shard, arena);
            } catch (const std::exception& first) {
                // Same contract as the in-process runner: one retry,
                // then the *cell* fails, not the worker.
                try {
                    chaosOnTaskAttempt(i);
                    counts = evaluateShardBatched(*schemes[t.scheme],
                                                  goldens[t.scheme],
                                                  cfg.seed, t.shard,
                                                  arena);
                } catch (const std::exception& second) {
                    failure = "shard task " + std::to_string(i) +
                              " failed twice: " + second.what();
                    break;
                }
            }
            result.checkpoint.done.push_back({i, counts});
        }
        result.busy_us = microsSince(unit_start);
        ++units_done;

        // Ship telemetry *before* the unit's settlement line: the
        // liaison awaiting that settlement is guaranteed to still be
        // reading, so the last unit's telemetry can never be lost to
        // a liaison that shuts down right after the final result.
        {
            WorkerMessage telemetry;
            telemetry.kind = WorkerMessage::Kind::telemetry;
            telemetry.worker = cfg.worker;
            telemetry.unit = unit.unit;
            telemetry.now_us = microsSince(config_at);
            reg.flushThisThread();
            obs::MetricsSnapshot now = reg.snapshot();
            const obs::MetricsSnapshot delta =
                now.since(metrics_baseline);
            metrics_baseline = std::move(now);
            for (const obs::CounterValue& c : delta.counters) {
                if (c.value > 0)
                    telemetry.counters.emplace_back(c.name, c.value);
            }
            if (failure.empty()) {
                SpanRecord span;
                span.name = "unit " + std::to_string(unit.unit);
                span.cat = "fleet";
                span.ts_us = microsBetween(config_at, unit_start);
                span.dur_us = result.busy_us;
                span.unit = unit.unit;
                telemetry.spans.push_back(std::move(span));
            }
            // Best-effort: a failed send surfaces on the settlement
            // line right below.
            send(encodeTelemetryLine(telemetry));
        }

        const std::string reply =
            failure.empty()
                ? encodeResultLine(result)
                : encodeUnitErrorLine(unit.unit, cfg.worker, failure);
        if (!send(reply).ok())
            return ServeEnd::protocol;
    }
}

int
fleetWorkerMain(int read_fd, int write_fd)
{
    LineReader in(read_fd, kMaxWireLineBytes);

    Result<std::string> config_line = in.readLine();
    if (!config_line.ok())
        return kWorkerProtocolExit;
    Result<FleetConfig> config = decodeConfigLine(config_line.value());
    if (!config.ok()) {
        // The nonzero exit code is the backstop for when even the
        // write fails.
        writeAllFd(write_fd,
                   encodeWorkerErrorLine(-1, config.status().toString()));
        return kWorkerSetupExit;
    }

    const ServeOptions opts; // pipe mode: EOF shutdown, no beats
    switch (serveFleetUnits(
        config.value(), in,
        [write_fd](const std::string& line) {
            return writeAllFd(write_fd, line);
        },
        opts)) {
      case ServeEnd::eof:
      case ServeEnd::shutdown:
        return 0;
      case ServeEnd::setup:
        return kWorkerSetupExit;
      case ServeEnd::silent:
      case ServeEnd::protocol:
        return kWorkerProtocolExit;
    }
    return kWorkerProtocolExit;
}

} // namespace gpuecc::sim::fleet
