#include "fleet/worker.hpp"

#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "common/codec_mode.hpp"
#include "common/status.hpp"
#include "common/subprocess.hpp"
#include "ecc/registry.hpp"
#include "faultsim/shard.hpp"
#include "fleet/protocol.hpp"
#include "sim/chaos.hpp"
#include "sim/checkpoint.hpp"

namespace gpuecc::sim::fleet {

namespace {

/** One plan entry: a shard of one (scheme, pattern) cell. */
struct WorkerTask
{
    std::size_t scheme;
    Shard shard;
};

std::uint64_t
microsSince(std::chrono::steady_clock::time_point origin)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - origin)
            .count());
}

} // namespace

int
fleetWorkerMain(int read_fd, int write_fd)
{
    LineReader in(read_fd);

    // Setup failures travel back as a worker_error line so the parent
    // can log *why* instead of just seeing EOF; the nonzero exit code
    // is the backstop for when even the write fails.
    const auto bail = [&](const std::string& message, int worker,
                          int code) {
        writeAllFd(write_fd, encodeWorkerErrorLine(worker, message));
        return code;
    };

    Result<std::string> config_line = in.readLine();
    if (!config_line.ok())
        return kWorkerProtocolExit;
    Result<FleetConfig> config = decodeConfigLine(config_line.value());
    if (!config.ok())
        return bail(config.status().toString(), -1, kWorkerSetupExit);
    const FleetConfig& cfg = config.value();

    setCodecBackend(cfg.codec_backend == "reference"
                        ? CodecBackend::reference
                        : CodecBackend::compiled);

    // The parent resolved these same ids before forking, so a failure
    // here is a genuine environment fault, not a planning error.
    std::vector<std::shared_ptr<EntryScheme>> schemes;
    std::vector<GoldenEntry> goldens;
    for (const std::string& id : cfg.scheme_ids) {
        Result<std::shared_ptr<EntryScheme>> scheme = findScheme(id);
        if (!scheme.ok()) {
            return bail("scheme " + id + ": " +
                            scheme.status().toString(),
                        cfg.worker, kWorkerSetupExit);
        }
        schemes.push_back(scheme.value());
        goldens.push_back(makeGolden(*schemes.back(), cfg.seed));
    }

    // Rebuild the plan exactly as the dispatcher did (same loops, same
    // order) and prove it with the fingerprint: a unit's task indices
    // are only meaningful against an identical plan.
    std::vector<WorkerTask> tasks;
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        for (ErrorPattern p : cfg.patterns) {
            for (const Shard& shard :
                 planShards(p, cfg.samples, cfg.chunk))
                tasks.push_back({s, shard});
        }
    }
    const std::string fingerprint = campaignFingerprint(
        cfg.scheme_ids, cfg.patterns, cfg.samples, cfg.seed, cfg.chunk,
        codecBackendName(), tasks.size());
    if (fingerprint != cfg.fingerprint) {
        return bail("plan fingerprint mismatch\n  parent: " +
                        cfg.fingerprint + "\n  worker: " + fingerprint,
                    cfg.worker, kWorkerSetupExit);
    }

    ShardBatchArena arena;
    std::uint64_t units_done = 0;
    for (;;) {
        Result<std::string> line = in.readLine();
        if (line.status().code() == ErrorCode::notFound)
            return 0; // EOF: the dispatcher is done with us
        if (!line.ok())
            return kWorkerProtocolExit;
        Result<WorkUnit> decoded = decodeUnitLine(line.value());
        if (!decoded.ok()) {
            return bail(decoded.status().toString(), cfg.worker,
                        kWorkerProtocolExit);
        }
        const WorkUnit& unit = decoded.value();
        if (unit.first_task + unit.task_count > tasks.size()) {
            return bail("unit " + std::to_string(unit.unit) +
                            " is outside the plan",
                        cfg.worker, kWorkerProtocolExit);
        }

        // Chaos kill-point: simulates this worker crashing as the
        // unit arrives — before any result bytes are written.
        chaosOnFleetUnitStart(cfg.worker, units_done);

        WorkerMessage result;
        result.unit = unit.unit;
        result.worker = cfg.worker;
        result.checkpoint.fingerprint = fingerprint;
        result.checkpoint.done.reserve(unit.task_count);
        const auto unit_start = std::chrono::steady_clock::now();
        std::string failure;
        for (std::uint64_t i = unit.first_task;
             i < unit.first_task + unit.task_count; ++i) {
            const WorkerTask& t = tasks[i];
            OutcomeCounts counts;
            try {
                chaosOnTaskAttempt(i);
                counts = evaluateShardBatched(*schemes[t.scheme],
                                              goldens[t.scheme],
                                              cfg.seed, t.shard, arena);
            } catch (const std::exception& first) {
                // Same contract as the in-process runner: one retry,
                // then the *cell* fails, not the worker.
                try {
                    chaosOnTaskAttempt(i);
                    counts = evaluateShardBatched(*schemes[t.scheme],
                                                  goldens[t.scheme],
                                                  cfg.seed, t.shard,
                                                  arena);
                } catch (const std::exception& second) {
                    failure = "shard task " + std::to_string(i) +
                              " failed twice: " + second.what();
                    break;
                }
            }
            result.checkpoint.done.push_back({i, counts});
        }
        result.busy_us = microsSince(unit_start);
        ++units_done;

        const std::string reply =
            failure.empty()
                ? encodeResultLine(result)
                : encodeUnitErrorLine(unit.unit, cfg.worker, failure);
        if (!writeAllFd(write_fd, reply).ok())
            return kWorkerProtocolExit;
    }
}

} // namespace gpuecc::sim::fleet
