#include "fleet/dispatch.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <set>

#include "common/codec_mode.hpp"
#include "common/interrupt.hpp"
#include "common/log.hpp"
#include "common/mpmc_queue.hpp"
#include "ecc/registry.hpp"
#include "faultsim/shard.hpp"
#include "obs/trace.hpp"
#include "sim/chaos.hpp"
#include "sim/checkpoint.hpp"

namespace gpuecc::sim::fleet {

namespace {

/** One plan entry: a shard of one (scheme, pattern) cell. */
struct Task
{
    std::size_t cell;
    Shard shard;
};

/** Ids of the fleet.* metrics, registered once per process. */
struct FleetMetricIds
{
    obs::MetricId units_completed;
    obs::MetricId units_requeued;
    obs::MetricId units_poisoned;
    obs::MetricId duplicate_results;
    obs::MetricId workers_lost;
    obs::MetricId worker_timeouts;
    obs::MetricId heartbeat_expiries;
    obs::MetricId agents_connected;
    obs::MetricId auth_failures;
    obs::MetricId shards_completed;
    obs::MetricId trials;
    obs::MetricId checkpoint_flushes;
    obs::MetricId checkpoint_failures;
    obs::MetricId schemes_dropped;
    /** High-water queue depth (gauges merge by maximum). */
    obs::MetricId queue_depth;
};

const FleetMetricIds&
fleetMetricIds()
{
    // Register before the liaison threads exist — the same
    // register-before-spawn contract the campaign metrics follow.
    static const FleetMetricIds ids = [] {
        obs::MetricsRegistry& m = obs::metrics();
        FleetMetricIds out;
        out.units_completed = m.counter("fleet.units_completed");
        out.units_requeued = m.counter("fleet.units_requeued");
        out.units_poisoned = m.counter("fleet.units_poisoned");
        out.duplicate_results = m.counter("fleet.duplicate_results");
        out.workers_lost = m.counter("fleet.workers_lost");
        out.worker_timeouts = m.counter("fleet.worker_timeouts");
        out.heartbeat_expiries = m.counter("fleet.heartbeat_expiries");
        out.agents_connected = m.counter("fleet.agents_connected");
        out.auth_failures = m.counter("fleet.auth_failures");
        out.shards_completed = m.counter("fleet.shards_completed");
        out.trials = m.counter("fleet.trials");
        out.checkpoint_flushes = m.counter("fleet.checkpoint_flushes");
        out.checkpoint_failures =
            m.counter("fleet.checkpoint_failures");
        out.schemes_dropped = m.counter("fleet.schemes_dropped");
        out.queue_depth = m.gauge("fleet.queue_depth");
        return out;
    }();
    return ids;
}

/** Per-scheme aggregates; guarded by the dispatcher's state mutex. */
struct SchemeAgg
{
    std::uint64_t busy_us = 0;
    std::uint64_t trials = 0;
    std::uint64_t shards = 0;
    std::uint64_t first_us = ~std::uint64_t{0};
    std::uint64_t last_us = 0;
    std::uint64_t pending_units = 0;
};

std::uint64_t
microsSince(std::chrono::steady_clock::time_point origin,
            std::chrono::steady_clock::time_point at)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            at - origin)
            .count());
}

} // namespace

struct FleetDispatch::Impl
{
    CampaignSpec spec;
    CampaignResult result;
    std::vector<std::string> ids;
    std::vector<std::shared_ptr<EntryScheme>> schemes;
    std::vector<GoldenEntry> goldens;
    std::vector<ErrorPattern> patterns;
    std::vector<Task> tasks;
    std::uint64_t effective_chunk = 0;
    bool checkpointing = false;
    int max_attempts = 3;

    std::unique_ptr<MpmcQueue<std::uint64_t>> queue;
    std::atomic<std::uint64_t> remaining{0};

    std::mutex state_mutex; // everything below, unless noted
    std::vector<char> unit_settled;
    std::vector<char> task_done;
    std::vector<int> unit_attempts; // failed dispatches per unit
    std::vector<OutcomeCounts> partial;
    std::vector<std::uint64_t> completed_log;
    std::uint64_t fresh_completed = 0;
    std::chrono::steady_clock::time_point last_flush;
    bool warned_checkpoint_failure = false;
    std::vector<SchemeAgg> scheme_aggs;
    std::vector<std::pair<std::size_t, std::string>> cell_errors;
    std::vector<std::pair<std::string, std::string>> ckpt_manifest;
    std::uint64_t fallback_shards = 0; // finishInProcess only

    /** Lock-free flags so tryClaim can peek without the mutex. */
    std::unique_ptr<std::atomic<bool>[]> cell_failed;

    /** Transport telemetry (atomic: any liaison thread bumps them). */
    std::atomic<std::uint64_t> requeues{0};
    std::atomic<std::uint64_t> poisoned{0};
    std::atomic<std::uint64_t> duplicates{0};
    std::atomic<std::uint64_t> workers_lost{0};
    std::atomic<std::uint64_t> worker_timeouts{0};
    std::atomic<std::uint64_t> heartbeat_expiries{0};
    std::atomic<std::uint64_t> agents_connected{0};
    std::atomic<std::uint64_t> auth_failures{0};

    /** Live progress for status() (atomic: sampled by HTTP thread). */
    std::atomic<std::uint64_t> shards_done{0};
    std::atomic<std::uint64_t> trials_done{0};
    std::atomic<std::uint64_t> units_settled_live{0};

    /**
     * One slot per host *connection* (a reconnecting agent gets a new
     * slot; finalize merges slots by label). Guarded by state_mutex.
     */
    struct HostSlot
    {
        int worker = -1;
        std::string label;
        bool remote = false;
        std::uint64_t units = 0;
        std::uint64_t shards = 0;
        std::uint64_t trials = 0;
        std::uint64_t busy_us = 0;
        /** Shipped counter deltas, accumulated by name. */
        std::vector<std::pair<std::string, std::uint64_t>> counters;
        /** Shipped spans, timestamps in the host's config clock. */
        std::vector<SpanRecord> spans;
        std::chrono::steady_clock::time_point config_sent_at;
        std::uint64_t config_sent_trace_us = 0;
        /**
         * Best (minimum) observed "server µs since config send minus
         * host µs since config receipt" — converges on the one-way
         * config delivery latency, the wall-clock correction remote
         * span timestamps need.
         */
        bool has_offset = false;
        std::int64_t min_offset_us = 0;
    };
    std::vector<HostSlot> hosts; // state_mutex

    /** The --journal event stream (null when not journaling). */
    std::unique_ptr<obs::EventJournal> journal;

    obs::MetricsSnapshot metrics_baseline;
    obs::ProgressTotals totals;
    std::unique_ptr<obs::ProgressReporter> progress;
    std::unique_ptr<obs::TraceSpan> campaign_span;
    std::unique_ptr<obs::TraceSpan> evaluate_span;
    std::chrono::steady_clock::time_point start_at;
    std::uint64_t trace_eval_start_us = 0;
    double cpu_start = 0.0;
    bool started = false;

    /** Serialize completed tallies; call with state_mutex held. */
    Status flushCheckpoint()
    {
        obs::TraceSpan span("checkpoint-flush", "checkpoint");
        CampaignCheckpoint ckpt;
        ckpt.fingerprint = fingerprint;
        ckpt.manifest = ckpt_manifest;
        std::vector<std::uint64_t> indices = completed_log;
        std::sort(indices.begin(), indices.end());
        ckpt.done.reserve(indices.size());
        for (std::uint64_t i : indices)
            ckpt.done.push_back({i, partial[i]});
        span.arg("tasks", indices.size());
        Status s = saveCheckpoint(spec.checkpoint_path, ckpt);
        const FleetMetricIds& mid = fleetMetricIds();
        obs::metrics().add(s.ok() ? mid.checkpoint_flushes
                                  : mid.checkpoint_failures);
        return s;
    }

    /** Periodic flush after fresh completions; state_mutex held. */
    void maybeFlush()
    {
        if (!checkpointing || interruptRequested())
            return;
        const auto interval = std::chrono::duration<double>(
            std::max(0.0, spec.checkpoint_interval_s));
        const auto now = std::chrono::steady_clock::now();
        if (now - last_flush < interval)
            return;
        Status s = flushCheckpoint();
        last_flush = std::chrono::steady_clock::now();
        if (!s.ok() && !warned_checkpoint_failure) {
            warn("fleet: checkpoint write failed (" + s.toString() +
                 "); continuing without");
            warned_checkpoint_failure = true;
        }
    }

    /**
     * Settle one unit's scheme accounting; state_mutex held. Every
     * settlement path (complete, fail, skip, poison) funnels here so
     * remaining and the per-scheme pending counts stay consistent.
     */
    void settleLocked(std::uint64_t u)
    {
        unit_settled[u] = 1;
        SchemeAgg& agg =
            scheme_aggs[units[u].cell / patterns.size()];
        if (--agg.pending_units == 0 && progress)
            progress->schemeDone();
        units_settled_live.fetch_add(1, std::memory_order_relaxed);
        remaining.fetch_sub(1, std::memory_order_acq_rel);
    }

    /**
     * Account a unit retired through a failure path — no trials ran,
     * but its shards are disposed of. Without this the progress line
     * and /status freeze short of 100% whenever a cell fails or a
     * poison unit retires. State_mutex held.
     */
    void skipShardsLocked(std::uint64_t u)
    {
        const std::uint64_t n = units[u].task_count;
        if (progress)
            progress->shardsSkipped(n);
        shards_done.fetch_add(n, std::memory_order_relaxed);
    }

    /**
     * Fail a unit's cell with a message; state_mutex held. The unit
     * must not be settled yet.
     */
    void failCellLocked(std::uint64_t u, const std::string& message)
    {
        cell_failed[units[u].cell].store(true,
                                         std::memory_order_relaxed);
        cell_errors.emplace_back(units[u].cell, message);
        skipShardsLocked(u);
        settleLocked(u);
    }

    /** Append to the journal if one is open (any thread, any locks). */
    void journalAppend(const std::string& event,
                       const obs::EventJournal::Fields& fields = {},
                       const obs::EventJournal::Nums& nums = {})
    {
        if (journal)
            journal->append(event, fields, nums);
    }

    /** Latest slot registered for @p worker; state_mutex held. */
    HostSlot* slotForLocked(int worker)
    {
        for (auto it = hosts.rbegin(); it != hosts.rend(); ++it)
            if (it->worker == worker)
                return &*it;
        return nullptr;
    }

    /** Host label for journal events; state_mutex held. */
    std::string hostLabelLocked(int worker)
    {
        const HostSlot* slot = slotForLocked(worker);
        if (slot != nullptr)
            return slot->label;
        return "worker-" + std::to_string(worker);
    }

    /** Fold one now_us report into the offset; state_mutex held. */
    void clockSampleLocked(HostSlot& slot, std::uint64_t now_us)
    {
        if (now_us == 0)
            return;
        const std::int64_t elapsed = static_cast<std::int64_t>(
            microsSince(slot.config_sent_at,
                        std::chrono::steady_clock::now()));
        const std::int64_t offset =
            elapsed - static_cast<std::int64_t>(now_us);
        if (!slot.has_offset || offset < slot.min_offset_us) {
            slot.has_offset = true;
            slot.min_offset_us = offset;
        }
    }

    // Plan facts duplicated from the owner for internal use.
    std::string fingerprint;
    std::vector<WorkUnit> units;
};

FleetDispatch::~FleetDispatch() = default;

Result<std::unique_ptr<FleetDispatch>>
FleetDispatch::create(const CampaignSpec& spec)
{
    auto impl = std::make_unique<Impl>();
    impl->spec = spec;
    impl->max_attempts = std::max(1, spec.fleet_max_unit_attempts);

    if (!spec.journal_path.empty()) {
        auto journal = obs::EventJournal::open(spec.journal_path);
        if (!journal.ok())
            return journal.status();
        impl->journal = std::move(journal).value();
    }

    const FleetMetricIds& mid = fleetMetricIds();
    (void)mid;
    obs::MetricsRegistry& reg = obs::metrics();
    reg.flushThisThread();
    impl->metrics_baseline = reg.snapshot();
    impl->campaign_span = std::make_unique<obs::TraceSpan>(
        "fleet-campaign", "campaign");

    CampaignResult& result = impl->result;
    result.spec = spec;
    // Evaluation happens in single-threaded worker processes or
    // remote agents; the parent runs no pool. Resolve threads to the
    // truthful value so reports don't claim pool parallelism that
    // never existed.
    result.spec.threads = 1;
    result.codec_backend = codecBackendName();

    impl->patterns = spec.resolvedPatterns();

    // Resolve schemes in the parent: validates ids before any fork,
    // and provides the evaluation path for the all-hosts-lost
    // fallback. A scheme that fails to resolve is skipped, recorded.
    for (const std::string& id : spec.scheme_ids) {
        obs::TraceSpan span("codec:" + id, "codec");
        Result<std::shared_ptr<EntryScheme>> scheme = findScheme(id);
        if (!scheme.ok()) {
            warn("fleet: skipping scheme " + id + ": " +
                 scheme.status().toString());
            result.errors.push_back({id, scheme.status().toString()});
            continue;
        }
        impl->schemes.push_back(scheme.value());
        impl->goldens.push_back(
            makeGolden(*impl->schemes.back(), spec.seed));
        impl->ids.push_back(id);
    }
    if (impl->schemes.empty()) {
        return Status::notFound(
            "no scheme in the spec could be constructed");
    }
    for (const std::string& id : impl->ids) {
        for (ErrorPattern p : impl->patterns)
            result.cells.push_back({id, p, OutcomeCounts{}});
    }

    // Size shards so every host can hold whole units. The pipe
    // transport knows its exact worker count; the socket service
    // cannot know how many agents will ever join, so it plans for a
    // reasonable floor — the two modes therefore fingerprint
    // differently (documented; tallies are chunk-invariant, so the
    // CSV is identical either way).
    const bool service = !spec.fleet_listen.empty();
    const std::uint64_t width =
        service ? std::max<std::uint64_t>(
                      static_cast<std::uint64_t>(spec.fleet_workers), 8)
                : static_cast<std::uint64_t>(spec.fleet_workers);
    const std::uint64_t slots = std::min<std::uint64_t>(
        width * spec.fleet_unit_shards, std::uint64_t{1} << 20);
    impl->effective_chunk = effectiveShardChunk(
        spec.samples, spec.chunk, static_cast<int>(slots));

    {
        obs::TraceSpan span("plan", "campaign");
        for (std::size_t s = 0; s < impl->schemes.size(); ++s) {
            for (std::size_t p = 0; p < impl->patterns.size(); ++p) {
                const std::size_t cell =
                    s * impl->patterns.size() + p;
                for (const Shard& shard :
                     planShards(impl->patterns[p], spec.samples,
                                impl->effective_chunk))
                    impl->tasks.push_back({cell, shard});
            }
        }
    }
    result.shards = impl->tasks.size();

    // The fingerprint is always needed in fleet mode — it is the
    // config line's plan-identity proof, checkpointing or not.
    impl->fingerprint = campaignFingerprint(
        impl->ids, impl->patterns, spec.samples, spec.seed,
        impl->effective_chunk, result.codec_backend,
        impl->tasks.size());
    impl->checkpointing = !spec.checkpoint_path.empty();
    if (impl->checkpointing)
        installInterruptHandlers();

    // Work units: contiguous task runs that never straddle a cell
    // boundary, so one unit failing persistently fails exactly one
    // (scheme, pattern) cell.
    for (std::uint64_t i = 0; i < impl->tasks.size();) {
        WorkUnit u;
        u.unit = impl->units.size();
        u.cell = impl->tasks[i].cell;
        u.first_task = i;
        while (i < impl->tasks.size() &&
               impl->tasks[i].cell == u.cell &&
               u.task_count < spec.fleet_unit_shards) {
            ++i;
            ++u.task_count;
        }
        impl->units.push_back(u);
    }

    impl->partial.resize(impl->checkpointing ? impl->tasks.size() : 0);
    impl->task_done.assign(impl->tasks.size(), 0);
    impl->unit_settled.assign(impl->units.size(), 0);
    impl->unit_attempts.assign(impl->units.size(), 0);
    impl->last_flush = std::chrono::steady_clock::now();

    // Resume at unit granularity: a unit all of whose tasks are in
    // the checkpoint is settled (merged, never dispatched); a
    // partially covered unit — possible when resuming a checkpoint an
    // in-process run wrote — is re-dispatched whole, dropping the
    // partial entries (re-evaluation is bit-identical by design).
    if (impl->checkpointing && spec.resume) {
        obs::TraceSpan span("resume-load", "campaign");
        Result<CampaignCheckpoint> loaded =
            loadCheckpoint(spec.checkpoint_path);
        if (loaded.status().code() == ErrorCode::notFound) {
            inform("fleet: no checkpoint at " + spec.checkpoint_path +
                   "; starting fresh");
        } else if (!loaded.ok()) {
            return loaded.status();
        } else {
            const CampaignCheckpoint& ckpt = loaded.value();
            if (ckpt.fingerprint != impl->fingerprint) {
                return Status::failedPrecondition(
                    "checkpoint " + spec.checkpoint_path +
                    " was written by a different campaign\n  theirs: " +
                    ckpt.fingerprint +
                    "\n  ours:   " + impl->fingerprint);
            }
            std::vector<OutcomeCounts> restored(impl->tasks.size());
            std::vector<char> has(impl->tasks.size(), 0);
            for (const CheckpointEntry& entry : ckpt.done) {
                if (entry.task >= impl->tasks.size()) {
                    return Status::dataLoss(
                        "checkpoint " + spec.checkpoint_path +
                        ": task index " + std::to_string(entry.task) +
                        " is outside the plan");
                }
                const Shard& shard = impl->tasks[entry.task].shard;
                const bool enumerable =
                    patternIsEnumerable(shard.pattern);
                if (entry.counts.exhaustive != enumerable ||
                    (!enumerable && entry.counts.trials !=
                                        shard.end - shard.begin)) {
                    return Status::dataLoss(
                        "checkpoint " + spec.checkpoint_path +
                        ": task " + std::to_string(entry.task) +
                        " tallies don't match its shard");
                }
                restored[entry.task] = entry.counts;
                has[entry.task] = 1;
            }
            std::uint64_t dropped = 0;
            for (const WorkUnit& u : impl->units) {
                bool whole = true;
                for (std::uint64_t i = u.first_task;
                     i < u.first_task + u.task_count; ++i)
                    whole = whole && has[i] != 0;
                if (!whole) {
                    for (std::uint64_t i = u.first_task;
                         i < u.first_task + u.task_count; ++i)
                        dropped += has[i] != 0;
                    continue;
                }
                impl->unit_settled[u.unit] = 1;
                for (std::uint64_t i = u.first_task;
                     i < u.first_task + u.task_count; ++i) {
                    impl->task_done[i] = 1;
                    if (impl->checkpointing)
                        impl->partial[i] = restored[i];
                    impl->completed_log.push_back(i);
                    result.cells[impl->tasks[i].cell].counts.merge(
                        restored[i]);
                    ++result.resumed_shards;
                }
            }
            inform("fleet: resumed " +
                   std::to_string(result.resumed_shards) + " of " +
                   std::to_string(impl->tasks.size()) +
                   " shard tasks from " + spec.checkpoint_path);
            if (dropped > 0) {
                inform("fleet: re-evaluating " +
                       std::to_string(dropped) +
                       " checkpointed tasks from partially covered "
                       "work units");
            }
        }
    }

    // Queue every pending unit. Capacity covers the whole plan, so a
    // re-queue after a host death can never fail for space.
    impl->queue = std::make_unique<MpmcQueue<std::uint64_t>>(
        std::max<std::size_t>(impl->units.size(), 1));
    std::uint64_t pending_units = 0;
    for (const WorkUnit& u : impl->units) {
        if (impl->unit_settled[u.unit] != 0)
            continue;
        require(impl->queue->tryPush(u.unit),
                "fleet: queue sized too small");
        ++pending_units;
    }
    impl->remaining.store(pending_units, std::memory_order_release);

    impl->scheme_aggs.assign(impl->schemes.size(), SchemeAgg{});
    impl->totals.schemes = impl->schemes.size();
    for (const WorkUnit& u : impl->units) {
        if (impl->unit_settled[u.unit] != 0)
            continue;
        impl->scheme_aggs[u.cell / impl->patterns.size()]
            .pending_units += 1;
        impl->totals.shards += u.task_count;
    }

    impl->cell_failed.reset(
        new std::atomic<bool>[result.cells.size()]);
    for (std::size_t i = 0; i < result.cells.size(); ++i)
        impl->cell_failed[i].store(false, std::memory_order_relaxed);

    if (impl->checkpointing) {
        const obs::BuildInfo build = obs::buildInfo();
        impl->ckpt_manifest = {
            {"threads", std::to_string(result.spec.threads)},
            {"fleet_workers", std::to_string(spec.fleet_workers)},
            {"codec_backend", result.codec_backend},
            {"build_type", build.build_type},
            {"compiler", build.compiler},
            {"platform", build.platform},
            {"chaos", obs::chaosEnvText()},
        };
    }

    impl->shards_done.store(result.resumed_shards,
                            std::memory_order_relaxed);

    auto out = std::unique_ptr<FleetDispatch>(new FleetDispatch());
    out->fingerprint_ = impl->fingerprint;
    out->units_ = impl->units;
    out->initial_pending_ = pending_units;
    out->impl_ = std::move(impl);
    return out;
}

FleetConfig
FleetDispatch::configFor(int worker) const
{
    FleetConfig config;
    config.worker = worker;
    config.scheme_ids = impl_->ids;
    config.patterns = impl_->patterns;
    config.samples = impl_->spec.samples;
    config.seed = impl_->spec.seed;
    config.chunk = impl_->effective_chunk;
    config.fingerprint = impl_->fingerprint;
    config.codec_backend = impl_->result.codec_backend;
    return config;
}

std::string
FleetDispatch::unitLabel(std::uint64_t u) const
{
    const WorkUnit& unit = impl_->units[u];
    const CampaignCell& cell = impl_->result.cells[unit.cell];
    return cell.scheme_id + "/" + patternInfo(cell.pattern).label;
}

void
FleetDispatch::start()
{
    Impl& d = *impl_;
    require(!d.started, "fleet: dispatch started twice");
    d.started = true;
    d.cpu_start =
        obs::processCpuSeconds() + obs::processChildrenCpuSeconds();
    d.start_at = std::chrono::steady_clock::now();
    d.trace_eval_start_us = obs::traceNowUs();
    d.evaluate_span =
        std::make_unique<obs::TraceSpan>("evaluate-fleet", "campaign");
    d.progress = std::make_unique<obs::ProgressReporter>(
        d.spec.progress, d.totals);
    d.journalAppend(
        "start", {},
        {{"units", units_.size()},
         {"pending", initial_pending_},
         {"resumed", units_.size() - initial_pending_},
         {"shards", d.tasks.size()}});
    std::lock_guard<std::mutex> lock(d.state_mutex);
    for (const SchemeAgg& agg : d.scheme_aggs) {
        if (agg.pending_units == 0)
            d.progress->schemeDone(); // fully restored
    }
}

bool
FleetDispatch::allSettled() const
{
    return impl_->remaining.load(std::memory_order_acquire) == 0;
}

bool
FleetDispatch::tryClaim(std::uint64_t& u)
{
    Impl& d = *impl_;
    std::uint64_t candidate = 0;
    while (d.queue->tryPop(candidate)) {
        obs::metrics().setGauge(
            fleetMetricIds().queue_depth,
            static_cast<std::int64_t>(d.queue->sizeApprox()));
        const WorkUnit& unit = d.units[candidate];
        if (d.cell_failed[unit.cell].load(std::memory_order_relaxed)) {
            // Its cell already failed: settle it silently (progress
            // moves on; the checkpoint just never lists its tasks).
            std::lock_guard<std::mutex> lock(d.state_mutex);
            if (d.unit_settled[candidate] == 0) {
                d.skipShardsLocked(candidate);
                d.settleLocked(candidate);
                d.journalAppend("skip", {}, {{"unit", candidate}});
            }
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(d.state_mutex);
            if (d.unit_settled[candidate] != 0)
                continue; // a late result beat the requeue to it
        }
        u = candidate;
        return true;
    }
    return false;
}

Status
FleetDispatch::validateResult(std::uint64_t u,
                              const WorkerMessage& msg) const
{
    const Impl& d = *impl_;
    const WorkUnit& unit = d.units[u];
    if (msg.unit != unit.unit ||
        msg.checkpoint.fingerprint != d.fingerprint ||
        msg.checkpoint.done.size() != unit.task_count) {
        return Status::dataLoss(
            "worker result doesn't match the dispatched unit");
    }
    for (const CheckpointEntry& e : msg.checkpoint.done) {
        if (e.task < unit.first_task ||
            e.task >= unit.first_task + unit.task_count) {
            return Status::dataLoss(
                "worker result entry outside its unit");
        }
        const Shard& shard = d.tasks[e.task].shard;
        const bool enumerable = patternIsEnumerable(shard.pattern);
        if (e.counts.exhaustive != enumerable ||
            (!enumerable &&
             e.counts.trials != shard.end - shard.begin)) {
            return Status::dataLoss(
                "worker " + std::to_string(msg.worker) + " unit " +
                std::to_string(u) + ": task " +
                std::to_string(e.task) +
                " tallies don't match its shard");
        }
    }
    return {};
}

bool
FleetDispatch::completeUnit(std::uint64_t u, const WorkerMessage& msg,
                            Clock::time_point dispatch_at,
                            Clock::time_point done_at)
{
    Impl& d = *impl_;
    const FleetMetricIds& mid = fleetMetricIds();
    obs::MetricsRegistry& reg = obs::metrics();
    const WorkUnit& unit = d.units[u];

    std::lock_guard<std::mutex> lock(d.state_mutex);
    if (d.unit_settled[u] != 0) {
        // Idempotent delivery: a host presumed dead (or a duplicated
        // wire line) re-delivered a settled unit — discard, count.
        d.duplicates.fetch_add(1, std::memory_order_relaxed);
        reg.add(mid.duplicate_results);
        d.journalAppend("duplicate", {}, {{"unit", u}});
        return false;
    }

    std::uint64_t unit_trials = 0;
    for (const CheckpointEntry& e : msg.checkpoint.done) {
        d.result.cells[d.tasks[e.task].cell].counts.merge(e.counts);
        d.task_done[e.task] = 1;
        if (d.checkpointing)
            d.partial[e.task] = e.counts;
        unit_trials += e.counts.trials;
        d.progress->shardDone(e.counts.trials);
        d.completed_log.push_back(e.task);
    }
    reg.add(mid.units_completed);
    reg.add(mid.shards_completed, unit.task_count);
    reg.add(mid.trials, unit_trials);

    SchemeAgg& agg = d.scheme_aggs[unit.cell / d.patterns.size()];
    agg.busy_us += msg.busy_us;
    agg.trials += unit_trials;
    agg.shards += unit.task_count;
    agg.first_us = std::min(agg.first_us,
                            microsSince(d.start_at, dispatch_at));
    agg.last_us =
        std::max(agg.last_us, microsSince(d.start_at, done_at));

    // Host credit rides the same settled-exactly-once gate as the
    // tallies, so a duplicated delivery can never double-count a
    // host's unit/shard/trial series.
    d.shards_done.fetch_add(unit.task_count,
                            std::memory_order_relaxed);
    d.trials_done.fetch_add(unit_trials, std::memory_order_relaxed);
    if (Impl::HostSlot* slot = d.slotForLocked(msg.worker)) {
        slot->units += 1;
        slot->shards += unit.task_count;
        slot->trials += unit_trials;
        slot->busy_us += msg.busy_us;
    }
    d.journalAppend("result", {{"host", d.hostLabelLocked(msg.worker)}},
                    {{"unit", u},
                     {"shards", unit.task_count},
                     {"trials", unit_trials},
                     {"busy_us", msg.busy_us}});

    d.settleLocked(u);
    d.fresh_completed += unit.task_count;
    chaosOnTaskDone(d.fresh_completed);
    d.maybeFlush();
    return true;
}

void
FleetDispatch::failUnit(std::uint64_t u, const std::string& message)
{
    Impl& d = *impl_;
    std::lock_guard<std::mutex> lock(d.state_mutex);
    if (d.unit_settled[u] != 0)
        return;
    d.journalAppend("unit_error", {{"error", message.substr(0, 200)}},
                    {{"unit", u}});
    d.failCellLocked(u, message);
}

RequeueOutcome
FleetDispatch::requeueUnit(std::uint64_t u, const std::string& why)
{
    Impl& d = *impl_;
    const FleetMetricIds& mid = fleetMetricIds();
    std::lock_guard<std::mutex> lock(d.state_mutex);
    if (d.unit_settled[u] != 0)
        return RequeueOutcome::settled;
    const int attempts = ++d.unit_attempts[u];
    if (attempts >= d.max_attempts) {
        // Poison: the unit took down max_attempts hosts in a row.
        // Retire it (failing its cell) instead of feeding it the rest
        // of the fleet.
        const WorkUnit& unit = d.units[u];
        const std::string message =
            "work unit " + std::to_string(u) + " (" + unitLabel(u) +
            ", tasks [" + std::to_string(unit.first_task) + ", " +
            std::to_string(unit.first_task + unit.task_count) +
            ")) poisoned after " + std::to_string(attempts) +
            " failed dispatch attempts; last: " + why;
        warn("fleet: " + message);
        d.poisoned.fetch_add(1, std::memory_order_relaxed);
        obs::metrics().add(mid.units_poisoned);
        d.journalAppend(
            "poison", {},
            {{"unit", u},
             {"attempts", static_cast<std::uint64_t>(attempts)}});
        d.failCellLocked(u, message);
        return RequeueOutcome::poisoned;
    }
    require(d.queue->tryPush(u),
            "fleet: re-queue cannot fail by construction");
    d.requeues.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().add(mid.units_requeued);
    d.journalAppend(
        "requeue", {},
        {{"unit", u},
         {"attempts", static_cast<std::uint64_t>(attempts)}});
    return RequeueOutcome::requeued;
}

void
FleetDispatch::finishInProcess()
{
    Impl& d = *impl_;
    if (interruptRequested() || allSettled())
        return;
    warn("fleet: no hosts left with " +
         std::to_string(d.remaining.load(std::memory_order_acquire)) +
         " units pending; finishing in-process");
    registerHost(-1, "parent", false);
    d.journalAppend(
        "fallback", {},
        {{"remaining",
          d.remaining.load(std::memory_order_acquire)}});
    ShardBatchArena arena;
    std::uint64_t u = 0;
    while (!interruptRequested() && tryClaim(u)) {
        const WorkUnit& unit = d.units[u];
        const auto dispatch_at = std::chrono::steady_clock::now();
        std::uint64_t unit_trials = 0;
        std::string failure;
        WorkerMessage msg;
        msg.unit = unit.unit;
        msg.worker = -1;
        msg.checkpoint.fingerprint = d.fingerprint;
        msg.checkpoint.done.reserve(unit.task_count);
        for (std::uint64_t i = unit.first_task;
             i < unit.first_task + unit.task_count; ++i) {
            const Task& t = d.tasks[i];
            const std::size_t scheme = t.cell / d.patterns.size();
            OutcomeCounts counts;
            try {
                chaosOnTaskAttempt(i);
                counts = evaluateShardBatched(
                    *d.schemes[scheme], d.goldens[scheme], d.spec.seed,
                    t.shard, arena);
            } catch (const std::exception& first) {
                // Same contract as the in-process runner: one retry,
                // then the *cell* fails, not the campaign.
                try {
                    chaosOnTaskAttempt(i);
                    counts = evaluateShardBatched(
                        *d.schemes[scheme], d.goldens[scheme],
                        d.spec.seed, t.shard, arena);
                } catch (const std::exception& second) {
                    failure =
                        std::string("shard task failed twice: ") +
                        second.what();
                    break;
                }
            }
            msg.checkpoint.done.push_back({i, counts});
            unit_trials += counts.trials;
        }
        const auto done_at = std::chrono::steady_clock::now();
        msg.busy_us = microsSince(dispatch_at, done_at);
        if (!failure.empty()) {
            failUnit(u, failure);
            continue;
        }
        if (completeUnit(u, msg, dispatch_at, done_at)) {
            std::lock_guard<std::mutex> lock(d.state_mutex);
            d.fallback_shards += unit.task_count;
        }
    }
}

void
FleetDispatch::noteWorkerLost()
{
    impl_->workers_lost.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().add(fleetMetricIds().workers_lost);
    impl_->journalAppend("host_lost");
}

void
FleetDispatch::noteWorkerTimeout()
{
    impl_->worker_timeouts.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().add(fleetMetricIds().worker_timeouts);
    impl_->journalAppend("timeout");
}

void
FleetDispatch::noteHeartbeatExpiry()
{
    impl_->heartbeat_expiries.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().add(fleetMetricIds().heartbeat_expiries);
    impl_->journalAppend("expiry");
}

void
FleetDispatch::noteAgentConnected()
{
    impl_->agents_connected.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().add(fleetMetricIds().agents_connected);
}

void
FleetDispatch::noteAuthFailure()
{
    impl_->auth_failures.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().add(fleetMetricIds().auth_failures);
    impl_->journalAppend("auth_fail");
}

void
FleetDispatch::registerHost(int worker, const std::string& label,
                            bool remote)
{
    Impl& d = *impl_;
    std::lock_guard<std::mutex> lock(d.state_mutex);
    Impl::HostSlot slot;
    slot.worker = worker;
    slot.label = label;
    slot.remote = remote;
    slot.config_sent_at = std::chrono::steady_clock::now();
    slot.config_sent_trace_us = obs::traceNowUs();
    d.hosts.push_back(std::move(slot));
    d.journalAppend("connect", {{"host", label}},
                    {{"remote", std::uint64_t{remote ? 1u : 0u}}});
}

void
FleetDispatch::noteUnitDispatched(std::uint64_t u, int worker)
{
    Impl& d = *impl_;
    if (!d.journal)
        return;
    std::lock_guard<std::mutex> lock(d.state_mutex);
    d.journalAppend("dispatch",
                    {{"host", d.hostLabelLocked(worker)}},
                    {{"unit", u}});
}

void
FleetDispatch::absorbTelemetry(const WorkerMessage& msg)
{
    Impl& d = *impl_;
    std::lock_guard<std::mutex> lock(d.state_mutex);
    Impl::HostSlot* slot = d.slotForLocked(msg.worker);
    if (slot == nullptr)
        return;
    for (const auto& [name, value] : msg.counters) {
        auto it = std::find_if(
            slot->counters.begin(), slot->counters.end(),
            [&](const auto& c) { return c.first == name; });
        if (it == slot->counters.end())
            slot->counters.emplace_back(name, value);
        else
            it->second += value;
    }
    slot->spans.insert(slot->spans.end(), msg.spans.begin(),
                       msg.spans.end());
    d.clockSampleLocked(*slot, msg.now_us);
}

void
FleetDispatch::noteHeartbeat(int worker, std::uint64_t now_us)
{
    if (now_us == 0)
        return;
    Impl& d = *impl_;
    std::lock_guard<std::mutex> lock(d.state_mutex);
    if (Impl::HostSlot* slot = d.slotForLocked(worker))
        d.clockSampleLocked(*slot, now_us);
}

void
FleetDispatch::journalEvent(const std::string& event,
                            const obs::EventJournal::Fields& fields,
                            const obs::EventJournal::Nums& nums)
{
    impl_->journalAppend(event, fields, nums);
}

DispatchStatus
FleetDispatch::status() const
{
    Impl& d = *impl_;
    DispatchStatus s;
    s.units_total = units_.size();
    s.units_resumed = units_.size() - initial_pending_;
    const std::uint64_t live =
        d.units_settled_live.load(std::memory_order_acquire);
    s.units_settled = s.units_resumed + live;
    s.shards_total = d.tasks.size();
    s.shards_done = d.shards_done.load(std::memory_order_relaxed);
    s.trials_done = d.trials_done.load(std::memory_order_relaxed);
    s.queue_depth = d.queue->sizeApprox();
    const std::uint64_t pending =
        d.remaining.load(std::memory_order_acquire);
    s.units_in_flight =
        pending > s.queue_depth ? pending - s.queue_depth : 0;
    s.requeues = d.requeues.load(std::memory_order_relaxed);
    s.poisoned = d.poisoned.load(std::memory_order_relaxed);
    s.duplicates = d.duplicates.load(std::memory_order_relaxed);
    s.workers_lost = d.workers_lost.load(std::memory_order_relaxed);
    s.worker_timeouts =
        d.worker_timeouts.load(std::memory_order_relaxed);
    s.heartbeat_expiries =
        d.heartbeat_expiries.load(std::memory_order_relaxed);
    s.agents_connected =
        d.agents_connected.load(std::memory_order_relaxed);
    s.auth_failures = d.auth_failures.load(std::memory_order_relaxed);
    if (d.started) {
        s.elapsed_seconds = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() -
                                d.start_at)
                                .count();
        if (s.elapsed_seconds > 0.0 && live > 0) {
            s.units_per_second =
                static_cast<double>(live) / s.elapsed_seconds;
            s.eta_seconds =
                static_cast<double>(pending) / s.units_per_second;
        }
    }
    std::lock_guard<std::mutex> lock(d.state_mutex);
    s.hosts.reserve(d.hosts.size());
    for (const Impl::HostSlot& slot : d.hosts) {
        HostStatus h;
        h.worker = slot.worker;
        h.label = slot.label;
        h.remote = slot.remote;
        h.units = slot.units;
        h.shards = slot.shards;
        h.trials = slot.trials;
        h.busy_us = slot.busy_us;
        s.hosts.push_back(std::move(h));
    }
    return s;
}

CampaignResult
FleetDispatch::finalize(int workers,
                        std::vector<obs::FleetWorkerRecord> records)
{
    Impl& d = *impl_;
    const FleetMetricIds& mid = fleetMetricIds();
    obs::MetricsRegistry& reg = obs::metrics();
    CampaignResult& result = d.result;

    const auto stop = std::chrono::steady_clock::now();
    result.seconds = d.started
                         ? std::chrono::duration<double>(stop -
                                                         d.start_at)
                               .count()
                         : 0.0;
    result.cpu_seconds = d.started
                             ? obs::processCpuSeconds() +
                                   obs::processChildrenCpuSeconds() -
                                   d.cpu_start
                             : 0.0;
    if (d.progress)
        d.progress->stop();
    d.evaluate_span.reset();
    result.interrupted = interruptRequested();

    // Per-scheme timings (host-side busy time, parent-side wall
    // span), plus the synthetic per-scheme trace spans the in-process
    // runner emits.
    for (std::size_t s = 0; s < d.schemes.size(); ++s) {
        const SchemeAgg& agg = d.scheme_aggs[s];
        obs::SchemeTiming timing;
        timing.scheme_id = d.ids[s];
        timing.cpu_seconds = static_cast<double>(agg.busy_us) * 1e-6;
        timing.shards = agg.shards;
        timing.trials = agg.trials;
        const bool ran = agg.first_us != ~std::uint64_t{0} &&
                         agg.last_us > agg.first_us;
        if (ran)
            timing.wall_seconds =
                static_cast<double>(agg.last_us - agg.first_us) * 1e-6;
        result.scheme_timings.push_back(timing);
        if (ran && obs::traceEnabled()) {
            const int tid = 1000 + static_cast<int>(s);
            obs::setTrackName(tid, "scheme " + d.ids[s]);
            obs::emitSpan(
                d.ids[s], "scheme",
                d.trace_eval_start_us + agg.first_us,
                agg.last_us - agg.first_us,
                "\"shards\":" + std::to_string(timing.shards) +
                    ",\"trials\":" + std::to_string(timing.trials),
                tid);
        }
    }

    // Fleet telemetry for reports and the strong-scaling bench.
    result.fleet.workers = workers;
    result.fleet.units = d.units.size();
    result.fleet.unit_shards = d.spec.fleet_unit_shards;
    result.fleet.queue_capacity = d.queue->capacity();
    result.fleet.requeues =
        d.requeues.load(std::memory_order_relaxed);
    result.fleet.workers_lost =
        d.workers_lost.load(std::memory_order_relaxed);
    result.fleet.parent_fallback_shards = d.fallback_shards;
    result.fleet.units_poisoned =
        d.poisoned.load(std::memory_order_relaxed);
    result.fleet.duplicate_results =
        d.duplicates.load(std::memory_order_relaxed);
    result.fleet.worker_timeouts =
        d.worker_timeouts.load(std::memory_order_relaxed);
    result.fleet.heartbeat_expiries =
        d.heartbeat_expiries.load(std::memory_order_relaxed);
    result.fleet.agents_connected =
        d.agents_connected.load(std::memory_order_relaxed);
    result.fleet.auth_failures =
        d.auth_failures.load(std::memory_order_relaxed);
    result.fleet.worker_records = std::move(records);

    if (d.checkpointing) {
        std::lock_guard<std::mutex> lock(d.state_mutex);
        if (Status s = d.flushCheckpoint(); !s.ok()) {
            warn("fleet: final checkpoint write failed: " +
                 s.toString());
        } else if (result.interrupted) {
            inform("fleet: interrupted; " +
                   std::to_string(d.completed_log.size()) + " of " +
                   std::to_string(d.tasks.size()) +
                   " shard tasks checkpointed to " +
                   d.spec.checkpoint_path);
        }
    }

    // Drop failed schemes from the cells and record them — a partial
    // scheme row would read as a measured (wrong) rate.
    if (!d.cell_errors.empty()) {
        std::set<std::string> failed;
        for (const auto& [cell, message] : d.cell_errors) {
            const CampaignCell& c = result.cells[cell];
            if (failed.insert(c.scheme_id).second) {
                warn("fleet: dropping scheme " + c.scheme_id + ": " +
                     message);
                reg.add(mid.schemes_dropped);
                result.errors.push_back(
                    {c.scheme_id,
                     "unavailable: pattern " +
                         patternInfo(c.pattern).label + ": " +
                         message});
            }
        }
        std::erase_if(result.cells, [&](const CampaignCell& c) {
            return failed.count(c.scheme_id) != 0;
        });
    }

    reg.flushThisThread();
    result.metrics = reg.snapshot().since(d.metrics_baseline);

    // Observability-plane merge: replay each host's shipped spans
    // onto its own trace track (rebased from "µs since config
    // receipt" to the parent's trace clock via the minimum-latency
    // offset), and append host-labelled counter series to the
    // campaign metrics. Slots merge by label so a reconnecting agent
    // reports as one host.
    {
        std::lock_guard<std::mutex> lock(d.state_mutex);
        if (obs::traceEnabled()) {
            for (std::size_t i = 0; i < d.hosts.size(); ++i) {
                const Impl::HostSlot& slot = d.hosts[i];
                if (slot.spans.empty())
                    continue;
                const int tid = 2000 + static_cast<int>(i);
                obs::setTrackName(tid, "host " + slot.label);
                const std::int64_t base =
                    static_cast<std::int64_t>(
                        slot.config_sent_trace_us) +
                    (slot.has_offset ? slot.min_offset_us : 0);
                for (const SpanRecord& span : slot.spans) {
                    std::int64_t ts =
                        base + static_cast<std::int64_t>(span.ts_us);
                    if (ts < 0)
                        ts = 0;
                    obs::emitSpan(
                        span.name, span.cat.c_str(),
                        static_cast<std::uint64_t>(ts), span.dur_us,
                        "\"unit\":" + std::to_string(span.unit), tid);
                }
            }
        }

        std::vector<std::string> labels;
        std::map<std::string, Impl::HostSlot> merged;
        for (const Impl::HostSlot& slot : d.hosts) {
            auto [it, fresh] = merged.emplace(slot.label, slot);
            if (fresh) {
                labels.push_back(slot.label);
                continue;
            }
            Impl::HostSlot& into = it->second;
            into.units += slot.units;
            into.shards += slot.shards;
            into.trials += slot.trials;
            into.busy_us += slot.busy_us;
            for (const auto& [name, value] : slot.counters) {
                auto found = std::find_if(
                    into.counters.begin(), into.counters.end(),
                    [&](const auto& c) { return c.first == name; });
                if (found == into.counters.end())
                    into.counters.emplace_back(name, value);
                else
                    found->second += value;
            }
        }
        for (const std::string& label : labels) {
            const Impl::HostSlot& slot = merged.at(label);
            const std::string prefix = "fleet.host." + label + ".";
            result.metrics.counters.push_back(
                {prefix + "units", slot.units});
            result.metrics.counters.push_back(
                {prefix + "shards", slot.shards});
            result.metrics.counters.push_back(
                {prefix + "trials", slot.trials});
            for (const auto& [name, value] : slot.counters)
                result.metrics.counters.push_back(
                    {prefix + name, value});
        }
    }

    d.journalAppend(
        "drain", {},
        {{"settled",
          units_.size() - d.remaining.load(std::memory_order_acquire)},
         {"interrupted",
          std::uint64_t{result.interrupted ? 1u : 0u}}});

    d.campaign_span.reset();
    return std::move(result);
}

} // namespace gpuecc::sim::fleet
