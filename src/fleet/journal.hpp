/**
 * @file
 * Fleet event-journal reader: parse, validate, and summarize the
 * NDJSON journal obs::EventJournal writes (--journal FILE).
 *
 * The reader is the post-mortem half of the observability plane: it
 * proves the journal is complete (schema version on every line,
 * consecutive sequence numbers — a gap means lost events), rebuilds
 * the campaign timeline, and derives per-host activity and
 * dispatch→result latency histograms. tools/fleet_journal is a thin
 * CLI over these functions; tests drive them directly so the logic is
 * covered without process plumbing.
 */

#ifndef GPUECC_FLEET_JOURNAL_HPP
#define GPUECC_FLEET_JOURNAL_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace gpuecc::sim::fleet {

/** One parsed journal line. */
struct JournalEvent
{
    std::uint64_t seq = 0;
    std::uint64_t ts_us = 0; //!< µs since journal open
    std::string event;       //!< "connect", "dispatch", "result", ...
    std::vector<std::pair<std::string, std::string>> strings;
    std::vector<std::pair<std::string, std::uint64_t>> numbers;

    /** Numeric field lookup with a fallback. */
    std::uint64_t num(const std::string& key,
                      std::uint64_t fallback = 0) const;

    /** String field lookup; empty string when absent. */
    std::string str(const std::string& key) const;
};

/**
 * Parse a whole journal file's text. Structured errors on a
 * non-object line, a wrong schema version, or a sequence gap — the
 * journal is append-only with consecutive "seq", so any gap is
 * evidence of lost events, not tolerable noise.
 */
Result<std::vector<JournalEvent>>
parseJournal(const std::string& text);

/** Per-host activity reconstructed from dispatch/result events. */
struct JournalHostSummary
{
    std::string host; //!< host label ("alpha", "local-0", "parent")
    std::uint64_t connects = 0;
    std::uint64_t dispatches = 0;
    std::uint64_t results = 0;
    /** Dispatch→result latency over this host's settled units. */
    std::uint64_t latency_count = 0;
    std::uint64_t latency_total_us = 0;
    std::uint64_t latency_max_us = 0;
};

/** Everything a post-mortem wants in one pass over the events. */
struct JournalSummary
{
    std::uint64_t events = 0;
    std::uint64_t first_ts_us = 0;
    std::uint64_t last_ts_us = 0;

    /** From the "start" event (0 when the journal lost its head). */
    std::uint64_t units_total = 0;
    std::uint64_t units_pending = 0;
    std::uint64_t units_resumed = 0;

    /** Unit-settlement counts, by disposition. */
    std::uint64_t results = 0;
    std::uint64_t unit_errors = 0;
    std::uint64_t poisoned = 0;
    std::uint64_t skipped = 0;
    /** results + unit_errors + poisoned + skipped + units_resumed. */
    std::uint64_t unitsSettled() const;

    std::uint64_t duplicates = 0;
    std::uint64_t requeues = 0;
    std::uint64_t expiries = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t hosts_lost = 0;
    std::uint64_t connects = 0;
    std::uint64_t auth_failures = 0;
    std::uint64_t fallbacks = 0;
    bool drained = false;
    bool interrupted = false;

    /** Event name → count, in first-appearance order. */
    std::vector<std::pair<std::string, std::uint64_t>> event_counts;

    /** Per-host activity, in first-appearance order. */
    std::vector<JournalHostSummary> hosts;

    /** Dispatch→result latency histogram (inclusive µs bounds). */
    std::vector<std::uint64_t> latency_bounds;
    /** bounds.size() + 1 buckets; the last is overflow. */
    std::vector<std::uint64_t> latency_buckets;
};

/** One pass over parsed events; never fails (unknown events count). */
JournalSummary
summarizeJournal(const std::vector<JournalEvent>& events);

/** The timeline, one readable line per event. */
std::string
formatJournalTimeline(const std::vector<JournalEvent>& events);

/** The summary as a readable report (hosts, latencies, dispositions). */
std::string formatJournalSummary(const JournalSummary& summary);

} // namespace gpuecc::sim::fleet

#endif // GPUECC_FLEET_JOURNAL_HPP
