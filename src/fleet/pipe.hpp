/**
 * @file
 * Forked pipe-worker plumbing shared by the two fleet transports.
 *
 * Both the classic pipe dispatcher (fleet/fleet.cpp) and the socket
 * campaign service (net/service.cpp, which keeps local standby
 * workers as its first degradation rung) drive forked single-threaded
 * worker processes the same way: fork before any thread exists, send
 * the config line at fork time, then run one liaison thread per
 * worker that claims units from the FleetDispatch and round-trips
 * them over the pipe pair. These helpers are that shared plumbing.
 */

#ifndef GPUECC_FLEET_PIPE_HPP
#define GPUECC_FLEET_PIPE_HPP

#include <memory>
#include <thread>
#include <vector>

#include "common/subprocess.hpp"
#include "fleet/dispatch.hpp"
#include "obs/manifest.hpp"

namespace gpuecc::sim::fleet {

/** One forked worker process plus its parent-side liaison state. */
struct PipeWorker
{
    ChildProcess child;
    std::unique_ptr<LineReader> reader;
    obs::FleetWorkerRecord record;
    bool spawned = false;
    std::thread thread;
};

/**
 * Fork worker @p w and send its config line. Appends the child's pipe
 * fds to @p inherited_fds (later children close them); callers add
 * any other fds a child must not inherit — a listening socket, say —
 * before the first spawn. On failure the worker is marked lost, never
 * fatal. Must run while the process is single-threaded (fork safety).
 */
void spawnPipeWorker(FleetDispatch& dispatch, PipeWorker& worker,
                     int w, std::vector<int>& inherited_fds);

/**
 * Liaison loop: claim units, round-trip them over @p worker's pipes,
 * settle them via the dispatcher. Returns when the campaign settles,
 * an interrupt is requested, or the worker dies / breaks protocol
 * (in-flight unit requeued, worker retired and reaped). Runs on its
 * own thread; call dispatch.start() before the first liaison starts.
 * @p deadline_ms bounds each unit round-trip (<= 0: no deadline).
 */
void runPipeLiaison(FleetDispatch& dispatch, PipeWorker& worker,
                    int deadline_ms);

/** Close the pipes and reap a surviving worker (lost ones already
    were, at retirement). */
void reapPipeWorker(PipeWorker& worker);

} // namespace gpuecc::sim::fleet

#endif // GPUECC_FLEET_PIPE_HPP
