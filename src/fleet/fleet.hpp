/**
 * @file
 * Fleet-scale campaign execution: multi-process dispatch with a
 * bit-identical merge.
 *
 * runFleetCampaign is the process-level sibling of the in-process
 * campaign runner: it decomposes the same deterministic task plan
 * into self-describing work units (contiguous shard ranges of one
 * (scheme, pattern) cell), pushes them through a bounded lock-free
 * MPMC queue, and feeds them to N forked single-threaded worker
 * processes over pipes. One liaison thread per worker pops units,
 * round-trips them over the worker's pipe pair, validates the
 * returned checkpoint-format tallies with the resume validator, and
 * merges them with the same overflow-checked OutcomeCounts merge the
 * thread pool uses — so per-cell tallies (and the CSV report) are
 * bit-identical to a single-process run of the same spec.
 *
 * Fault model: a worker that dies or breaks protocol mid-unit is
 * retired and its in-flight unit is re-queued for a surviving worker
 * — the same "completed units are facts, in-flight work is re-done"
 * contract as checkpoint resume. If every worker is lost, the parent
 * finishes the remaining units in-process rather than failing the
 * campaign. Checkpointing, resume, SIGINT draining, and the chaos
 * harness all compose with fleet mode.
 */

#ifndef GPUECC_FLEET_FLEET_HPP
#define GPUECC_FLEET_FLEET_HPP

#include "common/status.hpp"
#include "sim/campaign.hpp"

namespace gpuecc::sim::fleet {

/**
 * Execute @p spec across spec.fleet_workers forked worker processes.
 * Called by CampaignRunner::tryRun when fleet_workers > 0 — call
 * sites should go through the runner, which validates the spec.
 * Must be invoked while the process is single-threaded (fork safety);
 * reports unavailable on platforms without fork/pipe.
 */
Result<CampaignResult> runFleetCampaign(const CampaignSpec& spec);

} // namespace gpuecc::sim::fleet

#endif // GPUECC_FLEET_FLEET_HPP
