/**
 * @file
 * Transport-independent fleet dispatch core.
 *
 * FleetDispatch owns everything about a fleet campaign that does not
 * depend on *how* work units travel: the deterministic task plan and
 * its fingerprint, the unit queue, resume restore, checkpoint
 * flushing, per-cell tallies, per-scheme aggregates, requeue/poison
 * accounting, and result finalization. Transports — the forked-worker
 * pipe dispatcher (fleet/fleet.cpp) and the socket campaign service
 * (net/service.cpp) — are thin liaison loops over this surface:
 * claim a unit, round-trip it to a host, then settle it exactly once
 * via completeUnit / failUnit / requeueUnit.
 *
 * Settlement is idempotent by construction: every unit settles at
 * most once (a mutex-guarded per-unit flag), so a late or duplicated
 * result from a host that was presumed dead is discarded — counted in
 * fleet.duplicate_results — instead of double-merging. That is what
 * makes the merged tallies bit-identical to an in-process run no
 * matter how many hosts died, reconnected, or replayed lines along
 * the way.
 *
 * Requeues are capped (spec.fleet_max_unit_attempts): a poison unit
 * that kills every host it lands on is retired after the cap — its
 * (scheme, pattern) cell fails with the unit's shard range in the
 * message, counted in fleet.units_poisoned — instead of cycling
 * through the whole fleet forever.
 */

#ifndef GPUECC_FLEET_DISPATCH_HPP
#define GPUECC_FLEET_DISPATCH_HPP

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "fleet/protocol.hpp"
#include "obs/journal.hpp"
#include "sim/campaign.hpp"

namespace gpuecc::sim::fleet {

/** How requeueUnit disposed of an in-flight unit. */
enum class RequeueOutcome
{
    requeued, //!< back in the queue for another host
    poisoned, //!< attempt cap hit: cell failed, unit retired
    settled,  //!< a late result settled it first; nothing to do
};

/** One registered host's live accounting (a /status row). */
struct HostStatus
{
    int worker = -1;
    std::string label;
    bool remote = false;
    std::uint64_t units = 0;
    std::uint64_t shards = 0;
    std::uint64_t trials = 0;
    std::uint64_t busy_us = 0;
};

/**
 * One consistent sample of the live campaign, cheap enough to take
 * from an HTTP handler thread mid-run: unit/shard/trial progress,
 * every transport fault counter, throughput and an ETA, and the
 * per-host credit rows. Reading it never touches the tallies or the
 * queue ordering, so sampling cannot perturb determinism.
 */
struct DispatchStatus
{
    std::uint64_t units_total = 0;
    std::uint64_t units_settled = 0; //!< includes resumed units
    std::uint64_t units_resumed = 0;
    std::uint64_t units_in_flight = 0;
    std::uint64_t queue_depth = 0;
    std::uint64_t shards_total = 0;
    std::uint64_t shards_done = 0; //!< includes resumed shards
    std::uint64_t trials_done = 0; //!< evaluated this run
    std::uint64_t requeues = 0;
    std::uint64_t poisoned = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t workers_lost = 0;
    std::uint64_t worker_timeouts = 0;
    std::uint64_t heartbeat_expiries = 0;
    std::uint64_t agents_connected = 0;
    std::uint64_t auth_failures = 0;
    double elapsed_seconds = 0.0;
    double units_per_second = 0.0;
    /** Negative = unknown (nothing settled live yet). */
    double eta_seconds = -1.0;
    std::vector<HostStatus> hosts;
};

class FleetDispatch
{
  public:
    using Clock = std::chrono::steady_clock;

    /**
     * Build the plan: resolve schemes (skipping broken ones into
     * result.errors), shard every cell, cut units that never straddle
     * a cell boundary, restore a resume checkpoint. Errors here are
     * unrecoverable setup problems (no usable scheme, corrupt or
     * mismatched checkpoint). Runs on the calling thread; fork any
     * worker processes between create() and start().
     */
    static Result<std::unique_ptr<FleetDispatch>>
    create(const CampaignSpec& spec);

    ~FleetDispatch();

    /** @name Plan facts (immutable after create) */
    ///@{
    const std::string& fingerprint() const { return fingerprint_; }
    std::size_t unitCount() const { return units_.size(); }
    const WorkUnit& unit(std::uint64_t u) const { return units_[u]; }
    /** Units not settled by resume restore at create() time. */
    std::uint64_t initialPendingUnits() const { return initial_pending_; }
    /** The config line payload for one worker/agent. */
    FleetConfig configFor(int worker) const;
    /** Human label of a unit's cell, e.g. "rs-dueh/two_bit_row". */
    std::string unitLabel(std::uint64_t u) const;
    ///@}

    /**
     * Start the clocks and the progress reporter. Call exactly once,
     * after every fork (the reporter owns a thread) and before any
     * liaison thread touches the dispatcher.
     */
    void start();

    /** Whether every unit has settled (the campaign is done). */
    bool allSettled() const;

    /**
     * Pop the next dispatchable unit. Units whose cell already failed
     * are settled-and-skipped internally; units settled by a late
     * result are dropped. Returns false when the queue is empty —
     * which, while !allSettled(), means other liaisons hold the last
     * units in flight (stay subscribed: they may come back).
     */
    bool tryClaim(std::uint64_t& u);

    /**
     * Validate a decoded result message against the dispatched unit
     * and the plan (fingerprint, entry range, per-entry tallies) —
     * the same validator checkpoint resume uses.
     */
    Status validateResult(std::uint64_t u,
                          const WorkerMessage& msg) const;

    /**
     * Merge a validated result and settle the unit. Returns false if
     * the unit was already settled — a late or duplicated delivery,
     * counted in fleet.duplicate_results, tallies untouched.
     */
    bool completeUnit(std::uint64_t u, const WorkerMessage& msg,
                      Clock::time_point dispatch_at,
                      Clock::time_point done_at);

    /**
     * Settle a unit whose cell failed persistently inside a host
     * (unit_error line): the scheme is dropped at finalize, the
     * campaign continues.
     */
    void failUnit(std::uint64_t u, const std::string& message);

    /**
     * Put an in-flight unit back after its host died, hung, or broke
     * protocol. @p why feeds the poison message when the attempt cap
     * (spec.fleet_max_unit_attempts) is reached.
     */
    RequeueOutcome requeueUnit(std::uint64_t u, const std::string& why);

    /**
     * Serve every still-pending unit on the calling thread — the
     * last-resort degradation when no worker or agent is left.
     * Respects interrupts; failures fail cells, never the campaign.
     */
    void finishInProcess();

    /** @name Transport telemetry (fleet.* counters + timing.fleet) */
    ///@{
    void noteWorkerLost();
    void noteWorkerTimeout();
    void noteHeartbeatExpiry();
    void noteAgentConnected();
    void noteAuthFailure();
    ///@}

    /** @name Observability plane */
    ///@{

    /**
     * Register a host connection — a forked pipe worker, an
     * authenticated remote agent, or the in-process fallback. Call at
     * config-send time: the instant is captured on both the steady
     * and trace clocks and becomes the reference every span timestamp
     * the host later ships is rebased against (a host's clock reads
     * "µs since it received the config"). Journals the connect.
     */
    void registerHost(int worker, const std::string& label,
                      bool remote);

    /** Journal one unit dispatch (host looked up by @p worker). */
    void noteUnitDispatched(std::uint64_t u, int worker);

    /**
     * Merge one telemetry line from a host: shipped counter deltas
     * accumulate under the host's slot (surfaced at finalize as
     * fleet.host.<label>.<name> series), completed spans queue for
     * replay onto the host's trace track, and now_us contributes a
     * clock-offset sample. Hosts ship telemetry *before* the result
     * it accompanies, so absorbing is always safe pre-settlement and
     * never double-counts: the counters are deltas, shipped once.
     */
    void absorbTelemetry(const WorkerMessage& msg);

    /**
     * A heartbeat's now_us as a clock-offset sample (0 = heartbeat
     * from an older worker; ignored). More samples tighten the
     * minimum-latency offset estimate used for span rebasing.
     */
    void noteHeartbeat(int worker, std::uint64_t now_us);

    /** Append one event to the journal (no-op without --journal). */
    void journalEvent(const std::string& event,
                      const obs::EventJournal::Fields& fields = {},
                      const obs::EventJournal::Nums& nums = {});

    /** Sample the live state — the /status and /metrics source. */
    DispatchStatus status() const;

    ///@}

    /**
     * Stop the clocks, flush the final checkpoint, drop failed
     * schemes, fill timing.fleet, and return the campaign result.
     * @p workers is the dispatch width for telemetry; @p records the
     * per-host audit trail. Call once, after all liaisons joined.
     */
    CampaignResult
    finalize(int workers, std::vector<obs::FleetWorkerRecord> records);

  private:
    FleetDispatch() = default;

    struct Impl;
    std::unique_ptr<Impl> impl_;
    std::string fingerprint_;
    std::vector<WorkUnit> units_;
    std::uint64_t initial_pending_ = 0;
};

} // namespace gpuecc::sim::fleet

#endif // GPUECC_FLEET_DISPATCH_HPP
