#include "fleet/protocol.hpp"

#include "sim/json.hpp"
#include "sim/report.hpp"

namespace gpuecc::sim::fleet {

namespace {

/** Fetch a required uint64 member. */
Result<std::uint64_t>
getUint(const JsonValue& root, const std::string& key)
{
    Result<const JsonValue*> member = root.get(key);
    if (!member.ok())
        return member.status();
    return member.value()->asUint64();
}

/** Fetch a required string member. */
Result<std::string>
getString(const JsonValue& root, const std::string& key)
{
    Result<const JsonValue*> member = root.get(key);
    if (!member.ok())
        return member.status();
    return member.value()->asString();
}

/** Parse one line and check its "type" tag. */
Result<JsonValue>
parseLine(const std::string& line, const std::string& expect_type)
{
    Result<JsonValue> doc = parseJson(line);
    if (!doc.ok()) {
        return Status::dataLoss("fleet protocol line: " +
                                doc.status().message());
    }
    if (!doc.value().isObject())
        return Status::dataLoss("fleet protocol line is not an object");
    Result<std::string> type = getString(doc.value(), "type");
    if (!type.ok())
        return type.status();
    if (!expect_type.empty() && type.value() != expect_type) {
        return Status::dataLoss("fleet protocol: expected a " +
                                expect_type + " line, got " +
                                type.value());
    }
    return doc;
}

} // namespace

std::string
encodeConfigLine(const FleetConfig& config)
{
    JsonWriter w;
    w.beginObject();
    w.kv("type", "config");
    w.kv("worker", config.worker);
    w.key("schemes").beginArray();
    for (const std::string& id : config.scheme_ids)
        w.value(id);
    w.endArray();
    w.key("patterns").beginArray();
    for (ErrorPattern p : config.patterns)
        w.value(static_cast<std::uint64_t>(p));
    w.endArray();
    w.kv("samples", config.samples);
    w.kv("seed", config.seed);
    w.kv("chunk", config.chunk);
    w.kv("fingerprint", config.fingerprint);
    w.kv("codec_backend", config.codec_backend);
    w.endObject();
    return w.str() + "\n";
}

Result<FleetConfig>
decodeConfigLine(const std::string& line)
{
    Result<JsonValue> doc = parseLine(line, "config");
    if (!doc.ok())
        return doc.status();
    const JsonValue& root = doc.value();

    FleetConfig out;
    Result<std::uint64_t> worker = getUint(root, "worker");
    if (!worker.ok())
        return worker.status();
    out.worker = static_cast<int>(worker.value());

    Result<const JsonValue*> schemes = root.get("schemes");
    if (!schemes.ok())
        return schemes.status();
    if (!schemes.value()->isArray())
        return Status::dataLoss("fleet config: schemes not an array");
    for (const JsonValue& id : schemes.value()->elements()) {
        Result<std::string> s = id.asString();
        if (!s.ok())
            return s.status();
        out.scheme_ids.push_back(s.value());
    }

    Result<const JsonValue*> patterns = root.get("patterns");
    if (!patterns.ok())
        return patterns.status();
    if (!patterns.value()->isArray())
        return Status::dataLoss("fleet config: patterns not an array");
    const std::size_t pattern_count = allErrorPatterns().size();
    for (const JsonValue& p : patterns.value()->elements()) {
        Result<std::uint64_t> v = p.asUint64();
        if (!v.ok())
            return v.status();
        if (v.value() >= pattern_count) {
            return Status::dataLoss(
                "fleet config: pattern id " +
                std::to_string(v.value()) + " out of range");
        }
        out.patterns.push_back(static_cast<ErrorPattern>(v.value()));
    }

    Result<std::uint64_t> samples = getUint(root, "samples");
    Result<std::uint64_t> seed = getUint(root, "seed");
    Result<std::uint64_t> chunk = getUint(root, "chunk");
    if (!samples.ok())
        return samples.status();
    if (!seed.ok())
        return seed.status();
    if (!chunk.ok())
        return chunk.status();
    out.samples = samples.value();
    out.seed = seed.value();
    out.chunk = chunk.value();

    Result<std::string> fingerprint = getString(root, "fingerprint");
    Result<std::string> backend = getString(root, "codec_backend");
    if (!fingerprint.ok())
        return fingerprint.status();
    if (!backend.ok())
        return backend.status();
    out.fingerprint = fingerprint.value();
    out.codec_backend = backend.value();
    return out;
}

std::string
encodeUnitLine(const WorkUnit& unit)
{
    JsonWriter w;
    w.beginObject();
    w.kv("type", "unit");
    w.kv("unit", unit.unit);
    w.kv("first", unit.first_task);
    w.kv("count", unit.task_count);
    w.endObject();
    return w.str() + "\n";
}

Result<WorkUnit>
decodeUnitLine(const std::string& line)
{
    Result<JsonValue> doc = parseLine(line, "unit");
    if (!doc.ok())
        return doc.status();
    WorkUnit out;
    Result<std::uint64_t> unit = getUint(doc.value(), "unit");
    Result<std::uint64_t> first = getUint(doc.value(), "first");
    Result<std::uint64_t> count = getUint(doc.value(), "count");
    if (!unit.ok())
        return unit.status();
    if (!first.ok())
        return first.status();
    if (!count.ok())
        return count.status();
    out.unit = unit.value();
    out.first_task = first.value();
    out.task_count = count.value();
    if (out.task_count == 0)
        return Status::dataLoss("fleet unit: empty task range");
    return out;
}

std::string
encodeResultLine(const WorkerMessage& result)
{
    JsonWriter w;
    w.beginObject();
    w.kv("type", "result");
    w.kv("unit", result.unit);
    w.kv("worker", result.worker);
    w.kv("busy_us", result.busy_us);
    w.key("checkpoint");
    writeCheckpointJson(w, result.checkpoint);
    w.endObject();
    return w.str() + "\n";
}

std::string
encodeUnitErrorLine(std::uint64_t unit, int worker,
                    const std::string& message)
{
    JsonWriter w;
    w.beginObject();
    w.kv("type", "unit_error");
    w.kv("unit", unit);
    w.kv("worker", worker);
    w.kv("message", message);
    w.endObject();
    return w.str() + "\n";
}

std::string
encodeWorkerErrorLine(int worker, const std::string& message)
{
    JsonWriter w;
    w.beginObject();
    w.kv("type", "worker_error");
    w.kv("worker", worker);
    w.kv("message", message);
    w.endObject();
    return w.str() + "\n";
}

std::string
encodeChallengeLine(const std::string& nonce_hex)
{
    JsonWriter w;
    w.beginObject();
    w.kv("type", "challenge");
    w.kv("nonce", nonce_hex);
    w.endObject();
    return w.str() + "\n";
}

Result<std::string>
decodeChallengeLine(const std::string& line)
{
    Result<JsonValue> doc = parseLine(line, "challenge");
    if (!doc.ok())
        return doc.status();
    return getString(doc.value(), "nonce");
}

std::string
encodeAuthLine(const std::string& agent, const std::string& mac_hex)
{
    JsonWriter w;
    w.beginObject();
    w.kv("type", "auth");
    w.kv("agent", agent);
    w.kv("mac", mac_hex);
    w.endObject();
    return w.str() + "\n";
}

Result<AuthRequest>
decodeAuthLine(const std::string& line)
{
    Result<JsonValue> doc = parseLine(line, "auth");
    if (!doc.ok())
        return doc.status();
    AuthRequest out;
    Result<std::string> agent = getString(doc.value(), "agent");
    Result<std::string> mac = getString(doc.value(), "mac");
    if (!agent.ok())
        return agent.status();
    if (!mac.ok())
        return mac.status();
    out.agent = agent.value();
    out.mac = mac.value();
    return out;
}

std::string
encodeWelcomeLine(int worker, const std::string& mac_hex)
{
    JsonWriter w;
    w.beginObject();
    w.kv("type", "welcome");
    w.kv("worker", worker);
    w.kv("mac", mac_hex);
    w.endObject();
    return w.str() + "\n";
}

std::string
encodeAuthErrorLine(const std::string& message)
{
    JsonWriter w;
    w.beginObject();
    w.kv("type", "auth_error");
    w.kv("message", message);
    w.endObject();
    return w.str() + "\n";
}

Result<Welcome>
decodeWelcomeLine(const std::string& line)
{
    Result<JsonValue> doc = parseLine(line, "");
    if (!doc.ok())
        return doc.status();
    const JsonValue& root = doc.value();
    const std::string type =
        getString(root, "type").value(); // parseLine validated it
    if (type == "auth_error") {
        Result<std::string> message = getString(root, "message");
        return Status::failedPrecondition(
            "fleet auth rejected: " +
            (message.ok() ? message.value() : std::string("(no detail)")));
    }
    if (type != "welcome") {
        return Status::dataLoss("fleet handshake: expected a welcome "
                                "line, got " +
                                type);
    }
    Welcome out;
    Result<std::uint64_t> worker = getUint(root, "worker");
    Result<std::string> mac = getString(root, "mac");
    if (!worker.ok())
        return worker.status();
    if (!mac.ok())
        return mac.status();
    out.worker = static_cast<int>(worker.value());
    out.mac = mac.value();
    return out;
}

std::string
encodeHeartbeatLine(int worker, std::uint64_t now_us)
{
    JsonWriter w;
    w.beginObject();
    w.kv("type", "heartbeat");
    w.kv("worker", worker);
    if (now_us != 0)
        w.kv("now_us", now_us);
    w.endObject();
    return w.str() + "\n";
}

std::string
encodeTelemetryLine(const WorkerMessage& telemetry)
{
    JsonWriter w;
    w.beginObject();
    w.kv("type", "telemetry");
    w.kv("worker", telemetry.worker);
    w.kv("now_us", telemetry.now_us);
    w.key("counters").beginArray();
    for (const auto& counter : telemetry.counters) {
        w.beginObject();
        w.kv("k", counter.first);
        w.kv("v", counter.second);
        w.endObject();
    }
    w.endArray();
    w.key("spans").beginArray();
    for (const SpanRecord& span : telemetry.spans) {
        w.beginObject();
        w.kv("n", span.name);
        w.kv("c", span.cat);
        w.kv("ts", span.ts_us);
        w.kv("d", span.dur_us);
        w.kv("u", span.unit);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str() + "\n";
}

std::string
encodeShutdownLine()
{
    JsonWriter w;
    w.beginObject();
    w.kv("type", "shutdown");
    w.endObject();
    return w.str() + "\n";
}

Result<ServerMessage>
decodeServerLine(const std::string& line)
{
    Result<JsonValue> doc = parseLine(line, "");
    if (!doc.ok())
        return doc.status();
    const std::string type =
        getString(doc.value(), "type").value(); // parseLine validated
    ServerMessage out;
    if (type == "heartbeat") {
        out.kind = ServerMessage::Kind::heartbeat;
        return out;
    }
    if (type == "shutdown") {
        out.kind = ServerMessage::Kind::shutdown;
        return out;
    }
    if (type == "unit") {
        out.kind = ServerMessage::Kind::unit;
        Result<WorkUnit> unit = decodeUnitLine(line);
        if (!unit.ok())
            return unit.status();
        out.unit = unit.value();
        return out;
    }
    return Status::dataLoss("fleet protocol: unknown server line type '" +
                            type + "'");
}

Result<WorkerMessage>
decodeWorkerLine(const std::string& line)
{
    Result<JsonValue> doc = parseLine(line, "");
    if (!doc.ok())
        return doc.status();
    const JsonValue& root = doc.value();
    const std::string type =
        getString(root, "type").value(); // parseLine validated it

    WorkerMessage out;
    Result<std::uint64_t> worker = getUint(root, "worker");
    if (!worker.ok())
        return worker.status();
    out.worker = static_cast<int>(worker.value());

    if (type == "result") {
        out.kind = WorkerMessage::Kind::result;
        Result<std::uint64_t> unit = getUint(root, "unit");
        Result<std::uint64_t> busy = getUint(root, "busy_us");
        if (!unit.ok())
            return unit.status();
        if (!busy.ok())
            return busy.status();
        out.unit = unit.value();
        out.busy_us = busy.value();
        Result<const JsonValue*> ckpt = root.get("checkpoint");
        if (!ckpt.ok())
            return ckpt.status();
        Result<CampaignCheckpoint> parsed = checkpointFromJson(
            *ckpt.value(),
            "worker " + std::to_string(out.worker) + " result");
        if (!parsed.ok())
            return parsed.status();
        out.checkpoint = std::move(parsed).value();
        return out;
    }
    if (type == "unit_error") {
        out.kind = WorkerMessage::Kind::unit_error;
        Result<std::uint64_t> unit = getUint(root, "unit");
        if (!unit.ok())
            return unit.status();
        out.unit = unit.value();
        Result<std::string> message = getString(root, "message");
        if (!message.ok())
            return message.status();
        out.message = message.value();
        return out;
    }
    if (type == "worker_error") {
        out.kind = WorkerMessage::Kind::worker_error;
        Result<std::string> message = getString(root, "message");
        if (!message.ok())
            return message.status();
        out.message = message.value();
        return out;
    }
    if (type == "heartbeat") {
        out.kind = WorkerMessage::Kind::heartbeat;
        // Optional worker clock sample (absent on the pipe transport
        // and on lines from pre-PR-10 agents).
        if (root.get("now_us").ok()) {
            Result<std::uint64_t> now = getUint(root, "now_us");
            if (!now.ok())
                return now.status();
            out.now_us = now.value();
        }
        return out;
    }
    if (type == "telemetry") {
        out.kind = WorkerMessage::Kind::telemetry;
        Result<std::uint64_t> now = getUint(root, "now_us");
        if (!now.ok())
            return now.status();
        out.now_us = now.value();

        Result<const JsonValue*> counters = root.get("counters");
        if (!counters.ok())
            return counters.status();
        if (!counters.value()->isArray())
            return Status::dataLoss(
                "fleet telemetry: counters not an array");
        for (const JsonValue& c : counters.value()->elements()) {
            if (!c.isObject())
                return Status::dataLoss(
                    "fleet telemetry: counter not an object");
            Result<std::string> k = getString(c, "k");
            Result<std::uint64_t> v = getUint(c, "v");
            if (!k.ok())
                return k.status();
            if (!v.ok())
                return v.status();
            out.counters.emplace_back(k.value(), v.value());
        }

        Result<const JsonValue*> spans = root.get("spans");
        if (!spans.ok())
            return spans.status();
        if (!spans.value()->isArray())
            return Status::dataLoss(
                "fleet telemetry: spans not an array");
        for (const JsonValue& s : spans.value()->elements()) {
            if (!s.isObject())
                return Status::dataLoss(
                    "fleet telemetry: span not an object");
            SpanRecord span;
            Result<std::string> name = getString(s, "n");
            Result<std::string> cat = getString(s, "c");
            Result<std::uint64_t> ts = getUint(s, "ts");
            Result<std::uint64_t> dur = getUint(s, "d");
            Result<std::uint64_t> unit = getUint(s, "u");
            if (!name.ok())
                return name.status();
            if (!cat.ok())
                return cat.status();
            if (!ts.ok())
                return ts.status();
            if (!dur.ok())
                return dur.status();
            if (!unit.ok())
                return unit.status();
            span.name = name.value();
            span.cat = cat.value();
            span.ts_us = ts.value();
            span.dur_us = dur.value();
            span.unit = unit.value();
            out.spans.push_back(std::move(span));
        }
        return out;
    }
    return Status::dataLoss("fleet protocol: unknown line type '" +
                            type + "'");
}

} // namespace gpuecc::sim::fleet
