/**
 * @file
 * Fleet worker unit-serving loop, shared by pipe workers and agents.
 *
 * A worker is the serving half of the fleet dispatcher: it takes one
 * config line, independently rebuilds the campaign task plan from it,
 * refuses to serve (worker_error) if its re-derived fingerprint
 * differs from the dispatcher's, then evaluates work units until the
 * stream ends. serveFleetUnits is that loop, transport-agnostic: the
 * forked pipe worker (fleetWorkerMain) runs it with EOF as the normal
 * shutdown and no session lines; the socket agent (net/agent) runs it
 * with heartbeats on, a read deadline for dead-server detection, and
 * shutdown lines for graceful drain. Workers are single-threaded on
 * the evaluation path on purpose — fleet parallelism is process-level
 * — which keeps fork() safe and each worker's memory footprint flat
 * (the optional heartbeat thread only writes liveness lines).
 */

#ifndef GPUECC_FLEET_WORKER_HPP
#define GPUECC_FLEET_WORKER_HPP

#include <functional>
#include <string>

#include "common/status.hpp"
#include "common/subprocess.hpp"
#include "fleet/protocol.hpp"

namespace gpuecc::sim::fleet {

/** Exit code: the pipe protocol broke (unreadable/unwritable). */
constexpr int kWorkerProtocolExit = 3;

/** Exit code: setup failed (bad config, plan fingerprint mismatch). */
constexpr int kWorkerSetupExit = 4;

/** How a serveFleetUnits session ended. */
enum class ServeEnd
{
    eof,      //!< dispatcher closed the stream (pipe-mode shutdown)
    shutdown, //!< dispatcher sent a shutdown line (graceful drain)
    silent,   //!< read deadline expired: the dispatcher went quiet
    protocol, //!< unreadable/unwritable stream or a garbage line
    setup,    //!< config didn't check out (fingerprint mismatch, ...)
};

/** Knobs distinguishing the pipe worker from the socket agent. */
struct ServeOptions
{
    /** Decode session lines (heartbeat/shutdown), not just units. */
    bool session_lines = false;
    /** Send heartbeat lines from a background thread. */
    bool heartbeats = false;
    int heartbeat_interval_ms = 2000;
    /** Max wire silence before ServeEnd::silent; -1 blocks forever. */
    int read_deadline_ms = -1;
};

/** Sink for one '\n'-terminated protocol line. */
using WriteLineFn = std::function<Status(const std::string&)>;

/**
 * Serve work units for @p cfg from @p in, replying through
 * @p write_line, until the stream ends. Rebuilds and fingerprints the
 * plan first (ServeEnd::setup on mismatch, after a worker_error
 * line). Writes — results and heartbeats — are serialized internally,
 * so @p write_line needs no locking of its own.
 */
ServeEnd serveFleetUnits(const FleetConfig& cfg, LineReader& in,
                         const WriteLineFn& write_line,
                         const ServeOptions& opts);

/**
 * Child-process main loop: serve work units over the pipe pair until
 * EOF on @p read_fd. Returns the process exit code (0 on a normal
 * EOF shutdown). Runs in a forked child — it must not assume any
 * parent thread state and reports every failure as a protocol line
 * before exiting, never via fatal().
 */
int fleetWorkerMain(int read_fd, int write_fd);

} // namespace gpuecc::sim::fleet

#endif // GPUECC_FLEET_WORKER_HPP
