/**
 * @file
 * Fleet worker process entry point.
 *
 * A worker is the child half of the fleet dispatcher: it reads one
 * config line, independently rebuilds the campaign task plan from it,
 * refuses to serve (worker_error) if its re-derived fingerprint
 * differs from the parent's, then evaluates work units until the
 * parent closes the pipe (EOF is the normal shutdown). Each unit's
 * tallies travel back as a checkpoint document, so the parent
 * validates them with the same code that validates a resume. Workers
 * are single-threaded on purpose — fleet parallelism is process-level
 * — which keeps fork() safe and each worker's memory footprint flat.
 */

#ifndef GPUECC_FLEET_WORKER_HPP
#define GPUECC_FLEET_WORKER_HPP

namespace gpuecc::sim::fleet {

/** Exit code: the pipe protocol broke (unreadable/unwritable). */
constexpr int kWorkerProtocolExit = 3;

/** Exit code: setup failed (bad config, plan fingerprint mismatch). */
constexpr int kWorkerSetupExit = 4;

/**
 * Child-process main loop: serve work units over the pipe pair until
 * EOF on @p read_fd. Returns the process exit code (0 on a normal
 * EOF shutdown). Runs in a forked child — it must not assume any
 * parent thread state and reports every failure as a protocol line
 * before exiting, never via fatal().
 */
int fleetWorkerMain(int read_fd, int write_fd);

} // namespace gpuecc::sim::fleet

#endif // GPUECC_FLEET_WORKER_HPP
