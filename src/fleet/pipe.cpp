#include "fleet/pipe.hpp"

#include <chrono>
#include <string>

#include "common/interrupt.hpp"
#include "common/log.hpp"
#include "fleet/protocol.hpp"
#include "fleet/worker.hpp"

namespace gpuecc::sim::fleet {

void
spawnPipeWorker(FleetDispatch& dispatch, PipeWorker& worker, int w,
                std::vector<int>& inherited_fds)
{
    worker.record.worker = w;
    Result<ChildProcess> child = spawnChild(
        [](int read_fd, int write_fd) {
            return fleetWorkerMain(read_fd, write_fd);
        },
        inherited_fds);
    if (!child.ok()) {
        warn("fleet: cannot fork worker " + std::to_string(w) + ": " +
             child.status().toString());
        worker.record.lost = true;
        return;
    }
    worker.child = child.value();
    worker.record.pid = worker.child.pid;
    worker.reader = std::make_unique<LineReader>(
        worker.child.from_child, kMaxWireLineBytes);
    worker.spawned = true;
    inherited_fds.push_back(worker.child.to_child);
    inherited_fds.push_back(worker.child.from_child);

    dispatch.registerHost(w, "local-" + std::to_string(w), false);
    if (Status s = writeAllFd(worker.child.to_child,
                              encodeConfigLine(dispatch.configFor(w)));
        !s.ok()) {
        warn("fleet: worker " + std::to_string(w) +
             " rejected its config: " + s.toString());
        closeFd(worker.child.to_child);
        killChild(worker.child.pid);
        Result<int> exit = waitForExit(worker.child.pid);
        worker.record.exit_code = exit.ok() ? exit.value() : -1;
        closeFd(worker.child.from_child);
        worker.record.lost = true;
        worker.spawned = false;
    }
}

namespace {

/** Reclaim fds, reap the process, record how it went. Called by the
    worker's own liaison thread only. */
void
retireWorker(FleetDispatch& dispatch, PipeWorker& worker,
             const std::string& why)
{
    warn("fleet: losing worker " +
         std::to_string(worker.record.worker) + ": " + why);
    closeFd(worker.child.to_child);
    killChild(worker.child.pid);
    Result<int> exit = waitForExit(worker.child.pid);
    worker.record.exit_code = exit.ok() ? exit.value() : -1;
    closeFd(worker.child.from_child);
    worker.record.lost = true;
    dispatch.noteWorkerLost();
}

} // namespace

void
runPipeLiaison(FleetDispatch& dispatch, PipeWorker& worker,
               int deadline_ms)
{
    PipeWorker& L = worker;
    for (;;) {
        if (interruptRequested() || dispatch.allSettled())
            break;
        std::uint64_t u = 0;
        if (!dispatch.tryClaim(u)) {
            // Another liaison holds the last units in flight; stay
            // subscribed in case its worker dies and the units come
            // back.
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            continue;
        }
        const WorkUnit& unit = dispatch.unit(u);
        dispatch.noteUnitDispatched(u, L.record.worker);

        const auto dispatch_at = std::chrono::steady_clock::now();
        Status sent = writeAllFd(L.child.to_child, encodeUnitLine(unit),
                                 deadline_ms);
        Result<std::string> line =
            sent.ok() ? L.reader->readLine(deadline_ms)
                      : Result<std::string>(sent);
        // Absorb the informational lines that precede a settlement:
        // telemetry (shipped before every result by design) merges
        // into the host's slot, heartbeats — which pipe workers don't
        // send but the shared serving loop can — feed the clock.
        while (line.ok()) {
            Result<WorkerMessage> peek = decodeWorkerLine(line.value());
            if (peek.ok() &&
                peek.value().kind == WorkerMessage::Kind::heartbeat) {
                dispatch.noteHeartbeat(peek.value().worker,
                                       peek.value().now_us);
                line = L.reader->readLine(deadline_ms);
                continue;
            }
            if (peek.ok() &&
                peek.value().kind == WorkerMessage::Kind::telemetry) {
                dispatch.absorbTelemetry(peek.value());
                line = L.reader->readLine(deadline_ms);
                continue;
            }
            break;
        }
        if (!line.ok()) {
            // The worker died, hung past the deadline, or the pipe
            // broke with this unit in flight: put the unit back for a
            // survivor, retire the worker, and end this liaison.
            if (isDeadlineExpired(line.status()))
                dispatch.noteWorkerTimeout();
            dispatch.requeueUnit(u, line.status().toString());
            retireWorker(dispatch, L,
                         "unit " + std::to_string(u) + " in flight: " +
                             line.status().toString());
            return;
        }
        Result<WorkerMessage> decoded = decodeWorkerLine(line.value());
        Status valid = decoded.status();
        if (valid.ok() &&
            decoded.value().kind == WorkerMessage::Kind::result)
            valid = dispatch.validateResult(u, decoded.value());
        if (!valid.ok()) {
            // Protocol corruption is indistinguishable from a
            // compromised worker: requeue and retire.
            dispatch.requeueUnit(u, valid.toString());
            retireWorker(dispatch, L, valid.toString());
            return;
        }

        const WorkerMessage& msg = decoded.value();
        if (msg.kind == WorkerMessage::Kind::worker_error) {
            dispatch.requeueUnit(u, msg.message);
            retireWorker(dispatch, L, msg.message);
            return;
        }
        if (msg.kind == WorkerMessage::Kind::unit_error) {
            // The cell failed persistently inside the worker — the
            // same graceful degradation as in-process: the scheme is
            // dropped, the campaign continues.
            dispatch.failUnit(u, msg.message);
            continue;
        }

        const auto done_at = std::chrono::steady_clock::now();
        if (dispatch.completeUnit(u, msg, dispatch_at, done_at)) {
            L.record.units += 1;
            L.record.shards += unit.task_count;
            for (const CheckpointEntry& e : msg.checkpoint.done)
                L.record.trials += e.counts.trials;
            L.record.busy_seconds +=
                static_cast<double>(msg.busy_us) * 1e-6;
        }
    }
    // Normal liaison end: closing the worker's stdin is the shutdown
    // signal; it exits 0 on the EOF.
    closeFd(L.child.to_child);
}

void
reapPipeWorker(PipeWorker& worker)
{
    if (!worker.spawned || worker.record.lost)
        return;
    closeFd(worker.child.to_child);
    Result<int> exit = waitForExit(worker.child.pid);
    worker.record.exit_code = exit.ok() ? exit.value() : -1;
    closeFd(worker.child.from_child);
}

} // namespace gpuecc::sim::fleet
