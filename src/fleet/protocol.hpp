/**
 * @file
 * Fleet wire protocol: newline-delimited JSON over worker pipes.
 *
 * The dispatcher and its forked workers speak three line kinds. The
 * parent sends one *config* line (the full campaign plan identity:
 * schemes, patterns, samples, seed, effective chunk, fingerprint,
 * codec backend) followed by *unit* lines naming contiguous shard-task
 * ranges; the worker answers each unit with a *result* line whose
 * payload is a checkpoint document — the same serialization and the
 * same validator as the on-disk checkpoint sidecar, so tallies travel
 * through a pipe with exactly the guarantees they have through a file
 * (width checks, per-entry consistency, fingerprint match). Errors
 * come back as structured lines too: a unit_error fails one
 * (scheme, pattern) cell gracefully, a worker_error retires the whole
 * worker and requeues its unit.
 *
 * The socket transport (src/net) speaks the same lines plus a small
 * session layer: a challenge → auth → welcome handshake (HMAC over a
 * server nonce proves both sides hold the shared secret before any
 * plan data moves), *heartbeat* lines in both directions (liveness —
 * a host whose heartbeats stop is retired and its unit requeued), and
 * a *shutdown* line for graceful drain. Every line is bounded by
 * kMaxWireLineBytes at the parser; an oversized line is a structured
 * dataLoss, never unbounded buffer growth.
 */

#ifndef GPUECC_FLEET_PROTOCOL_HPP
#define GPUECC_FLEET_PROTOCOL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "faultsim/patterns.hpp"
#include "sim/checkpoint.hpp"

namespace gpuecc::sim::fleet {

/**
 * Hard cap on one wire line. Generous — a result line carries one
 * checkpoint entry per shard task of its unit — but bounded, so a
 * corrupt or hostile peer cannot grow a read buffer without limit.
 */
constexpr std::size_t kMaxWireLineBytes = std::size_t{64} << 20;

/** Everything a worker needs to rebuild the campaign plan. */
struct FleetConfig
{
    int worker = 0; //!< dense worker index (chaos targets it)
    std::vector<std::string> scheme_ids;
    std::vector<ErrorPattern> patterns;
    std::uint64_t samples = 0;
    std::uint64_t seed = 0;
    /** Effective (block-aligned) chunk — the plan the parent built. */
    std::uint64_t chunk = 0;
    /** campaignFingerprint of the parent's plan; workers re-derive
        and refuse to serve a plan that doesn't match. */
    std::string fingerprint;
    std::string codec_backend; //!< "compiled" or "reference"
};

/**
 * One dispatchable work unit: a contiguous shard-task range within a
 * single (scheme, pattern) cell. `cell` is parent-side bookkeeping
 * (failure isolation) and does not travel on the wire — the worker
 * derives each task's cell from its plan index.
 */
struct WorkUnit
{
    std::uint64_t unit = 0; //!< dense unit index
    std::size_t cell = 0;   //!< parent-side only
    std::uint64_t first_task = 0;
    std::uint64_t task_count = 0;
};

/**
 * One completed worker-side trace span, timestamped on the *worker's*
 * clock as microseconds since that worker received its config line.
 * The server rebases these onto its own trace timeline using the
 * config-send timestamp plus the clock-offset estimate refined by
 * heartbeat `now_us` samples (see DESIGN.md §17).
 */
struct SpanRecord
{
    std::string name; //!< span name ("unit 12", scheme id, ...)
    std::string cat;  //!< trace category ("fleet")
    std::uint64_t ts_us = 0;  //!< start, worker-relative µs
    std::uint64_t dur_us = 0; //!< duration µs
    std::uint64_t unit = 0;   //!< unit index the span covers
};

/** One parsed worker → parent line. */
struct WorkerMessage
{
    enum class Kind
    {
        result,       //!< unit completed; checkpoint holds tallies
        unit_error,   //!< unit's cell failed persistently (message)
        worker_error, //!< worker unusable; message says why
        heartbeat,    //!< liveness beacon (socket transport only)
        telemetry,    //!< metrics delta + finished spans (PR 10)
    };

    Kind kind = Kind::result;
    std::uint64_t unit = 0; //!< result / unit_error
    int worker = 0;
    std::uint64_t busy_us = 0; //!< worker-side evaluation time
    CampaignCheckpoint checkpoint; //!< result only
    std::string message;           //!< error kinds only

    /** @name telemetry / heartbeat payload */
    ///@{
    /** Worker-relative clock sample (µs since config receipt). */
    std::uint64_t now_us = 0;
    /** Monotonic counter deltas since the previous telemetry line. */
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    /** Spans completed since the previous telemetry line. */
    std::vector<SpanRecord> spans;
    ///@}
};

/**
 * One parsed parent → worker line on the socket transport, where the
 * stream carries session-layer lines interleaved with work units.
 * (The pipe transport sends only unit lines and signals completion by
 * closing the pipe, so the plain decodeUnitLine path still serves it.)
 */
struct ServerMessage
{
    enum class Kind
    {
        unit,      //!< a work unit to evaluate
        heartbeat, //!< liveness beacon; refresh the server deadline
        shutdown,  //!< graceful drain: finish nothing more, hang up
    };

    Kind kind = Kind::unit;
    WorkUnit unit; //!< kind == unit only
};

/** Agent's identity + proof from an auth line. */
struct AuthRequest
{
    std::string agent; //!< free-form agent name (for logs)
    std::string mac;   //!< hex HMAC over the server's nonce
};

/** Worker index + server proof from a welcome line. */
struct Welcome
{
    int worker = 0;  //!< dense worker index assigned to this agent
    std::string mac; //!< hex HMAC proving the server holds the secret
};

/** @name Line encoders (each returns one '\n'-terminated line) */
///@{
std::string encodeConfigLine(const FleetConfig& config);
std::string encodeUnitLine(const WorkUnit& unit);
std::string encodeResultLine(const WorkerMessage& result);
std::string encodeUnitErrorLine(std::uint64_t unit, int worker,
                                const std::string& message);
std::string encodeWorkerErrorLine(int worker,
                                  const std::string& message);
std::string encodeChallengeLine(const std::string& nonce_hex);
std::string encodeAuthLine(const std::string& agent,
                           const std::string& mac_hex);
std::string encodeWelcomeLine(int worker, const std::string& mac_hex);
std::string encodeAuthErrorLine(const std::string& message);
/** `now_us` is the worker-relative clock sample used for clock-offset
    refinement; 0 (the pipe transport) means "no sample". */
std::string encodeHeartbeatLine(int worker, std::uint64_t now_us = 0);
std::string encodeTelemetryLine(const WorkerMessage& telemetry);
std::string encodeShutdownLine();
///@}

/** @name Line decoders (structural validation; dataLoss on garbage) */
///@{
Result<FleetConfig> decodeConfigLine(const std::string& line);
Result<WorkUnit> decodeUnitLine(const std::string& line);
Result<WorkerMessage> decodeWorkerLine(const std::string& line);
Result<ServerMessage> decodeServerLine(const std::string& line);
Result<std::string> decodeChallengeLine(const std::string& line);
Result<AuthRequest> decodeAuthLine(const std::string& line);
/** An auth_error line decodes as failedPrecondition (do not retry). */
Result<Welcome> decodeWelcomeLine(const std::string& line);
///@}

} // namespace gpuecc::sim::fleet

#endif // GPUECC_FLEET_PROTOCOL_HPP
