#include "fleet/journal.hpp"

#include <algorithm>
#include <map>

#include "sim/json.hpp"

namespace gpuecc::sim::fleet {

namespace {

/** Journal schema version this reader understands. */
constexpr std::uint64_t kReaderVersion = 1;

/** Latency histogram bounds: 1 ms, 10 ms, 100 ms, 1 s, 10 s. */
const std::uint64_t kLatencyBoundsUs[] = {
    1'000, 10'000, 100'000, 1'000'000, 10'000'000,
};

std::string
formatMicros(std::uint64_t us)
{
    // Seconds with millisecond precision reads best in a timeline.
    const std::uint64_t ms = us / 1000;
    std::string out = std::to_string(ms / 1000) + ".";
    const std::string frac = std::to_string(ms % 1000);
    out += std::string(3 - frac.size(), '0') + frac + "s";
    return out;
}

} // namespace

std::uint64_t
JournalEvent::num(const std::string& key, std::uint64_t fallback) const
{
    for (const auto& [k, v] : numbers)
        if (k == key)
            return v;
    return fallback;
}

std::string
JournalEvent::str(const std::string& key) const
{
    for (const auto& [k, v] : strings)
        if (k == key)
            return v;
    return "";
}

Result<std::vector<JournalEvent>>
parseJournal(const std::string& text)
{
    std::vector<JournalEvent> events;
    std::size_t pos = 0;
    std::uint64_t line_no = 0;
    while (pos < text.size()) {
        std::size_t end = text.find('\n', pos);
        if (end == std::string::npos)
            end = text.size();
        const std::string line = text.substr(pos, end - pos);
        pos = end + 1;
        ++line_no;
        if (line.empty())
            continue;
        const std::string where =
            "journal line " + std::to_string(line_no);

        auto doc = parseJson(line);
        if (!doc.ok())
            return Status::dataLoss(where + ": " +
                                    doc.status().message());
        const JsonValue& root = doc.value();
        if (!root.isObject())
            return Status::dataLoss(where + ": not a JSON object");

        JournalEvent event;
        std::uint64_t version = 0;
        for (const auto& [key, value] : root.members()) {
            if (key == "v") {
                auto v = value.asUint64();
                if (!v.ok())
                    return Status::dataLoss(where + ": bad \"v\"");
                version = v.value();
            } else if (key == "seq") {
                auto v = value.asUint64();
                if (!v.ok())
                    return Status::dataLoss(where + ": bad \"seq\"");
                event.seq = v.value();
            } else if (key == "ts_us") {
                auto v = value.asUint64();
                if (!v.ok())
                    return Status::dataLoss(where + ": bad \"ts_us\"");
                event.ts_us = v.value();
            } else if (key == "event") {
                auto v = value.asString();
                if (!v.ok())
                    return Status::dataLoss(where + ": bad \"event\"");
                event.event = v.value();
            } else if (value.isString()) {
                event.strings.emplace_back(key,
                                           value.asString().value());
            } else if (value.isNumber()) {
                auto v = value.asUint64();
                if (!v.ok())
                    return Status::dataLoss(where + ": field \"" + key +
                                            "\" is not a u64");
                event.numbers.emplace_back(key, v.value());
            } else {
                return Status::dataLoss(where + ": field \"" + key +
                                        "\" has an unexpected type");
            }
        }

        if (version != kReaderVersion)
            return Status::failedPrecondition(
                where + ": journal version " + std::to_string(version) +
                " (reader understands " +
                std::to_string(kReaderVersion) + ")");
        if (event.event.empty())
            return Status::dataLoss(where + ": missing \"event\"");
        // Sequence numbers are consecutive from 1 by construction, so
        // any gap or reorder is evidence of lost or mangled events.
        if (event.seq != events.size() + 1)
            return Status::dataLoss(
                where + ": sequence gap (seq " +
                std::to_string(event.seq) + ", expected " +
                std::to_string(events.size() + 1) + ")");
        events.push_back(std::move(event));
    }
    return events;
}

std::uint64_t
JournalSummary::unitsSettled() const
{
    return results + unit_errors + poisoned + skipped + units_resumed;
}

JournalSummary
summarizeJournal(const std::vector<JournalEvent>& events)
{
    JournalSummary summary;
    summary.events = events.size();
    summary.latency_bounds.assign(std::begin(kLatencyBoundsUs),
                                  std::end(kLatencyBoundsUs));
    summary.latency_buckets.assign(summary.latency_bounds.size() + 1,
                                   0);
    if (!events.empty()) {
        summary.first_ts_us = events.front().ts_us;
        summary.last_ts_us = events.back().ts_us;
    }

    std::map<std::string, std::size_t> event_index;
    std::map<std::string, std::size_t> host_index;
    // Unit → timestamp of its most recent dispatch, for latency.
    std::map<std::uint64_t, std::uint64_t> dispatched_at;

    const auto host = [&](const std::string& label)
        -> JournalHostSummary& {
        auto [it, fresh] =
            host_index.emplace(label, summary.hosts.size());
        if (fresh)
            summary.hosts.push_back({label, 0, 0, 0, 0, 0, 0});
        return summary.hosts[it->second];
    };

    for (const JournalEvent& e : events) {
        auto [it, fresh] =
            event_index.emplace(e.event, summary.event_counts.size());
        if (fresh)
            summary.event_counts.emplace_back(e.event, 0);
        ++summary.event_counts[it->second].second;

        if (e.event == "start") {
            summary.units_total = e.num("units");
            summary.units_pending = e.num("pending");
            summary.units_resumed = e.num("resumed");
        } else if (e.event == "connect") {
            ++summary.connects;
            ++host(e.str("host")).connects;
        } else if (e.event == "auth_fail") {
            ++summary.auth_failures;
        } else if (e.event == "dispatch") {
            ++host(e.str("host")).dispatches;
            dispatched_at[e.num("unit")] = e.ts_us;
        } else if (e.event == "result") {
            ++summary.results;
            JournalHostSummary& h = host(e.str("host"));
            ++h.results;
            auto d = dispatched_at.find(e.num("unit"));
            if (d != dispatched_at.end() && e.ts_us >= d->second) {
                const std::uint64_t latency = e.ts_us - d->second;
                ++h.latency_count;
                h.latency_total_us += latency;
                h.latency_max_us =
                    std::max(h.latency_max_us, latency);
                std::size_t bucket = summary.latency_bounds.size();
                for (std::size_t b = 0;
                     b < summary.latency_bounds.size(); ++b) {
                    if (latency <= summary.latency_bounds[b]) {
                        bucket = b;
                        break;
                    }
                }
                ++summary.latency_buckets[bucket];
            }
        } else if (e.event == "unit_error") {
            ++summary.unit_errors;
        } else if (e.event == "poison") {
            ++summary.poisoned;
        } else if (e.event == "skip") {
            ++summary.skipped;
        } else if (e.event == "duplicate") {
            ++summary.duplicates;
        } else if (e.event == "requeue") {
            ++summary.requeues;
        } else if (e.event == "expiry") {
            ++summary.expiries;
        } else if (e.event == "timeout") {
            ++summary.timeouts;
        } else if (e.event == "host_lost") {
            ++summary.hosts_lost;
        } else if (e.event == "fallback") {
            ++summary.fallbacks;
        } else if (e.event == "drain") {
            summary.drained = true;
            summary.interrupted = e.num("interrupted") != 0;
        }
    }
    return summary;
}

std::string
formatJournalTimeline(const std::vector<JournalEvent>& events)
{
    std::string out;
    for (const JournalEvent& e : events) {
        out += "[" + formatMicros(e.ts_us) + "] #" +
               std::to_string(e.seq) + " " + e.event;
        for (const auto& [k, v] : e.strings)
            out += " " + k + "=" + v;
        for (const auto& [k, v] : e.numbers)
            out += " " + k + "=" + std::to_string(v);
        out += "\n";
    }
    return out;
}

std::string
formatJournalSummary(const JournalSummary& summary)
{
    std::string out;
    out += "events: " + std::to_string(summary.events) + " spanning " +
           formatMicros(summary.last_ts_us - summary.first_ts_us) +
           "\n";
    out += "units: " + std::to_string(summary.units_total) +
           " total, " + std::to_string(summary.unitsSettled()) +
           " settled (" + std::to_string(summary.results) +
           " results, " + std::to_string(summary.unit_errors) +
           " unit errors, " + std::to_string(summary.poisoned) +
           " poisoned, " + std::to_string(summary.skipped) +
           " skipped, " + std::to_string(summary.units_resumed) +
           " resumed)\n";
    out += "faults: " + std::to_string(summary.duplicates) +
           " duplicates, " + std::to_string(summary.requeues) +
           " requeues, " + std::to_string(summary.expiries) +
           " heartbeat expiries, " + std::to_string(summary.timeouts) +
           " timeouts, " + std::to_string(summary.hosts_lost) +
           " hosts lost, " + std::to_string(summary.auth_failures) +
           " auth failures, " + std::to_string(summary.fallbacks) +
           " fallbacks\n";
    out += std::string("drain: ") +
           (summary.drained
                ? (summary.interrupted ? "interrupted" : "clean")
                : "MISSING (journal truncated?)") +
           "\n";

    out += "hosts:\n";
    for (const JournalHostSummary& h : summary.hosts) {
        out += "  " + (h.host.empty() ? "(unnamed)" : h.host) + ": " +
               std::to_string(h.dispatches) + " dispatched, " +
               std::to_string(h.results) + " results";
        if (h.latency_count > 0) {
            out += ", latency mean " +
                   formatMicros(h.latency_total_us / h.latency_count) +
                   " max " + formatMicros(h.latency_max_us);
        }
        out += "\n";
    }

    out += "dispatch->result latency histogram:\n";
    for (std::size_t b = 0; b < summary.latency_buckets.size(); ++b) {
        const std::string label =
            b < summary.latency_bounds.size()
                ? "<= " + formatMicros(summary.latency_bounds[b])
                : "overflow";
        out += "  " + label + ": " +
               std::to_string(summary.latency_buckets[b]) + "\n";
    }
    return out;
}

} // namespace gpuecc::sim::fleet
