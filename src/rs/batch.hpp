/**
 * @file
 * Batched Reed-Solomon decode support: a precomputed syndrome plan
 * lowering S_j = sum_i received[i] * alpha^(j*i) onto the gf256
 * vector kernels, and allocation-free "fix" variants of the scalar
 * decoders that work from already-computed syndromes.
 *
 * The split mirrors the shape of the hot path: for a shard batch the
 * syndromes of every entry are accumulated symbol-column-wise (one
 * mulConstXorAccBuf per (syndrome, position) over the whole batch),
 * the overwhelmingly common all-zero case is retired in bulk, and
 * only suspect entries run a scalar locator/magnitude fix. The fix
 * functions are transliterations of decodeSscOneShot /
 * decodeSscDsdPlus / decodeDsc with the syndrome computation factored
 * out — the differential tests diff them against those oracles
 * decision-for-decision.
 */

#ifndef GPUECC_RS_BATCH_HPP
#define GPUECC_RS_BATCH_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "gf256/gf256_vec.hpp"
#include "rs/decoders.hpp"
#include "rs/rs_code.hpp"

namespace gpuecc {

/** A correction decision derived from syndromes alone. */
struct RsFix
{
    RsDecode::Status status;
    int num_errors;                    //!< positions modified (0..2)
    std::array<int, 2> pos;            //!< code positions to patch
    std::array<std::uint8_t, 2> mag;   //!< XOR magnitudes
};

/** decodeSscOneShot's decision from the r=2 syndromes of an n-symbol
 *  word (returns clean when both are zero). */
RsFix fixSscOneShot(int n, const std::uint8_t* s);

/** decodeSscDsdPlus's decision from the r=4 syndromes. */
RsFix fixSscDsdPlus(int n, const std::uint8_t* s);

/** decodeDsc's decision from the r=4 syndromes. The oracle's final
 *  isCodeword() guard is applied algebraically: the two-error fix is
 *  accepted only if it reproduces S_2 and S_3 (S_0 and S_1 hold by
 *  construction of the magnitudes). */
RsFix fixDsc(int n, const std::uint8_t* s);

/**
 * Precomputed nibble-split multiply tables for every alpha^(j*i)
 * term of an RsCode's syndrome map, plus the bulk and scalar
 * evaluators built on them.
 */
class RsSyndromePlan
{
  public:
    explicit RsSyndromePlan(const RsCode& code);

    int n() const { return n_; }
    int r() const { return r_; }

    /** Syndromes of one word (n symbols) via the nibble tables. */
    void syndromesScalar(const std::uint8_t* word,
                         std::uint8_t* s) const;

    /**
     * Column-wise syndromes of `count` words stored column-major:
     * cols[i * stride + e] is symbol i of word e. On return
     * synd[j * stride + e] is S_j of word e. Requires count <= stride.
     */
    void syndromesBulk(gf256::VecIsa isa, const std::uint8_t* cols,
                       std::size_t stride, std::size_t count,
                       std::uint8_t* synd) const;

  private:
    int n_;
    int r_;
    std::vector<gf256::MulTables> tables_; //!< [j * n + i]
};

} // namespace gpuecc

#endif // GPUECC_RS_BATCH_HPP
