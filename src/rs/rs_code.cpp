#include "rs/rs_code.hpp"

#include "common/log.hpp"
#include "gf256/gf256.hpp"

namespace gpuecc {

namespace {

/**
 * Invert a small row-major matrix over GF(2^8) by Gauss-Jordan.
 * Fatal if singular (a Vandermonde block on distinct powers never is).
 */
std::vector<std::uint8_t>
invertGf256(std::vector<std::uint8_t> m, int dim)
{
    std::vector<std::uint8_t> inv(dim * dim, 0);
    for (int i = 0; i < dim; ++i)
        inv[i * dim + i] = 1;
    for (int col = 0; col < dim; ++col) {
        int pivot = -1;
        for (int row = col; row < dim; ++row) {
            if (m[row * dim + col] != 0) {
                pivot = row;
                break;
            }
        }
        require(pivot >= 0, "invertGf256: singular matrix");
        for (int c = 0; c < dim; ++c) {
            std::swap(m[pivot * dim + c], m[col * dim + c]);
            std::swap(inv[pivot * dim + c], inv[col * dim + c]);
        }
        const std::uint8_t d = gf256::inv(m[col * dim + col]);
        for (int c = 0; c < dim; ++c) {
            m[col * dim + c] = gf256::mul(m[col * dim + c], d);
            inv[col * dim + c] = gf256::mul(inv[col * dim + c], d);
        }
        for (int row = 0; row < dim; ++row) {
            if (row == col || m[row * dim + col] == 0)
                continue;
            const std::uint8_t f = m[row * dim + col];
            for (int c = 0; c < dim; ++c) {
                m[row * dim + c] = gf256::add(
                    m[row * dim + c], gf256::mul(f, m[col * dim + c]));
                inv[row * dim + c] = gf256::add(
                    inv[row * dim + c], gf256::mul(f, inv[col * dim + c]));
            }
        }
    }
    return inv;
}

} // namespace

RsCode::RsCode(int n, int k)
    : n_(n), k_(k), r_(n - k)
{
    require(n > 0 && n <= 255, "RsCode: n must be in (0, 255]");
    require(k > 0 && k < n, "RsCode: k must be in (0, n)");

    // V[j][i] = alpha^(j * i) on the check positions i = 0 .. r-1; the
    // encoder solves V * checks = D for the check symbols.
    std::vector<std::uint8_t> v(r_ * r_);
    for (int j = 0; j < r_; ++j) {
        for (int i = 0; i < r_; ++i)
            v[j * r_ + i] = gf256::alphaPow(j * i);
    }
    check_solver_ = invertGf256(std::move(v), r_);
}

std::vector<std::uint8_t>
RsCode::encode(const std::vector<std::uint8_t>& data) const
{
    require(static_cast<int>(data.size()) == k_,
            "RsCode::encode: wrong data length");
    // D_j = sum over data positions of d_i * alpha^(j * i); check
    // symbols then satisfy sum over check positions = D_j as well,
    // making every syndrome zero.
    std::vector<std::uint8_t> d(r_, 0);
    for (int j = 0; j < r_; ++j) {
        std::uint8_t acc = 0;
        for (int i = r_; i < n_; ++i) {
            acc = gf256::add(
                acc, gf256::mul(data[i - r_], gf256::alphaPow(j * i)));
        }
        d[j] = acc;
    }
    std::vector<std::uint8_t> cw(n_, 0);
    for (int i = 0; i < r_; ++i) {
        std::uint8_t acc = 0;
        for (int j = 0; j < r_; ++j)
            acc = gf256::add(acc,
                             gf256::mul(check_solver_[i * r_ + j], d[j]));
        cw[i] = acc;
    }
    for (int i = r_; i < n_; ++i)
        cw[i] = data[i - r_];
    return cw;
}

std::vector<std::uint8_t>
RsCode::syndromes(const std::vector<std::uint8_t>& received) const
{
    require(static_cast<int>(received.size()) == n_,
            "RsCode::syndromes: wrong word length");
    std::vector<std::uint8_t> s(r_, 0);
    for (int j = 0; j < r_; ++j) {
        std::uint8_t acc = 0;
        for (int i = 0; i < n_; ++i) {
            if (received[i])
                acc = gf256::add(
                    acc, gf256::mul(received[i], gf256::alphaPow(j * i)));
        }
        s[j] = acc;
    }
    return s;
}

bool
RsCode::isCodeword(const std::vector<std::uint8_t>& received) const
{
    for (std::uint8_t s : syndromes(received)) {
        if (s != 0)
            return false;
    }
    return true;
}

} // namespace gpuecc
