/**
 * @file
 * Systematic Reed-Solomon codes over GF(2^8).
 *
 * Code roots are alpha^0 .. alpha^(r-1) (narrow sense, b = 0), so a
 * single symbol error e at position p yields syndromes
 * S_j = e * alpha^(j*p), and one-shot error location reduces to a
 * discrete-log difference - the structure behind the paper's
 * DLog/EAC-subtractor decoder (Figure 7c).
 *
 * Symbol convention: the codeword is a vector of n symbols, data
 * occupies positions r .. n-1 (in order) and the r check symbols
 * occupy positions 0 .. r-1.
 */

#ifndef GPUECC_RS_RS_CODE_HPP
#define GPUECC_RS_RS_CODE_HPP

#include <cstdint>
#include <vector>

namespace gpuecc {

/** An (n, k) systematic Reed-Solomon code over GF(2^8). */
class RsCode
{
  public:
    /**
     * @param n total symbols (n <= 255)
     * @param k data symbols (k < n); r = n - k check symbols
     */
    RsCode(int n, int k);

    int n() const { return n_; }
    int k() const { return k_; }
    int r() const { return r_; }

    /**
     * Encode k data symbols into an n-symbol codeword.
     *
     * @param data k symbols
     * @return n symbols with checks at positions 0 .. r-1
     */
    std::vector<std::uint8_t>
    encode(const std::vector<std::uint8_t>& data) const;

    /** The r syndromes S_j of a received word (all zero if valid). */
    std::vector<std::uint8_t>
    syndromes(const std::vector<std::uint8_t>& received) const;

    /** True if every syndrome of the word is zero. */
    bool isCodeword(const std::vector<std::uint8_t>& received) const;

  private:
    int n_;
    int k_;
    int r_;
    /** Inverse of the r x r Vandermonde block on check positions. */
    std::vector<std::uint8_t> check_solver_; // row-major r x r
};

} // namespace gpuecc

#endif // GPUECC_RS_RS_CODE_HPP
