/**
 * @file
 * Reed-Solomon decoders used by the paper's symbol-based schemes.
 *
 * - decodeSscOneShot: the (18, 16) single-symbol-correct decoder with
 *   one-shot error location via discrete-log difference (Katayama &
 *   Morioka style, Figure 7c of the paper).
 * - decodeSscDsdPlus: the (36, 32) SSC-DSD+ decoder; three check-byte
 *   pairs each produce a single-error location estimate and correction
 *   proceeds only when all three agree. With four consecutive roots
 *   this agreement test is exactly bounded-distance t=1 decoding of a
 *   d=5 code, which is why the scheme detects all double (and at this
 *   length, triple) symbol errors; the paper treats full SSC-TSD as a
 *   distinct, slower decoder only because of its iterative hardware.
 * - decodeDsc: the (36, 32) double-symbol-correct decoder
 *   (Peterson-Gorenstein-Zierler with a Chien search), implemented as
 *   the reference the paper rejects on latency grounds.
 */

#ifndef GPUECC_RS_DECODERS_HPP
#define GPUECC_RS_DECODERS_HPP

#include <cstdint>
#include <vector>

#include "rs/rs_code.hpp"

namespace gpuecc {

/** Outcome of decoding one Reed-Solomon codeword. */
struct RsDecode
{
    enum class Status
    {
        clean,      //!< all syndromes zero
        corrected,  //!< correction applied
        due         //!< detected-yet-uncorrectable
    };

    Status status;
    /** The corrected word (equal to the input unless corrected). */
    std::vector<std::uint8_t> word;
    /** Symbol positions the decoder modified. */
    std::vector<int> error_positions;
};

/** One-shot single-symbol correction for an r=2 code. */
RsDecode decodeSscOneShot(const RsCode& code,
                          const std::vector<std::uint8_t>& received);

/**
 * SSC-DSD+ decoding for an r=4 code: correct a single symbol only if
 * the location estimates from check-byte pairs (S0,S1), (S1,S2) and
 * (S2,S3) all agree on a valid position; otherwise flag a DUE.
 */
RsDecode decodeSscDsdPlus(const RsCode& code,
                          const std::vector<std::uint8_t>& received);

/**
 * Double-symbol correction for an r=4 code via PGZ + Chien search.
 * Patterns beyond two symbol errors raise a DUE when inconsistent.
 */
RsDecode decodeDsc(const RsCode& code,
                   const std::vector<std::uint8_t>& received);

/**
 * Erasure decoding: fill up to r symbols at *known* positions (e.g.
 * the symbols crossing a diagnosed permanent pin failure) by solving
 * the syndrome equations, assuming no additional errors.
 *
 * With e erasures the code retains d - 1 - e residual detection; the
 * fill is verified against every syndrome, so any leftover
 * inconsistency raises a DUE rather than corrupting.
 *
 * @param erasures distinct symbol positions, at most r of them
 */
RsDecode decodeWithErasures(const RsCode& code,
                            const std::vector<std::uint8_t>& received,
                            const std::vector<int>& erasures);

} // namespace gpuecc

#endif // GPUECC_RS_DECODERS_HPP
