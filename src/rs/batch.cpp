#include "rs/batch.hpp"

#include "common/log.hpp"
#include "gf256/gf256.hpp"

namespace gpuecc {

namespace {

/** Location estimate from one syndrome pair: dlog(sb/sa) mod 255
 *  (same helper as decoders.cpp; both operands must be nonzero). */
int
pairLocation(std::uint8_t sa, std::uint8_t sb)
{
    int p = gf256::dlog(sb) - gf256::dlog(sa);
    if (p < 0)
        p += 255;
    return p;
}

constexpr RsFix kDue{RsDecode::Status::due, 0, {0, 0}, {0, 0}};
constexpr RsFix kClean{RsDecode::Status::clean, 0, {0, 0}, {0, 0}};

} // namespace

RsFix
fixSscOneShot(int n, const std::uint8_t* s)
{
    if (s[0] == 0 && s[1] == 0)
        return kClean;
    if (s[0] == 0 || s[1] == 0)
        return kDue;
    const int p = pairLocation(s[0], s[1]);
    if (p >= n)
        return kDue;
    return {RsDecode::Status::corrected, 1, {p, 0}, {s[0], 0}};
}

RsFix
fixSscDsdPlus(int n, const std::uint8_t* s)
{
    if (s[0] == 0 && s[1] == 0 && s[2] == 0 && s[3] == 0)
        return kClean;
    if (s[0] == 0 || s[1] == 0 || s[2] == 0 || s[3] == 0)
        return kDue;
    const int p0 = pairLocation(s[0], s[1]);
    const int p1 = pairLocation(s[1], s[2]);
    const int p2 = pairLocation(s[2], s[3]);
    if (p0 != p1 || p1 != p2 || p0 >= n)
        return kDue;
    return {RsDecode::Status::corrected, 1, {p0, 0}, {s[0], 0}};
}

RsFix
fixDsc(int n, const std::uint8_t* s)
{
    if (s[0] == 0 && s[1] == 0 && s[2] == 0 && s[3] == 0)
        return kClean;

    // Single-error attempt first (PGZ with nu = 1).
    if (s[0] != 0 && s[1] != 0 && s[2] != 0 && s[3] != 0) {
        const int p0 = pairLocation(s[0], s[1]);
        const int p1 = pairLocation(s[1], s[2]);
        const int p2 = pairLocation(s[2], s[3]);
        if (p0 == p1 && p1 == p2 && p0 < n)
            return {RsDecode::Status::corrected, 1, {p0, 0},
                    {s[0], 0}};
    }

    // Two-error attempt (see decodeDsc for the derivation).
    const std::uint8_t det = gf256::add(gf256::mul(s[0], s[2]),
                                        gf256::mul(s[1], s[1]));
    if (det != 0) {
        const std::uint8_t sigma2 = gf256::div(
            gf256::add(gf256::mul(s[1], s[3]), gf256::mul(s[2], s[2])),
            det);
        const std::uint8_t sigma1 = gf256::div(
            gf256::add(gf256::mul(s[0], s[3]), gf256::mul(s[1], s[2])),
            det);
        int roots[3];
        int num_roots = 0;
        for (int p = 0; p < n && num_roots <= 2; ++p) {
            const std::uint8_t xinv = gf256::alphaPow(-p);
            const std::uint8_t val = gf256::add(
                gf256::add(1, gf256::mul(sigma1, xinv)),
                gf256::mul(sigma2, gf256::mul(xinv, xinv)));
            if (val == 0)
                roots[num_roots++] = p;
        }
        if (num_roots == 2) {
            const std::uint8_t x1 = gf256::alphaPow(roots[0]);
            const std::uint8_t x2 = gf256::alphaPow(roots[1]);
            const std::uint8_t e1 = gf256::div(
                gf256::add(s[1], gf256::mul(s[0], x2)),
                gf256::add(x1, x2));
            const std::uint8_t e2 = gf256::add(s[0], e1);
            if (e1 != 0 && e2 != 0) {
                // The oracle re-checks every syndrome of the patched
                // word. S_0 and S_1 are satisfied by construction of
                // (e1, e2); demanding the fix also reproduce S_2 and
                // S_3 is the same guard without touching the word.
                bool consistent = true;
                for (int j = 2; j < 4; ++j) {
                    const std::uint8_t expect = gf256::add(
                        gf256::mul(e1, gf256::alphaPow(j * roots[0])),
                        gf256::mul(e2, gf256::alphaPow(j * roots[1])));
                    if (expect != s[j]) {
                        consistent = false;
                        break;
                    }
                }
                if (consistent)
                    return {RsDecode::Status::corrected, 2,
                            {roots[0], roots[1]}, {e1, e2}};
            }
        }
    }
    return kDue;
}

RsSyndromePlan::RsSyndromePlan(const RsCode& code)
    : n_(code.n()), r_(code.r())
{
    tables_.reserve(static_cast<std::size_t>(r_) * n_);
    for (int j = 0; j < r_; ++j) {
        for (int i = 0; i < n_; ++i)
            tables_.push_back(gf256::mulTables(gf256::alphaPow(j * i)));
    }
}

void
RsSyndromePlan::syndromesScalar(const std::uint8_t* word,
                                std::uint8_t* s) const
{
    for (int j = 0; j < r_; ++j) {
        const gf256::MulTables* row = tables_.data()
                                      + static_cast<std::size_t>(j) * n_;
        std::uint8_t acc = 0;
        for (int i = 0; i < n_; ++i)
            acc ^= gf256::mulTab(row[i], word[i]);
        s[j] = acc;
    }
}

void
RsSyndromePlan::syndromesBulk(gf256::VecIsa isa,
                              const std::uint8_t* cols,
                              std::size_t stride, std::size_t count,
                              std::uint8_t* synd) const
{
    require(count <= stride, "syndromesBulk: count exceeds stride");
    for (int j = 0; j < r_; ++j) {
        std::uint8_t* acc = synd + static_cast<std::size_t>(j) * stride;
        for (std::size_t e = 0; e < count; ++e)
            acc[e] = 0;
        const gf256::MulTables* row = tables_.data()
                                      + static_cast<std::size_t>(j) * n_;
        for (int i = 0; i < n_; ++i) {
            gf256::mulConstXorAccBuf(isa, row[i], cols + i * stride,
                                     acc, count);
        }
    }
}

} // namespace gpuecc
