#include "rs/decoders.hpp"

#include "common/log.hpp"
#include "gf256/gf256.hpp"

namespace gpuecc {

namespace {

/** Location estimate from one syndrome pair: dlog(sb/sa) mod 255. */
int
pairLocation(std::uint8_t sa, std::uint8_t sb)
{
    int p = gf256::dlog(sb) - gf256::dlog(sa);
    if (p < 0)
        p += 255;
    return p;
}

bool
allZero(const std::vector<std::uint8_t>& v)
{
    for (std::uint8_t x : v) {
        if (x != 0)
            return false;
    }
    return true;
}

} // namespace

RsDecode
decodeSscOneShot(const RsCode& code,
                 const std::vector<std::uint8_t>& received)
{
    require(code.r() == 2, "decodeSscOneShot expects an r=2 code");
    const auto s = code.syndromes(received);
    if (allZero(s))
        return {RsDecode::Status::clean, received, {}};
    if (s[0] == 0 || s[1] == 0)
        return {RsDecode::Status::due, received, {}};
    const int p = pairLocation(s[0], s[1]);
    if (p >= code.n())
        return {RsDecode::Status::due, received, {}};
    RsDecode out{RsDecode::Status::corrected, received, {p}};
    out.word[p] = gf256::add(out.word[p], s[0]);
    return out;
}

RsDecode
decodeSscDsdPlus(const RsCode& code,
                 const std::vector<std::uint8_t>& received)
{
    require(code.r() == 4, "decodeSscDsdPlus expects an r=4 code");
    const auto s = code.syndromes(received);
    if (allZero(s))
        return {RsDecode::Status::clean, received, {}};
    // A true single-symbol error e at p gives S_j = e * alpha^(jp),
    // all nonzero. Each check-byte pair independently locates the
    // error; correction requires unanimous agreement on a valid
    // position (the paper's one-shot correction sanity analogue).
    if (s[0] == 0 || s[1] == 0 || s[2] == 0 || s[3] == 0)
        return {RsDecode::Status::due, received, {}};
    const int p0 = pairLocation(s[0], s[1]);
    const int p1 = pairLocation(s[1], s[2]);
    const int p2 = pairLocation(s[2], s[3]);
    if (p0 != p1 || p1 != p2 || p0 >= code.n())
        return {RsDecode::Status::due, received, {}};
    RsDecode out{RsDecode::Status::corrected, received, {p0}};
    out.word[p0] = gf256::add(out.word[p0], s[0]);
    return out;
}

RsDecode
decodeDsc(const RsCode& code, const std::vector<std::uint8_t>& received)
{
    require(code.r() == 4, "decodeDsc expects an r=4 code");
    const auto s = code.syndromes(received);
    if (allZero(s))
        return {RsDecode::Status::clean, received, {}};

    // Single-error attempt first (PGZ with nu = 1).
    if (s[0] != 0 && s[1] != 0 && s[2] != 0 && s[3] != 0) {
        const int p0 = pairLocation(s[0], s[1]);
        const int p1 = pairLocation(s[1], s[2]);
        const int p2 = pairLocation(s[2], s[3]);
        if (p0 == p1 && p1 == p2 && p0 < code.n()) {
            RsDecode out{RsDecode::Status::corrected, received, {p0}};
            out.word[p0] = gf256::add(out.word[p0], s[0]);
            return out;
        }
    }

    // Two-error attempt: solve for the error locator
    // Lambda(x) = 1 + sigma1*x + sigma2*x^2 from
    //   [S0 S1] [sigma2]   [S2]
    //   [S1 S2] [sigma1] = [S3].
    const std::uint8_t det = gf256::add(gf256::mul(s[0], s[2]),
                                        gf256::mul(s[1], s[1]));
    if (det != 0) {
        const std::uint8_t sigma2 = gf256::div(
            gf256::add(gf256::mul(s[1], s[3]), gf256::mul(s[2], s[2])),
            det);
        const std::uint8_t sigma1 = gf256::div(
            gf256::add(gf256::mul(s[0], s[3]), gf256::mul(s[1], s[2])),
            det);
        // Chien search over the valid positions.
        std::vector<int> roots;
        for (int p = 0; p < code.n() && roots.size() <= 2; ++p) {
            const std::uint8_t xinv = gf256::alphaPow(-p);
            const std::uint8_t val = gf256::add(
                gf256::add(1, gf256::mul(sigma1, xinv)),
                gf256::mul(sigma2, gf256::mul(xinv, xinv)));
            if (val == 0)
                roots.push_back(p);
        }
        if (roots.size() == 2) {
            const std::uint8_t x1 = gf256::alphaPow(roots[0]);
            const std::uint8_t x2 = gf256::alphaPow(roots[1]);
            // e1 + e2 = S0; e1*X1 + e2*X2 = S1.
            const std::uint8_t e1 = gf256::div(
                gf256::add(s[1], gf256::mul(s[0], x2)),
                gf256::add(x1, x2));
            const std::uint8_t e2 = gf256::add(s[0], e1);
            if (e1 != 0 && e2 != 0) {
                RsDecode out{RsDecode::Status::corrected, received,
                             {roots[0], roots[1]}};
                out.word[roots[0]] = gf256::add(out.word[roots[0]], e1);
                out.word[roots[1]] = gf256::add(out.word[roots[1]], e2);
                // Guard against >2-error patterns that alias into a
                // solvable system: the correction must clear every
                // syndrome.
                if (code.isCodeword(out.word))
                    return out;
            }
        }
    }
    return {RsDecode::Status::due, received, {}};
}

RsDecode
decodeWithErasures(const RsCode& code,
                   const std::vector<std::uint8_t>& received,
                   const std::vector<int>& erasures)
{
    const int e = static_cast<int>(erasures.size());
    require(e >= 1 && e <= code.r(),
            "decodeWithErasures: erasure count out of range");
    for (int pos : erasures) {
        require(pos >= 0 && pos < code.n(),
                "decodeWithErasures: bad erasure position");
    }

    // Solve V * m = S for the erasure magnitudes, where
    // V[j][i] = alpha^(j * pos_i), using the first e syndromes.
    const auto s = code.syndromes(received);
    std::vector<std::uint8_t> m(e * (e + 1), 0); // augmented, row-major
    for (int j = 0; j < e; ++j) {
        for (int i = 0; i < e; ++i)
            m[j * (e + 1) + i] = gf256::alphaPow(j * erasures[i]);
        m[j * (e + 1) + e] = s[j];
    }
    for (int col = 0; col < e; ++col) {
        int pivot = -1;
        for (int row = col; row < e; ++row) {
            if (m[row * (e + 1) + col] != 0) {
                pivot = row;
                break;
            }
        }
        // A Vandermonde block on distinct positions is nonsingular.
        require(pivot >= 0, "decodeWithErasures: singular system");
        for (int c = 0; c <= e; ++c)
            std::swap(m[pivot * (e + 1) + c], m[col * (e + 1) + c]);
        const std::uint8_t inv = gf256::inv(m[col * (e + 1) + col]);
        for (int c = 0; c <= e; ++c)
            m[col * (e + 1) + c] = gf256::mul(m[col * (e + 1) + c], inv);
        for (int row = 0; row < e; ++row) {
            if (row == col)
                continue;
            const std::uint8_t f = m[row * (e + 1) + col];
            if (f == 0)
                continue;
            for (int c = 0; c <= e; ++c) {
                m[row * (e + 1) + c] = gf256::add(
                    m[row * (e + 1) + c],
                    gf256::mul(f, m[col * (e + 1) + c]));
            }
        }
    }

    RsDecode out{RsDecode::Status::corrected, received, {}};
    bool any_change = false;
    for (int i = 0; i < e; ++i) {
        const std::uint8_t magnitude = m[i * (e + 1) + e];
        if (magnitude != 0) {
            out.word[erasures[i]] =
                gf256::add(out.word[erasures[i]], magnitude);
            out.error_positions.push_back(erasures[i]);
            any_change = true;
        }
    }
    // The fill used e syndromes; the remaining r - e provide residual
    // detection against additional (non-erasure) errors.
    if (!code.isCodeword(out.word))
        return {RsDecode::Status::due, received, {}};
    if (!any_change)
        out.status = RsDecode::Status::clean;
    return out;
}

} // namespace gpuecc
