#include "interleave/swizzle.hpp"

#include "common/log.hpp"

namespace gpuecc {

EntryLayout::EntryLayout(Kind kind)
    : kind_(kind)
{
    for (int phys = 0; phys < layout::entry_bits; ++phys) {
        const int logical = kind == Kind::interleaved
            ? (73 * phys) % layout::entry_bits // Eq. 1
            : phys;
        phys_to_log_[phys] = logical;
        log_to_phys_[logical] = phys;
    }
    // Eq. 1 is a bijection because gcd(73, 288) = 1; double-check the
    // inverse table is fully populated in debug spirit.
    for (int l = 0; l < layout::entry_bits; ++l) {
        require(phys_to_log_[log_to_phys_[l]] == l,
                "EntryLayout permutation is not a bijection");
    }
}

Bits288
EntryLayout::assemble(const std::array<Bits72, 4>& codewords) const
{
    Bits288 phys;
    for (int cw = 0; cw < layout::num_codewords; ++cw) {
        codewords[cw].forEachSetBit([&](int bit) {
            phys.set(physicalFor(cw, bit), 1);
        });
    }
    return phys;
}

std::array<Bits72, 4>
EntryLayout::disassemble(const Bits288& physical) const
{
    std::array<Bits72, 4> cws{};
    physical.forEachSetBit([&](int phys) {
        const auto [cw, bit] = logicalFor(phys);
        cws[cw].set(bit, 1);
    });
    return cws;
}

} // namespace gpuecc
