/**
 * @file
 * Logical codeword interleaving (Equations 1 and 2 of the paper).
 *
 * A 36B HBM2 memory entry is transmitted as 4 beats over 72 pins
 * (64 data + 8 check pins). Logically it holds four (72, 64)
 * codewords. The paper's interleave places logical bit
 * (73 * i) mod 288 at physical position i, which:
 *
 *  - spreads any aligned physical byte error across all four
 *    codewords as one stride-4 2-bit symbol each, and
 *  - rotates codewords across beats ("checkerboard") so a pin error
 *    contributes exactly one bit to each codeword, preserving
 *    single-pin correction.
 *
 * Physical indexing convention throughout the library: physical bit
 * i has beat i / 72 and pin i % 72; physical byte B covers bits
 * [8B, 8B + 8).
 */

#ifndef GPUECC_INTERLEAVE_SWIZZLE_HPP
#define GPUECC_INTERLEAVE_SWIZZLE_HPP

#include <array>
#include <utility>

#include "common/bits.hpp"

namespace gpuecc {

/** Physical geometry of one HBM2 memory entry. */
namespace layout {

constexpr int entry_bits = 288;  //!< 32B data + 4B check
constexpr int beat_bits = 72;    //!< one codeword per beat
constexpr int num_beats = 4;
constexpr int num_pins = 72;
constexpr int num_bytes = 36;    //!< aligned 8-bit groups
constexpr int num_codewords = 4;
constexpr int data_bits = 256;   //!< user data per entry

/** Physical index of (beat, pin). */
constexpr int
physicalIndex(int beat, int pin)
{
    return beat_bits * beat + pin;
}

/** Beat of a physical index. */
constexpr int beatOf(int phys) { return phys / beat_bits; }

/** Pin of a physical index. */
constexpr int pinOf(int phys) { return phys % beat_bits; }

/** Physical byte of a physical index. */
constexpr int byteOf(int phys) { return phys / 8; }

} // namespace layout

/**
 * Bidirectional map between the four logical codewords of an entry
 * and the 288 transmitted (physical) bit positions.
 */
class EntryLayout
{
  public:
    /** Which bit arrangement to use. */
    enum class Kind
    {
        nonInterleaved, //!< codeword c occupies beat c verbatim
        interleaved     //!< Eq. 1/2: physical i holds logical 73i mod 288
    };

    explicit EntryLayout(Kind kind);

    Kind kind() const { return kind_; }

    /** Scatter four codewords into the physical entry. */
    Bits288 assemble(const std::array<Bits72, 4>& codewords) const;

    /** Gather the four codewords back out of a physical entry. */
    std::array<Bits72, 4> disassemble(const Bits288& physical) const;

    /** Physical position of bit `bit` of codeword `cw`. */
    int physicalFor(int cw, int bit) const
    {
        return log_to_phys_[cw * layout::beat_bits + bit];
    }

    /** (codeword, bit) holding physical position `phys`. */
    std::pair<int, int>
    logicalFor(int phys) const
    {
        const int l = phys_to_log_[phys];
        return {l / layout::beat_bits, l % layout::beat_bits};
    }

  private:
    Kind kind_;
    std::array<int, layout::entry_bits> phys_to_log_;
    std::array<int, layout::entry_bits> log_to_phys_;
};

} // namespace gpuecc

#endif // GPUECC_INTERLEAVE_SWIZZLE_HPP
