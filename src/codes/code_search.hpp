/**
 * @file
 * Randomized search for SEC-2bEC codes.
 *
 * The paper designed its SEC-2bEC code with a genetic algorithm that
 * (a) enforces SEC-DED plus unique aligned-pair syndromes and (b)
 * minimizes the chance that a non-aligned 2-bit error aliases to an
 * aligned-pair syndrome (a miscorrection in sec2bEc mode). This
 * module reproduces that design step with a seeded evolutionary
 * hill-climb so the published matrix can be compared against
 * freshly-searched ones (see the code-search ablation test/bench).
 */

#ifndef GPUECC_CODES_CODE_SEARCH_HPP
#define GPUECC_CODES_CODE_SEARCH_HPP

#include "common/rng.hpp"
#include "gf2/matrix.hpp"

namespace gpuecc {

/** Result of a SEC-2bEC code search. */
struct CodeSearchResult
{
    Gf2Matrix h;
    /** Non-aligned 2-bit miscorrection rate of the returned code. */
    double miscorrection_rate;
    /** Number of candidate evaluations performed. */
    int evaluations;
};

/**
 * Search for a (72, 64) SEC-DED code with unique bit-adjacent
 * aligned-pair syndromes and low non-aligned 2-bit miscorrection
 * risk.
 *
 * All columns are kept odd-weight and distinct (hence SEC-DED by
 * construction); the search mutates data columns and keeps changes
 * that preserve aligned-pair syndrome uniqueness while not increasing
 * the miscorrection count.
 *
 * @param rng        seeded generator (the search is deterministic per
 *                   seed)
 * @param iterations mutation attempts
 */
CodeSearchResult searchSec2bEcCode(Rng& rng, int iterations = 20000);

/**
 * Search for a (72, 64) SEC-DED-DAEC code (Dutta & Touba style): all
 * 71 bit-adjacent double errors - not just the 36 aligned pairs -
 * get unique correctable syndromes.
 *
 * The paper's SEC-2bEC code deliberately corrects only the aligned
 * pairs, "reducing the non-neighboring 2b error miscorrection risk
 * by ~20%" relative to DAEC; this search provides the DAEC
 * comparison point (its miscorrection_rate counts non-adjacent
 * 2-bit errors aliasing to any of the 71 correctable syndromes).
 */
CodeSearchResult searchDaecCode(Rng& rng, int iterations = 20000);

} // namespace gpuecc

#endif // GPUECC_CODES_CODE_SEARCH_HPP
