#include "codes/hsiao.hpp"

#include <algorithm>
#include <array>
#include <set>
#include <vector>

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace gpuecc {

namespace {

/** All 8-bit values with the given popcount, ascending. */
std::vector<unsigned>
columnsOfWeight(int w)
{
    std::vector<unsigned> out;
    for (unsigned v = 0; v < 256; ++v) {
        if (popcount64(v) == w)
            out.push_back(v);
    }
    return out;
}

/**
 * The minimum-odd-weight data column multiset in lexicographic
 * order: all 56 weight-3 columns, then 8 weight-5 columns picked
 * greedily to balance the row weights (ties broken by squared row
 * weight, then lexicographic order).
 */
std::vector<unsigned>
lexDataColumns()
{
    std::vector<unsigned> cols = columnsOfWeight(3);

    std::vector<int> row_weight(8, 0);
    for (unsigned v : cols) {
        for (int row = 0; row < 8; ++row)
            row_weight[row] += (v >> row) & 1;
    }
    std::vector<unsigned> w5 = columnsOfWeight(5);
    std::vector<bool> used(w5.size(), false);
    for (int pick = 0; pick < 8; ++pick) {
        int best = -1;
        int best_cost = 1 << 30;
        for (std::size_t i = 0; i < w5.size(); ++i) {
            if (used[i])
                continue;
            std::vector<int> rw = row_weight;
            for (int row = 0; row < 8; ++row)
                rw[row] += (w5[i] >> row) & 1;
            const int mx = *std::max_element(rw.begin(), rw.end());
            int ss = 0;
            for (int w : rw)
                ss += w * w;
            const int cost = mx * 100000 + ss;
            if (cost < best_cost) {
                best_cost = cost;
                best = static_cast<int>(i);
            }
        }
        used[best] = true;
        cols.push_back(w5[best]);
        for (int row = 0; row < 8; ++row)
            row_weight[row] += (w5[best] >> row) & 1;
    }
    return cols;
}

/**
 * The calibrated data-column arrangement (see the header). Derived
 * offline by a seeded greedy permutation search over the
 * lexicographic multiset, targeting a ~23% byte-error SDC rate for
 * non-interleaved SEC-DED to match the paper's reported baseline
 * behaviour.
 */
constexpr std::array<unsigned, 64> kCalibratedDataColumns = {
    0xB0, 0x29, 0xD0, 0x0E, 0x89, 0xE0, 0x49, 0x1C,
    0x8C, 0x1A, 0x0D, 0x1F, 0xF8, 0x2A, 0x8F, 0x38,
    0x2C, 0x70, 0x64, 0x61, 0x23, 0x25, 0x7C, 0xF1,
    0x98, 0x07, 0x91, 0x4A, 0x0B, 0x46, 0x34, 0xA4,
    0x92, 0x86, 0xC2, 0xC7, 0x8A, 0x32, 0x43, 0x13,
    0x51, 0x3E, 0xC1, 0x15, 0x85, 0x19, 0x45, 0x26,
    0x58, 0xE3, 0xC8, 0x54, 0xC4, 0x4C, 0x62, 0x94,
    0x16, 0x52, 0xA8, 0x83, 0x31, 0xA1, 0x68, 0xA2,
};

Gf2Matrix
matrixFromDataColumns(const std::vector<unsigned>& data_cols)
{
    require(data_cols.size() == 64,
            "Hsiao construction needs 64 data columns");
    Gf2Matrix h(8, 72);
    for (int c = 0; c < 64; ++c) {
        for (int row = 0; row < 8; ++row)
            h.set(row, c, (data_cols[c] >> row) & 1);
    }
    for (int row = 0; row < 8; ++row)
        h.set(row, 64 + row, 1);
    return h;
}

} // namespace

Gf2Matrix
hsiao7264Matrix()
{
    const std::vector<unsigned> calibrated(kCalibratedDataColumns.begin(),
                                           kCalibratedDataColumns.end());
    // The calibrated arrangement must be exactly the lexicographic
    // multiset reordered - same code, different bit assignment.
    const std::vector<unsigned> lex = lexDataColumns();
    require(std::multiset<unsigned>(calibrated.begin(), calibrated.end())
                == std::multiset<unsigned>(lex.begin(), lex.end()),
            "calibrated Hsiao arrangement is not a permutation of the "
            "minimum-odd-weight multiset");
    return matrixFromDataColumns(calibrated);
}

Gf2Matrix
hsiao7264LexMatrix()
{
    return matrixFromDataColumns(lexDataColumns());
}

} // namespace gpuecc
