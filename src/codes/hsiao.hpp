/**
 * @file
 * Construction of the (72, 64) Hsiao SEC-DED code.
 *
 * The paper's binary baseline is a minimum-odd-weight-column Hsiao
 * code ("(72, 64) SEC-DED version 1" from Hsiao 1970): all 56
 * weight-3 columns plus eight weight-5 columns for data, identity
 * columns for the checks. Odd-weight columns guarantee SEC-DED and
 * minimum total weight minimizes XOR count.
 *
 * The *assignment* of columns to data-bit positions does not change
 * the SEC-DED guarantees, but it does change how often a multi-bit
 * error confined to one aligned byte aliases to a correctable or
 * zero syndrome - i.e. the byte-error SDC rate of plain SEC-DED.
 * Hsiao 1970 does not survive in the paper (only its citation), so
 * hsiao7264Matrix() uses a deterministic arrangement calibrated so
 * the byte-error SDC rate of non-interleaved SEC-DED matches the
 * behaviour the paper reports (~23% of byte errors neither corrected
 * nor detected); hsiao7264LexMatrix() keeps the naive lexicographic
 * arrangement (~32%) for the arrangement-sensitivity ablation.
 */

#ifndef GPUECC_CODES_HSIAO_HPP
#define GPUECC_CODES_HSIAO_HPP

#include "gf2/matrix.hpp"

namespace gpuecc {

/**
 * The 8x72 Hsiao parity-check matrix used as the library's SEC-DED
 * baseline. Columns 0..63 carry data, columns 64..71 are the
 * identity (check bits).
 */
Gf2Matrix hsiao7264Matrix();

/**
 * The same column multiset with data columns in lexicographic order
 * (all weight-3 ascending, then the greedily row-balanced weight-5
 * picks). Used by the Hsiao-arrangement ablation.
 */
Gf2Matrix hsiao7264LexMatrix();

} // namespace gpuecc

#endif // GPUECC_CODES_HSIAO_HPP
