/**
 * @file
 * The paper's SEC-2bEC code (Equation 3).
 *
 * Equation 3 of the paper publishes the 8x72 parity-check matrix of a
 * SEC-DED code that additionally maps every aligned 2-bit error to a
 * unique syndrome, found by the authors with a genetic algorithm. We
 * decode the printed Crockford-Base32 rows verbatim; validation (all
 * columns odd-weight and distinct, aligned pairs unique) lives in
 * Code72's property checks and is asserted by the test suite.
 */

#ifndef GPUECC_CODES_SEC2BEC_HPP
#define GPUECC_CODES_SEC2BEC_HPP

#include <array>
#include <string>

#include "gf2/matrix.hpp"

namespace gpuecc {

/** The eight Crockford-Base32 row strings exactly as printed. */
const std::array<std::string, 8>& sec2becPaperRows();

/**
 * The paper's SEC-2bEC parity-check matrix.
 *
 * Column j of the matrix is printed column j (leftmost bit of each
 * Base32 row integer is column 0); columns 64..71 come out as the
 * identity, i.e. the printed matrix is already systematic. The
 * aligned 2-bit symbols of this matrix are the bit-adjacent pairs
 * (2t, 2t+1) - for interleaved use, swizzle with
 * sec2becInterleavedMatrix().
 */
Gf2Matrix sec2becPaperMatrix();

/**
 * The paper's SEC-2bEC matrix with columns permuted for interleaved
 * use.
 *
 * Logical codeword interleaving converts a physical byte error into
 * one stride-4 symbol {8g+m, 8g+m+4} per codeword, so the interleaved
 * decoder must treat those positions as its aligned symbols. The
 * printed matrix only guarantees unique syndromes for bit-adjacent
 * pairs; this permutation maps printed pair (2t, 2t+1) onto stride-4
 * pair t so the guarantee transfers. Use with Code72 and
 * Code72::stride4Pairs().
 */
Gf2Matrix sec2becInterleavedMatrix();

/**
 * The column permutation used by sec2becInterleavedMatrix().
 *
 * @return perm such that interleaved column perm[m] = printed column
 *         m; pair t of the stride-4 pairing receives printed columns
 *         (2t, 2t+1)
 */
std::array<int, 72> sec2becInterleavePermutation();

} // namespace gpuecc

#endif // GPUECC_CODES_SEC2BEC_HPP
