/**
 * @file
 * The (72, 64) binary linear block code engine.
 *
 * Every binary scheme in the paper builds on (72, 64) codewords: one
 * 64-bit data word plus one 8-bit check byte per DRAM beat. Code72
 * wraps an arbitrary 8x72 parity-check matrix, derives a systematic
 * encoder, and provides the two decode modes used by the paper:
 *
 *  - Mode::secDed  - single-bit correction, double-bit detection;
 *  - Mode::sec2bEc - additionally corrects an error confined to one
 *    aligned 2-bit symbol, where the symbol pairing is a constructor
 *    parameter (bit-adjacent pairs for non-interleaved use, stride-4
 *    pairs for interleaved use, per Section 6.1 of the paper).
 */

#ifndef GPUECC_CODES_LINEAR_CODE_HPP
#define GPUECC_CODES_LINEAR_CODE_HPP

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/bits.hpp"
#include "common/codec_mode.hpp"
#include "gf2/matrix.hpp"
#include "gf2/parity_table.hpp"

namespace gpuecc {

/** Outcome of decoding one 72-bit codeword. */
struct CodewordDecode
{
    /** What the decoder concluded. */
    enum class Status
    {
        clean,      //!< zero syndrome, nothing to do
        corrected,  //!< a correction was applied
        due         //!< detected-yet-uncorrectable
    };

    Status status;
    /** Mask of bits the decoder flipped (empty unless corrected). */
    Bits72 correction;
};

/** A (72, 64) binary linear block code defined by its H matrix. */
class Code72
{
  public:
    static constexpr int n = 72;
    static constexpr int k = 64;
    static constexpr int r = 8;

    /** Decoder operating mode (TrioECC toggles between these). */
    enum class Mode
    {
        secDed,
        sec2bEc
    };

    /** The bit-adjacent symbol pairing {(0,1), (2,3), ...}. */
    static std::vector<std::pair<int, int>> adjacentPairs();

    /**
     * The stride-4 symbol pairing {(8g+m, 8g+m+4)} induced by the
     * paper's logical codeword interleaving: a physical byte error
     * deposits exactly one such symbol error in each codeword.
     */
    static std::vector<std::pair<int, int>> stride4Pairs();

    /**
     * Build the code from a parity-check matrix.
     *
     * @param h     8x72 parity-check matrix of full rank whose columns
     *              64..71 form an invertible submatrix (check bits
     *              live in the top byte of the codeword)
     * @param pairs the 36 disjoint aligned 2-bit symbols used by
     *              Mode::sec2bEc
     */
    explicit Code72(const Gf2Matrix& h,
                    std::vector<std::pair<int, int>> pairs =
                        adjacentPairs());

    /**
     * Encode a 64-bit data word into a codeword (data in bits 0..63).
     * Dispatches on the global codec backend; both implementations
     * compute the same systematic encoding.
     */
    Bits72
    encode(std::uint64_t data) const
    {
        return useReferenceCodec() ? encodeReference(data)
                                   : encodeCompiled(data);
    }

    /** Table-compiled encode: one lookup per data byte. */
    Bits72 encodeCompiled(std::uint64_t data) const;

    /** Reference encode: one masked-parity product per check row. */
    Bits72 encodeReference(std::uint64_t data) const;

    /** Extract the data bits (positions 0..63) from a codeword. */
    std::uint64_t extractData(const Bits72& cw) const;

    /** 8-bit syndrome of a received word (0 means a valid codeword). */
    std::uint8_t
    syndrome(const Bits72& received) const
    {
        return useReferenceCodec() ? syndromeReference(received)
                                   : syndromeCompiled(received);
    }

    /** Table-compiled syndrome: 9 byte-table lookups. */
    std::uint8_t
    syndromeCompiled(const Bits72& received) const
    {
        return static_cast<std::uint8_t>(syn_table_.apply(received));
    }

    /** Reference syndrome: 8 H-row inner products. */
    std::uint8_t syndromeReference(const Bits72& received) const;

    /** Decode a received word in the given mode (backend dispatch). */
    CodewordDecode
    decode(const Bits72& received, Mode mode) const
    {
        return useReferenceCodec() ? decodeReference(received, mode)
                                   : decodeCompiled(received, mode);
    }

    /** Compiled decode: syndrome lookup + one correction-table read. */
    CodewordDecode
    decodeCompiled(const Bits72& received, Mode mode) const
    {
        return decode_tables_[mode == Mode::sec2bEc]
                             [syndromeCompiled(received)];
    }

    /** Reference decode: matrix syndrome + branched match logic. */
    CodewordDecode decodeReference(const Bits72& received,
                                   Mode mode) const;

    /**
     * Decode with one known-erased position (e.g. a diagnosed
     * permanent pin failure crossing this codeword). With d = 4 the
     * code corrects the erasure *plus* one additional error:
     * interpret the erased bit as 0 or 1, and exactly one
     * interpretation leaves a zero or single-bit-correctable
     * syndrome (odd/even weight separates the two). The returned
     * correction mask is relative to the received word, covering
     * both the erasure fill and any error correction.
     */
    CodewordDecode
    decodeWithErasure(const Bits72& received, int erased_pos) const
    {
        return decodeWithErasureImpl(erased_pos, syndrome(received));
    }

    /** Erasure decode forced onto the compiled syndrome path. */
    CodewordDecode
    decodeWithErasureCompiled(const Bits72& received,
                              int erased_pos) const
    {
        return decodeWithErasureImpl(erased_pos,
                                     syndromeCompiled(received));
    }

    /** Erasure decode forced onto the reference syndrome path. */
    CodewordDecode
    decodeWithErasureReference(const Bits72& received,
                               int erased_pos) const
    {
        return decodeWithErasureImpl(erased_pos,
                                     syndromeReference(received));
    }

    /** The (row-reduced, systematic) parity-check matrix in use. */
    const Gf2Matrix& parityCheck() const { return h_; }

    /** Syndrome of a single-bit error at the given position. */
    std::uint8_t columnSyndrome(int pos) const { return col_syn_[pos]; }

    /**
     * Precomputed decode outcome for a syndrome value in the given
     * mode (the compiled codec's correction table; entry-level codecs
     * re-map it through their layout).
     */
    const CodewordDecode&
    outcomeForSyndrome(std::uint8_t s, Mode mode) const
    {
        return decode_tables_[mode == Mode::sec2bEc][s];
    }

    /** The aligned symbol pairing in use. */
    const std::vector<std::pair<int, int>>& pairs() const
    {
        return pairs_;
    }

    /** @name Code property checks (used by tests and the code search)
     *  @{ */
    /** All 72 single-bit syndromes nonzero and distinct. */
    bool isSec() const;
    /** No double-bit error aliases to zero or to a single-bit syndrome. */
    bool isDed() const;
    /** The 36 aligned-pair syndromes are nonzero, distinct, and
     *  disjoint from single-bit syndromes. */
    bool isAligned2bEc() const;
    /** Fraction of non-aligned 2-bit errors whose syndrome collides
     *  with an aligned-pair syndrome (the sec2bEc miscorrection risk
     *  the paper's genetic algorithm minimizes). */
    double nonAligned2bMiscorrectionRate() const;
    /** @} */

  private:
    CodewordDecode decodeWithErasureImpl(int erased_pos,
                                         std::uint8_t syn) const;

    /** Lower H and the encoder into byte tables; fill decode_tables_. */
    void compileTables();

    Gf2Matrix h_;                       //!< row-reduced systematic H
    std::array<Bits72, r> row_masks_;   //!< H rows for fast syndromes
    std::array<std::uint8_t, n> col_syn_;
    std::array<std::uint64_t, r> encoder_masks_; //!< data-bit masks
    std::vector<std::pair<int, int>> pairs_;
    std::array<int, 256> syn_to_bit_;   //!< -1 when no single-bit match
    std::array<int, 256> syn_to_pair_;  //!< -1 when no pair match

    /** @name Compiled codec tables (built once at construction)
     *  @{ */
    ByteParityTable<n> syn_table_;      //!< 9 x 256 syndrome XOR table
    ByteParityTable<k> enc_table_;      //!< 8 x 256 check-byte table
    /** syndrome -> full decode outcome, per mode (secDed, sec2bEc). */
    std::array<std::array<CodewordDecode, 256>, 2> decode_tables_;
    /** @} */
};

} // namespace gpuecc

#endif // GPUECC_CODES_LINEAR_CODE_HPP
