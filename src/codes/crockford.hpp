/**
 * @file
 * Crockford Base32 decoding.
 *
 * The paper publishes its SEC-2bEC parity-check matrix (Eq. 3) with
 * one Crockford-Base32 integer per row; this decodes that text form.
 */

#ifndef GPUECC_CODES_CROCKFORD_HPP
#define GPUECC_CODES_CROCKFORD_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace gpuecc {

/**
 * Decode a Crockford Base32 string into a bit vector.
 *
 * @param text  Base32 digits, most significant first; the decode
 *              aliases I/L -> 1 and O -> 0 per the Crockford spec
 * @param nbits width of the resulting integer; the decoded value must
 *              fit in nbits or the call is a fatal error
 * @return bits[k] is bit k of the integer (LSB-first), size nbits
 */
std::vector<int> crockfordDecode(const std::string& text, int nbits);

/** Encode the LSB-first bit vector back to Crockford Base32. */
std::string crockfordEncode(const std::vector<int>& bits);

} // namespace gpuecc

#endif // GPUECC_CODES_CROCKFORD_HPP
