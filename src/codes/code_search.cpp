#include "codes/code_search.hpp"

#include <array>
#include <set>
#include <vector>

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace gpuecc {

namespace {

/**
 * Cost of a candidate column multiset for a correctable-pair set: a
 * large penalty per correctable pair that is not uniquely decodable,
 * plus the count of non-correctable 2-bit errors whose syndrome
 * collides with a correctable-pair syndrome.
 *
 * @param adjacent_daec false = the 36 aligned pairs (2t, 2t+1);
 *                      true = all 71 adjacent pairs (i, i+1)
 */
int
costOf(const std::array<unsigned, 72>& cols, bool adjacent_daec)
{
    std::set<unsigned> col_set(cols.begin(), cols.end());
    std::set<unsigned> pair_syn;
    int penalty = 0;
    auto is_correctable = [adjacent_daec](int a, int b) {
        return b == a + 1 && (adjacent_daec || a % 2 == 0);
    };
    for (int a = 0; a + 1 < 72; ++a) {
        if (!is_correctable(a, a + 1))
            continue;
        const unsigned s = cols[a] ^ cols[a + 1];
        if (s == 0 || col_set.count(s) || !pair_syn.insert(s).second)
            penalty += 100000;
    }
    int collisions = 0;
    for (int a = 0; a < 72; ++a) {
        for (int b = a + 1; b < 72; ++b) {
            if (is_correctable(a, b))
                continue;
            if (pair_syn.count(cols[a] ^ cols[b]))
                ++collisions;
        }
    }
    return penalty + collisions;
}

} // namespace

namespace {

CodeSearchResult
searchPairCode(Rng& rng, int iterations, bool adjacent_daec)
{
    // Candidate pool: all odd-weight bytes except the 8 weight-1
    // values reserved for the check bits.
    std::vector<unsigned> pool;
    for (unsigned v = 0; v < 256; ++v) {
        const int w = popcount64(v);
        if ((w & 1) && w > 1)
            pool.push_back(v);
    }
    require(pool.size() == 120, "odd-weight pool should have 120 entries");

    // Initial state: a random distinct selection of 64 data columns,
    // plus the identity check columns at 64..71.
    std::array<unsigned, 72> cols{};
    {
        std::vector<unsigned> shuffled = pool;
        for (std::size_t i = shuffled.size() - 1; i > 0; --i) {
            const std::size_t j = rng.nextBounded(i + 1);
            std::swap(shuffled[i], shuffled[j]);
        }
        for (int c = 0; c < 64; ++c)
            cols[c] = shuffled[c];
        for (int row = 0; row < 8; ++row)
            cols[64 + row] = 1u << row;
    }

    int cost = costOf(cols, adjacent_daec);
    int evals = 1;
    for (int it = 0; it < iterations; ++it) {
        std::array<unsigned, 72> cand = cols;
        if (rng.nextBool(0.5)) {
            // Replace a data column with an unused pool value.
            const int c = static_cast<int>(rng.nextBounded(64));
            const unsigned v =
                pool[rng.nextBounded(pool.size())];
            bool in_use = false;
            for (unsigned existing : cand) {
                if (existing == v) {
                    in_use = true;
                    break;
                }
            }
            if (in_use)
                continue;
            cand[c] = v;
        } else {
            // Swap two data columns (changes the pair structure).
            const int a = static_cast<int>(rng.nextBounded(64));
            const int b = static_cast<int>(rng.nextBounded(64));
            if (a == b)
                continue;
            std::swap(cand[a], cand[b]);
        }
        const int cand_cost = costOf(cand, adjacent_daec);
        ++evals;
        if (cand_cost <= cost) {
            cols = cand;
            cost = cand_cost;
        }
    }
    require(cost < 100000,
            "code search failed to satisfy pair-syndrome uniqueness");

    Gf2Matrix h(8, 72);
    for (int c = 0; c < 72; ++c) {
        for (int row = 0; row < 8; ++row)
            h.set(row, c, (cols[c] >> row) & 1);
    }
    const int non_correctable_pairs =
        72 * 71 / 2 - (adjacent_daec ? 71 : 36);
    return {h, static_cast<double>(cost) / non_correctable_pairs,
            evals};
}

} // namespace

CodeSearchResult
searchSec2bEcCode(Rng& rng, int iterations)
{
    return searchPairCode(rng, iterations, false);
}

CodeSearchResult
searchDaecCode(Rng& rng, int iterations)
{
    return searchPairCode(rng, iterations, true);
}

} // namespace gpuecc
