#include "codes/crockford.hpp"

#include <cctype>

#include "common/log.hpp"

namespace gpuecc {

namespace {

const char kAlphabet[] = "0123456789ABCDEFGHJKMNPQRSTVWXYZ";

int
digitValue(char c)
{
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    // Crockford decoding aliases.
    if (c == 'I' || c == 'L')
        c = '1';
    if (c == 'O')
        c = '0';
    for (int v = 0; v < 32; ++v) {
        if (kAlphabet[v] == c)
            return v;
    }
    fatal(std::string("invalid Crockford Base32 digit: '") + c + "'");
}

} // namespace

std::vector<int>
crockfordDecode(const std::string& text, int nbits)
{
    require(nbits > 0, "crockfordDecode: nbits must be positive");
    std::vector<int> bits(nbits, 0);
    for (char c : text) {
        if (c == '-')
            continue; // Crockford permits hyphen separators
        const int v = digitValue(c);
        // Shift the accumulated value left by one digit (5 bits); any
        // set bit shifted past nbits means the value does not fit.
        for (int k = nbits - 1; k > nbits - 1 - 5; --k) {
            if (k >= 0 && bits[k]) {
                fatal("crockfordDecode: value does not fit in " +
                      std::to_string(nbits) + " bits");
            }
        }
        for (int k = nbits - 1; k >= 5; --k)
            bits[k] = bits[k - 5];
        for (int k = 0; k < 5 && k < nbits; ++k)
            bits[k] = (v >> k) & 1;
    }
    return bits;
}

std::string
crockfordEncode(const std::vector<int>& bits)
{
    const int nbits = static_cast<int>(bits.size());
    const int ndigits = (nbits + 4) / 5;
    std::string out(ndigits, '0');
    for (int d = 0; d < ndigits; ++d) {
        int v = 0;
        for (int k = 0; k < 5; ++k) {
            const int bit = d * 5 + k;
            if (bit < nbits && bits[bit])
                v |= 1 << k;
        }
        out[ndigits - 1 - d] = kAlphabet[v];
    }
    return out;
}

} // namespace gpuecc
