#include "codes/sec2bec.hpp"

#include "codes/crockford.hpp"
#include "codes/linear_code.hpp"
#include "common/log.hpp"

namespace gpuecc {

const std::array<std::string, 8>&
sec2becPaperRows()
{
    static const std::array<std::string, 8> rows = {
        "2JZXMJP4K6FNWM0",
        "0CRW9M5962TJMA0",
        "1N9NJ8ZACKPQGH0",
        "1B5B40P8S9A8H0G",
        "2V3K9DWNJE0Z6G8",
        "1ZDTJP8Z0CHGQR4",
        "3MMQ5N4E4H1CA02",
        "1FEYAZNM9J64DR1",
    };
    return rows;
}

Gf2Matrix
sec2becPaperMatrix()
{
    Gf2Matrix h(8, 72);
    for (int row = 0; row < 8; ++row) {
        // crockfordDecode returns LSB-first bits of the row integer;
        // printed column j is bit (71 - j).
        const std::vector<int> bits =
            crockfordDecode(sec2becPaperRows()[row], 72);
        for (int c = 0; c < 72; ++c)
            h.set(row, c, bits[71 - c]);
    }
    return h;
}

std::array<int, 72>
sec2becInterleavePermutation()
{
    const auto stride4 = Code72::stride4Pairs();
    std::array<int, 72> perm{};
    for (int t = 0; t < 36; ++t) {
        perm[2 * t] = stride4[t].first;
        perm[2 * t + 1] = stride4[t].second;
    }
    return perm;
}

Gf2Matrix
sec2becInterleavedMatrix()
{
    const Gf2Matrix printed = sec2becPaperMatrix();
    const auto perm = sec2becInterleavePermutation();
    Gf2Matrix h(8, 72);
    for (int m = 0; m < 72; ++m) {
        for (int row = 0; row < 8; ++row)
            h.set(row, perm[m], printed.get(row, m));
    }
    return h;
}

} // namespace gpuecc
