#include "codes/linear_code.hpp"

#include <set>

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace gpuecc {

std::vector<std::pair<int, int>>
Code72::adjacentPairs()
{
    std::vector<std::pair<int, int>> pairs;
    pairs.reserve(n / 2);
    for (int t = 0; t < n / 2; ++t)
        pairs.emplace_back(2 * t, 2 * t + 1);
    return pairs;
}

std::vector<std::pair<int, int>>
Code72::stride4Pairs()
{
    std::vector<std::pair<int, int>> pairs;
    pairs.reserve(n / 2);
    for (int g = 0; g < n / 8; ++g) {
        for (int m = 0; m < 4; ++m)
            pairs.emplace_back(8 * g + m, 8 * g + m + 4);
    }
    return pairs;
}

Code72::Code72(const Gf2Matrix& h, std::vector<std::pair<int, int>> pairs)
    : h_(h), pairs_(std::move(pairs))
{
    require(h.rows() == r && h.cols() == n,
            "Code72 expects an 8x72 parity-check matrix");
    require(static_cast<int>(pairs_.size()) == n / 2,
            "Code72 expects 36 aligned symbol pairs");
    {
        std::set<int> covered;
        for (const auto& [a, b] : pairs_) {
            require(a >= 0 && a < n && b >= 0 && b < n && a != b,
                    "Code72 pair positions out of range");
            covered.insert(a);
            covered.insert(b);
        }
        require(static_cast<int>(covered.size()) == n,
                "Code72 pairs must tile all 72 bit positions");
    }

    // Row-reduce so columns 64..71 are the identity; then the check
    // byte is a linear function of the data bits and the syndrome of
    // a received word is recomputed-check XOR received-check.
    std::vector<int> check_cols;
    for (int c = k; c < n; ++c)
        check_cols.push_back(c);
    const auto t_inv = h.selectColumns(check_cols).inverse();
    require(t_inv.has_value(),
            "Code72: check columns 64..71 are not invertible");
    h_ = t_inv->multiply(h);

    for (int row = 0; row < r; ++row) {
        Bits72 mask;
        std::uint64_t enc = 0;
        for (int c = 0; c < n; ++c) {
            if (h_.get(row, c)) {
                mask.set(c, 1);
                if (c < k)
                    enc |= bit64(c);
            }
        }
        row_masks_[row] = mask;
        encoder_masks_[row] = enc;
    }
    for (int c = 0; c < n; ++c) {
        std::uint8_t s = 0;
        for (int row = 0; row < r; ++row)
            s |= static_cast<std::uint8_t>(h_.get(row, c)) << row;
        col_syn_[c] = s;
    }

    syn_to_bit_.fill(-1);
    for (int c = 0; c < n; ++c) {
        if (col_syn_[c] != 0 && syn_to_bit_[col_syn_[c]] == -1)
            syn_to_bit_[col_syn_[c]] = c;
    }
    syn_to_pair_.fill(-1);
    for (int p = 0; p < static_cast<int>(pairs_.size()); ++p) {
        const std::uint8_t s = static_cast<std::uint8_t>(
            col_syn_[pairs_[p].first] ^ col_syn_[pairs_[p].second]);
        if (s != 0 && syn_to_bit_[s] == -1 && syn_to_pair_[s] == -1)
            syn_to_pair_[s] = p;
    }

    compileTables();
}

void
Code72::compileTables()
{
    // Syndrome map: column c of H contributes col_syn_[c]; identical
    // to the row-mask inner products, re-associated per input byte.
    std::vector<std::uint64_t> syn_cols(n);
    for (int c = 0; c < n; ++c)
        syn_cols[c] = col_syn_[c];
    syn_table_ = ByteParityTable<n>::fromColumnWords(syn_cols);

    // Encoder map: check bit `row` depends on data bit c iff
    // encoder_masks_[row] has bit c set.
    std::vector<std::uint64_t> enc_cols(k, 0);
    for (int row = 0; row < r; ++row) {
        for (int c = 0; c < k; ++c) {
            if ((encoder_masks_[row] >> c) & 1)
                enc_cols[c] |= bit64(row);
        }
    }
    enc_table_ = ByteParityTable<k>::fromColumnWords(enc_cols);

    // Syndrome -> outcome tables: the compiled decode is one lookup.
    for (int m = 0; m < 2; ++m) {
        decode_tables_[m][0] = {CodewordDecode::Status::clean, Bits72{}};
        for (int s = 1; s < 256; ++s) {
            CodewordDecode d{CodewordDecode::Status::due, Bits72{}};
            if (const int pos = syn_to_bit_[s]; pos >= 0) {
                d.status = CodewordDecode::Status::corrected;
                d.correction.set(pos, 1);
            } else if (m == 1) {
                if (const int p = syn_to_pair_[s]; p >= 0) {
                    d.status = CodewordDecode::Status::corrected;
                    d.correction.set(pairs_[p].first, 1);
                    d.correction.set(pairs_[p].second, 1);
                }
            }
            decode_tables_[m][s] = d;
        }
    }
}

Bits72
Code72::encodeCompiled(std::uint64_t data) const
{
    Bits72 cw;
    cw.setWord(0, data);
    cw.setWord(1, enc_table_.applyWord(data));
    return cw;
}

Bits72
Code72::encodeReference(std::uint64_t data) const
{
    Bits72 cw;
    cw.setWord(0, data);
    std::uint64_t check = 0;
    for (int row = 0; row < r; ++row) {
        if (parity64(encoder_masks_[row] & data))
            check |= bit64(row);
    }
    cw.insert(k, r, check);
    return cw;
}

std::uint64_t
Code72::extractData(const Bits72& cw) const
{
    return cw.word(0);
}

std::uint8_t
Code72::syndromeReference(const Bits72& received) const
{
    std::uint8_t s = 0;
    for (int row = 0; row < r; ++row) {
        s |= static_cast<std::uint8_t>(row_masks_[row].andParity(received))
             << row;
    }
    return s;
}

CodewordDecode
Code72::decodeReference(const Bits72& received, Mode mode) const
{
    const std::uint8_t s = syndromeReference(received);
    if (s == 0)
        return {CodewordDecode::Status::clean, Bits72{}};

    if (const int pos = syn_to_bit_[s]; pos >= 0) {
        Bits72 fix;
        fix.set(pos, 1);
        return {CodewordDecode::Status::corrected, fix};
    }
    if (mode == Mode::sec2bEc) {
        if (const int p = syn_to_pair_[s]; p >= 0) {
            Bits72 fix;
            fix.set(pairs_[p].first, 1);
            fix.set(pairs_[p].second, 1);
            return {CodewordDecode::Status::corrected, fix};
        }
    }
    return {CodewordDecode::Status::due, Bits72{}};
}

CodewordDecode
Code72::decodeWithErasureImpl(int erased_pos, std::uint8_t s) const
{
    require(erased_pos >= 0 && erased_pos < n,
            "decodeWithErasure: bad position");
    // Interpretation A: the erased bit's received value is right
    // (syndrome s was computed by the caller's chosen backend).
    // Interpretation B: it is flipped.
    const std::uint8_t s_flip =
        static_cast<std::uint8_t>(s ^ col_syn_[erased_pos]);

    auto resolves = [this, erased_pos](std::uint8_t syn,
                                       Bits72& fix) -> bool {
        if (syn == 0)
            return true;
        const int pos = syn_to_bit_[syn];
        if (pos < 0)
            return false;
        // Correcting at the erased position is interpretation B's
        // job; rejecting it here keeps the two cases disjoint.
        if (pos == erased_pos)
            return false;
        fix.set(pos, 1);
        return true;
    };

    Bits72 fix_a, fix_b;
    const bool a_ok = resolves(s, fix_a);
    const bool b_ok = resolves(s_flip, fix_b);
    // Odd-weight columns make the two interpretations' syndrome
    // parities differ, so at most one resolves.
    if (a_ok) {
        return {fix_a.none() ? CodewordDecode::Status::clean
                             : CodewordDecode::Status::corrected,
                fix_a};
    }
    if (b_ok) {
        fix_b.set(erased_pos, 1);
        return {CodewordDecode::Status::corrected, fix_b};
    }
    return {CodewordDecode::Status::due, Bits72{}};
}

bool
Code72::isSec() const
{
    std::set<std::uint8_t> seen;
    for (int c = 0; c < n; ++c) {
        if (col_syn_[c] == 0 || !seen.insert(col_syn_[c]).second)
            return false;
    }
    return true;
}

bool
Code72::isDed() const
{
    // A double-bit error must be neither zero (distinct columns) nor
    // equal to any single column; both properties are invariant under
    // the row reduction applied in the constructor.
    std::set<std::uint8_t> cols(col_syn_.begin(), col_syn_.end());
    for (int a = 0; a < n; ++a) {
        for (int b = a + 1; b < n; ++b) {
            const std::uint8_t s =
                static_cast<std::uint8_t>(col_syn_[a] ^ col_syn_[b]);
            if (s == 0 || cols.count(s))
                return false;
        }
    }
    return true;
}

bool
Code72::isAligned2bEc() const
{
    std::set<std::uint8_t> cols(col_syn_.begin(), col_syn_.end());
    std::set<std::uint8_t> pair_syn;
    for (const auto& [a, b] : pairs_) {
        const std::uint8_t s =
            static_cast<std::uint8_t>(col_syn_[a] ^ col_syn_[b]);
        if (s == 0 || cols.count(s) || !pair_syn.insert(s).second)
            return false;
    }
    return true;
}

double
Code72::nonAligned2bMiscorrectionRate() const
{
    std::set<std::uint8_t> pair_syn;
    std::set<std::pair<int, int>> aligned;
    for (const auto& [a, b] : pairs_) {
        pair_syn.insert(
            static_cast<std::uint8_t>(col_syn_[a] ^ col_syn_[b]));
        aligned.insert({std::min(a, b), std::max(a, b)});
    }
    int collisions = 0;
    int total = 0;
    for (int a = 0; a < n; ++a) {
        for (int b = a + 1; b < n; ++b) {
            if (aligned.count({a, b}))
                continue;
            ++total;
            const std::uint8_t s =
                static_cast<std::uint8_t>(col_syn_[a] ^ col_syn_[b]);
            if (pair_syn.count(s))
                ++collisions;
        }
    }
    return static_cast<double>(collisions) / static_cast<double>(total);
}

} // namespace gpuecc
