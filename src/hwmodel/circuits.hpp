/**
 * @file
 * Gate-level circuit generators for every encoder and decoder in the
 * paper's Table 3.
 *
 * Encoders (and Reed-Solomon syndrome generators) are GF(2)-linear,
 * so their XOR terms are derived by probing the actual library
 * implementations with unit vectors - the synthesized hardware is
 * guaranteed to match the software codec. Decoders are built
 * structurally: H-column-match (HCM) comparators feeding correction
 * XORs for the binary codes, and discrete-log ROMs with end-around-
 * carry subtractors for the one-shot Reed-Solomon decoders
 * (Figure 7 of the paper).
 */

#ifndef GPUECC_HWMODEL_CIRCUITS_HPP
#define GPUECC_HWMODEL_CIRCUITS_HPP

#include <memory>
#include <vector>

#include "codes/linear_code.hpp"
#include "ecc/scheme.hpp"
#include "hwmodel/netlist.hpp"
#include "interleave/swizzle.hpp"

namespace gpuecc {
namespace hw {

/**
 * XOR terms of an entry encoder's check bits, probed from the scheme.
 *
 * @return one entry per physical output bit that is not a plain data
 *         wire: (physical bit index, data-bit indices XORed into it)
 */
std::vector<std::pair<int, std::vector<int>>>
probeEncoderTerms(const EntryScheme& scheme);

/** Build the full-entry encoder for any (linear) scheme. */
Netlist buildEntryEncoder(const EntryScheme& scheme, bool share);

/**
 * Build the 4-codeword binary decoder.
 *
 * @param code        inner (72, 64) code
 * @param sec2bec     include the half-width pair-HCM circuits
 * @param interleaved physical bit arrangement (wires only)
 * @param csc         include the correction sanity check logic
 * @param share       CSE the syndrome XOR networks ("Eff." point)
 */
Netlist buildBinaryDecoder(const Code72& code, bool sec2bec,
                           bool interleaved, bool csc, bool share);

/** Build the interleaved (18, 16) x2 one-shot SSC decoder. */
Netlist buildSscDecoder(bool csc, bool share);

/** Build the (36, 32) SSC-DSD+ one-shot decoder. */
Netlist buildDsdPlusDecoder(bool share);

/** All Table 3 rows (encoders then decoders, Perf. and Eff. points). */
std::vector<SynthesisReport> table3Reports();

} // namespace hw
} // namespace gpuecc

#endif // GPUECC_HWMODEL_CIRCUITS_HPP
