#include "hwmodel/xor_network.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/log.hpp"

namespace gpuecc {
namespace hw {

namespace {

using Pair = std::pair<int, int>;

Pair
makePair(int a, int b)
{
    return {std::min(a, b), std::max(a, b)};
}

} // namespace

std::vector<int>
synthesizeXorNetwork(Netlist& nl,
                     const std::vector<std::vector<int>>& terms,
                     bool share)
{
    std::vector<int> outputs(terms.size(), -1);

    if (!share) {
        for (std::size_t i = 0; i < terms.size(); ++i) {
            outputs[i] = terms[i].empty() ? nl.constant(false)
                                          : nl.xorTree(terms[i]);
        }
        return outputs;
    }

    // Greedy common-pair extraction. Work on sorted literal sets;
    // each extraction introduces a new literal for the shared gate.
    std::vector<std::set<int>> sets;
    sets.reserve(terms.size());
    for (const auto& t : terms)
        sets.emplace_back(t.begin(), t.end());

    for (;;) {
        std::map<Pair, int> freq;
        for (const auto& s : sets) {
            // Counting all pairs is quadratic in the set size but the
            // sets here are at most a few dozen literals.
            for (auto i = s.begin(); i != s.end(); ++i) {
                for (auto j = std::next(i); j != s.end(); ++j)
                    ++freq[makePair(*i, *j)];
            }
        }
        Pair best{-1, -1};
        int best_count = 1;
        for (const auto& [pair, count] : freq) {
            if (count > best_count) {
                best_count = count;
                best = pair;
            }
        }
        if (best.first < 0)
            break;
        const int shared = nl.gate(GateKind::xor2, best.first,
                                   best.second);
        for (auto& s : sets) {
            if (s.count(best.first) && s.count(best.second)) {
                s.erase(best.first);
                s.erase(best.second);
                s.insert(shared);
            }
        }
    }

    for (std::size_t i = 0; i < sets.size(); ++i) {
        if (sets[i].empty()) {
            outputs[i] = nl.constant(false);
        } else {
            outputs[i] = nl.xorTree(
                std::vector<int>(sets[i].begin(), sets[i].end()));
        }
    }
    return outputs;
}

} // namespace hw
} // namespace gpuecc
