/**
 * @file
 * A small gate-level netlist IR with area/delay estimation.
 *
 * The paper reports encoder/decoder overheads from Synopsys synthesis
 * in a 16nm library, normalized to equivalent AND2-gate counts
 * (Table 3). Without that proprietary flow we build the actual
 * combinational netlists of every encoder and decoder and estimate:
 *
 *  - area as the sum of per-gate AND2-equivalent factors (standard
 *    gate-equivalent ratios), and
 *  - delay as the critical path in AND2-delay units, scaled by a
 *    single technology constant calibrated so the baseline SEC-DED
 *    encoder matches the paper's 0.09 ns.
 *
 * Structural hashing deduplicates identical gates, and lookup-table
 * blocks (the discrete-log ROMs of the one-shot Reed-Solomon
 * decoders) use a documented area/delay heuristic.
 */

#ifndef GPUECC_HWMODEL_NETLIST_HPP
#define GPUECC_HWMODEL_NETLIST_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace gpuecc {
namespace hw {

/** Combinational gate kinds. */
enum class GateKind
{
    input,
    constant, //!< constant 0/1 (b field)
    notGate,
    and2,
    or2,
    xor2,
    xnor2,
    mux2,     //!< inputs: select, a (sel=0), b (sel=1)
    blackBox, //!< LUT/ROM block with explicit area/delay
    busBit    //!< one output bit of a blackBox bus
};

/** Per-technology delay scale: AND2 delay in nanoseconds, calibrated
 *  so the baseline SEC-DED encoder synthesizes to the paper's
 *  0.09 ns (16nm-class). */
constexpr double and2_delay_ns = 0.0129;

/** A combinational netlist under construction. */
class Netlist
{
  public:
    /** Add a primary input. */
    int input(const std::string& name);

    /** Constant node. */
    int constant(bool value);

    /** Add a gate with structural-hash deduplication (commutative
     *  gates canonicalize operand order). */
    int gate(GateKind kind, int a, int b = -1, int c = -1);

    int notOf(int a) { return gate(GateKind::notGate, a); }

    /** Balanced reduction trees. */
    int andTree(std::vector<int> nodes);
    int orTree(std::vector<int> nodes);
    int xorTree(std::vector<int> nodes);

    /**
     * A black-box LUT/ROM block.
     *
     * Area heuristic: out_bits * 2^in_bits / 4 AND2 (two-level logic
     * after don't-care optimization); delay: 4 + in_bits / 2 units.
     * The optional evaluator (value of the input bus, LSB = first
     * input -> value of the output bus) makes the block simulatable.
     *
     * @return one node per output bit, LSB first
     */
    std::vector<int>
    lut(const std::vector<int>& inputs, int out_bits,
        const std::string& name,
        std::function<std::uint64_t(std::uint64_t)> evaluate = {});

    /** Mark a node as a primary output. */
    void output(const std::string& name, int node);

    /** Number of real gates (inputs/constants excluded). */
    int gateCount() const;

    /** Total area in AND2 equivalents. */
    double areaAnd2() const;

    /** Critical input-to-output path in AND2-delay units. */
    double delayUnits() const;

    /** Critical path in nanoseconds (delayUnits * and2_delay_ns). */
    double delayNs() const { return delayUnits() * and2_delay_ns; }

    /** Number of primary inputs. */
    int inputCount() const { return static_cast<int>(inputs_.size()); }

    /** Number of primary outputs. */
    int outputCount() const { return static_cast<int>(outputs_.size()); }

    /** Name of output index i (declaration order). */
    const std::string& outputName(int i) const;

    /**
     * Simulate the netlist (tests use this to check the synthesized
     * circuits against the software codecs). Black-box nodes are not
     * simulatable and trigger a panic.
     *
     * @param input_values one value per input, in creation order
     * @return output values in declaration order
     */
    std::vector<bool>
    evaluate(const std::vector<bool>& input_values) const;

    /**
     * Emit synthesizable structural Verilog for the netlist.
     *
     * Supports pure-gate circuits (every encoder and the binary
     * decoders); black-box ROM nodes are a fatal error since their
     * contents live outside the netlist IR.
     *
     * @param module_name Verilog module name
     */
    std::string toVerilog(const std::string& module_name) const;

  private:
    struct Node
    {
        GateKind kind;
        int a = -1, b = -1, c = -1; //!< busBit: a = blackBox, b = bit
        bool const_value = false;
        double bb_area = 0.0;  //!< blackBox only
        double bb_delay = 0.0; //!< blackBox only
        std::vector<int> bb_inputs;
        std::function<std::uint64_t(std::uint64_t)> bb_eval;
    };

    double nodeArea(const Node& n) const;
    double nodeDelay(const Node& n) const;

    std::vector<Node> nodes_;
    std::vector<int> inputs_;
    std::vector<std::string> input_names_;
    std::vector<int> outputs_;
    std::vector<std::string> output_names_;
    std::map<std::tuple<GateKind, int, int, int>, int> hash_;
};

/** One Table 3 row: a synthesized circuit at one design point. */
struct SynthesisReport
{
    std::string circuit;
    std::string design_point; //!< "Perf." or "Eff."
    double area_and2;
    double delay_ns;
};

} // namespace hw
} // namespace gpuecc

#endif // GPUECC_HWMODEL_NETLIST_HPP
