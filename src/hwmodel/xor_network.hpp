/**
 * @file
 * Multi-output XOR network synthesis.
 *
 * Encoders and syndrome generators are collections of XOR functions
 * over shared inputs. The two design points of the paper's Table 3
 * map to two synthesis strategies:
 *
 *  - "Perf.": a balanced XOR tree per output (minimum depth, no
 *    sharing beyond structural hashing);
 *  - "Eff.": greedy common-pair extraction (classic multi-output CSE)
 *    that repeatedly factors the most frequent input pair into a
 *    shared gate, trading depth for area.
 */

#ifndef GPUECC_HWMODEL_XOR_NETWORK_HPP
#define GPUECC_HWMODEL_XOR_NETWORK_HPP

#include <vector>

#include "hwmodel/netlist.hpp"

namespace gpuecc {
namespace hw {

/**
 * Synthesize XOR functions into a netlist.
 *
 * @param nl    target netlist
 * @param terms one entry per output: the node ids to XOR together
 * @param share use greedy common-pair extraction
 * @return node id of each output (same order as terms); empty terms
 *         produce a constant-0 node
 */
std::vector<int> synthesizeXorNetwork(
    Netlist& nl, const std::vector<std::vector<int>>& terms, bool share);

} // namespace hw
} // namespace gpuecc

#endif // GPUECC_HWMODEL_XOR_NETWORK_HPP
