#include "hwmodel/netlist.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <cmath>

#include "common/log.hpp"

namespace gpuecc {
namespace hw {

namespace {

/** AND2-equivalent area factors (standard gate equivalents). */
double
areaFactor(GateKind kind)
{
    switch (kind) {
      case GateKind::input:
      case GateKind::constant:
        return 0.0;
      case GateKind::notGate:
        return 0.5;
      case GateKind::and2:
      case GateKind::or2:
        return 1.0;
      case GateKind::xor2:
      case GateKind::xnor2:
        return 2.25;
      case GateKind::mux2:
        return 2.5;
      case GateKind::blackBox:
      case GateKind::busBit:
        return 0.0; // explicit (busBit is part of its block)
    }
    panic("areaFactor: unknown gate kind");
}

/** Delay factors in AND2-delay units. */
double
delayFactor(GateKind kind)
{
    switch (kind) {
      case GateKind::input:
      case GateKind::constant:
        return 0.0;
      case GateKind::notGate:
        return 0.4;
      case GateKind::and2:
      case GateKind::or2:
        return 1.0;
      case GateKind::xor2:
      case GateKind::xnor2:
        return 1.4;
      case GateKind::mux2:
        return 1.4;
      case GateKind::blackBox:
      case GateKind::busBit:
        return 0.0; // explicit (busBit is part of its block)
    }
    panic("delayFactor: unknown gate kind");
}

bool
commutative(GateKind kind)
{
    switch (kind) {
      case GateKind::and2:
      case GateKind::or2:
      case GateKind::xor2:
      case GateKind::xnor2:
        return true;
      default:
        return false;
    }
}

} // namespace

int
Netlist::input(const std::string& name)
{
    Node in_node{};
    in_node.kind = GateKind::input;
    nodes_.push_back(in_node);
    const int id = static_cast<int>(nodes_.size()) - 1;
    inputs_.push_back(id);
    input_names_.push_back(
        name.empty() ? "in" + std::to_string(inputs_.size() - 1)
                     : name);
    return id;
}

int
Netlist::constant(bool value)
{
    Node n{};
    n.kind = GateKind::constant;
    n.const_value = value;
    nodes_.push_back(n);
    return static_cast<int>(nodes_.size()) - 1;
}

int
Netlist::gate(GateKind kind, int a, int b, int c)
{
    require(a >= 0 && a < static_cast<int>(nodes_.size()),
            "Netlist::gate: bad operand");
    if (commutative(kind) && b >= 0 && b < a)
        std::swap(a, b);
    const auto key = std::make_tuple(kind, a, b, c);
    if (const auto it = hash_.find(key); it != hash_.end())
        return it->second;
    Node n{};
    n.kind = kind;
    n.a = a;
    n.b = b;
    n.c = c;
    nodes_.push_back(n);
    const int id = static_cast<int>(nodes_.size()) - 1;
    hash_[key] = id;
    return id;
}

namespace {

template <typename Fn>
int
reduceTree(std::vector<int> nodes, Fn&& combine)
{
    require(!nodes.empty(), "Netlist reduction over no nodes");
    while (nodes.size() > 1) {
        std::vector<int> next;
        next.reserve((nodes.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < nodes.size(); i += 2)
            next.push_back(combine(nodes[i], nodes[i + 1]));
        if (nodes.size() % 2)
            next.push_back(nodes.back());
        nodes = std::move(next);
    }
    return nodes[0];
}

} // namespace

int
Netlist::andTree(std::vector<int> nodes)
{
    return reduceTree(std::move(nodes), [this](int a, int b) {
        return gate(GateKind::and2, a, b);
    });
}

int
Netlist::orTree(std::vector<int> nodes)
{
    return reduceTree(std::move(nodes), [this](int a, int b) {
        return gate(GateKind::or2, a, b);
    });
}

int
Netlist::xorTree(std::vector<int> nodes)
{
    return reduceTree(std::move(nodes), [this](int a, int b) {
        return gate(GateKind::xor2, a, b);
    });
}

std::vector<int>
Netlist::lut(const std::vector<int>& inputs, int out_bits,
             const std::string& name,
             std::function<std::uint64_t(std::uint64_t)> evaluate)
{
    (void)name;
    Node n{};
    n.kind = GateKind::blackBox;
    n.bb_inputs = inputs;
    n.bb_area = out_bits * std::pow(2.0, inputs.size()) / 4.0;
    n.bb_delay = 4.0 + static_cast<double>(inputs.size()) / 2.0;
    n.bb_eval = std::move(evaluate);
    nodes_.push_back(n);
    const int block = static_cast<int>(nodes_.size()) - 1;

    std::vector<int> bits;
    bits.reserve(out_bits);
    for (int b = 0; b < out_bits; ++b) {
        Node bit{};
        bit.kind = GateKind::busBit;
        bit.a = block;
        bit.b = b;
        nodes_.push_back(bit);
        bits.push_back(static_cast<int>(nodes_.size()) - 1);
    }
    return bits;
}

void
Netlist::output(const std::string& name, int node)
{
    require(node >= 0 && node < static_cast<int>(nodes_.size()),
            "Netlist::output: bad node");
    outputs_.push_back(node);
    output_names_.push_back(name);
}

const std::string&
Netlist::outputName(int i) const
{
    require(i >= 0 && i < static_cast<int>(output_names_.size()),
            "Netlist::outputName: bad index");
    return output_names_[i];
}

std::vector<bool>
Netlist::evaluate(const std::vector<bool>& input_values) const
{
    require(input_values.size() == inputs_.size(),
            "Netlist::evaluate: wrong input count");
    std::vector<char> value(nodes_.size(), 0);
    std::vector<std::uint64_t> bus_value(nodes_.size(), 0);
    std::size_t next_input = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const Node& n = nodes_[i];
        switch (n.kind) {
          case GateKind::input:
            value[i] = input_values[next_input++];
            break;
          case GateKind::constant:
            value[i] = n.const_value;
            break;
          case GateKind::notGate:
            value[i] = !value[n.a];
            break;
          case GateKind::and2:
            value[i] = value[n.a] && value[n.b];
            break;
          case GateKind::or2:
            value[i] = value[n.a] || value[n.b];
            break;
          case GateKind::xor2:
            value[i] = value[n.a] != value[n.b];
            break;
          case GateKind::xnor2:
            value[i] = value[n.a] == value[n.b];
            break;
          case GateKind::mux2:
            value[i] = value[n.a] ? value[n.c] : value[n.b];
            break;
          case GateKind::blackBox: {
            if (!n.bb_eval) {
                panic("Netlist::evaluate: black-box node has no "
                      "evaluator");
            }
            std::uint64_t in_bus = 0;
            for (std::size_t b = 0; b < n.bb_inputs.size(); ++b) {
                if (value[n.bb_inputs[b]])
                    in_bus |= std::uint64_t{1} << b;
            }
            bus_value[i] = n.bb_eval(in_bus);
            break;
          }
          case GateKind::busBit:
            value[i] = (bus_value[n.a] >> n.b) & 1;
            break;
        }
    }
    std::vector<bool> out;
    out.reserve(outputs_.size());
    for (int node : outputs_)
        out.push_back(value[node]);
    return out;
}

int
Netlist::gateCount() const
{
    int n = 0;
    for (const Node& node : nodes_) {
        if (node.kind != GateKind::input &&
            node.kind != GateKind::constant &&
            node.kind != GateKind::busBit) {
            ++n;
        }
    }
    return n;
}

std::string
Netlist::toVerilog(const std::string& module_name) const
{
    // Uniquify port names (fall back to positional names when the
    // builder reused labels).
    auto uniquified = [](const std::vector<std::string>& names,
                         const std::string& prefix) {
        std::set<std::string> seen(names.begin(), names.end());
        if (seen.size() == names.size())
            return names;
        std::vector<std::string> out;
        out.reserve(names.size());
        for (std::size_t i = 0; i < names.size(); ++i)
            out.push_back(prefix + std::to_string(i));
        return out;
    };
    const std::vector<std::string> in_names =
        uniquified(input_names_, "in");
    const std::vector<std::string> out_names =
        uniquified(output_names_, "out");

    std::map<int, std::string> ref; // node id -> verilog expression
    for (std::size_t i = 0; i < inputs_.size(); ++i)
        ref[inputs_[i]] = in_names[i];

    std::ostringstream body;
    for (std::size_t id = 0; id < nodes_.size(); ++id) {
        const Node& n = nodes_[id];
        const std::string wire = "n" + std::to_string(id);
        switch (n.kind) {
          case GateKind::input:
            continue;
          case GateKind::constant:
            ref[id] = n.const_value ? "1'b1" : "1'b0";
            continue;
          case GateKind::blackBox:
            fatal("Netlist::toVerilog: black-box ROM nodes cannot be "
                  "exported (use the pure-gate circuits)");
          default:
            break;
        }
        body << "  wire " << wire << ";\n  assign " << wire << " = ";
        const std::string a = ref.at(n.a);
        switch (n.kind) {
          case GateKind::notGate:
            body << "~" << a;
            break;
          case GateKind::and2:
            body << a << " & " << ref.at(n.b);
            break;
          case GateKind::or2:
            body << a << " | " << ref.at(n.b);
            break;
          case GateKind::xor2:
            body << a << " ^ " << ref.at(n.b);
            break;
          case GateKind::xnor2:
            body << "~(" << a << " ^ " << ref.at(n.b) << ")";
            break;
          case GateKind::mux2:
            body << a << " ? " << ref.at(n.c) << " : " << ref.at(n.b);
            break;
          default:
            panic("Netlist::toVerilog: unexpected gate kind");
        }
        body << ";\n";
        ref[id] = wire;
    }

    std::ostringstream out;
    out << "// Generated by gpuecc hwmodel; " << gateCount()
        << " gates, " << areaAnd2() << " AND2-equivalents.\n";
    out << "module " << module_name << " (\n";
    for (std::size_t i = 0; i < in_names.size(); ++i)
        out << "  input wire " << in_names[i] << ",\n";
    for (std::size_t i = 0; i < out_names.size(); ++i) {
        out << "  output wire " << out_names[i]
            << (i + 1 < out_names.size() ? ",\n" : "\n");
    }
    out << ");\n" << body.str();
    for (std::size_t i = 0; i < outputs_.size(); ++i) {
        out << "  assign " << out_names[i] << " = "
            << ref.at(outputs_[i]) << ";\n";
    }
    out << "endmodule\n";
    return out.str();
}

double
Netlist::nodeArea(const Node& n) const
{
    return n.kind == GateKind::blackBox ? n.bb_area : areaFactor(n.kind);
}

double
Netlist::areaAnd2() const
{
    double total = 0.0;
    for (const Node& n : nodes_)
        total += nodeArea(n);
    return total;
}

double
Netlist::delayUnits() const
{
    std::vector<double> arrival(nodes_.size(), 0.0);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const Node& n = nodes_[i];
        double in = 0.0;
        if (n.kind == GateKind::blackBox) {
            for (int src : n.bb_inputs)
                in = std::max(in, arrival[src]);
            arrival[i] = in + n.bb_delay;
            continue;
        }
        if (n.kind == GateKind::busBit) {
            arrival[i] = arrival[n.a];
            continue;
        }
        for (int src : {n.a, n.b, n.c}) {
            if (src >= 0)
                in = std::max(in, arrival[src]);
        }
        arrival[i] = in + delayFactor(n.kind);
    }
    double worst = 0.0;
    for (int out : outputs_)
        worst = std::max(worst, arrival[out]);
    return worst;
}

} // namespace hw
} // namespace gpuecc
