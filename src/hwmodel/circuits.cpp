#include "hwmodel/circuits.hpp"

#include <algorithm>
#include <array>

#include "codes/hsiao.hpp"
#include "codes/sec2bec.hpp"
#include "common/log.hpp"
#include "ecc/registry.hpp"
#include "ecc/rs_scheme.hpp"
#include "gf256/gf256.hpp"
#include "hwmodel/xor_network.hpp"
#include "rs/rs_code.hpp"

namespace gpuecc {
namespace hw {

namespace {

/** Set data bit i (0..255) of an EntryData. */
EntryData
unitData(int i)
{
    EntryData d{};
    d[i / 64] = std::uint64_t{1} << (i % 64);
    return d;
}

/** Build a full adder; returns {sum, carry_out}. */
std::pair<int, int>
fullAdder(Netlist& nl, int a, int b, int cin)
{
    const int axb = nl.gate(GateKind::xor2, a, b);
    const int sum = nl.gate(GateKind::xor2, axb, cin);
    const int carry = nl.gate(
        GateKind::or2, nl.gate(GateKind::and2, a, b),
        nl.gate(GateKind::and2, cin, axb));
    return {sum, carry};
}

/**
 * End-around-carry subtractor: (a - b) mod 255 for 8-bit discrete
 * logs, via a + ~b with the carry wrapped around (Figure 7c's EAC
 * blocks).
 */
std::array<int, 8>
eacSubtract(Netlist& nl, const std::array<int, 8>& a,
            const std::array<int, 8>& b)
{
    std::array<int, 8> sum1{};
    int carry = nl.constant(false);
    for (int i = 0; i < 8; ++i) {
        auto [s, c] = fullAdder(nl, a[i], nl.notOf(b[i]), carry);
        sum1[i] = s;
        carry = c;
    }
    // End-around: add the carry back in (half-adder ripple).
    std::array<int, 8> out{};
    int inc = carry;
    for (int i = 0; i < 8; ++i) {
        out[i] = nl.gate(GateKind::xor2, sum1[i], inc);
        inc = nl.gate(GateKind::and2, sum1[i], inc);
    }
    // Canonicalize ones'-complement negative zero: 255 -> 0.
    const int all_ones =
        nl.andTree(std::vector<int>(out.begin(), out.end()));
    const int keep = nl.notOf(all_ones);
    for (int i = 0; i < 8; ++i)
        out[i] = nl.gate(GateKind::and2, out[i], keep);
    return out;
}

/** dlog ROM contents for the simulator (dlog(0) is a don't-care the
 *  decoders never use; emit 0). */
std::uint64_t
dlogRomContents(std::uint64_t in)
{
    return in == 0
        ? 0
        : static_cast<std::uint64_t>(
              gf256::dlog(static_cast<std::uint8_t>(in)));
}

/** Attach a dlog ROM over an 8-bit syndrome bus. */
std::array<int, 8>
dlogRom(Netlist& nl, const std::array<int, 8>& s)
{
    const auto bits = nl.lut(std::vector<int>(s.begin(), s.end()), 8,
                             "dlog", dlogRomContents);
    std::array<int, 8> out{};
    std::copy(bits.begin(), bits.end(), out.begin());
    return out;
}

/** value < k comparator for an 8-bit value and a constant. */
int
lessThanConst(Netlist& nl, const std::array<int, 8>& value, int k)
{
    int lt = nl.constant(false);
    int eq = nl.constant(true);
    for (int bit = 7; bit >= 0; --bit) {
        const int kb = (k >> bit) & 1;
        if (kb) {
            lt = nl.gate(GateKind::or2, lt,
                         nl.gate(GateKind::and2, eq,
                                 nl.notOf(value[bit])));
            eq = nl.gate(GateKind::and2, eq, value[bit]);
        } else {
            eq = nl.gate(GateKind::and2, eq, nl.notOf(value[bit]));
        }
    }
    return lt;
}

/** 8-bit equality comparator. */
int
equal8(Netlist& nl, const std::array<int, 8>& a,
       const std::array<int, 8>& b)
{
    std::vector<int> bits;
    for (int i = 0; i < 8; ++i)
        bits.push_back(nl.gate(GateKind::xnor2, a[i], b[i]));
    return nl.andTree(bits);
}

/** match-to-constant: AND of syndrome literals per the constant. */
int
matchConst(Netlist& nl, const std::array<int, 8>& syn, unsigned value)
{
    std::vector<int> lits;
    for (int r = 0; r < 8; ++r)
        lits.push_back((value >> r) & 1 ? syn[r] : nl.notOf(syn[r]));
    return nl.andTree(lits);
}

/** One-hot decode of an 8-bit position against constants 0..n-1. */
std::vector<int>
onehot(Netlist& nl, const std::array<int, 8>& pos, int n)
{
    std::vector<int> out;
    out.reserve(n);
    for (int i = 0; i < n; ++i)
        out.push_back(matchConst(nl, pos, static_cast<unsigned>(i)));
    return out;
}

int
isZero8(Netlist& nl, const std::array<int, 8>& v)
{
    return nl.notOf(nl.orTree(std::vector<int>(v.begin(), v.end())));
}

} // namespace

std::vector<std::pair<int, std::vector<int>>>
probeEncoderTerms(const EntryScheme& scheme)
{
    const Bits288 zero = scheme.encode(EntryData{});
    require(zero.none(), "probeEncoderTerms: scheme encoder is affine");

    std::array<Bits288, 256> columns;
    for (int i = 0; i < 256; ++i)
        columns[i] = scheme.encode(unitData(i));

    std::vector<std::pair<int, std::vector<int>>> out;
    for (int p = 0; p < layout::entry_bits; ++p) {
        std::vector<int> terms;
        for (int i = 0; i < 256; ++i) {
            if (columns[i].get(p))
                terms.push_back(i);
        }
        if (terms.size() >= 2)
            out.emplace_back(p, std::move(terms));
    }
    return out;
}

Netlist
buildEntryEncoder(const EntryScheme& scheme, bool share)
{
    Netlist nl;
    std::vector<int> data(256);
    for (int i = 0; i < 256; ++i)
        data[i] = nl.input("d" + std::to_string(i));

    const auto probed = probeEncoderTerms(scheme);
    std::vector<std::vector<int>> terms;
    terms.reserve(probed.size());
    for (const auto& [p, bits] : probed) {
        std::vector<int> t;
        t.reserve(bits.size());
        for (int i : bits)
            t.push_back(data[i]);
        terms.push_back(std::move(t));
    }
    const auto outs = synthesizeXorNetwork(nl, terms, share);
    for (std::size_t i = 0; i < outs.size(); ++i)
        nl.output("c" + std::to_string(probed[i].first), outs[i]);
    return nl;
}

Netlist
buildBinaryDecoder(const Code72& code, bool sec2bec, bool interleaved,
                   bool csc, bool share)
{
    Netlist nl;
    std::vector<int> phys(layout::entry_bits);
    for (int p = 0; p < layout::entry_bits; ++p)
        phys[p] = nl.input("r" + std::to_string(p));

    const EntryLayout entry_layout(interleaved
                                       ? EntryLayout::Kind::interleaved
                                       : EntryLayout::Kind::nonInterleaved);
    const Gf2Matrix& h = code.parityCheck();

    std::array<int, 4> cw_due{};
    std::array<int, 4> correcting{};
    // match[cw][bit] and pair_match[cw][pair] feed the CSC flags.
    std::array<std::array<int, 72>, 4> match{};
    std::array<std::vector<int>, 4> pair_match;

    for (int cw = 0; cw < 4; ++cw) {
        std::array<int, 72> bits{};
        for (int j = 0; j < 72; ++j)
            bits[j] = phys[entry_layout.physicalFor(cw, j)];

        // Syndrome generation (Inner Decoder step 1).
        std::vector<std::vector<int>> sterms(8);
        for (int r = 0; r < 8; ++r) {
            for (int c = 0; c < 72; ++c) {
                if (h.get(r, c))
                    sterms[r].push_back(bits[c]);
            }
        }
        const auto syn_v = synthesizeXorNetwork(nl, sterms, share);
        std::array<int, 8> syn{};
        std::copy(syn_v.begin(), syn_v.end(), syn.begin());

        // H-column-match comparators.
        std::vector<int> all_matches;
        for (int c = 0; c < 72; ++c) {
            match[cw][c] = matchConst(nl, syn, code.columnSyndrome(c));
            all_matches.push_back(match[cw][c]);
        }
        if (sec2bec) {
            for (const auto& [a, b] : code.pairs()) {
                const unsigned ps = code.columnSyndrome(a) ^
                                    code.columnSyndrome(b);
                pair_match[cw].push_back(matchConst(nl, syn, ps));
                all_matches.push_back(pair_match[cw].back());
            }
        }

        // Corrected data outputs.
        for (int j = 0; j < 64; ++j) {
            int corr = match[cw][j];
            if (sec2bec) {
                for (std::size_t p = 0; p < code.pairs().size(); ++p) {
                    const auto& [a, b] = code.pairs()[p];
                    if (a == j || b == j) {
                        corr = nl.gate(GateKind::or2, corr,
                                       pair_match[cw][p]);
                    }
                }
            }
            nl.output("d" + std::to_string(cw * 64 + j),
                      nl.gate(GateKind::xor2, bits[j], corr));
        }

        const int nonzero =
            nl.orTree(std::vector<int>(syn.begin(), syn.end()));
        correcting[cw] = nl.andTree({nonzero, nl.orTree(all_matches)});
        cw_due[cw] = nl.andTree({nonzero, nl.notOf(correcting[cw])});
    }

    int due = nl.orTree(
        std::vector<int>(cw_due.begin(), cw_due.end()));

    if (csc) {
        // "Multiple codewords performing correction" detector.
        std::vector<int> pairs_correcting;
        for (int a = 0; a < 4; ++a) {
            for (int b = a + 1; b < 4; ++b) {
                pairs_correcting.push_back(nl.gate(
                    GateKind::and2, correcting[a], correcting[b]));
            }
        }
        const int multi = nl.orTree(pairs_correcting);

        // Byte flags: which physical byte each codeword corrects in.
        // (A 2b-pair correction maps to one byte by construction.)
        std::array<std::array<std::vector<int>, 36>, 4> byte_lines;
        for (int cw = 0; cw < 4; ++cw) {
            for (int j = 0; j < 72; ++j) {
                const int byte =
                    layout::byteOf(entry_layout.physicalFor(cw, j));
                byte_lines[cw][byte].push_back(match[cw][j]);
            }
            if (sec2bec) {
                for (std::size_t p = 0; p < code.pairs().size(); ++p) {
                    const int byte = layout::byteOf(
                        entry_layout.physicalFor(
                            cw, code.pairs()[p].first));
                    byte_lines[cw][byte].push_back(pair_match[cw][p]);
                }
            }
        }
        std::vector<int> same_byte_terms;
        for (int byte = 0; byte < 36; ++byte) {
            std::vector<int> per_cw;
            for (int cw = 0; cw < 4; ++cw) {
                const int flag = byte_lines[cw][byte].empty()
                    ? nl.constant(false)
                    : nl.orTree(byte_lines[cw][byte]);
                per_cw.push_back(nl.gate(GateKind::or2, flag,
                                         nl.notOf(correcting[cw])));
            }
            same_byte_terms.push_back(nl.andTree(per_cw));
        }
        const int same_byte = nl.orTree(same_byte_terms);

        // Pin flags: exactly one codeword bit maps to each pin;
        // pair corrections span two pins and correctly never pass.
        std::vector<int> same_pin_terms;
        for (int pin = 0; pin < 72; ++pin) {
            std::vector<int> per_cw;
            for (int cw = 0; cw < 4; ++cw) {
                int line = nl.constant(false);
                for (int j = 0; j < 72; ++j) {
                    const int p = entry_layout.physicalFor(cw, j);
                    if (layout::pinOf(p) == pin) {
                        line = match[cw][j];
                        break;
                    }
                }
                per_cw.push_back(nl.gate(GateKind::or2, line,
                                         nl.notOf(correcting[cw])));
            }
            same_pin_terms.push_back(nl.andTree(per_cw));
        }
        const int same_pin = nl.orTree(same_pin_terms);

        const int csc_due = nl.andTree(
            {multi,
             nl.notOf(nl.gate(GateKind::or2, same_byte, same_pin))});
        due = nl.gate(GateKind::or2, due, csc_due);
    }

    nl.output("due", due);
    return nl;
}

Netlist
buildSscDecoder(bool csc, bool share)
{
    Netlist nl;
    std::vector<int> phys(layout::entry_bits);
    for (int p = 0; p < layout::entry_bits; ++p)
        phys[p] = nl.input("r" + std::to_string(p));

    const RsCode code(18, 16);

    std::array<int, 2> cw_due{};
    std::array<int, 2> correcting{};
    std::array<std::array<int, 8>, 2> position{};
    std::array<std::array<int, 8>, 2> magnitude{};

    for (int cw = 0; cw < 2; ++cw) {
        // Syndromes are GF(2)-linear in the received bits: probe.
        std::vector<std::vector<int>> sterms(16);
        for (int pos = 0; pos < 18; ++pos) {
            for (int t = 0; t < 8; ++t) {
                std::vector<std::uint8_t> word(18, 0);
                word[pos] = static_cast<std::uint8_t>(1u << t);
                const auto s = code.syndromes(word);
                const int in = phys[InterleavedSscScheme::physicalBit(
                    cw, pos, t)];
                for (int j = 0; j < 2; ++j) {
                    for (int b = 0; b < 8; ++b) {
                        if ((s[j] >> b) & 1)
                            sterms[8 * j + b].push_back(in);
                    }
                }
            }
        }
        const auto syn = synthesizeXorNetwork(nl, sterms, share);
        std::array<int, 8> s0{}, s1{};
        for (int b = 0; b < 8; ++b) {
            s0[b] = syn[b];
            s1[b] = syn[8 + b];
        }
        magnitude[cw] = s0;

        const int z0 = isZero8(nl, s0);
        const int z1 = isZero8(nl, s1);
        const int clean = nl.gate(GateKind::and2, z0, z1);

        // One-shot error location: dlog ROMs + EAC subtractor.
        const std::array<int, 8> l0 = dlogRom(nl, s0);
        const std::array<int, 8> l1 = dlogRom(nl, s1);
        position[cw] = eacSubtract(nl, l1, l0);
        const int valid = lessThanConst(nl, position[cw], 18);

        correcting[cw] = nl.andTree(
            {nl.notOf(clean), nl.notOf(z0), nl.notOf(z1), valid});
        cw_due[cw] = nl.andTree(
            {nl.notOf(clean), nl.notOf(correcting[cw])});

        // Correction: one-hot select and magnitude XOR on the 16
        // data symbols.
        const auto sel = onehot(nl, position[cw], 18);
        for (int pos = 2; pos < 18; ++pos) {
            const int gated = nl.gate(GateKind::and2, sel[pos],
                                      correcting[cw]);
            for (int t = 0; t < 8; ++t) {
                const int in =
                    phys[InterleavedSscScheme::physicalBit(cw, pos, t)];
                const int fix = nl.gate(GateKind::and2, gated, s0[t]);
                nl.output("d" + std::to_string(
                              cw * 128 + (pos - 2) * 8 + t),
                          nl.gate(GateKind::xor2, in, fix));
            }
        }
    }

    int due = nl.gate(GateKind::or2, cw_due[0], cw_due[1]);

    if (csc) {
        // Both-correcting consistency: the corrected slots must form
        // one physical byte (same beat-pair, same column group) or
        // one pin group (same column group, opposite beat-pairs),
        // with magnitudes confined to the matching beat half.
        const int both = nl.gate(GateKind::and2, correcting[0],
                                 correcting[1]);
        // Column group j = pos mod 9 via a small ROM; beat-pair
        // h = pos >= 9.
        std::array<int, 2> half{};
        std::array<int, 8> j0{}, j1{};
        j0.fill(-1);
        j1.fill(-1);
        for (int cw = 0; cw < 2; ++cw) {
            half[cw] = nl.notOf(lessThanConst(nl, position[cw], 9));
            const auto mod_rom = nl.lut(
                std::vector<int>(position[cw].begin(),
                                 position[cw].begin() + 5),
                4, "mod9",
                [](std::uint64_t v) { return v % 9; });
            auto& target = cw == 0 ? j0 : j1;
            const int zero = nl.constant(false);
            for (int b = 0; b < 8; ++b)
                target[b] = b < 4 ? mod_rom[b] : zero;
        }
        const int same_group = equal8(nl, j0, j1);
        const int same_half = nl.gate(GateKind::xnor2, half[0],
                                      half[1]);
        // Magnitude beat-confinement checks.
        std::array<int, 2> lo_zero{}, hi_zero{};
        for (int cw = 0; cw < 2; ++cw) {
            lo_zero[cw] = nl.notOf(nl.orTree(
                {magnitude[cw][0], magnitude[cw][1], magnitude[cw][2],
                 magnitude[cw][3]}));
            hi_zero[cw] = nl.notOf(nl.orTree(
                {magnitude[cw][4], magnitude[cw][5], magnitude[cw][6],
                 magnitude[cw][7]}));
        }
        const int same_beat_mags = nl.gate(
            GateKind::or2,
            nl.gate(GateKind::and2, lo_zero[0], lo_zero[1]),
            nl.gate(GateKind::and2, hi_zero[0], hi_zero[1]));
        const int byte_ok = nl.andTree(
            {same_group, same_half, same_beat_mags});
        const int pin_ok = nl.andTree(
            {same_group, nl.notOf(same_half)});
        const int csc_due = nl.andTree(
            {both, nl.notOf(nl.gate(GateKind::or2, byte_ok, pin_ok))});
        due = nl.gate(GateKind::or2, due, csc_due);
    }

    nl.output("due", due);
    return nl;
}

Netlist
buildDsdPlusDecoder(bool share)
{
    Netlist nl;
    std::vector<int> phys(layout::entry_bits);
    for (int p = 0; p < layout::entry_bits; ++p)
        phys[p] = nl.input("r" + std::to_string(p));

    const RsCode code(36, 32);

    // Probe the 32 syndrome bits' XOR terms.
    std::vector<std::vector<int>> sterms(32);
    for (int pos = 0; pos < 36; ++pos) {
        for (int t = 0; t < 8; ++t) {
            std::vector<std::uint8_t> word(36, 0);
            word[pos] = static_cast<std::uint8_t>(1u << t);
            const auto s = code.syndromes(word);
            const int in =
                phys[8 * Rs3632Scheme::physicalByteOf(pos) + t];
            for (int j = 0; j < 4; ++j) {
                for (int b = 0; b < 8; ++b) {
                    if ((s[j] >> b) & 1)
                        sterms[8 * j + b].push_back(in);
                }
            }
        }
    }
    const auto syn = synthesizeXorNetwork(nl, sterms, share);

    std::array<std::array<int, 8>, 4> s{};
    for (int j = 0; j < 4; ++j) {
        for (int b = 0; b < 8; ++b)
            s[j][b] = syn[8 * j + b];
    }

    std::array<int, 4> zero{};
    for (int j = 0; j < 4; ++j)
        zero[j] = isZero8(nl, s[j]);
    const int clean = nl.andTree(
        std::vector<int>(zero.begin(), zero.end()));
    const int any_zero = nl.orTree(
        std::vector<int>(zero.begin(), zero.end()));

    // Three check-byte-pair location estimates (Figure 7c).
    std::array<std::array<int, 8>, 4> dlog{};
    for (int j = 0; j < 4; ++j)
        dlog[j] = dlogRom(nl, s[j]);
    const auto p01 = eacSubtract(nl, dlog[1], dlog[0]);
    const auto p12 = eacSubtract(nl, dlog[2], dlog[1]);
    const auto p23 = eacSubtract(nl, dlog[3], dlog[2]);

    const int agree = nl.gate(GateKind::and2, equal8(nl, p01, p12),
                              equal8(nl, p12, p23));
    const int valid = lessThanConst(nl, p01, 36);
    const int correcting = nl.andTree(
        {nl.notOf(clean), nl.notOf(any_zero), agree, valid});
    const int due = nl.andTree({nl.notOf(clean), nl.notOf(correcting)});

    const auto sel = onehot(nl, p01, 36);
    for (int pos = 4; pos < 36; ++pos) {
        const int gated = nl.gate(GateKind::and2, sel[pos], correcting);
        for (int t = 0; t < 8; ++t) {
            const int in =
                phys[8 * Rs3632Scheme::physicalByteOf(pos) + t];
            const int fix = nl.gate(GateKind::and2, gated, s[0][t]);
            nl.output("d" + std::to_string((pos - 4) * 8 + t),
                      nl.gate(GateKind::xor2, in, fix));
        }
    }
    nl.output("due", due);
    return nl;
}

std::vector<SynthesisReport>
table3Reports()
{
    std::vector<SynthesisReport> rows;
    auto add = [&rows](const std::string& name, const std::string& point,
                       const Netlist& nl) {
        rows.push_back({name, point, nl.areaAnd2(), nl.delayNs()});
    };

    const auto hsiao = makeScheme("ni-secded");
    const auto sec2bec = makeScheme("ni-sec2bec");
    const auto issc = makeScheme("i-ssc");
    const auto dsd = makeScheme("ssc-dsd+");

    // Encoders. Interleaving and the CSC are decoder-side (wires /
    // output logic), so Duet/Trio share these encoders.
    add("Enc SEC-DED (baseline)", "Eff.",
        buildEntryEncoder(*hsiao, true));
    add("Enc SEC-DED (baseline)", "Perf.",
        buildEntryEncoder(*hsiao, false));
    add("Enc SEC-2bEC (Duet/Trio)", "Eff.",
        buildEntryEncoder(*sec2bec, true));
    add("Enc SEC-2bEC (Duet/Trio)", "Perf.",
        buildEntryEncoder(*sec2bec, false));
    add("Enc I:SSC", "Eff.", buildEntryEncoder(*issc, true));
    add("Enc I:SSC", "Perf.", buildEntryEncoder(*issc, false));
    add("Enc SSC-DSD+", "Eff.", buildEntryEncoder(*dsd, true));
    add("Enc SSC-DSD+", "Perf.", buildEntryEncoder(*dsd, false));

    // Decoders.
    const Code72 hsiao_code(hsiao7264Matrix(), Code72::stride4Pairs());
    const Code72 trio_code(sec2becInterleavedMatrix(),
                           Code72::stride4Pairs());
    add("Dec SEC-DED (baseline)", "Eff.",
        buildBinaryDecoder(hsiao_code, false, false, false, true));
    add("Dec SEC-DED (baseline)", "Perf.",
        buildBinaryDecoder(hsiao_code, false, false, false, false));
    add("Dec I:SEC-DED", "Eff.",
        buildBinaryDecoder(hsiao_code, false, true, false, true));
    add("Dec I:SEC-DED", "Perf.",
        buildBinaryDecoder(hsiao_code, false, true, false, false));
    add("Dec DuetECC", "Eff.",
        buildBinaryDecoder(hsiao_code, false, true, true, true));
    add("Dec DuetECC", "Perf.",
        buildBinaryDecoder(hsiao_code, false, true, true, false));
    add("Dec TrioECC", "Eff.",
        buildBinaryDecoder(trio_code, true, true, true, true));
    add("Dec TrioECC", "Perf.",
        buildBinaryDecoder(trio_code, true, true, true, false));
    add("Dec I:SSC", "Eff.", buildSscDecoder(false, true));
    add("Dec I:SSC", "Perf.", buildSscDecoder(false, false));
    add("Dec I:SSC+CSC", "Eff.", buildSscDecoder(true, true));
    add("Dec I:SSC+CSC", "Perf.", buildSscDecoder(true, false));
    add("Dec SSC-DSD+", "Eff.", buildDsdPlusDecoder(true));
    add("Dec SSC-DSD+", "Perf.", buildDsdPlusDecoder(false));
    return rows;
}

} // namespace hw
} // namespace gpuecc
