#include "gf2/matrix.hpp"

#include <sstream>

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace gpuecc {

Gf2Matrix::Gf2Matrix(int rows, int cols)
    : rows_(rows), cols_(cols)
{
    require(rows > 0 && cols > 0, "Gf2Matrix dimensions must be positive");
    bits_.assign(static_cast<std::size_t>(rows) * wordsPerRow(), 0);
}

Gf2Matrix
Gf2Matrix::identity(int n)
{
    Gf2Matrix m(n, n);
    for (int i = 0; i < n; ++i)
        m.set(i, i, 1);
    return m;
}

int
Gf2Matrix::get(int r, int c) const
{
    require(r >= 0 && r < rows_ && c >= 0 && c < cols_,
            "Gf2Matrix::get out of range");
    return static_cast<int>((row(r)[c >> 6] >> (c & 63)) & 1u);
}

void
Gf2Matrix::set(int r, int c, int v)
{
    require(r >= 0 && r < rows_ && c >= 0 && c < cols_,
            "Gf2Matrix::set out of range");
    const std::uint64_t m = std::uint64_t{1} << (c & 63);
    if (v)
        row(r)[c >> 6] |= m;
    else
        row(r)[c >> 6] &= ~m;
}

void
Gf2Matrix::addRowInto(int src, int dst)
{
    for (int w = 0; w < wordsPerRow(); ++w)
        row(dst)[w] ^= row(src)[w];
}

void
Gf2Matrix::swapRows(int a, int b)
{
    if (a == b)
        return;
    for (int w = 0; w < wordsPerRow(); ++w)
        std::swap(row(a)[w], row(b)[w]);
}

std::vector<std::uint64_t>
Gf2Matrix::column(int c) const
{
    std::vector<std::uint64_t> out((rows_ + 63) / 64, 0);
    for (int r = 0; r < rows_; ++r) {
        if (get(r, c))
            out[r >> 6] |= std::uint64_t{1} << (r & 63);
    }
    return out;
}

std::uint64_t
Gf2Matrix::columnWord(int c) const
{
    require(rows_ <= 64, "columnWord requires <= 64 rows");
    return column(c)[0];
}

Gf2Matrix
Gf2Matrix::selectColumns(const std::vector<int>& cols) const
{
    Gf2Matrix out(rows_, static_cast<int>(cols.size()));
    for (std::size_t j = 0; j < cols.size(); ++j) {
        for (int r = 0; r < rows_; ++r)
            out.set(r, static_cast<int>(j), get(r, cols[j]));
    }
    return out;
}

Gf2Matrix
Gf2Matrix::multiply(const Gf2Matrix& other) const
{
    require(cols_ == other.rows_, "Gf2Matrix::multiply shape mismatch");
    Gf2Matrix out(rows_, other.cols_);
    for (int r = 0; r < rows_; ++r) {
        for (int k = 0; k < cols_; ++k) {
            if (!get(r, k))
                continue;
            for (int w = 0; w < other.wordsPerRow(); ++w)
                out.row(r)[w] ^= other.row(k)[w];
        }
    }
    return out;
}

std::vector<std::uint64_t>
Gf2Matrix::multiplyVector(const std::vector<std::uint64_t>& x_words) const
{
    require(static_cast<int>(x_words.size()) == wordsPerRow(),
            "Gf2Matrix::multiplyVector length mismatch");
    std::vector<std::uint64_t> out((rows_ + 63) / 64, 0);
    for (int r = 0; r < rows_; ++r) {
        std::uint64_t acc = 0;
        for (int w = 0; w < wordsPerRow(); ++w)
            acc ^= row(r)[w] & x_words[w];
        if (parity64(acc))
            out[r >> 6] |= std::uint64_t{1} << (r & 63);
    }
    return out;
}

int
Gf2Matrix::rank() const
{
    Gf2Matrix m = *this;
    int rank = 0;
    for (int c = 0; c < cols_ && rank < rows_; ++c) {
        int pivot = -1;
        for (int r = rank; r < rows_; ++r) {
            if (m.get(r, c)) {
                pivot = r;
                break;
            }
        }
        if (pivot < 0)
            continue;
        m.swapRows(pivot, rank);
        for (int r = 0; r < rows_; ++r) {
            if (r != rank && m.get(r, c))
                m.addRowInto(rank, r);
        }
        ++rank;
    }
    return rank;
}

std::optional<Gf2Matrix>
Gf2Matrix::inverse() const
{
    require(rows_ == cols_, "Gf2Matrix::inverse requires a square matrix");
    Gf2Matrix m = *this;
    Gf2Matrix inv = identity(rows_);
    for (int c = 0; c < cols_; ++c) {
        int pivot = -1;
        for (int r = c; r < rows_; ++r) {
            if (m.get(r, c)) {
                pivot = r;
                break;
            }
        }
        if (pivot < 0)
            return std::nullopt;
        m.swapRows(pivot, c);
        inv.swapRows(pivot, c);
        for (int r = 0; r < rows_; ++r) {
            if (r != c && m.get(r, c)) {
                m.addRowInto(c, r);
                inv.addRowInto(c, r);
            }
        }
    }
    return inv;
}

Gf2Matrix
Gf2Matrix::transposed() const
{
    Gf2Matrix out(cols_, rows_);
    for (int r = 0; r < rows_; ++r) {
        for (int c = 0; c < cols_; ++c) {
            if (get(r, c))
                out.set(c, r, 1);
        }
    }
    return out;
}

bool
operator==(const Gf2Matrix& a, const Gf2Matrix& b)
{
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.bits_ == b.bits_;
}

std::string
Gf2Matrix::toString() const
{
    std::ostringstream out;
    for (int r = 0; r < rows_; ++r) {
        for (int c = 0; c < cols_; ++c)
            out << (get(r, c) ? '1' : '0');
        out << '\n';
    }
    return out.str();
}

} // namespace gpuecc
