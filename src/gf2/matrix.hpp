/**
 * @file
 * Dense linear algebra over GF(2).
 *
 * Rows are packed into uint64_t words (LSB-first). This backs the
 * binary linear block code machinery: rank checks on parity-check
 * matrices, inversion of check-column submatrices for systematic
 * encoder derivation, and matrix-vector products.
 */

#ifndef GPUECC_GF2_MATRIX_HPP
#define GPUECC_GF2_MATRIX_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace gpuecc {

/** A rows x cols matrix over GF(2) with value semantics. */
class Gf2Matrix
{
  public:
    /** Construct an all-zero matrix. */
    Gf2Matrix(int rows, int cols);

    /** The rows x rows identity matrix. */
    static Gf2Matrix identity(int rows);

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    /** Read entry (r, c). */
    int get(int r, int c) const;

    /** Set entry (r, c) to v (0 or 1). */
    void set(int r, int c, int v);

    /** XOR row src into row dst. */
    void addRowInto(int src, int dst);

    /** Swap two rows. */
    void swapRows(int a, int b);

    /** Column c as a packed word vector of length ceil(rows/64). */
    std::vector<std::uint64_t> column(int c) const;

    /** Column c packed into a single uint64 (requires rows <= 64). */
    std::uint64_t columnWord(int c) const;

    /** Select a subset of columns into a new matrix. */
    Gf2Matrix selectColumns(const std::vector<int>& cols) const;

    /** Matrix product over GF(2); cols() must equal other.rows(). */
    Gf2Matrix multiply(const Gf2Matrix& other) const;

    /**
     * Multiply by a bit vector given as column indices with set bits.
     *
     * @return packed result rows (length ceil(rows/64))
     */
    std::vector<std::uint64_t>
    multiplyVector(const std::vector<std::uint64_t>& x_words) const;

    /** Rank via Gaussian elimination on a copy. */
    int rank() const;

    /** Inverse of a square matrix, or nullopt if singular. */
    std::optional<Gf2Matrix> inverse() const;

    /** Transposed copy. */
    Gf2Matrix transposed() const;

    friend bool operator==(const Gf2Matrix& a, const Gf2Matrix& b);

    /** Multi-line 0/1 dump for diagnostics. */
    std::string toString() const;

  private:
    int wordsPerRow() const { return (cols_ + 63) / 64; }
    std::uint64_t* row(int r) { return &bits_[r * wordsPerRow()]; }
    const std::uint64_t* row(int r) const
    {
        return &bits_[r * wordsPerRow()];
    }

    int rows_;
    int cols_;
    std::vector<std::uint64_t> bits_;
};

} // namespace gpuecc

#endif // GPUECC_GF2_MATRIX_HPP
