/**
 * @file
 * Byte-indexed XOR lookup tables compiled from GF(2) linear maps.
 *
 * A matrix-vector product over GF(2) with R <= 64 output bits can be
 * lowered, at construction time, into one 256-entry table per input
 * byte: entry [b][v] holds the packed output contribution of input
 * byte b taking value v, so applying the map to an N-bit vector is
 * ceil(N/8) table lookups XORed together instead of R word-parallel
 * inner products. This is the table compiler behind the compiled
 * codec fast path: Code72 lowers its parity-check matrix into a
 * 9-byte syndrome table, and the entry-level codec lowers the whole
 * 32x288 four-codeword syndrome map into a 36-byte table.
 *
 * The lowering is provably exact: the map is linear, the bytes
 * partition the input bits, and each table entry is itself built by
 * XOR-folding the packed matrix columns of the byte's set bits, so
 * apply() computes the identical GF(2) sum the reference
 * matrix-vector product does, merely re-associated.
 */

#ifndef GPUECC_GF2_PARITY_TABLE_HPP
#define GPUECC_GF2_PARITY_TABLE_HPP

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "gf2/matrix.hpp"

namespace gpuecc {

/**
 * Compiled byte-parallel form of a GF(2) linear map with NIn input
 * bits and up to 64 output bits (packed LSB-first in a uint64).
 */
template <int NIn>
class ByteParityTable
{
  public:
    static constexpr int num_bytes = (NIn + 7) / 8;

    /** The all-zero map (placeholder until a compiled one is assigned). */
    ByteParityTable() : table_{} {}

    /**
     * Compile from the packed columns of the map: `columns[c]` holds
     * output bit r in bit r, i.e. column c of the matrix.
     */
    static ByteParityTable
    fromColumnWords(const std::vector<std::uint64_t>& columns)
    {
        require(static_cast<int>(columns.size()) == NIn,
                "ByteParityTable: column count must match input width");
        ByteParityTable t;
        for (int b = 0; b < num_bytes; ++b) {
            // Subset-XOR dynamic program: strip the lowest set bit so
            // every entry is one XOR on top of an already-built one.
            std::array<std::uint64_t, 8> col{};
            for (int j = 0; j < 8 && 8 * b + j < NIn; ++j)
                col[j] = columns[8 * b + j];
            t.table_[b][0] = 0;
            for (int v = 1; v < 256; ++v) {
                const int low = std::countr_zero(
                    static_cast<unsigned>(v));
                t.table_[b][v] = t.table_[b][v & (v - 1)] ^ col[low];
            }
        }
        return t;
    }

    /** Compile from a matrix (rows <= 64, cols == NIn). */
    static ByteParityTable
    fromMatrix(const Gf2Matrix& m)
    {
        require(m.rows() <= 64 && m.cols() == NIn,
                "ByteParityTable: matrix shape mismatch");
        std::vector<std::uint64_t> columns(NIn);
        for (int c = 0; c < NIn; ++c)
            columns[c] = m.columnWord(c);
        return fromColumnWords(columns);
    }

    /** Apply the compiled map to an N-bit vector. */
    std::uint64_t
    apply(const Bits<NIn>& in) const
    {
        std::uint64_t acc = 0;
        for (int b = 0; b < num_bytes; ++b) {
            const std::uint64_t byte =
                (in.word(b >> 3) >> ((b & 7) * 8)) & 0xff;
            acc ^= table_[b][byte];
        }
        return acc;
    }

    /**
     * Apply to a packed word input (only meaningful for NIn <= 64);
     * used by encoders whose input is a plain data word.
     */
    std::uint64_t
    applyWord(std::uint64_t in) const
    {
        static_assert(NIn <= 64,
                      "applyWord requires a single-word input");
        std::uint64_t acc = 0;
        for (int b = 0; b < num_bytes; ++b)
            acc ^= table_[b][(in >> (8 * b)) & 0xff];
        return acc;
    }

    /** Raw table row for byte b (used by tests and memory audits). */
    const std::array<std::uint64_t, 256>&
    byteRow(int b) const
    {
        return table_[b];
    }

    /** Total table footprint in bytes. */
    static constexpr std::size_t
    memoryBytes()
    {
        return static_cast<std::size_t>(num_bytes) * 256
               * sizeof(std::uint64_t);
    }

  private:
    std::array<std::array<std::uint64_t, 256>, num_bytes> table_;
};

} // namespace gpuecc

#endif // GPUECC_GF2_PARITY_TABLE_HPP
