/**
 * @file
 * Post-processing of microbenchmark mismatch logs (Sections 4-5).
 *
 * The pipeline reproduces the paper's methodology end to end:
 *
 *  1. intermittent-error filtering - any memory entry that errs in
 *     two or more distinct write phases is classified as
 *     displacement-damaged and excluded from the soft-error analysis;
 *  2. event reconstruction - remaining mismatches that first appear
 *     in the same read pass form one single-event upset (events
 *     hitting different loop iterations are never merged);
 *  3. classification - each event gets its SBSE/SBME/MBSE/MBME class
 *     (Figure 4a), breadth (Figure 4b), byte-alignment and
 *     words-per-entry structure (Figure 4c), per-word severity
 *     (Figure 5), and a Table 1 shape taken from its most severe
 *     entry footprint.
 */

#ifndef GPUECC_BEAM_CLASSIFY_HPP
#define GPUECC_BEAM_CLASSIFY_HPP

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "beam/events.hpp"
#include "beam/microbenchmark.hpp"
#include "hbm2/device.hpp"

namespace gpuecc {
namespace beam {

/** Table 1 shapes in the data-bit domain (beam tests run with ECC
 *  disabled, so only the 256 data bits of an entry are observed). */
enum class ErrorShape
{
    oneBit,
    onePin,
    oneByte,
    twoBits,
    threeBits,
    oneBeat,
    wholeEntry
};

/** Human-readable label of a shape (Table 1 row names). */
std::string errorShapeLabel(ErrorShape shape);

/** Classify one entry's data-bit error mask (priority: easier wins). */
ErrorShape classifyDataMask(const hbm2::EntryMask& mask);

/** One reconstructed single-event upset. */
struct ReconstructedEvent
{
    int run;
    int write_phase;
    int read_pass;
    double time_s;
    std::vector<std::pair<std::uint64_t, hbm2::EntryMask>> entries;

    SoftErrorEvent::Class cls;
    bool multi_bit;    //!< some word has >= 2 erroneous bits
    bool byte_aligned; //!< every word's error fits one aligned byte
    ErrorShape shape;  //!< Table 1 shape of the severest entry
};

/** Output of the post-processing pipeline. */
struct ClassificationResult
{
    std::vector<ReconstructedEvent> events;
    /** Entries filtered out as displacement-damaged. */
    std::set<std::uint64_t> damaged_entries;

    /** Events per class (Figure 4a numerators). */
    std::map<SoftErrorEvent::Class, std::uint64_t> class_counts;

    std::uint64_t numEvents() const { return events.size(); }
};

/** Run the full post-processing pipeline over a campaign log. */
ClassificationResult classifyLog(const std::vector<LogRecord>& log);

/** Breadths (affected-entry counts) of all MBME events. */
std::vector<std::uint64_t>
mbmeBreadths(const ClassificationResult& result);

/**
 * Per-word severity histogram of multi-bit events.
 *
 * @param byte_aligned select the byte-aligned or non-aligned subset
 * @return histogram[bits] = number of affected words with that many
 *         erroneous bits (index 0..64)
 */
std::vector<std::uint64_t>
severityHistogram(const ClassificationResult& result, bool byte_aligned);

/**
 * Words-per-entry histogram of multi-bit events (Figure 4c stacks).
 *
 * @return histogram[w] = number of affected entries with w erroneous
 *         words (index 0..4)
 */
std::vector<std::uint64_t>
wordsPerEntryHistogram(const ClassificationResult& result,
                       bool byte_aligned);

/** Table 1 shape distribution over events. */
std::map<ErrorShape, std::uint64_t>
shapeDistribution(const ClassificationResult& result);

} // namespace beam
} // namespace gpuecc

#endif // GPUECC_BEAM_CLASSIFY_HPP
