/**
 * @file
 * Neutron-beam campaign configuration (Section 3 of the paper).
 */

#ifndef GPUECC_BEAM_CONFIG_HPP
#define GPUECC_BEAM_CONFIG_HPP

namespace gpuecc {
namespace beam {

/** Beamline and field-environment parameters. */
struct BeamConfig
{
    /** Average beam flux during the DRAM experiments. */
    double flux_n_cm2_s = 9.8e5;

    /** Terrestrial reference flux (NYC sea level, JESD89A). */
    double terrestrial_n_cm2_h = 14.0;

    /** Acceleration factor of the beam over the terrestrial flux. */
    double
    acceleration() const
    {
        return flux_n_cm2_s * 3600.0 / terrestrial_n_cm2_h;
    }

    /**
     * Field soft-error rate assumed for system projections
     * (Section 7.3; inspired by Titan's GDDR5 failure rates).
     */
    double fit_per_gbit = 12.51;
};

} // namespace beam
} // namespace gpuecc

#endif // GPUECC_BEAM_CONFIG_HPP
