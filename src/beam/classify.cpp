#include "beam/classify.hpp"

#include <algorithm>
#include <tuple>

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace gpuecc {
namespace beam {

using hbm2::EntryMask;

std::string
errorShapeLabel(ErrorShape shape)
{
    switch (shape) {
      case ErrorShape::oneBit: return "1 Bit";
      case ErrorShape::onePin: return "1 Pin";
      case ErrorShape::oneByte: return "1 Byte";
      case ErrorShape::twoBits: return "2 Bits";
      case ErrorShape::threeBits: return "3 Bits";
      case ErrorShape::oneBeat: return "1 Beat";
      case ErrorShape::wholeEntry: return "1 Entry";
    }
    panic("errorShapeLabel: unknown shape");
}

ErrorShape
classifyDataMask(const EntryMask& mask)
{
    const int bits = mask.popcount();
    require(bits > 0, "classifyDataMask: empty mask");
    if (bits == 1)
        return ErrorShape::oneBit;

    bool same_pin = true;   // same bit lane across the four words
    bool same_byte = true;  // one aligned byte of the entry
    bool same_word = true;  // one 64-bit word ("beat")
    int first = -1;
    mask.forEachSetBit([&](int b) {
        if (first < 0) {
            first = b;
            return;
        }
        if (b % 64 != first % 64)
            same_pin = false;
        if (b / 8 != first / 8)
            same_byte = false;
        if (b / 64 != first / 64)
            same_word = false;
    });

    if (same_pin)
        return ErrorShape::onePin;
    if (same_byte)
        return ErrorShape::oneByte;
    if (bits == 2)
        return ErrorShape::twoBits;
    if (bits == 3)
        return ErrorShape::threeBits;
    if (same_word)
        return ErrorShape::oneBeat;
    return ErrorShape::wholeEntry;
}

namespace {

/** Severity ordering used to pick an event's Table 1 shape. */
int
shapeRank(ErrorShape shape)
{
    return static_cast<int>(shape);
}

bool
maskIsByteAligned(const EntryMask& mask)
{
    // Every word's erroneous bits must fit in one aligned byte.
    for (int w = 0; w < 4; ++w) {
        int byte_of_word = -1;
        for (int t = 0; t < 64; ++t) {
            if (!mask.get(64 * w + t))
                continue;
            const int byte = (64 * w + t) / 8;
            if (byte_of_word < 0)
                byte_of_word = byte;
            else if (byte != byte_of_word)
                return false;
        }
    }
    return true;
}

bool
maskIsMultiBit(const EntryMask& mask)
{
    // Multi-bit means >= 2 erroneous bits in at least one word.
    for (int w = 0; w < 4; ++w) {
        if (popcount64(mask.extract(64 * w, 64)) >= 2)
            return true;
    }
    return false;
}

} // namespace

ClassificationResult
classifyLog(const std::vector<LogRecord>& log)
{
    ClassificationResult result;

    // Step 1: intermittent filtering. Soft errors persist only until
    // the next write phase, so an entry that errs in two or more
    // distinct (run, phase) write cycles is displacement-damaged.
    std::map<std::uint64_t, std::set<std::pair<int, int>>> phases_of;
    for (const LogRecord& rec : log)
        phases_of[rec.entry].insert({rec.run, rec.write_phase});
    for (const auto& [entry, phases] : phases_of) {
        if (phases.size() >= 2)
            result.damaged_entries.insert(entry);
    }

    // Step 2: event reconstruction. Keep each surviving entry's first
    // observation; group first observations by observing scan.
    std::map<std::uint64_t, const LogRecord*> first_of;
    for (const LogRecord& rec : log) {
        if (result.damaged_entries.count(rec.entry))
            continue;
        auto [it, inserted] = first_of.insert({rec.entry, &rec});
        const LogRecord* cur = it->second;
        if (!inserted && rec.time_s < cur->time_s)
            it->second = &rec;
    }
    std::map<std::tuple<int, int, int>, ReconstructedEvent> grouped;
    for (const auto& [entry, rec] : first_of) {
        auto& ev = grouped[{rec->run, rec->write_phase, rec->read_pass}];
        ev.run = rec->run;
        ev.write_phase = rec->write_phase;
        ev.read_pass = rec->read_pass;
        ev.time_s = rec->time_s;
        ev.entries.emplace_back(entry, rec->mask);
    }

    // Step 3: classification.
    for (auto& [key, ev] : grouped) {
        bool multi_bit = false;
        bool byte_aligned = true;
        ErrorShape shape = ErrorShape::oneBit;
        for (const auto& [entry, mask] : ev.entries) {
            multi_bit = multi_bit || maskIsMultiBit(mask);
            byte_aligned = byte_aligned && maskIsByteAligned(mask);
            const ErrorShape s = classifyDataMask(mask);
            if (shapeRank(s) > shapeRank(shape))
                shape = s;
        }
        ev.multi_bit = multi_bit;
        ev.byte_aligned = multi_bit && byte_aligned;
        ev.shape = shape;
        const bool multi_entry = ev.entries.size() > 1;
        ev.cls = multi_bit
            ? (multi_entry ? SoftErrorEvent::Class::mbme
                           : SoftErrorEvent::Class::mbse)
            : (multi_entry ? SoftErrorEvent::Class::sbme
                           : SoftErrorEvent::Class::sbse);
        result.class_counts[ev.cls] += 1;
        result.events.push_back(std::move(ev));
    }
    std::sort(result.events.begin(), result.events.end(),
              [](const ReconstructedEvent& a, const ReconstructedEvent& b) {
                  return a.time_s < b.time_s;
              });
    return result;
}

std::vector<std::uint64_t>
mbmeBreadths(const ClassificationResult& result)
{
    std::vector<std::uint64_t> out;
    for (const ReconstructedEvent& ev : result.events) {
        if (ev.cls == SoftErrorEvent::Class::mbme)
            out.push_back(ev.entries.size());
    }
    return out;
}

std::vector<std::uint64_t>
severityHistogram(const ClassificationResult& result, bool byte_aligned)
{
    std::vector<std::uint64_t> hist(65, 0);
    for (const ReconstructedEvent& ev : result.events) {
        if (!ev.multi_bit || ev.byte_aligned != byte_aligned)
            continue;
        for (const auto& [entry, mask] : ev.entries) {
            for (int w = 0; w < 4; ++w) {
                int bits = 0;
                for (int t = 0; t < 64; ++t)
                    bits += mask.get(64 * w + t);
                if (bits > 0)
                    ++hist[bits];
            }
        }
    }
    return hist;
}

std::vector<std::uint64_t>
wordsPerEntryHistogram(const ClassificationResult& result,
                       bool byte_aligned)
{
    std::vector<std::uint64_t> hist(5, 0);
    for (const ReconstructedEvent& ev : result.events) {
        if (!ev.multi_bit || ev.byte_aligned != byte_aligned)
            continue;
        for (const auto& [entry, mask] : ev.entries) {
            int words = 0;
            for (int w = 0; w < 4; ++w) {
                bool any = false;
                for (int t = 0; t < 64 && !any; ++t)
                    any = mask.get(64 * w + t);
                words += any;
            }
            ++hist[words];
        }
    }
    return hist;
}

std::map<ErrorShape, std::uint64_t>
shapeDistribution(const ClassificationResult& result)
{
    std::map<ErrorShape, std::uint64_t> out;
    for (const ReconstructedEvent& ev : result.events)
        out[ev.shape] += 1;
    return out;
}

} // namespace beam
} // namespace gpuecc
