#include "beam/campaign.hpp"

namespace gpuecc {
namespace beam {

Campaign::Campaign(const CampaignConfig& config)
    : config_(config),
      device_(hbm2::Geometry(config.stacks)),
      damage_(config.damage, Rng(config.seed ^ 0xDA3A6Eull)),
      events_(config.events, hbm2::Geometry(config.stacks),
              Rng(config.seed ^ 0xE7E27ull)),
      micro_(config.micro),
      rng_(config.seed)
{
}

void
Campaign::runInBeam()
{
    const double event_rate = EventGenerator::eventsPerBeamSecond(
        config_.beam, device_.geometry());
    const double run_seconds =
        config_.micro.pass_seconds *
        (config_.micro.write_phases *
         (1 + config_.micro.reads_per_write));

    for (int run = 0; run < config_.runs; ++run) {
        // Damage from this run's fluence lands before the run; at
        // this granularity the distinction is invisible to the log.
        const double run_fluence =
            config_.beam.flux_n_cm2_s * run_seconds;
        damage_.expose(device_, run_fluence);
        fluence_ += run_fluence;

        std::vector<LogRecord> run_log =
            micro_.run(device_, events_, event_rate, time_s_, run, rng_);
        log_.insert(log_.end(), run_log.begin(), run_log.end());
        accumulation_.push_back(
            {fluence_, visibleWeakCells(device_.refreshPeriod())});
    }
}

std::uint64_t
Campaign::visibleWeakCells(double refresh_ms) const
{
    std::uint64_t n = 0;
    for (const hbm2::WeakCell& cell : device_.weakCells()) {
        if (cell.retention_ms < refresh_ms)
            ++n;
    }
    return n;
}

std::vector<std::pair<double, std::uint64_t>>
Campaign::refreshSweep(const std::vector<double>& periods_ms) const
{
    std::vector<std::pair<double, std::uint64_t>> out;
    out.reserve(periods_ms.size());
    for (double period : periods_ms)
        out.emplace_back(period, visibleWeakCells(period));
    return out;
}

void
Campaign::soak(double fluence_n_cm2)
{
    damage_.expose(device_, fluence_n_cm2);
    fluence_ += fluence_n_cm2;
}

void
Campaign::annealOutsideBeam(double hours)
{
    damage_.anneal(device_, hours);
    time_s_ += hours * 3600.0;
}

} // namespace beam
} // namespace gpuecc
