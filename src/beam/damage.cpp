#include "beam/damage.hpp"

#include <cmath>

#include "common/log.hpp"

namespace gpuecc {
namespace beam {

DamageModel::DamageModel(const DamageConfig& config, Rng rng)
    : config_(config),
      rng_(rng),
      retention_(config.retention_mu_ms, config.retention_sigma_ms,
                 config.p_one_to_zero),
      remaining_(config.leaky_pool)
{
    require(config.conversion_per_fluence > 0.0,
            "DamageModel: conversion rate must be positive");
}

std::uint64_t
DamageModel::expose(hbm2::Device& device, double fluence_n_cm2)
{
    require(fluence_n_cm2 >= 0.0, "DamageModel: negative fluence");
    if (remaining_ == 0 || fluence_n_cm2 == 0.0)
        return 0;

    // Each remaining leaky cell converts independently.
    const double p =
        1.0 - std::exp(-config_.conversion_per_fluence * fluence_n_cm2);
    const std::uint64_t converted = rng_.nextBinomial(remaining_, p);
    remaining_ -= converted;

    const std::uint64_t entries = device.geometry().numEntries();
    for (std::uint64_t i = 0; i < converted; ++i) {
        hbm2::WeakCell cell;
        cell.entry_index = rng_.nextBounded(entries);
        cell.bit = static_cast<int>(rng_.nextBounded(256));
        cell.retention_ms = retention_.sampleRetention(rng_);
        cell.one_to_zero = retention_.sampleOneToZero(rng_);
        device.addWeakCell(cell);
    }
    return converted;
}

void
DamageModel::anneal(hbm2::Device& device, double hours)
{
    require(hours >= 0.0, "DamageModel: negative annealing time");
    // Annealing repairs transistor damage in already-converted cells;
    // cells converted later start from the undamaged distribution.
    const double shift = config_.anneal_ms_per_hour * hours;
    for (hbm2::WeakCell& cell : device.weakCells())
        cell.retention_ms += shift;
}

} // namespace beam
} // namespace gpuecc
