#include "beam/microbenchmark.hpp"

#include "common/log.hpp"

namespace gpuecc {
namespace beam {

Microbenchmark::Microbenchmark(const MicrobenchConfig& config)
    : config_(config)
{
    require(config.write_phases > 0 && config.reads_per_write > 0,
            "MicrobenchConfig: loop counts must be positive");
    require(config.pass_seconds > 0.0,
            "MicrobenchConfig: pass time must be positive");
}

std::vector<LogRecord>
Microbenchmark::run(hbm2::Device& device, EventGenerator& events,
                    double event_rate, double& time_s, int run_index,
                    Rng& rng) const
{
    std::vector<LogRecord> log;
    for (int phase = 0; phase < config_.write_phases; ++phase) {
        // Alternate the pattern and its inverse between write phases.
        device.writeAll(config_.pattern, phase % 2 == 1);
        time_s += config_.pass_seconds;

        for (int pass = 0; pass < config_.reads_per_write; ++pass) {
            // Soft-error events arrive as a Poisson process during
            // the pass; the rate and class mix depend on how hard
            // the benchmark drives DRAM.
            if (event_rate > 0.0) {
                const double effective = event_rate *
                    events.rateScale(config_.utilization);
                const std::uint64_t n = rng.nextPoisson(
                    effective * config_.pass_seconds);
                for (std::uint64_t i = 0; i < n; ++i) {
                    EventGenerator::apply(
                        events.sample(config_.utilization), device);
                }
            }
            time_s += config_.pass_seconds;

            for (const hbm2::Mismatch& mm : device.scanMismatches()) {
                log.push_back({run_index, phase, pass, time_s, mm.entry,
                               mm.mask});
            }
        }
    }
    return log;
}

} // namespace beam
} // namespace gpuecc
