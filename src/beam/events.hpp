/**
 * @file
 * Soft-error event generation for the beam-campaign simulator.
 *
 * Events are generated with the structure the paper measures
 * (Section 5): a class mix of SBSE/SBME/MBSE/MBME (Figure 4a), a
 * long-tailed MBME breadth distribution (Figure 4b), byte-aligned vs
 * non-byte-aligned multi-bit severity (Figures 4c and 5) including
 * the ~15% inversion anomaly, and rare pin/2-bit/3-bit interface
 * patterns (Table 1). Multi-entry events are structurally correlated
 * through the HBM2 hierarchy: single-bit multi-entry events follow a
 * bitline (same subarray, same column, consecutive rows), and
 * byte-aligned multi-entry events follow a mat/local-wordline (same
 * byte slice across consecutive entries of a subarray).
 */

#ifndef GPUECC_BEAM_EVENTS_HPP
#define GPUECC_BEAM_EVENTS_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "beam/config.hpp"
#include "common/rng.hpp"
#include "hbm2/device.hpp"
#include "hbm2/geometry.hpp"

namespace gpuecc {
namespace beam {

/** Event-generator parameters (paper-measured defaults). */
struct EventConfig
{
    /** Class mix (Figure 4a; remaining probability is MBME). */
    double p_sbse = 0.65;
    double p_sbme = 0.035;
    double p_mbse = 0.035;
    // p_mbme = 1 - the rest = 0.28

    /** Fraction of multi-bit events confined to aligned bytes. */
    double p_byte_aligned = 0.746;

    /** Probability that a byte/word error is a full inversion (the
     *  data-dependent anomaly of Figure 5). */
    double p_inversion = 0.15;

    /** Byte-aligned events occasionally corrupt a second word. */
    double p_second_word = 0.12;

    /** Non-aligned events: P(confined to one word); the rest touch
     *  all four (Figure 4c stacked bars). */
    double p_nonaligned_one_word = 0.29;

    /** Rare scattered/interface patterns folded into the event mix
     *  (Table 1 residue). */
    double p_pin = 0.0019;
    double p_two_bit = 0.0011;
    double p_three_bit = 0.0003;

    /** MBME breadth: discrete Pareto tail exponent and observed
     *  maximum (Figure 4b; the paper's broadest error hit 5,359
     *  entries). */
    double breadth_alpha = 0.9;
    std::uint64_t breadth_max = 5359;
};

/** One single-event upset and the entries it corrupts. */
struct SoftErrorEvent
{
    enum class Class
    {
        sbse, //!< single-bit, single-entry
        sbme, //!< single-bit, multiple-entry
        mbse, //!< multiple-bit, single-entry
        mbme  //!< multiple-bit, multiple-entry
    };

    Class cls;
    /** Meaningful for multi-bit classes. */
    bool byte_aligned = false;
    /** (entry index, data-bit flip mask) per affected entry. */
    std::vector<std::pair<std::uint64_t, hbm2::EntryMask>> flips;
};

/** Generates structurally-correlated soft-error events. */
class EventGenerator
{
  public:
    EventGenerator(const EventConfig& config,
                   const hbm2::Geometry& geometry, Rng rng);

    const EventConfig& config() const { return config_; }

    /**
     * Draw one event.
     *
     * @param utilization fraction of peak DRAM access rate. Narrow
     *        array errors (SBSE/SBME, direct cell strikes) occur at
     *        a rate proportional to exposure time, while the broad
     *        logic errors (MBSE/MBME and the interface patterns) are
     *        proportional to the number of memory accesses - the
     *        paper's "Effect of DRAM Utilization" observation. The
     *        class mix is re-weighted accordingly; combine with
     *        rateScale() for the total event rate.
     */
    SoftErrorEvent sample(double utilization = 1.0);

    /** Event-rate multiplier at a DRAM utilization (1 at full). */
    double rateScale(double utilization) const;

    /** Apply an event to a device. */
    static void apply(const SoftErrorEvent& event, hbm2::Device& device);

    /**
     * Event rate in the beam implied by a field soft-error rate:
     * fit_per_gbit over the GPU capacity, scaled by the beam
     * acceleration factor.
     */
    static double eventsPerBeamSecond(const BeamConfig& beam,
                                      const hbm2::Geometry& geometry);

  private:
    std::uint64_t sampleBreadth(std::uint64_t min_breadth);
    hbm2::EntryMask byteMask(int byte_index);
    hbm2::EntryMask wordMask(int word);

    EventConfig config_;
    hbm2::Geometry geometry_;
    Rng rng_;
};

} // namespace beam
} // namespace gpuecc

#endif // GPUECC_BEAM_EVENTS_HPP
