#include "beam/events.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace gpuecc {
namespace beam {

using hbm2::EntryAddress;
using hbm2::EntryMask;

EventGenerator::EventGenerator(const EventConfig& config,
                               const hbm2::Geometry& geometry, Rng rng)
    : config_(config), geometry_(geometry), rng_(rng)
{
    const double total = config.p_sbse + config.p_sbme + config.p_mbse;
    require(total < 1.0, "EventConfig: class probabilities exceed 1");
}

double
EventGenerator::eventsPerBeamSecond(const BeamConfig& beam,
                                    const hbm2::Geometry& geometry)
{
    const double field_per_hour =
        beam.fit_per_gbit * geometry.capacityGbit() / 1e9;
    return field_per_hour * beam.acceleration() / 3600.0;
}

std::uint64_t
EventGenerator::sampleBreadth(std::uint64_t min_breadth)
{
    // Discrete truncated Pareto: P(B >= x) ~ x^-alpha.
    const double u = std::max(rng_.nextDouble(), 1e-12);
    const double v = static_cast<double>(min_breadth) *
                     std::pow(u, -1.0 / config_.breadth_alpha);
    const std::uint64_t b = static_cast<std::uint64_t>(v);
    return std::clamp<std::uint64_t>(b, min_breadth, config_.breadth_max);
}

EntryMask
EventGenerator::byteMask(int byte_index)
{
    // Random corruption of an aligned byte, >= 2 bits; with
    // probability p_inversion the whole byte flips instead.
    EntryMask mask;
    if (rng_.nextBool(config_.p_inversion)) {
        for (int t = 0; t < 8; ++t)
            mask.set(8 * byte_index + t, 1);
        return mask;
    }
    int bits = 0;
    do {
        mask = EntryMask{};
        bits = 0;
        for (int t = 0; t < 8; ++t) {
            if (rng_.nextBool(0.5)) {
                mask.set(8 * byte_index + t, 1);
                ++bits;
            }
        }
    } while (bits < 2);
    return mask;
}

EntryMask
EventGenerator::wordMask(int word)
{
    EntryMask mask;
    if (rng_.nextBool(config_.p_inversion)) {
        for (int t = 0; t < 64; ++t)
            mask.set(64 * word + t, 1);
        return mask;
    }
    int bits = 0;
    do {
        mask = EntryMask{};
        bits = 0;
        for (int t = 0; t < 64; ++t) {
            if (rng_.nextBool(0.5)) {
                mask.set(64 * word + t, 1);
                ++bits;
            }
        }
    } while (bits < 2);
    return mask;
}

double
EventGenerator::rateScale(double utilization) const
{
    require(utilization >= 0.0 && utilization <= 1.0,
            "EventGenerator: utilization must be in [0, 1]");
    // Array-error classes (SBSE/SBME) scale with exposure time;
    // everything else (logic and interface errors) scales with the
    // access rate.
    const double array_weight = config_.p_sbse + config_.p_sbme;
    return array_weight + (1.0 - array_weight) * utilization;
}

SoftErrorEvent
EventGenerator::sample(double utilization)
{
    const std::uint64_t entries = geometry_.numEntries();
    SoftErrorEvent ev;

    // Re-weight the class mix: logic/interface classes carry an
    // extra factor of `utilization` relative to the array classes
    // (SBSE/SBME), whose absolute rate is exposure-time driven.
    const double u = rng_.nextDouble() * rateScale(utilization);

    // Rare interface/scattered patterns first (they are part of the
    // multi-bit single-entry population).
    const double p_pin_u = config_.p_pin * utilization;
    const double p_2b_u = config_.p_two_bit * utilization;
    const double p_3b_u = config_.p_three_bit * utilization;
    const double p_rare = p_pin_u + p_2b_u + p_3b_u;
    if (u < p_rare) {
        ev.cls = SoftErrorEvent::Class::mbse;
        ev.byte_aligned = false;
        const std::uint64_t entry = rng_.nextBounded(entries);
        EntryMask mask;
        if (u < p_pin_u) {
            // Same bit lane across 2-4 of the entry's four words.
            const int pin = static_cast<int>(rng_.nextBounded(64));
            int bits = 0;
            do {
                mask = EntryMask{};
                bits = 0;
                for (int w = 0; w < 4; ++w) {
                    if (rng_.nextBool(0.5)) {
                        mask.set(64 * w + pin, 1);
                        ++bits;
                    }
                }
            } while (bits < 2);
        } else {
            const int want = u < p_pin_u + p_2b_u ? 2 : 3;
            while (mask.popcount() < want)
                mask.set(static_cast<int>(rng_.nextBounded(256)), 1);
        }
        ev.flips.emplace_back(entry, mask);
        return ev;
    }

    const double v = u - p_rare;
    if (v < config_.p_sbse) {
        ev.cls = SoftErrorEvent::Class::sbse;
        EntryMask mask;
        mask.set(static_cast<int>(rng_.nextBounded(256)), 1);
        ev.flips.emplace_back(rng_.nextBounded(entries), mask);
        return ev;
    }

    if (v < config_.p_sbse + config_.p_sbme) {
        // Bitline-style: same subarray, same column, same bit,
        // consecutive rows.
        ev.cls = SoftErrorEvent::Class::sbme;
        const std::uint64_t breadth = sampleBreadth(2);
        EntryAddress a =
            geometry_.decompose(rng_.nextBounded(entries));
        const int bit = static_cast<int>(rng_.nextBounded(256));
        for (std::uint64_t i = 0; i < breadth; ++i) {
            EntryAddress b = a;
            b.row = static_cast<int>(
                (a.row + i) % hbm2::rows_per_subarray);
            EntryMask mask;
            mask.set(bit, 1);
            ev.flips.emplace_back(geometry_.compose(b), mask);
            if (i + 1 >= hbm2::rows_per_subarray)
                break; // bitline exhausted
        }
        return ev;
    }

    // Multi-bit classes share the byte-aligned / non-aligned split.
    const bool multi_entry =
        v >= config_.p_sbse + config_.p_sbme +
                 config_.p_mbse * utilization;
    ev.cls = multi_entry ? SoftErrorEvent::Class::mbme
                         : SoftErrorEvent::Class::mbse;
    ev.byte_aligned = rng_.nextBool(config_.p_byte_aligned);
    const std::uint64_t breadth = multi_entry ? sampleBreadth(2) : 1;
    EntryAddress anchor = geometry_.decompose(rng_.nextBounded(entries));

    if (ev.byte_aligned) {
        // Mat-local / local-wordline failure: the same byte slice of
        // consecutive entries within one subarray.
        const int byte_index = static_cast<int>(rng_.nextBounded(32));
        const bool second_word = rng_.nextBool(config_.p_second_word);
        const int second_byte = (byte_index + 8) % 32;
        for (std::uint64_t i = 0; i < breadth; ++i) {
            const std::uint64_t flat =
                (static_cast<std::uint64_t>(anchor.row) *
                     hbm2::columns_per_row +
                 anchor.column + i) %
                hbm2::entries_per_subarray;
            EntryAddress b = anchor;
            b.row = static_cast<int>(flat / hbm2::columns_per_row);
            b.column = static_cast<int>(flat % hbm2::columns_per_row);
            EntryMask mask = byteMask(byte_index);
            if (second_word)
                mask |= byteMask(second_byte);
            ev.flips.emplace_back(geometry_.compose(b), mask);
        }
    } else {
        // Row/sense logic failure: whole words of consecutive entries.
        for (std::uint64_t i = 0; i < breadth; ++i) {
            const std::uint64_t flat =
                (static_cast<std::uint64_t>(anchor.row) *
                     hbm2::columns_per_row +
                 anchor.column + i) %
                hbm2::entries_per_subarray;
            EntryAddress b = anchor;
            b.row = static_cast<int>(flat / hbm2::columns_per_row);
            b.column = static_cast<int>(flat % hbm2::columns_per_row);
            EntryMask mask;
            if (rng_.nextBool(config_.p_nonaligned_one_word)) {
                mask = wordMask(static_cast<int>(rng_.nextBounded(4)));
            } else {
                for (int w = 0; w < 4; ++w)
                    mask |= wordMask(w);
            }
            ev.flips.emplace_back(geometry_.compose(b), mask);
        }
    }
    return ev;
}

void
EventGenerator::apply(const SoftErrorEvent& event, hbm2::Device& device)
{
    for (const auto& [entry, mask] : event.flips)
        device.injectFlips(entry, mask);
}

} // namespace beam
} // namespace gpuecc
