/**
 * @file
 * The DRAM beam-testing microbenchmark (Section 3, "Accelerator DRAM
 * Beam Testing Methodology").
 *
 * The real benchmark writes a known pattern to every entry and reads
 * all of memory back repeatedly - 10 write phases per run, 20 read
 * passes per write, alternating the pattern and its inverse between
 * write phases to diagnose unidirectional intermittent errors - and
 * logs every mismatch with a timestamp. The simulated version drives
 * the functional Device the same way while soft-error events arrive
 * as a Poisson process in beam time.
 */

#ifndef GPUECC_BEAM_MICROBENCHMARK_HPP
#define GPUECC_BEAM_MICROBENCHMARK_HPP

#include <cstdint>
#include <vector>

#include "beam/events.hpp"
#include "common/rng.hpp"
#include "hbm2/device.hpp"

namespace gpuecc {
namespace beam {

/** Microbenchmark loop parameters (paper defaults). */
struct MicrobenchConfig
{
    hbm2::DataPattern pattern = hbm2::DataPattern::anEncoded;
    int write_phases = 10;     //!< outer write loop per run
    int reads_per_write = 20;  //!< inner read loop
    /** Wall time of one full-memory pass (32GB at HBM2 bandwidth). */
    double pass_seconds = 0.036;
    /** DRAM access-rate fraction (Section 5, "Effect of DRAM
     *  Utilization"): logic-error rates scale with it, array-error
     *  rates do not. */
    double utilization = 1.0;
};

/** One logged mismatch observation. */
struct LogRecord
{
    int run;          //!< campaign run index
    int write_phase;  //!< outer loop iteration
    int read_pass;    //!< inner loop iteration
    double time_s;    //!< campaign time of the observing scan
    std::uint64_t entry;
    hbm2::EntryMask mask; //!< observed XOR expected
};

/** Drives one microbenchmark run against a device. */
class Microbenchmark
{
  public:
    explicit Microbenchmark(const MicrobenchConfig& config);

    const MicrobenchConfig& config() const { return config_; }

    /**
     * Execute one run (write_phases x reads_per_write passes).
     *
     * @param device      the DRAM under test
     * @param events      soft-error source (used only in the beam)
     * @param event_rate  events per second of beam time (0 outside)
     * @param time_s      campaign clock, advanced in place
     * @param run_index   tag for the log records
     * @param rng         randomness for event arrival times
     * @return mismatch log of this run
     */
    std::vector<LogRecord>
    run(hbm2::Device& device, EventGenerator& events, double event_rate,
        double& time_s, int run_index, Rng& rng) const;

  private:
    MicrobenchConfig config_;
};

} // namespace beam
} // namespace gpuecc

#endif // GPUECC_BEAM_MICROBENCHMARK_HPP
