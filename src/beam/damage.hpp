/**
 * @file
 * Displacement-damage accumulation and annealing (Section 4).
 *
 * Energetic neutrons physically damage DRAM access transistors,
 * converting cells from a finite "leaky" population into weak cells
 * whose retention time collapses to a normally-distributed value
 * around tens of milliseconds. The conversion count grows linearly
 * with fluence while the leaky pool lasts and asymptotes once it is
 * exhausted (Figures 3a/3c); retention partially recovers (anneals)
 * outside the beam, with short-retention cells recovering
 * proportionally more (the paper's 26% at 8 ms vs 2.5% at 48 ms).
 */

#ifndef GPUECC_BEAM_DAMAGE_HPP
#define GPUECC_BEAM_DAMAGE_HPP

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "hbm2/device.hpp"
#include "hbm2/retention.hpp"

namespace gpuecc {
namespace beam {

/** Parameters of the displacement-damage model. */
struct DamageConfig
{
    /** Leaky cells per GPU that can be converted to weak cells. */
    std::uint64_t leaky_pool = 2700;

    /**
     * Per-cell conversion probability per unit fluence (n/cm^2).
     * Chosen so the conversion is ~linear over the first few
     * 1e10 n/cm^2 (the paper's Figure 3c regime, R^2 = 0.97).
     */
    double conversion_per_fluence = 6.0e-11;

    /** Normal retention-time distribution of converted cells. */
    double retention_mu_ms = 19.0;
    double retention_sigma_ms = 9.0;

    /** Fraction of weak cells leaking 1 -> 0 (paper: 99.8%). */
    double p_one_to_zero = 0.998;

    /**
     * Retention recovery per hour outside the beam, in ms. 0.45
     * ms/hour reproduces the paper's trial-to-experiment decline
     * (~26% fewer weak cells at an 8 ms refresh period after ~3.5
     * hours, with a much smaller decline at 48 ms).
     */
    double anneal_ms_per_hour = 0.45;
};

/** Stateful damage model attached to one device. */
class DamageModel
{
  public:
    DamageModel(const DamageConfig& config, Rng rng);

    const DamageConfig& config() const { return config_; }

    /** Remaining unconverted leaky cells. */
    std::uint64_t remainingPool() const { return remaining_; }

    /**
     * Expose the device to additional fluence; newly-converted weak
     * cells are added to it at uniformly random locations.
     *
     * @return number of cells converted by this exposure
     */
    std::uint64_t expose(hbm2::Device& device, double fluence_n_cm2);

    /**
     * Anneal the device's weak cells for the given number of hours:
     * every retention time shifts up by anneal_ms_per_hour * hours.
     */
    void anneal(hbm2::Device& device, double hours);

    /** The retention model in use. */
    const hbm2::RetentionModel& retention() const { return retention_; }

  private:
    DamageConfig config_;
    Rng rng_;
    hbm2::RetentionModel retention_;
    std::uint64_t remaining_;
};

} // namespace beam
} // namespace gpuecc

#endif // GPUECC_BEAM_DAMAGE_HPP
