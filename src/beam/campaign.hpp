/**
 * @file
 * Orchestration of a full simulated beam-testing campaign.
 *
 * A campaign repeatedly runs the DRAM microbenchmark while the GPU
 * sits in the beam: soft-error events arrive as a Poisson process,
 * displacement damage accumulates with fluence, and everything lands
 * in the mismatch log for post-processing. The campaign also exposes
 * the three intermittent-error experiments of Section 4: the refresh
 * sweep (Figure 3a), the retention-time fit (Figure 3b, via
 * fitNormalCdf), and the weak-cell accumulation curve (Figure 3c).
 */

#ifndef GPUECC_BEAM_CAMPAIGN_HPP
#define GPUECC_BEAM_CAMPAIGN_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "beam/config.hpp"
#include "beam/damage.hpp"
#include "beam/events.hpp"
#include "beam/microbenchmark.hpp"
#include "hbm2/device.hpp"

namespace gpuecc {
namespace beam {

/** Everything needed to run one campaign. */
struct CampaignConfig
{
    BeamConfig beam;
    DamageConfig damage;
    EventConfig events;
    MicrobenchConfig micro;
    int stacks = hbm2::default_stacks; //!< 8 stacks = 32GB GPU
    int runs = 200;                    //!< microbenchmark runs
    std::uint64_t seed = 0xBEA3;
};

/** One (fluence, visible weak cells) accumulation sample. */
struct AccumulationSample
{
    double fluence_n_cm2;
    std::uint64_t visible_weak_cells;
};

/** A simulated beam-testing campaign on one GPU. */
class Campaign
{
  public:
    explicit Campaign(const CampaignConfig& config);

    const CampaignConfig& config() const { return config_; }
    hbm2::Device& device() { return device_; }
    const hbm2::Device& device() const { return device_; }
    DamageModel& damage() { return damage_; }

    /** Total beam fluence absorbed so far. */
    double fluence() const { return fluence_; }

    /** Campaign wall clock in seconds. */
    double timeSeconds() const { return time_s_; }

    /**
     * Run the configured number of microbenchmark runs in the beam,
     * accumulating damage and the mismatch log.
     */
    void runInBeam();

    /** The full mismatch log. */
    const std::vector<LogRecord>& log() const { return log_; }

    /** The per-run weak-cell accumulation curve (Figure 3c). */
    const std::vector<AccumulationSample>& accumulation() const
    {
        return accumulation_;
    }

    /**
     * Count weak cells visible at each refresh period on the (now
     * damaged) GPU outside the beam - the Figure 3a experiment.
     */
    std::vector<std::pair<double, std::uint64_t>>
    refreshSweep(const std::vector<double>& periods_ms) const;

    /** Number of weak cells with retention below the period. */
    std::uint64_t visibleWeakCells(double refresh_ms) const;

    /**
     * Expose the GPU without running the microbenchmark (used to
     * damage a device heavily before the refresh sweep).
     */
    void soak(double fluence_n_cm2);

    /** Let the GPU anneal outside the beam for the given hours. */
    void annealOutsideBeam(double hours);

  private:
    CampaignConfig config_;
    hbm2::Device device_;
    DamageModel damage_;
    EventGenerator events_;
    Microbenchmark micro_;
    Rng rng_;
    double fluence_ = 0.0;
    double time_s_ = 0.0;
    std::vector<LogRecord> log_;
    std::vector<AccumulationSample> accumulation_;
};

} // namespace beam
} // namespace gpuecc

#endif // GPUECC_BEAM_CAMPAIGN_HPP
