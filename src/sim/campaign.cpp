#include "sim/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <memory>

#include "common/codec_mode.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "ecc/registry.hpp"
#include "faultsim/shard.hpp"

namespace gpuecc::sim {

std::vector<ErrorPattern>
CampaignSpec::resolvedPatterns() const
{
    if (!patterns.empty())
        return patterns;
    const auto& all = allErrorPatterns();
    return {all.begin(), all.end()};
}

std::uint64_t
CampaignResult::totalTrials() const
{
    std::uint64_t total = 0;
    for (const CampaignCell& cell : cells)
        total += cell.counts.trials;
    return total;
}

double
CampaignResult::trialsPerSecond() const
{
    return seconds > 0.0 ? static_cast<double>(totalTrials()) / seconds
                         : 0.0;
}

const OutcomeCounts&
CampaignResult::counts(const std::string& scheme_id,
                       ErrorPattern pattern) const
{
    for (const CampaignCell& cell : cells) {
        if (cell.scheme_id == scheme_id && cell.pattern == pattern)
            return cell.counts;
    }
    fatal("CampaignResult: no cell for scheme " + scheme_id);
}

std::map<ErrorPattern, OutcomeCounts>
CampaignResult::perPattern(const std::string& scheme_id) const
{
    std::map<ErrorPattern, OutcomeCounts> out;
    for (const CampaignCell& cell : cells) {
        if (cell.scheme_id == scheme_id)
            out[cell.pattern] = cell.counts;
    }
    require(!out.empty(),
            "CampaignResult: unknown scheme " + scheme_id);
    return out;
}

CampaignRunner::CampaignRunner(CampaignSpec spec) : spec_(std::move(spec))
{
    require(!spec_.scheme_ids.empty(),
            "CampaignRunner: spec names no schemes");
    require(spec_.chunk > 0, "CampaignRunner: chunk must be positive");
}

CampaignResult
CampaignRunner::run() const
{
    CampaignResult result;
    result.spec = spec_;
    result.spec.threads = ThreadPool::resolveThreadCount(spec_.threads);
    result.codec_backend = codecBackendName();

    const std::vector<ErrorPattern> patterns = spec_.resolvedPatterns();

    // Resolve schemes and golden entries once; decode() is const and
    // thread-safe, so one instance serves all workers.
    std::vector<std::shared_ptr<EntryScheme>> schemes;
    std::vector<GoldenEntry> goldens;
    for (const std::string& id : spec_.scheme_ids) {
        schemes.push_back(makeScheme(id));
        goldens.push_back(makeGolden(*schemes.back(), spec_.seed));
        result.cells.reserve(result.cells.size() + patterns.size());
        for (ErrorPattern p : patterns)
            result.cells.push_back({id, p, OutcomeCounts{}});
    }

    // Flatten the plan: every shard of every cell is one pool task.
    // The same pattern plan (and thus the same RNG streams and masks)
    // is shared by every scheme, which keeps scheme columns paired.
    struct Task
    {
        std::size_t cell;
        Shard shard;
    };
    std::vector<Task> tasks;
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        for (std::size_t p = 0; p < patterns.size(); ++p) {
            const std::size_t cell = s * patterns.size() + p;
            for (const Shard& shard :
                 planShards(patterns[p], spec_.samples, spec_.chunk))
                tasks.push_back({cell, shard});
        }
    }
    result.shards = tasks.size();

    std::vector<OutcomeCounts> partial(tasks.size());
    const auto start = std::chrono::steady_clock::now();
    {
        ThreadPool pool(result.spec.threads);
        pool.parallelFor(tasks.size(), [&](std::uint64_t i) {
            const Task& t = tasks[i];
            const std::size_t scheme = t.cell / patterns.size();
            partial[i] = evaluateShard(*schemes[scheme],
                                       goldens[scheme], spec_.seed,
                                       t.shard);
        });
    }
    const auto stop = std::chrono::steady_clock::now();
    result.seconds =
        std::chrono::duration<double>(stop - start).count();

    // Merge in plan order; merging is associative and commutative, so
    // the outcome is independent of which worker ran which shard.
    for (std::size_t i = 0; i < tasks.size(); ++i)
        result.cells[tasks[i].cell].counts.merge(partial[i]);
    return result;
}

} // namespace gpuecc::sim
