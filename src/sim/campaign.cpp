#include "sim/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>

#include "common/codec_mode.hpp"
#include "common/interrupt.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "ecc/registry.hpp"
#include "faultsim/shard.hpp"
#include "sim/chaos.hpp"
#include "sim/checkpoint.hpp"

namespace gpuecc::sim {

std::vector<ErrorPattern>
CampaignSpec::resolvedPatterns() const
{
    if (!patterns.empty())
        return patterns;
    const auto& all = allErrorPatterns();
    return {all.begin(), all.end()};
}

std::uint64_t
CampaignResult::totalTrials() const
{
    std::uint64_t total = 0;
    for (const CampaignCell& cell : cells)
        total += cell.counts.trials;
    return total;
}

bool
CampaignResult::hasScheme(const std::string& scheme_id) const
{
    for (const CampaignCell& cell : cells) {
        if (cell.scheme_id == scheme_id)
            return true;
    }
    return false;
}

double
CampaignResult::trialsPerSecond() const
{
    return seconds > 0.0 ? static_cast<double>(totalTrials()) / seconds
                         : 0.0;
}

const OutcomeCounts&
CampaignResult::counts(const std::string& scheme_id,
                       ErrorPattern pattern) const
{
    for (const CampaignCell& cell : cells) {
        if (cell.scheme_id == scheme_id && cell.pattern == pattern)
            return cell.counts;
    }
    fatal("CampaignResult: no cell for scheme " + scheme_id);
}

std::map<ErrorPattern, OutcomeCounts>
CampaignResult::perPattern(const std::string& scheme_id) const
{
    std::map<ErrorPattern, OutcomeCounts> out;
    for (const CampaignCell& cell : cells) {
        if (cell.scheme_id == scheme_id)
            out[cell.pattern] = cell.counts;
    }
    require(!out.empty(),
            "CampaignResult: unknown scheme " + scheme_id);
    return out;
}

CampaignRunner::CampaignRunner(CampaignSpec spec) : spec_(std::move(spec))
{
    require(!spec_.scheme_ids.empty(),
            "CampaignRunner: spec names no schemes");
    require(spec_.chunk > 0, "CampaignRunner: chunk must be positive");
}

CampaignResult
CampaignRunner::run() const
{
    Result<CampaignResult> result = tryRun();
    if (!result.ok())
        fatal("campaign: " + result.status().toString());
    return std::move(result).value();
}

namespace {

/** One pool task: a shard of one (scheme, pattern) cell. */
struct Task
{
    std::size_t cell;
    Shard shard;
};

/**
 * Completion log shared by the workers and the checkpoint flusher.
 * partial[i] is written by exactly one task execution *before* index
 * i is appended here under the mutex, so any reader holding the
 * mutex sees fully written tallies (and the final merge runs after
 * the pool joins).
 */
struct Collector
{
    std::mutex mutex;
    /** Plan indices whose partial tallies are valid. */
    std::vector<std::uint64_t> completed;
    /** Tasks evaluated by this run (excludes restored ones). */
    std::uint64_t fresh_completed = 0;
    std::chrono::steady_clock::time_point last_flush;
    bool warned_checkpoint_failure = false;
};

} // namespace

Result<CampaignResult>
CampaignRunner::tryRun() const
{
    CampaignResult result;
    result.spec = spec_;
    result.spec.threads = ThreadPool::resolveThreadCount(spec_.threads);
    result.codec_backend = codecBackendName();

    const std::vector<ErrorPattern> patterns = spec_.resolvedPatterns();

    // Resolve schemes and golden entries once; decode() is const and
    // thread-safe, so one instance serves all workers. A scheme that
    // fails to resolve is skipped and recorded, not fatal.
    std::vector<std::string> ids;
    std::vector<std::shared_ptr<EntryScheme>> schemes;
    std::vector<GoldenEntry> goldens;
    for (const std::string& id : spec_.scheme_ids) {
        Result<std::shared_ptr<EntryScheme>> scheme = findScheme(id);
        if (!scheme.ok()) {
            warn("campaign: skipping scheme " + id + ": " +
                 scheme.status().toString());
            result.errors.push_back({id, scheme.status().toString()});
            continue;
        }
        schemes.push_back(scheme.value());
        goldens.push_back(makeGolden(*schemes.back(), spec_.seed));
        ids.push_back(id);
    }
    if (schemes.empty()) {
        return Status::notFound(
            "no scheme in the spec could be constructed");
    }
    for (const std::string& id : ids) {
        for (ErrorPattern p : patterns)
            result.cells.push_back({id, p, OutcomeCounts{}});
    }

    // Flatten the plan: every shard of every cell is one pool task.
    // The same pattern plan (and thus the same RNG streams and masks)
    // is shared by every scheme, which keeps scheme columns paired.
    std::vector<Task> tasks;
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        for (std::size_t p = 0; p < patterns.size(); ++p) {
            const std::size_t cell = s * patterns.size() + p;
            for (const Shard& shard :
                 planShards(patterns[p], spec_.samples, spec_.chunk))
                tasks.push_back({cell, shard});
        }
    }
    result.shards = tasks.size();

    const bool checkpointing = !spec_.checkpoint_path.empty();
    std::string fingerprint;
    if (checkpointing) {
        fingerprint = campaignFingerprint(
            ids, patterns, spec_.samples, spec_.seed, spec_.chunk,
            result.codec_backend, tasks.size());
        // From here on SIGINT/SIGTERM mean "finish in-flight shards,
        // flush, exit" rather than dying mid-write.
        installInterruptHandlers();
    }

    std::vector<OutcomeCounts> partial(tasks.size());
    // done[i]: partial[i] holds a complete tally (restored or fresh).
    // Distinct bytes, each written by at most one task execution.
    std::vector<char> done(tasks.size(), 0);
    Collector collector;

    if (checkpointing && spec_.resume) {
        Result<CampaignCheckpoint> loaded =
            loadCheckpoint(spec_.checkpoint_path);
        if (loaded.status().code() == ErrorCode::notFound) {
            inform("campaign: no checkpoint at " +
                   spec_.checkpoint_path + "; starting fresh");
        } else if (!loaded.ok()) {
            return loaded.status();
        } else {
            const CampaignCheckpoint& ckpt = loaded.value();
            if (ckpt.fingerprint != fingerprint) {
                return Status::failedPrecondition(
                    "checkpoint " + spec_.checkpoint_path +
                    " was written by a different campaign\n  theirs: " +
                    ckpt.fingerprint + "\n  ours:   " + fingerprint);
            }
            for (const CheckpointEntry& entry : ckpt.done) {
                if (entry.task >= tasks.size()) {
                    return Status::dataLoss(
                        "checkpoint " + spec_.checkpoint_path +
                        ": task index " + std::to_string(entry.task) +
                        " is outside the plan");
                }
                const Shard& shard = tasks[entry.task].shard;
                // Width validation: a sampled shard's trial count is
                // exactly its sample span, and exactness must match
                // the pattern class.
                const bool enumerable =
                    patternIsEnumerable(shard.pattern);
                if (entry.counts.exhaustive != enumerable ||
                    (!enumerable &&
                     entry.counts.trials != shard.end - shard.begin)) {
                    return Status::dataLoss(
                        "checkpoint " + spec_.checkpoint_path +
                        ": task " + std::to_string(entry.task) +
                        " tallies don't match its shard");
                }
                partial[entry.task] = entry.counts;
                done[entry.task] = 1;
                collector.completed.push_back(entry.task);
            }
            result.resumed_shards = ckpt.done.size();
            inform("campaign: resumed " +
                   std::to_string(result.resumed_shards) + " of " +
                   std::to_string(tasks.size()) + " shard tasks from " +
                   spec_.checkpoint_path);
        }
    }

    // Failure bookkeeping: a cell whose shard task fails twice marks
    // its whole scheme failed; remaining tasks of failed cells are
    // skipped. cell_errors is guarded by collector.mutex.
    std::unique_ptr<std::atomic<bool>[]> cell_failed(
        new std::atomic<bool>[result.cells.size()]);
    for (std::size_t i = 0; i < result.cells.size(); ++i)
        cell_failed[i].store(false, std::memory_order_relaxed);
    std::vector<std::pair<std::size_t, std::string>> cell_errors;

    // Serialize completed tallies; call with collector.mutex held.
    auto flushCheckpoint = [&]() -> Status {
        CampaignCheckpoint ckpt;
        ckpt.fingerprint = fingerprint;
        std::vector<std::uint64_t> indices = collector.completed;
        std::sort(indices.begin(), indices.end());
        ckpt.done.reserve(indices.size());
        for (std::uint64_t i : indices)
            ckpt.done.push_back({i, partial[i]});
        return saveCheckpoint(spec_.checkpoint_path, ckpt);
    };

    const auto interval = std::chrono::duration<double>(
        std::max(0.0, spec_.checkpoint_interval_s));
    collector.last_flush = std::chrono::steady_clock::now();

    auto body = [&](std::uint64_t i) {
        if (done[i] != 0 || interruptRequested())
            return;
        const Task& t = tasks[i];
        if (cell_failed[t.cell].load(std::memory_order_relaxed))
            return;
        const std::size_t scheme = t.cell / patterns.size();

        OutcomeCounts counts;
        try {
            chaosOnTaskAttempt(i);
            counts = evaluateShard(*schemes[scheme], goldens[scheme],
                                   spec_.seed, t.shard);
        } catch (const std::exception& first) {
            // Transient faults (chaos, OOM churn) get one retry; a
            // second failure fails the scheme, not the campaign.
            warn("campaign: shard task " + std::to_string(i) +
                 " failed (" + first.what() + "); retrying once");
            try {
                chaosOnTaskAttempt(i);
                counts = evaluateShard(*schemes[scheme],
                                       goldens[scheme], spec_.seed,
                                       t.shard);
            } catch (const std::exception& second) {
                cell_failed[t.cell].store(true,
                                          std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(collector.mutex);
                cell_errors.emplace_back(
                    t.cell, std::string("shard task failed twice: ") +
                                second.what());
                return;
            }
        }
        partial[i] = counts;
        done[i] = 1;

        std::lock_guard<std::mutex> lock(collector.mutex);
        collector.completed.push_back(i);
        ++collector.fresh_completed;
        chaosOnTaskDone(collector.fresh_completed);
        if (checkpointing && !interruptRequested()) {
            const auto now = std::chrono::steady_clock::now();
            if (now - collector.last_flush >= interval) {
                Status s = flushCheckpoint();
                if (s.ok()) {
                    collector.last_flush = now;
                } else if (!collector.warned_checkpoint_failure) {
                    // Degrade gracefully: the campaign still runs,
                    // it just can't persist progress right now.
                    warn("campaign: checkpoint write failed (" +
                         s.toString() + "); continuing without");
                    collector.warned_checkpoint_failure = true;
                    collector.last_flush = now;
                }
            }
        }
    };

    const auto start = std::chrono::steady_clock::now();
    {
        ThreadPool pool(result.spec.threads);
        pool.parallelFor(tasks.size(), body);
    }
    const auto stop = std::chrono::steady_clock::now();
    result.seconds =
        std::chrono::duration<double>(stop - start).count();
    result.interrupted = interruptRequested();

    // Always flush a final checkpoint: complete on success (so a
    // later --resume is a no-op), partial on interrupt (so --resume
    // loses nothing but the shards in flight).
    if (checkpointing) {
        std::lock_guard<std::mutex> lock(collector.mutex);
        if (Status s = flushCheckpoint(); !s.ok()) {
            warn("campaign: final checkpoint write failed: " +
                 s.toString());
        } else if (result.interrupted) {
            inform("campaign: interrupted; " +
                   std::to_string(collector.completed.size()) + " of " +
                   std::to_string(tasks.size()) +
                   " shard tasks checkpointed to " +
                   spec_.checkpoint_path);
        }
    }

    // Merge completed tallies in plan order; merging is associative
    // and commutative, so the outcome is independent of which worker
    // ran which shard. Tasks skipped by an interrupt or a failed
    // scheme contribute nothing.
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        if (done[i] != 0)
            result.cells[tasks[i].cell].counts.merge(partial[i]);
    }

    // Drop failed schemes from the cells and record them — a partial
    // scheme row would read as a measured (wrong) rate.
    if (!cell_errors.empty()) {
        std::set<std::string> failed;
        for (const auto& [cell, message] : cell_errors) {
            const CampaignCell& c = result.cells[cell];
            if (failed.insert(c.scheme_id).second) {
                warn("campaign: dropping scheme " + c.scheme_id +
                     ": " + message);
                result.errors.push_back(
                    {c.scheme_id,
                     "unavailable: pattern " +
                         patternInfo(c.pattern).label + ": " + message});
            }
        }
        std::erase_if(result.cells, [&](const CampaignCell& c) {
            return failed.count(c.scheme_id) != 0;
        });
    }
    return result;
}

} // namespace gpuecc::sim
